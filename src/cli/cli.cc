#include "cli/cli.h"

#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>

#include "bench/bench_suites.h"
#include "cost/standard_costs.h"
#include "enumeration/ckk.h"
#include "enumeration/ranked_forest.h"
#include "graph/graph_io.h"
#include "parallel/thread_pool.h"

namespace mintri {

namespace {

struct Options {
  std::string cost = "width";
  long long top = 5;
  std::string algo = "ranked";
  int bound = -1;
  std::string format = "summary";
  double time_limit = 30.0;
  int threads = 1;
  bool stats = false;
  bool help = false;
  std::string file;  // empty: stdin
};

constexpr char kUsage[] =
    "usage: mintri [options] [graph.gr]\n"
    "       mintri bench [suite...] [options]   (see mintri bench --help)\n"
    "\n"
    "Reads a graph in DIMACS/PACE .gr format (from the file argument or\n"
    "stdin) and prints its minimal triangulations in ranked order.\n"
    "\n"
    "  --cost=width|fill|width-then-fill|state-space   (default width)\n"
    "  --top=K            stop after K results          (default 5)\n"
    "  --algo=ranked|ckk  ranked enumeration or the CKK baseline\n"
    "  --bound=B          width bound (MinTriangB contexts)\n"
    "  --format=summary|td   per-result line, or PACE .td blocks\n"
    "  --time-limit=SEC   initialization budget in seconds (default 30)\n"
    "  --threads=N        worker threads for the separator/PMC enumeration\n"
    "                     during initialization (default 1 = serial)\n"
    "  --stats            print initialization statistics to stderr\n"
    "  --help             show this message and exit\n";

bool ParseNumber(const std::string& value, long long* out) {
  char* end = nullptr;
  *out = std::strtoll(value.c_str(), &end, 10);
  return end != value.c_str() && *end == '\0';
}

bool ParseNumber(const std::string& value, int* out) {
  long long wide;
  if (!ParseNumber(value, &wide)) return false;
  *out = static_cast<int>(wide);
  return true;
}

bool ParseNumber(const std::string& value, double* out) {
  char* end = nullptr;
  *out = std::strtod(value.c_str(), &end);
  return end != value.c_str() && *end == '\0';
}

// A thread count must land in [1, parallel::kMaxRunThreads] — the same
// ceiling the engines clamp to, so --threads=N never lies about the worker
// count. The range check runs on the wide parse (no silent int truncation
// for values like 2^32+1).
constexpr long long kMaxThreads = parallel::kMaxRunThreads;

bool ParseThreads(const std::string& value, int* out) {
  long long wide;
  if (!ParseNumber(value, &wide) || wide < 1 || wide > kMaxThreads) {
    return false;
  }
  *out = static_cast<int>(wide);
  return true;
}

bool ParseArgs(const std::vector<std::string>& args, Options* options,
               std::ostream& err) {
  for (const std::string& arg : args) {
    auto value_of = [&](const std::string& prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto cost = value_of("--cost=")) {
      options->cost = *cost;
    } else if (auto top = value_of("--top=")) {
      if (!ParseNumber(*top, &options->top)) {
        err << "invalid value for --top: " << *top << "\n";
        return false;
      }
    } else if (auto algo = value_of("--algo=")) {
      options->algo = *algo;
    } else if (auto bound = value_of("--bound=")) {
      if (!ParseNumber(*bound, &options->bound)) {
        err << "invalid value for --bound: " << *bound << "\n";
        return false;
      }
    } else if (auto format = value_of("--format=")) {
      options->format = *format;
    } else if (auto time_limit = value_of("--time-limit=")) {
      if (!ParseNumber(*time_limit, &options->time_limit)) {
        err << "invalid value for --time-limit: " << *time_limit << "\n";
        return false;
      }
    } else if (auto threads = value_of("--threads=")) {
      if (!ParseThreads(*threads, &options->threads)) {
        err << "invalid value for --threads: " << *threads
            << " (expected an integer in 1.." << kMaxThreads << ")\n";
        return false;
      }
    } else if (arg == "--stats") {
      options->stats = true;
    } else if (arg == "--help" || arg == "-h") {
      options->help = true;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "unknown option: " << arg << "\n";
      return false;
    } else {
      options->file = arg;
    }
  }
  return true;
}

constexpr char kBenchUsage[] =
    "usage: mintri bench [suite...] [options]\n"
    "\n"
    "Runs the named benchmark suites over the built-in workload families and\n"
    "writes a machine-readable BENCH_core.json report. Suites: minseps (one\n"
    "ListMinimalSeparators pass per graph), pmc (minimal separators + PMC\n"
    "enumeration), enum (ranked enumeration of minimal triangulations),\n"
    "ranked (ranked enumeration with per-entry init_seconds and\n"
    "after-first-result throughput, context init at the entry's thread\n"
    "count). With no suite arguments (or the keyword 'all'), all suites run.\n"
    "\n"
    "  --out=FILE   output path (default BENCH_core.json; '-' for stdout)\n"
    "  --smoke      CI-sized run: few families, capped graphs, short budgets\n"
    "  --threads=N  run every suite at exactly N threads; default is the\n"
    "               sweep {1, hardware_concurrency} for minseps/pmc/ranked\n"
    "  --quiet      no per-graph progress on stderr\n"
    "  --help       show this message and exit\n"
    "\n"
    "Budgets scale with the MINTRI_TIME_SCALE environment variable; the\n"
    "report's git_sha comes from configure time (MINTRI_GIT_SHA overrides).\n";

int RunBenchCommand(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err) {
  bench::BenchRunOptions options;
  std::string out_path = "BENCH_core.json";
  bool quiet = false;
  bool all_suites = false;
  for (const std::string& arg : args) {
    if (arg == "--help" || arg == "-h") {
      out << kBenchUsage;
      return 0;
    } else if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      const std::string value = arg.substr(10);
      if (!ParseThreads(value, &options.threads)) {
        err << "invalid value for --threads: " << value
            << " (expected an integer in 1.." << kMaxThreads << ")\n";
        return 1;
      }
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (!arg.empty() && arg[0] == '-') {
      err << "unknown option: " << arg << "\n";
      return 1;
    } else if (arg == "all") {
      all_suites = true;
    } else if (bench::IsKnownSuite(arg)) {
      options.suites.push_back(arg);
    } else {
      err << "unknown suite: " << arg
          << " (expected minseps, pmc, enum, ranked, or all)\n";
      return 1;
    }
  }
  if (all_suites) options.suites.clear();  // empty = every suite

  bench::BenchReport report =
      bench::RunBenchSuites(options, quiet ? nullptr : &err);
  if (out_path == "-") {
    bench::WriteBenchJson(report, out);
  } else {
    std::ofstream file(out_path);
    if (!file) {
      err << "cannot write " << out_path << "\n";
      return 1;
    }
    bench::WriteBenchJson(report, file);
    err << "wrote " << out_path << " (" << report.entries.size()
        << " entries, git " << report.git_sha << ")\n";
  }
  return 0;
}

std::unique_ptr<BagCost> MakeCost(const std::string& name, int n) {
  if (name == "width") return std::make_unique<WidthCost>();
  if (name == "fill") return std::make_unique<FillInCost>();
  if (name == "width-then-fill") {
    return std::make_unique<WidthThenFillCost>();
  }
  if (name == "state-space") return TotalStateSpaceCost::Uniform(n, 2.0);
  return nullptr;
}

void PrintResult(const Options& options, const Graph& g, int rank,
                 const Triangulation& t, std::ostream& out) {
  if (options.format == "td") {
    out << "c result " << rank << " cost " << t.cost << " width "
        << t.Width() << " fill " << t.FillIn(g) << "\n";
    WritePaceTd(CliqueTreeOf(t), g.NumVertices(), out);
  } else {
    out << "#" << rank << " cost=" << t.cost << " width=" << t.Width()
        << " fill=" << t.FillIn(g) << " bags=" << t.bags.size() << "\n";
  }
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::istream& in,
           std::ostream& out, std::ostream& err) {
  if (!args.empty() && args[0] == "bench") {
    return RunBenchCommand(
        std::vector<std::string>(args.begin() + 1, args.end()), out, err);
  }
  Options options;
  if (!ParseArgs(args, &options, err)) return 1;
  if (options.help) {
    out << kUsage;
    return 0;
  }

  std::optional<Graph> g;
  if (options.file.empty()) {
    g = ParseDimacs(in);
  } else {
    std::ifstream file(options.file);
    if (!file) {
      err << "cannot open " << options.file << "\n";
      return 1;
    }
    g = ParseDimacs(file);
  }
  if (!g.has_value()) {
    err << "malformed graph input (expected DIMACS/PACE .gr)\n";
    return 1;
  }

  std::unique_ptr<BagCost> cost = MakeCost(options.cost, g->NumVertices());
  if (cost == nullptr) {
    err << "unknown cost: " << options.cost << "\n";
    return 1;
  }

  if (options.algo == "ckk") {
    if (!g->IsConnected()) {
      err << "the CKK baseline requires a connected graph\n";
      return 1;
    }
    CkkEnumerator e(*g, cost.get());
    for (long long rank = 1; rank <= options.top; ++rank) {
      auto t = e.Next();
      if (!t.has_value()) break;
      PrintResult(options, *g, static_cast<int>(rank), *t, out);
    }
    return 0;
  }
  if (options.algo != "ranked") {
    err << "unknown algorithm: " << options.algo << "\n";
    return 1;
  }

  ContextOptions ctx_options;
  ctx_options.width_bound = options.bound;
  ctx_options.separator_limits.time_limit_seconds = options.time_limit;
  ctx_options.pmc_limits.time_limit_seconds = options.time_limit;
  ctx_options.num_threads = options.threads;
  CostComposition composition = (options.cost == "width" ||
                                 options.cost == "width-then-fill")
                                    ? CostComposition::kMax
                                    : CostComposition::kSum;
  // width-then-fill composes as max on the width digit and sum on fill;
  // kMax is a safe upper approximation across components for ranking, but
  // to stay exact we fall back to per-component handling only when the
  // graph is connected.
  if (options.cost == "width-then-fill" && g->ConnectedComponents().size() > 1) {
    err << "width-then-fill requires a connected graph\n";
    return 1;
  }

  RankedForestEnumerator e(*g, *cost, composition, ctx_options);
  const ContextBuildInfo& info = e.init_info();
  if (!e.init_ok()) {
    err << "initialization " << info.TerminationName() << " after "
        << info.total_seconds << "s (budget " << options.time_limit
        << "s per stage; minseps " << info.minsep_seconds << "s/"
        << info.num_minseps << ", pmcs " << info.pmc_seconds << "s/"
        << info.num_pmcs << ") — graph not poly-MS feasible at this budget\n";
    return 2;
  }
  if (options.stats) {
    err << "graph: n=" << g->NumVertices() << " m=" << g->NumEdges() << "\n";
    err << "init: total=" << info.total_seconds << "s minseps="
        << info.minsep_seconds << "s (" << info.num_minseps << ") pmcs="
        << info.pmc_seconds << "s (" << info.num_pmcs << ") blocks="
        << info.blocks_seconds << "s (" << info.num_blocks << ") wiring="
        << info.wiring_seconds << "s threads=" << options.threads << "\n";
  }
  for (long long rank = 1; rank <= options.top; ++rank) {
    auto t = e.Next();
    if (!t.has_value()) break;
    PrintResult(options, *g, static_cast<int>(rank), *t, out);
  }
  return 0;
}

}  // namespace mintri
