#include "cli/cli.h"

#include <fstream>
#include <memory>
#include <optional>

#include "cost/standard_costs.h"
#include "enumeration/ckk.h"
#include "enumeration/ranked_forest.h"
#include "graph/graph_io.h"

namespace mintri {

namespace {

struct Options {
  std::string cost = "width";
  long long top = 5;
  std::string algo = "ranked";
  int bound = -1;
  std::string format = "summary";
  double time_limit = 30.0;
  bool stats = false;
  std::string file;  // empty: stdin
};

bool ParseArgs(const std::vector<std::string>& args, Options* options,
               std::ostream& err) {
  for (const std::string& arg : args) {
    auto value_of = [&](const std::string& prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value_of("--cost=")) {
      options->cost = *v;
    } else if (auto v = value_of("--top=")) {
      options->top = std::atoll(v->c_str());
    } else if (auto v = value_of("--algo=")) {
      options->algo = *v;
    } else if (auto v = value_of("--bound=")) {
      options->bound = std::atoi(v->c_str());
    } else if (auto v = value_of("--format=")) {
      options->format = *v;
    } else if (auto v = value_of("--time-limit=")) {
      options->time_limit = std::atof(v->c_str());
    } else if (arg == "--stats") {
      options->stats = true;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "unknown option: " << arg << "\n";
      return false;
    } else {
      options->file = arg;
    }
  }
  return true;
}

std::unique_ptr<BagCost> MakeCost(const std::string& name, int n) {
  if (name == "width") return std::make_unique<WidthCost>();
  if (name == "fill") return std::make_unique<FillInCost>();
  if (name == "width-then-fill") {
    return std::make_unique<WidthThenFillCost>();
  }
  if (name == "state-space") return TotalStateSpaceCost::Uniform(n, 2.0);
  return nullptr;
}

void PrintResult(const Options& options, const Graph& g, int rank,
                 const Triangulation& t, std::ostream& out) {
  if (options.format == "td") {
    out << "c result " << rank << " cost " << t.cost << " width "
        << t.Width() << " fill " << t.FillIn(g) << "\n";
    WritePaceTd(CliqueTreeOf(t), g.NumVertices(), out);
  } else {
    out << "#" << rank << " cost=" << t.cost << " width=" << t.Width()
        << " fill=" << t.FillIn(g) << " bags=" << t.bags.size() << "\n";
  }
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::istream& in,
           std::ostream& out, std::ostream& err) {
  Options options;
  if (!ParseArgs(args, &options, err)) return 1;

  std::optional<Graph> g;
  if (options.file.empty()) {
    g = ParseDimacs(in);
  } else {
    std::ifstream file(options.file);
    if (!file) {
      err << "cannot open " << options.file << "\n";
      return 1;
    }
    g = ParseDimacs(file);
  }
  if (!g.has_value()) {
    err << "malformed graph input (expected DIMACS/PACE .gr)\n";
    return 1;
  }

  std::unique_ptr<BagCost> cost = MakeCost(options.cost, g->NumVertices());
  if (cost == nullptr) {
    err << "unknown cost: " << options.cost << "\n";
    return 1;
  }

  if (options.algo == "ckk") {
    if (!g->IsConnected()) {
      err << "the CKK baseline requires a connected graph\n";
      return 1;
    }
    CkkEnumerator e(*g, cost.get());
    for (long long rank = 1; rank <= options.top; ++rank) {
      auto t = e.Next();
      if (!t.has_value()) break;
      PrintResult(options, *g, static_cast<int>(rank), *t, out);
    }
    return 0;
  }
  if (options.algo != "ranked") {
    err << "unknown algorithm: " << options.algo << "\n";
    return 1;
  }

  ContextOptions ctx_options;
  ctx_options.width_bound = options.bound;
  ctx_options.separator_limits.time_limit_seconds = options.time_limit;
  ctx_options.pmc_limits.time_limit_seconds = options.time_limit;
  CostComposition composition = (options.cost == "width" ||
                                 options.cost == "width-then-fill")
                                    ? CostComposition::kMax
                                    : CostComposition::kSum;
  // width-then-fill composes as max on the width digit and sum on fill;
  // kMax is a safe upper approximation across components for ranking, but
  // to stay exact we fall back to per-component handling only when the
  // graph is connected.
  if (options.cost == "width-then-fill" && g->ConnectedComponents().size() > 1) {
    err << "width-then-fill requires a connected graph\n";
    return 1;
  }

  RankedForestEnumerator e(*g, *cost, composition, ctx_options);
  if (!e.init_ok()) {
    err << "initialization exceeded " << options.time_limit
        << "s (graph not poly-MS feasible at this budget)\n";
    return 2;
  }
  if (options.stats) {
    err << "graph: n=" << g->NumVertices() << " m=" << g->NumEdges() << "\n";
  }
  for (long long rank = 1; rank <= options.top; ++rank) {
    auto t = e.Next();
    if (!t.has_value()) break;
    PrintResult(options, *g, static_cast<int>(rank), *t, out);
  }
  return 0;
}

}  // namespace mintri
