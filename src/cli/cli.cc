#include "cli/cli.h"

#include <fstream>
#include <memory>
#include <optional>

#include "bench/bench_suites.h"
#include "cli/batch.h"
#include "cli/flags.h"
#include "cost/cost_model_registry.h"
#include "cost/standard_costs.h"
#include "enumeration/ckk.h"
#include "enumeration/tiered_enum.h"
#include "graph/graph_io.h"
#include "parallel/thread_pool.h"

namespace mintri {

namespace {

struct Options {
  std::string cost = "width";
  long long top = 5;
  std::string algo = "ranked";
  int bound = -1;
  std::string format = "summary";
  std::string input = "gr";  // stdin format: gr | hg | uai
  double time_limit = 30.0;
  int threads = 1;
  std::string solver = "indexed";
  std::string tier = "auto";
  bool no_cache = false;
  bool stats = false;
  bool help = false;
  std::string file;  // empty: stdin
};

constexpr char kUsage[] =
    "usage: mintri [rank] [options] [instance]\n"
    "       mintri batch <file-of-instances> [options]  (mintri batch"
    " --help)\n"
    "       mintri bench [suite...] [options]           (mintri bench"
    " --help)\n"
    "\n"
    "Reads a problem instance and prints its minimal triangulations in\n"
    "ranked order. The instance is a path — .gr (DIMACS/PACE graph), .hg\n"
    "(hypergraph; its primal graph is triangulated), .uai (factor list;\n"
    "its moral graph is triangulated) — or a builtin spec: tpch:<q> (the\n"
    "TPC-H query-q hypergraph), tpch-graph:<q>, gm:<name>. With no\n"
    "instance argument, stdin is parsed per --input.\n"
    "\n"
    "  --cost=NAME        width|fill|width-then-fill|state-space|\n"
    "                     hypertree|fhw                 (default width)\n"
    "                     hypertree/fhw need a hypergraph instance;\n"
    "                     state-space uses the model's domain sizes when\n"
    "                     the instance carries them (uniform 2 otherwise)\n"
    "  --top=K            stop after K results          (default 5)\n"
    "  --algo=ranked|ckk  ranked enumeration or the CKK baseline\n"
    "  --bound=B          width bound (MinTriangB contexts)\n"
    "  --format=summary|td   per-result line, or PACE .td blocks\n"
    "  --input=gr|hg|uai  stdin format                  (default gr)\n"
    "  --time-limit=SEC   initialization budget in seconds (default 30)\n"
    "  --threads=N        worker threads for the separator/PMC enumeration\n"
    "                     during initialization (default 1 = serial)\n"
    "  --solver=indexed|scan  repair engine for the incremental DP: the\n"
    "                     segment-tree candidate index (default) or the\n"
    "                     list-scan baseline; both print identical results\n"
    "  --tier=auto|exact|heuristic  solve pipeline (default auto): exact is\n"
    "                     the classic full enumeration (fails on graphs\n"
    "                     whose MinSep/PMC enumeration exceeds the budget);\n"
    "                     auto preprocesses, solves per atom, and degrades\n"
    "                     to the LB-Triang-seeded heuristic family when an\n"
    "                     atom blows the budget; heuristic skips the exact\n"
    "                     attempts. Every result line carries the truthful\n"
    "                     tier label (exact|atom-exact|heuristic)\n"
    "  --no-cache         disable the memoized bag-score cache\n"
    "  --stats            print initialization + cache statistics to\n"
    "                     stderr\n"
    "  --help             show this message and exit\n";

bool ParseArgs(const std::vector<std::string>& args, Options* options,
               std::ostream& err) {
  for (const std::string& arg : args) {
    auto value_of = [&](const std::string& prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto cost = value_of("--cost=")) {
      options->cost = *cost;
    } else if (auto top = value_of("--top=")) {
      if (!flags::ParseNumber(*top, &options->top)) {
        err << "invalid value for --top: " << *top << "\n";
        return false;
      }
    } else if (auto algo = value_of("--algo=")) {
      options->algo = *algo;
    } else if (auto bound = value_of("--bound=")) {
      if (!flags::ParseNumber(*bound, &options->bound)) {
        err << "invalid value for --bound: " << *bound << "\n";
        return false;
      }
    } else if (auto format = value_of("--format=")) {
      options->format = *format;
    } else if (auto input = value_of("--input=")) {
      if (*input != "gr" && *input != "hg" && *input != "uai") {
        err << "invalid value for --input: " << *input
            << " (expected gr, hg, or uai)\n";
        return false;
      }
      options->input = *input;
    } else if (auto time_limit = value_of("--time-limit=")) {
      if (!flags::ParseNumber(*time_limit, &options->time_limit)) {
        err << "invalid value for --time-limit: " << *time_limit << "\n";
        return false;
      }
    } else if (auto threads = value_of("--threads=")) {
      if (!flags::ParseThreads(*threads, &options->threads)) {
        err << "invalid value for --threads: " << *threads
            << " (expected an integer in 1.." << flags::MaxThreads() << ")\n";
        return false;
      }
    } else if (auto solver = value_of("--solver=")) {
      if (*solver != "indexed" && *solver != "scan") {
        err << "invalid value for --solver: " << *solver
            << " (expected indexed or scan)\n";
        return false;
      }
      options->solver = *solver;
    } else if (auto tier = value_of("--tier=")) {
      if (*tier != "auto" && *tier != "exact" && *tier != "heuristic") {
        err << "invalid value for --tier: " << *tier
            << " (expected auto, exact, or heuristic)\n";
        return false;
      }
      options->tier = *tier;
    } else if (arg == "--no-cache") {
      options->no_cache = true;
    } else if (arg == "--stats") {
      options->stats = true;
    } else if (arg == "--help" || arg == "-h") {
      options->help = true;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "unknown option: " << arg << "\n";
      return false;
    } else {
      options->file = arg;
    }
  }
  return true;
}

constexpr char kBenchUsage[] =
    "usage: mintri bench [suite...] [options]\n"
    "\n"
    "Runs the named benchmark suites over the built-in workload families and\n"
    "writes a machine-readable BENCH_core.json report. Suites: minseps (one\n"
    "ListMinimalSeparators pass per graph), pmc (minimal separators + PMC\n"
    "enumeration), enum (ranked enumeration of minimal triangulations),\n"
    "ranked (ranked enumeration with per-entry init_seconds and\n"
    "after-first-result throughput, context init at the entry's thread\n"
    "count), appcost (ranked enumeration under the application costs —\n"
    "hypertree/fhw over the TPC-H query hypergraphs, state-space over the\n"
    "graphical-model instances — with bag-score cache hit rates), huge (the\n"
    "tiered pipeline on PACE-scale graphs of >= 1000 vertices, with the\n"
    "per-entry tier label). With no suite arguments (or the keyword 'all'),\n"
    "all suites run.\n"
    "\n"
    "  --out=FILE   output path (default BENCH_core.json; '-' for stdout)\n"
    "  --smoke      CI-sized run: few families, capped graphs, short budgets\n"
    "  --threads=N  run every suite at exactly N threads; default is the\n"
    "               sweep {1, hardware_concurrency} for minseps/pmc/ranked\n"
    "  --solver=indexed|scan  pin the ranked suite's repair engine; default\n"
    "               runs every ranked point with both back to back (the\n"
    "               interleaved before/after comparison)\n"
    "  --quiet      no per-graph progress on stderr\n"
    "  --help       show this message and exit\n"
    "\n"
    "Budgets scale with the MINTRI_TIME_SCALE environment variable; the\n"
    "report's git_sha comes from configure time (MINTRI_GIT_SHA overrides).\n";

int RunBenchCommand(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err) {
  bench::BenchRunOptions options;
  std::string out_path = "BENCH_core.json";
  bool quiet = false;
  bool all_suites = false;
  for (const std::string& arg : args) {
    if (arg == "--help" || arg == "-h") {
      out << kBenchUsage;
      return 0;
    } else if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      const std::string value = arg.substr(10);
      if (!flags::ParseThreads(value, &options.threads)) {
        err << "invalid value for --threads: " << value
            << " (expected an integer in 1.." << flags::MaxThreads() << ")\n";
        return 1;
      }
    } else if (arg.rfind("--solver=", 0) == 0) {
      const std::string value = arg.substr(9);
      if (value != "indexed" && value != "scan") {
        err << "invalid value for --solver: " << value
            << " (expected indexed or scan)\n";
        return 1;
      }
      options.solver = value;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (!arg.empty() && arg[0] == '-') {
      err << "unknown option: " << arg << "\n";
      return 1;
    } else if (arg == "all") {
      all_suites = true;
    } else if (bench::IsKnownSuite(arg)) {
      options.suites.push_back(arg);
    } else {
      err << "unknown suite: " << arg
          << " (expected minseps, pmc, enum, ranked, appcost, huge, or all)\n";
      return 1;
    }
  }
  if (all_suites) options.suites.clear();  // empty = every suite

  bench::BenchReport report =
      bench::RunBenchSuites(options, quiet ? nullptr : &err);
  if (out_path == "-") {
    bench::WriteBenchJson(report, out);
  } else {
    std::ofstream file(out_path);
    if (!file) {
      err << "cannot write " << out_path << "\n";
      return 1;
    }
    bench::WriteBenchJson(report, file);
    err << "wrote " << out_path << " (" << report.entries.size()
        << " entries, git " << report.git_sha << ")\n";
  }
  return 0;
}

void PrintResult(const Options& options, const Graph& g, int rank,
                 const Triangulation& t, std::ostream& out,
                 const char* tier = nullptr) {
  if (options.format == "td") {
    out << "c result " << rank << " cost " << t.cost << " width "
        << t.Width() << " fill " << t.FillIn(g);
    if (tier != nullptr) out << " tier " << tier;
    out << "\n";
    WritePaceTd(CliqueTreeOf(t), g.NumVertices(), out);
  } else {
    out << "#" << rank << " cost=" << t.cost << " width=" << t.Width()
        << " fill=" << t.FillIn(g) << " bags=" << t.bags.size();
    if (tier != nullptr) out << " tier=" << tier;
    out << "\n";
  }
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::istream& in,
           std::ostream& out, std::ostream& err) {
  if (!args.empty() && args[0] == "bench") {
    return RunBenchCommand(
        std::vector<std::string>(args.begin() + 1, args.end()), out, err);
  }
  if (!args.empty() && args[0] == "batch") {
    return RunBatchCommand(
        std::vector<std::string>(args.begin() + 1, args.end()), out, err);
  }
  // `mintri rank ...` is the canonical spelling; the bare invocation stays
  // supported as the historical alias.
  std::vector<std::string> rank_args =
      (!args.empty() && args[0] == "rank")
          ? std::vector<std::string>(args.begin() + 1, args.end())
          : args;
  Options options;
  if (!ParseArgs(rank_args, &options, err)) return 1;
  if (options.help) {
    out << kUsage;
    return 0;
  }

  std::string error;
  std::optional<CostModelInstance> instance;
  if (options.file.empty()) {
    InstanceKind kind = InstanceKind::kGraph;
    if (options.input == "hg") kind = InstanceKind::kHypergraph;
    if (options.input == "uai") kind = InstanceKind::kModel;
    instance = ReadInstance(in, kind, "<stdin>", &error);
  } else {
    instance = LoadInstance(options.file, &error);
  }
  if (!instance.has_value()) {
    err << error << "\n";
    return 1;
  }
  const Graph& g = instance->graph;

  std::optional<CostModel> model =
      MakeCostModel(options.cost, *instance, !options.no_cache, &error);
  if (!model.has_value()) {
    err << error << "\n";
    return 1;
  }
  const BagCost& cost = *model->cost;

  auto print_cache_stats = [&]() {
    if (!options.stats || model->cache == nullptr) return;
    const BagScoreCache::Stats stats = model->cache->stats();
    err << "bag-score cache: lookups=" << stats.lookups
        << " hits=" << stats.hits << " misses=" << stats.misses
        << " hit_rate=" << stats.HitRate() << "\n";
  };

  if (options.algo == "ckk") {
    if (!g.IsConnected()) {
      err << "the CKK baseline requires a connected graph\n";
      return 1;
    }
    CkkEnumerator e(g, &cost);
    for (long long rank = 1; rank <= options.top; ++rank) {
      auto t = e.Next();
      if (!t.has_value()) break;
      PrintResult(options, g, static_cast<int>(rank), *t, out);
    }
    print_cache_stats();
    return 0;
  }
  if (options.algo != "ranked") {
    err << "unknown algorithm: " << options.algo << "\n";
    return 1;
  }

  ContextOptions ctx_options;
  ctx_options.width_bound = options.bound;
  ctx_options.separator_limits.time_limit_seconds = options.time_limit;
  ctx_options.pmc_limits.time_limit_seconds = options.time_limit;
  ctx_options.num_threads = options.threads;
  // width-then-fill encodes (width, fill) in one number, so no single
  // CostComposition is exact across components; stay exact by requiring a
  // connected graph (single-component ranked product).
  if (options.cost == "width-then-fill" &&
      g.ConnectedComponents().size() > 1) {
    err << "width-then-fill requires a connected graph\n";
    return 1;
  }

  SolverOptions solver_options;
  solver_options.use_candidate_index = options.solver == "indexed";
  TierOptions tier_options;
  tier_options.mode = options.tier == "exact"
                          ? TierOptions::Mode::kExact
                          : options.tier == "heuristic"
                                ? TierOptions::Mode::kHeuristic
                                : TierOptions::Mode::kAuto;
  tier_options.decomposable_cost = IsTierDecomposableCost(options.cost);
  tier_options.exact_budget_seconds = options.time_limit;
  TieredEnumerator e(g, cost, model->composition, ctx_options, solver_options,
                     tier_options);
  const ContextBuildInfo& info = e.init_info();
  if (!e.init_ok()) {
    err << "initialization " << info.TerminationName() << " after "
        << info.total_seconds << "s (budget " << options.time_limit
        << "s per stage; minseps " << info.minsep_seconds << "s/"
        << info.num_minseps << ", pmcs " << info.pmc_seconds << "s/"
        << info.num_pmcs << ") — graph not poly-MS feasible at this budget\n";
    return 2;
  }
  if (options.stats) {
    err << "graph: n=" << g.NumVertices() << " m=" << g.NumEdges() << "\n";
    err << "init: total=" << info.total_seconds << "s minseps="
        << info.minsep_seconds << "s (" << info.num_minseps << ") pmcs="
        << info.pmc_seconds << "s (" << info.num_pmcs << ") blocks="
        << info.blocks_seconds << "s (" << info.num_blocks << ") wiring="
        << info.wiring_seconds << "s threads=" << options.threads << "\n";
    const PreprocessInfo& pre = e.preprocess_info();
    err << "tier[" << options.tier << "]: " << TierName(e.tier())
        << " atoms=" << pre.num_atoms
        << " reduced_vertices=" << pre.vertices_removed
        << " preprocess=" << pre.seconds << "s builds=" << info.num_builds
        << " ms_terminated=" << info.num_ms_terminated
        << " pmc_terminated=" << info.num_pmc_terminated << "\n";
  }
  for (long long rank = 1; rank <= options.top; ++rank) {
    auto t = e.Next();
    if (!t.has_value()) break;
    PrintResult(options, g, static_cast<int>(rank), t->triangulation, out,
                TierName(t->tier));
  }
  if (options.stats) {
    err << "solver[" << options.solver
        << "]: optimizer_calls=" << e.num_optimizer_calls()
        << " candidate_evals=" << e.num_candidate_evals()
        << " combine_calls=" << e.num_combine_calls()
        << " index_updates=" << e.num_index_updates()
        << " range_queries=" << e.num_range_queries() << "\n";
  }
  print_cache_stats();
  return 0;
}

}  // namespace mintri
