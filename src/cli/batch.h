#ifndef MINTRI_CLI_BATCH_H_
#define MINTRI_CLI_BATCH_H_

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "cost/bag_cost.h"

namespace mintri {

/// The multi-query driver behind `mintri batch`: rank-enumerates every
/// instance of a list, fanning instances across the PR-3 thread pool
/// (parallel *across* queries; per-instance context construction is serial
/// by default and parallel when inner_threads > 1). With workers > 1 the
/// list is additionally sharded across child `mintri batch` processes
/// (src/cli/batch_shard.h). Output order — and every ranked result — is
/// independent of the thread and worker split.
struct BatchOptions {
  std::string cost = "width";
  long long top = 3;           // ranked results per instance
  double time_limit = 30.0;    // per-stage context budget, seconds
  int threads = 1;             // instances processed concurrently
  int inner_threads = 1;       // context-build threads within one instance
  bool cache = true;           // memoized bag-score cache (hypertree/fhw)
  int workers = 1;             // worker processes (1 = in-process)
  double deadline = 0;         // per-shard wall budget, seconds (0 = none)
  bool stats = false;          // per-worker + aggregate summary on stderr
  std::string stats_json;      // aggregate-stats JSON output path ("" = off)
  std::string worker_binary;   // mintri binary to spawn ("" = self)
  std::string tier = "auto";   // solve pipeline: auto|exact|heuristic
  bool mask_timings = false;   // zero timing fields (testing hook)
};

/// One instance's outcome (one JSON record in the batch report).
struct BatchRecord {
  std::string instance;  // the spec as listed
  std::string cost_name;
  /// In-process outcomes: "ok" | "load-error" | "cost-error" |
  /// "init-failed". Coordinator-synthesized outcomes (sharded mode only,
  /// when a worker fails before finishing its shard): "worker-crashed" |
  /// "worker-timeout" | "worker-partial" | "worker-spawn-error".
  std::string status;
  std::string error;  // human-readable detail for non-ok statuses
  int n = 0;
  int m = 0;
  double init_seconds = 0;
  long long cache_lookups = 0;
  long long cache_hits = 0;
  long long cache_misses = 0;
  /// The stream's truthful tier label ("exact" | "atom-exact" |
  /// "heuristic"); empty for records that never reached the solver.
  std::string tier;
  /// Tier-0 preprocessing summary and the per-tier build wall clock.
  int atoms = 0;
  int reduced_vertices = 0;
  double preprocess_seconds = 0;
  double tier1_seconds = 0;  // exact context builds (incl. failed attempts)
  double tier2_seconds = 0;  // heuristic restricted-family builds
  struct Row {
    int rank = 0;
    CostValue cost = 0;
    int width = 0;
    long long fill = 0;
    int bags = 0;
  };
  std::vector<Row> results;
};

/// Runs the batch in-process. records[i] always corresponds to specs[i].
std::vector<BatchRecord> RunBatch(const std::vector<std::string>& specs,
                                  const BatchOptions& options);

/// Serializes one record as a single JSON-Lines line (trailing newline
/// included). The byte-identity guarantee of the sharded merge rests on
/// every emitter — worker and coordinator alike — going through this one
/// function.
void WriteBatchRecord(const BatchRecord& record, std::ostream& out);

/// Serializes one JSON object per record, one per line (JSON Lines).
void WriteBatchJson(const std::vector<BatchRecord>& records,
                    std::ostream& out);

/// `mintri batch <file-of-instances>`: args are everything after "batch".
int RunBatchCommand(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err);

}  // namespace mintri

#endif  // MINTRI_CLI_BATCH_H_
