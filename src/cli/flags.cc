#include "cli/flags.h"

#include <cerrno>
#include <climits>
#include <cstdlib>

#include "parallel/thread_pool.h"

namespace mintri {
namespace flags {

bool ParseNumber(const std::string& value, long long* out) {
  char* end = nullptr;
  errno = 0;
  *out = std::strtoll(value.c_str(), &end, 10);
  return end != value.c_str() && *end == '\0' && errno != ERANGE;
}

bool ParseNumber(const std::string& value, int* out) {
  long long wide;
  if (!ParseNumber(value, &wide) || wide < INT_MIN || wide > INT_MAX) {
    return false;
  }
  *out = static_cast<int>(wide);
  return true;
}

bool ParseNumber(const std::string& value, double* out) {
  char* end = nullptr;
  errno = 0;
  *out = std::strtod(value.c_str(), &end);
  return end != value.c_str() && *end == '\0' && errno != ERANGE;
}

bool ParseThreads(const std::string& value, int* out) {
  long long wide;
  if (!ParseNumber(value, &wide) || wide < 1 ||
      wide > parallel::kMaxRunThreads) {
    return false;
  }
  *out = static_cast<int>(wide);
  return true;
}

long long MaxThreads() { return parallel::kMaxRunThreads; }

}  // namespace flags
}  // namespace mintri
