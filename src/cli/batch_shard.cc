#include "cli/batch_shard.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>

#include "util/json_util.h"
#include "util/subprocess.h"
#include "util/timer.h"

namespace mintri {

namespace {

// A mkstemp-backed shard list file, unlinked on scope exit.
class TempListFile {
 public:
  TempListFile() = default;
  ~TempListFile() {
    if (!path_.empty()) unlink(path_.c_str());
  }
  TempListFile(const TempListFile&) = delete;
  TempListFile& operator=(const TempListFile&) = delete;
  TempListFile(TempListFile&& other) noexcept { std::swap(path_, other.path_); }
  TempListFile& operator=(TempListFile&& other) noexcept {
    std::swap(path_, other.path_);
    return *this;
  }

  bool Create(const std::vector<std::string>& specs, size_t first,
              size_t count, std::string* error) {
    const char* tmpdir = std::getenv("TMPDIR");
    std::string templ = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                        "/mintri_shard_XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    const int fd = mkstemp(buf.data());
    if (fd < 0) {
      *error = std::string("mkstemp: ") + std::strerror(errno);
      return false;
    }
    path_.assign(buf.data());
    std::string contents;
    for (size_t i = first; i < first + count; ++i) {
      contents += specs[i];
      contents += '\n';
    }
    size_t written = 0;
    while (written < contents.size()) {
      const ssize_t n =
          write(fd, contents.data() + written, contents.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        *error = std::string("write ") + path_ + ": " + std::strerror(errno);
        close(fd);
        return false;
      }
      written += static_cast<size_t>(n);
    }
    close(fd);
    return true;
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Inverse of AppendJsonString for the escapes it emits (quote, backslash,
// \n, \t, \u00xx); anything unexpected returns nullopt.
std::optional<std::string> UnescapeJsonString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (++i >= s.size()) return std::nullopt;
    switch (s[i]) {
      case '"':
        out += '"';
        break;
      case '\\':
        out += '\\';
        break;
      case 'n':
        out += '\n';
        break;
      case 't':
        out += '\t';
        break;
      case 'u': {
        if (i + 4 >= s.size()) return std::nullopt;
        out += static_cast<char>(
            std::strtol(s.substr(i + 1, 4).c_str(), nullptr, 16));
        i += 4;
        break;
      }
      default:
        return std::nullopt;
    }
  }
  return out;
}

// Extracts the value of a `"key": "..."` field from one record line emitted
// by WriteBatchRecord. The needle cannot occur inside a string value: any
// embedded quote is escaped there, so the bare `"key": "` byte sequence is
// unambiguous.
std::optional<std::string> ExtractStringField(const std::string& line,
                                              const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  size_t end = at + needle.size();
  while (end < line.size()) {
    if (line[end] == '\\') {
      end += 2;
      continue;
    }
    if (line[end] == '"') break;
    ++end;
  }
  if (end >= line.size()) return std::nullopt;
  return UnescapeJsonString(
      line.substr(at + needle.size(), end - (at + needle.size())));
}

std::optional<double> ExtractNumberField(const std::string& line,
                                         const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const char* start = line.c_str() + at + needle.size();
  char* end = nullptr;
  const double value = std::strtod(start, &end);
  if (end == start) return std::nullopt;
  return value;
}

// The argv a shard's child process runs: a single-process `mintri batch`
// over the shard list, JSON-Lines on stdout. The worker inherits every
// per-instance option but never --workers/--deadline/--stats — sharding is
// one level deep.
subprocess::Command WorkerCommand(const std::string& binary,
                                  const std::string& list_path,
                                  const BatchOptions& options) {
  subprocess::Command command;
  command.argv = {binary,
                  "batch",
                  list_path,
                  "--cost=" + options.cost,
                  "--top=" + std::to_string(options.top),
                  "--threads=" + std::to_string(options.threads),
                  "--inner-threads=" + std::to_string(options.inner_threads),
                  "--time-limit=" + std::to_string(options.time_limit),
                  "--tier=" + options.tier,
                  "--out=-"};
  if (!options.cache) command.argv.push_back("--no-cache");
  if (options.mask_timings) command.argv.push_back("--mask-timings");
  return command;
}

// Splits captured stdout into complete lines; a trailing fragment without a
// newline is returned separately (the truthful partial-output signal).
std::vector<std::string> SplitCompleteLines(const std::string& data,
                                            std::string* fragment) {
  std::vector<std::string> lines;
  size_t begin = 0;
  while (begin < data.size()) {
    const size_t nl = data.find('\n', begin);
    if (nl == std::string::npos) break;
    lines.push_back(data.substr(begin, nl - begin));
    begin = nl + 1;
  }
  *fragment = data.substr(begin);
  return lines;
}

std::string FirstLineOf(const std::string& s) {
  const size_t nl = s.find('\n');
  return nl == std::string::npos ? s : s.substr(0, nl);
}

}  // namespace

void PrintBatchStats(const BatchAggregateStats& stats, std::ostream& err) {
  for (const WorkerShardStats& w : stats.worker_stats) {
    err << "worker " << w.worker << ": instances [" << w.first << ", "
        << w.first + w.count << ") ok=" << w.ok << " failed=" << w.failed
        << " wall=" << w.wall_seconds << "s (" << w.termination << ")\n";
  }
  err << "batch: " << stats.instances << " instances, " << stats.ok
      << " ok, " << stats.failed << " failed; workers=" << stats.workers
      << " threads=" << stats.threads
      << " inner-threads=" << stats.inner_threads
      << "; wall=" << stats.wall_seconds
      << "s init_total=" << stats.init_seconds_total << "s\n";
  err << "tiers: exact=" << stats.tier_exact
      << " atom-exact=" << stats.tier_atom_exact
      << " heuristic=" << stats.tier_heuristic
      << "; preprocess: atoms=" << stats.atoms_total
      << " reduced_vertices=" << stats.reduced_vertices_total
      << " wall=" << stats.preprocess_seconds_total
      << "s; builds: tier1=" << stats.tier1_seconds_total
      << "s tier2=" << stats.tier2_seconds_total << "s\n";
  err << "bag-score cache (aggregate): lookups=" << stats.cache_lookups
      << " hits=" << stats.cache_hits << " misses=" << stats.cache_misses
      << " hit_rate=" << stats.CacheHitRate() << "\n";
}

void WriteBatchStatsJson(const BatchAggregateStats& stats,
                         std::ostream& out) {
  out << "{\"batch_stats_version\": 1, \"workers\": " << stats.workers
      << ", \"threads\": " << stats.threads
      << ", \"inner_threads\": " << stats.inner_threads << ", \"cost\": ";
  AppendJsonString(stats.cost, out);
  out << ", \"instances\": " << stats.instances << ", \"ok\": " << stats.ok
      << ", \"failed\": " << stats.failed
      << ", \"wall_seconds\": " << stats.wall_seconds
      << ", \"init_seconds_total\": " << stats.init_seconds_total
      << ", \"cache_lookups\": " << stats.cache_lookups
      << ", \"cache_hits\": " << stats.cache_hits
      << ", \"cache_misses\": " << stats.cache_misses
      << ", \"cache_hit_rate\": " << stats.CacheHitRate()
      << ", \"tier_exact\": " << stats.tier_exact
      << ", \"tier_atom_exact\": " << stats.tier_atom_exact
      << ", \"tier_heuristic\": " << stats.tier_heuristic
      << ", \"atoms\": " << stats.atoms_total
      << ", \"reduced_vertices\": " << stats.reduced_vertices_total
      << ", \"preprocess_seconds_total\": " << stats.preprocess_seconds_total
      << ", \"tier1_seconds_total\": " << stats.tier1_seconds_total
      << ", \"tier2_seconds_total\": " << stats.tier2_seconds_total
      << ", \"worker_stats\": [";
  for (size_t i = 0; i < stats.worker_stats.size(); ++i) {
    const WorkerShardStats& w = stats.worker_stats[i];
    if (i > 0) out << ", ";
    out << "{\"worker\": " << w.worker << ", \"first\": " << w.first
        << ", \"count\": " << w.count << ", \"ok\": " << w.ok
        << ", \"failed\": " << w.failed
        << ", \"wall_seconds\": " << w.wall_seconds << ", \"termination\": ";
    AppendJsonString(w.termination, out);
    out << "}";
  }
  out << "]}\n";
}

int RunShardedBatch(
    const std::vector<std::string>& specs, const BatchOptions& options,
    std::ostream& sink,
    std::vector<std::pair<std::string, std::string>>* statuses,
    BatchAggregateStats* stats, std::string* error) {
  WallTimer run_timer;
  const size_t n = specs.size();
  const int workers = static_cast<int>(
      std::max<size_t>(1, std::min<size_t>(options.workers, n)));

  std::string binary = options.worker_binary.empty()
                           ? subprocess::SelfExecutablePath()
                           : options.worker_binary;
  if (binary.empty()) {
    *error = "cannot resolve the worker binary (/proc/self/exe); pass "
             "--worker-binary=PATH";
    return -1;
  }

  // Contiguous, as-even-as-possible shards in input order: the first
  // n % workers shards carry one extra instance.
  std::vector<size_t> shard_first(workers), shard_count(workers);
  const size_t base = n / workers, extra = n % workers;
  for (int w = 0, at = 0; w < workers; ++w) {
    shard_first[w] = at;
    shard_count[w] = base + (static_cast<size_t>(w) < extra ? 1 : 0);
    at += static_cast<int>(shard_count[w]);
  }

  std::vector<TempListFile> lists(workers);
  std::vector<subprocess::Command> commands;
  for (int w = 0; w < workers; ++w) {
    if (!lists[w].Create(specs, shard_first[w], shard_count[w], error)) {
      return -1;
    }
    commands.push_back(WorkerCommand(binary, lists[w].path(), options));
  }

  std::vector<subprocess::Result> results =
      subprocess::RunAll(commands, options.deadline);

  stats->workers = workers;
  stats->threads = options.threads;
  stats->inner_threads = options.inner_threads;
  stats->cost = options.cost;
  stats->instances = static_cast<int>(n);

  int failures = 0;
  for (int w = 0; w < workers; ++w) {
    const subprocess::Result& result = results[w];
    WorkerShardStats ws;
    ws.worker = w;
    ws.first = static_cast<int>(shard_first[w]);
    ws.count = static_cast<int>(shard_count[w]);
    ws.wall_seconds = result.wall_seconds;
    ws.termination = subprocess::DescribeTermination(result);

    std::string fragment;
    std::vector<std::string> lines =
        SplitCompleteLines(result.stdout_data, &fragment);
    bool desynced = false;
    std::string desync_detail;
    for (size_t j = 0; j < shard_count[w]; ++j) {
      const std::string& spec = specs[shard_first[w] + j];
      if (!desynced && j < lines.size()) {
        const std::string& line = lines[j];
        const std::optional<std::string> instance =
            ExtractStringField(line, "instance");
        const std::optional<std::string> status =
            ExtractStringField(line, "status");
        if (instance.has_value() && *instance == spec && status.has_value()) {
          // A verbatim worker line: this is the byte-identity path.
          sink << line << '\n';
          statuses->emplace_back(
              *status, ExtractStringField(line, "error").value_or(""));
          if (*status == "ok") {
            ++ws.ok;
            stats->init_seconds_total +=
                ExtractNumberField(line, "init_seconds").value_or(0);
            const std::string tier =
                ExtractStringField(line, "tier").value_or("");
            if (tier == "exact") ++stats->tier_exact;
            if (tier == "atom-exact") ++stats->tier_atom_exact;
            if (tier == "heuristic") ++stats->tier_heuristic;
            stats->atoms_total += static_cast<long long>(
                ExtractNumberField(line, "atoms").value_or(0));
            stats->reduced_vertices_total += static_cast<long long>(
                ExtractNumberField(line, "reduced_vertices").value_or(0));
            stats->preprocess_seconds_total +=
                ExtractNumberField(line, "preprocess_seconds").value_or(0);
            stats->tier1_seconds_total +=
                ExtractNumberField(line, "tier1_seconds").value_or(0);
            stats->tier2_seconds_total +=
                ExtractNumberField(line, "tier2_seconds").value_or(0);
          } else {
            ++ws.failed;
            ++failures;
          }
          stats->cache_lookups += static_cast<long long>(
              ExtractNumberField(line, "cache_lookups").value_or(0));
          stats->cache_hits += static_cast<long long>(
              ExtractNumberField(line, "cache_hits").value_or(0));
          stats->cache_misses += static_cast<long long>(
              ExtractNumberField(line, "cache_misses").value_or(0));
          continue;
        }
        desynced = true;
        desync_detail = "worker output desynchronized at shard line " +
                        std::to_string(j) + " (expected instance " + spec +
                        ")";
      }
      // No trustworthy worker line for this instance: synthesize a truthful
      // error record through the same serializer the workers use.
      BatchRecord record;
      record.instance = spec;
      record.cost_name = options.cost;
      std::ostringstream detail;
      if (desynced) {
        record.status = "worker-crashed";
        detail << desync_detail << "; " << ws.termination;
      } else if (j == lines.size() && !fragment.empty()) {
        record.status = "worker-partial";
        detail << "worker emitted " << fragment.size()
               << " bytes of an unterminated record (" << ws.termination
               << ")";
      } else if (result.timed_out) {
        record.status = "worker-timeout";
        detail << "shard exceeded the --deadline=" << options.deadline
               << "s budget (" << ws.termination << ")";
      } else if (!result.spawned) {
        record.status = "worker-spawn-error";
        detail << ws.termination;
      } else {
        record.status = "worker-crashed";
        detail << "worker ended before emitting this record ("
               << ws.termination << ")";
      }
      if (!result.stderr_data.empty() && !result.timed_out) {
        detail << "; stderr: " << FirstLineOf(result.stderr_data);
      }
      record.error = detail.str();
      WriteBatchRecord(record, sink);
      statuses->emplace_back(record.status, record.error);
      ++ws.failed;
      ++failures;
    }
    stats->ok += ws.ok;
    stats->failed += ws.failed;
    stats->worker_stats.push_back(std::move(ws));
  }
  stats->wall_seconds = run_timer.Seconds();
  return failures;
}

}  // namespace mintri
