#ifndef MINTRI_CLI_CLI_H_
#define MINTRI_CLI_CLI_H_

#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace mintri {

/// The `mintri_cli` command-line front end, as a testable function.
///
///   mintri_cli [options] [graph.gr]
///   mintri_cli bench [suite...] [--smoke] [--out=FILE] [--quiet]
///
/// The `bench` subcommand runs the named benchmark suites (minseps, pmc,
/// enum; all when omitted) over the built-in workload families and writes
/// the machine-readable BENCH_core.json report (see src/bench).
///
/// Reads a graph in DIMACS/PACE ".gr" format (from the file argument or
/// stdin) and prints its minimal triangulations / proper tree
/// decompositions in ranked order. Options:
///
///   --cost=width|fill|width-then-fill|state-space   (default width)
///   --top=K            stop after K results          (default 5)
///   --algo=ranked|ckk  ranked enumeration or the CKK baseline
///   --bound=B          width bound (MinTriangB contexts)
///   --format=summary|td   per-result line, or PACE .td blocks
///   --time-limit=SEC   initialization budget in seconds (default 30)
///   --stats            print initialization statistics to stderr
///   --help             print usage and exit 0
///
/// Returns the process exit code (0 on success, 1 on usage/input errors,
/// 2 when initialization exceeds its limits).
int RunCli(const std::vector<std::string>& args, std::istream& in,
           std::ostream& out, std::ostream& err);

}  // namespace mintri

#endif  // MINTRI_CLI_CLI_H_
