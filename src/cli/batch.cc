#include "cli/batch.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

#include "cli/batch_shard.h"
#include "cli/flags.h"
#include "cost/cost_model_registry.h"
#include "enumeration/tiered_enum.h"
#include "parallel/thread_pool.h"
#include "util/json_util.h"
#include "util/timer.h"

namespace mintri {

namespace {

// Infinite costs (uncoverable bags under hypertree/fhw) have no JSON float
// representation; they serialize as null.
void AppendJsonCost(CostValue v, std::ostream& out) {
  if (std::isinf(v) || std::isnan(v)) {
    out << "null";
    return;
  }
  std::ostringstream os;
  os.precision(12);
  os << v;
  out << os.str();
}

BatchRecord RunOneInstance(const std::string& spec,
                           const BatchOptions& options) {
  BatchRecord record;
  record.instance = spec;
  record.cost_name = options.cost;

  std::string error;
  std::optional<CostModelInstance> instance = LoadInstance(spec, &error);
  if (!instance.has_value()) {
    record.status = "load-error";
    record.error = error;
    return record;
  }
  record.n = instance->graph.NumVertices();
  record.m = instance->graph.NumEdges();

  std::optional<CostModel> model =
      MakeCostModel(options.cost, *instance, options.cache, &error);
  if (!model.has_value()) {
    record.status = "cost-error";
    record.error = error;
    return record;
  }
  if (options.cost == "width-then-fill" &&
      instance->graph.ConnectedComponents().size() > 1) {
    record.status = "cost-error";
    record.error = "width-then-fill requires a connected graph";
    return record;
  }

  ContextOptions ctx_options;
  ctx_options.separator_limits.time_limit_seconds = options.time_limit;
  ctx_options.pmc_limits.time_limit_seconds = options.time_limit;
  ctx_options.num_threads = options.inner_threads;
  TierOptions tier_options;
  tier_options.mode = options.tier == "exact"
                          ? TierOptions::Mode::kExact
                          : options.tier == "heuristic"
                                ? TierOptions::Mode::kHeuristic
                                : TierOptions::Mode::kAuto;
  tier_options.decomposable_cost = IsTierDecomposableCost(options.cost);
  tier_options.exact_budget_seconds = options.time_limit;
  TieredEnumerator enumerator(instance->graph, *model->cost,
                              model->composition, ctx_options,
                              SolverOptions{}, tier_options);
  record.init_seconds = enumerator.init_seconds();
  if (!enumerator.init_ok()) {
    record.status = "init-failed";
    record.error = enumerator.init_info().TerminationName();
    return record;
  }
  record.tier = TierName(enumerator.tier());
  record.atoms = enumerator.preprocess_info().num_atoms;
  record.reduced_vertices = enumerator.preprocess_info().vertices_removed;
  record.preprocess_seconds = enumerator.preprocess_info().seconds;
  record.tier1_seconds = enumerator.tier1_seconds();
  record.tier2_seconds = enumerator.tier2_seconds();
  for (long long rank = 1; rank <= options.top; ++rank) {
    std::optional<TieredResult> t = enumerator.Next();
    if (!t.has_value()) break;
    BatchRecord::Row row;
    row.rank = static_cast<int>(rank);
    row.cost = t->triangulation.cost;
    row.width = t->triangulation.Width();
    row.fill = t->triangulation.FillIn(instance->graph);
    row.bags = static_cast<int>(t->triangulation.bags.size());
    record.results.push_back(row);
  }
  if (model->cache != nullptr) {
    const BagScoreCache::Stats stats = model->cache->stats();
    record.cache_lookups = stats.lookups;
    record.cache_hits = stats.hits;
    record.cache_misses = stats.misses;
  }
  record.status = "ok";
  return record;
}

// Fault-injection hook for the sharded-batch failure-path tests: the
// MINTRI_BATCH_FAULT environment variable ("crash:<spec>" or "hang:<spec>")
// makes the worker that owns <spec> die mid-record (an unterminated
// JSON line, then _Exit) or emit the record and hang until the
// coordinator's --deadline kills it. Inert unless the variable is set.
struct FaultSpec {
  bool crash = false;  // otherwise hang
  std::string instance;
};

std::optional<FaultSpec> ParseFaultSpec() {
  const char* raw = std::getenv("MINTRI_BATCH_FAULT");
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  const std::string value(raw);
  FaultSpec fault;
  if (value.rfind("crash:", 0) == 0) {
    fault.crash = true;
    fault.instance = value.substr(6);
  } else if (value.rfind("hang:", 0) == 0) {
    fault.crash = false;
    fault.instance = value.substr(5);
  } else {
    return std::nullopt;
  }
  return fault;
}

// Writes records as JSON Lines, honoring the fault hook. Returns the
// per-instance (status, error) pairs for the shared failure summary.
std::vector<std::pair<std::string, std::string>> WriteRecordsWithFaults(
    const std::vector<BatchRecord>& records, std::ostream& sink) {
  const std::optional<FaultSpec> fault = ParseFaultSpec();
  std::vector<std::pair<std::string, std::string>> statuses;
  for (const BatchRecord& r : records) {
    std::ostringstream os;
    WriteBatchRecord(r, os);
    const std::string line = os.str();
    if (fault.has_value() && fault->crash && r.instance == fault->instance) {
      sink.write(line.data(), static_cast<std::streamsize>(line.size() / 2));
      sink.flush();
      std::_Exit(70);
    }
    sink << line;
    if (fault.has_value() && !fault->crash && r.instance == fault->instance) {
      sink.flush();
      std::this_thread::sleep_for(std::chrono::hours(1));
    }
    statuses.emplace_back(r.status, r.error);
  }
  return statuses;
}

BatchAggregateStats AggregateInProcessStats(
    const std::vector<BatchRecord>& records, const BatchOptions& options,
    double wall_seconds) {
  BatchAggregateStats stats;
  stats.workers = 1;
  stats.threads = options.threads;
  stats.inner_threads = options.inner_threads;
  stats.cost = options.cost;
  stats.instances = static_cast<int>(records.size());
  stats.wall_seconds = wall_seconds;
  WorkerShardStats ws;
  ws.worker = 0;
  ws.first = 0;
  ws.count = static_cast<int>(records.size());
  ws.wall_seconds = wall_seconds;
  ws.termination = "in-process";
  for (const BatchRecord& r : records) {
    if (r.status == "ok") {
      ++stats.ok;
      ++ws.ok;
      stats.init_seconds_total += r.init_seconds;
    } else {
      ++stats.failed;
      ++ws.failed;
    }
    stats.cache_lookups += r.cache_lookups;
    stats.cache_hits += r.cache_hits;
    stats.cache_misses += r.cache_misses;
    if (r.tier == "exact") ++stats.tier_exact;
    if (r.tier == "atom-exact") ++stats.tier_atom_exact;
    if (r.tier == "heuristic") ++stats.tier_heuristic;
    stats.atoms_total += r.atoms;
    stats.reduced_vertices_total += r.reduced_vertices;
    stats.preprocess_seconds_total += r.preprocess_seconds;
    stats.tier1_seconds_total += r.tier1_seconds;
    stats.tier2_seconds_total += r.tier2_seconds;
  }
  stats.worker_stats.push_back(std::move(ws));
  return stats;
}

constexpr char kBatchUsage[] =
    "usage: mintri batch <file-of-instances> [options]\n"
    "\n"
    "Rank-enumerates every instance listed in the file (one spec per line;\n"
    "'#' comments). A spec is a path (.gr graph, .hg hypergraph, .uai\n"
    "factor list) or a builtin: tpch:<q> (TPC-H query hypergraph),\n"
    "tpch-graph:<q> (join graph), gm:<name> (graphical model). Instances\n"
    "fan out across a thread pool — parallel across queries — and one JSON\n"
    "record per instance is emitted in input order, identical at every\n"
    "--threads value. --workers=N additionally shards the list across N\n"
    "child processes (contiguous ranges, deterministic in-order merge: the\n"
    "output stream is byte-identical to --workers=1); a worker that\n"
    "crashes or exceeds --deadline yields per-instance error records\n"
    "instead of hanging the run.\n"
    "\n"
    "  --cost=NAME        width|fill|width-then-fill|state-space|\n"
    "                     hypertree|fhw              (default width)\n"
    "  --top=K            ranked results per instance (default 3)\n"
    "  --threads=N        instances processed concurrently (default 1)\n"
    "  --inner-threads=N  context-build threads per instance (default 1)\n"
    "  --workers=N        shard across N child processes (default 1 =\n"
    "                     in-process)\n"
    "  --deadline=SEC     per-shard wall budget; a straggling worker is\n"
    "                     killed and its unfinished instances reported as\n"
    "                     worker-timeout records (default: none)\n"
    "  --time-limit=SEC   per-stage initialization budget (default 30)\n"
    "  --tier=auto|exact|heuristic  solve pipeline per instance (default\n"
    "                     auto); see `mintri rank --help`. Each record\n"
    "                     carries the truthful tier label\n"
    "  --no-cache         disable the memoized bag-score cache\n"
    "  --stats            per-worker + aggregate summary on stderr\n"
    "  --stats-json=FILE  machine-readable aggregate stats (validated by\n"
    "                     scripts/validate_bench_json.py --batch-stats)\n"
    "  --worker-binary=P  mintri binary to spawn as workers (default:\n"
    "                     this executable)\n"
    "  --mask-timings     zero init_seconds in records, for byte-exact\n"
    "                     output comparison (testing hook)\n"
    "  --out=FILE         output path (default '-' for stdout)\n"
    "  --help             show this message and exit\n";

}  // namespace

std::vector<BatchRecord> RunBatch(const std::vector<std::string>& specs,
                                  const BatchOptions& options) {
  std::vector<BatchRecord> records(specs.size());
  std::atomic<size_t> cursor{0};
  const int threads = std::max(
      1, std::min(options.threads, static_cast<int>(specs.size())));
  parallel::RunOnThreads(threads, [&](int) {
    while (true) {
      const size_t i = cursor.fetch_add(1);
      if (i >= specs.size()) break;
      records[i] = RunOneInstance(specs[i], options);
    }
  });
  if (options.mask_timings) {
    for (BatchRecord& r : records) {
      r.init_seconds = 0;
      r.preprocess_seconds = 0;
      r.tier1_seconds = 0;
      r.tier2_seconds = 0;
    }
  }
  return records;
}

void WriteBatchRecord(const BatchRecord& r, std::ostream& out) {
  out << "{\"instance\": ";
  AppendJsonString(r.instance, out);
  out << ", \"cost\": ";
  AppendJsonString(r.cost_name, out);
  out << ", \"status\": ";
  AppendJsonString(r.status, out);
  out << ", \"n\": " << r.n << ", \"m\": " << r.m << ", \"init_seconds\": ";
  AppendJsonCost(r.init_seconds, out);
  out << ", \"cache_lookups\": " << r.cache_lookups
      << ", \"cache_hits\": " << r.cache_hits
      << ", \"cache_misses\": " << r.cache_misses << ", \"tier\": ";
  AppendJsonString(r.tier, out);
  out << ", \"atoms\": " << r.atoms
      << ", \"reduced_vertices\": " << r.reduced_vertices
      << ", \"preprocess_seconds\": ";
  AppendJsonCost(r.preprocess_seconds, out);
  out << ", \"tier1_seconds\": ";
  AppendJsonCost(r.tier1_seconds, out);
  out << ", \"tier2_seconds\": ";
  AppendJsonCost(r.tier2_seconds, out);
  if (!r.error.empty()) {
    out << ", \"error\": ";
    AppendJsonString(r.error, out);
  }
  out << ", \"results\": [";
  for (size_t i = 0; i < r.results.size(); ++i) {
    const BatchRecord::Row& row = r.results[i];
    if (i > 0) out << ", ";
    out << "{\"rank\": " << row.rank << ", \"cost\": ";
    AppendJsonCost(row.cost, out);
    out << ", \"width\": " << row.width << ", \"fill\": " << row.fill
        << ", \"bags\": " << row.bags << "}";
  }
  out << "]}\n";
}

void WriteBatchJson(const std::vector<BatchRecord>& records,
                    std::ostream& out) {
  for (const BatchRecord& r : records) WriteBatchRecord(r, out);
}

int RunBatchCommand(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err) {
  BatchOptions options;
  std::string list_path;
  std::string out_path = "-";
  for (const std::string& arg : args) {
    if (arg == "--help" || arg == "-h") {
      out << kBatchUsage;
      return 0;
    } else if (arg.rfind("--cost=", 0) == 0) {
      options.cost = arg.substr(7);
    } else if (arg.rfind("--top=", 0) == 0) {
      if (!flags::ParseNumber(arg.substr(6), &options.top) ||
          options.top < 1) {
        err << "invalid value for --top: " << arg.substr(6)
            << " (expected an integer >= 1)\n";
        return 1;
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (!flags::ParseThreads(arg.substr(10), &options.threads)) {
        err << "invalid value for --threads: " << arg.substr(10)
            << " (expected an integer in 1.." << flags::MaxThreads()
            << ")\n";
        return 1;
      }
    } else if (arg.rfind("--inner-threads=", 0) == 0) {
      if (!flags::ParseThreads(arg.substr(16), &options.inner_threads)) {
        err << "invalid value for --inner-threads: " << arg.substr(16)
            << " (expected an integer in 1.." << flags::MaxThreads()
            << ")\n";
        return 1;
      }
    } else if (arg.rfind("--workers=", 0) == 0) {
      // Worker processes obey the same 1..MaxThreads() ceiling as threads:
      // each worker is at least one OS thread on this box.
      if (!flags::ParseThreads(arg.substr(10), &options.workers)) {
        err << "invalid value for --workers: " << arg.substr(10)
            << " (expected an integer in 1.." << flags::MaxThreads()
            << ")\n";
        return 1;
      }
    } else if (arg.rfind("--deadline=", 0) == 0) {
      if (!flags::ParseNumber(arg.substr(11), &options.deadline) ||
          !(options.deadline > 0)) {
        err << "invalid value for --deadline: " << arg.substr(11)
            << " (expected a positive number of seconds)\n";
        return 1;
      }
    } else if (arg.rfind("--time-limit=", 0) == 0) {
      if (!flags::ParseNumber(arg.substr(13), &options.time_limit) ||
          !(options.time_limit > 0)) {
        err << "invalid value for --time-limit: " << arg.substr(13)
            << " (expected a positive number of seconds)\n";
        return 1;
      }
    } else if (arg.rfind("--tier=", 0) == 0) {
      options.tier = arg.substr(7);
      if (options.tier != "auto" && options.tier != "exact" &&
          options.tier != "heuristic") {
        err << "invalid value for --tier: " << options.tier
            << " (expected auto, exact, or heuristic)\n";
        return 1;
      }
    } else if (arg == "--no-cache") {
      options.cache = false;
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg.rfind("--stats-json=", 0) == 0) {
      options.stats_json = arg.substr(13);
      if (options.stats_json.empty()) {
        err << "invalid value for --stats-json: expected a file path\n";
        return 1;
      }
    } else if (arg.rfind("--worker-binary=", 0) == 0) {
      options.worker_binary = arg.substr(16);
      if (options.worker_binary.empty()) {
        err << "invalid value for --worker-binary: expected a binary path\n";
        return 1;
      }
    } else if (arg == "--mask-timings") {
      options.mask_timings = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (!arg.empty() && arg[0] == '-') {
      err << "unknown option: " << arg << "\n";
      return 1;
    } else if (list_path.empty()) {
      list_path = arg;
    } else {
      err << "unexpected argument: " << arg << "\n";
      return 1;
    }
  }
  if (list_path.empty()) {
    err << kBatchUsage;
    return 1;
  }

  std::ifstream list(list_path);
  if (!list) {
    err << "cannot open " << list_path << "\n";
    return 1;
  }
  std::vector<std::string> specs;
  std::string line;
  while (std::getline(list, line)) {
    const size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos || line[begin] == '#') continue;
    const size_t end = line.find_last_not_of(" \t\r");
    specs.push_back(line.substr(begin, end - begin + 1));
  }
  if (specs.empty()) {
    err << list_path << ": no instances listed\n";
    return 1;
  }

  std::ofstream file;
  if (out_path != "-") {
    file.open(out_path);
    if (!file) {
      err << "cannot write " << out_path << "\n";
      return 1;
    }
  }
  std::ostream& sink = out_path == "-" ? out : file;

  std::vector<std::pair<std::string, std::string>> statuses;
  BatchAggregateStats stats;
  if (options.workers > 1) {
    std::string error;
    const int failures =
        RunShardedBatch(specs, options, sink, &statuses, &stats, &error);
    if (failures < 0) {
      err << error << "\n";
      return 1;
    }
  } else {
    WallTimer timer;
    std::vector<BatchRecord> records = RunBatch(specs, options);
    statuses = WriteRecordsWithFaults(records, sink);
    stats = AggregateInProcessStats(records, options, timer.Seconds());
  }

  int failures = 0;
  for (size_t i = 0; i < statuses.size(); ++i) {
    if (statuses[i].first != "ok") {
      err << specs[i] << ": " << statuses[i].first
          << (statuses[i].second.empty() ? "" : " (" + statuses[i].second + ")")
          << "\n";
      ++failures;
    }
  }
  if (options.stats) PrintBatchStats(stats, err);
  if (!options.stats_json.empty()) {
    std::ofstream stats_file(options.stats_json);
    if (!stats_file) {
      err << "cannot write " << options.stats_json << "\n";
      return 1;
    }
    WriteBatchStatsJson(stats, stats_file);
  }
  err << stats.ok << "/" << statuses.size() << " instances ranked (cost "
      << options.cost << ", " << options.workers << " workers, "
      << options.threads << " threads)\n";
  return failures == 0 ? 0 : 2;
}

}  // namespace mintri
