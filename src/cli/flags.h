#ifndef MINTRI_CLI_FLAGS_H_
#define MINTRI_CLI_FLAGS_H_

#include <string>

namespace mintri {
namespace flags {

/// Strict numeric-flag parsing shared by every mintri subcommand (rank,
/// batch, bench), so `--threads=8abc` or an overflowing `--top=` behaves
/// identically everywhere: the whole string must parse (trailing garbage is
/// rejected), and out-of-range values are rejected instead of silently
/// saturating (strtoll's ERANGE clamp to LLONG_MAX) or truncating
/// (long long → int narrowing).
bool ParseNumber(const std::string& value, long long* out);
bool ParseNumber(const std::string& value, int* out);
bool ParseNumber(const std::string& value, double* out);

/// A thread count must land in [1, MaxThreads()] — the same ceiling the
/// parallel engines clamp to, so --threads=N never lies about the worker
/// count. The range check runs on the wide parse (no silent int truncation
/// for values like 2^32+1).
bool ParseThreads(const std::string& value, int* out);
long long MaxThreads();

}  // namespace flags
}  // namespace mintri

#endif  // MINTRI_CLI_FLAGS_H_
