#ifndef MINTRI_CLI_BATCH_SHARD_H_
#define MINTRI_CLI_BATCH_SHARD_H_

#include <ostream>
#include <string>
#include <vector>

#include "cli/batch.h"

namespace mintri {

/// Per-worker outcome of one sharded batch run (also used, with a single
/// "in-process" pseudo-worker, for the unsharded path's --stats output).
struct WorkerShardStats {
  int worker = 0;
  int first = 0;             // global index of the shard's first instance
  int count = 0;             // instances in the shard
  int ok = 0;                // records with status "ok"
  int failed = 0;            // everything else, synthesized records included
  double wall_seconds = 0;   // spawn-to-reap (in-process: whole run)
  std::string termination;   // "exit 0" | "signal 9 (...)" | "in-process" ...
};

/// Aggregated statistics over one `mintri batch` run, merged across all
/// workers. Serialized by WriteBatchStatsJson and validated by
/// scripts/validate_bench_json.py --batch-stats.
struct BatchAggregateStats {
  int workers = 1;
  int threads = 1;
  int inner_threads = 1;
  std::string cost;
  int instances = 0;
  int ok = 0;
  int failed = 0;
  double wall_seconds = 0;         // coordinator wall clock for the run
  double init_seconds_total = 0;   // summed over ok records
  long long cache_lookups = 0;     // summed bag-score cache counters
  long long cache_hits = 0;
  long long cache_misses = 0;
  // Tiered-pipeline tallies, summed over ok records: how many streams
  // resolved at each tier plus the Tier-0 and per-tier build wall clock.
  long long tier_exact = 0;
  long long tier_atom_exact = 0;
  long long tier_heuristic = 0;
  long long atoms_total = 0;
  long long reduced_vertices_total = 0;
  double preprocess_seconds_total = 0;
  double tier1_seconds_total = 0;
  double tier2_seconds_total = 0;
  std::vector<WorkerShardStats> worker_stats;

  double CacheHitRate() const {
    return cache_lookups > 0
               ? static_cast<double>(cache_hits) / cache_lookups
               : 0.0;
  }
};

/// Human-readable per-worker + aggregate summary (the --stats output).
void PrintBatchStats(const BatchAggregateStats& stats, std::ostream& err);

/// Machine-readable aggregate stats (the --stats-json output).
void WriteBatchStatsJson(const BatchAggregateStats& stats, std::ostream& out);

/// The multi-process coordinator behind `mintri batch --workers=N`:
/// partitions specs into contiguous shards (as even as possible, in input
/// order), spawns one child `mintri batch` process per shard (JSON-Lines on
/// a captured stdout pipe), and merges the complete lines back in shard
/// order — so a healthy run's output stream is byte-identical to the
/// in-process run at every (workers, threads, inner-threads) split. A
/// worker that crashes, desynchronizes, or outlives options.deadline is
/// reported truthfully: each of its unfinished instances yields a
/// synthesized per-instance error record (status "worker-crashed" /
/// "worker-partial" / "worker-timeout" / "worker-spawn-error") instead of
/// hanging or silently dropping output.
///
/// Writes merged records to sink, appends one (status, error) pair per
/// instance to statuses, and fills stats. Returns the number of non-ok
/// records, or -1 on a coordinator-level failure (error is set and nothing
/// is written).
int RunShardedBatch(const std::vector<std::string>& specs,
                    const BatchOptions& options, std::ostream& sink,
                    std::vector<std::pair<std::string, std::string>>* statuses,
                    BatchAggregateStats* stats, std::string* error);

}  // namespace mintri

#endif  // MINTRI_CLI_BATCH_SHARD_H_
