#include "bench/bench_suites.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "cost/cost_model_registry.h"
#include "cost/standard_costs.h"
#include "enumeration/ranked_forest.h"
#include "enumeration/tiered_enum.h"
#include "parallel/thread_pool.h"
#include "pmc/potential_maximal_cliques.h"
#include "separators/minimal_separators.h"
#include "util/json_util.h"
#include "util/timer.h"
#include "workloads/families.h"
#include "workloads/inference_models.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"
#include "workloads/tpch_queries.h"

#ifndef MINTRI_GIT_SHA
#define MINTRI_GIT_SHA "unknown"
#endif

namespace mintri {
namespace bench {

namespace {

// Smoke mode trims the sweep to a CI-sized gate: cheap, deterministic,
// always-tractable families, few graphs each, tight budgets.
constexpr int kSmokeGraphsPerFamily = 3;
constexpr double kSmokeBudgetFactor = 0.25;
const char* const kSmokeFamilies[] = {"Grids", "CSP", "TPC-H"};

struct SuiteContext {
  bool smoke = false;
  double budget_factor = 1.0;
  int threads = 1;
};

bool SmokeIncludesFamily(const std::string& name) {
  for (const char* f : kSmokeFamilies) {
    if (name == f) return true;
  }
  return false;
}

BenchEntry MakeEntry(const std::string& suite, const SuiteContext& ctx,
                     const workloads::DatasetFamily& family,
                     const workloads::DatasetGraph& dg) {
  BenchEntry e;
  e.suite = suite;
  e.family = family.name;
  e.graph = dg.name;
  e.n = dg.graph.NumVertices();
  e.m = dg.graph.NumEdges();
  e.threads = ctx.threads;
  return e;
}

void FinishEntry(BenchEntry* e, long long count, double wall_seconds,
                 const std::string& status) {
  e->count = count;
  e->wall_ms = wall_seconds * 1000.0;
  e->results_per_sec = wall_seconds > 0 ? count / wall_seconds : 0.0;
  e->status = status;
}

BenchEntry RunMinSeps(const SuiteContext& ctx,
                      const workloads::DatasetFamily& family,
                      const workloads::DatasetGraph& dg) {
  BenchEntry e = MakeEntry("minseps", ctx, family, dg);
  EnumerationLimits limits;
  limits.time_limit_seconds = MinSepBudget() * ctx.budget_factor;
  limits.max_results = kMaxSeparators;
  limits.num_threads = ctx.threads;
  WallTimer timer;
  MinimalSeparatorsResult r = ListMinimalSeparators(dg.graph, limits);
  FinishEntry(&e, static_cast<long long>(r.separators.size()),
              timer.Seconds(),
              r.status == EnumerationStatus::kComplete ? "complete"
                                                       : "truncated");
  return e;
}

BenchEntry RunPmc(const SuiteContext& ctx,
                  const workloads::DatasetFamily& family,
                  const workloads::DatasetGraph& dg) {
  BenchEntry e = MakeEntry("pmc", ctx, family, dg);
  EnumerationLimits sep_limits;
  sep_limits.time_limit_seconds = MinSepBudget() * ctx.budget_factor;
  sep_limits.max_results = kMaxSeparators;
  sep_limits.num_threads = ctx.threads;
  WallTimer timer;
  MinimalSeparatorsResult seps = ListMinimalSeparators(dg.graph, sep_limits);
  if (seps.status != EnumerationStatus::kComplete) {
    FinishEntry(&e, 0, timer.Seconds(), "ms-terminated");
    return e;
  }
  PmcOptions options;
  options.limits.time_limit_seconds = PmcBudget() * ctx.budget_factor;
  options.limits.num_threads = ctx.threads;
  timer.Reset();
  PmcResult pmcs =
      ListPotentialMaximalCliques(dg.graph, seps.separators, options);
  FinishEntry(&e, static_cast<long long>(pmcs.pmcs.size()), timer.Seconds(),
              pmcs.status == EnumerationStatus::kComplete ? "complete"
                                                          : "truncated");
  return e;
}

ContextOptions MakeContextOptions(const SuiteContext& ctx, double budget) {
  ContextOptions options;
  options.separator_limits.time_limit_seconds = budget;
  options.separator_limits.max_results = kMaxSeparators;
  options.pmc_limits.time_limit_seconds = budget;
  options.num_threads = ctx.threads;
  return options;
}

BenchEntry RunEnum(const SuiteContext& ctx,
                   const workloads::DatasetFamily& family,
                   const workloads::DatasetGraph& dg) {
  BenchEntry e = MakeEntry("enum", ctx, family, dg);
  e.cost = "width";
  const double budget = EnumBudget() * ctx.budget_factor;
  ContextOptions options = MakeContextOptions(ctx, budget);
  WidthCost cost;
  WallTimer timer;
  RankedForestEnumerator enumerator(dg.graph, cost, CostComposition::kMax,
                                    options);
  e.init_seconds = enumerator.init_seconds();
  if (!enumerator.init_ok()) {
    FinishEntry(&e, 0, timer.Seconds(),
                enumerator.init_info().TerminationName());
    return e;
  }
  long long count = 0;
  bool finished = false;
  while (timer.Seconds() < budget &&
         count < static_cast<long long>(kMaxResults)) {
    if (!enumerator.Next().has_value()) {
      finished = true;
      break;
    }
    ++count;
  }
  FinishEntry(&e, count, timer.Seconds(),
              finished ? "complete" : "truncated");
  return e;
}

// The ranked suite is the Fig. 5 / Table 2 experiment class end to end:
// context initialization at the entry's thread count, then ranked
// enumeration, reporting init_seconds and the after-first-result
// throughput (the paper's enumeration-rate measure, which excludes the
// one-off initialization the pipeline amortizes). Each entry runs one
// repair engine (`solver`); the default sweep runs both per point, back to
// back, so the report is its own interleaved before/after comparison. The
// enumeration budget doubles as a solver deadline, so a repair pass that
// overruns is cut inside the loop and reported truthfully as truncated
// rather than blowing past the budget.
BenchEntry RunRanked(const SuiteContext& ctx,
                     const workloads::DatasetFamily& family,
                     const workloads::DatasetGraph& dg,
                     const std::string& solver) {
  BenchEntry e = MakeEntry("ranked", ctx, family, dg);
  e.cost = "width";
  e.solver = solver;
  const double budget = EnumBudget() * ctx.budget_factor;
  ContextOptions options = MakeContextOptions(ctx, budget);
  SolverOptions solver_options;
  solver_options.use_candidate_index = solver == "indexed";
  WidthCost cost;
  WallTimer timer;
  RankedForestEnumerator enumerator(dg.graph, cost, CostComposition::kMax,
                                    options, solver_options);
  e.init_seconds = enumerator.init_seconds();
  if (!enumerator.init_ok()) {
    FinishEntry(&e, 0, timer.Seconds(),
                enumerator.init_info().TerminationName());
    return e;
  }
  const Deadline deadline(budget);
  enumerator.SetDeadline(&deadline);
  long long count = 0;
  double first_result_seconds = 0;
  bool finished = false;
  while (timer.Seconds() < budget &&
         count < static_cast<long long>(kMaxResults)) {
    if (!enumerator.Next().has_value()) {
      finished = !enumerator.truncated();
      break;
    }
    ++count;
    if (count == 1) first_result_seconds = timer.Seconds();
  }
  const double wall = timer.Seconds();
  FinishEntry(&e, count, wall, finished ? "complete" : "truncated");
  e.results_per_sec = (count > 1 && wall > first_result_seconds)
                          ? (count - 1) / (wall - first_result_seconds)
                          : 0.0;
  e.candidate_evals = enumerator.num_candidate_evals();
  e.combine_calls = enumerator.num_combine_calls();
  e.index_updates = enumerator.num_index_updates();
  e.range_queries = enumerator.num_range_queries();
  return e;
}

// The huge suite's own family: PACE-scale graphs (>= 1000 vertices) that
// the direct exact stack cannot initialize within the scaled budgets —
// the tiered pipeline's territory. Not part of workloads::AllFamilies(),
// so the exact-path suites never stall on them. Smoke keeps only the grid.
std::vector<workloads::DatasetFamily> HugeFamilies(bool smoke) {
  workloads::DatasetFamily f;
  f.name = "Huge";
  f.graphs.push_back({"grid-32x32", workloads::Grid(32, 32)});
  if (!smoke) {
    f.graphs.push_back({"cycle-2000", workloads::Cycle(2000)});
    f.graphs.push_back({"tree-4096", workloads::RandomTree(4096, 7)});
    f.graphs.push_back(
        {"er-1500", workloads::ConnectedErdosRenyi(1500, 0.002, 11)});
  }
  return {std::move(f)};
}

// The huge suite: the tiered pipeline (auto mode) on PACE-scale graphs.
// Unlike the ranked suite, the enumeration loop gets its own budget after
// initialization — the init phase deliberately spends the exact budget
// before degrading, and the point of the suite is the post-degradation
// ranked stream, not an init-dominated zero.
BenchEntry RunHuge(const SuiteContext& ctx,
                   const workloads::DatasetFamily& family,
                   const workloads::DatasetGraph& dg) {
  BenchEntry e = MakeEntry("huge", ctx, family, dg);
  e.cost = "width";
  const double budget = EnumBudget() * ctx.budget_factor;
  ContextOptions options = MakeContextOptions(ctx, budget);
  TierOptions tier_options;
  tier_options.decomposable_cost = true;  // width
  tier_options.exact_budget_seconds = budget;
  WidthCost cost;
  TieredEnumerator enumerator(dg.graph, cost, CostComposition::kMax, options,
                              SolverOptions{}, tier_options);
  e.init_seconds = enumerator.init_seconds();
  e.tier = TierName(enumerator.tier());
  WallTimer timer;
  const Deadline deadline(budget);
  enumerator.SetDeadline(&deadline);
  long long count = 0;
  double first_result_seconds = 0;
  bool finished = false;
  while (timer.Seconds() < budget &&
         count < static_cast<long long>(kMaxResults)) {
    if (!enumerator.Next().has_value()) {
      finished = !enumerator.truncated();
      break;
    }
    ++count;
    if (count == 1) first_result_seconds = timer.Seconds();
  }
  const double wall = timer.Seconds();
  FinishEntry(&e, count, wall, finished ? "complete" : "truncated");
  e.results_per_sec = (count > 1 && wall > first_result_seconds)
                          ? (count - 1) / (wall - first_result_seconds)
                          : 0.0;
  return e;
}

// One appcost instance: an application cost over a loaded problem instance
// (the paper's headline workloads — TPC-H conjunctive queries under the
// edge-cover costs, graphical models under the junction-tree state space).
struct AppCostCase {
  std::string family;
  std::string graph;
  std::string cost;
  CostModelInstance instance;
};

std::vector<AppCostCase> AppCostCases() {
  std::vector<AppCostCase> cases;
  // Grouped by family (the smoke cap counts per contiguous family run).
  for (const char* cost : {"hypertree", "fhw"}) {
    for (const workloads::TpchQuery& q : workloads::AllTpchQueries()) {
      if (q.graph.NumEdges() == 0) continue;  // joinless: nothing to cover
      CostModelInstance instance;
      instance.name = "q" + std::to_string(q.number);
      Hypergraph h = workloads::TpchQueryHypergraph(q);
      instance.graph = h.PrimalGraph();
      instance.hypergraph = std::move(h);
      cases.push_back({std::string("TPC-H-") + cost, instance.name, cost,
                       std::move(instance)});
    }
  }
  for (workloads::NamedModel& nm : workloads::InferenceModels()) {
    CostModelInstance instance;
    instance.name = nm.name;
    instance.graph = nm.model.MarkovGraph();
    instance.model = std::move(nm.model);
    cases.push_back(
        {"GraphicalModels", instance.name, "state-space", std::move(instance)});
  }
  return cases;
}

// The appcost suite: ranked enumeration under the application costs, with
// the memoized bag-score cache in front of the edge-cover scores — the
// reported hit rate is the fraction of candidate evaluations the ranked
// stack avoided re-solving.
BenchEntry RunAppCost(const SuiteContext& ctx, const AppCostCase& acase) {
  BenchEntry e;
  e.suite = "appcost";
  e.family = acase.family;
  e.graph = acase.graph;
  e.n = acase.instance.graph.NumVertices();
  e.m = acase.instance.graph.NumEdges();
  e.threads = ctx.threads;
  e.cost = acase.cost;
  std::string error;
  std::optional<CostModel> model =
      MakeCostModel(acase.cost, acase.instance, /*enable_cache=*/true,
                    &error);
  if (!model.has_value()) {
    // A case list entry whose instance lacks the payload its cost needs
    // (registry bug or a future mis-wired case) — report, don't crash.
    FinishEntry(&e, 0, 0.0, "cost-error");
    return e;
  }
  const double budget = EnumBudget() * ctx.budget_factor;
  ContextOptions options = MakeContextOptions(ctx, budget);
  WallTimer timer;
  RankedForestEnumerator enumerator(acase.instance.graph, *model->cost,
                                    model->composition, options);
  e.init_seconds = enumerator.init_seconds();
  if (!enumerator.init_ok()) {
    FinishEntry(&e, 0, timer.Seconds(),
                enumerator.init_info().TerminationName());
    return e;
  }
  long long count = 0;
  bool finished = false;
  while (timer.Seconds() < budget &&
         count < static_cast<long long>(kMaxResults)) {
    if (!enumerator.Next().has_value()) {
      finished = true;
      break;
    }
    ++count;
  }
  FinishEntry(&e, count, timer.Seconds(),
              finished ? "complete" : "truncated");
  if (model->cache != nullptr) {
    e.cache_hit_rate = model->cache->stats().HitRate();
  }
  return e;
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed << v;
  std::string s = os.str();
  // Trim trailing zeros (keep at least one decimal digit so the value stays
  // a JSON float).
  size_t last = s.find_last_not_of('0');
  if (s[last] == '.') ++last;
  return s.substr(0, last + 1);
}

}  // namespace

double TimeScale() {
  const char* env = std::getenv("MINTRI_TIME_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

double MinSepBudget() { return 0.5 * TimeScale(); }
double PmcBudget() { return 2.5 * TimeScale(); }
double EnumBudget() { return 1.5 * TimeScale(); }

const std::vector<std::string>& AllSuiteNames() {
  static const std::vector<std::string> kNames = {
      "minseps", "pmc", "enum", "ranked", "appcost", "huge"};
  return kNames;
}

bool IsKnownSuite(const std::string& name) {
  const std::vector<std::string>& all = AllSuiteNames();
  return std::find(all.begin(), all.end(), name) != all.end();
}

std::string GitSha() {
  const char* env = std::getenv("MINTRI_GIT_SHA");
  if (env != nullptr && env[0] != '\0') return env;
  return MINTRI_GIT_SHA;
}

BenchReport RunBenchSuites(const BenchRunOptions& options,
                           std::ostream* progress) {
  BenchReport report;
  report.git_sha = GitSha();
  report.time_scale = TimeScale();
  report.smoke = options.smoke;
  report.suites = options.suites.empty() ? AllSuiteNames() : options.suites;

  SuiteContext ctx;
  ctx.smoke = options.smoke;
  ctx.budget_factor = options.smoke ? kSmokeBudgetFactor : 1.0;
  const std::vector<std::string> ranked_solvers =
      options.solver.empty() ? std::vector<std::string>{"indexed", "scan"}
                             : std::vector<std::string>{options.solver};

  for (const std::string& suite : report.suites) {
    // The appcost suite runs its own instance list (application costs over
    // TPC-H hypergraphs and graphical models), not the plain-graph
    // families.
    if (suite == "appcost") {
      SuiteContext app_ctx = ctx;
      app_ctx.threads = options.threads > 0 ? options.threads : 1;
      int used_in_family = 0;
      std::string current_family;
      for (const AppCostCase& acase : AppCostCases()) {
        if (acase.family != current_family) {
          current_family = acase.family;
          used_in_family = 0;
        }
        if (app_ctx.smoke && used_in_family >= kSmokeGraphsPerFamily) {
          continue;
        }
        ++used_in_family;
        BenchEntry entry = RunAppCost(app_ctx, acase);
        if (progress != nullptr) {
          *progress << "appcost[" << entry.cost << "] " << entry.family
                    << "/" << entry.graph << ": " << entry.count
                    << " results in " << FormatDouble(entry.wall_ms)
                    << " ms (" << entry.status << ", cache "
                    << FormatDouble(entry.cache_hit_rate) << ")\n";
        }
        report.entries.push_back(std::move(entry));
      }
      continue;
    }
    // The huge suite runs its own PACE-scale family through the tiered
    // pipeline, one serial point per graph (the tier-2 path is serial; the
    // exact attempts inside still honor --threads).
    if (suite == "huge") {
      SuiteContext huge_ctx = ctx;
      huge_ctx.threads = options.threads > 0 ? options.threads : 1;
      for (const workloads::DatasetFamily& family :
           HugeFamilies(ctx.smoke)) {
        for (const workloads::DatasetGraph& dg : family.graphs) {
          BenchEntry entry = RunHuge(huge_ctx, family, dg);
          if (progress != nullptr) {
            *progress << "huge[t=" << huge_ctx.threads << ", " << entry.tier
                      << "] " << family.name << "/" << dg.name << ": "
                      << entry.count << " results in "
                      << FormatDouble(entry.wall_ms) << " ms ("
                      << entry.status << ")\n";
          }
          report.entries.push_back(std::move(entry));
        }
      }
      continue;
    }
    // The parallel-capable suites sweep serial vs. all-hardware so every
    // report carries its own baseline; --threads=N pins a single point. The
    // ranked suite sweeps too — its thread count drives the context
    // initialization phase (the enumeration itself is serial); the legacy
    // enum suite stays a single serial point.
    std::vector<int> thread_points;
    if (options.threads > 0) {
      thread_points = {options.threads};
    } else if (suite == "enum") {
      thread_points = {1};
    } else {
      thread_points = {1, parallel::DefaultParallelThreads()};
    }
    for (int threads : thread_points) {
      ctx.threads = threads;
      for (const workloads::DatasetFamily& family :
           workloads::AllFamilies()) {
        if (ctx.smoke && !SmokeIncludesFamily(family.name)) continue;
        int used = 0;
        for (const workloads::DatasetGraph& dg : family.graphs) {
          if (ctx.smoke && used >= kSmokeGraphsPerFamily) break;
          ++used;
          // The ranked suite produces one entry per repair engine at each
          // (threads, graph) point, back to back on the same machine state
          // — an interleaved comparison, not two separate runs.
          std::vector<BenchEntry> produced;
          if (suite == "minseps") {
            produced.push_back(RunMinSeps(ctx, family, dg));
          } else if (suite == "pmc") {
            produced.push_back(RunPmc(ctx, family, dg));
          } else if (suite == "ranked") {
            for (const std::string& solver : ranked_solvers) {
              produced.push_back(RunRanked(ctx, family, dg, solver));
            }
          } else {
            produced.push_back(RunEnum(ctx, family, dg));
          }
          for (BenchEntry& entry : produced) {
            if (progress != nullptr) {
              *progress << suite << "[t=" << threads
                        << (entry.solver.empty() ? "" : ", " + entry.solver)
                        << "] " << family.name << "/" << dg.name << ": "
                        << entry.count << " results in "
                        << FormatDouble(entry.wall_ms) << " ms ("
                        << entry.status << ")\n";
            }
            report.entries.push_back(std::move(entry));
          }
        }
      }
    }
  }
  return report;
}

void WriteBenchJson(const BenchReport& report, std::ostream& out) {
  out << "{\n";
  out << "  \"schema_version\": " << report.schema_version << ",\n";
  out << "  \"git_sha\": ";
  AppendJsonString(report.git_sha, out);
  out << ",\n";
  out << "  \"time_scale\": " << FormatDouble(report.time_scale) << ",\n";
  out << "  \"smoke\": " << (report.smoke ? "true" : "false") << ",\n";
  out << "  \"suites\": [";
  for (size_t i = 0; i < report.suites.size(); ++i) {
    if (i > 0) out << ", ";
    AppendJsonString(report.suites[i], out);
  }
  out << "],\n";
  out << "  \"entries\": [\n";
  for (size_t i = 0; i < report.entries.size(); ++i) {
    const BenchEntry& e = report.entries[i];
    out << "    {\"suite\": ";
    AppendJsonString(e.suite, out);
    out << ", \"family\": ";
    AppendJsonString(e.family, out);
    out << ", \"graph\": ";
    AppendJsonString(e.graph, out);
    out << ", \"n\": " << e.n << ", \"m\": " << e.m
        << ", \"threads\": " << e.threads << ", \"count\": " << e.count
        << ", \"wall_ms\": " << FormatDouble(e.wall_ms)
        << ", \"results_per_sec\": " << FormatDouble(e.results_per_sec)
        << ", \"init_seconds\": " << FormatDouble(e.init_seconds)
        << ", \"cost\": ";
    AppendJsonString(e.cost, out);
    out << ", \"solver\": ";
    AppendJsonString(e.solver, out);
    out << ", \"candidate_evals\": " << e.candidate_evals
        << ", \"combine_calls\": " << e.combine_calls
        << ", \"index_updates\": " << e.index_updates
        << ", \"range_queries\": " << e.range_queries
        << ", \"cache_hit_rate\": " << FormatDouble(e.cache_hit_rate)
        << ", \"tier\": ";
    AppendJsonString(e.tier, out);
    out << ", \"status\": ";
    AppendJsonString(e.status, out);
    out << "}" << (i + 1 < report.entries.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

}  // namespace bench
}  // namespace mintri
