#ifndef MINTRI_BENCH_BENCH_SUITES_H_
#define MINTRI_BENCH_BENCH_SUITES_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace mintri {
namespace bench {

/// All wall-clock budgets in the benchmark harness are the paper's limits
/// scaled down so a full run finishes in minutes (the paper's Section 7 runs
/// take server-days). MINTRI_TIME_SCALE multiplies every budget (e.g.
/// MINTRI_TIME_SCALE=10 for a slower, more faithful run).
double TimeScale();

/// Scaled stand-ins for the paper's limits.
double MinSepBudget();  // paper: 60 s
double PmcBudget();     // paper: 30 min
double EnumBudget();    // paper: 30 min

/// Result-count caps shared by the JSON pipeline and the paper-figure
/// benches, so both harnesses always measure under the same ceilings.
inline constexpr size_t kMaxSeparators = 200000;
inline constexpr size_t kMaxResults = 100000;

/// One benchmarked (suite, graph) pair of BENCH_core.json.
struct BenchEntry {
  std::string suite;   // "minseps" | "pmc" | "enum" | "ranked" | "appcost"
                       // | "huge"
  std::string family;  // workload family name (Fig. 5 naming)
  std::string graph;   // graph name within the family
  int n = 0;           // vertices
  int m = 0;           // edges
  int threads = 1;     // enumeration worker threads for this run
  long long count = 0;          // results produced within budget
  double wall_ms = 0.0;         // wall time spent on this graph
  /// count / wall seconds; the ranked suite instead reports triangulations
  /// per second *after the first result*, the paper's Table 2 measure.
  double results_per_sec = 0.0;
  /// Context initialization (seconds) for the context-building suites
  /// (enum/ranked/appcost); 0 elsewhere.
  double init_seconds = 0.0;
  /// The ranking cost ("width" for enum/ranked; "hypertree" | "fhw" |
  /// "state-space" for appcost entries; empty for the enumeration-only
  /// suites, which rank nothing).
  std::string cost;
  /// Memoized bag-score cache hit rate in [0, 1] (appcost entries under
  /// the edge-cover costs; 0 where no cache runs).
  double cache_hit_rate = 0.0;
  /// The ranked suite's repair engine for this entry — "indexed" (segment
  /// tree) or "scan" (list-scan baseline); empty for the other suites. The
  /// default ranked sweep runs every (threads, graph) point with both back
  /// to back, so one report carries its own before/after comparison.
  std::string solver;
  /// Solver repair cost for the ranked suite (0 elsewhere): candidate
  /// evaluations, evaluations that reached the base Combine, and the
  /// segment-tree point updates / range-min queries (0 under "scan").
  long long candidate_evals = 0;
  long long combine_calls = 0;
  long long index_updates = 0;
  long long range_queries = 0;
  /// "complete" | "truncated" | "ms-terminated" | "pmc-terminated"
  /// (the last two are the Fig. 5 taxonomy of which init stage gave up).
  std::string status;
  /// The tiered pipeline's truthful stream label for the huge suite
  /// ("exact" | "atom-exact" | "heuristic"); empty for the suites that run
  /// the direct exact stack.
  std::string tier;
};

/// The machine-readable benchmark report (serialized as BENCH_core.json).
/// Schema history: v2 added the per-entry solver + repair-counter fields,
/// then the huge suite's per-entry tier label (same version: the field is
/// emitted for every entry).
struct BenchReport {
  int schema_version = 2;
  std::string git_sha;
  double time_scale = 1.0;
  bool smoke = false;
  std::vector<std::string> suites;
  std::vector<BenchEntry> entries;
};

struct BenchRunOptions {
  /// Subset of AllSuiteNames(); empty means all.
  std::vector<std::string> suites;
  /// Smoke mode: a few cheap families, capped graphs per family, and
  /// budgets scaled down — sized for a CI gate, not for trend analysis.
  bool smoke = false;
  /// Worker threads. 0 (the default) sweeps the minseps/pmc suites over
  /// {1, parallel::DefaultParallelThreads()} so the report always carries a
  /// serial baseline next to the parallel numbers; a positive value runs
  /// every suite at exactly that thread count.
  int threads = 0;
  /// Repair engine for the ranked suite: "indexed" | "scan" pins one path;
  /// empty (the default) runs every ranked point with both, interleaved, so
  /// the report compares them under identical machine conditions.
  std::string solver;
};

const std::vector<std::string>& AllSuiteNames();
bool IsKnownSuite(const std::string& name);

/// Runs the selected suites over the src/workloads families. When `progress`
/// is non-null, one line per (suite, graph) is streamed to it.
BenchReport RunBenchSuites(const BenchRunOptions& options,
                           std::ostream* progress);

/// Serializes the report as pretty-printed JSON (the BENCH_core.json
/// schema; see README "Benchmarks" and scripts/validate_bench_json.py).
void WriteBenchJson(const BenchReport& report, std::ostream& out);

/// The git sha baked in at configure time; the MINTRI_GIT_SHA environment
/// variable overrides it, and "unknown" is the fallback.
std::string GitSha();

}  // namespace bench
}  // namespace mintri

#endif  // MINTRI_BENCH_BENCH_SUITES_H_
