#include "pmc/potential_maximal_cliques.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "graph/bitset_kernels.h"
#include "graph/vertex_set_pool.h"
#include "graph/vertex_set_table.h"
#include "parallel/sharded_set.h"
#include "parallel/thread_pool.h"

namespace mintri {

namespace {

// Scratch-reusing IsPmc tester. One component scan delivers every N(C)
// together with the full-component check; the cliquish test runs over a
// flattened cover bitmap ([v * words + w] instead of one heap vector per
// vertex). Keep one tester alive across candidate checks — its buffers are
// recycled — and use one tester per thread.
class PmcTester {
 public:
  bool Test(const Graph& g, const VertexSet& omega) {
    if (omega.Empty()) return false;
    const int n = g.NumVertices();

    // N(C) per component of G \ Ω, stopping early on a full component
    // (Ω would not be maximal).
    num_seps_ = 0;
    const bool no_full_component =
        scanner_.ForEachComponentWhile(
            g, omega, [&](const VertexSet&, const VertexSet& nb) {
              if (nb == omega) return false;
              if (num_seps_ < seps_.size()) {
                seps_[num_seps_] = nb;  // reuses the element's buffer
              } else {
                seps_.push_back(nb);
              }
              ++num_seps_;
              return true;
            });
    if (!no_full_component) return false;

    // Cliquish test: every non-adjacent pair within Ω must be covered by
    // some component neighborhood. cover_[v * stride + w] = bitset over
    // `seps_` containing v. Rows wide enough for the SIMD path get their
    // stride padded to a whole cache line so, with the buffer's aligned
    // base, every row the intersect kernel touches starts aligned; narrow
    // rows keep stride == words — the bitmap is re-zeroed on every IsPmc
    // call, so padding 1–2-word rows to 8 words just multiplies that
    // memset (and the cache footprint) for kernels that never dispatch.
    const size_t words = (num_seps_ + 63) / 64;
    const size_t stride =
        words < bitset::kSimdMinWords ? words : bitset::AlignWords(words);
    cover_.assign(static_cast<size_t>(n) * stride, 0);
    for (size_t i = 0; i < num_seps_; ++i) {
      seps_[i].ForEach([&](int v) {
        cover_[static_cast<size_t>(v) * stride + (i >> 6)] |=
            uint64_t{1} << (i & 63);
      });
    }
    members_.clear();
    omega.ForEach([&](int v) { members_.push_back(v); });
    for (size_t a = 0; a < members_.size(); ++a) {
      for (size_t b = a + 1; b < members_.size(); ++b) {
        const int x = members_[a], y = members_[b];
        if (g.HasEdge(x, y)) continue;
        const uint64_t* cx = cover_.data() + static_cast<size_t>(x) * stride;
        const uint64_t* cy = cover_.data() + static_cast<size_t>(y) * stride;
        if (!bitset::Intersects(cx, cy, words)) return false;
      }
    }
    return true;
  }

 private:
  ComponentScanner scanner_;
  std::vector<VertexSet> seps_;
  size_t num_seps_ = 0;
  bitset::WordVector cover_;
  std::vector<int> members_;
};

// Thresholds below which the parallel paths fall back to serial: a
// fork-join plus per-worker scratch costs tens of microseconds, which
// dwarfs the real work on tiny prefix graphs / candidate spaces. Both
// paths produce the same sets, so the cutover is unobservable in results.
constexpr int kMinParallelVertices = 20;
constexpr size_t kMinParallelItems = 64;

// State of the vertex-incremental enumeration, over the relabeled graph
// whose vertex i is the i-th vertex in the insertion order.
class IncrementalEnumerator {
 public:
  IncrementalEnumerator(const Graph& g, const PmcOptions& options)
      : g_(g), options_(options), deadline_(options.limits.time_limit_seconds) {}

  // Runs the enumeration; returns PMCs of g (relabeled universe).
  PmcResult Run() {
    PmcResult result;
    const int n = g_.NumVertices();
    if (n == 0) return result;

    // PMC(G_1) for the single-vertex prefix.
    std::vector<VertexSet> pmcs = {VertexSet::Single(1, 0)};

    for (int i = 1; i < n; ++i) {
      // Build G_{i+1} over vertices 0..i.
      Graph next(i + 1);
      for (int u = 0; u <= i; ++u) {
        g_.Neighbors(u).ForEach([&](int v) {
          if (v < u && u <= i) next.AddEdge(u, v);
        });
      }
      EnumerationLimits sep_limits;
      sep_limits.time_limit_seconds = deadline_.RemainingSeconds();
      // Tiny prefix graphs finish in microseconds; below the threshold the
      // fork-join would cost more than the enumeration itself.
      sep_limits.num_threads =
          i + 1 >= kMinParallelVertices ? options_.limits.num_threads : 1;
      MinimalSeparatorsResult seps = ListMinimalSeparators(next, sep_limits);
      if (seps.status != EnumerationStatus::kComplete) {
        result.status = EnumerationStatus::kTruncated;
        return result;
      }
      std::vector<VertexSet> next_pmcs;
      if (!Step(next, i, pmcs, seps.separators, &next_pmcs)) {
        result.status = EnumerationStatus::kTruncated;
        return result;
      }
      pmcs = std::move(next_pmcs);
    }
    result.pmcs = std::move(pmcs);
    result.status = EnumerationStatus::kComplete;
    return result;
  }

 private:
  // Computes PMC(G_{i+1}) from PMC(G_i) and MinSep(G_{i+1}); vertex `a = i`
  // is the new vertex. Returns false when a limit was hit.
  bool Step(const Graph& next, int a, const std::vector<VertexSet>& prev_pmcs,
            const std::vector<VertexSet>& next_seps,
            std::vector<VertexSet>* out) {
    // Parallelize only once the candidate space can amortize the fork-join
    // (spawning threads and per-worker scratch costs tens of microseconds;
    // early prefix steps do less total work than that).
    if (options_.limits.num_threads > 1 &&
        prev_pmcs.size() + 2 * next_seps.size() >= kMinParallelItems) {
      return ParallelStep(next, a, prev_pmcs, next_seps, out);
    }
    // Per-step dedup on the shared arena/table layout: Clear() keeps the
    // slot array and arena capacity across steps, so after the first few
    // prefix steps the table stops allocating entirely. (The previous
    // std::unordered_set spent one node allocation on every distinct
    // candidate — the single hottest allocation site of the serial PMC
    // path once VertexSets themselves went inline.)
    tried_.Clear();
    auto consider = [&](VertexSet&& omega) -> bool {
      if (omega.Empty() || omega.Count() > options_.max_size ||
          !tried_.Insert(omega)) {
        pool_.Release(std::move(omega));
        return true;
      }
      if (tester_.Test(next, omega)) {
        out->push_back(std::move(omega));
        if (out->size() > options_.limits.max_results) return false;
      } else {
        pool_.Release(std::move(omega));
      }
      return true;
    };

    const std::vector<const VertexSet*> t_list = CaseFourTList(next_seps, a);
    const size_t num_items = prev_pmcs.size() + 2 * next_seps.size();
    for (size_t item = 0; item < num_items; ++item) {
      if (deadline_.Expired()) return false;
      if (!GenerateCandidates(next, a, prev_pmcs, next_seps, t_list, item,
                              &scanner_, &components_, &pool_, consider)) {
        return false;
      }
    }
    return true;
  }

  // The T's of the case-4 products S ∪ (T ∩ C). Unless exhaustive_pairs is
  // set, T ranges only over the separators containing the new vertex a (the
  // Bouchitté–Todinca case analysis; validated against brute force in the
  // test suite).
  std::vector<const VertexSet*> CaseFourTList(
      const std::vector<VertexSet>& next_seps, int a) const {
    std::vector<const VertexSet*> t_list;
    for (const VertexSet& t : next_seps) {
      if (options_.exhaustive_pairs || t.Contains(a)) t_list.push_back(&t);
    }
    return t_list;
  }

  // Generates the PMC candidates of one item of the flat work space
  // [0, |prev_pmcs| + 2|next_seps|) and feeds them to `consider`, stopping
  // early when it returns false (the return value is forwarded). Items are:
  // case 1 & 2 (a prefix PMC, lifted with and without the new vertex a),
  // then case 3 (S ∪ {a} for a separator S), then case 4 (the products
  // S ∪ (T ∩ C) for one outer separator S). Both the serial and the
  // parallel Step run on this single generator, so the case analysis can
  // never diverge between them; scratch is caller-supplied (per-thread in
  // the parallel path). Candidate sets come from the caller's free-list
  // pool and `consider` takes ownership — it must either keep the set (an
  // accepted PMC) or Release it back, so the generate-mostly-reject loop
  // recycles the same few buffers instead of churning one per candidate.
  template <typename Consider>
  static bool GenerateCandidates(const Graph& next, int a,
                                 const std::vector<VertexSet>& prev_pmcs,
                                 const std::vector<VertexSet>& next_seps,
                                 const std::vector<const VertexSet*>& t_list,
                                 size_t item, ComponentScanner* scanner,
                                 std::vector<VertexSet>* components,
                                 VertexSetPool* pool, const Consider& consider) {
    const size_t num_pmcs = prev_pmcs.size();
    const size_t num_seps = next_seps.size();
    const int n = next.NumVertices();
    if (item < num_pmcs) {
      VertexSet omega = pool->Acquire(n);
      prev_pmcs[item].ForEach([&](int v) { omega.Insert(v); });
      VertexSet with_a = pool->Acquire(n);
      with_a = omega;  // buffer-reusing copy
      with_a.Insert(a);
      return consider(std::move(omega)) && consider(std::move(with_a));
    }
    if (item < num_pmcs + num_seps) {
      VertexSet omega = pool->Acquire(n);
      omega = next_seps[item - num_pmcs];
      omega.Insert(a);
      return consider(std::move(omega));
    }
    const VertexSet& s = next_seps[item - num_pmcs - num_seps];
    scanner->Components(next, s, components);
    for (const VertexSet* t : t_list) {
      if (*t == s) continue;
      for (const VertexSet& c : *components) {
        VertexSet cand = pool->Acquire(n);
        cand = *t;
        cand.IntersectWith(c);
        if (cand.Empty()) {
          pool->Release(std::move(cand));
          continue;
        }
        cand.UnionWith(s);
        if (!consider(std::move(cand))) return false;
      }
    }
    return true;
  }

  // Multi-threaded Step: the candidate *sources* (prefix PMCs for cases 1&2,
  // separators for case 3, case-4 outer separators S) form a flat index
  // space that workers claim from an atomic cursor; each worker tests its
  // candidates with its own PmcTester/ComponentScanner scratch, dedup goes
  // through a sharded table on the cached VertexSet hashes, and accepted
  // PMCs land in per-worker vectors that are concatenated at the join. The
  // output *set* is exactly the serial one (every candidate is considered
  // and IsPmc is order-independent); only the order within `out` differs,
  // and ListPotentialMaximalCliques sorts the final result anyway.
  bool ParallelStep(const Graph& next, int a,
                    const std::vector<VertexSet>& prev_pmcs,
                    const std::vector<VertexSet>& next_seps,
                    std::vector<VertexSet>* out) {
    // Clamped before sizing shard/worker state, mirroring RunOnThreads.
    const int num_threads =
        std::clamp(options_.limits.num_threads, 1, parallel::kMaxRunThreads);
    const std::vector<const VertexSet*> t_list = CaseFourTList(next_seps, a);
    const size_t num_items = prev_pmcs.size() + 2 * next_seps.size();

    parallel::ShardedVertexSetTable tried(4 * num_threads);
    std::atomic<size_t> cursor{0};
    std::atomic<size_t> accepted{0};
    std::atomic<bool> stopped{false};
    std::vector<std::vector<VertexSet>> worker_out(num_threads);

    parallel::RunOnThreads(num_threads, [&](int worker) {
      PmcTester tester;
      ComponentScanner scanner;
      std::vector<VertexSet> components;
      VertexSetPool pool;
      std::vector<VertexSet>& local_out = worker_out[worker];

      auto consider = [&](VertexSet&& omega) -> bool {
        if (omega.Empty() || omega.Count() > options_.max_size ||
            !tried.Insert(omega)) {
          pool.Release(std::move(omega));
          return true;
        }
        if (tester.Test(next, omega)) {
          local_out.push_back(std::move(omega));
          if (accepted.fetch_add(1, std::memory_order_relaxed) + 1 >
              options_.limits.max_results) {
            return false;
          }
        } else {
          pool.Release(std::move(omega));
        }
        return true;
      };

      while (!stopped.load(std::memory_order_relaxed)) {
        const size_t item = cursor.fetch_add(1, std::memory_order_relaxed);
        if (item >= num_items) break;
        if (deadline_.Expired()) {
          stopped.store(true, std::memory_order_relaxed);
          break;
        }
        if (!GenerateCandidates(next, a, prev_pmcs, next_seps, t_list, item,
                                &scanner, &components, &pool, consider)) {
          stopped.store(true, std::memory_order_relaxed);
          break;
        }
      }
    });

    if (stopped.load(std::memory_order_relaxed)) return false;
    for (std::vector<VertexSet>& chunk : worker_out) {
      for (VertexSet& omega : chunk) out->push_back(std::move(omega));
    }
    return true;
  }

  const Graph& g_;
  const PmcOptions& options_;
  Deadline deadline_;

  // Reused scratch.
  PmcTester tester_;
  ComponentScanner scanner_;
  std::vector<VertexSet> components_;
  VertexSetPool pool_;
  VertexSetTable tried_;
};

}  // namespace

bool IsPmc(const Graph& g, const VertexSet& omega) {
  PmcTester tester;
  return tester.Test(g, omega);
}

PmcResult ListPotentialMaximalCliques(const Graph& g,
                                      const std::vector<VertexSet>& separators,
                                      const PmcOptions& options) {
  (void)separators;  // kept in the signature for API symmetry and future use
  const int n = g.NumVertices();
  PmcResult result;
  if (n == 0) return result;

  // A PMC of a disconnected graph is a PMC of one of its components
  // (minimal triangulations act per component), so recurse component-wise.
  std::vector<VertexSet> components = g.ConnectedComponents();
  if (components.size() > 1) {
    for (const VertexSet& comp : components) {
      std::vector<int> old_of_new(comp.Count());
      {
        int next = 0;
        comp.ForEach([&](int v) { old_of_new[next++] = v; });
      }
      Graph sub = g.InducedSubgraph(comp);
      PmcResult part = ListPotentialMaximalCliques(sub, {}, options);
      if (part.status != EnumerationStatus::kComplete) {
        result.status = EnumerationStatus::kTruncated;
        return result;
      }
      for (const VertexSet& p : part.pmcs) {
        VertexSet mapped(n);
        p.ForEach([&](int v) { mapped.Insert(old_of_new[v]); });
        result.pmcs.push_back(std::move(mapped));
      }
    }
    std::sort(result.pmcs.begin(), result.pmcs.end());
    result.status = EnumerationStatus::kComplete;
    return result;
  }

  // Connectivity-preserving insertion order (BFS from vertex 0), so every
  // prefix graph is connected.
  std::vector<int> order;
  order.reserve(n);
  {
    VertexSet visited = VertexSet::Single(n, 0);
    std::vector<int> queue = {0};
    for (size_t head = 0; head < queue.size(); ++head) {
      int v = queue[head];
      order.push_back(v);
      g.Neighbors(v).ForEach([&](int u) {
        if (!visited.Contains(u)) {
          visited.Insert(u);
          queue.push_back(u);
        }
      });
    }
  }
  assert(static_cast<int>(order.size()) == n);

  // Relabel so that the insertion order is 0..n-1.
  std::vector<int> new_of_old(n);
  for (int i = 0; i < n; ++i) new_of_old[order[i]] = i;
  Graph relabeled(n);
  for (const auto& [u, v] : g.Edges()) {
    relabeled.AddEdge(new_of_old[u], new_of_old[v]);
  }

  IncrementalEnumerator enumerator(relabeled, options);
  PmcResult inner = enumerator.Run();
  result.status = inner.status;
  result.pmcs.reserve(inner.pmcs.size());
  for (const VertexSet& p : inner.pmcs) {
    VertexSet mapped(n);
    p.ForEach([&](int v) { mapped.Insert(order[v]); });
    result.pmcs.push_back(std::move(mapped));
  }
  std::sort(result.pmcs.begin(), result.pmcs.end());
  return result;
}

std::vector<VertexSet> PmcsBruteForce(const Graph& g) {
  const int n = g.NumVertices();
  std::vector<VertexSet> out;
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    VertexSet omega(n);
    for (int v = 0; v < n; ++v) {
      if ((mask >> v) & 1) omega.Insert(v);
    }
    if (IsPmc(g, omega)) out.push_back(std::move(omega));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mintri
