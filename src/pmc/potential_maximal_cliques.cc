#include "pmc/potential_maximal_cliques.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace mintri {

namespace {

// Scratch-reusing IsPmc tester. One component scan delivers every N(C)
// together with the full-component check; the cliquish test runs over a
// flattened cover bitmap ([v * words + w] instead of one heap vector per
// vertex). Keep one tester alive across candidate checks — its buffers are
// recycled — and use one tester per thread.
class PmcTester {
 public:
  bool Test(const Graph& g, const VertexSet& omega) {
    if (omega.Empty()) return false;
    const int n = g.NumVertices();

    // N(C) per component of G \ Ω, stopping early on a full component
    // (Ω would not be maximal).
    num_seps_ = 0;
    const bool no_full_component =
        scanner_.ForEachComponentWhile(
            g, omega, [&](const VertexSet&, const VertexSet& nb) {
              if (nb == omega) return false;
              if (num_seps_ < seps_.size()) {
                seps_[num_seps_] = nb;  // reuses the element's buffer
              } else {
                seps_.push_back(nb);
              }
              ++num_seps_;
              return true;
            });
    if (!no_full_component) return false;

    // Cliquish test: every non-adjacent pair within Ω must be covered by
    // some component neighborhood. cover_[v * words + w] = bitset over
    // `seps_` containing v.
    const size_t words = (num_seps_ + 63) / 64;
    cover_.assign(static_cast<size_t>(n) * words, 0);
    for (size_t i = 0; i < num_seps_; ++i) {
      seps_[i].ForEach([&](int v) {
        cover_[static_cast<size_t>(v) * words + (i >> 6)] |=
            uint64_t{1} << (i & 63);
      });
    }
    members_.clear();
    omega.ForEach([&](int v) { members_.push_back(v); });
    for (size_t a = 0; a < members_.size(); ++a) {
      for (size_t b = a + 1; b < members_.size(); ++b) {
        const int x = members_[a], y = members_[b];
        if (g.HasEdge(x, y)) continue;
        const uint64_t* cx = cover_.data() + static_cast<size_t>(x) * words;
        const uint64_t* cy = cover_.data() + static_cast<size_t>(y) * words;
        bool covered = false;
        for (size_t w = 0; w < words; ++w) {
          if ((cx[w] & cy[w]) != 0) {
            covered = true;
            break;
          }
        }
        if (!covered) return false;
      }
    }
    return true;
  }

 private:
  ComponentScanner scanner_;
  std::vector<VertexSet> seps_;
  size_t num_seps_ = 0;
  std::vector<uint64_t> cover_;
  std::vector<int> members_;
};

// State of the vertex-incremental enumeration, over the relabeled graph
// whose vertex i is the i-th vertex in the insertion order.
class IncrementalEnumerator {
 public:
  IncrementalEnumerator(const Graph& g, const PmcOptions& options)
      : g_(g), options_(options), deadline_(options.limits.time_limit_seconds) {}

  // Runs the enumeration; returns PMCs of g (relabeled universe).
  PmcResult Run() {
    PmcResult result;
    const int n = g_.NumVertices();
    if (n == 0) return result;

    // PMC(G_1) for the single-vertex prefix.
    std::vector<VertexSet> pmcs = {VertexSet::Single(1, 0)};

    for (int i = 1; i < n; ++i) {
      // Build G_{i+1} over vertices 0..i.
      Graph next(i + 1);
      for (int u = 0; u <= i; ++u) {
        g_.Neighbors(u).ForEach([&](int v) {
          if (v < u && u <= i) next.AddEdge(u, v);
        });
      }
      EnumerationLimits sep_limits;
      sep_limits.time_limit_seconds = deadline_.RemainingSeconds();
      MinimalSeparatorsResult seps = ListMinimalSeparators(next, sep_limits);
      if (seps.status != EnumerationStatus::kComplete) {
        result.status = EnumerationStatus::kTruncated;
        return result;
      }
      std::vector<VertexSet> next_pmcs;
      if (!Step(next, i, pmcs, seps.separators, &next_pmcs)) {
        result.status = EnumerationStatus::kTruncated;
        return result;
      }
      pmcs = std::move(next_pmcs);
    }
    result.pmcs = std::move(pmcs);
    result.status = EnumerationStatus::kComplete;
    return result;
  }

 private:
  // Computes PMC(G_{i+1}) from PMC(G_i) and MinSep(G_{i+1}); vertex `a = i`
  // is the new vertex. Returns false when a limit was hit.
  bool Step(const Graph& next, int a, const std::vector<VertexSet>& prev_pmcs,
            const std::vector<VertexSet>& next_seps,
            std::vector<VertexSet>* out) {
    const int n1 = next.NumVertices();
    tried_.clear();
    auto consider = [&](VertexSet omega) -> bool {
      if (omega.Empty() || omega.Count() > options_.max_size) return true;
      if (!tried_.insert(omega).second) return true;
      if (tester_.Test(next, omega)) {
        out->push_back(std::move(omega));
        if (out->size() > options_.limits.max_results) return false;
      }
      return true;
    };

    auto lift = [&](const VertexSet& small) {
      VertexSet big(n1);
      small.ForEach([&](int v) { big.Insert(v); });
      return big;
    };

    // Case 1 & 2: PMCs of the prefix, with and without the new vertex.
    for (const VertexSet& p : prev_pmcs) {
      VertexSet omega = lift(p);
      VertexSet with_a = omega;
      with_a.Insert(a);
      if (!consider(std::move(omega))) return false;
      if (!consider(std::move(with_a))) return false;
      if (deadline_.Expired()) return false;
    }

    // Case 3: S ∪ {a} for minimal separators S of G_{i+1}.
    for (const VertexSet& s : next_seps) {
      VertexSet omega = s;
      omega.Insert(a);
      if (!consider(std::move(omega))) return false;
      if (deadline_.Expired()) return false;
    }

    // Case 4: S ∪ (T ∩ C) for S, T ∈ MinSep(G_{i+1}) and C a component of
    // G_{i+1} \ S. Unless exhaustive_pairs is set, T ranges only over the
    // separators containing the new vertex a (the Bouchitté–Todinca case
    // analysis; validated against brute force in the test suite).
    std::vector<const VertexSet*> t_list;
    for (const VertexSet& t : next_seps) {
      if (options_.exhaustive_pairs || t.Contains(a)) t_list.push_back(&t);
    }
    for (const VertexSet& s : next_seps) {
      if (deadline_.Expired()) return false;
      scanner_.Components(next, s, &components_);
      for (const VertexSet* t : t_list) {
        if (*t == s) continue;
        for (const VertexSet& c : components_) {
          extra_ = *t;
          extra_.IntersectWith(c);
          if (extra_.Empty()) continue;
          extra_.UnionWith(s);
          if (!consider(extra_)) return false;
        }
      }
    }
    return true;
  }

  const Graph& g_;
  const PmcOptions& options_;
  Deadline deadline_;

  // Reused scratch.
  PmcTester tester_;
  ComponentScanner scanner_;
  std::vector<VertexSet> components_;
  VertexSet extra_;
  std::unordered_set<VertexSet, VertexSetHash> tried_;
};

}  // namespace

bool IsPmc(const Graph& g, const VertexSet& omega) {
  PmcTester tester;
  return tester.Test(g, omega);
}

PmcResult ListPotentialMaximalCliques(const Graph& g,
                                      const std::vector<VertexSet>& separators,
                                      const PmcOptions& options) {
  (void)separators;  // kept in the signature for API symmetry and future use
  const int n = g.NumVertices();
  PmcResult result;
  if (n == 0) return result;

  // A PMC of a disconnected graph is a PMC of one of its components
  // (minimal triangulations act per component), so recurse component-wise.
  std::vector<VertexSet> components = g.ConnectedComponents();
  if (components.size() > 1) {
    for (const VertexSet& comp : components) {
      std::vector<int> old_of_new(comp.Count());
      {
        int next = 0;
        comp.ForEach([&](int v) { old_of_new[next++] = v; });
      }
      Graph sub = g.InducedSubgraph(comp);
      PmcResult part = ListPotentialMaximalCliques(sub, {}, options);
      if (part.status != EnumerationStatus::kComplete) {
        result.status = EnumerationStatus::kTruncated;
        return result;
      }
      for (const VertexSet& p : part.pmcs) {
        VertexSet mapped(n);
        p.ForEach([&](int v) { mapped.Insert(old_of_new[v]); });
        result.pmcs.push_back(std::move(mapped));
      }
    }
    std::sort(result.pmcs.begin(), result.pmcs.end());
    result.status = EnumerationStatus::kComplete;
    return result;
  }

  // Connectivity-preserving insertion order (BFS from vertex 0), so every
  // prefix graph is connected.
  std::vector<int> order;
  order.reserve(n);
  {
    VertexSet visited = VertexSet::Single(n, 0);
    std::vector<int> queue = {0};
    for (size_t head = 0; head < queue.size(); ++head) {
      int v = queue[head];
      order.push_back(v);
      g.Neighbors(v).ForEach([&](int u) {
        if (!visited.Contains(u)) {
          visited.Insert(u);
          queue.push_back(u);
        }
      });
    }
  }
  assert(static_cast<int>(order.size()) == n);

  // Relabel so that the insertion order is 0..n-1.
  std::vector<int> new_of_old(n);
  for (int i = 0; i < n; ++i) new_of_old[order[i]] = i;
  Graph relabeled(n);
  for (const auto& [u, v] : g.Edges()) {
    relabeled.AddEdge(new_of_old[u], new_of_old[v]);
  }

  IncrementalEnumerator enumerator(relabeled, options);
  PmcResult inner = enumerator.Run();
  result.status = inner.status;
  result.pmcs.reserve(inner.pmcs.size());
  for (const VertexSet& p : inner.pmcs) {
    VertexSet mapped(n);
    p.ForEach([&](int v) { mapped.Insert(order[v]); });
    result.pmcs.push_back(std::move(mapped));
  }
  std::sort(result.pmcs.begin(), result.pmcs.end());
  return result;
}

std::vector<VertexSet> PmcsBruteForce(const Graph& g) {
  const int n = g.NumVertices();
  std::vector<VertexSet> out;
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    VertexSet omega(n);
    for (int v = 0; v < n; ++v) {
      if ((mask >> v) & 1) omega.Insert(v);
    }
    if (IsPmc(g, omega)) out.push_back(std::move(omega));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mintri
