#ifndef MINTRI_PMC_POTENTIAL_MAXIMAL_CLIQUES_H_
#define MINTRI_PMC_POTENTIAL_MAXIMAL_CLIQUES_H_

#include <vector>

#include "graph/graph.h"
#include "separators/minimal_separators.h"

namespace mintri {

/// Local test for potential maximal cliques (Bouchitté–Todinca): Ω is a PMC
/// of g iff
///   (1) G \ Ω has no full component w.r.t. Ω (no component C with
///       N(C) = Ω), and
///   (2) Ω is "cliquish": every two non-adjacent x, y ∈ Ω are both in N(C)
///       for some component C of G \ Ω (so saturating the associated
///       minimal separators turns Ω into a clique).
/// This characterization is exact; the enumerators below rely on it for
/// soundness.
bool IsPmc(const Graph& g, const VertexSet& omega);

struct PmcResult {
  std::vector<VertexSet> pmcs;
  EnumerationStatus status = EnumerationStatus::kComplete;
};

struct PmcOptions {
  EnumerationLimits limits;
  /// Only PMCs of size <= max_size are kept (and candidate generation is
  /// pruned accordingly). Used by MinTriangB with max_size = b + 1.
  int max_size = std::numeric_limits<int>::max();
  /// If true, the S ∪ (T ∩ C) candidate generation iterates over all pairs
  /// of minimal separators instead of restricting T to separators containing
  /// the newly added vertex. Slower; used as a safety valve and in tests.
  bool exhaustive_pairs = false;
};

/// Enumerates the potential maximal cliques of a *connected* graph with the
/// vertex-incremental scheme of Bouchitté and Todinca (TCS 2002): vertices
/// are added one at a time (in a connectivity-preserving order); the PMCs of
/// each prefix graph are obtained from the PMCs of the previous prefix and
/// the minimal separators of both, filtered through IsPmc.
///
/// `separators` must be the complete list of minimal separators of g (e.g.,
/// from ListMinimalSeparators); it is used for the final step and to size
/// internal structures.
PmcResult ListPotentialMaximalCliques(const Graph& g,
                                      const std::vector<VertexSet>& separators,
                                      const PmcOptions& options = {});

/// Reference implementation for tests: checks IsPmc on every vertex subset.
/// Exponential; intended for n <= ~16.
std::vector<VertexSet> PmcsBruteForce(const Graph& g);

}  // namespace mintri

#endif  // MINTRI_PMC_POTENTIAL_MAXIMAL_CLIQUES_H_
