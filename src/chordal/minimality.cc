#include "chordal/minimality.h"

#include "chordal/chordality.h"

namespace mintri {

std::vector<std::pair<int, int>> FillEdges(const Graph& g, const Graph& h) {
  std::vector<std::pair<int, int>> fill;
  for (const auto& [u, v] : h.Edges()) {
    if (!g.HasEdge(u, v)) fill.emplace_back(u, v);
  }
  return fill;
}

bool IsTriangulationOf(const Graph& g, const Graph& h) {
  if (g.NumVertices() != h.NumVertices()) return false;
  for (const auto& [u, v] : g.Edges()) {
    if (!h.HasEdge(u, v)) return false;
  }
  return IsChordal(h);
}

namespace {

// h minus one edge, rebuilt (Graph does not support edge removal in its
// public API; this is test/validation machinery, not a hot path).
Graph RemoveEdge(const Graph& h, int ru, int rv) {
  Graph out(h.NumVertices());
  for (const auto& [u, v] : h.Edges()) {
    if ((u == ru && v == rv) || (u == rv && v == ru)) continue;
    out.AddEdge(u, v);
  }
  return out;
}

}  // namespace

bool IsMinimalTriangulation(const Graph& g, const Graph& h) {
  if (!IsTriangulationOf(g, h)) return false;
  for (const auto& [u, v] : FillEdges(g, h)) {
    if (IsChordal(RemoveEdge(h, u, v))) return false;
  }
  return true;
}

}  // namespace mintri
