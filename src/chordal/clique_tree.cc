#include "chordal/clique_tree.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "chordal/chordality.h"

namespace mintri {

std::vector<VertexSet> MaximalCliquesOfChordal(const Graph& g) {
  const int n = g.NumVertices();
  std::vector<int> elim = PerfectEliminationOrdering(g);
  std::vector<int> position(n);
  for (int i = 0; i < n; ++i) position[elim[i]] = i;

  // Candidate cliques: v together with its later-eliminated neighbors.
  std::vector<VertexSet> candidates;
  candidates.reserve(n);
  for (int i = 0; i < n; ++i) {
    int v = elim[i];
    VertexSet c = VertexSet::Single(n, v);
    g.Neighbors(v).ForEach([&](int w) {
      if (position[w] > i) c.Insert(w);
    });
    candidates.push_back(std::move(c));
  }
  // Keep the inclusion-maximal ones. A chordal graph has <= n maximal
  // cliques, so the quadratic filter is cheap.
  std::vector<VertexSet> maximal;
  for (size_t i = 0; i < candidates.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < candidates.size() && !dominated; ++j) {
      if (i == j) continue;
      if (candidates[i].IsSubsetOf(candidates[j]) &&
          !(candidates[j].IsSubsetOf(candidates[i]) && i < j)) {
        dominated = true;
      }
    }
    if (!dominated) maximal.push_back(candidates[i]);
  }
  return maximal;
}

CliqueTree BuildCliqueTree(const Graph& g) {
  CliqueTree tree;
  tree.cliques = MaximalCliquesOfChordal(g);
  const int k = static_cast<int>(tree.cliques.size());
  if (k <= 1) return tree;

  // Prim's algorithm for a maximum-weight spanning tree of the clique graph,
  // where weight(i, j) = |Ci ∩ Cj|. Any maximum spanning tree is a clique
  // tree (Jordan); zero-weight edges join different components of g, giving
  // a single tree whose empty adhesions are vacuously junction-consistent.
  std::vector<bool> in_tree(k, false);
  std::vector<int> best_weight(k, -1);
  std::vector<int> best_parent(k, -1);
  in_tree[0] = true;
  for (int j = 1; j < k; ++j) {
    best_weight[j] = tree.cliques[0].Intersect(tree.cliques[j]).Count();
    best_parent[j] = 0;
  }
  for (int step = 1; step < k; ++step) {
    int pick = -1;
    for (int j = 0; j < k; ++j) {
      if (!in_tree[j] && (pick == -1 || best_weight[j] > best_weight[pick])) {
        pick = j;
      }
    }
    in_tree[pick] = true;
    tree.edges.emplace_back(best_parent[pick], pick);
    for (int j = 0; j < k; ++j) {
      if (in_tree[j]) continue;
      int w = tree.cliques[pick].Intersect(tree.cliques[j]).Count();
      if (w > best_weight[j]) {
        best_weight[j] = w;
        best_parent[j] = pick;
      }
    }
  }
  return tree;
}

std::vector<VertexSet> MinimalSeparatorsOfChordal(const Graph& g) {
  CliqueTree tree = BuildCliqueTree(g);
  std::set<VertexSet> seps;
  for (const auto& [i, j] : tree.edges) {
    VertexSet adhesion = tree.cliques[i].Intersect(tree.cliques[j]);
    if (!adhesion.Empty()) seps.insert(std::move(adhesion));
  }
  return {seps.begin(), seps.end()};
}

}  // namespace mintri
