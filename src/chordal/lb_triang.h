#ifndef MINTRI_CHORDAL_LB_TRIANG_H_
#define MINTRI_CHORDAL_LB_TRIANG_H_

#include <vector>

#include "graph/graph.h"

namespace mintri {

/// LB-Triang (Berry, Bordat, Heggernes, Simonet, Villanger 2006): computes a
/// minimal triangulation of g from an arbitrary vertex ordering. This is the
/// black-box triangulator that the CKK baseline uses, exactly as in the
/// paper's experiments ("we used the algorithm LB_TRIANG for this matter").
///
/// At the step of vertex x, the minimal separators of the current fill graph
/// H that are included in N_H(x) are precisely the sets N_H(C) for the
/// connected components C of H \ N_H[x]; each such set is saturated.
Graph LbTriang(const Graph& g, const std::vector<int>& order);

/// LB-Triang with a min-degree vertex ordering (a common default that tends
/// to produce low-width, low-fill triangulations).
Graph LbTriangMinDegree(const Graph& g);

}  // namespace mintri

#endif  // MINTRI_CHORDAL_LB_TRIANG_H_
