#ifndef MINTRI_CHORDAL_MINIMALITY_H_
#define MINTRI_CHORDAL_MINIMALITY_H_

#include <utility>
#include <vector>

#include "graph/graph.h"

namespace mintri {

/// The fill set E(h) \ E(g); both graphs must share the vertex universe.
std::vector<std::pair<int, int>> FillEdges(const Graph& g, const Graph& h);

/// True iff h is a triangulation of g: same vertices, E(g) ⊆ E(h), and h
/// chordal.
bool IsTriangulationOf(const Graph& g, const Graph& h);

/// True iff h is a *minimal* triangulation of g. Uses the Rose–Tarjan–Lueker
/// characterization: a triangulation is minimal iff removing any single fill
/// edge destroys chordality.
bool IsMinimalTriangulation(const Graph& g, const Graph& h);

}  // namespace mintri

#endif  // MINTRI_CHORDAL_MINIMALITY_H_
