#include "chordal/mcs_m.h"

#include <vector>

namespace mintri {

Graph McsM(const Graph& g) {
  const int n = g.NumVertices();
  Graph h = g;
  std::vector<int> weight(n, 0);
  std::vector<bool> visited(n, false);

  for (int step = 0; step < n; ++step) {
    int v = -1;
    for (int u = 0; u < n; ++u) {
      if (!visited[u] && (v == -1 || weight[u] > weight[v])) v = u;
    }
    visited[v] = true;

    // For every unvisited u: u "reaches" v if there is a path
    // u, x_1, ..., x_k, v in G whose intermediates x_i are unvisited and
    // have weight[x_i] < weight[u]. Compute per-u by a BFS from v over
    // low-weight unvisited intermediates.
    std::vector<int> bumped;
    for (int u = 0; u < n; ++u) {
      if (visited[u] || u == v) continue;
      // BFS from v through unvisited intermediates x (x != u) with
      // weight[x] < weight[u]; u reaches v iff u is adjacent (in G) to v or
      // to a reached intermediate.
      VertexSet reached = VertexSet::Single(n, v);
      VertexSet frontier = reached;
      bool reaches = g.HasEdge(u, v);
      while (!frontier.Empty() && !reaches) {
        VertexSet next(n);
        frontier.ForEach([&](int x) { next.UnionWith(g.Neighbors(x)); });
        next.MinusWith(reached);
        VertexSet passable(n);
        next.ForEach([&](int y) {
          if (y == u) {
            reaches = true;
          } else if (!visited[y] && weight[y] < weight[u]) {
            passable.Insert(y);
          }
        });
        reached.UnionWith(passable);
        frontier = std::move(passable);
      }
      if (reaches) {
        bumped.push_back(u);
        h.AddEdge(u, v);  // no-op if the edge already exists
      }
    }
    // Weights are bumped only after all reachability checks of this step.
    for (int u : bumped) ++weight[u];
  }
  return h;
}

}  // namespace mintri
