#ifndef MINTRI_CHORDAL_MCS_M_H_
#define MINTRI_CHORDAL_MCS_M_H_

#include "graph/graph.h"

namespace mintri {

/// MCS-M (Berry, Blair, Heggernes 2002, cited as [2] by the paper): a
/// maximum-cardinality-search variant that computes a minimal triangulation
/// in O(n·m) per step. At each step the unvisited vertex v of maximum
/// weight is chosen; every unvisited u that reaches v through unvisited
/// intermediates of weight strictly smaller than w(u) gets its weight
/// bumped, and {u, v} becomes a fill edge if not already present.
///
/// This is a second black-box minimal triangulator (besides LB-Triang); the
/// CKK baseline can be instantiated with either.
Graph McsM(const Graph& g);

}  // namespace mintri

#endif  // MINTRI_CHORDAL_MCS_M_H_
