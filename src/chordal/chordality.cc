#include "chordal/chordality.h"

#include <algorithm>
#include <cassert>

namespace mintri {

std::vector<int> MaximumCardinalitySearch(const Graph& g) {
  const int n = g.NumVertices();
  std::vector<int> weight(n, 0);
  std::vector<bool> visited(n, false);
  std::vector<int> order;
  order.reserve(n);
  for (int step = 0; step < n; ++step) {
    int best = -1;
    for (int v = 0; v < n; ++v) {
      if (!visited[v] && (best == -1 || weight[v] > weight[best])) best = v;
    }
    visited[best] = true;
    order.push_back(best);
    g.Neighbors(best).ForEach([&](int u) {
      if (!visited[u]) ++weight[u];
    });
  }
  return order;
}

bool IsPerfectEliminationOrdering(const Graph& g,
                                  const std::vector<int>& elimination_order) {
  const int n = g.NumVertices();
  assert(static_cast<int>(elimination_order.size()) == n);
  std::vector<int> position(n);
  for (int i = 0; i < n; ++i) position[elimination_order[i]] = i;

  // Standard check: for each v, let L(v) be the neighbors eliminated after v
  // and u the member of L(v) eliminated first. Then L(v) \ {u} must be
  // adjacent to u. This is equivalent to L(v) being a clique for all v.
  for (int i = 0; i < n; ++i) {
    int v = elimination_order[i];
    int u = -1;
    VertexSet later(n);
    g.Neighbors(v).ForEach([&](int w) {
      if (position[w] > i) {
        later.Insert(w);
        if (u == -1 || position[w] < position[u]) u = w;
      }
    });
    if (u == -1) continue;
    later.Erase(u);
    if (!later.IsSubsetOf(g.Neighbors(u))) return false;
  }
  return true;
}

bool IsChordal(const Graph& g) {
  std::vector<int> order = MaximumCardinalitySearch(g);
  std::reverse(order.begin(), order.end());
  return IsPerfectEliminationOrdering(g, order);
}

std::vector<int> PerfectEliminationOrdering(const Graph& g) {
  std::vector<int> order = MaximumCardinalitySearch(g);
  std::reverse(order.begin(), order.end());
  assert(IsPerfectEliminationOrdering(g, order));
  return order;
}

}  // namespace mintri
