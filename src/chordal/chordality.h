#ifndef MINTRI_CHORDAL_CHORDALITY_H_
#define MINTRI_CHORDAL_CHORDALITY_H_

#include <vector>

#include "graph/graph.h"

namespace mintri {

/// Maximum Cardinality Search (Tarjan–Yannakakis). Returns the visit order
/// (first visited vertex first). Visiting the graph in this order and
/// eliminating in the *reverse* order is a perfect elimination ordering iff
/// the graph is chordal.
std::vector<int> MaximumCardinalitySearch(const Graph& g);

/// True iff `elimination_order` (first-eliminated vertex first, containing
/// every vertex exactly once) is a perfect elimination ordering of g: for
/// every vertex v, the neighbors of v eliminated after v form a clique.
bool IsPerfectEliminationOrdering(const Graph& g,
                                  const std::vector<int>& elimination_order);

/// Linear(-ish)-time chordality test: MCS followed by the PEO check.
bool IsChordal(const Graph& g);

/// A perfect elimination ordering of a chordal graph (first-eliminated
/// first); must only be called when IsChordal(g) holds.
std::vector<int> PerfectEliminationOrdering(const Graph& g);

}  // namespace mintri

#endif  // MINTRI_CHORDAL_CHORDALITY_H_
