#ifndef MINTRI_CHORDAL_CLIQUE_TREE_H_
#define MINTRI_CHORDAL_CLIQUE_TREE_H_

#include <utility>
#include <vector>

#include "graph/graph.h"

namespace mintri {

/// A clique tree of a chordal graph: the nodes are exactly the maximal
/// cliques, and every edge (i, j) carries the adhesion cliques[i] ∩
/// cliques[j]. For a connected chordal graph this is a tree; for a
/// disconnected one, components are joined by edges with empty adhesions so
/// the result is still a single tree (a valid tree decomposition).
struct CliqueTree {
  std::vector<VertexSet> cliques;
  std::vector<std::pair<int, int>> edges;
};

/// Maximal cliques of a chordal graph (Fulkerson–Gross via a perfect
/// elimination ordering). Precondition: IsChordal(g). A chordal graph on n
/// vertices has at most n maximal cliques (Theorem 2.2(2) of the paper).
std::vector<VertexSet> MaximalCliquesOfChordal(const Graph& g);

/// Builds a clique tree: a maximum-weight spanning tree of the clique graph
/// where the weight of {Ci, Cj} is |Ci ∩ Cj| (Jordan / Blair–Peyton).
/// Precondition: IsChordal(g).
CliqueTree BuildCliqueTree(const Graph& g);

/// The minimal separators of a chordal graph: exactly the distinct non-empty
/// adhesions of any clique tree. Precondition: IsChordal(g).
std::vector<VertexSet> MinimalSeparatorsOfChordal(const Graph& g);

}  // namespace mintri

#endif  // MINTRI_CHORDAL_CLIQUE_TREE_H_
