#include "chordal/lb_triang.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace mintri {

Graph LbTriang(const Graph& g, const std::vector<int>& order) {
  assert(static_cast<int>(order.size()) == g.NumVertices());
  Graph h = g;
  ComponentScanner scanner;
  std::vector<VertexSet> separators;
  for (int x : order) {
    // Components of H \ N_H[x]; their neighborhoods are the minimal
    // separators of H included in N_H(x). Saturating them only adds edges
    // inside N_H(x), which does not disturb the other components, so the
    // component list can be computed once per step (the scan yields each
    // neighborhood directly; saturation is deferred until after the scan
    // because it mutates H).
    size_t count = 0;
    scanner.ForEachComponent(h, h.ClosedNeighborhood(x),
                             [&](const VertexSet&, const VertexSet& nb) {
                               if (count < separators.size()) {
                                 separators[count] = nb;
                               } else {
                                 separators.push_back(nb);
                               }
                               ++count;
                             });
    for (size_t i = 0; i < count; ++i) h.SaturateSet(separators[i]);
  }
  return h;
}

Graph LbTriangMinDegree(const Graph& g) {
  std::vector<int> order(g.NumVertices());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return g.Neighbors(a).Count() < g.Neighbors(b).Count();
  });
  return LbTriang(g, order);
}

}  // namespace mintri
