#include "chordal/lb_triang.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace mintri {

Graph LbTriang(const Graph& g, const std::vector<int>& order) {
  assert(static_cast<int>(order.size()) == g.NumVertices());
  Graph h = g;
  for (int x : order) {
    // Components of H \ N_H[x]; their neighborhoods are the minimal
    // separators of H included in N_H(x). Saturating them only adds edges
    // inside N_H(x), which does not disturb the other components, so the
    // component list can be computed once per step.
    std::vector<VertexSet> components =
        h.ComponentsAfterRemoving(h.ClosedNeighborhood(x));
    std::vector<VertexSet> separators;
    separators.reserve(components.size());
    for (const VertexSet& c : components) {
      separators.push_back(h.NeighborhoodOfSet(c));
    }
    for (const VertexSet& s : separators) h.SaturateSet(s);
  }
  return h;
}

Graph LbTriangMinDegree(const Graph& g) {
  std::vector<int> order(g.NumVertices());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return g.Neighbors(a).Count() < g.Neighbors(b).Count();
  });
  return LbTriang(g, order);
}

}  // namespace mintri
