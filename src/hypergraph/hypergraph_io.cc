#include "hypergraph/hypergraph_io.h"

#include <sstream>

namespace mintri {

std::optional<Hypergraph> ParseHypergraph(std::istream& in) {
  std::string line;
  std::optional<Hypergraph> h;
  int expected_edges = 0;
  int seen_edges = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    if (!h.has_value()) {
      std::string p, format;
      int n = 0, m = 0;
      if (!(ls >> p >> format >> n >> m) || p != "p" || format != "hg" ||
          n < 0 || m < 0) {
        return std::nullopt;
      }
      h.emplace(n);
      expected_edges = m;
      continue;
    }
    VertexSet edge(h->NumVertices());
    int v = 0;
    while (ls >> v) {
      if (v < 1 || v > h->NumVertices() || edge.Contains(v - 1)) {
        return std::nullopt;
      }
      edge.Insert(v - 1);
    }
    if (!ls.eof() || edge.Empty()) return std::nullopt;
    h->AddEdge(std::move(edge));
    ++seen_edges;
  }
  if (!h.has_value() || seen_edges != expected_edges) return std::nullopt;
  return h;
}

std::optional<Hypergraph> ParseHypergraphString(const std::string& text) {
  std::istringstream in(text);
  return ParseHypergraph(in);
}

void WriteHypergraph(const Hypergraph& h, std::ostream& out) {
  out << "p hg " << h.NumVertices() << " " << h.NumEdges() << "\n";
  for (const VertexSet& e : h.Edges()) {
    bool first = true;
    e.ForEach([&](int v) {
      if (!first) out << " ";
      out << (v + 1);
      first = false;
    });
    out << "\n";
  }
}

}  // namespace mintri
