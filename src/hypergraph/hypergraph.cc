#include "hypergraph/hypergraph.h"

namespace mintri {

int Hypergraph::AddEdge(VertexSet edge) {
  if (edge.Empty()) return -1;
  edges_.push_back(std::move(edge));
  return static_cast<int>(edges_.size()) - 1;
}

std::vector<int> Hypergraph::EdgesContaining(int v) const {
  std::vector<int> out;
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].Contains(v)) out.push_back(static_cast<int>(i));
  }
  return out;
}

Graph Hypergraph::PrimalGraph() const {
  Graph g(num_vertices_);
  for (const VertexSet& e : edges_) g.SaturateSet(e);
  return g;
}

bool Hypergraph::CoversAllVertices() const {
  VertexSet covered(num_vertices_);
  for (const VertexSet& e : edges_) covered.UnionWith(e);
  return covered.Count() == num_vertices_;
}

}  // namespace mintri
