#include "hypergraph/linear_program.h"

#include <cassert>
#include <cmath>

namespace mintri {

namespace {
constexpr double kEps = 1e-9;
}  // namespace

LinearProgram::LinearProgram(std::vector<std::vector<double>> a,
                             std::vector<double> b, std::vector<double> c)
    : a_(std::move(a)), b_(std::move(b)), c_(std::move(c)) {
  assert(a_.size() == b_.size());
  for (const auto& row : a_) {
    assert(row.size() == c_.size());
    (void)row;
  }
  for (double bound : b_) {
    assert(bound >= -kEps);
    (void)bound;
  }
}

std::optional<LinearProgram::Solution> LinearProgram::Maximize() const {
  const int m = static_cast<int>(b_.size());
  const int n = static_cast<int>(c_.size());

  // Tableau with slack variables: columns 0..n-1 are the structural
  // variables, n..n+m-1 the slacks, last column the RHS. Row m is the
  // objective row (negated reduced costs).
  std::vector<std::vector<double>> t(m + 1,
                                     std::vector<double>(n + m + 1, 0.0));
  std::vector<int> basis(m);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) t[i][j] = a_[i][j];
    t[i][n + i] = 1.0;
    t[i][n + m] = b_[i];
    basis[i] = n + i;
  }
  for (int j = 0; j < n; ++j) t[m][j] = -c_[j];

  while (true) {
    // Entering column: Bland's rule (smallest index with negative reduced
    // cost) to preclude cycling.
    int pivot_col = -1;
    for (int j = 0; j < n + m; ++j) {
      if (t[m][j] < -kEps) {
        pivot_col = j;
        break;
      }
    }
    if (pivot_col < 0) break;  // optimal

    // Leaving row: minimum ratio, ties by smallest basis index (Bland).
    int pivot_row = -1;
    double best_ratio = 0;
    for (int i = 0; i < m; ++i) {
      if (t[i][pivot_col] > kEps) {
        double ratio = t[i][n + m] / t[i][pivot_col];
        if (pivot_row < 0 || ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps && basis[i] < basis[pivot_row])) {
          pivot_row = i;
          best_ratio = ratio;
        }
      }
    }
    if (pivot_row < 0) return std::nullopt;  // unbounded

    // Pivot.
    double p = t[pivot_row][pivot_col];
    for (double& v : t[pivot_row]) v /= p;
    for (int i = 0; i <= m; ++i) {
      if (i == pivot_row) continue;
      double f = t[i][pivot_col];
      if (std::abs(f) < kEps) continue;
      for (int j = 0; j <= n + m; ++j) t[i][j] -= f * t[pivot_row][j];
    }
    basis[pivot_row] = pivot_col;
  }

  Solution sol;
  sol.objective = t[m][n + m];
  sol.x.assign(n, 0.0);
  for (int i = 0; i < m; ++i) {
    if (basis[i] < n) sol.x[basis[i]] = t[i][n + m];
  }
  return sol;
}

}  // namespace mintri
