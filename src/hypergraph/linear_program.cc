#include "hypergraph/linear_program.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mintri {

namespace {
constexpr double kEps = 1e-9;
}  // namespace

LinearProgram::LinearProgram(std::vector<std::vector<double>> a,
                             std::vector<double> b, std::vector<double> c)
    : a_(std::move(a)), b_(std::move(b)), c_(std::move(c)) {
  // Input validation must survive Release builds (an assert would compile
  // out and a negative b would silently yield garbage), so record validity
  // here and let Maximize() report it.
  valid_ = a_.size() == b_.size();
  for (const auto& row : a_) {
    if (row.size() != c_.size()) valid_ = false;
  }
  for (double bound : b_) {
    if (!(bound >= 0.0)) valid_ = false;  // also rejects NaN
  }
}

std::optional<LinearProgram::Solution> LinearProgram::Maximize() const {
  if (!valid_) return std::nullopt;
  const int m = static_cast<int>(b_.size());
  const int n = static_cast<int>(c_.size());

  // Tableau with slack variables: columns 0..n-1 are the structural
  // variables, n..n+m-1 the slacks, last column the RHS. Row m is the
  // objective row (negated reduced costs).
  std::vector<std::vector<double>> t(m + 1,
                                     std::vector<double>(n + m + 1, 0.0));
  std::vector<int> basis(m);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) t[i][j] = a_[i][j];
    t[i][n + i] = 1.0;
    t[i][n + m] = b_[i];
    basis[i] = n + i;
  }
  for (int j = 0; j < n; ++j) t[m][j] = -c_[j];

  while (true) {
    // Entering column: Bland's rule (smallest index with negative reduced
    // cost) to preclude cycling.
    int pivot_col = -1;
    for (int j = 0; j < n + m; ++j) {
      if (t[m][j] < -kEps) {
        pivot_col = j;
        break;
      }
    }
    if (pivot_col < 0) break;  // optimal

    // Leaving row, Bland's rule in two clean passes: find the exact minimum
    // ratio first, then among the rows (near-)tied at that minimum pick the
    // smallest basis index. The previous single-pass version compared each
    // row against a drifting `best_ratio` with an ε window, which could
    // ratchet the accepted ratio upward across chained near-ties and pick a
    // leaving row whose ratio exceeds the true minimum — a wrong pivot on
    // degenerate LPs, and no anti-cycling guarantee.
    double min_ratio = std::numeric_limits<double>::infinity();
    for (int i = 0; i < m; ++i) {
      if (t[i][pivot_col] > kEps) {
        min_ratio = std::min(min_ratio, t[i][n + m] / t[i][pivot_col]);
      }
    }
    if (min_ratio == std::numeric_limits<double>::infinity()) {
      return std::nullopt;  // unbounded
    }
    int pivot_row = -1;
    for (int i = 0; i < m; ++i) {
      if (t[i][pivot_col] > kEps &&
          t[i][n + m] / t[i][pivot_col] <= min_ratio + kEps &&
          (pivot_row < 0 || basis[i] < basis[pivot_row])) {
        pivot_row = i;
      }
    }

    // Pivot.
    double p = t[pivot_row][pivot_col];
    for (double& v : t[pivot_row]) v /= p;
    for (int i = 0; i <= m; ++i) {
      if (i == pivot_row) continue;
      double f = t[i][pivot_col];
      if (std::abs(f) < kEps) continue;
      for (int j = 0; j <= n + m; ++j) t[i][j] -= f * t[pivot_row][j];
    }
    basis[pivot_row] = pivot_col;
  }

  Solution sol;
  sol.objective = t[m][n + m];
  sol.x.assign(n, 0.0);
  for (int i = 0; i < m; ++i) {
    if (basis[i] < n) sol.x[basis[i]] = t[i][n + m];
  }
  return sol;
}

}  // namespace mintri
