#ifndef MINTRI_HYPERGRAPH_LINEAR_PROGRAM_H_
#define MINTRI_HYPERGRAPH_LINEAR_PROGRAM_H_

#include <optional>
#include <vector>

namespace mintri {

/// A small dense primal-simplex solver for LPs in the canonical form
///
///     maximize    c · x
///     subject to  A x <= b,   x >= 0,   with  b >= 0 .
///
/// Since b >= 0, the all-slack basis is feasible and no phase-one is needed.
/// Bland's rule guarantees termination. This is the substrate behind the
/// fractional-edge-cover bag cost (fractional hypertree width, Section 3 of
/// the paper / Grohe–Marx): the *dual* of the covering LP is exactly in
/// this form, and strong duality gives the cover weight.
class LinearProgram {
 public:
  /// rows = constraints (coefficients + bound), cols = variables.
  LinearProgram(std::vector<std::vector<double>> a, std::vector<double> b,
                std::vector<double> c);

  struct Solution {
    double objective = 0;
    std::vector<double> x;  // primal assignment
  };

  /// Solves the LP. Returns std::nullopt when the objective is unbounded or
  /// the input is malformed (ragged rows, a dimension mismatch, or a
  /// negative/NaN entry of b — the canonical form requires b >= 0).
  /// (Infeasibility cannot otherwise occur in this form since b >= 0.)
  std::optional<Solution> Maximize() const;

 private:
  std::vector<std::vector<double>> a_;
  std::vector<double> b_;
  std::vector<double> c_;
  bool valid_ = true;
};

}  // namespace mintri

#endif  // MINTRI_HYPERGRAPH_LINEAR_PROGRAM_H_
