#ifndef MINTRI_HYPERGRAPH_HYPERGRAPH_H_
#define MINTRI_HYPERGRAPH_HYPERGRAPH_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace mintri {

/// A hypergraph over vertices {0, ..., n-1}. The paper's Section 1/3 uses
/// hypergraphs for generalized hypertree decompositions: a tree
/// decomposition of the *primal graph* whose bags are scored by (integral
/// or fractional) hyperedge covers — see cover costs in edge_cover.h.
/// In database terms: vertices are query variables, hyperedges are atoms.
class Hypergraph {
 public:
  Hypergraph() = default;
  explicit Hypergraph(int num_vertices) : num_vertices_(num_vertices) {}

  int NumVertices() const { return num_vertices_; }
  int NumEdges() const { return static_cast<int>(edges_.size()); }

  /// Adds a hyperedge (vertex set over the hypergraph's universe); returns
  /// its index. Empty edges are ignored (returns -1).
  int AddEdge(VertexSet edge);

  const VertexSet& Edge(int i) const { return edges_[i]; }
  const std::vector<VertexSet>& Edges() const { return edges_; }

  /// The edges containing vertex v (indices).
  std::vector<int> EdgesContaining(int v) const;

  /// The primal (Gaifman) graph: vertices of the hypergraph, an edge between
  /// every two vertices sharing a hyperedge. Tree decompositions for the
  /// hypergraph are tree decompositions of this graph.
  Graph PrimalGraph() const;

  /// True iff every vertex appears in at least one hyperedge (required for
  /// cover-based costs to be finite on all bags).
  bool CoversAllVertices() const;

 private:
  int num_vertices_ = 0;
  std::vector<VertexSet> edges_;
};

}  // namespace mintri

#endif  // MINTRI_HYPERGRAPH_HYPERGRAPH_H_
