#ifndef MINTRI_HYPERGRAPH_EDGE_COVER_H_
#define MINTRI_HYPERGRAPH_EDGE_COVER_H_

#include <memory>

#include "cost/standard_costs.h"
#include "hypergraph/hypergraph.h"

namespace mintri {

/// The minimum number of hyperedges whose union contains `bag` (exact
/// branch-and-bound set cover, seeded with the greedy bound). Returns -1
/// when some vertex of the bag is in no hyperedge. This is the bag score of
/// generalized hypertree width (Gottlob–Leone–Scarcello).
int MinIntegralEdgeCover(const Hypergraph& h, const VertexSet& bag);

/// The minimum total weight of a fractional edge cover of `bag`
/// (Grohe–Marx): min Σ x_e subject to Σ_{e ∋ v} x_e >= 1 for every v in the
/// bag, x >= 0. Solved exactly through the LP dual (see linear_program.h).
/// Returns -1 when uncoverable. This is the bag score of fractional
/// hypertree width.
double MinFractionalEdgeCover(const Hypergraph& h, const VertexSet& bag);

/// The edge-cover optima as WeightedWidthCost bag scores, with the
/// uncoverable `-1` sentinel mapped to kInfiniteCost. Feeding the raw
/// sentinel into a cost would make an invalid bag look like the *cheapest*
/// one; infinity makes the DP reject it instead. These are the functions
/// the cost factories below (and the memoized bag-score cache) evaluate.
CostValue HypertreeBagScore(const Hypergraph& h, const VertexSet& bag);
CostValue FractionalEdgeCoverBagScore(const Hypergraph& h,
                                      const VertexSet& bag);

/// Split-monotone bag costs over tree decompositions of h's primal graph
/// (Section 3 of the paper: "c(b) can be the minimal number of hyperedges
/// needed to cover b, or the minimal weight of a fractional edge cover of
/// b, thereby establishing ... hypertree width and fractional hypertree
/// width"). The hypergraph must outlive the returned cost; bags containing
/// a vertex in no hyperedge score kInfiniteCost.
std::unique_ptr<WeightedWidthCost> HypertreeWidthCost(const Hypergraph& h);
std::unique_ptr<WeightedWidthCost> FractionalHypertreeWidthCost(
    const Hypergraph& h);

}  // namespace mintri

#endif  // MINTRI_HYPERGRAPH_EDGE_COVER_H_
