#ifndef MINTRI_HYPERGRAPH_HYPERGRAPH_IO_H_
#define MINTRI_HYPERGRAPH_HYPERGRAPH_IO_H_

#include <istream>
#include <optional>
#include <ostream>
#include <string>

#include "hypergraph/hypergraph.h"

namespace mintri {

/// Parses the ".hg" edge-list format (the hypergraph analogue of PACE .gr,
/// used by `mintri rank --cost=hypertree|fhw` and `mintri batch`):
///   c comment lines
///   p hg <n> <m>
///   <v1> <v2> ... <vk>     (one hyperedge per line, 1-based vertex ids)
/// Exactly m hyperedge lines must follow the problem line; empty or
/// duplicate vertices within a line are rejected. Returns std::nullopt on
/// malformed input.
std::optional<Hypergraph> ParseHypergraph(std::istream& in);
std::optional<Hypergraph> ParseHypergraphString(const std::string& text);

/// Writes the hypergraph in the same format.
void WriteHypergraph(const Hypergraph& h, std::ostream& out);

}  // namespace mintri

#endif  // MINTRI_HYPERGRAPH_HYPERGRAPH_IO_H_
