#include "hypergraph/edge_cover.h"

#include <algorithm>

#include "hypergraph/linear_program.h"

namespace mintri {

namespace {

// Hyperedges restricted to the bag, deduplicated and maximal-only (an edge
// whose bag-restriction is contained in another's is never needed).
std::vector<VertexSet> RelevantRestrictions(const Hypergraph& h,
                                            const VertexSet& bag) {
  std::vector<VertexSet> restricted;
  for (const VertexSet& e : h.Edges()) {
    VertexSet r = e.Intersect(bag);
    if (!r.Empty()) restricted.push_back(std::move(r));
  }
  std::vector<VertexSet> maximal;
  for (size_t i = 0; i < restricted.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < restricted.size() && !dominated; ++j) {
      if (i == j) continue;
      if (restricted[i].IsSubsetOf(restricted[j]) &&
          !(restricted[j] == restricted[i] && i < j)) {
        dominated = true;
      }
    }
    if (!dominated) maximal.push_back(restricted[i]);
  }
  return maximal;
}

// Greedy cover for the branch-and-bound's initial upper bound.
int GreedyCover(const std::vector<VertexSet>& sets, const VertexSet& bag) {
  VertexSet uncovered = bag;
  int used = 0;
  while (!uncovered.Empty()) {
    int best = -1, best_gain = 0;
    for (size_t i = 0; i < sets.size(); ++i) {
      int gain = sets[i].Intersect(uncovered).Count();
      if (gain > best_gain) {
        best_gain = gain;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) return -1;  // uncoverable
    uncovered.MinusWith(sets[best]);
    ++used;
  }
  return used;
}

void BranchAndBound(const std::vector<VertexSet>& sets,
                    const VertexSet& uncovered, int used, int* best) {
  if (uncovered.Empty()) {
    *best = std::min(*best, used);
    return;
  }
  if (used + 1 >= *best) return;  // even one more set cannot improve
  // Branch on the covering sets of the first uncovered vertex.
  int v = uncovered.First();
  for (const VertexSet& s : sets) {
    if (!s.Contains(v)) continue;
    BranchAndBound(sets, uncovered.Minus(s), used + 1, best);
  }
}

}  // namespace

int MinIntegralEdgeCover(const Hypergraph& h, const VertexSet& bag) {
  if (bag.Empty()) return 0;
  std::vector<VertexSet> sets = RelevantRestrictions(h, bag);
  int best = GreedyCover(sets, bag);
  if (best < 0) return -1;
  BranchAndBound(sets, bag, 0, &best);
  return best;
}

double MinFractionalEdgeCover(const Hypergraph& h, const VertexSet& bag) {
  if (bag.Empty()) return 0.0;
  std::vector<VertexSet> sets = RelevantRestrictions(h, bag);
  // Coverability check.
  VertexSet covered(bag.capacity());
  for (const VertexSet& s : sets) covered.UnionWith(s);
  if (!bag.IsSubsetOf(covered)) return -1.0;

  // Solve the dual:  max Σ_v y_v  s.t.  Σ_{v ∈ e} y_v <= 1 per edge, y >= 0.
  // By strong duality its optimum equals the minimum fractional cover.
  std::vector<int> members = bag.ToVector();
  std::vector<std::vector<double>> a;
  a.reserve(sets.size());
  for (const VertexSet& s : sets) {
    std::vector<double> row(members.size(), 0.0);
    for (size_t j = 0; j < members.size(); ++j) {
      if (s.Contains(members[j])) row[j] = 1.0;
    }
    a.push_back(std::move(row));
  }
  LinearProgram lp(std::move(a), std::vector<double>(sets.size(), 1.0),
                   std::vector<double>(members.size(), 1.0));
  auto sol = lp.Maximize();
  // The dual of a feasible, bounded covering LP is always bounded.
  return sol.has_value() ? sol->objective : -1.0;
}

CostValue HypertreeBagScore(const Hypergraph& h, const VertexSet& bag) {
  const int cover = MinIntegralEdgeCover(h, bag);
  return cover < 0 ? kInfiniteCost : static_cast<CostValue>(cover);
}

CostValue FractionalEdgeCoverBagScore(const Hypergraph& h,
                                      const VertexSet& bag) {
  const double cover = MinFractionalEdgeCover(h, bag);
  return cover < 0 ? kInfiniteCost : cover;
}

std::unique_ptr<WeightedWidthCost> HypertreeWidthCost(const Hypergraph& h) {
  return std::make_unique<WeightedWidthCost>(
      [&h](const VertexSet& bag) { return HypertreeBagScore(h, bag); },
      "hypertree-width");
}

std::unique_ptr<WeightedWidthCost> FractionalHypertreeWidthCost(
    const Hypergraph& h) {
  return std::make_unique<WeightedWidthCost>(
      [&h](const VertexSet& bag) {
        return FractionalEdgeCoverBagScore(h, bag);
      },
      "fractional-hypertree-width");
}

}  // namespace mintri
