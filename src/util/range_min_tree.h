#ifndef MINTRI_UTIL_RANGE_MIN_TREE_H_
#define MINTRI_UTIL_RANGE_MIN_TREE_H_

#include <cstddef>
#include <vector>

#include "cost/bag_cost.h"

namespace mintri {

/// A flat, iterative range-min segment tree over CostValue leaves with
/// *first-minimum* tie-breaking: every query returns the smallest leaf index
/// among the equal minima, exactly the answer a left-to-right "first strict
/// improvement wins" scan produces. That property is what lets the
/// incremental MinTriang DP swap its per-block candidate-list scans for
/// point updates + range-min queries without perturbing the choice tables
/// (and with them the ranked enumeration order) by even a byte.
///
/// Leaves are padded to the next power of two with +infinity; since the
/// merge prefers the left operand on ties and all real leaves sit left of
/// the padding, an all-infinite tree still reports leaf 0 (callers treat an
/// infinite minimum as "no feasible candidate", same as the scan).
///
/// Assign is O(n); Update is O(log n); MinIndex() over the whole range reads
/// the root in O(1); the general MinIndex(begin, end) is O(log n).
class RangeMinTree {
 public:
  RangeMinTree() = default;
  explicit RangeMinTree(const std::vector<CostValue>& values) {
    Assign(values);
  }

  /// Rebuilds the tree over `values` (O(n)).
  void Assign(const std::vector<CostValue>& values) {
    n_ = static_cast<int>(values.size());
    size_ = 1;
    while (size_ < n_) size_ <<= 1;
    values_.assign(static_cast<size_t>(size_), kInfiniteCost);
    for (int i = 0; i < n_; ++i) values_[i] = values[i];
    best_.resize(static_cast<size_t>(2 * size_));
    for (int i = 0; i < size_; ++i) best_[size_ + i] = i;
    for (int node = size_ - 1; node >= 1; --node) {
      best_[node] = Merge(best_[2 * node], best_[2 * node + 1]);
    }
  }

  /// Sets leaf `k` to `v` and re-merges its root path (O(log n)).
  void Update(int k, CostValue v) {
    values_[k] = v;
    for (int node = (size_ + k) / 2; node >= 1; node /= 2) {
      best_[node] = Merge(best_[2 * node], best_[2 * node + 1]);
    }
  }

  /// Smallest index among the minima of all leaves (-1 when empty).
  int MinIndex() const { return n_ == 0 ? -1 : best_[1]; }

  /// Smallest index among the minima of [begin, end) (-1 when empty). The
  /// disjoint cover segments are folded left-to-right, so the first-minimum
  /// tie-break holds on sub-ranges too.
  int MinIndex(int begin, int end) const {
    int left = -1;
    int right = -1;
    for (int lo = size_ + begin, hi = size_ + end; lo < hi; lo /= 2, hi /= 2) {
      if (lo & 1) left = Merge(left, best_[lo++]);
      if (hi & 1) right = Merge(best_[--hi], right);
    }
    return Merge(left, right);
  }

  CostValue ValueAt(int k) const { return values_[k]; }
  int size() const { return n_; }

 private:
  // Leftmost-min merge: `a` is always the left operand, so <= resolves ties
  // to the smaller index. -1 marks an empty side.
  int Merge(int a, int b) const {
    if (a < 0) return b;
    if (b < 0) return a;
    return values_[a] <= values_[b] ? a : b;
  }

  int n_ = 0;
  int size_ = 1;
  std::vector<CostValue> values_;  // size_ leaves, padded with +infinity
  std::vector<int> best_;         // best_[1] is the whole-range argmin
};

}  // namespace mintri

#endif  // MINTRI_UTIL_RANGE_MIN_TREE_H_
