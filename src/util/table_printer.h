#ifndef MINTRI_UTIL_TABLE_PRINTER_H_
#define MINTRI_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace mintri {

/// Plain-text column-aligned table, used by the benchmark harness to print
/// the paper's tables and figure series in a stable, diff-friendly layout.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a row; missing trailing cells are rendered empty.
  void AddRow(std::vector<std::string> row);

  /// Formats a double with the given precision, mapping +inf to "-".
  static std::string Num(double v, int precision = 2);
  static std::string Int(long long v);

  /// Writes the aligned table (header, separator line, rows).
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mintri

#endif  // MINTRI_UTIL_TABLE_PRINTER_H_
