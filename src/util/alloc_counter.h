#ifndef MINTRI_UTIL_ALLOC_COUNTER_H_
#define MINTRI_UTIL_ALLOC_COUNTER_H_

#include <cstdint>

namespace mintri {

/// Snapshot of this thread's heap traffic since thread start. Only
/// meaningful when the build was configured with -DMINTRI_COUNT_ALLOCS=ON,
/// which compiles global operator new/delete overrides that bump
/// thread-local counters; otherwise every field reads as zero. The
/// difference of two snapshots brackets a region of code — that is how the
/// allocation-regression test pins "zero allocations per emitted separator
/// after warm-up" as an invariant instead of a hope.
///
/// Counters are thread-local on purpose: the overrides stay free of atomics
/// (so instrumented builds keep realistic timing), and a test measuring its
/// own thread is immune to background-thread noise. The cost is that
/// cross-thread traffic (a buffer allocated on one thread, freed on
/// another) shows up as an alloc here and a dealloc there — fine for the
/// regression tests, which measure single-threaded steady state.
struct AllocCounters {
  uint64_t allocations = 0;    // operator new calls (all forms)
  uint64_t deallocations = 0;  // operator delete calls (all forms)
  uint64_t bytes = 0;          // total bytes requested from operator new

  AllocCounters operator-(const AllocCounters& base) const {
    AllocCounters d;
    d.allocations = allocations - base.allocations;
    d.deallocations = deallocations - base.deallocations;
    d.bytes = bytes - base.bytes;
    return d;
  }
};

/// True iff the operator new/delete overrides are compiled in (i.e. the
/// snapshots below move). Lets tests GTEST_SKIP with a clear message in
/// uninstrumented builds rather than vacuously pass.
bool AllocCountingEnabled();

/// This thread's counters, now.
AllocCounters ReadAllocCounters();

}  // namespace mintri

#endif  // MINTRI_UTIL_ALLOC_COUNTER_H_
