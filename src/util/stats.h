#ifndef MINTRI_UTIL_STATS_H_
#define MINTRI_UTIL_STATS_H_

#include <algorithm>
#include <cmath>
#include <vector>

namespace mintri {

/// Arithmetic mean; 0 for an empty sample.
inline double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// Median (average of the two middle elements for even sizes); 0 if empty.
inline double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  size_t m = xs.size() / 2;
  if (xs.size() % 2 == 1) return xs[m];
  return 0.5 * (xs[m - 1] + xs[m]);
}

inline double Min(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

inline double Max(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

}  // namespace mintri

#endif  // MINTRI_UTIL_STATS_H_
