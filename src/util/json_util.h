#ifndef MINTRI_UTIL_JSON_UTIL_H_
#define MINTRI_UTIL_JSON_UTIL_H_

#include <ostream>
#include <string>

namespace mintri {

/// Writes s as a double-quoted JSON string with the standard escapes
/// (quote, backslash, newline, tab, \u00xx for other control bytes).
/// Shared by every JSON emitter in the repo (bench report, batch records)
/// so the escaping rules cannot drift between them.
void AppendJsonString(const std::string& s, std::ostream& out);

}  // namespace mintri

#endif  // MINTRI_UTIL_JSON_UTIL_H_
