#ifndef MINTRI_UTIL_SUBPROCESS_H_
#define MINTRI_UTIL_SUBPROCESS_H_

#include <string>
#include <vector>

namespace mintri {
namespace subprocess {

/// One child process to run: an argv whose first element is the executable
/// path (resolved via PATH when it contains no slash).
struct Command {
  std::vector<std::string> argv;
};

/// The decoded outcome of one child. Exactly one of the failure markers
/// applies; a healthy run has spawned && !timed_out && !signaled &&
/// exit_code == 0.
struct Result {
  bool spawned = false;      ///< exec happened (false: see spawn_error)
  std::string spawn_error;   ///< strerror detail when !spawned
  bool timed_out = false;    ///< killed because the shared deadline expired
  bool signaled = false;     ///< terminated by a signal (incl. our SIGKILL)
  int exit_code = -1;        ///< WEXITSTATUS, valid when spawned && !signaled
  int term_signal = 0;       ///< WTERMSIG, valid when signaled
  double wall_seconds = 0;   ///< spawn-to-reap elapsed time
  std::string stdout_data;   ///< everything the child wrote to stdout
  std::string stderr_data;   ///< everything the child wrote to stderr
};

/// Spawns every command at once (posix_spawn; stdin from /dev/null), captures
/// both output pipes of every child concurrently — poll-multiplexed, so no
/// child can deadlock on a full pipe buffer regardless of output volume —
/// enforces one shared deadline in seconds (<= 0 means none) by SIGKILLing
/// stragglers, reaps each child, and decodes its exit status.
/// results[i] corresponds to commands[i].
std::vector<Result> RunAll(const std::vector<Command>& commands,
                           double deadline_seconds);

/// Convenience wrapper for a single command.
Result Run(const Command& command, double deadline_seconds);

/// Human-readable one-liner: "exit 0", "signal 11 (SIGSEGV)",
/// "killed after 5s deadline", "spawn failed: No such file or directory".
std::string DescribeTermination(const Result& result);

/// The path of the currently running executable (/proc/self/exe), or an
/// empty string when it cannot be resolved. The batch coordinator uses it
/// to re-invoke itself as the worker binary.
std::string SelfExecutablePath();

}  // namespace subprocess
}  // namespace mintri

#endif  // MINTRI_UTIL_SUBPROCESS_H_
