#include "util/alloc_counter.h"

#include <cstddef>
#include <cstdlib>
#include <new>

// The override set below replaces the global allocation functions for the
// whole program (C++17 [replacement.functions]), so it must be compiled in
// at most once and only when asked for: it adds a few instructions to every
// allocation and is meant for the MINTRI_COUNT_ALLOCS CI leg and local
// regression runs, not production binaries.
#if MINTRI_COUNT_ALLOCS

namespace mintri {
namespace {

// Plain (trivially constructible/destructible) thread_locals: guaranteed
// constant-initialized, so the overrides can run during static init and
// thread shutdown without tripping a TLS-guard recursion through malloc.
thread_local uint64_t tl_allocations = 0;
thread_local uint64_t tl_deallocations = 0;
thread_local uint64_t tl_bytes = 0;

void* CountedAlloc(size_t size, size_t alignment) {
  ++tl_allocations;
  tl_bytes += size;
  // malloc(0) may return nullptr; operator new must not.
  if (size == 0) size = 1;
  void* p = alignment <= alignof(std::max_align_t)
                ? std::malloc(size)
                : std::aligned_alloc(alignment, ((size + alignment - 1) /
                                                 alignment) * alignment);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void CountedFree(void* p) {
  if (p != nullptr) ++tl_deallocations;
  std::free(p);
}

}  // namespace

bool AllocCountingEnabled() { return true; }

AllocCounters ReadAllocCounters() {
  AllocCounters c;
  c.allocations = tl_allocations;
  c.deallocations = tl_deallocations;
  c.bytes = tl_bytes;
  return c;
}

}  // namespace mintri

// Throwing forms.
void* operator new(size_t size) {
  return mintri::CountedAlloc(size, alignof(std::max_align_t));
}
void* operator new[](size_t size) {
  return mintri::CountedAlloc(size, alignof(std::max_align_t));
}
void* operator new(size_t size, std::align_val_t al) {
  return mintri::CountedAlloc(size, static_cast<size_t>(al));
}
void* operator new[](size_t size, std::align_val_t al) {
  return mintri::CountedAlloc(size, static_cast<size_t>(al));
}

// Nothrow forms.
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  try {
    return mintri::CountedAlloc(size, alignof(std::max_align_t));
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  try {
    return mintri::CountedAlloc(size, alignof(std::max_align_t));
  } catch (...) {
    return nullptr;
  }
}
void* operator new(size_t size, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  try {
    return mintri::CountedAlloc(size, static_cast<size_t>(al));
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](size_t size, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  try {
    return mintri::CountedAlloc(size, static_cast<size_t>(al));
  } catch (...) {
    return nullptr;
  }
}

// Deletes: every form funnels into CountedFree (size/alignment hints don't
// matter to free()).
void operator delete(void* p) noexcept { mintri::CountedFree(p); }
void operator delete[](void* p) noexcept { mintri::CountedFree(p); }
void operator delete(void* p, size_t) noexcept { mintri::CountedFree(p); }
void operator delete[](void* p, size_t) noexcept { mintri::CountedFree(p); }
void operator delete(void* p, std::align_val_t) noexcept {
  mintri::CountedFree(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  mintri::CountedFree(p);
}
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  mintri::CountedFree(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  mintri::CountedFree(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  mintri::CountedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  mintri::CountedFree(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  mintri::CountedFree(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  mintri::CountedFree(p);
}

#else  // !MINTRI_COUNT_ALLOCS

namespace mintri {

bool AllocCountingEnabled() { return false; }

AllocCounters ReadAllocCounters() { return AllocCounters{}; }

}  // namespace mintri

#endif  // MINTRI_COUNT_ALLOCS
