#ifndef MINTRI_UTIL_RNG_H_
#define MINTRI_UTIL_RNG_H_

#include <cstdint>

namespace mintri {

/// Small, fast, deterministic PRNG (xoshiro256**). All workload generators
/// take an explicit seed so every experiment in the repository is exactly
/// reproducible, independent of the standard library implementation.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be positive.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int NextInt(int lo, int hi) {
    return lo + static_cast<int>(NextBounded(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace mintri

#endif  // MINTRI_UTIL_RNG_H_
