#ifndef MINTRI_UTIL_TIMER_H_
#define MINTRI_UTIL_TIMER_H_

#include <chrono>
#include <limits>

namespace mintri {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the stopwatch to zero.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A deadline that long-running enumerations poll to support anytime
/// semantics (the paper's experiments stop every algorithm after a fixed
/// wall-clock budget).
class Deadline {
 public:
  /// A deadline that never expires.
  Deadline() : seconds_(std::numeric_limits<double>::infinity()) {}

  /// Expires `seconds` from now.
  explicit Deadline(double seconds) : seconds_(seconds) {}

  static Deadline Never() { return Deadline(); }

  bool Expired() const {
    return seconds_ != std::numeric_limits<double>::infinity() &&
           timer_.Seconds() >= seconds_;
  }

  double RemainingSeconds() const { return seconds_ - timer_.Seconds(); }

 private:
  WallTimer timer_;
  double seconds_;
};

}  // namespace mintri

#endif  // MINTRI_UTIL_TIMER_H_
