#include "util/table_printer.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace mintri {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double v, int precision) {
  if (std::isinf(v) || std::isnan(v)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Int(long long v) { return std::to_string(v); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      os << cell << std::string(widths[i] - cell.size() + 2, ' ');
    }
    os << "\n";
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace mintri
