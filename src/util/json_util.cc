#include "util/json_util.h"

#include <cstdio>

namespace mintri {

void AppendJsonString(const std::string& s, std::ostream& out) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace mintri
