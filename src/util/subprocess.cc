#include "util/subprocess.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

extern char** environ;

namespace mintri {
namespace subprocess {

namespace {

// Parent-side state for one spawned child: the pid, the read ends of its
// stdout/stderr pipes (-1 once closed), and reap bookkeeping.
struct ChildState {
  pid_t pid = -1;
  int out_fd = -1;
  int err_fd = -1;
  bool reaped = false;
  bool killed = false;
  std::chrono::steady_clock::time_point start;
};

bool MakePipe(int fds[2]) {
#ifdef __linux__
  if (pipe2(fds, O_CLOEXEC) != 0) return false;
#else
  if (pipe(fds) != 0) return false;
  fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  fcntl(fds[1], F_SETFD, FD_CLOEXEC);
#endif
  // Non-blocking read ends: the poll loop must never stall on one child
  // while another child's pipe is filling up.
  fcntl(fds[0], F_SETFL, O_NONBLOCK);
  return true;
}

void CloseFd(int* fd) {
  if (*fd >= 0) close(*fd);
  *fd = -1;
}

// Spawns commands[i]; on success fills child->pid and the pipe read ends.
bool SpawnOne(const Command& command, ChildState* child, Result* result) {
  int out_pipe[2];
  int err_pipe[2];
  if (!MakePipe(out_pipe)) {
    result->spawn_error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  if (!MakePipe(err_pipe)) {
    result->spawn_error = std::string("pipe: ") + std::strerror(errno);
    CloseFd(&out_pipe[0]);
    CloseFd(&out_pipe[1]);
    return false;
  }

  std::vector<char*> argv;
  argv.reserve(command.argv.size() + 1);
  for (const std::string& arg : command.argv) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_addopen(&actions, STDIN_FILENO, "/dev/null",
                                   O_RDONLY, 0);
  // dup2 clears FD_CLOEXEC on the duplicate, so the child keeps exactly its
  // own two write ends; every other pipe fd (including other children's)
  // closes across the exec and cannot hold a sibling's EOF hostage.
  posix_spawn_file_actions_adddup2(&actions, out_pipe[1], STDOUT_FILENO);
  posix_spawn_file_actions_adddup2(&actions, err_pipe[1], STDERR_FILENO);

  // Each child leads its own process group so a deadline kill reaches any
  // helpers it forked, not just the immediate child.
  posix_spawnattr_t attr;
  posix_spawnattr_init(&attr);
  posix_spawnattr_setpgroup(&attr, 0);
  posix_spawnattr_setflags(&attr, POSIX_SPAWN_SETPGROUP);

  pid_t pid = -1;
  child->start = std::chrono::steady_clock::now();
  const int rc =
      posix_spawnp(&pid, argv[0], &actions, &attr, argv.data(), environ);
  posix_spawnattr_destroy(&attr);
  posix_spawn_file_actions_destroy(&actions);
  CloseFd(&out_pipe[1]);
  CloseFd(&err_pipe[1]);
  if (rc != 0) {
    result->spawn_error = std::strerror(rc);
    CloseFd(&out_pipe[0]);
    CloseFd(&err_pipe[0]);
    return false;
  }
  result->spawned = true;
  child->pid = pid;
  child->out_fd = out_pipe[0];
  child->err_fd = err_pipe[0];
  return true;
}

// Drains whatever is currently readable; closes the fd on EOF/error.
void ReadAvailable(int* fd, std::string* sink) {
  char buffer[65536];
  while (true) {
    const ssize_t n = read(*fd, buffer, sizeof(buffer));
    if (n > 0) {
      sink->append(buffer, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    CloseFd(fd);  // EOF or unrecoverable error
    return;
  }
}

void DecodeStatus(int status, Result* result) {
  if (WIFEXITED(status)) {
    result->exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result->signaled = true;
    result->term_signal = WTERMSIG(status);
  }
}

}  // namespace

std::vector<Result> RunAll(const std::vector<Command>& commands,
                           double deadline_seconds) {
  const size_t n = commands.size();
  std::vector<Result> results(n);
  std::vector<ChildState> children(n);
  const auto start = std::chrono::steady_clock::now();

  for (size_t i = 0; i < n; ++i) {
    if (!SpawnOne(commands[i], &children[i], &results[i])) {
      children[i].reaped = true;  // nothing to wait for
    }
  }

  auto elapsed = [&start]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  while (true) {
    // Reap children that have exited; buffered pipe data stays readable
    // after the reap, so this never loses output.
    bool all_done = true;
    for (size_t i = 0; i < n; ++i) {
      ChildState& c = children[i];
      if (!c.reaped) {
        int status = 0;
        const pid_t r = waitpid(c.pid, &status, WNOHANG);
        if (r == c.pid) {
          DecodeStatus(status, &results[i]);
          results[i].wall_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            c.start)
                  .count();
          c.reaped = true;
          // Everything the dead child wrote is already in the pipe buffers;
          // drain and close now, so a lingering grandchild that inherited
          // the write end (e.g. a shell that forked) cannot wedge the loop
          // waiting for an EOF that never comes.
          if (c.out_fd >= 0) {
            ReadAvailable(&c.out_fd, &results[i].stdout_data);
            CloseFd(&c.out_fd);
          }
          if (c.err_fd >= 0) {
            ReadAvailable(&c.err_fd, &results[i].stderr_data);
            CloseFd(&c.err_fd);
          }
        }
      }
      if (!c.reaped || c.out_fd >= 0 || c.err_fd >= 0) all_done = false;
    }
    if (all_done) break;

    // Deadline enforcement: SIGKILL every straggler exactly once.
    if (deadline_seconds > 0 && elapsed() >= deadline_seconds) {
      for (size_t i = 0; i < n; ++i) {
        ChildState& c = children[i];
        if (!c.reaped && !c.killed) {
          kill(-c.pid, SIGKILL);  // the whole process group
          c.killed = true;
          results[i].timed_out = true;
        }
      }
    }

    // Poll every open pipe; cap the wait so deadline checks and reaps stay
    // responsive even when no fd turns readable.
    int timeout_ms = 100;
    if (deadline_seconds > 0) {
      const double remaining = deadline_seconds - elapsed();
      if (remaining < 0.1) {
        timeout_ms = remaining > 0 ? static_cast<int>(remaining * 1000) + 1
                                   : 10;
      }
    }
    std::vector<pollfd> fds;
    std::vector<std::pair<int*, std::string*>> targets;
    for (size_t i = 0; i < n; ++i) {
      for (auto [fd, sink] :
           {std::make_pair(&children[i].out_fd, &results[i].stdout_data),
            std::make_pair(&children[i].err_fd, &results[i].stderr_data)}) {
        if (*fd >= 0) {
          fds.push_back({*fd, POLLIN, 0});
          targets.emplace_back(fd, sink);
        }
      }
    }
    const int ready = poll(fds.empty() ? nullptr : fds.data(),
                           static_cast<nfds_t>(fds.size()), timeout_ms);
    if (ready > 0) {
      for (size_t k = 0; k < fds.size(); ++k) {
        if (fds[k].revents & (POLLIN | POLLHUP | POLLERR)) {
          ReadAvailable(targets[k].first, targets[k].second);
        }
      }
    }
  }
  return results;
}

Result Run(const Command& command, double deadline_seconds) {
  return RunAll({command}, deadline_seconds)[0];
}

std::string DescribeTermination(const Result& result) {
  std::ostringstream os;
  if (!result.spawned) {
    os << "spawn failed: " << result.spawn_error;
  } else if (result.timed_out) {
    os << "killed after deadline (" << result.wall_seconds << "s)";
  } else if (result.signaled) {
    const char* name = strsignal(result.term_signal);
    os << "signal " << result.term_signal << " (" << (name ? name : "?")
       << ")";
  } else {
    os << "exit " << result.exit_code;
  }
  return os.str();
}

std::string SelfExecutablePath() {
  char buffer[4096];
  const ssize_t n = readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n <= 0) return "";
  buffer[n] = '\0';
  return std::string(buffer);
}

}  // namespace subprocess
}  // namespace mintri
