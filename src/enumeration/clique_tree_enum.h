#ifndef MINTRI_ENUMERATION_CLIQUE_TREE_ENUM_H_
#define MINTRI_ENUMERATION_CLIQUE_TREE_ENUM_H_

#include <cstddef>
#include <vector>

#include "chordal/clique_tree.h"
#include "graph/graph.h"

namespace mintri {

/// Enumerates the clique trees of a connected chordal graph, up to `limit`.
///
/// This realizes the expansion step of Proposition 6.1: the clique trees of
/// a chordal graph H are exactly the maximum-weight spanning trees of the
/// clique graph (nodes = maximal cliques, weight = |intersection|) — Jordan
/// [24] — and enumerating maximum spanning trees is a classical task (Yamada
/// et al. [41]). Combined with RankedTriangulationEnumerator this yields
/// ranked enumeration of *all* proper tree decompositions, since every bag
/// cost gives all clique trees of one triangulation the same cost.
///
/// Implementation: branch-and-bound over edges sorted by decreasing weight,
/// pruning partial forests whose optimistic completion falls below the
/// maximum spanning weight. Exact and complete; intended for the ≤ n clique
/// nodes of a chordal graph.
std::vector<CliqueTree> EnumerateCliqueTrees(const Graph& chordal,
                                             size_t limit = SIZE_MAX);

}  // namespace mintri

#endif  // MINTRI_ENUMERATION_CLIQUE_TREE_ENUM_H_
