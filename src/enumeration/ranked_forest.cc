#include "enumeration/ranked_forest.h"

#include <algorithm>

namespace mintri {

RankedForestEnumerator::RankedForestEnumerator(
    const Graph& g, const BagCost& cost, CostComposition composition,
    const ContextOptions& options, const SolverOptions& solver_options)
    : g_(g), composition_(composition) {
  for (const VertexSet& comp_vertices : g.ConnectedComponents()) {
    Component comp;
    comp.old_of_new.resize(comp_vertices.Count());
    int next = 0;
    comp_vertices.ForEach([&](int v) { comp.old_of_new[next++] = v; });
    Graph sub = g.InducedSubgraph(comp_vertices);
    ContextBuildInfo component_info;
    auto ctx = TriangulationContext::Build(sub, options, &component_info);
    init_info_.Accumulate(component_info);
    if (!ctx.has_value()) {
      init_ok_ = false;
      return;
    }
    comp.context =
        std::make_unique<TriangulationContext>(std::move(*ctx));
    // The component subgraph renumbers vertices, so vertex-dependent costs
    // (hypergraph edge covers, per-vertex domains, weighted fill) must be
    // re-anchored to the original labels. The identity relabeling (a
    // connected graph's single component) keeps the shared cost as-is.
    bool identity = sub.NumVertices() == g.NumVertices();
    if (!identity) {
      comp.restricted_cost = cost.RestrictTo(comp.old_of_new, g.NumVertices());
    }
    comp.enumerator = std::make_unique<RankedTriangulationEnumerator>(
        *comp.context,
        comp.restricted_cost != nullptr ? *comp.restricted_cost : cost,
        solver_options);
    components_.push_back(std::move(comp));
  }
  if (components_.empty()) return;  // empty graph: nothing to enumerate

  std::vector<size_t> first(components_.size(), 0);
  bool feasible = true;
  for (size_t c = 0; c < components_.size(); ++c) {
    if (!Materialize(static_cast<int>(c), 0)) feasible = false;
  }
  if (feasible) {
    queue_.push({Compose(first), first});
    enqueued_.insert(first);
  }
}

void RankedForestEnumerator::SetDeadline(const Deadline* deadline) {
  for (Component& comp : components_) {
    if (comp.enumerator != nullptr) comp.enumerator->SetDeadline(deadline);
  }
}

bool RankedForestEnumerator::truncated() const {
  for (const Component& comp : components_) {
    if (comp.enumerator != nullptr && comp.enumerator->truncated()) {
      return true;
    }
  }
  return false;
}

long long RankedForestEnumerator::SumOverComponents(
    long long (RankedTriangulationEnumerator::*stat)() const) const {
  long long sum = 0;
  for (const Component& comp : components_) {
    if (comp.enumerator != nullptr) sum += ((*comp.enumerator).*stat)();
  }
  return sum;
}

long long RankedForestEnumerator::num_optimizer_calls() const {
  return SumOverComponents(&RankedTriangulationEnumerator::num_optimizer_calls);
}

long long RankedForestEnumerator::num_candidate_evals() const {
  return SumOverComponents(&RankedTriangulationEnumerator::num_candidate_evals);
}

long long RankedForestEnumerator::num_combine_calls() const {
  return SumOverComponents(&RankedTriangulationEnumerator::num_combine_calls);
}

long long RankedForestEnumerator::num_index_updates() const {
  return SumOverComponents(&RankedTriangulationEnumerator::num_index_updates);
}

long long RankedForestEnumerator::num_range_queries() const {
  return SumOverComponents(&RankedTriangulationEnumerator::num_range_queries);
}

bool RankedForestEnumerator::Materialize(int component, size_t i) {
  Component& comp = components_[component];
  while (comp.produced.size() <= i && !comp.exhausted) {
    auto t = comp.enumerator->Next();
    if (!t.has_value()) {
      comp.exhausted = true;
      break;
    }
    comp.produced.push_back(std::move(*t));
  }
  return comp.produced.size() > i;
}

CostValue RankedForestEnumerator::Compose(const std::vector<size_t>& indices) {
  CostValue acc = composition_ == CostComposition::kMax ? -kInfiniteCost : 0;
  for (size_t c = 0; c < indices.size(); ++c) {
    CostValue v = components_[c].produced[indices[c]].cost;
    acc = composition_ == CostComposition::kMax ? std::max(acc, v) : acc + v;
  }
  return acc;
}

Triangulation RankedForestEnumerator::Assemble(
    const std::vector<size_t>& indices) {
  Triangulation out;
  out.filled = g_;
  const int n = g_.NumVertices();
  for (size_t c = 0; c < indices.size(); ++c) {
    const Component& comp = components_[c];
    const Triangulation& part = comp.produced[indices[c]];
    int bag_offset = static_cast<int>(out.bags.size());
    for (size_t b = 0; b < part.bags.size(); ++b) {
      VertexSet bag(n);
      part.bags[b].ForEach([&](int v) { bag.Insert(comp.old_of_new[v]); });
      out.filled.SaturateSet(bag);
      out.bags.push_back(std::move(bag));
      out.parent.push_back(part.parent[b] < 0 ? -1
                                              : part.parent[b] + bag_offset);
    }
    for (const VertexSet& s : part.separators) {
      VertexSet sep(n);
      s.ForEach([&](int v) { sep.Insert(comp.old_of_new[v]); });
      out.separators.push_back(std::move(sep));
    }
  }
  std::sort(out.separators.begin(), out.separators.end());
  out.cost = Compose(indices);
  return out;
}

std::optional<Triangulation> RankedForestEnumerator::Next() {
  if (!init_ok_ || queue_.empty()) return std::nullopt;
  QueueEntry top = queue_.top();
  queue_.pop();

  // Successors: bump one coordinate at a time.
  for (size_t c = 0; c < top.indices.size(); ++c) {
    std::vector<size_t> next = top.indices;
    ++next[c];
    if (enqueued_.count(next)) continue;
    if (!Materialize(static_cast<int>(c), next[c])) continue;
    queue_.push({Compose(next), next});
    enqueued_.insert(std::move(next));
  }
  return Assemble(top.indices);
}

}  // namespace mintri
