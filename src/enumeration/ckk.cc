#include "enumeration/ckk.h"

#include "chordal/lb_triang.h"
#include "separators/crossing.h"

namespace mintri {

CkkEnumerator::CkkEnumerator(const Graph& g, const BagCost* cost)
    : CkkEnumerator(g, cost,
                    [](const Graph& input) { return LbTriangMinDegree(input); }) {}

CkkEnumerator::CkkEnumerator(const Graph& g, const BagCost* cost,
                             Triangulator triangulator)
    : g_(g),
      cost_(cost),
      triangulator_(std::move(triangulator)),
      separator_stream_(g) {
  Offer(Extend({}));
}

Triangulation CkkEnumerator::Extend(const std::vector<VertexSet>& seed) {
  Graph saturated = g_;
  for (const VertexSet& s : seed) saturated.SaturateSet(s);
  ++num_triangulator_calls_;
  Graph h = triangulator_(saturated);
  Triangulation t = TriangulationFromChordal(g_, std::move(h));
  if (cost_ != nullptr) t.cost = cost_->Evaluate(g_, t.bags);
  return t;
}

bool CkkEnumerator::Offer(Triangulation t) {
  // Dedup on the fill set itself (hash-accelerated, equality-confirmed): a
  // hash collision must never drop a distinct minimal triangulation.
  if (!seen_fills_.Insert(t.FillEdgesSorted(g_))) return false;
  pending_.push_back(std::move(t));
  return true;
}

void CkkEnumerator::TryExchange(const std::vector<VertexSet>& m,
                                const VertexSet& s) {
  for (const VertexSet& t : m) {
    if (t == s) return;  // S already in the set: nothing to exchange
  }
  ComponentLabeling labeling(g_, s);
  std::vector<VertexSet> seed = {s};
  for (const VertexSet& t : m) {
    if (labeling.IsParallelTo(t)) seed.push_back(t);
  }
  Offer(Extend(seed));
}

std::optional<Triangulation> CkkEnumerator::Next() {
  // When no pending result is available, advance the lazy separator stream:
  // each not-yet-known minimal separator is exchanged against every printed
  // result until one of the exchanges yields something new (or the stream
  // ends, proving the enumeration complete).
  while (pending_.empty()) {
    std::optional<VertexSet> s = separator_stream_.Next();
    if (!s.has_value()) return std::nullopt;
    if (!known_sep_set_.insert(*s).second) continue;
    known_seps_.push_back(*s);
    for (const auto& m : printed_separator_sets_) TryExchange(m, *s);
  }
  Triangulation h = std::move(pending_.front());
  pending_.pop_front();

  // Separators newly discovered by this result.
  std::vector<VertexSet> fresh;
  for (const VertexSet& s : h.separators) {
    if (known_sep_set_.insert(s).second) {
      fresh.push_back(s);
      known_seps_.push_back(s);
    }
  }
  // Exchange H against every known separator...
  for (const VertexSet& s : known_seps_) TryExchange(h.separators, s);
  // ...and every previously printed result against the fresh separators.
  for (const auto& m : printed_separator_sets_) {
    for (const VertexSet& s : fresh) TryExchange(m, s);
  }
  printed_separator_sets_.push_back(h.separators);
  return h;
}

}  // namespace mintri
