#ifndef MINTRI_ENUMERATION_CKK_H_
#define MINTRI_ENUMERATION_CKK_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cost/bag_cost.h"
#include "graph/graph.h"
#include "separators/minimal_separators.h"
#include "triang/triangulation.h"

namespace mintri {

/// Deduplication of minimal triangulations by their sorted fill-edge sets
/// (a bijective key for minimal triangulations of a fixed graph). Keyed by
/// a 64-bit hash for speed but compared by the actual fill sets, so a hash
/// collision costs one extra equality check instead of silently dropping a
/// distinct triangulation (the bug this replaced: dedup on the bare hash).
/// The hash is injectable so the collision path is unit-testable.
class FillSetDedup {
 public:
  using FillSet = std::vector<std::pair<int, int>>;
  using HashFn = std::function<size_t(const FillSet&)>;

  FillSetDedup() : seen_(0, HashFn(&DefaultHash)) {}
  explicit FillSetDedup(HashFn hash) : seen_(0, std::move(hash)) {}

  /// True iff `fill` was not seen before (and is now recorded).
  bool Insert(FillSet fill) { return seen_.insert(std::move(fill)).second; }

  size_t Size() const { return seen_.size(); }

  /// FNV-style mix over the edge list (the production hash).
  static size_t DefaultHash(const FillSet& fill) {
    size_t h = fill.size() * 1469598103934665603ULL;
    for (const auto& [u, v] : fill) {
      h = (h ^ (static_cast<size_t>(u) * 131071 + v)) * 1099511628211ULL;
    }
    return h;
  }

 private:
  std::unordered_set<FillSet, HashFn> seen_;
};

/// The CKK baseline: the enumeration algorithm of Carmeli, Kenig and
/// Kimelfeld (PODS 2017), which the paper compares against in Section 7.
///
/// Minimal triangulations correspond one-to-one to maximal independent sets
/// of the graph over MinSep(G) with crossing edges (Parra–Scheffler,
/// Theorem 2.5). CKK enumerates these maximal independent sets in
/// incremental polynomial time with the classic exchange step — from a
/// printed triangulation H and a known separator S, re-extend the seed
/// {S} ∪ {T ∈ MinSep(H) : T parallel S} to a maximal set — where extension
/// is delegated to a black-box minimal triangulator (LB-Triang, as in the
/// paper's experiments) applied to G with the seed separators saturated.
///
/// New separators enter the exchange pool from two sources: the separator
/// sets of printed triangulations, and a *lazily consumed* Berry–Bordat–
/// Cogis stream (MinimalSeparatorEnumerator) that is only advanced when the
/// pending pool runs dry — CKK never pays a full upfront enumeration.
///
/// Two properties matter for the experimental comparison:
///  - there is NO initialization step (the first result is one LB-Triang
///    call away), and
///  - there is NO guarantee on the order of results.
class CkkEnumerator {
 public:
  /// The black-box minimal triangulator: must return a minimal
  /// triangulation of its input for every input. LB-Triang (min-degree) is
  /// the default, matching the paper's experiments; McsM from
  /// chordal/mcs_m.h is a drop-in alternative.
  using Triangulator = std::function<Graph(const Graph&)>;

  /// If `cost` is non-null, each produced Triangulation carries
  /// cost->Evaluate(g, bags) in its `cost` field (CKK itself ignores costs).
  /// Both references must outlive the enumerator.
  explicit CkkEnumerator(const Graph& g, const BagCost* cost = nullptr);
  CkkEnumerator(const Graph& g, const BagCost* cost,
                Triangulator triangulator);

  /// The next minimal triangulation (arbitrary order), or std::nullopt when
  /// all minimal triangulations have been produced.
  std::optional<Triangulation> Next();

  /// Number of LB-Triang invocations so far (for the experiment harness).
  long long num_triangulator_calls() const { return num_triangulator_calls_; }

 private:
  // Produces the minimal triangulation of G extending the pairwise-parallel
  // seed (CKK Theorem: minimal triangulations of G with the seed saturated
  // are exactly the minimal triangulations of the seed-saturated graph).
  Triangulation Extend(const std::vector<VertexSet>& seed);

  // Exchange step: offers Extend({S} ∪ {T ∈ M : T ∥ S}) if unseen.
  void TryExchange(const std::vector<VertexSet>& m, const VertexSet& s);

  bool Offer(Triangulation t);  // dedup by fill set; true if new

  const Graph& g_;
  const BagCost* cost_;
  Triangulator triangulator_;
  MinimalSeparatorEnumerator separator_stream_;
  std::deque<Triangulation> pending_;
  std::vector<std::vector<VertexSet>> printed_separator_sets_;
  std::vector<VertexSet> known_seps_;
  std::unordered_set<VertexSet, VertexSetHash> known_sep_set_;
  FillSetDedup seen_fills_;
  long long num_triangulator_calls_ = 0;
};

}  // namespace mintri

#endif  // MINTRI_ENUMERATION_CKK_H_
