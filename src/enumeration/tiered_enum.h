#ifndef MINTRI_ENUMERATION_TIERED_ENUM_H_
#define MINTRI_ENUMERATION_TIERED_ENUM_H_

#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "cost/bag_cost.h"
#include "enumeration/ranked_forest.h"
#include "preprocess/preprocess.h"

namespace mintri {

/// Which tier of the solve pipeline answered.
///  - kExact:     the classic full enumeration (complete ranked stream).
///  - kAtomExact: Tier 0 reduced/decomposed the graph and every atom was
///                solved exactly — the stream is still the complete set of
///                minimal triangulations in non-decreasing κ order (ties may
///                interleave differently than the direct path).
///  - kHeuristic: at least one atom fell back to the LB-Triang-seeded
///                restricted family — every result is still a genuine
///                minimal triangulation with its true κ, but the stream may
///                be incomplete and κ positions are not globally optimal.
enum class SolveTier { kExact, kAtomExact, kHeuristic };

const char* TierName(SolveTier tier);

/// True for registry costs whose global value is a monotone function of the
/// per-atom values under clique-separator gluing and simplicial lifting —
/// the soundness gate for Tier-0 reduction/decomposition: width, fill,
/// hypertree, fhw. Not width-then-fill (its encoded multiplier is a
/// whole-graph quantity) and not state-space (an atom bag subsumed by an
/// elimination bag can invert the product order).
bool IsTierDecomposableCost(const std::string& cost_name);

struct TierOptions {
  enum class Mode {
    kExact,      // the pre-tier pipeline, byte-for-byte
    kAuto,       // try exact per atom, degrade to the heuristic family
    kHeuristic,  // skip exact attempts entirely
  };
  Mode mode = Mode::kAuto;

  /// Tier-0 knobs; only applied when `decomposable_cost` (the defaults are
  /// the stream-safe reductions).
  PreprocessOptions preprocess;

  /// Set by the caller per cost (see IsTierDecomposableCost). When false,
  /// Tier 0 is skipped and the units are exactly the connected components.
  bool decomposable_cost = false;

  /// Shared wall-clock budget across all per-unit *exact* build attempts
  /// (Tier 1). Once spent, remaining units go straight to Tier 2 and are
  /// tallied as ms-terminated attempts. Infinite disables the gate (each
  /// build still honors the per-stage ContextOptions limits).
  double exact_budget_seconds = std::numeric_limits<double>::infinity();
};

struct TieredResult {
  Triangulation triangulation;
  SolveTier tier;
};

/// The tiered solve pipeline: Tier 0 (simplicial reduction +
/// clique-minimal-separator atom decomposition), Tier 1 (the existing exact
/// ranked stack per atom, recombined into a global ranked stream through the
/// same ranked-product machinery as RankedForestEnumerator), Tier 2
/// (LB-Triang-seeded restricted-family enumeration when an atom exceeds its
/// MinSep/PMC budget). Deterministic and byte-identical at every thread
/// count; in Mode::kExact it delegates wholesale to RankedForestEnumerator,
/// and in Mode::kAuto with no reduction/decomposition/fallback it replays
/// that enumerator's stream byte-for-byte by construction.
class TieredEnumerator {
 public:
  TieredEnumerator(const Graph& g, const BagCost& cost,
                   CostComposition composition,
                   const ContextOptions& options = {},
                   const SolverOptions& solver_options = {},
                   const TierOptions& tier_options = {});

  /// Only false in Mode::kExact when a component's build hit its limits;
  /// the auto/heuristic modes always have Tier 2 to fall back on.
  bool init_ok() const { return forest_ ? forest_->init_ok() : true; }

  /// Per-enumeration wall-clock budget, forwarded to every unit enumerator.
  void SetDeadline(const Deadline* deadline);

  /// True when a deadline cut some unit's stream short.
  bool truncated() const;

  long long num_optimizer_calls() const;
  long long num_candidate_evals() const;
  long long num_combine_calls() const;
  long long num_index_updates() const;
  long long num_range_queries() const;

  /// Aggregated build breakdown over every unit (exact attempts and
  /// heuristic family builds both count), including the per-atom termination
  /// tallies and the folded-in Tier-0 counters.
  const ContextBuildInfo& init_info() const {
    return forest_ ? forest_->init_info() : init_info_;
  }
  double init_seconds() const { return init_info().total_seconds; }

  /// The truthful label of the stream (and of every result it emits).
  SolveTier tier() const { return tier_; }

  /// Tier-0 summary over all components (zeros when Tier 0 never ran).
  const PreprocessInfo& preprocess_info() const { return preprocess_info_; }

  /// Wall clock spent in per-unit *exact* context builds (successful and
  /// budget-terminated attempts alike).
  double tier1_seconds() const {
    return forest_ ? forest_->init_info().total_seconds : tier1_seconds_;
  }
  /// Wall clock spent building heuristic restricted-family contexts.
  double tier2_seconds() const { return forest_ ? 0 : tier2_seconds_; }

  /// The next-cheapest minimal triangulation (original vertex ids) with its
  /// tier label. Heuristic streams are non-decreasing in κ within the
  /// restricted family; exact/atom-exact streams are complete.
  std::optional<TieredResult> Next();

 private:
  /// One solve unit: an atom of some connected component (or the component
  /// itself when Tier 0 is off / found nothing to split).
  struct Unit {
    std::vector<int> old_of_new;  // unit labels -> g labels
    std::unique_ptr<BagCost> restricted_cost;
    std::unique_ptr<TriangulationContext> context;
    std::unique_ptr<RankedTriangulationEnumerator> enumerator;
    std::vector<Triangulation> produced;  // memoized ranked prefix
    bool exhausted = false;
    SolveTier tier = SolveTier::kExact;
  };

  void AddUnit(const Graph& sub, std::vector<int> old_of_new,
               const ContextOptions& options,
               const SolverOptions& solver_options,
               const TierOptions& tier_options, double remaining_budget);
  bool Materialize(int unit, size_t i);
  long long SumOverUnits(
      long long (RankedTriangulationEnumerator::*stat)() const) const;
  CostValue Compose(const std::vector<size_t>& indices) const;
  Triangulation Assemble(const std::vector<size_t>& indices);

  const Graph& g_;
  const BagCost& cost_;
  CostComposition composition_;
  /// Mode::kExact delegate: the literal pre-tier enumerator.
  std::unique_ptr<RankedForestEnumerator> forest_;
  /// True once Tier 0 changed the unit structure (eliminated a vertex or
  /// split a component); selects the lifting assembly path.
  bool lifted_ = false;
  SolveTier tier_ = SolveTier::kExact;
  ContextBuildInfo init_info_;
  PreprocessInfo preprocess_info_;
  double tier1_seconds_ = 0;
  double tier2_seconds_ = 0;
  /// Lift bags of Tier-0-eliminated vertices (g labels): each is N[v] at
  /// elimination time, a maximal clique of every assembled triangulation.
  std::vector<VertexSet> fixed_bags_;
  std::vector<Unit> units_;

  struct QueueEntry {
    CostValue cost;
    std::vector<size_t> indices;
    bool operator>(const QueueEntry& other) const {
      if (cost != other.cost) return cost > other.cost;
      return indices > other.indices;
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
  std::set<std::vector<size_t>> enqueued_;
};

}  // namespace mintri

#endif  // MINTRI_ENUMERATION_TIERED_ENUM_H_
