#include "enumeration/clique_tree_enum.h"

#include <algorithm>
#include <numeric>

namespace mintri {

namespace {

struct WeightedEdge {
  int a, b, weight;
};

// Union-find over clique nodes for cycle detection in partial forests.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  bool Union(int a, int b) {
    int ra = Find(a), rb = Find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }
  UnionFind Copy() const { return *this; }

 private:
  std::vector<int> parent_;
};

class Enumerator {
 public:
  Enumerator(std::vector<VertexSet> cliques, std::vector<WeightedEdge> edges,
             int target_weight, size_t limit)
      : cliques_(std::move(cliques)),
        edges_(std::move(edges)),
        target_weight_(target_weight),
        limit_(limit) {
    suffix_weight_.resize(edges_.size() + 1, 0);
    for (int i = static_cast<int>(edges_.size()) - 1; i >= 0; --i) {
      suffix_weight_[i] = suffix_weight_[i + 1] + edges_[i].weight;
    }
  }

  std::vector<CliqueTree> Run() {
    UnionFind uf(static_cast<int>(cliques_.size()));
    std::vector<int> chosen;
    Recurse(0, 0, uf, &chosen);
    return std::move(results_);
  }

 private:
  // Upper bound on achievable total weight: current + the heaviest remaining
  // needed edges (edges_ is sorted by decreasing weight).
  void Recurse(size_t index, int weight, UnionFind uf,
               std::vector<int>* chosen) {
    const int k = static_cast<int>(cliques_.size());
    if (results_.size() >= limit_) return;
    if (static_cast<int>(chosen->size()) == k - 1) {
      if (weight == target_weight_) Emit(*chosen);
      return;
    }
    if (index >= edges_.size()) return;
    int needed = k - 1 - static_cast<int>(chosen->size());
    if (static_cast<int>(edges_.size() - index) < needed) return;
    // Optimistic bound: even taking the heaviest `needed` remaining edges
    // cannot reach the maximum spanning weight.
    int optimistic = weight;
    for (size_t i = index, taken = 0; taken < static_cast<size_t>(needed);
         ++i, ++taken) {
      optimistic += edges_[i].weight;
    }
    if (optimistic < target_weight_) return;

    // Branch 1: take edges_[index] if it does not close a cycle.
    UnionFind with = uf.Copy();
    if (with.Union(edges_[index].a, edges_[index].b)) {
      chosen->push_back(static_cast<int>(index));
      Recurse(index + 1, weight + edges_[index].weight, std::move(with),
              chosen);
      chosen->pop_back();
    }
    // Branch 2: skip it.
    Recurse(index + 1, weight, std::move(uf), chosen);
  }

  void Emit(const std::vector<int>& chosen) {
    CliqueTree tree;
    tree.cliques = cliques_;
    for (int ei : chosen) tree.edges.emplace_back(edges_[ei].a, edges_[ei].b);
    results_.push_back(std::move(tree));
  }

  std::vector<VertexSet> cliques_;
  std::vector<WeightedEdge> edges_;
  std::vector<int> suffix_weight_;
  int target_weight_;
  size_t limit_;
  std::vector<CliqueTree> results_;
};

}  // namespace

std::vector<CliqueTree> EnumerateCliqueTrees(const Graph& chordal,
                                             size_t limit) {
  CliqueTree one = BuildCliqueTree(chordal);
  if (one.cliques.size() <= 1) return {one};

  int target = 0;
  for (const auto& [i, j] : one.edges) {
    target += one.cliques[i].Intersect(one.cliques[j]).Count();
  }

  std::vector<WeightedEdge> edges;
  const int k = static_cast<int>(one.cliques.size());
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      int w = one.cliques[i].Intersect(one.cliques[j]).Count();
      if (w > 0) edges.push_back({i, j, w});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return a.weight > b.weight;
            });

  Enumerator enumerator(std::move(one.cliques), std::move(edges), target,
                        limit);
  return enumerator.Run();
}

}  // namespace mintri
