#include "enumeration/tree_decomposition.h"

#include <algorithm>
#include <set>

#include "chordal/clique_tree.h"
#include "chordal/minimality.h"

namespace mintri {

int TreeDecomposition::Width() const {
  int w = -1;
  for (const VertexSet& b : bags) w = std::max(w, b.Count() - 1);
  return w;
}

bool TreeDecomposition::IsValidFor(const Graph& g) const {
  const int n = g.NumVertices();
  const int k = static_cast<int>(bags.size());
  if (k == 0) return n == 0;

  // Tree shape: k nodes, acyclic, and (for connected coverage of bags) a
  // forest; each edge must reference valid nodes.
  std::vector<std::vector<int>> adj(k);
  for (const auto& [a, b] : edges) {
    if (a < 0 || b < 0 || a >= k || b >= k || a == b) return false;
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  // Acyclicity via union-find.
  std::vector<int> uf(k);
  for (int i = 0; i < k; ++i) uf[i] = i;
  auto find = [&](int x) {
    while (uf[x] != x) x = uf[x] = uf[uf[x]];
    return x;
  };
  for (const auto& [a, b] : edges) {
    int ra = find(a), rb = find(b);
    if (ra == rb) return false;  // cycle
    uf[ra] = rb;
  }

  // Vertex cover + edge cover.
  VertexSet covered(n);
  for (const VertexSet& b : bags) covered.UnionWith(b);
  if (covered.Count() != n) return false;
  for (const auto& [u, v] : g.Edges()) {
    bool found = false;
    for (const VertexSet& b : bags) {
      if (b.Contains(u) && b.Contains(v)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }

  // Junction property: for each vertex, the bags containing it induce a
  // connected subtree.
  for (int v = 0; v < n; ++v) {
    std::vector<int> holders;
    for (int i = 0; i < k; ++i) {
      if (bags[i].Contains(v)) holders.push_back(i);
    }
    if (holders.empty()) return false;
    // BFS within holder-induced subgraph of the tree.
    std::set<int> holder_set(holders.begin(), holders.end());
    std::vector<int> queue = {holders[0]};
    std::set<int> seen = {holders[0]};
    for (size_t h = 0; h < queue.size(); ++h) {
      for (int nb : adj[queue[h]]) {
        if (holder_set.count(nb) && !seen.count(nb)) {
          seen.insert(nb);
          queue.push_back(nb);
        }
      }
    }
    if (seen.size() != holder_set.size()) return false;
  }
  return true;
}

bool TreeDecomposition::IsProperFor(const Graph& g) const {
  if (!IsValidFor(g)) return false;
  // Saturate all bags; the result must be a minimal triangulation whose
  // maximal cliques are exactly the bags, with no duplicate bags
  // (β is a bijection onto MaxClq, Theorem 2.2(3)).
  Graph h = g;
  for (const VertexSet& b : bags) h.SaturateSet(b);
  if (!IsMinimalTriangulation(g, h)) return false;
  std::vector<VertexSet> cliques = MaximalCliquesOfChordal(h);
  std::vector<VertexSet> sorted_bags = bags;
  std::sort(sorted_bags.begin(), sorted_bags.end());
  if (std::adjacent_find(sorted_bags.begin(), sorted_bags.end()) !=
      sorted_bags.end()) {
    return false;  // duplicate bags
  }
  std::sort(cliques.begin(), cliques.end());
  return sorted_bags == cliques;
}

void WritePaceTd(const TreeDecomposition& td, int num_graph_vertices,
                 std::ostream& out) {
  out << "s td " << td.bags.size() << " " << td.Width() + 1 << " "
      << num_graph_vertices << "\n";
  for (size_t i = 0; i < td.bags.size(); ++i) {
    out << "b " << i + 1;
    td.bags[i].ForEach([&](int v) { out << " " << v + 1; });
    out << "\n";
  }
  for (const auto& [a, b] : td.edges) {
    out << a + 1 << " " << b + 1 << "\n";
  }
}

TreeDecomposition CliqueTreeOf(const Triangulation& t) {
  TreeDecomposition td;
  td.bags = t.bags;
  for (size_t i = 0; i < t.parent.size(); ++i) {
    if (t.parent[i] >= 0) {
      td.edges.emplace_back(t.parent[i], static_cast<int>(i));
    }
  }
  return td;
}

}  // namespace mintri
