#ifndef MINTRI_ENUMERATION_RANKED_FOREST_H_
#define MINTRI_ENUMERATION_RANKED_FOREST_H_

#include <memory>
#include <optional>
#include <queue>
#include <set>
#include <vector>

#include "cost/bag_cost.h"
#include "enumeration/ranked_enum.h"

namespace mintri {

/// How a bag cost composes across connected components. Width-like costs
/// compose by max; fill-like and sum-of-bag-weight costs compose by sum.
enum class CostComposition { kMax, kSum };

/// Ranked enumeration of minimal triangulations for an arbitrary (possibly
/// disconnected) graph. A minimal triangulation of a disconnected graph is
/// an independent choice of a minimal triangulation per component, so the
/// ranked stream is the *ranked product* of the per-component streams: a
/// priority queue over index vectors (i_1, ..., i_k), lazily materializing
/// each component's ranked list. The composed cost is monotone in every
/// coordinate (split-monotone bag costs are), so the product order is
/// correct.
///
/// This closes the connectivity restriction of TriangulationContext at the
/// API level (DESIGN.md §2.7).
class RankedForestEnumerator {
 public:
  RankedForestEnumerator(const Graph& g, const BagCost& cost,
                         CostComposition composition,
                         const ContextOptions& options = {});

  /// False when some component's initialization hit its limits; Next() then
  /// always returns std::nullopt.
  bool init_ok() const { return init_ok_; }

  /// Aggregated context-build breakdown over all components (stage seconds
  /// and counts summed; on failure, termination names the stage that gave
  /// up — the Fig. 5 "MS terminated" / "PMC terminated" taxonomy).
  const ContextBuildInfo& init_info() const { return init_info_; }
  /// Total initialization wall-clock over every component context.
  double init_seconds() const { return init_info_.total_seconds; }

  /// The next-cheapest minimal triangulation of the whole graph (bags and
  /// fill edges in original vertex ids; the clique tree is a forest with
  /// one root per component).
  std::optional<Triangulation> Next();

 private:
  struct Component {
    std::vector<int> old_of_new;            // relabeling back to g
    /// Identity-corrected cost (BagCost::RestrictTo) for vertex-dependent
    /// costs; null when the shared cost is relabeling-invariant.
    std::unique_ptr<BagCost> restricted_cost;
    std::unique_ptr<TriangulationContext> context;
    std::unique_ptr<RankedTriangulationEnumerator> enumerator;
    std::vector<Triangulation> produced;    // memoized ranked prefix
    bool exhausted = false;
  };

  // Ensures produced[i] exists; false if the stream has fewer results.
  bool Materialize(int component, size_t i);
  CostValue Compose(const std::vector<size_t>& indices);
  Triangulation Assemble(const std::vector<size_t>& indices);

  const Graph& g_;
  CostComposition composition_;
  bool init_ok_ = true;
  ContextBuildInfo init_info_;
  std::vector<Component> components_;

  struct QueueEntry {
    CostValue cost;
    std::vector<size_t> indices;
    bool operator>(const QueueEntry& other) const {
      if (cost != other.cost) return cost > other.cost;
      return indices > other.indices;
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
  std::set<std::vector<size_t>> enqueued_;
};

}  // namespace mintri

#endif  // MINTRI_ENUMERATION_RANKED_FOREST_H_
