#ifndef MINTRI_ENUMERATION_RANKED_FOREST_H_
#define MINTRI_ENUMERATION_RANKED_FOREST_H_

#include <memory>
#include <optional>
#include <queue>
#include <set>
#include <vector>

#include "cost/bag_cost.h"
#include "enumeration/ranked_enum.h"

namespace mintri {

/// How a bag cost composes across connected components. Width-like costs
/// compose by max; fill-like and sum-of-bag-weight costs compose by sum.
enum class CostComposition { kMax, kSum };

/// Ranked enumeration of minimal triangulations for an arbitrary (possibly
/// disconnected) graph. A minimal triangulation of a disconnected graph is
/// an independent choice of a minimal triangulation per component, so the
/// ranked stream is the *ranked product* of the per-component streams: a
/// priority queue over index vectors (i_1, ..., i_k), lazily materializing
/// each component's ranked list. The composed cost is monotone in every
/// coordinate (split-monotone bag costs are), so the product order is
/// correct.
///
/// This closes the connectivity restriction of TriangulationContext at the
/// API level (DESIGN.md §2.7).
class RankedForestEnumerator {
 public:
  RankedForestEnumerator(const Graph& g, const BagCost& cost,
                         CostComposition composition,
                         const ContextOptions& options = {},
                         const SolverOptions& solver_options = {});

  /// False when some component's initialization hit its limits; Next() then
  /// always returns std::nullopt.
  bool init_ok() const { return init_ok_; }

  /// Per-enumeration wall-clock budget, forwarded to every component
  /// enumerator (and from there into the solver repair loops). Nullptr
  /// disables. See RankedTriangulationEnumerator::SetDeadline.
  void SetDeadline(const Deadline* deadline);

  /// True when a deadline cut some component's stream short — results after
  /// that point were dropped by budget, not exhaustion.
  bool truncated() const;

  /// Solver/repair counters summed over every component enumerator (the
  /// index counters are 0 under the list-scan solver path).
  long long num_optimizer_calls() const;
  long long num_candidate_evals() const;
  long long num_combine_calls() const;
  long long num_index_updates() const;
  long long num_range_queries() const;

  /// Aggregated context-build breakdown over all components (stage seconds
  /// and counts summed; on failure, termination names the stage that gave
  /// up — the Fig. 5 "MS terminated" / "PMC terminated" taxonomy).
  const ContextBuildInfo& init_info() const { return init_info_; }
  /// Total initialization wall-clock over every component context.
  double init_seconds() const { return init_info_.total_seconds; }

  /// The next-cheapest minimal triangulation of the whole graph (bags and
  /// fill edges in original vertex ids; the clique tree is a forest with
  /// one root per component).
  std::optional<Triangulation> Next();

 private:
  struct Component {
    std::vector<int> old_of_new;            // relabeling back to g
    /// Identity-corrected cost (BagCost::RestrictTo) for vertex-dependent
    /// costs; null when the shared cost is relabeling-invariant.
    std::unique_ptr<BagCost> restricted_cost;
    std::unique_ptr<TriangulationContext> context;
    std::unique_ptr<RankedTriangulationEnumerator> enumerator;
    std::vector<Triangulation> produced;    // memoized ranked prefix
    bool exhausted = false;
  };

  // Ensures produced[i] exists; false if the stream has fewer results.
  bool Materialize(int component, size_t i);
  long long SumOverComponents(
      long long (RankedTriangulationEnumerator::*stat)() const) const;
  CostValue Compose(const std::vector<size_t>& indices);
  Triangulation Assemble(const std::vector<size_t>& indices);

  const Graph& g_;
  CostComposition composition_;
  bool init_ok_ = true;
  ContextBuildInfo init_info_;
  std::vector<Component> components_;

  struct QueueEntry {
    CostValue cost;
    std::vector<size_t> indices;
    bool operator>(const QueueEntry& other) const {
      if (cost != other.cost) return cost > other.cost;
      return indices > other.indices;
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
  std::set<std::vector<size_t>> enqueued_;
};

}  // namespace mintri

#endif  // MINTRI_ENUMERATION_RANKED_FOREST_H_
