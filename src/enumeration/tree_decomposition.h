#ifndef MINTRI_ENUMERATION_TREE_DECOMPOSITION_H_
#define MINTRI_ENUMERATION_TREE_DECOMPOSITION_H_

#include <ostream>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "triang/triangulation.h"

namespace mintri {

/// A tree decomposition T = (T, β) of a graph (Section 2 of the paper):
/// nodes carry bags; `edges` is the tree structure.
struct TreeDecomposition {
  std::vector<VertexSet> bags;
  std::vector<std::pair<int, int>> edges;

  int Width() const;

  /// The three defining properties: vertices covered, edges covered, and the
  /// junction-tree property — plus `edges` actually forming a tree (or
  /// forest covering all bag nodes when the graph is disconnected).
  bool IsValidFor(const Graph& g) const;

  /// Proper = a clique tree of a minimal triangulation (Theorem 2.2(3)):
  /// checks that the bags are exactly the maximal cliques (no duplicates) of
  /// the graph obtained by saturating all bags, and that that graph is a
  /// minimal triangulation of g.
  bool IsProperFor(const Graph& g) const;
};

/// The clique tree carried by a Triangulation, as a TreeDecomposition.
TreeDecomposition CliqueTreeOf(const Triangulation& t);

/// Writes the decomposition in the PACE ".td" exchange format:
///   s td <#bags> <max-bag-size> <n>
///   b <bag-id> <v...>        (1-based ids)
///   <i> <j>                  (tree edges, 1-based bag ids)
void WritePaceTd(const TreeDecomposition& td, int num_graph_vertices,
                 std::ostream& out);

}  // namespace mintri

#endif  // MINTRI_ENUMERATION_TREE_DECOMPOSITION_H_
