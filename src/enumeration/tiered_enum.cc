#include "enumeration/tiered_enum.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "chordal/clique_tree.h"
#include "chordal/lb_triang.h"
#include "triang/triangulation.h"
#include "util/timer.h"

namespace mintri {

const char* TierName(SolveTier tier) {
  switch (tier) {
    case SolveTier::kExact:
      return "exact";
    case SolveTier::kAtomExact:
      return "atom-exact";
    default:
      return "heuristic";
  }
}

bool IsTierDecomposableCost(const std::string& cost_name) {
  return cost_name == "width" || cost_name == "fill" ||
         cost_name == "hypertree" || cost_name == "fhw";
}

TieredEnumerator::TieredEnumerator(const Graph& g, const BagCost& cost,
                                   CostComposition composition,
                                   const ContextOptions& options,
                                   const SolverOptions& solver_options,
                                   const TierOptions& tier_options)
    : g_(g), cost_(cost), composition_(composition) {
  if (tier_options.mode == TierOptions::Mode::kExact) {
    forest_ = std::make_unique<RankedForestEnumerator>(
        g, cost, composition, options, solver_options);
    return;
  }

  WallTimer budget_timer;
  for (const VertexSet& comp_vertices : g.ConnectedComponents()) {
    std::vector<int> comp_old_of_new(comp_vertices.Count());
    int next = 0;
    comp_vertices.ForEach([&](int v) { comp_old_of_new[next++] = v; });
    Graph sub = g.InducedSubgraph(comp_vertices);

    if (!tier_options.decomposable_cost) {
      AddUnit(sub, std::move(comp_old_of_new), options, solver_options,
              tier_options,
              tier_options.exact_budget_seconds - budget_timer.Seconds());
      continue;
    }

    // Tier 0: stream-safe reduction + atom decomposition of this component.
    PreprocessResult pre = Preprocess(sub, tier_options.preprocess);
    preprocess_info_.vertices_removed += pre.info.vertices_removed;
    preprocess_info_.num_atoms += pre.info.num_atoms;
    preprocess_info_.seconds += pre.info.seconds;
    preprocess_info_.largest_atom =
        std::max(preprocess_info_.largest_atom, pre.info.largest_atom);
    if (pre.info.smallest_atom > 0) {
      preprocess_info_.smallest_atom =
          preprocess_info_.smallest_atom == 0
              ? pre.info.smallest_atom
              : std::min(preprocess_info_.smallest_atom,
                         pre.info.smallest_atom);
    }
    if (pre.info.vertices_removed > 0 || pre.atoms.size() > 1) {
      lifted_ = true;
    }
    for (const EliminatedVertex& ev : pre.eliminated) {
      VertexSet bag(g_.NumVertices());
      ev.bag.ForEach([&](int v) { bag.Insert(comp_old_of_new[v]); });
      fixed_bags_.push_back(std::move(bag));
    }
    for (const VertexSet& atom : pre.atoms) {
      std::vector<int> atom_old_to_new;
      Graph asub = pre.reduced.InducedSubgraph(atom, &atom_old_to_new);
      std::vector<int> old_of_new(asub.NumVertices());
      atom.ForEach([&](int v) {
        old_of_new[atom_old_to_new[v]] = comp_old_of_new[v];
      });
      AddUnit(asub, std::move(old_of_new), options, solver_options,
              tier_options,
              tier_options.exact_budget_seconds - budget_timer.Seconds());
    }
  }

  // Fold the Tier-0 summary into the aggregate build info (the ISSUE's
  // "PreprocessInfo that ContextBuildInfo::Accumulate folds in": unit build
  // infos were already accumulated above, these are the tier-0 extras).
  init_info_.reduced_vertices =
      static_cast<size_t>(preprocess_info_.vertices_removed);
  init_info_.num_atoms = static_cast<size_t>(preprocess_info_.num_atoms);
  init_info_.preprocess_seconds = preprocess_info_.seconds;

  tier_ = SolveTier::kExact;
  for (const Unit& unit : units_) {
    if (unit.tier == SolveTier::kHeuristic) tier_ = SolveTier::kHeuristic;
  }
  if (tier_ != SolveTier::kHeuristic && lifted_) tier_ = SolveTier::kAtomExact;

  if (units_.empty()) {
    // Either the graph is empty (no results, matching the exact path) or
    // Tier 0 fully reduced it — the input is chordal and its unique minimal
    // triangulation is the graph itself: emit exactly one result.
    if (g_.NumVertices() > 0) {
      std::vector<size_t> none;
      queue_.push({0, none});
      enqueued_.insert(none);
    }
    return;
  }

  std::vector<size_t> first(units_.size(), 0);
  bool feasible = true;
  for (size_t c = 0; c < units_.size(); ++c) {
    if (!Materialize(static_cast<int>(c), 0)) feasible = false;
  }
  if (feasible) {
    queue_.push({Compose(first), first});
    enqueued_.insert(first);
  }
}

void TieredEnumerator::AddUnit(const Graph& sub, std::vector<int> old_of_new,
                               const ContextOptions& options,
                               const SolverOptions& solver_options,
                               const TierOptions& tier_options,
                               double remaining_budget) {
  Unit unit;
  unit.old_of_new = std::move(old_of_new);
  // Same identity test as the forest layer: only the whole graph keeps the
  // shared cost unrestricted (a unit this large is the single component of a
  // connected, unreduced, unsplit graph).
  bool identity = sub.NumVertices() == g_.NumVertices();
  if (!identity) {
    unit.restricted_cost = cost_.RestrictTo(unit.old_of_new, g_.NumVertices());
  }

  bool built = false;
  if (tier_options.mode == TierOptions::Mode::kAuto) {
    if (remaining_budget > 0) {
      ContextOptions unit_options = options;
      unit_options.separator_limits.time_limit_seconds =
          std::min(unit_options.separator_limits.time_limit_seconds,
                   remaining_budget);
      unit_options.pmc_limits.time_limit_seconds = std::min(
          unit_options.pmc_limits.time_limit_seconds, remaining_budget);
      ContextBuildInfo unit_info;
      auto ctx = TriangulationContext::Build(sub, unit_options, &unit_info);
      init_info_.Accumulate(unit_info);
      tier1_seconds_ += unit_info.total_seconds;
      if (ctx.has_value()) {
        unit.context =
            std::make_unique<TriangulationContext>(std::move(*ctx));
        unit.tier = SolveTier::kExact;
        built = true;
      }
    } else {
      // The shared exact budget ran out before this unit: a truthful
      // ms-terminated tally without burning wall clock on a doomed build.
      ContextBuildInfo skipped;
      skipped.termination = ContextBuildInfo::Termination::kMsTerminated;
      skipped.num_builds = 1;
      skipped.num_ms_terminated = 1;
      init_info_.Accumulate(skipped);
    }
  }

  if (!built) {
    // Tier 2: a restricted family seeded by two LB-Triang minimal
    // triangulations (min-degree + identity order). Parra–Scheffler: the
    // minimal separators / maximal cliques of a minimal triangulation are
    // genuine minimal separators / PMCs of the graph, and each seed's
    // clique tree wires completely within its own family, so the DP stream
    // is never empty and its first result costs at most the cheaper seed.
    Graph h1 = LbTriangMinDegree(sub);
    std::vector<int> order(sub.NumVertices());
    std::iota(order.begin(), order.end(), 0);
    Graph h2 = LbTriang(sub, order);
    std::vector<VertexSet> minseps = MinimalSeparatorsOfChordal(h1);
    std::vector<VertexSet> more_seps = MinimalSeparatorsOfChordal(h2);
    minseps.insert(minseps.end(),
                   std::make_move_iterator(more_seps.begin()),
                   std::make_move_iterator(more_seps.end()));
    std::vector<VertexSet> pmcs = MaximalCliquesOfChordal(h1);
    std::vector<VertexSet> more_pmcs = MaximalCliquesOfChordal(h2);
    pmcs.insert(pmcs.end(), std::make_move_iterator(more_pmcs.begin()),
                std::make_move_iterator(more_pmcs.end()));
    if (options.width_bound >= 0) {
      // Honor a width bound in the fallback too: keep only family members
      // within the bound; a PMC that then loses a block is dropped by the
      // partial wiring, so an infeasible bound yields an empty stream,
      // never an over-bound result.
      minseps.erase(std::remove_if(minseps.begin(), minseps.end(),
                                   [&](const VertexSet& s) {
                                     return s.Count() > options.width_bound;
                                   }),
                    minseps.end());
      pmcs.erase(std::remove_if(pmcs.begin(), pmcs.end(),
                                [&](const VertexSet& p) {
                                  return p.Count() > options.width_bound + 1;
                                }),
                 pmcs.end());
    }
    ContextBuildInfo family_info;
    unit.context =
        std::make_unique<TriangulationContext>(TriangulationContext::
            BuildFromFamily(sub, std::move(minseps), std::move(pmcs),
                            &family_info));
    init_info_.Accumulate(family_info);
    tier2_seconds_ += family_info.total_seconds;
    unit.tier = SolveTier::kHeuristic;
  }

  unit.enumerator = std::make_unique<RankedTriangulationEnumerator>(
      *unit.context,
      unit.restricted_cost != nullptr ? *unit.restricted_cost : cost_,
      solver_options);
  units_.push_back(std::move(unit));
}

void TieredEnumerator::SetDeadline(const Deadline* deadline) {
  if (forest_) {
    forest_->SetDeadline(deadline);
    return;
  }
  for (Unit& unit : units_) {
    if (unit.enumerator != nullptr) unit.enumerator->SetDeadline(deadline);
  }
}

bool TieredEnumerator::truncated() const {
  if (forest_) return forest_->truncated();
  for (const Unit& unit : units_) {
    if (unit.enumerator != nullptr && unit.enumerator->truncated()) {
      return true;
    }
  }
  return false;
}

long long TieredEnumerator::SumOverUnits(
    long long (RankedTriangulationEnumerator::*stat)() const) const {
  long long sum = 0;
  for (const Unit& unit : units_) {
    if (unit.enumerator != nullptr) sum += ((*unit.enumerator).*stat)();
  }
  return sum;
}

long long TieredEnumerator::num_optimizer_calls() const {
  if (forest_) return forest_->num_optimizer_calls();
  return SumOverUnits(&RankedTriangulationEnumerator::num_optimizer_calls);
}

long long TieredEnumerator::num_candidate_evals() const {
  if (forest_) return forest_->num_candidate_evals();
  return SumOverUnits(&RankedTriangulationEnumerator::num_candidate_evals);
}

long long TieredEnumerator::num_combine_calls() const {
  if (forest_) return forest_->num_combine_calls();
  return SumOverUnits(&RankedTriangulationEnumerator::num_combine_calls);
}

long long TieredEnumerator::num_index_updates() const {
  if (forest_) return forest_->num_index_updates();
  return SumOverUnits(&RankedTriangulationEnumerator::num_index_updates);
}

long long TieredEnumerator::num_range_queries() const {
  if (forest_) return forest_->num_range_queries();
  return SumOverUnits(&RankedTriangulationEnumerator::num_range_queries);
}

bool TieredEnumerator::Materialize(int unit_id, size_t i) {
  Unit& unit = units_[unit_id];
  while (unit.produced.size() <= i && !unit.exhausted) {
    auto t = unit.enumerator->Next();
    if (!t.has_value()) {
      unit.exhausted = true;
      break;
    }
    unit.produced.push_back(std::move(*t));
  }
  return unit.produced.size() > i;
}

CostValue TieredEnumerator::Compose(const std::vector<size_t>& indices) const {
  CostValue acc = composition_ == CostComposition::kMax ? -kInfiniteCost : 0;
  for (size_t c = 0; c < indices.size(); ++c) {
    CostValue v = units_[c].produced[indices[c]].cost;
    acc = composition_ == CostComposition::kMax ? std::max(acc, v) : acc + v;
  }
  return acc;
}

Triangulation TieredEnumerator::Assemble(const std::vector<size_t>& indices) {
  if (!lifted_) {
    // No Tier-0 rewriting happened: the units are exactly the connected
    // components, and this is byte-for-byte the forest assembly.
    Triangulation out;
    out.filled = g_;
    const int n = g_.NumVertices();
    for (size_t c = 0; c < indices.size(); ++c) {
      const Unit& unit = units_[c];
      const Triangulation& part = unit.produced[indices[c]];
      int bag_offset = static_cast<int>(out.bags.size());
      for (size_t b = 0; b < part.bags.size(); ++b) {
        VertexSet bag(n);
        part.bags[b].ForEach([&](int v) { bag.Insert(unit.old_of_new[v]); });
        out.filled.SaturateSet(bag);
        out.bags.push_back(std::move(bag));
        out.parent.push_back(part.parent[b] < 0 ? -1
                                                : part.parent[b] + bag_offset);
      }
      for (const VertexSet& s : part.separators) {
        VertexSet sep(n);
        s.ForEach([&](int v) { sep.Insert(unit.old_of_new[v]); });
        out.separators.push_back(std::move(sep));
      }
    }
    std::sort(out.separators.begin(), out.separators.end());
    out.cost = Compose(indices);
    return out;
  }

  // Tier-0 lifting: glue the atom triangulations (adjacent atoms overlap in
  // clique separators, so the union of their fills is chordal and minimal —
  // Leimer) and re-attach the eliminated simplicial bags, then repackage as
  // a canonical clique tree. The emitted cost is re-evaluated on the final
  // bag set, so it is truthful even though the queue was ordered by the
  // composed per-unit costs (a monotone function of it for every
  // tier-decomposable cost).
  const int n = g_.NumVertices();
  Graph filled = g_;
  for (size_t c = 0; c < indices.size(); ++c) {
    const Unit& unit = units_[c];
    const Triangulation& part = unit.produced[indices[c]];
    for (const VertexSet& b : part.bags) {
      VertexSet bag(n);
      b.ForEach([&](int v) { bag.Insert(unit.old_of_new[v]); });
      filled.SaturateSet(bag);
    }
  }
  for (const VertexSet& bag : fixed_bags_) filled.SaturateSet(bag);
  Triangulation out = TriangulationFromChordal(g_, std::move(filled));
  out.cost = cost_.Evaluate(g_, out.bags);
  return out;
}

std::optional<TieredResult> TieredEnumerator::Next() {
  if (forest_) {
    auto t = forest_->Next();
    if (!t.has_value()) return std::nullopt;
    return TieredResult{std::move(*t), SolveTier::kExact};
  }
  if (queue_.empty()) return std::nullopt;
  QueueEntry top = queue_.top();
  queue_.pop();

  // Successors: bump one coordinate at a time.
  for (size_t c = 0; c < top.indices.size(); ++c) {
    std::vector<size_t> next_indices = top.indices;
    ++next_indices[c];
    if (enqueued_.count(next_indices)) continue;
    if (!Materialize(static_cast<int>(c), next_indices[c])) continue;
    queue_.push({Compose(next_indices), next_indices});
    enqueued_.insert(std::move(next_indices));
  }
  return TieredResult{Assemble(top.indices), tier_};
}

}  // namespace mintri
