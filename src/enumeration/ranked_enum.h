#ifndef MINTRI_ENUMERATION_RANKED_ENUM_H_
#define MINTRI_ENUMERATION_RANKED_ENUM_H_

#include <optional>
#include <queue>
#include <vector>

#include "cost/bag_cost.h"
#include "enumeration/tree_decomposition.h"
#include "triang/context.h"
#include "triang/min_triang.h"

namespace mintri {

/// RankedTriang⟨κ⟩(G) — Figure 4 of the paper. Enumerates the minimal
/// triangulations of the context's graph by increasing κ, with polynomial
/// delay when the context is poly-MS-feasible (Theorem 6.4 / Corollary 6.5),
/// via Lawler–Murty partitioning over sets of minimal separators:
///
///  - each partition is an inclusion/exclusion constraint [I, X] over
///    MinSep(G), represented in the queue by its minimum-cost member;
///  - popping ⟨H, I, X⟩ prints H and splits the remainder of [I, X] by the
///    separators S_1..S_k of MinSep(H) \ I into partitions
///    [I ∪ {S_1..S_{i-1}}, X ∪ {S_i}] for i = 1..k (the paper's Figure 4
///    writes "i = 1..k-1", but the k-th partition — triangulations that
///    contain S_1..S_{k-1} and avoid S_k — can be non-empty, e.g. on the
///    4-cycle, so we generate all k);
///  - each partition's representative is MinTriang under κ[I_i, X_i]
///    (ConstrainedCost), sharing this context's precomputation.
///
/// Pull-based: Next() returns the next-cheapest minimal triangulation, or
/// std::nullopt when the enumeration is exhausted, so callers can stop at
/// any time (the "anytime" usage the paper motivates).
class RankedTriangulationEnumerator {
 public:
  /// `ctx` and `cost` must outlive the enumerator.
  RankedTriangulationEnumerator(const TriangulationContext& ctx,
                                const BagCost& cost);

  std::optional<Triangulation> Next();

  /// Number of MinTriang invocations so far (for the experiment harness).
  long long num_optimizer_calls() const { return num_optimizer_calls_; }

 private:
  struct Entry {
    CostValue cost;
    long long sequence;  // tie-break for deterministic order
    Triangulation triangulation;
    std::vector<int> include;  // separator ids
    std::vector<int> exclude;  // separator ids
  };
  struct EntryCompare {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.cost != b.cost) return a.cost > b.cost;  // min-heap
      return a.sequence > b.sequence;
    }
  };

  void Push(Triangulation t, std::vector<int> include,
            std::vector<int> exclude);

  const TriangulationContext& ctx_;
  const BagCost& cost_;
  std::priority_queue<Entry, std::vector<Entry>, EntryCompare> queue_;
  long long sequence_ = 0;
  long long num_optimizer_calls_ = 0;
  bool exhausted_ = false;
};

/// Ranked enumeration of proper tree decompositions (Proposition 6.1): the
/// clique tree of each minimal triangulation, by increasing cost. (Bag costs
/// assign every clique tree of the same triangulation the same cost, so the
/// canonical clique tree is a legitimate ranked representative; all clique
/// trees of a given triangulation can be expanded with
/// EnumerateCliqueTrees from clique_tree_enum.h.)
class RankedTreeDecompositionEnumerator {
 public:
  RankedTreeDecompositionEnumerator(const TriangulationContext& ctx,
                                    const BagCost& cost)
      : inner_(ctx, cost) {}

  struct Result {
    TreeDecomposition decomposition;
    CostValue cost;
  };
  std::optional<Result> Next();

 private:
  RankedTriangulationEnumerator inner_;
};

}  // namespace mintri

#endif  // MINTRI_ENUMERATION_RANKED_ENUM_H_
