#ifndef MINTRI_ENUMERATION_RANKED_ENUM_H_
#define MINTRI_ENUMERATION_RANKED_ENUM_H_

#include <optional>
#include <queue>
#include <vector>

#include "cost/bag_cost.h"
#include "enumeration/tree_decomposition.h"
#include "triang/context.h"
#include "triang/min_triang_solver.h"

namespace mintri {

/// RankedTriang⟨κ⟩(G) — Figure 4 of the paper. Enumerates the minimal
/// triangulations of the context's graph by increasing κ, with polynomial
/// delay when the context is poly-MS-feasible (Theorem 6.4 / Corollary 6.5),
/// via Lawler–Murty partitioning over sets of minimal separators:
///
///  - each partition is an inclusion/exclusion constraint [I, X] over
///    MinSep(G), represented in the queue by its minimum-cost member;
///  - popping ⟨H, I, X⟩ prints H and splits the remainder of [I, X] by the
///    separators S_1..S_k of MinSep(H) \ I into partitions
///    [I ∪ {S_1..S_{i-1}}, X ∪ {S_i}] for i = 1..k (the paper's Figure 4
///    writes "i = 1..k-1", but the k-th partition — triangulations that
///    contain S_1..S_{k-1} and avoid S_k — can be non-empty, e.g. on the
///    4-cycle, so we generate all k);
///  - each partition's representative comes from the shared MinTriangSolver
///    under κ[I_i, X_i]: sibling partitions differ by O(1) separators, so
///    each of the k optimizer calls per output is an incremental DP repair,
///    not a full pass (Section 7.1's amortization, extended from the
///    initialization to the per-result work).
///
/// Constraint sets are not copied per queue entry: the Lawler–Murty tree is
/// materialized once in a node arena (each node = one separator moved into
/// I or X, plus a parent link), and entries store a single node index.
/// Sibling partitions share their common include-prefix nodes.
///
/// Pull-based: Next() returns the next-cheapest minimal triangulation, or
/// std::nullopt when the enumeration is exhausted, so callers can stop at
/// any time (the "anytime" usage the paper motivates).
class RankedTriangulationEnumerator {
 public:
  /// `ctx` and `cost` must outlive the enumerator. `solver_options` selects
  /// the repair engine (segment-tree candidate index vs. the list-scan
  /// baseline); both produce byte-identical streams.
  RankedTriangulationEnumerator(const TriangulationContext& ctx,
                                const BagCost& cost,
                                const SolverOptions& solver_options = {});

  std::optional<Triangulation> Next();

  /// Per-enumeration wall-clock budget, polled by the solver inside its
  /// repair loops. When it expires mid-Next the current result is still
  /// returned, but the Lawler–Murty expansion stops: truncated() turns true
  /// and every later Next() yields std::nullopt (the remaining stream can
  /// no longer be guaranteed complete or in order). Nullptr disables.
  void SetDeadline(const Deadline* deadline) { solver_.set_deadline(deadline); }

  /// True when a deadline cut the enumeration short (the stream ended by
  /// budget, not by exhaustion).
  bool truncated() const { return truncated_; }

  /// Number of (constrained) optimizer invocations so far (for the
  /// experiment harness).
  long long num_optimizer_calls() const { return num_optimizer_calls_; }

  /// Candidate evaluations performed by the underlying solver — divide by
  /// num_optimizer_calls() to see the incremental repair at work (a full
  /// DP pass would evaluate every candidate each call).
  long long num_candidate_evals() const {
    return solver_.num_candidate_evals();
  }
  /// Evaluations that reached the (expensive) base Combine; the rest
  /// short-circuited on a constraint violation or infeasible child.
  long long num_combine_calls() const { return solver_.num_combine_calls(); }
  /// Segment-tree repair counters (0 under the list-scan solver path).
  long long num_index_updates() const { return solver_.num_index_updates(); }
  long long num_range_queries() const { return solver_.num_range_queries(); }

 private:
  /// One separator moved into I (is_include) or X (!is_include), chained to
  /// the parent constraint set. -1 parents terminate at [∅, ∅].
  struct ConstraintNode {
    int sep_id;
    int parent;
    bool is_include;
  };
  struct Entry {
    CostValue cost;
    long long sequence;  // tie-break for deterministic order
    Triangulation triangulation;
    int constraints;  // index into arena_, -1 for [∅, ∅]
  };
  struct EntryCompare {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.cost != b.cost) return a.cost > b.cost;  // min-heap
      return a.sequence > b.sequence;
    }
  };

  void Push(Triangulation t, int constraints);
  /// Decodes a constraint chain into sorted include/exclude id sets.
  void CollectConstraints(int node, std::vector<int>* include,
                          std::vector<int>* exclude) const;

  const TriangulationContext& ctx_;
  MinTriangSolver solver_;
  std::vector<ConstraintNode> arena_;
  std::priority_queue<Entry, std::vector<Entry>, EntryCompare> queue_;
  long long sequence_ = 0;
  long long num_optimizer_calls_ = 0;
  bool exhausted_ = false;
  bool truncated_ = false;
};

/// Ranked enumeration of proper tree decompositions (Proposition 6.1): the
/// clique tree of each minimal triangulation, by increasing cost. (Bag costs
/// assign every clique tree of the same triangulation the same cost, so the
/// canonical clique tree is a legitimate ranked representative; all clique
/// trees of a given triangulation can be expanded with
/// EnumerateCliqueTrees from clique_tree_enum.h.)
class RankedTreeDecompositionEnumerator {
 public:
  RankedTreeDecompositionEnumerator(const TriangulationContext& ctx,
                                    const BagCost& cost)
      : inner_(ctx, cost) {}

  struct Result {
    TreeDecomposition decomposition;
    CostValue cost;
  };
  std::optional<Result> Next();

 private:
  RankedTriangulationEnumerator inner_;
};

}  // namespace mintri

#endif  // MINTRI_ENUMERATION_RANKED_ENUM_H_
