#include "enumeration/ranked_enum.h"

#include <algorithm>
#include <cassert>

namespace mintri {

namespace {

void InsertSorted(std::vector<int>* v, int id) {
  v->insert(std::upper_bound(v->begin(), v->end(), id), id);
}

void EraseSorted(std::vector<int>* v, int id) {
  auto it = std::lower_bound(v->begin(), v->end(), id);
  assert(it != v->end() && *it == id);
  v->erase(it);
}

}  // namespace

RankedTriangulationEnumerator::RankedTriangulationEnumerator(
    const TriangulationContext& ctx, const BagCost& cost,
    const SolverOptions& solver_options)
    : ctx_(ctx), solver_(ctx, cost, solver_options) {
  ++num_optimizer_calls_;
  std::optional<Triangulation> first = solver_.Solve({}, {});
  if (first.has_value()) {
    Push(std::move(*first), -1);
  } else {
    exhausted_ = true;
  }
}

void RankedTriangulationEnumerator::Push(Triangulation t, int constraints) {
  Entry e{t.cost, sequence_++, std::move(t), constraints};
  queue_.push(std::move(e));
}

void RankedTriangulationEnumerator::CollectConstraints(
    int node, std::vector<int>* include, std::vector<int>* exclude) const {
  include->clear();
  exclude->clear();
  for (; node >= 0; node = arena_[node].parent) {
    (arena_[node].is_include ? include : exclude)
        ->push_back(arena_[node].sep_id);
  }
  std::sort(include->begin(), include->end());
  std::sort(exclude->begin(), exclude->end());
}

std::optional<Triangulation> RankedTriangulationEnumerator::Next() {
  // A truncated stream stays truncated: part of some Lawler–Murty expansion
  // was skipped, so continuing would silently drop or misorder results.
  if (exhausted_ || truncated_ || queue_.empty()) {
    exhausted_ = true;
    return std::nullopt;
  }
  // Moving out of top() is safe: the comparator only reads the trivially
  // copyable cost/sequence fields, which moving leaves intact.
  Entry top = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();

  std::vector<int> include, exclude;
  CollectConstraints(top.constraints, &include, &exclude);

  // Split the remainder of [I, X] along MinSep(H) \ I (lines 7-13).
  std::vector<int> h_seps;
  h_seps.reserve(top.triangulation.separators.size());
  for (const VertexSet& s : top.triangulation.separators) {
    int id = ctx_.SeparatorId(s);
    assert(id >= 0);  // every adhesion is a minimal separator of G
    h_seps.push_back(id);
  }
  std::sort(h_seps.begin(), h_seps.end());
  std::vector<int> free_seps;
  std::set_difference(h_seps.begin(), h_seps.end(), include.begin(),
                      include.end(), std::back_inserter(free_seps));

  // Partition i: [I ∪ {S_1..S_{i-1}}, X ∪ {S_i}]. The include prefix is
  // shared between siblings through the arena chain; each partition is one
  // exclude node hanging off it. Consecutive solver calls differ by at most
  // three separators, so each is an incremental repair.
  int chain = top.constraints;
  for (size_t i = 0; i < free_seps.size(); ++i) {
    const int s = free_seps[i];
    InsertSorted(&exclude, s);
    arena_.push_back({s, chain, false});
    const int partition = static_cast<int>(arena_.size()) - 1;
    ++num_optimizer_calls_;
    std::optional<Triangulation> h = solver_.Solve(include, exclude);
    if (solver_.truncated()) {
      // Out of budget mid-expansion. The popped result is already correct —
      // hand it out — but the stream ends here, truthfully marked.
      truncated_ = true;
      break;
    }
    if (h.has_value()) {
      // The solver returned a finite-cost triangulation, which under
      // κ[I_i, X_i] already implies H ⊨ [I_i, X_i] (the satisfaction test
      // of line 12), ranked by the *unconstrained* cost — equal for
      // satisfying triangulations by Equation (2).
      Push(std::move(*h), partition);
    }
    EraseSorted(&exclude, s);
    if (i + 1 < free_seps.size()) {
      arena_.push_back({s, chain, true});
      chain = static_cast<int>(arena_.size()) - 1;
      InsertSorted(&include, s);
    }
  }

  return std::move(top.triangulation);
}

std::optional<RankedTreeDecompositionEnumerator::Result>
RankedTreeDecompositionEnumerator::Next() {
  std::optional<Triangulation> t = inner_.Next();
  if (!t.has_value()) return std::nullopt;
  Result r{CliqueTreeOf(*t), t->cost};
  return r;
}

}  // namespace mintri
