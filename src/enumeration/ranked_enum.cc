#include "enumeration/ranked_enum.h"

#include <algorithm>
#include <cassert>

#include "cost/constrained_cost.h"

namespace mintri {

RankedTriangulationEnumerator::RankedTriangulationEnumerator(
    const TriangulationContext& ctx, const BagCost& cost)
    : ctx_(ctx), cost_(cost) {
  ++num_optimizer_calls_;
  std::optional<Triangulation> first = MinTriang(ctx_, cost_);
  if (first.has_value()) {
    Push(std::move(*first), {}, {});
  } else {
    exhausted_ = true;
  }
}

void RankedTriangulationEnumerator::Push(Triangulation t,
                                         std::vector<int> include,
                                         std::vector<int> exclude) {
  Entry e{t.cost, sequence_++, std::move(t), std::move(include),
          std::move(exclude)};
  queue_.push(std::move(e));
}

std::optional<Triangulation> RankedTriangulationEnumerator::Next() {
  if (exhausted_ || queue_.empty()) {
    exhausted_ = true;
    return std::nullopt;
  }
  Entry top = queue_.top();
  queue_.pop();

  // Split the remainder of [I, X] along MinSep(H) \ I (lines 7-13).
  std::vector<int> h_seps;
  for (const VertexSet& s : top.triangulation.separators) {
    int id = ctx_.SeparatorId(s);
    assert(id >= 0);  // every adhesion is a minimal separator of G
    h_seps.push_back(id);
  }
  std::sort(h_seps.begin(), h_seps.end());
  std::vector<int> free_seps;
  for (int id : h_seps) {
    if (std::find(top.include.begin(), top.include.end(), id) ==
        top.include.end()) {
      free_seps.push_back(id);
    }
  }

  std::vector<int> include_i = top.include;
  for (size_t i = 0; i < free_seps.size(); ++i) {
    std::vector<int> exclude_i = top.exclude;
    exclude_i.push_back(free_seps[i]);

    std::vector<VertexSet> include_sets, exclude_sets;
    include_sets.reserve(include_i.size());
    for (int id : include_i) include_sets.push_back(ctx_.minimal_separators()[id]);
    exclude_sets.reserve(exclude_i.size());
    for (int id : exclude_i) exclude_sets.push_back(ctx_.minimal_separators()[id]);

    ConstrainedCost constrained(cost_, std::move(include_sets),
                                std::move(exclude_sets));
    ++num_optimizer_calls_;
    std::optional<Triangulation> h = MinTriang(ctx_, constrained);
    if (h.has_value()) {
      // MinTriang returned a finite-cost triangulation, which under
      // ConstrainedCost already implies H ⊨ [I_i, X_i] (the satisfaction
      // test of line 12). Re-rank it by the *unconstrained* cost, which is
      // equal for satisfying triangulations by Equation (2).
      Push(std::move(*h), include_i, std::move(exclude_i));
    }
    include_i.push_back(free_seps[i]);
  }

  return std::move(top.triangulation);
}

std::optional<RankedTreeDecompositionEnumerator::Result>
RankedTreeDecompositionEnumerator::Next() {
  std::optional<Triangulation> t = inner_.Next();
  if (!t.has_value()) return std::nullopt;
  Result r{CliqueTreeOf(*t), t->cost};
  return r;
}

}  // namespace mintri
