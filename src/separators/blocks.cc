#include "separators/blocks.h"

#include "graph/vertex_set_table.h"

namespace mintri {

std::vector<Block> BlocksOfSeparator(const Graph& g, const VertexSet& s) {
  std::vector<Block> blocks;
  ComponentScanner scanner;
  // One scan delivers each component together with its neighborhood, so the
  // fullness test needs no extra NeighborhoodOfSet pass.
  scanner.ForEachComponent(g, s, [&](const VertexSet& c, const VertexSet& nb) {
    Block b;
    b.full = (nb == s);
    b.separator = s;
    b.vertices = s.Union(c);
    b.component = c;
    blocks.push_back(std::move(b));
  });
  return blocks;
}

std::vector<Block> AllFullBlocks(const Graph& g,
                                 const std::vector<VertexSet>& separators) {
  std::vector<Block> out;
  // A full block is identified by its component (S = N(C)), so dedup on the
  // shared hash-table layout keyed by the components' cached hashes.
  VertexSetTable seen_components;
  for (const VertexSet& s : separators) {
    for (Block& b : BlocksOfSeparator(g, s)) {
      if (!b.full) continue;
      if (seen_components.Insert(b.component)) {
        out.push_back(std::move(b));
      }
    }
  }
  return out;
}

Graph Realization(const Graph& g, const Block& block,
                  std::vector<int>* old_to_new) {
  std::vector<int> map;
  Graph r = g.InducedSubgraph(block.vertices, &map);
  // Saturate the (relabeled) separator.
  VertexSet s_new(r.NumVertices());
  block.separator.ForEach([&](int v) { s_new.Insert(map[v]); });
  r.SaturateSet(s_new);
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return r;
}

}  // namespace mintri
