#include "separators/crossing.h"

#include <algorithm>

namespace mintri {

ComponentLabeling::ComponentLabeling(const Graph& g, const VertexSet& removed)
    : labels_(g.NumVertices(), -1) {
  ComponentScanner scanner;
  scanner.ForEachComponent(g, removed,
                           [&](const VertexSet& c, const VertexSet&) {
                             c.ForEach([&](int v) {
                               labels_[v] = num_components_;
                             });
                             ++num_components_;
                           });
}

bool ComponentLabeling::IsParallelTo(const VertexSet& t) const {
  int found = -1;
  bool parallel = true;
  t.ForEach([&](int v) {
    if (!parallel) return;
    int l = labels_[v];
    if (l < 0) return;  // inside the separator: irrelevant
    if (found == -1) {
      found = l;
    } else if (found != l) {
      parallel = false;
    }
  });
  return parallel;
}

bool AreParallel(const Graph& g, const VertexSet& s, const VertexSet& t) {
  return ComponentLabeling(g, s).IsParallelTo(t);
}

bool IsPairwiseParallel(const Graph& g, const std::vector<VertexSet>& seps) {
  for (size_t i = 0; i < seps.size(); ++i) {
    ComponentLabeling labeling(g, seps[i]);
    for (size_t j = i + 1; j < seps.size(); ++j) {
      if (!labeling.IsParallelTo(seps[j])) return false;
    }
  }
  return true;
}

bool IsMaximalPairwiseParallel(const Graph& g,
                               const std::vector<VertexSet>& seps,
                               const std::vector<VertexSet>& universe) {
  if (!IsPairwiseParallel(g, seps)) return false;
  for (const VertexSet& candidate : universe) {
    if (std::find(seps.begin(), seps.end(), candidate) != seps.end()) {
      continue;
    }
    ComponentLabeling labeling(g, candidate);
    bool parallel_to_all = true;
    for (const VertexSet& s : seps) {
      if (!labeling.IsParallelTo(s)) {
        parallel_to_all = false;
        break;
      }
    }
    if (parallel_to_all) return false;  // could be added: not maximal
  }
  return true;
}

}  // namespace mintri
