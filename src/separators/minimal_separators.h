#ifndef MINTRI_SEPARATORS_MINIMAL_SEPARATORS_H_
#define MINTRI_SEPARATORS_MINIMAL_SEPARATORS_H_

#include <cstddef>
#include <deque>
#include <limits>
#include <optional>
#include <unordered_set>
#include <vector>

#include "graph/graph.h"
#include "util/timer.h"

namespace mintri {

/// Stop conditions for potentially exponential enumerations. The paper's
/// experiments bound both the count and the wall-clock time (e.g., "one
/// minute for MinSep(G)", Section 7.2).
struct EnumerationLimits {
  size_t max_results = std::numeric_limits<size_t>::max();
  double time_limit_seconds = std::numeric_limits<double>::infinity();
};

enum class EnumerationStatus {
  kComplete,   // the output is the entire answer set
  kTruncated,  // a limit was hit; the output is a (valid) prefix
};

struct MinimalSeparatorsResult {
  std::vector<VertexSet> separators;
  EnumerationStatus status = EnumerationStatus::kComplete;
};

/// True iff s is a minimal (u,v)-separator for some u, v; equivalently, iff
/// G \ s has at least two full components (components C with N(C) = s).
/// The empty set is never considered a separator.
bool IsMinimalSeparator(const Graph& g, const VertexSet& s);

/// Enumerates all minimal separators of g with the algorithm of Berry,
/// Bordat and Cogis (WG 1999): seed with the "close" separators N(C) for the
/// components C of G \ N[v] over all v, then repeatedly expand a separator S
/// through each x ∈ S via the components of G \ (S ∪ N(x)).
MinimalSeparatorsResult ListMinimalSeparators(
    const Graph& g, const EnumerationLimits& limits = {});

/// Variant used by the bounded-width algorithm MinTriangB (Section 5.3): only
/// separators of size at most `max_size` are reported and expanded. The
/// completeness of the pruned expansion for the bounded regime is validated
/// against exhaustive search in the test suite.
MinimalSeparatorsResult ListMinimalSeparatorsBounded(
    const Graph& g, int max_size, const EnumerationLimits& limits = {});

/// Reference implementation for tests: checks IsMinimalSeparator on every
/// vertex subset. Exponential; intended for n <= ~16.
std::vector<VertexSet> MinimalSeparatorsBruteForce(const Graph& g);

/// Pull-based Berry–Bordat–Cogis enumeration: yields one minimal separator
/// per Next() call, with polynomial delay. The CKK baseline consumes this
/// stream lazily (it must not pay the full enumeration upfront — having no
/// initialization step is its selling point in Table 2), and the batch
/// functions above are thin wrappers.
class MinimalSeparatorEnumerator {
 public:
  /// `g` must outlive the enumerator. Separators larger than `max_size` are
  /// neither reported nor expanded (use g.NumVertices() for no bound).
  MinimalSeparatorEnumerator(const Graph& g, int max_size);
  explicit MinimalSeparatorEnumerator(const Graph& g);

  /// The next minimal separator, or std::nullopt when exhausted.
  std::optional<VertexSet> Next();

  bool Exhausted() const { return queue_.empty(); }

 private:
  void Offer(VertexSet s);

  const Graph& g_;
  int max_size_;
  std::deque<VertexSet> queue_;
  std::unordered_set<VertexSet, VertexSetHash> seen_;
};

}  // namespace mintri

#endif  // MINTRI_SEPARATORS_MINIMAL_SEPARATORS_H_
