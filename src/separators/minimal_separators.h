#ifndef MINTRI_SEPARATORS_MINIMAL_SEPARATORS_H_
#define MINTRI_SEPARATORS_MINIMAL_SEPARATORS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "graph/vertex_set_table.h"
#include "util/timer.h"

namespace mintri {

/// Stop conditions for potentially exponential enumerations. The paper's
/// experiments bound both the count and the wall-clock time (e.g., "one
/// minute for MinSep(G)", Section 7.2).
struct EnumerationLimits {
  size_t max_results = std::numeric_limits<size_t>::max();
  double time_limit_seconds = std::numeric_limits<double>::infinity();
  /// Worker threads for the batch enumerations. 1 (the default) runs the
  /// serial engines unchanged; > 1 routes ListMinimalSeparators /
  /// ListMinimalSeparatorsBounded / ListPotentialMaximalCliques through the
  /// src/parallel/ work-stealing engines. Complete results are identical to
  /// the serial answer sets (and returned in canonical sorted order);
  /// truncated results are valid prefixes, but *which* prefix depends on
  /// thread interleaving. The streaming MinimalSeparatorEnumerator below is
  /// always single-threaded.
  int num_threads = 1;
};

enum class EnumerationStatus {
  kComplete,   // the output is the entire answer set
  kTruncated,  // a limit was hit; the output is a (valid) prefix
};

struct MinimalSeparatorsResult {
  std::vector<VertexSet> separators;
  EnumerationStatus status = EnumerationStatus::kComplete;
};

/// True iff s is a minimal (u,v)-separator for some u, v; equivalently, iff
/// G \ s has at least two full components (components C with N(C) = s).
/// The empty set is never considered a separator.
bool IsMinimalSeparator(const Graph& g, const VertexSet& s);

/// Enumerates all minimal separators of g with the algorithm of Berry,
/// Bordat and Cogis (WG 1999): seed with the "close" separators N(C) for the
/// components C of G \ N[v] over all v, then repeatedly expand a separator S
/// through each x ∈ S via the components of G \ (S ∪ N(x)).
MinimalSeparatorsResult ListMinimalSeparators(
    const Graph& g, const EnumerationLimits& limits = {});

/// Variant used by the bounded-width algorithm MinTriangB (Section 5.3): only
/// separators of size at most `max_size` are reported and expanded. The
/// completeness of the pruned expansion for the bounded regime is validated
/// against exhaustive search in the test suite.
MinimalSeparatorsResult ListMinimalSeparatorsBounded(
    const Graph& g, int max_size, const EnumerationLimits& limits = {});

/// Reference implementation for tests: checks IsMinimalSeparator on every
/// vertex subset. Exponential; intended for n <= ~16.
std::vector<VertexSet> MinimalSeparatorsBruteForce(const Graph& g);

/// Pull-based Berry–Bordat–Cogis enumeration: yields one minimal separator
/// per Next() call, with polynomial delay. The CKK baseline consumes this
/// stream lazily (it must not pay the full enumeration upfront — having no
/// initialization step is its selling point in Table 2), and the batch
/// functions above are thin wrappers (for num_threads == 1; with more
/// threads they use the src/parallel/ batch engine instead).
///
/// Note on guarantees under threading: the polynomial-delay bound is a
/// property of this serial stream — each Next() does at most one expansion
/// (O(n·m) work) between results. The parallel batch engine preserves the
/// *total* work bound and the exact answer set, but not per-result delay:
/// results materialize in bursts as workers drain the shared frontier, so
/// per-thread delay is polynomial only in an amortized sense and no global
/// emission order is defined.
///
/// Internals are built for throughput: every distinct separator lives in an
/// arena (discovery order) that doubles as the work queue, deduplication is
/// an open-addressing table of arena indices keyed on the sets' cached
/// 64-bit hashes, seeding is lazy (a seed vertex is only processed once the
/// queue runs dry, so the first result is cheap), and the expansion step
/// reuses scanner/scratch buffers instead of allocating per call.
class MinimalSeparatorEnumerator {
 public:
  /// `g` must outlive the enumerator (as must `deadline` when non-null).
  /// Separators larger than `max_size` are neither reported nor expanded
  /// (use g.NumVertices() for no bound). When a deadline is supplied it is
  /// polled inside the per-vertex expansion loop, so even a single huge
  /// expansion cannot blow past the time budget; once it expires the stream
  /// stops early and Truncated() turns true.
  MinimalSeparatorEnumerator(const Graph& g, int max_size,
                             const Deadline* deadline = nullptr);
  explicit MinimalSeparatorEnumerator(const Graph& g);

  /// The next minimal separator, or std::nullopt when exhausted (or when
  /// the deadline expired; distinguish via Truncated()).
  std::optional<VertexSet> Next();

  /// True when the stream has nothing further to produce: every discovered
  /// separator was reported and every seed vertex processed.
  bool Exhausted() const {
    return head_ >= table_.Size() && seed_cursor_ >= g_.NumVertices();
  }

  /// True iff the deadline cut seeding or an expansion short, i.e. the
  /// stream may be incomplete even once it stops producing.
  bool Truncated() const { return truncated_; }

  /// Number of distinct minimal separators discovered so far (reported or
  /// still queued).
  size_t NumDiscovered() const { return table_.Size(); }

  /// Pre-sizes the dedup arena and probe table for `expected` distinct
  /// separators. With an accurate estimate (a previous run on the same
  /// graph, a cached count in a service), the entire enumeration performs
  /// zero heap allocations on small universes — the invariant the
  /// MINTRI_COUNT_ALLOCS regression test pins. Harmless to over- or
  /// under-shoot: the table grows as usual past the reservation.
  void Reserve(size_t expected) { table_.Reserve(expected); }

 private:
  bool DeadlineExpired() const {
    return deadline_ != nullptr && deadline_->Expired();
  }

  // Inserts s into the arena/queue unless seen or over the size bound.
  void Offer(const VertexSet& s);

  const Graph& g_;
  int max_size_;
  const Deadline* deadline_;
  bool truncated_ = false;

  // All distinct separators in discovery order (VertexSetTable's arena —
  // the layout shared with the parallel engine's shards). Entries at index
  // >= head_ are the pending queue; Next() reports table_.At(head_) and
  // advances, so queue entries are indices, never copies.
  VertexSetTable table_;
  size_t head_ = 0;
  int seed_cursor_ = 0;  // next vertex whose close separators to seed

  // Reused scratch.
  ComponentScanner scanner_;
  VertexSet current_;  // the separator being expanded
  VertexSet removed_;  // S ∪ N(x) during expansion; N[v] during seeding
};

}  // namespace mintri

#endif  // MINTRI_SEPARATORS_MINIMAL_SEPARATORS_H_
