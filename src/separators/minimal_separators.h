#ifndef MINTRI_SEPARATORS_MINIMAL_SEPARATORS_H_
#define MINTRI_SEPARATORS_MINIMAL_SEPARATORS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "util/timer.h"

namespace mintri {

/// Stop conditions for potentially exponential enumerations. The paper's
/// experiments bound both the count and the wall-clock time (e.g., "one
/// minute for MinSep(G)", Section 7.2).
struct EnumerationLimits {
  size_t max_results = std::numeric_limits<size_t>::max();
  double time_limit_seconds = std::numeric_limits<double>::infinity();
};

enum class EnumerationStatus {
  kComplete,   // the output is the entire answer set
  kTruncated,  // a limit was hit; the output is a (valid) prefix
};

struct MinimalSeparatorsResult {
  std::vector<VertexSet> separators;
  EnumerationStatus status = EnumerationStatus::kComplete;
};

/// True iff s is a minimal (u,v)-separator for some u, v; equivalently, iff
/// G \ s has at least two full components (components C with N(C) = s).
/// The empty set is never considered a separator.
bool IsMinimalSeparator(const Graph& g, const VertexSet& s);

/// Enumerates all minimal separators of g with the algorithm of Berry,
/// Bordat and Cogis (WG 1999): seed with the "close" separators N(C) for the
/// components C of G \ N[v] over all v, then repeatedly expand a separator S
/// through each x ∈ S via the components of G \ (S ∪ N(x)).
MinimalSeparatorsResult ListMinimalSeparators(
    const Graph& g, const EnumerationLimits& limits = {});

/// Variant used by the bounded-width algorithm MinTriangB (Section 5.3): only
/// separators of size at most `max_size` are reported and expanded. The
/// completeness of the pruned expansion for the bounded regime is validated
/// against exhaustive search in the test suite.
MinimalSeparatorsResult ListMinimalSeparatorsBounded(
    const Graph& g, int max_size, const EnumerationLimits& limits = {});

/// Reference implementation for tests: checks IsMinimalSeparator on every
/// vertex subset. Exponential; intended for n <= ~16.
std::vector<VertexSet> MinimalSeparatorsBruteForce(const Graph& g);

/// Pull-based Berry–Bordat–Cogis enumeration: yields one minimal separator
/// per Next() call, with polynomial delay. The CKK baseline consumes this
/// stream lazily (it must not pay the full enumeration upfront — having no
/// initialization step is its selling point in Table 2), and the batch
/// functions above are thin wrappers.
///
/// Internals are built for throughput: every distinct separator lives in an
/// arena (discovery order) that doubles as the work queue, deduplication is
/// an open-addressing table of arena indices keyed on the sets' cached
/// 64-bit hashes, seeding is lazy (a seed vertex is only processed once the
/// queue runs dry, so the first result is cheap), and the expansion step
/// reuses scanner/scratch buffers instead of allocating per call.
class MinimalSeparatorEnumerator {
 public:
  /// `g` must outlive the enumerator (as must `deadline` when non-null).
  /// Separators larger than `max_size` are neither reported nor expanded
  /// (use g.NumVertices() for no bound). When a deadline is supplied it is
  /// polled inside the per-vertex expansion loop, so even a single huge
  /// expansion cannot blow past the time budget; once it expires the stream
  /// stops early and Truncated() turns true.
  MinimalSeparatorEnumerator(const Graph& g, int max_size,
                             const Deadline* deadline = nullptr);
  explicit MinimalSeparatorEnumerator(const Graph& g);

  /// The next minimal separator, or std::nullopt when exhausted (or when
  /// the deadline expired; distinguish via Truncated()).
  std::optional<VertexSet> Next();

  /// True when the stream has nothing further to produce: every discovered
  /// separator was reported and every seed vertex processed.
  bool Exhausted() const {
    return head_ >= arena_.size() && seed_cursor_ >= g_.NumVertices();
  }

  /// True iff the deadline cut seeding or an expansion short, i.e. the
  /// stream may be incomplete even once it stops producing.
  bool Truncated() const { return truncated_; }

  /// Number of distinct minimal separators discovered so far (reported or
  /// still queued).
  size_t NumDiscovered() const { return arena_.size(); }

 private:
  static constexpr uint32_t kEmptySlot = 0xffffffffu;

  bool DeadlineExpired() const {
    return deadline_ != nullptr && deadline_->Expired();
  }

  // Inserts s into the arena/queue unless seen or over the size bound.
  void Offer(const VertexSet& s);

  // Doubles the slot table and re-probes every arena entry.
  void GrowSlots();

  const Graph& g_;
  int max_size_;
  const Deadline* deadline_;
  bool truncated_ = false;

  // Arena of all distinct separators in discovery order. Entries at index
  // >= head_ are the pending queue; Next() reports arena_[head_] and
  // advances, so queue entries are indices, never copies.
  std::vector<VertexSet> arena_;
  std::vector<uint64_t> hashes_;  // cached hash per arena entry
  size_t head_ = 0;
  int seed_cursor_ = 0;  // next vertex whose close separators to seed

  // Open-addressing (linear probing) table of arena indices.
  std::vector<uint32_t> slots_;
  size_t slot_mask_ = 0;

  // Reused scratch.
  ComponentScanner scanner_;
  VertexSet current_;  // the separator being expanded
  VertexSet removed_;  // S ∪ N(x) during expansion; N[v] during seeding
};

}  // namespace mintri

#endif  // MINTRI_SEPARATORS_MINIMAL_SEPARATORS_H_
