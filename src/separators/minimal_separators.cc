#include "separators/minimal_separators.h"

#include "parallel/parallel_separators.h"

namespace mintri {

bool IsMinimalSeparator(const Graph& g, const VertexSet& s) {
  if (s.Empty()) return false;
  int full_components = 0;
  ComponentScanner scanner;
  scanner.ForEachComponentWhile(
      g, s, [&](const VertexSet&, const VertexSet& nb) {
        if (nb == s && ++full_components >= 2) return false;
        return true;
      });
  return full_components >= 2;
}

MinimalSeparatorEnumerator::MinimalSeparatorEnumerator(const Graph& g,
                                                       int max_size,
                                                       const Deadline* deadline)
    : g_(g),
      max_size_(max_size),
      deadline_(deadline),
      table_(/*initial_slots=*/256) {
  // removed_ is the expansion loop's long-lived scratch (one AssignUnionOf
  // per expanded vertex): heap words keep those stores from aliasing the
  // enumerator's members in the optimizer's eyes — see PinWordsToHeap.
  removed_.PinWordsToHeap();
}

MinimalSeparatorEnumerator::MinimalSeparatorEnumerator(const Graph& g)
    : MinimalSeparatorEnumerator(g, g.NumVertices()) {}

void MinimalSeparatorEnumerator::Offer(const VertexSet& s) {
  if (s.Empty()) return;
  if (max_size_ < g_.NumVertices() && s.Count() > max_size_) return;
  table_.Insert(s);
}

std::optional<VertexSet> MinimalSeparatorEnumerator::Next() {
  // Lazy seeding: only scan the next vertex's close separators (components
  // of G \ N[v], Berry et al.) once the queue has run dry. This keeps the
  // first result cheap, which is what the CKK baseline banks on.
  while (head_ >= table_.Size() && seed_cursor_ < g_.NumVertices()) {
    if (DeadlineExpired()) {
      truncated_ = true;
      return std::nullopt;
    }
    const int v = seed_cursor_++;
    removed_ = g_.Neighbors(v);
    removed_.Insert(v);
    scanner_.ForEachComponent(
        g_, removed_,
        [&](const VertexSet&, const VertexSet& nb) { Offer(nb); });
  }
  if (head_ >= table_.Size()) return std::nullopt;

  const size_t index = head_++;
  // Copy to scratch: Offer() may grow the arena and move its elements while
  // we are still iterating over the separator being expanded.
  current_ = table_.At(index);
  // Expansion: for each x in S, the neighborhoods of the components of
  // G \ (S ∪ N(x)) are minimal separators. The deadline is polled per
  // vertex so one huge expansion cannot blow past the time budget.
  const bool completed = current_.ForEachWhile([&](int x) {
    if (DeadlineExpired()) return false;
    removed_.AssignUnionOf(current_, g_.Neighbors(x));
    scanner_.ForEachComponent(
        g_, removed_,
        [&](const VertexSet&, const VertexSet& nb) { Offer(nb); });
    return true;
  });
  if (!completed) truncated_ = true;
  return table_.At(index);
}

namespace {

MinimalSeparatorsResult ListImpl(const Graph& g, int max_size,
                                 const EnumerationLimits& limits) {
  if (limits.num_threads > 1) {
    return parallel::ListMinimalSeparatorsParallel(g, max_size, limits);
  }
  Deadline deadline(limits.time_limit_seconds);
  MinimalSeparatorsResult result;
  MinimalSeparatorEnumerator enumerator(g, max_size, &deadline);
  while (true) {
    if (deadline.Expired()) {
      if (!enumerator.Exhausted() || enumerator.Truncated()) {
        result.status = EnumerationStatus::kTruncated;
      }
      return result;
    }
    std::optional<VertexSet> s = enumerator.Next();
    if (!s.has_value()) break;
    // The count limit is checked after pulling one more result: with lazy
    // seeding, Exhausted() alone cannot tell "cap hit exactly at the end of
    // the answer set" apart from a genuine truncation, but one extra Next()
    // can — nullopt means the cap-sized output was already complete.
    if (result.separators.size() >= limits.max_results) {
      result.status = EnumerationStatus::kTruncated;
      return result;
    }
    result.separators.push_back(std::move(*s));
  }
  result.status = enumerator.Truncated() ? EnumerationStatus::kTruncated
                                         : EnumerationStatus::kComplete;
  return result;
}

}  // namespace

MinimalSeparatorsResult ListMinimalSeparators(const Graph& g,
                                              const EnumerationLimits& limits) {
  return ListImpl(g, g.NumVertices(), limits);
}

MinimalSeparatorsResult ListMinimalSeparatorsBounded(
    const Graph& g, int max_size, const EnumerationLimits& limits) {
  return ListImpl(g, max_size, limits);
}

std::vector<VertexSet> MinimalSeparatorsBruteForce(const Graph& g) {
  const int n = g.NumVertices();
  std::vector<VertexSet> out;
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    VertexSet s(n);
    for (int v = 0; v < n; ++v) {
      if ((mask >> v) & 1) s.Insert(v);
    }
    if (IsMinimalSeparator(g, s)) out.push_back(std::move(s));
  }
  return out;
}

}  // namespace mintri
