#include "separators/minimal_separators.h"

namespace mintri {

bool IsMinimalSeparator(const Graph& g, const VertexSet& s) {
  if (s.Empty()) return false;
  int full_components = 0;
  for (const VertexSet& c : g.ComponentsAfterRemoving(s)) {
    if (g.NeighborhoodOfSet(c) == s) {
      if (++full_components >= 2) return true;
    }
  }
  return false;
}

MinimalSeparatorEnumerator::MinimalSeparatorEnumerator(const Graph& g,
                                                       int max_size)
    : g_(g), max_size_(max_size) {
  // Seeding: the neighborhoods of the components of G \ N[v] are minimal
  // separators ("close separators" of Berry et al.).
  for (int v = 0; v < g_.NumVertices(); ++v) {
    for (const VertexSet& c :
         g_.ComponentsAfterRemoving(g_.ClosedNeighborhood(v))) {
      Offer(g_.NeighborhoodOfSet(c));
    }
  }
}

MinimalSeparatorEnumerator::MinimalSeparatorEnumerator(const Graph& g)
    : MinimalSeparatorEnumerator(g, g.NumVertices()) {}

void MinimalSeparatorEnumerator::Offer(VertexSet s) {
  if (s.Empty() || s.Count() > max_size_) return;
  if (seen_.insert(s).second) queue_.push_back(std::move(s));
}

std::optional<VertexSet> MinimalSeparatorEnumerator::Next() {
  if (queue_.empty()) return std::nullopt;
  VertexSet s = std::move(queue_.front());
  queue_.pop_front();
  // Expansion: for each x in S, the neighborhoods of the components of
  // G \ (S ∪ N(x)) are minimal separators.
  s.ForEach([&](int x) {
    VertexSet removed = s.Union(g_.Neighbors(x));
    for (const VertexSet& c : g_.ComponentsAfterRemoving(removed)) {
      Offer(g_.NeighborhoodOfSet(c));
    }
  });
  return s;
}

namespace {

MinimalSeparatorsResult ListImpl(const Graph& g, int max_size,
                                 const EnumerationLimits& limits) {
  Deadline deadline(limits.time_limit_seconds);
  MinimalSeparatorsResult result;
  MinimalSeparatorEnumerator enumerator(g, max_size);
  while (true) {
    if (result.separators.size() >= limits.max_results ||
        deadline.Expired()) {
      if (!enumerator.Exhausted()) {
        result.status = EnumerationStatus::kTruncated;
      }
      return result;
    }
    std::optional<VertexSet> s = enumerator.Next();
    if (!s.has_value()) break;
    result.separators.push_back(std::move(*s));
  }
  result.status = EnumerationStatus::kComplete;
  return result;
}

}  // namespace

MinimalSeparatorsResult ListMinimalSeparators(const Graph& g,
                                              const EnumerationLimits& limits) {
  return ListImpl(g, g.NumVertices(), limits);
}

MinimalSeparatorsResult ListMinimalSeparatorsBounded(
    const Graph& g, int max_size, const EnumerationLimits& limits) {
  return ListImpl(g, max_size, limits);
}

std::vector<VertexSet> MinimalSeparatorsBruteForce(const Graph& g) {
  const int n = g.NumVertices();
  std::vector<VertexSet> out;
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    VertexSet s(n);
    for (int v = 0; v < n; ++v) {
      if ((mask >> v) & 1) s.Insert(v);
    }
    if (IsMinimalSeparator(g, s)) out.push_back(std::move(s));
  }
  return out;
}

}  // namespace mintri
