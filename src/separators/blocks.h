#ifndef MINTRI_SEPARATORS_BLOCKS_H_
#define MINTRI_SEPARATORS_BLOCKS_H_

#include <vector>

#include "graph/graph.h"

namespace mintri {

/// A block (S, C) of a graph: S is a minimal separator and C an S-component
/// (Section 5.1 of the paper). The block is *full* when every vertex of S
/// has a neighbor in C, i.e., N(C) = S.
struct Block {
  VertexSet separator;  // S
  VertexSet component;  // C
  VertexSet vertices;   // S ∪ C (the paper identifies the block with this)
  bool full = false;
};

/// All blocks (s, C) for the S-components C of G \ s.
std::vector<Block> BlocksOfSeparator(const Graph& g, const VertexSet& s);

/// All *full* blocks over a collection of minimal separators, deduplicated.
/// Note that a full block is uniquely identified by its component C, since
/// S = N(C).
std::vector<Block> AllFullBlocks(const Graph& g,
                                 const std::vector<VertexSet>& separators);

/// The realization R(S, C) = G[S ∪ C] ∪ K_S, relabeled to 0..|S∪C|-1 in
/// increasing original-vertex order. If old_to_new is non-null it receives
/// the relabeling (-1 for vertices outside the block).
Graph Realization(const Graph& g, const Block& block,
                  std::vector<int>* old_to_new = nullptr);

}  // namespace mintri

#endif  // MINTRI_SEPARATORS_BLOCKS_H_
