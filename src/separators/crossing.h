#ifndef MINTRI_SEPARATORS_CROSSING_H_
#define MINTRI_SEPARATORS_CROSSING_H_

#include <vector>

#include "graph/graph.h"

namespace mintri {

/// Component labeling of G \ removed; answers "is T parallel to `removed`"
/// queries in O(|T|) after O(n + m) setup. Used heavily by the CKK baseline
/// and by tests (the crossing relation of Parra–Scheffler, Theorem 2.5).
class ComponentLabeling {
 public:
  ComponentLabeling(const Graph& g, const VertexSet& removed);

  /// Component id of v, or -1 if v ∈ removed.
  int LabelOf(int v) const { return labels_[v]; }

  int NumComponents() const { return num_components_; }

  /// True iff all of t's vertices outside `removed` lie in one component —
  /// i.e., `removed` (as a separator S) is parallel to T.
  bool IsParallelTo(const VertexSet& t) const;

 private:
  std::vector<int> labels_;
  int num_components_ = 0;
};

/// S and T are parallel iff T ∖ S is contained in a single component of
/// G ∖ S. Crossing is the symmetric complement (Section 2 of the paper).
bool AreParallel(const Graph& g, const VertexSet& s, const VertexSet& t);
inline bool AreCrossing(const Graph& g, const VertexSet& s,
                        const VertexSet& t) {
  return !AreParallel(g, s, t);
}

/// True iff every two members of `seps` are parallel.
bool IsPairwiseParallel(const Graph& g, const std::vector<VertexSet>& seps);

/// True iff `seps` is a *maximal* set of pairwise-parallel minimal
/// separators within `universe` (every member of `universe` not in `seps`
/// crosses some member). `seps` must be a subset of `universe`.
bool IsMaximalPairwiseParallel(const Graph& g,
                               const std::vector<VertexSet>& seps,
                               const std::vector<VertexSet>& universe);

}  // namespace mintri

#endif  // MINTRI_SEPARATORS_CROSSING_H_
