#ifndef MINTRI_INFERENCE_FACTOR_H_
#define MINTRI_INFERENCE_FACTOR_H_

#include <vector>

namespace mintri {

/// A discrete factor (potential) over a sorted scope of variables, with a
/// dense row-major table (scope[0] is the most significant digit of the
/// index). Together with junction_tree.h this is the probabilistic-
/// graphical-model substrate that makes the paper's inference motivation
/// (Lauritzen–Spiegelhalter message passing over a chosen tree
/// decomposition) executable end to end.
struct Factor {
  std::vector<int> scope;     // variable ids, strictly ascending
  std::vector<double> table;  // size = Π domains[scope[i]]

  /// A scalar factor (empty scope) with the given value.
  static Factor Scalar(double value);

  /// The constant-1 factor over `scope` (sorted ascending).
  static Factor Ones(std::vector<int> scope, const std::vector<int>& domains);
};

/// Pointwise product; the result's scope is the union of the scopes.
Factor Multiply(const Factor& a, const Factor& b,
                const std::vector<int>& domains);

/// Sums out every variable not in `keep` (keep need not be a subset of the
/// scope; extraneous variables are ignored).
Factor MarginalizeTo(const Factor& f, const std::vector<int>& keep,
                     const std::vector<int>& domains);

/// Sum of all table entries.
double TotalMass(const Factor& f);

}  // namespace mintri

#endif  // MINTRI_INFERENCE_FACTOR_H_
