#include "inference/junction_tree.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace mintri {

JunctionTreeInference::JunctionTreeInference(std::vector<int> domains,
                                             std::vector<Factor> factors)
    : domains_(std::move(domains)), factors_(std::move(factors)) {}

Graph JunctionTreeInference::MarkovGraph() const {
  Graph g(static_cast<int>(domains_.size()));
  for (const Factor& f : factors_) {
    for (size_t i = 0; i < f.scope.size(); ++i) {
      for (size_t j = i + 1; j < f.scope.size(); ++j) {
        g.AddEdge(f.scope[i], f.scope[j]);
      }
    }
  }
  return g;
}

bool JunctionTreeInference::FactorTablesMatchScopes() const {
  for (const Factor& f : factors_) {
    size_t expected = 1;
    for (int v : f.scope) {
      const size_t d = static_cast<size_t>(domains_[v]);
      if (d == 0 || expected > std::numeric_limits<size_t>::max() / d) {
        return false;
      }
      expected *= d;
    }
    if (expected != f.table.size()) return false;
  }
  return true;
}

std::optional<JunctionTreeInference::Result> JunctionTreeInference::Run(
    const TreeDecomposition& td) const {
  const int k = static_cast<int>(td.bags.size());
  const int n = static_cast<int>(domains_.size());
  if (k == 0) return std::nullopt;
  if (!FactorTablesMatchScopes()) return std::nullopt;

  // Assign each factor to some bag containing its scope.
  std::vector<Factor> potentials;
  potentials.reserve(k);
  std::vector<std::vector<int>> bag_scopes(k);
  for (int b = 0; b < k; ++b) {
    bag_scopes[b] = td.bags[b].ToVector();  // ascending
    potentials.push_back(Factor::Ones(bag_scopes[b], domains_));
  }
  for (const Factor& f : factors_) {
    int host = -1;
    for (int b = 0; b < k && host < 0; ++b) {
      bool inside = true;
      for (int v : f.scope) {
        if (!td.bags[b].Contains(v)) inside = false;
      }
      if (inside) host = b;
    }
    if (host < 0) return std::nullopt;  // scope uncovered: not a TD of the model
    potentials[host] = Multiply(potentials[host], f, domains_);
  }

  // Root the tree (forest) and order bags by decreasing depth.
  std::vector<std::vector<int>> adj(k);
  for (const auto& [a, b] : td.edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<int> parent(k, -2), order;
  for (int root = 0; root < k; ++root) {
    if (parent[root] != -2) continue;
    parent[root] = -1;
    std::vector<int> stack = {root};
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      order.push_back(u);
      for (int v : adj[u]) {
        if (parent[v] == -2) {
          parent[v] = u;
          stack.push_back(v);
        }
      }
    }
  }

  Result result;
  for (int b = 0; b < k; ++b) {
    result.total_table_entries +=
        static_cast<double>(potentials[b].table.size());
  }

  // Upward pass (children to parents), in reverse BFS order.
  std::vector<Factor> up(k);  // message from b to parent[b]
  std::vector<Factor> collected = potentials;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int b = *it;
    for (int c : adj[b]) {
      if (parent[c] == b) {
        collected[b] = Multiply(collected[b], up[c], domains_);
      }
    }
    if (parent[b] >= 0) {
      std::vector<int> adhesion;
      std::set_intersection(bag_scopes[b].begin(), bag_scopes[b].end(),
                            bag_scopes[parent[b]].begin(),
                            bag_scopes[parent[b]].end(),
                            std::back_inserter(adhesion));
      up[b] = MarginalizeTo(collected[b], adhesion, domains_);
    }
  }

  // Partition function from the roots (product across forest components).
  result.partition_function = 1.0;
  for (int b = 0; b < k; ++b) {
    if (parent[b] == -1) {
      result.partition_function *= TotalMass(collected[b]);
    }
  }
  result.degenerate = !(result.partition_function > 0);

  // Downward pass: belief(b) = collected(b) × message from parent, where
  // the parent's message excludes b's own upward contribution.
  std::vector<Factor> down(k);  // message from parent[b] into b
  std::vector<Factor> beliefs(k);
  for (int b : order) {
    beliefs[b] = parent[b] < 0
                     ? collected[b]
                     : Multiply(collected[b], down[b], domains_);
    for (int c : adj[b]) {
      if (parent[c] != b) continue;
      // Belief of b divided by c's upward message, marginalized to the
      // adhesion. Division is numerically fragile; recompute instead:
      // product of potential, parent message, and the other children.
      Factor msg = potentials[b];
      if (parent[b] >= 0) msg = Multiply(msg, down[b], domains_);
      for (int c2 : adj[b]) {
        if (parent[c2] == b && c2 != c) {
          msg = Multiply(msg, up[c2], domains_);
        }
      }
      std::vector<int> adhesion;
      std::set_intersection(bag_scopes[b].begin(), bag_scopes[b].end(),
                            bag_scopes[c].begin(), bag_scopes[c].end(),
                            std::back_inserter(adhesion));
      down[c] = MarginalizeTo(msg, adhesion, domains_);
    }
  }

  // Per-variable marginals from any bag containing the variable.
  result.marginals.assign(n, {});
  for (int v = 0; v < n; ++v) {
    int host = -1;
    for (int b = 0; b < k && host < 0; ++b) {
      if (td.bags[b].Contains(v)) host = b;
    }
    if (host < 0) return std::nullopt;
    Factor m = MarginalizeTo(beliefs[host], {v}, domains_);
    double z = TotalMass(m);
    if (!(z > 0)) result.degenerate = true;
    result.marginals[v].resize(domains_[v]);
    for (int x = 0; x < domains_[v]; ++x) {
      result.marginals[v][x] = z > 0 ? m.table[x] / z : 0.0;
    }
  }
  return result;
}

JunctionTreeInference::Result JunctionTreeInference::BruteForce() const {
  const int n = static_cast<int>(domains_.size());
  Result result;
  result.marginals.assign(n, {});
  for (int v = 0; v < n; ++v) result.marginals[v].assign(domains_[v], 0.0);

  // Guard the flat-index computation: the index of a factor's table entry
  // is bounded by the product of its scope's domains, so a table whose size
  // disagrees would be read past the end. A mismatched model is reported as
  // degenerate (BruteForce's signature has no failure channel).
  if (!FactorTablesMatchScopes()) {
    result.degenerate = true;
    return result;
  }

  std::vector<int> assignment(n, 0);
  while (true) {
    double weight = 1.0;
    for (const Factor& f : factors_) {
      size_t idx = 0;
      for (int v : f.scope) {
        idx = idx * static_cast<size_t>(domains_[v]) +
              static_cast<size_t>(assignment[v]);
      }
      weight *= f.table[idx];
    }
    result.partition_function += weight;
    for (int v = 0; v < n; ++v) result.marginals[v][assignment[v]] += weight;

    int i = n - 1;
    while (i >= 0 && ++assignment[i] == domains_[i]) assignment[i--] = 0;
    if (i < 0) break;
  }
  result.degenerate = !(result.partition_function > 0);
  for (int v = 0; v < n; ++v) {
    for (double& p : result.marginals[v]) {
      if (result.partition_function > 0) p /= result.partition_function;
    }
  }
  return result;
}

}  // namespace mintri
