#include "inference/factor.h"

#include <algorithm>
#include <cassert>

namespace mintri {

namespace {

size_t TableSize(const std::vector<int>& scope,
                 const std::vector<int>& domains) {
  size_t s = 1;
  for (int v : scope) s *= static_cast<size_t>(domains[v]);
  return s;
}

// Index of the sub-assignment of `scope` within a full assignment over
// `vars` (both ascending; scope ⊆ vars).
size_t SubIndex(const std::vector<int>& scope, const std::vector<int>& vars,
                const std::vector<int>& assignment,
                const std::vector<int>& domains) {
  size_t index = 0;
  size_t vi = 0;
  for (int v : scope) {
    while (vars[vi] != v) ++vi;
    index = index * static_cast<size_t>(domains[v]) +
            static_cast<size_t>(assignment[vi]);
  }
  return index;
}

}  // namespace

Factor Factor::Scalar(double value) { return Factor{{}, {value}}; }

Factor Factor::Ones(std::vector<int> scope, const std::vector<int>& domains) {
  Factor f;
  f.scope = std::move(scope);
  f.table.assign(TableSize(f.scope, domains), 1.0);
  return f;
}

Factor Multiply(const Factor& a, const Factor& b,
                const std::vector<int>& domains) {
  Factor out;
  std::set_union(a.scope.begin(), a.scope.end(), b.scope.begin(),
                 b.scope.end(), std::back_inserter(out.scope));
  out.table.assign(TableSize(out.scope, domains), 0.0);

  std::vector<int> assignment(out.scope.size(), 0);
  for (size_t idx = 0; idx < out.table.size(); ++idx) {
    out.table[idx] =
        a.table[SubIndex(a.scope, out.scope, assignment, domains)] *
        b.table[SubIndex(b.scope, out.scope, assignment, domains)];
    // Increment the mixed-radix assignment (last variable fastest).
    for (int i = static_cast<int>(out.scope.size()) - 1; i >= 0; --i) {
      if (++assignment[i] < domains[out.scope[i]]) break;
      assignment[i] = 0;
    }
  }
  return out;
}

Factor MarginalizeTo(const Factor& f, const std::vector<int>& keep,
                     const std::vector<int>& domains) {
  Factor out;
  for (int v : f.scope) {
    if (std::binary_search(keep.begin(), keep.end(), v)) {
      out.scope.push_back(v);
    }
  }
  out.table.assign(TableSize(out.scope, domains), 0.0);

  std::vector<int> assignment(f.scope.size(), 0);
  for (size_t idx = 0; idx < f.table.size(); ++idx) {
    out.table[SubIndex(out.scope, f.scope, assignment, domains)] +=
        f.table[idx];
    for (int i = static_cast<int>(f.scope.size()) - 1; i >= 0; --i) {
      if (++assignment[i] < domains[f.scope[i]]) break;
      assignment[i] = 0;
    }
  }
  return out;
}

double TotalMass(const Factor& f) {
  double s = 0;
  for (double v : f.table) s += v;
  return s;
}

}  // namespace mintri
