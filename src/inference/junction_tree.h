#ifndef MINTRI_INFERENCE_JUNCTION_TREE_H_
#define MINTRI_INFERENCE_JUNCTION_TREE_H_

#include <optional>
#include <vector>

#include "enumeration/tree_decomposition.h"
#include "inference/factor.h"

namespace mintri {

/// Exact sum-product inference over a junction tree (Lauritzen &
/// Spiegelhalter, cited as [29] by the paper): the end-to-end consumer that
/// motivates ranked enumeration of tree decompositions — the runtime and
/// memory of Run() are governed by the total clique-table size, i.e.,
/// exactly the TotalStateSpaceCost of the chosen decomposition.
class JunctionTreeInference {
 public:
  /// A discrete graphical model: domains[v] >= 1 per variable, and a list
  /// of factors whose scopes index into domains.
  JunctionTreeInference(std::vector<int> domains, std::vector<Factor> factors);

  /// The model's Markov (moral) graph: variables sharing a factor are
  /// adjacent. Any tree decomposition of this graph supports inference.
  Graph MarkovGraph() const;

  struct Result {
    double partition_function = 0;
    /// marginals[v][x] = P(v = x); normalized.
    std::vector<std::vector<double>> marginals;
    /// Total clique-table entries touched — the decomposition's cost.
    double total_table_entries = 0;
    /// True when the partition function is zero (every assignment has weight
    /// zero, e.g. an all-zero factor): no distribution exists, so the
    /// marginals are left all-zero rather than silently presented as
    /// probabilities. Also set by BruteForce() when a factor's table size
    /// does not match its scope (the flat index would read out of bounds).
    bool degenerate = false;
  };

  /// Two-pass message passing over `td`, which must be a valid tree
  /// decomposition of MarkovGraph(). Returns std::nullopt when some factor
  /// scope fits in no bag (i.e., td is not a decomposition of the model) or
  /// a factor's table size disagrees with its scope's domains (indexing it
  /// would read out of bounds).
  std::optional<Result> Run(const TreeDecomposition& td) const;

  /// Reference results by exhaustive enumeration over all assignments
  /// (exponential; tests and sanity checks only).
  Result BruteForce() const;

 private:
  /// True iff every factor's table size equals the (overflow-checked)
  /// product of its scope's domains — the bound on every flat index the
  /// inference paths compute.
  bool FactorTablesMatchScopes() const;

  std::vector<int> domains_;
  std::vector<Factor> factors_;
};

}  // namespace mintri

#endif  // MINTRI_INFERENCE_JUNCTION_TREE_H_
