#include "inference/model_io.h"

#include <algorithm>
#include <sstream>

namespace mintri {

namespace {

// Strips '#'-comment lines so the token stream below only sees data. The
// UAI competition files are whitespace-separated tokens; line structure
// carries no meaning beyond comments.
std::string StripComments(std::istream& in) {
  std::string out, line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '#') continue;
    out += line;
    out += '\n';
  }
  return out;
}

constexpr size_t kMaxTableSize = size_t{1} << 28;  // ~256M entries

}  // namespace

Graph GraphicalModel::MarkovGraph() const {
  Graph g(static_cast<int>(domains.size()));
  for (const Factor& f : factors) {
    for (size_t i = 0; i < f.scope.size(); ++i) {
      for (size_t j = i + 1; j < f.scope.size(); ++j) {
        g.AddEdge(f.scope[i], f.scope[j]);
      }
    }
  }
  return g;
}

std::vector<double> GraphicalModel::DomainsAsWeights() const {
  return std::vector<double>(domains.begin(), domains.end());
}

std::optional<GraphicalModel> ParseUaiModel(std::istream& in) {
  std::istringstream ts(StripComments(in));
  std::string kind;
  if (!(ts >> kind) || (kind != "MARKOV" && kind != "BAYES")) {
    return std::nullopt;
  }
  int n = 0;
  if (!(ts >> n) || n < 0) return std::nullopt;
  GraphicalModel model;
  model.domains.resize(n);
  for (int& d : model.domains) {
    if (!(ts >> d) || d < 1) return std::nullopt;
  }
  int m = 0;
  if (!(ts >> m) || m < 0) return std::nullopt;

  // Scope lines: the listed order defines the table layout (last variable
  // fastest); remember it so the table blocks can be re-indexed into the
  // ascending row-major layout Factor requires.
  std::vector<std::vector<int>> raw_scopes(m);
  for (auto& scope : raw_scopes) {
    int k = 0;
    if (!(ts >> k) || k < 0 || k > n) return std::nullopt;
    scope.resize(k);
    for (int& v : scope) {
      if (!(ts >> v) || v < 0 || v >= n) return std::nullopt;
    }
    std::vector<int> sorted = scope;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return std::nullopt;
    }
  }

  for (const std::vector<int>& raw : raw_scopes) {
    size_t expected = 1;
    for (int v : raw) {
      const size_t d = static_cast<size_t>(model.domains[v]);
      if (expected > kMaxTableSize / d) return std::nullopt;
      expected *= d;
    }
    long long t = 0;
    if (!(ts >> t) || t < 0 || static_cast<size_t>(t) != expected) {
      return std::nullopt;
    }
    Factor f;
    f.scope = raw;
    std::sort(f.scope.begin(), f.scope.end());
    f.table.assign(expected, 0.0);
    // raw_pos[k] = position in `raw` of the k-th ascending scope variable
    // (loop-invariant across the table walk).
    std::vector<size_t> raw_pos(f.scope.size());
    for (size_t k = 0; k < f.scope.size(); ++k) {
      raw_pos[k] =
          std::find(raw.begin(), raw.end(), f.scope[k]) - raw.begin();
    }
    // Walk the raw-order table; mixed-radix counter in raw order (last
    // listed variable fastest), re-addressed into the ascending layout.
    std::vector<int> assignment(raw.size(), 0);
    for (size_t idx = 0; idx < expected; ++idx) {
      double value = 0;
      if (!(ts >> value) || value < 0) return std::nullopt;
      size_t sorted_idx = 0;
      for (size_t k = 0; k < f.scope.size(); ++k) {
        sorted_idx =
            sorted_idx * static_cast<size_t>(model.domains[f.scope[k]]) +
            static_cast<size_t>(assignment[raw_pos[k]]);
      }
      f.table[sorted_idx] = value;
      for (int i = static_cast<int>(raw.size()) - 1; i >= 0; --i) {
        if (++assignment[i] < model.domains[raw[i]]) break;
        assignment[i] = 0;
      }
    }
    model.factors.push_back(std::move(f));
  }
  return model;
}

std::optional<GraphicalModel> ParseUaiModelString(const std::string& text) {
  std::istringstream in(text);
  return ParseUaiModel(in);
}

void WriteUaiModel(const GraphicalModel& m, std::ostream& out) {
  out.precision(17);  // round-trip exactly through the decimal form
  out << "MARKOV\n" << m.domains.size() << "\n";
  for (size_t v = 0; v < m.domains.size(); ++v) {
    out << (v > 0 ? " " : "") << m.domains[v];
  }
  out << "\n" << m.factors.size() << "\n";
  for (const Factor& f : m.factors) {
    out << f.scope.size();
    for (int v : f.scope) out << " " << v;
    out << "\n";
  }
  for (const Factor& f : m.factors) {
    out << f.table.size();
    for (double v : f.table) out << " " << v;
    out << "\n";
  }
}

}  // namespace mintri
