#ifndef MINTRI_INFERENCE_MODEL_IO_H_
#define MINTRI_INFERENCE_MODEL_IO_H_

#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "inference/factor.h"

namespace mintri {

/// A discrete graphical model as loaded from disk (or synthesized by the
/// workload generators): per-variable domain sizes plus a factor list. The
/// instance type behind the `state-space` application cost and the
/// JunctionTreeInference consumer.
struct GraphicalModel {
  std::vector<int> domains;     // domains[v] >= 1 per variable
  std::vector<Factor> factors;  // scopes index into domains

  /// The moral (Markov) graph: variables sharing a factor are adjacent.
  /// Tree decompositions of this graph are exactly the junction trees the
  /// state-space cost ranks.
  Graph MarkovGraph() const;

  /// Domain sizes as doubles (the TotalStateSpaceCost constructor input).
  std::vector<double> DomainsAsWeights() const;
};

/// Parses the simple UAI-style factor-list format:
///   MARKOV                     (or BAYES; a '#' line is a comment)
///   <n>
///   <d1> ... <dn>              (domain sizes)
///   <m>
///   <k> <v1> ... <vk>          (m scope lines, 0-based variable ids)
///   <t> <e1> ... <et>          (m table blocks, t = product of the scope's
///                               domains; the LAST listed variable advances
///                               fastest, as in the UAI competition format)
/// Scopes may list variables in any order; tables are re-indexed into the
/// library's ascending-scope row-major layout. Returns std::nullopt on
/// malformed input (bad counts, out-of-range ids, duplicate scope entries,
/// table-size mismatches, or negative table entries).
std::optional<GraphicalModel> ParseUaiModel(std::istream& in);
std::optional<GraphicalModel> ParseUaiModelString(const std::string& text);

/// Writes the model in the same format (scopes ascending).
void WriteUaiModel(const GraphicalModel& m, std::ostream& out);

}  // namespace mintri

#endif  // MINTRI_INFERENCE_MODEL_IO_H_
