#include "parallel/parallel_separators.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "parallel/sharded_set.h"
#include "parallel/thread_pool.h"
#include "util/timer.h"

namespace mintri {
namespace parallel {

namespace {

// Work items are 64-bit: either a seed vertex (tag bit set) whose "close"
// separators are still to be scanned, or a reference into the dedup table
// to a separator awaiting expansion. Routing the seeds through the queue —
// instead of a separate seeding phase — lets the queue's outstanding-item
// counter cover them, so no worker can conclude "drained" while another is
// still seeding.
constexpr uint64_t kSeedTag = uint64_t{1} << 63;

// Shared state of one parallel enumeration run. Workers communicate only
// through the dedup table, the work-stealing queue, and the stop/truncated
// flags; all expansion scratch is per-thread.
struct Engine {
  Engine(const Graph& graph, int bound, const EnumerationLimits& lim,
         int threads)
      : g(graph),
        max_size(bound),
        limits(lim),
        deadline(lim.time_limit_seconds),
        num_threads(threads),
        table(4 * threads),
        queue(threads) {}

  const Graph& g;
  const int max_size;
  const EnumerationLimits& limits;
  const Deadline deadline;
  const int num_threads;

  ShardedVertexSetTable table;
  WorkStealingQueue queue;
  std::atomic<bool> truncated{false};

  // Raises the truncation flag and drains every worker out of its loop.
  void StopTruncated() {
    truncated.store(true, std::memory_order_relaxed);
    queue.Cancel();
  }

  // Inserts a discovered separator and stages it for expansion in the
  // worker's pending buffer — table insertion (and the truncation check)
  // happens immediately, only the queue push is deferred so a whole
  // expansion's discoveries go out in one PushBatch instead of one mutex
  // round-trip each. As in the serial engine, exceeding max_results means
  // the full answer set is strictly larger than the cap: truncated.
  void Offer(int worker, std::vector<uint64_t>* pending, const VertexSet& s) {
    if (s.Empty()) return;
    if (max_size < g.NumVertices() && s.Count() > max_size) return;
    ShardedVertexSetTable::Ref ref;
    if (!table.Insert(s, &ref)) return;
    if (table.Size() > limits.max_results) {
      StopTruncated();
      return;
    }
    pending->push_back(ShardedVertexSetTable::Pack(ref));
  }

  void RunWorker(int worker) {
    // How many items one NextBatch claims. Small enough that work spreads
    // to idle workers quickly (steals only see what is actually queued),
    // big enough to amortize the own-deque lock across a burst.
    constexpr size_t kPopBatch = 16;

    ComponentScanner scanner;
    VertexSet current;
    VertexSet removed;
    // Same long-lived-scratch rule as the serial enumerator's removed_:
    // heap words so the per-expansion stores cannot alias worker state.
    removed.PinWordsToHeap();
    std::vector<uint64_t> pending;  // discovered, not yet queued
    uint64_t batch[kPopBatch];

    auto offer = [&](const VertexSet&, const VertexSet& nb) {
      Offer(worker, &pending, nb);
    };

    size_t got;
    while ((got = queue.NextBatch(worker, batch, kPopBatch)) > 0) {
      for (size_t k = 0; k < got; ++k) {
        const uint64_t item = batch[k];
        if ((item & kSeedTag) != 0) {
          // Seeding (Berry et al.): the components C of G \ N[v] have
          // minimal separators N(C) as neighborhoods ("close" separators).
          if (deadline.Expired()) {
            StopTruncated();
          } else {
            const int v = static_cast<int>(item & ~kSeedTag);
            removed = g.Neighbors(v);
            removed.Insert(v);
            scanner.ForEachComponent(g, removed, offer);
          }
        } else {
          // Expansion: for each x in S, the neighborhoods of the components
          // of G \ (S ∪ N(x)) are minimal separators. The deadline and the
          // cancellation flag are polled per vertex, so neither one huge
          // expansion can blow the time budget nor can a worker keep
          // expanding long after another hit the result cap.
          table.CopyEntry(ShardedVertexSetTable::Unpack(item), &current);
          current.ForEachWhile([&](int x) {
            if (queue.Cancelled()) return false;
            if (deadline.Expired()) {
              StopTruncated();
              return false;
            }
            removed.AssignUnionOf(current, g.Neighbors(x));
            scanner.ForEachComponent(g, removed, offer);
            return true;
          });
        }
        // Flush this item's discoveries before more of the batch: keeps
        // work visible to stealers while we are still busy.
        if (!pending.empty()) {
          queue.PushBatch(worker, pending.data(), pending.size());
          pending.clear();
        }
      }
      // The flush above already ran for every item, so nothing this batch
      // spawned is still private — safe to retire all of it at once.
      queue.FinishBatch(got);
    }
  }
};

}  // namespace

MinimalSeparatorsResult ListMinimalSeparatorsParallel(
    const Graph& g, int max_size, const EnumerationLimits& limits) {
  // Clamp before sizing any per-thread state (queue deques, shard count),
  // not just before spawning, so a wild num_threads cannot balloon memory.
  Engine engine(g, max_size, limits,
                std::clamp(limits.num_threads, 1, kMaxRunThreads));
  {
    // Seed items, dealt round-robin but pushed one batch per worker.
    std::vector<uint64_t> seeds;
    for (int w = 0; w < engine.num_threads; ++w) {
      seeds.clear();
      for (int v = w; v < g.NumVertices(); v += engine.num_threads) {
        seeds.push_back(kSeedTag | uint64_t(v));
      }
      engine.queue.PushBatch(w, seeds.data(), seeds.size());
    }
  }
  RunOnThreads(engine.num_threads,
               [&engine](int worker) { engine.RunWorker(worker); });

  MinimalSeparatorsResult result;
  result.separators = engine.table.TakeAll();
  if (engine.truncated.load(std::memory_order_relaxed)) {
    result.status = EnumerationStatus::kTruncated;
    // Racing inserts may have pushed the table slightly past the cap; any
    // subset is a valid prefix, so trim to the promised size.
    if (result.separators.size() > limits.max_results) {
      result.separators.resize(limits.max_results);
    }
  } else {
    // Canonical order: a complete parallel run is deterministic regardless
    // of how threads interleaved.
    std::sort(result.separators.begin(), result.separators.end());
  }
  return result;
}

}  // namespace parallel
}  // namespace mintri
