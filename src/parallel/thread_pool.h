#ifndef MINTRI_PARALLEL_THREAD_POOL_H_
#define MINTRI_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace mintri {
namespace parallel {

/// Number of worker threads to use when the caller asks for "all the
/// hardware": std::thread::hardware_concurrency(), but never less than 2 so
/// the parallel code path is exercised even on single-core CI runners.
int DefaultParallelThreads();

/// Hard ceiling on spawned workers. RunOnThreads clamps to this so a wild
/// num_threads (from any caller, not just the CLI) degrades gracefully
/// instead of aborting the process when std::thread creation fails.
inline constexpr int kMaxRunThreads = 1024;

/// Runs fn(worker_id) for worker_id in [0, num_threads) — worker 0 on the
/// calling thread, the rest on freshly spawned std::threads — and joins them
/// all before returning. The fork-join primitive every parallel enumeration
/// in this subsystem is built on; `fn` must not throw.
void RunOnThreads(int num_threads, const std::function<void(int)>& fn);

/// A work-stealing multi-queue of opaque 64-bit work items (the enumeration
/// engines pack sharded-table references into them). Each worker owns a
/// deque: Push appends to the owner's back, Next pops the owner's back
/// (LIFO, cache-warm) and falls back to stealing from the front of a victim
/// (FIFO, coarse chunks first). Termination is detected with an outstanding
/// counter: an item counts from Push until the matching Finish, so work
/// spawned *while processing* an item can never be missed — Next only
/// returns false once every queue is empty and no item is still in flight
/// (or after Cancel).
///
/// The deques are mutex-striped (one lock per worker) rather than lock-free:
/// the enumeration engines pop one item and then do an expansion that is
/// orders of magnitude more expensive than the lock, so contention is not
/// the bottleneck and the simple version is ThreadSanitizer-clean by
/// construction.
class WorkStealingQueue {
 public:
  explicit WorkStealingQueue(int num_workers);

  WorkStealingQueue(const WorkStealingQueue&) = delete;
  WorkStealingQueue& operator=(const WorkStealingQueue&) = delete;

  /// Enqueues an item onto `worker`'s deque.
  void Push(int worker, uint64_t item);

  /// Enqueues `count` items onto `worker`'s deque under one lock
  /// acquisition (and one outstanding-counter bump). The enumeration inner
  /// loops discover several new work items per expansion; pushing them one
  /// Push() at a time made the queue mutex the second-hottest line in the
  /// engine profile after the dedup probe.
  void PushBatch(int worker, const uint64_t* items, size_t count);

  /// Dequeues the next item for `worker`: its own deque first, then steals.
  /// Spins (yielding) while other workers still hold in-flight items that
  /// may spawn more work. Returns false only when the whole enumeration is
  /// drained or Cancel() was called.
  bool Next(int worker, uint64_t* item);

  /// Dequeues up to `max_items` items for `worker` under one lock: a batch
  /// from the back of its own deque, or — when that is empty — a *single*
  /// stolen item (stealing coarse chunks would defeat the balance the
  /// front-steal heuristic buys). Blocks/spins exactly like Next; returns 0
  /// only when the enumeration is drained or cancelled. Every returned item
  /// must be matched by one Finish() (or covered by one FinishBatch).
  size_t NextBatch(int worker, uint64_t* items, size_t max_items);

  /// After processing an item obtained from Next(), the worker must call
  /// Finish() exactly once so termination detection can make progress.
  void Finish();

  /// Finish() for `count` items at once — one atomic instead of `count`.
  /// CAUTION: only call after every item of the batch is fully processed
  /// AND all work spawned while processing them has been Pushed; deferring
  /// the decrement any longer only delays termination, but decrementing
  /// before the spawned pushes would let the outstanding counter hit zero
  /// while undelivered work exists (missed-work bug).
  void FinishBatch(size_t count);

  /// Makes every current and future Next() call return false; used when a
  /// deadline expires or a result cap is hit.
  void Cancel();

  bool Cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  bool TryPop(int worker, uint64_t* item);
  size_t TryPopBatch(int worker, uint64_t* items, size_t max_items);

  struct Worker {
    std::mutex mutex;
    std::deque<uint64_t> deque;
  };

  std::vector<Worker> workers_;
  std::atomic<size_t> outstanding_{0};
  std::atomic<bool> cancelled_{false};
};

}  // namespace parallel
}  // namespace mintri

#endif  // MINTRI_PARALLEL_THREAD_POOL_H_
