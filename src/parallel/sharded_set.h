#ifndef MINTRI_PARALLEL_SHARDED_SET_H_
#define MINTRI_PARALLEL_SHARDED_SET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "graph/vertex_set.h"
#include "graph/vertex_set_table.h"

namespace mintri {
namespace parallel {

/// A concurrent set of VertexSets: the shared deduplication structure of the
/// parallel enumeration engines. The key space is striped over independently
/// locked shards by the *high* bits of the sets' cached 64-bit hashes (the
/// low bits drive in-shard probing, so the two choices stay uncorrelated).
/// Each shard is one VertexSetTable — literally the same open-addressing
/// layout the serial MinimalSeparatorEnumerator uses, including its
/// interleaved hash+index slot array (one cache line per probe step, with
/// software prefetch) — so the per-insert cost matches the serial dedup;
/// threads only contend when their hashes land on the same shard.
class ShardedVertexSetTable {
 public:
  /// Identifies an inserted set; packable into a 64-bit work item.
  struct Ref {
    uint32_t shard = 0;
    uint32_t index = 0;
  };

  static uint64_t Pack(Ref ref) {
    return (uint64_t{ref.shard} << 32) | ref.index;
  }
  static Ref Unpack(uint64_t packed) {
    return {static_cast<uint32_t>(packed >> 32),
            static_cast<uint32_t>(packed)};
  }

  /// `num_shards` is rounded up to a power of two; 4x the thread count is a
  /// good default (collision probability 1/(4T) per concurrent insert).
  explicit ShardedVertexSetTable(int num_shards);

  /// Inserts s if absent. Returns true (and fills *ref, when non-null) iff
  /// s was newly inserted.
  bool Insert(const VertexSet& s, Ref* ref = nullptr);

  /// Copies the entry at `ref` into *out (reusing out's storage). A copy
  /// rather than a reference: another thread may grow the shard's arena —
  /// relocating its elements — at any time.
  void CopyEntry(Ref ref, VertexSet* out) const;

  /// Total number of distinct sets inserted so far.
  size_t Size() const { return size_.load(std::memory_order_relaxed); }

  /// Moves every entry out, shard by shard in insertion order. The table is
  /// left empty; call only after all inserting threads have joined.
  std::vector<VertexSet> TakeAll();

 private:
  // One cache line (or more) per shard: the mutexes of neighboring shards
  // must not share a line, or every lock/unlock would ping-pong the line
  // between threads that never actually contend. The arena entries inside
  // each table are VertexSets with small-buffer word storage: <= 128-vertex
  // entries are self-contained objects (no pointer chase on the equality
  // probe), wider ones spill to buffers that are 64-byte-aligned from the
  // SIMD dispatch threshold up.
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    VertexSetTable table;
  };

  std::vector<Shard> shards_;
  uint64_t shard_mask_ = 0;
  std::atomic<size_t> size_{0};
};

}  // namespace parallel
}  // namespace mintri

#endif  // MINTRI_PARALLEL_SHARDED_SET_H_
