#include "parallel/thread_pool.h"

#include <algorithm>
#include <thread>

namespace mintri {
namespace parallel {

int DefaultParallelThreads() {
  return std::max(2u, std::thread::hardware_concurrency());
}

void RunOnThreads(int num_threads, const std::function<void(int)>& fn) {
  // Last-line defense for every entry point (CLI validation aside): a
  // std::thread constructor throwing on resource exhaustion would escape as
  // std::terminate, so absurd requests are clamped instead of attempted.
  num_threads = std::min(num_threads, kMaxRunThreads);
  if (num_threads <= 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (int id = 1; id < num_threads; ++id) {
    threads.emplace_back([&fn, id] { fn(id); });
  }
  fn(0);
  for (std::thread& t : threads) t.join();
}

WorkStealingQueue::WorkStealingQueue(int num_workers)
    : workers_(num_workers) {}

void WorkStealingQueue::Push(int worker, uint64_t item) {
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(workers_[worker].mutex);
  workers_[worker].deque.push_back(item);
}

void WorkStealingQueue::PushBatch(int worker, const uint64_t* items,
                                  size_t count) {
  if (count == 0) return;
  // Counter first, then the items become visible — same ordering as Push,
  // so a worker can never observe queued work with outstanding_ == 0.
  outstanding_.fetch_add(count, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(workers_[worker].mutex);
  std::deque<uint64_t>& dq = workers_[worker].deque;
  dq.insert(dq.end(), items, items + count);
}

bool WorkStealingQueue::TryPop(int worker, uint64_t* item) {
  {
    // Own deque: LIFO keeps the separator just discovered (and still warm in
    // cache) the next one expanded.
    Worker& own = workers_[worker];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.deque.empty()) {
      *item = own.deque.back();
      own.deque.pop_back();
      return true;
    }
  }
  const int n = static_cast<int>(workers_.size());
  for (int step = 1; step < n; ++step) {
    Worker& victim = workers_[(worker + step) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.deque.empty()) {
      // Steal from the front: the oldest items tend to be the roots of the
      // largest unexplored expansion subtrees.
      *item = victim.deque.front();
      victim.deque.pop_front();
      return true;
    }
  }
  return false;
}

bool WorkStealingQueue::Next(int worker, uint64_t* item) {
  while (true) {
    if (cancelled_.load(std::memory_order_relaxed)) return false;
    if (TryPop(worker, item)) return true;
    // Every deque was momentarily empty. If nothing is in flight either,
    // no further work can appear (Finish of in-flight items is the only
    // producer left) — the acquire pairs with Finish's release so the
    // emptiness we just observed is final.
    if (outstanding_.load(std::memory_order_acquire) == 0) return false;
    std::this_thread::yield();
  }
}

size_t WorkStealingQueue::TryPopBatch(int worker, uint64_t* items,
                                      size_t max_items) {
  {
    Worker& own = workers_[worker];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.deque.empty()) {
      // Back of the own deque, newest first — the batch equivalent of the
      // LIFO cache-warm pop.
      size_t got = 0;
      while (got < max_items && !own.deque.empty()) {
        items[got++] = own.deque.back();
        own.deque.pop_back();
      }
      return got;
    }
  }
  // Steal path: one item only, from the front of a victim (coarse subtree
  // roots), exactly as TryPop — batch-stealing would concentrate the very
  // work the front-steal heuristic is trying to spread.
  return TryPop(worker, items) ? 1 : 0;
}

size_t WorkStealingQueue::NextBatch(int worker, uint64_t* items,
                                    size_t max_items) {
  if (max_items == 0) return 0;
  while (true) {
    if (cancelled_.load(std::memory_order_relaxed)) return 0;
    const size_t got = TryPopBatch(worker, items, max_items);
    if (got > 0) return got;
    if (outstanding_.load(std::memory_order_acquire) == 0) return 0;
    std::this_thread::yield();
  }
}

void WorkStealingQueue::Finish() {
  outstanding_.fetch_sub(1, std::memory_order_release);
}

void WorkStealingQueue::FinishBatch(size_t count) {
  if (count == 0) return;
  outstanding_.fetch_sub(count, std::memory_order_release);
}

void WorkStealingQueue::Cancel() {
  cancelled_.store(true, std::memory_order_relaxed);
}

}  // namespace parallel
}  // namespace mintri
