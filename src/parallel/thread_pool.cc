#include "parallel/thread_pool.h"

#include <algorithm>
#include <thread>

namespace mintri {
namespace parallel {

int DefaultParallelThreads() {
  return std::max(2u, std::thread::hardware_concurrency());
}

void RunOnThreads(int num_threads, const std::function<void(int)>& fn) {
  // Last-line defense for every entry point (CLI validation aside): a
  // std::thread constructor throwing on resource exhaustion would escape as
  // std::terminate, so absurd requests are clamped instead of attempted.
  num_threads = std::min(num_threads, kMaxRunThreads);
  if (num_threads <= 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (int id = 1; id < num_threads; ++id) {
    threads.emplace_back([&fn, id] { fn(id); });
  }
  fn(0);
  for (std::thread& t : threads) t.join();
}

WorkStealingQueue::WorkStealingQueue(int num_workers)
    : workers_(num_workers) {}

void WorkStealingQueue::Push(int worker, uint64_t item) {
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(workers_[worker].mutex);
  workers_[worker].deque.push_back(item);
}

bool WorkStealingQueue::TryPop(int worker, uint64_t* item) {
  {
    // Own deque: LIFO keeps the separator just discovered (and still warm in
    // cache) the next one expanded.
    Worker& own = workers_[worker];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.deque.empty()) {
      *item = own.deque.back();
      own.deque.pop_back();
      return true;
    }
  }
  const int n = static_cast<int>(workers_.size());
  for (int step = 1; step < n; ++step) {
    Worker& victim = workers_[(worker + step) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.deque.empty()) {
      // Steal from the front: the oldest items tend to be the roots of the
      // largest unexplored expansion subtrees.
      *item = victim.deque.front();
      victim.deque.pop_front();
      return true;
    }
  }
  return false;
}

bool WorkStealingQueue::Next(int worker, uint64_t* item) {
  while (true) {
    if (cancelled_.load(std::memory_order_relaxed)) return false;
    if (TryPop(worker, item)) return true;
    // Every deque was momentarily empty. If nothing is in flight either,
    // no further work can appear (Finish of in-flight items is the only
    // producer left) — the acquire pairs with Finish's release so the
    // emptiness we just observed is final.
    if (outstanding_.load(std::memory_order_acquire) == 0) return false;
    std::this_thread::yield();
  }
}

void WorkStealingQueue::Finish() {
  outstanding_.fetch_sub(1, std::memory_order_release);
}

void WorkStealingQueue::Cancel() {
  cancelled_.store(true, std::memory_order_relaxed);
}

}  // namespace parallel
}  // namespace mintri
