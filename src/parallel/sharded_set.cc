#include "parallel/sharded_set.h"

namespace mintri {
namespace parallel {

namespace {

size_t NextPowerOfTwo(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

ShardedVertexSetTable::ShardedVertexSetTable(int num_shards)
    : shards_(NextPowerOfTwo(num_shards < 1 ? 1 : num_shards)) {
  shard_mask_ = shards_.size() - 1;
}

bool ShardedVertexSetTable::Insert(const VertexSet& s, Ref* ref) {
  const uint32_t shard_id =
      static_cast<uint32_t>((s.Hash() >> 32) & shard_mask_);
  Shard& shard = shards_[shard_id];
  uint32_t index = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (!shard.table.Insert(s, &index)) return false;
  }
  size_.fetch_add(1, std::memory_order_relaxed);
  if (ref != nullptr) *ref = {shard_id, index};
  return true;
}

void ShardedVertexSetTable::CopyEntry(Ref ref, VertexSet* out) const {
  const Shard& shard = shards_[ref.shard];
  std::lock_guard<std::mutex> lock(shard.mutex);
  *out = shard.table.At(ref.index);
}

std::vector<VertexSet> ShardedVertexSetTable::TakeAll() {
  std::vector<VertexSet> out;
  out.reserve(Size());
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (VertexSet& s : shard.table.Take()) out.push_back(std::move(s));
  }
  size_.store(0, std::memory_order_relaxed);
  return out;
}

}  // namespace parallel
}  // namespace mintri
