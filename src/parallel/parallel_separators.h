#ifndef MINTRI_PARALLEL_PARALLEL_SEPARATORS_H_
#define MINTRI_PARALLEL_PARALLEL_SEPARATORS_H_

#include "graph/graph.h"
#include "separators/minimal_separators.h"

namespace mintri {
namespace parallel {

/// Multi-threaded Berry–Bordat–Cogis enumeration: the batch engine behind
/// ListMinimalSeparators / ListMinimalSeparatorsBounded when
/// EnumerationLimits::num_threads > 1.
///
/// Every expansion of a queued separator is independent, so the frontier is
/// distributed over a WorkStealingQueue (one deque per thread, each expansion
/// one work item) and deduplication runs through a ShardedVertexSetTable
/// striped over the sets' cached 64-bit hashes. Seed vertices are claimed
/// from an atomic cursor, and each thread expands with its own
/// ComponentScanner and scratch sets — the only shared mutable state is the
/// queue and the dedup table.
///
/// Semantics match the serial engine: the result is the exact set MinSep(G)
/// (restricted to |S| <= max_size) when status is kComplete; on a deadline
/// or max_results truncation it is a valid prefix — every returned set is a
/// genuine minimal separator — labelled kTruncated. Unlike the serial
/// engine's discovery order, a complete parallel result is returned in
/// canonical sorted order, so equal inputs give bit-identical output
/// regardless of thread interleaving.
MinimalSeparatorsResult ListMinimalSeparatorsParallel(
    const Graph& g, int max_size, const EnumerationLimits& limits);

}  // namespace parallel
}  // namespace mintri

#endif  // MINTRI_PARALLEL_PARALLEL_SEPARATORS_H_
