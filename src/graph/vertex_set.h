#ifndef MINTRI_GRAPH_VERTEX_SET_H_
#define MINTRI_GRAPH_VERTEX_SET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/bitset_kernels.h"

namespace mintri {

/// A set of vertices over a fixed universe {0, ..., capacity-1}, stored as a
/// bitset. This is the workhorse type of the library: minimal separators,
/// potential maximal cliques, blocks and bags are all VertexSets, and the hot
/// predicates of the Bouchitté–Todinca machinery (subset tests, neighborhood
/// unions, component expansion) are word-parallel.
///
/// The hash is commutative (XOR of a per-vertex mix), cached, and maintained
/// incrementally by Insert/Erase; word-parallel mutators invalidate the cache
/// and Hash() recomputes it on demand. Enumeration hot paths (the separator
/// arena, PMC dedup) key their hash tables on this cached value, so hashing a
/// set that is repeatedly looked up costs one pass over its bits, once.
///
/// All binary operations require both operands to share the same capacity;
/// a mismatch aborts with a diagnostic in every build type (not just when
/// asserts are live — see CheckSameCapacity). The word loops themselves are
/// delegated to graph/bitset_kernels.h, which dispatches between one shared
/// scalar implementation and an AVX2 path at runtime.
class VertexSet {
 public:
  /// Empty set over an empty universe.
  VertexSet() = default;

  /// Empty set over {0, ..., capacity-1}.
  explicit VertexSet(int capacity)
      : capacity_(capacity), words_((capacity + 63) / 64, 0) {}

  /// The full universe {0, ..., capacity-1}.
  static VertexSet All(int capacity);

  /// {v} over {0, ..., capacity-1}.
  static VertexSet Single(int capacity, int v);

  /// Builds a set from a list of vertices.
  static VertexSet Of(int capacity, std::initializer_list<int> vs);
  static VertexSet FromVector(int capacity, const std::vector<int>& vs);

  int capacity() const { return capacity_; }

  /// Empties the set over a (possibly new) universe, reusing the existing
  /// word buffer when it is large enough. Scratch-set workhorse.
  void Reset(int capacity);

  /// Makes this the full universe {0, ..., capacity-1}, reusing storage.
  void ResetAll(int capacity);

  /// *this = a ∪ b in a single word pass, reusing storage.
  void AssignUnionOf(const VertexSet& a, const VertexSet& b);

  /// *this = complement of s in a single word pass, reusing storage.
  void AssignComplementOf(const VertexSet& s);

  void Insert(int v) {
    uint64_t& word = words_[v >> 6];
    const uint64_t bit = uint64_t{1} << (v & 63);
    if ((word & bit) == 0) {
      word |= bit;
      if (hash_valid_) hash_ ^= MixVertex(v);
    }
  }
  void Erase(int v) {
    uint64_t& word = words_[v >> 6];
    const uint64_t bit = uint64_t{1} << (v & 63);
    if ((word & bit) != 0) {
      word &= ~bit;
      if (hash_valid_) hash_ ^= MixVertex(v);
    }
  }
  bool Contains(int v) const { return (words_[v >> 6] >> (v & 63)) & 1; }

  /// Read-only view of the underlying words, low bit of word 0 = vertex 0.
  /// Bits at positions >= capacity() are always zero. For the kernel layer's
  /// tests and external word-parallel consumers; mutation stays inside the
  /// class so the hash cache cannot be bypassed.
  const uint64_t* word_data() const { return words_.data(); }
  size_t word_count() const { return words_.size(); }

  bool Empty() const;
  int Count() const;

  /// Smallest element, or -1 if empty.
  int First() const;

  bool IsSubsetOf(const VertexSet& other) const;
  bool Intersects(const VertexSet& other) const;

  void UnionWith(const VertexSet& other);
  void IntersectWith(const VertexSet& other);
  void MinusWith(const VertexSet& other);

  VertexSet Union(const VertexSet& other) const;
  VertexSet Intersect(const VertexSet& other) const;
  VertexSet Minus(const VertexSet& other) const;

  /// Complement within the universe.
  VertexSet Complement() const;

  /// Applies `fn(v)` to every element in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        int v = static_cast<int>(w * 64) + __builtin_ctzll(bits);
        fn(v);
        bits &= bits - 1;
      }
    }
  }

  /// Applies `fn(v)` in increasing order while it returns true. Returns
  /// false iff the iteration was cut short.
  template <typename Fn>
  bool ForEachWhile(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        int v = static_cast<int>(w * 64) + __builtin_ctzll(bits);
        if (!fn(v)) return false;
        bits &= bits - 1;
      }
    }
    return true;
  }

  std::vector<int> ToVector() const;

  /// Renders as "{v0,v1,...}".
  std::string ToString() const;

  /// Equality of both the universe and the element set: sets over different
  /// capacities are never equal, even when their words coincide. (The
  /// capacity check comes first — it also guarantees equal word counts for
  /// the word comparison.)
  bool operator==(const VertexSet& other) const {
    if (capacity_ != other.capacity_) return false;
    if (hash_valid_ && other.hash_valid_ && hash_ != other.hash_) {
      return false;
    }
    return bitset::Equal(words_.data(), other.words_.data(), words_.size());
  }
  bool operator!=(const VertexSet& other) const { return !(*this == other); }
  /// Total order — by capacity first, then lexicographic on the words —
  /// suitable for std::map keys and canonical sorting. Comparing capacity
  /// first keeps the order consistent with operator== for mixed-universe
  /// sets (equal-word sets over different universes are unequal and must
  /// not compare equivalent); within one universe (the canonical-sort case
  /// everywhere in the library) it is plain lexicographic order.
  bool operator<(const VertexSet& other) const {
    if (capacity_ != other.capacity_) return capacity_ < other.capacity_;
    return words_ < other.words_;
  }

  /// True while the words live inline in the object (capacity <= 128 and
  /// the set never held a wider universe) — the small-buffer regime where
  /// construction, copy, and destruction are allocation-free. Exposed so
  /// the spill-boundary tests can pin the storage class itself.
  bool StoredInline() const { return words_.is_inline(); }

  /// Moves the word buffer to the heap even when it fits inline (one
  /// allocation, kept across Reset). For LONG-LIVED SCRATCH sets that
  /// tight kernel loops write through — the component scanner's
  /// accumulators, an enumerator's removed-set — heap words measurably
  /// beat inline ones: with the buffer inside the object, the optimizer
  /// must assume every word store may alias the set's own (or a
  /// neighboring member's) bookkeeping, and the serial-minseps A/B showed
  /// ~10% on 1-word graphs from exactly that. Short-lived sets should
  /// stay inline: for them the allocation-free construction/copy/destroy
  /// wins dominate. Idempotent and cheap to re-call.
  void PinWordsToHeap() { words_.force_heap(); }

  /// Order-independent 64-bit hash of the element set. Cached: repeated
  /// calls on an unchanged set are O(1).
  uint64_t Hash() const {
    if (!hash_valid_) RecomputeHash();
    return hash_;
  }

 private:
  // The component scanner fuses its BFS update into single passes over the
  // raw words (and re-flags the hash cache itself).
  friend class ComponentScanner;

  // Aborts with a diagnostic when a binary operation mixes universes. This
  // is the checked policy for the capacity precondition: always on, in
  // Release and sanitizer builds alike — one predicted-not-taken integer
  // compare ahead of a multi-word kernel is noise, and a silent mixed-
  // capacity word loop is a determinism bug factory. (Defined out of line
  // in vertex_set.cc so the cold abort path stays off the fast path.)
  void CheckSameCapacity(const VertexSet& other, const char* op) const {
    if (capacity_ != other.capacity_) CapacityMismatch(other, op);
  }
  [[noreturn]] void CapacityMismatch(const VertexSet& other,
                                     const char* op) const;

  static uint64_t MixVertex(int v) {
    // SplitMix64 finalizer: decorrelates nearby vertex ids.
    uint64_t x = static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  void RecomputeHash() const;

  static constexpr uint64_t kEmptyHash = 0xcbf29ce484222325ULL;

  int capacity_ = 0;
  // Small-buffer word storage: <= 2 words (128 vertices) inline in the
  // object, heap spill above with cache-line alignment from the SIMD
  // dispatch threshold up — so small-universe sets (including the arena
  // entries held by value in VertexSetTable / ShardedVertexSetTable)
  // never touch the allocator, and every buffer wide enough for the AVX2
  // kernels starts on a 64-byte boundary.
  bitset::WordStorage words_;
  mutable uint64_t hash_ = kEmptyHash;
  mutable bool hash_valid_ = true;
};

struct VertexSetHash {
  size_t operator()(const VertexSet& s) const {
    return static_cast<size_t>(s.Hash());
  }
};

}  // namespace mintri

#endif  // MINTRI_GRAPH_VERTEX_SET_H_
