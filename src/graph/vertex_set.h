#ifndef MINTRI_GRAPH_VERTEX_SET_H_
#define MINTRI_GRAPH_VERTEX_SET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace mintri {

/// A set of vertices over a fixed universe {0, ..., capacity-1}, stored as a
/// bitset. This is the workhorse type of the library: minimal separators,
/// potential maximal cliques, blocks and bags are all VertexSets, and the hot
/// predicates of the Bouchitté–Todinca machinery (subset tests, neighborhood
/// unions, component expansion) are word-parallel.
///
/// All binary operations require both operands to share the same capacity.
class VertexSet {
 public:
  /// Empty set over an empty universe.
  VertexSet() = default;

  /// Empty set over {0, ..., capacity-1}.
  explicit VertexSet(int capacity)
      : capacity_(capacity), words_((capacity + 63) / 64, 0) {}

  /// The full universe {0, ..., capacity-1}.
  static VertexSet All(int capacity);

  /// {v} over {0, ..., capacity-1}.
  static VertexSet Single(int capacity, int v);

  /// Builds a set from a list of vertices.
  static VertexSet Of(int capacity, std::initializer_list<int> vs);
  static VertexSet FromVector(int capacity, const std::vector<int>& vs);

  int capacity() const { return capacity_; }

  void Insert(int v) { words_[v >> 6] |= (uint64_t{1} << (v & 63)); }
  void Erase(int v) { words_[v >> 6] &= ~(uint64_t{1} << (v & 63)); }
  bool Contains(int v) const {
    return (words_[v >> 6] >> (v & 63)) & 1;
  }

  bool Empty() const;
  int Count() const;

  /// Smallest element, or -1 if empty.
  int First() const;

  bool IsSubsetOf(const VertexSet& other) const;
  bool Intersects(const VertexSet& other) const;

  void UnionWith(const VertexSet& other);
  void IntersectWith(const VertexSet& other);
  void MinusWith(const VertexSet& other);

  VertexSet Union(const VertexSet& other) const;
  VertexSet Intersect(const VertexSet& other) const;
  VertexSet Minus(const VertexSet& other) const;

  /// Complement within the universe.
  VertexSet Complement() const;

  /// Applies `fn(v)` to every element in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        int v = static_cast<int>(w * 64) + __builtin_ctzll(bits);
        fn(v);
        bits &= bits - 1;
      }
    }
  }

  std::vector<int> ToVector() const;

  /// Renders as "{v0,v1,...}".
  std::string ToString() const;

  bool operator==(const VertexSet& other) const {
    return words_ == other.words_;
  }
  bool operator!=(const VertexSet& other) const { return !(*this == other); }
  /// Total order (by size of words then lexicographic), suitable for std::map
  /// keys and canonical sorting.
  bool operator<(const VertexSet& other) const {
    return words_ < other.words_;
  }

  size_t Hash() const;

 private:
  int capacity_ = 0;
  std::vector<uint64_t> words_;
};

struct VertexSetHash {
  size_t operator()(const VertexSet& s) const { return s.Hash(); }
};

}  // namespace mintri

#endif  // MINTRI_GRAPH_VERTEX_SET_H_
