#include "graph/graph.h"

#include <cassert>

#include "graph/bitset_kernels.h"

namespace mintri {

Graph::Graph(int n) : n_(n), adjacency_(n, VertexSet(n)) {}

void Graph::AddEdge(int u, int v) {
  assert(u >= 0 && u < n_ && v >= 0 && v < n_);
  if (u == v || adjacency_[u].Contains(v)) return;
  adjacency_[u].Insert(v);
  adjacency_[v].Insert(u);
  ++num_edges_;
}

VertexSet Graph::ClosedNeighborhood(int v) const {
  VertexSet s = adjacency_[v];
  s.Insert(v);
  return s;
}

VertexSet Graph::NeighborhoodOfSet(const VertexSet& s) const {
  VertexSet out;
  NeighborhoodOfSetInto(s, &out);
  return out;
}

void Graph::NeighborhoodOfSetInto(const VertexSet& s, VertexSet* out) const {
  out->Reset(n_);
  s.ForEach([&](int v) { out->UnionWith(adjacency_[v]); });
  out->MinusWith(s);
}

void Graph::SaturateSet(const VertexSet& u) {
  std::vector<int> vs = u.ToVector();
  for (size_t i = 0; i < vs.size(); ++i) {
    for (size_t j = i + 1; j < vs.size(); ++j) {
      AddEdge(vs[i], vs[j]);
    }
  }
}

bool Graph::IsClique(const VertexSet& u) const {
  // u is a clique iff every v in u is adjacent to all other members.
  bool ok = true;
  u.ForEach([&](int v) {
    if (!ok) return;
    VertexSet rest = u;
    rest.Erase(v);
    if (!rest.IsSubsetOf(adjacency_[v])) ok = false;
  });
  return ok;
}

std::vector<std::pair<int, int>> Graph::Edges() const {
  std::vector<std::pair<int, int>> out;
  out.reserve(num_edges_);
  for (int u = 0; u < n_; ++u) {
    adjacency_[u].ForEach([&](int v) {
      if (u < v) out.emplace_back(u, v);
    });
  }
  return out;
}

Graph Graph::InducedSubgraph(const VertexSet& keep,
                             std::vector<int>* old_to_new) const {
  std::vector<int> map(n_, -1);
  int next = 0;
  keep.ForEach([&](int v) { map[v] = next++; });
  Graph g(next);
  keep.ForEach([&](int u) {
    VertexSet nbrs = adjacency_[u].Intersect(keep);
    nbrs.ForEach([&](int v) {
      if (u < v) g.AddEdge(map[u], map[v]);
    });
  });
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return g;
}

std::vector<VertexSet> Graph::ConnectedComponents() const {
  return ComponentsAfterRemoving(VertexSet(n_));
}

std::vector<VertexSet> Graph::ComponentsAfterRemoving(
    const VertexSet& removed) const {
  std::vector<VertexSet> components;
  ComponentScanner scanner;
  scanner.ForEachComponent(
      *this, removed,
      [&](const VertexSet& c, const VertexSet&) { components.push_back(c); });
  return components;
}

VertexSet Graph::ComponentOf(int v, const VertexSet& removed) const {
  assert(!removed.Contains(v));
  ComponentScanner scanner;
  return scanner.ComponentOf(*this, removed, v);
}

bool Graph::IsConnected() const {
  if (n_ == 0) return true;
  return ComponentOf(0, VertexSet(n_)).Count() == n_;
}

Graph Graph::UnionOf(const Graph& a, const Graph& b) {
  assert(a.n_ == b.n_);
  Graph g = a;
  for (int u = 0; u < b.n_; ++u) {
    b.adjacency_[u].ForEach([&](int v) {
      if (u < v) g.AddEdge(u, v);
    });
  }
  return g;
}

void ComponentScanner::Components(const Graph& g, const VertexSet& removed,
                                  std::vector<VertexSet>* components) {
  size_t count = 0;
  ForEachComponent(g, removed, [&](const VertexSet& c, const VertexSet&) {
    if (count < components->size()) {
      (*components)[count] = c;  // reuses the element's buffer
    } else {
      components->push_back(c);
    }
    ++count;
  });
  components->resize(count);
}

const VertexSet& ComponentScanner::ComponentOf(const Graph& g,
                                               const VertexSet& removed,
                                               int v) {
  assert(!removed.Contains(v));
  ScanFrom(g, removed, v);
  return component_;
}

void ComponentScanner::ScanFrom(const Graph& g, const VertexSet& removed,
                                int start) {
  const int n = g.NumVertices();
  component_.Reset(n);
  component_.Insert(start);
  neighborhood_.Reset(n);
  frontier_.Reset(n);
  frontier_.Insert(start);
  reach_.Reset(n);
  // The four accumulators are long-lived scratch that the fused kernel
  // below stores through millions of times: keep their words on the heap
  // (idempotent after the first scan) so those stores cannot alias the
  // scanner's own members — see VertexSet::PinWordsToHeap.
  component_.PinWordsToHeap();
  neighborhood_.PinWordsToHeap();
  frontier_.PinWordsToHeap();
  reach_.PinWordsToHeap();
  const size_t words = component_.words_.size();
  while (true) {
    frontier_.ForEach([&](int u) { reach_.UnionWith(g.Neighbors(u)); });
    // Fused level update, one kernel pass over the words: fold the reach
    // into the neighborhood accumulator (∪_{u∈C} N(u)), compute the next
    // frontier (reached, not removed, not yet visited), and grow the
    // component.
    if (bitset::BfsFusedStep(component_.words_.data(),
                             frontier_.words_.data(),
                             neighborhood_.words_.data(), reach_.words_.data(),
                             removed.words_.data(), words) == 0) {
      break;
    }
  }
  // ∪N(u) \ C = N(C).
  bitset::MinusInto(neighborhood_.words_.data(), component_.words_.data(),
                    words);
  component_.hash_valid_ = false;
  neighborhood_.hash_valid_ = false;
  frontier_.hash_valid_ = false;
}

}  // namespace mintri
