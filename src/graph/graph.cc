#include "graph/graph.h"

#include <cassert>

namespace mintri {

Graph::Graph(int n) : n_(n), adjacency_(n, VertexSet(n)) {}

void Graph::AddEdge(int u, int v) {
  assert(u >= 0 && u < n_ && v >= 0 && v < n_);
  if (u == v || adjacency_[u].Contains(v)) return;
  adjacency_[u].Insert(v);
  adjacency_[v].Insert(u);
  ++num_edges_;
}

VertexSet Graph::ClosedNeighborhood(int v) const {
  VertexSet s = adjacency_[v];
  s.Insert(v);
  return s;
}

VertexSet Graph::NeighborhoodOfSet(const VertexSet& s) const {
  VertexSet out(n_);
  s.ForEach([&](int v) { out.UnionWith(adjacency_[v]); });
  out.MinusWith(s);
  return out;
}

void Graph::SaturateSet(const VertexSet& u) {
  std::vector<int> vs = u.ToVector();
  for (size_t i = 0; i < vs.size(); ++i) {
    for (size_t j = i + 1; j < vs.size(); ++j) {
      AddEdge(vs[i], vs[j]);
    }
  }
}

bool Graph::IsClique(const VertexSet& u) const {
  // u is a clique iff every v in u is adjacent to all other members.
  bool ok = true;
  u.ForEach([&](int v) {
    if (!ok) return;
    VertexSet rest = u;
    rest.Erase(v);
    if (!rest.IsSubsetOf(adjacency_[v])) ok = false;
  });
  return ok;
}

std::vector<std::pair<int, int>> Graph::Edges() const {
  std::vector<std::pair<int, int>> out;
  out.reserve(num_edges_);
  for (int u = 0; u < n_; ++u) {
    adjacency_[u].ForEach([&](int v) {
      if (u < v) out.emplace_back(u, v);
    });
  }
  return out;
}

Graph Graph::InducedSubgraph(const VertexSet& keep,
                             std::vector<int>* old_to_new) const {
  std::vector<int> map(n_, -1);
  int next = 0;
  keep.ForEach([&](int v) { map[v] = next++; });
  Graph g(next);
  keep.ForEach([&](int u) {
    VertexSet nbrs = adjacency_[u].Intersect(keep);
    nbrs.ForEach([&](int v) {
      if (u < v) g.AddEdge(map[u], map[v]);
    });
  });
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return g;
}

std::vector<VertexSet> Graph::ConnectedComponents() const {
  return ComponentsAfterRemoving(VertexSet(n_));
}

std::vector<VertexSet> Graph::ComponentsAfterRemoving(
    const VertexSet& removed) const {
  std::vector<VertexSet> components;
  VertexSet remaining = removed.Complement();
  while (true) {
    int start = remaining.First();
    if (start < 0) break;
    VertexSet comp = ComponentOf(start, removed);
    remaining.MinusWith(comp);
    components.push_back(std::move(comp));
  }
  return components;
}

VertexSet Graph::ComponentOf(int v, const VertexSet& removed) const {
  assert(!removed.Contains(v));
  VertexSet comp = VertexSet::Single(n_, v);
  VertexSet frontier = comp;
  while (!frontier.Empty()) {
    VertexSet next(n_);
    frontier.ForEach([&](int u) { next.UnionWith(adjacency_[u]); });
    next.MinusWith(removed);
    next.MinusWith(comp);
    comp.UnionWith(next);
    frontier = std::move(next);
  }
  return comp;
}

bool Graph::IsConnected() const {
  if (n_ == 0) return true;
  return ComponentOf(0, VertexSet(n_)).Count() == n_;
}

Graph Graph::UnionOf(const Graph& a, const Graph& b) {
  assert(a.n_ == b.n_);
  Graph g = a;
  for (int u = 0; u < b.n_; ++u) {
    b.adjacency_[u].ForEach([&](int v) {
      if (u < v) g.AddEdge(u, v);
    });
  }
  return g;
}

}  // namespace mintri
