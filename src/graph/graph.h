#ifndef MINTRI_GRAPH_GRAPH_H_
#define MINTRI_GRAPH_GRAPH_H_

#include <utility>
#include <vector>

#include "graph/vertex_set.h"

namespace mintri {

/// An undirected simple graph over vertices {0, ..., n-1}, with adjacency
/// stored as one VertexSet per vertex. All algorithms in the library
/// (separator enumeration, PMC enumeration, triangulation) run on this type.
class Graph {
 public:
  Graph() = default;
  explicit Graph(int n);

  int NumVertices() const { return n_; }
  int NumEdges() const { return num_edges_; }

  /// Adds the edge {u, v}; ignores self-loops and duplicates.
  void AddEdge(int u, int v);
  bool HasEdge(int u, int v) const {
    return u != v && adjacency_[u].Contains(v);
  }

  const VertexSet& Neighbors(int v) const { return adjacency_[v]; }

  /// N[v] = N(v) ∪ {v}.
  VertexSet ClosedNeighborhood(int v) const;

  /// N(S): vertices outside S adjacent to a member of S.
  VertexSet NeighborhoodOfSet(const VertexSet& s) const;

  /// N(S) written into *out (reusing its storage); for hot paths.
  void NeighborhoodOfSetInto(const VertexSet& s, VertexSet* out) const;

  /// All vertices {0, ..., n-1}.
  VertexSet Vertices() const { return VertexSet::All(n_); }

  /// Makes U a clique (the "saturation" operation of the paper).
  void SaturateSet(const VertexSet& u);

  /// True if every pair of distinct vertices of U is adjacent.
  bool IsClique(const VertexSet& u) const;

  /// All edges as (u, v) pairs with u < v, sorted.
  std::vector<std::pair<int, int>> Edges() const;

  /// The subgraph induced by `keep`, with vertices relabeled to
  /// 0..|keep|-1 in increasing original order. If `old_to_new` is non-null it
  /// receives the relabeling (-1 for dropped vertices).
  Graph InducedSubgraph(const VertexSet& keep,
                        std::vector<int>* old_to_new = nullptr) const;

  /// Connected components of the whole graph.
  std::vector<VertexSet> ConnectedComponents() const;

  /// Connected components of G \ removed (i.e., of the subgraph induced by
  /// the complement of `removed`), as vertex sets of the original graph.
  /// Hot paths should prefer a reused ComponentScanner (below), which also
  /// delivers each component's neighborhood without extra allocation.
  std::vector<VertexSet> ComponentsAfterRemoving(const VertexSet& removed)
      const;

  /// The connected component of G \ removed that contains `v`
  /// (v must not be in `removed`).
  VertexSet ComponentOf(int v, const VertexSet& removed) const;

  bool IsConnected() const;

  /// Union of this graph's edges with `other`'s (same vertex count).
  static Graph UnionOf(const Graph& a, const Graph& b);

  bool operator==(const Graph& other) const {
    return n_ == other.n_ && adjacency_ == other.adjacency_;
  }

 private:
  int n_ = 0;
  int num_edges_ = 0;
  std::vector<VertexSet> adjacency_;
};

/// Scratch-reusing component scanner: a single BFS pass per component that
/// yields both the component C and its neighborhood N(C) (the pair every
/// caller in the separator/PMC machinery needs), without allocating fresh
/// frontier/visited temporaries per call. Keep one scanner alive across
/// calls — its buffers are recycled — and use one scanner per thread.
class ComponentScanner {
 public:
  ComponentScanner() = default;

  /// Calls fn(component, neighborhood) for every connected component C of
  /// g \ removed, where neighborhood = N(C) ⊆ removed. Both sets are scratch
  /// buffers owned by the scanner: they are only valid for the duration of
  /// the callback and must be copied to be retained.
  template <typename Fn>
  void ForEachComponent(const Graph& g, const VertexSet& removed, Fn&& fn) {
    ForEachComponentWhile(g, removed,
                          [&](const VertexSet& c, const VertexSet& nb) {
                            fn(c, nb);
                            return true;
                          });
  }

  /// As ForEachComponent, but stops early when fn returns false. Returns
  /// false iff the scan was cut short.
  template <typename Fn>
  bool ForEachComponentWhile(const Graph& g, const VertexSet& removed,
                             Fn&& fn) {
    remaining_.AssignComplementOf(removed);
    while (true) {
      int start = remaining_.First();
      if (start < 0) return true;
      ScanFrom(g, removed, start);
      remaining_.MinusWith(component_);
      if (!fn(static_cast<const VertexSet&>(component_),
              static_cast<const VertexSet&>(neighborhood_))) {
        return false;
      }
    }
  }

  /// Overwrites *components with the components of g \ removed, reusing the
  /// vector's elements (and their buffers) from previous calls.
  void Components(const Graph& g, const VertexSet& removed,
                  std::vector<VertexSet>* components);

  /// The component of g \ removed containing v, as a reference into scanner
  /// scratch (valid until the next scanner call).
  const VertexSet& ComponentOf(const Graph& g, const VertexSet& removed,
                               int v);

 private:
  // BFS from `start`, filling component_ with its component of g \ removed
  // and neighborhood_ with that component's neighborhood.
  void ScanFrom(const Graph& g, const VertexSet& removed, int start);

  VertexSet remaining_;
  VertexSet component_;
  VertexSet neighborhood_;
  VertexSet frontier_;
  VertexSet reach_;
};

}  // namespace mintri

#endif  // MINTRI_GRAPH_GRAPH_H_
