#ifndef MINTRI_GRAPH_GRAPH_IO_H_
#define MINTRI_GRAPH_GRAPH_IO_H_

#include <istream>
#include <optional>
#include <ostream>
#include <string>

#include "graph/graph.h"

namespace mintri {

/// Parses the PACE / DIMACS ".gr" format:
///   c comment lines
///   p tw <n> <m>
///   <u> <v>            (1-based vertex ids)
/// Returns std::nullopt on malformed input.
std::optional<Graph> ParseDimacs(std::istream& in);
std::optional<Graph> ParseDimacsString(const std::string& text);

/// Writes the graph in the same format.
void WriteDimacs(const Graph& g, std::ostream& out);

/// Parses a simple edge list: first line "<n>", then "<u> <v>" pairs
/// (0-based). Returns std::nullopt on malformed input.
std::optional<Graph> ParseEdgeList(std::istream& in);

}  // namespace mintri

#endif  // MINTRI_GRAPH_GRAPH_IO_H_
