#include "graph/graph_io.h"

#include <sstream>

namespace mintri {

std::optional<Graph> ParseDimacs(std::istream& in) {
  std::string line;
  std::optional<Graph> g;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    if (line[0] == 'p') {
      std::string p, format;
      int n = 0, m = 0;
      if (!(ls >> p >> format >> n >> m) || n < 0) return std::nullopt;
      g.emplace(n);
      continue;
    }
    if (!g.has_value()) return std::nullopt;
    int u = 0, v = 0;
    if (!(ls >> u >> v)) return std::nullopt;
    if (u < 1 || v < 1 || u > g->NumVertices() || v > g->NumVertices()) {
      return std::nullopt;
    }
    g->AddEdge(u - 1, v - 1);
  }
  return g;
}

std::optional<Graph> ParseDimacsString(const std::string& text) {
  std::istringstream in(text);
  return ParseDimacs(in);
}

void WriteDimacs(const Graph& g, std::ostream& out) {
  out << "p tw " << g.NumVertices() << " " << g.NumEdges() << "\n";
  for (const auto& [u, v] : g.Edges()) {
    out << (u + 1) << " " << (v + 1) << "\n";
  }
}

std::optional<Graph> ParseEdgeList(std::istream& in) {
  int n = 0;
  if (!(in >> n) || n < 0) return std::nullopt;
  Graph g(n);
  int u = 0, v = 0;
  while (in >> u >> v) {
    if (u < 0 || v < 0 || u >= n || v >= n) return std::nullopt;
    g.AddEdge(u, v);
  }
  return g;
}

}  // namespace mintri
