#ifndef MINTRI_GRAPH_VERTEX_SET_TABLE_H_
#define MINTRI_GRAPH_VERTEX_SET_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/vertex_set.h"

namespace mintri {

/// The dedup layout shared by the enumeration engines: an arena of distinct
/// VertexSets in insertion order plus an open-addressing (linear probing)
/// table of arena indices keyed on the sets' cached 64-bit hashes. The
/// serial MinimalSeparatorEnumerator uses one instance whose arena doubles
/// as its work queue; the parallel ShardedVertexSetTable uses one instance
/// per shard, under the shard's lock. Keeping both on this single class
/// means probing/growth policy can never silently diverge between the
/// serial and parallel paths.
///
/// Layout: arena entries are VertexSets held by value, and VertexSet's
/// word storage is a bitset::WordVector, so every entry's word buffer is
/// 64-byte-aligned — the word-parallel equality probe below (and every
/// kernel a caller later runs over an arena entry) starts on a cache-line
/// boundary. Probe misses are rejected by the cached 64-bit hash before
/// any words are touched; equality itself is capacity-aware (sets over
/// different universes never collide into one entry).
class VertexSetTable {
 public:
  /// Slot storage is allocated on the first Insert (an empty table costs
  /// nothing — several per-graph structures hold one that often stays
  /// empty on trivial inputs).
  explicit VertexSetTable(size_t initial_slots = 64)
      : initial_slots_(initial_slots) {}

  /// Inserts s if absent. Returns true iff s was newly inserted; when
  /// `index` is non-null it receives s's arena index either way.
  bool Insert(const VertexSet& s, uint32_t* index = nullptr) {
    if (slots_.empty()) {
      slots_.assign(initial_slots_, kEmptySlot);
      slot_mask_ = initial_slots_ - 1;
    }
    const uint64_t h = s.Hash();
    size_t i = h & slot_mask_;
    while (true) {
      const uint32_t slot = slots_[i];
      if (slot == kEmptySlot) break;
      if (hashes_[slot] == h && arena_[slot] == s) {
        if (index != nullptr) *index = slot;
        return false;
      }
      i = (i + 1) & slot_mask_;
    }
    const uint32_t new_index = static_cast<uint32_t>(arena_.size());
    slots_[i] = new_index;
    arena_.push_back(s);
    hashes_.push_back(h);
    // Keep the load factor below 1/2 so linear probing stays short.
    if (arena_.size() * 2 >= slots_.size()) Grow();
    if (index != nullptr) *index = new_index;
    return true;
  }

  /// Arena index of s, or -1 when s was never inserted. Thread-safe for
  /// concurrent readers as long as no Insert runs — TriangulationContext
  /// freezes its index tables before the parallel DP-wiring sweep reads
  /// them from worker threads.
  int Find(const VertexSet& s) const {
    if (slots_.empty()) return -1;
    const uint64_t h = s.Hash();
    size_t i = h & slot_mask_;
    while (true) {
      const uint32_t slot = slots_[i];
      if (slot == kEmptySlot) return -1;
      if (hashes_[slot] == h && arena_[slot] == s) {
        return static_cast<int>(slot);
      }
      i = (i + 1) & slot_mask_;
    }
  }

  size_t Size() const { return arena_.size(); }

  /// The i-th inserted set. The reference is invalidated by the next
  /// Insert (the arena may grow and relocate) — copy to retain.
  const VertexSet& At(size_t i) const { return arena_[i]; }

  /// Moves the arena out and resets the table to its initial empty state.
  std::vector<VertexSet> Take() {
    std::vector<VertexSet> out = std::move(arena_);
    arena_.clear();
    hashes_.clear();
    slots_.assign(slots_.size(), kEmptySlot);
    return out;
  }

 private:
  static constexpr uint32_t kEmptySlot = 0xffffffffu;

  void Grow() {
    slots_.assign(slots_.size() * 2, kEmptySlot);
    slot_mask_ = slots_.size() - 1;
    for (size_t idx = 0; idx < arena_.size(); ++idx) {
      size_t i = hashes_[idx] & slot_mask_;
      while (slots_[i] != kEmptySlot) i = (i + 1) & slot_mask_;
      slots_[i] = static_cast<uint32_t>(idx);
    }
  }

  std::vector<VertexSet> arena_;
  std::vector<uint64_t> hashes_;
  std::vector<uint32_t> slots_;
  size_t slot_mask_ = 0;
  size_t initial_slots_ = 64;
};

}  // namespace mintri

#endif  // MINTRI_GRAPH_VERTEX_SET_TABLE_H_
