#ifndef MINTRI_GRAPH_VERTEX_SET_TABLE_H_
#define MINTRI_GRAPH_VERTEX_SET_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/vertex_set.h"

namespace mintri {

/// The dedup layout shared by the enumeration engines: an arena of distinct
/// VertexSets in insertion order plus an open-addressing (linear probing)
/// table keyed on the sets' cached 64-bit hashes. The serial
/// MinimalSeparatorEnumerator uses one instance whose arena doubles as its
/// work queue; the parallel ShardedVertexSetTable uses one instance per
/// shard, under the shard's lock; the PMC enumerator's per-step candidate
/// dedup uses one instance it Clear()s between steps. Keeping all of them
/// on this single class means probing/growth policy can never silently
/// diverge between the serial and parallel paths.
///
/// Layout: each probe slot interleaves a 32-bit filter of the entry's
/// cached hash with its arena index in one 8-byte struct, so a probe step
/// reads exactly one slot — and, at 8 slots per cache line, a short
/// linear-probe chain stays within a single line. (The previous layout
/// kept full hashes and indices in parallel vectors: two cache misses per
/// probe step, and the same 16 bytes of probe-path footprint per entry
/// that this single array now spends.) Slots are placed by the full 64-bit
/// hash; the low 32 bits stored in the slot are only a filter, with the
/// capacity-aware word equality as the backstop, and Grow() recovers the
/// full hash from the arena entries' O(1) cached Hash(). When a probe
/// iteration mismatches, the loop issues a software prefetch for the next
/// slot before retrying — off the hot hit path, and nearly always
/// same-line at 8 slots per line. Probe misses are rejected by the filter
/// before any words are touched; equality itself is capacity-aware (sets
/// over different universes never collide into one entry). Arena entries
/// are VertexSets held by value: with the small-buffer word storage, a
/// <= 128-vertex entry is one self-contained cache-line-sized object — the
/// full equality check after a filter match touches one line — and wider
/// entries spill to 64-byte-aligned buffers, so every kernel a caller
/// later runs over an arena entry starts aligned.
class VertexSetTable {
 public:
  /// Slot storage is allocated on the first Insert (an empty table costs
  /// nothing — several per-graph structures hold one that often stays
  /// empty on trivial inputs).
  explicit VertexSetTable(size_t initial_slots = 64)
      : initial_slots_(initial_slots) {}

  /// Inserts s if absent. Returns true iff s was newly inserted; when
  /// `index` is non-null it receives s's arena index either way.
  bool Insert(const VertexSet& s, uint32_t* index = nullptr) {
    if (slots_.empty()) {
      slots_.assign(initial_slots_, kEmpty);
      slot_mask_ = initial_slots_ - 1;
    }
    const uint64_t h = s.Hash();
    const uint32_t filter = static_cast<uint32_t>(h);
    size_t i = h & slot_mask_;
    while (true) {
      const Slot slot = slots_[i];
      if (slot.index == kEmptySlot) break;
      if (slot.hash_lo == filter && arena_[slot.index] == s) {
        if (index != nullptr) *index = slot.index;
        return false;
      }
      i = (i + 1) & slot_mask_;
      __builtin_prefetch(&slots_[i]);
    }
    const uint32_t new_index = static_cast<uint32_t>(arena_.size());
    slots_[i] = Slot{filter, new_index};
    arena_.push_back(s);
    // Keep the load factor below 1/2 so linear probing stays short.
    if (arena_.size() * 2 >= slots_.size()) Grow();
    if (index != nullptr) *index = new_index;
    return true;
  }

  /// Arena index of s, or -1 when s was never inserted. Thread-safe for
  /// concurrent readers as long as no Insert runs — TriangulationContext
  /// freezes its index tables before the parallel DP-wiring sweep reads
  /// them from worker threads.
  int Find(const VertexSet& s) const {
    if (slots_.empty()) return -1;
    const uint64_t h = s.Hash();
    const uint32_t filter = static_cast<uint32_t>(h);
    size_t i = h & slot_mask_;
    while (true) {
      const Slot slot = slots_[i];
      if (slot.index == kEmptySlot) return -1;
      if (slot.hash_lo == filter && arena_[slot.index] == s) {
        return static_cast<int>(slot.index);
      }
      i = (i + 1) & slot_mask_;
      __builtin_prefetch(&slots_[i]);
    }
  }

  size_t Size() const { return arena_.size(); }

  /// The i-th inserted set. The reference is invalidated by the next
  /// Insert (the arena may grow and relocate) — copy to retain.
  const VertexSet& At(size_t i) const { return arena_[i]; }

  /// Pre-sizes for `expected` distinct entries: the arena reserves exactly
  /// that and the slot array jumps to the power of two keeping the load
  /// factor below 1/2, so a warmed-up consumer (a repeat enumeration of a
  /// known-size answer set) inserts with zero allocations — the invariant
  /// the MINTRI_COUNT_ALLOCS regression test pins.
  void Reserve(size_t expected) {
    arena_.reserve(expected);
    size_t want = initial_slots_;
    while (expected * 2 >= want) want <<= 1;
    if (want > slots_.size()) {
      if (slots_.empty()) {
        slots_.assign(want, kEmpty);
        slot_mask_ = want - 1;
      } else {
        while (slots_.size() < want) Grow();
      }
    }
  }

  /// Forgets every entry but keeps the slot array (and the arena vector's
  /// capacity), so a reused per-step dedup table re-fills without
  /// re-growing through every power of two.
  void Clear() {
    arena_.clear();
    if (!slots_.empty()) slots_.assign(slots_.size(), kEmpty);
  }

  /// Moves the arena out and resets the table to its initial empty state.
  std::vector<VertexSet> Take() {
    std::vector<VertexSet> out = std::move(arena_);
    arena_.clear();
    slots_.assign(slots_.size(), kEmpty);
    return out;
  }

 private:
  static constexpr uint32_t kEmptySlot = 0xffffffffu;

  // One probe unit: a 32-bit hash filter + the arena index, 8 bytes —
  // eight slots per cache line, one line per probe step. The slot array
  // itself is 64-byte-aligned (it is always past the AlignedAllocator
  // threshold), so slot 8k is always the first of a line and home slots
  // land at most seven slots from a boundary. Keeping the filter at 32
  // bits (rather than the full 64-bit hash) is what halves the slot and
  // keeps the probe array's cache footprint at the old two-array layout's
  // level while touching a single array.
  struct Slot {
    uint32_t hash_lo;
    uint32_t index;
  };
  using SlotVector = std::vector<Slot, bitset::AlignedAllocator<Slot, 64>>;
  static constexpr Slot kEmpty{0, kEmptySlot};

  void Grow() {
    // Re-place every entry by its full 64-bit hash, recovered in O(1)
    // from the arena's cached per-set hashes (the slots only store the
    // 32-bit filter).
    slots_.assign(slots_.size() * 2, kEmpty);
    slot_mask_ = slots_.size() - 1;
    for (size_t idx = 0; idx < arena_.size(); ++idx) {
      const uint64_t h = arena_[idx].Hash();
      size_t i = h & slot_mask_;
      while (slots_[i].index != kEmptySlot) i = (i + 1) & slot_mask_;
      slots_[i] = Slot{static_cast<uint32_t>(h), static_cast<uint32_t>(idx)};
    }
  }

  std::vector<VertexSet> arena_;
  SlotVector slots_;
  size_t slot_mask_ = 0;
  size_t initial_slots_ = 64;
};

}  // namespace mintri

#endif  // MINTRI_GRAPH_VERTEX_SET_TABLE_H_
