#ifndef MINTRI_GRAPH_VERTEX_SET_POOL_H_
#define MINTRI_GRAPH_VERTEX_SET_POOL_H_

#include <utility>
#include <vector>

#include "graph/vertex_set.h"

namespace mintri {

/// A free list of VertexSets: the scratch allocator of the candidate-
/// generation hot loops (PMC candidate construction, solver repair
/// temporaries). Acquire() hands out an empty set over the requested
/// universe, reusing a previously Release()d set's word buffer whenever one
/// is available; Release() returns a set — and, crucially, its spilled heap
/// buffer, if any — to the list instead of the allocator. On <= 128-vertex
/// universes the small-buffer storage already makes individual sets
/// allocation-free and the pool merely recycles the object slots; on wider
/// universes it is what keeps the "build a candidate, usually reject it"
/// loops from churning a heap buffer per candidate.
///
/// Not thread-safe: use one pool per worker, exactly like ComponentScanner
/// and PmcTester scratch.
class VertexSetPool {
 public:
  /// An empty set over {0, ..., capacity-1}, recycled when possible.
  VertexSet Acquire(int capacity) {
    if (free_.empty()) return VertexSet(capacity);
    VertexSet s = std::move(free_.back());
    free_.pop_back();
    s.Reset(capacity);
    return s;
  }

  /// Returns a set to the free list. The set's value is irrelevant; only
  /// its buffer is kept.
  void Release(VertexSet&& s) { free_.push_back(std::move(s)); }

  size_t PooledCount() const { return free_.size(); }

 private:
  std::vector<VertexSet> free_;
};

}  // namespace mintri

#endif  // MINTRI_GRAPH_VERTEX_SET_POOL_H_
