#ifndef MINTRI_GRAPH_BITSET_KERNELS_H_
#define MINTRI_GRAPH_BITSET_KERNELS_H_

// The single word-level kernel layer under every bitset hot loop in the
// library. All VertexSet algebra (union/intersect/minus/complement), the
// set predicates (subset, intersects, equality, emptiness), popcount,
// first-set, and the ComponentScanner's fused BFS step funnel through the
// functions in this header instead of open-coding uint64_t loops at each
// call site.
//
// Layering:
//
//   * `scalar::` — the one reference implementation. Plain word loops,
//     no intrinsics, fully defined behavior. This is the path the
//     sanitizer builds (ASan/UBSan/TSan) compile and run, and the path
//     every differential test compares against.
//   * `avx2::` — an explicit AVX2 path, compiled via the GCC/Clang
//     `target("avx2")` function attribute so the rest of the translation
//     unit keeps its baseline ISA. Only present when the compile-time
//     gate below admits it (x86-64, GCC/Clang, and MINTRI_DISABLE_SIMD
//     not defined).
//   * The unprefixed top-level functions dispatch per call: buffers of
//     at least kSimdMinWords words go to `avx2::` when the CPU supports
//     AVX2 (checked once, at static-initialization time) and the
//     MINTRI_FORCE_SCALAR environment variable is not set; everything
//     else inlines the scalar loop. Small-universe graphs (< 193
//     vertices fit in 3 words) therefore never pay a dispatch call.
//
// Dispatch policy knobs:
//
//   * Compile time: -DMINTRI_DISABLE_SIMD (the MINTRI_DISABLE_SIMD CMake
//     option, forced ON by the sanitizer options) removes the AVX2 path
//     entirely; -DMINTRI_FORCE_AVX2 builds the whole tree with -mavx2 so
//     the compiler may also auto-vectorize the scalar path.
//   * Run time: MINTRI_FORCE_SCALAR=1 in the environment pins dispatch
//     to the scalar path in an AVX2-capable binary (used by the
//     differential tests to cover both sides in one process).
//
// Alignment: VertexSet stores its words in a WordStorage (below): up to
// 2 words inline in the object (small-buffer optimization — no heap
// traffic at all for graphs up to 128 vertices, which only ever run the
// scalar kernels), heap above, where the allocator returns 64-byte-
// aligned buffers for any allocation of at least kSimdMinWords words —
// so every buffer the AVX2 path can actually touch starts on a
// cache-line boundary, including the separator/PMC arena entries behind
// VertexSetTable and ShardedVertexSetTable, which hold VertexSets by
// value. Sub-threshold heap buffers (3 words) deliberately take the
// default allocator's small-size fast path instead: measured on the
// bench families, unconditional aligned allocation cost ~3x per
// alloc/free and showed up as a double-digit throughput loss on the
// small-universe suites. The kernels themselves use unaligned loads and
// remain correct on any pointer (the PmcTester cover bitmap pads its
// row stride with AlignWords once rows are wide enough to dispatch).
//
// Every kernel takes explicit word counts; none of them reads or writes
// beyond `n` words. Tail bits above a set's capacity are the caller's
// contract: VertexSet maintains them as zero (see TailMask), and the
// differential tests include non-multiple-of-64 capacities to pin that.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#define MINTRI_BITSET_X86_64 1
#else
#define MINTRI_BITSET_X86_64 0
#endif

#if MINTRI_BITSET_X86_64 && !defined(MINTRI_DISABLE_SIMD) && \
    (defined(__GNUC__) || defined(__clang__))
#define MINTRI_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#else
#define MINTRI_HAVE_AVX2_KERNELS 0
#endif

namespace mintri {
namespace bitset {

/// Minimal C++17 allocator returning `Alignment`-byte-aligned buffers.
/// Stateless; all instances compare equal.
///
/// Alignment is requested only for buffers of at least Alignment/2 bytes
/// (with the 64-byte WordVector below: >= 4 words, exactly the SIMD
/// dispatch threshold). Aligned `operator new` bypasses the allocator's
/// small-size fast path and costs ~3x a plain allocation, which is pure
/// loss on sub-threshold buffers where only the scalar kernels ever run;
/// the SIMD kernels themselves use unaligned loads and are correct on any
/// pointer, so the threshold trades a guaranteed-aligned *wide* buffer
/// for a cheap *narrow* one.
template <typename T, size_t Alignment>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(size_t n) {
    if (WantsAlignment(n)) {
      return static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) {
    if (WantsAlignment(n)) {
      ::operator delete(p, std::align_val_t(Alignment));
    } else {
      ::operator delete(p);
    }
  }

  static bool WantsAlignment(size_t n) {
    return n * sizeof(T) >= Alignment / 2;
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// The word-buffer type behind multi-row bitmaps (the PmcTester cover):
/// cache-line-aligned from 4 words up (the SIMD dispatch threshold),
/// default-allocated below it — see AlignedAllocator. Single-set storage
/// lives in WordStorage below instead, which adds a small-buffer fast path.
using WordVector = std::vector<uint64_t, AlignedAllocator<uint64_t, 64>>;

/// Small-buffer word storage: the buffer behind VertexSet. Up to
/// kInlineWords words (128 vertices — which covers every bundled bench
/// family) live inline in the object, so constructing, copying, moving, or
/// destroying a small set never touches the allocator; PR 8's A/B runs
/// measured the small-universe enumeration suites as allocation- and
/// table-bound, and this is the allocation half of that fix. Wider
/// universes spill to a heap buffer obtained through AlignedAllocator,
/// preserving the alignment-from-threshold policy: every spilled buffer of
/// at least kSimdMinWords words is 64-byte-aligned (exactly the buffers the
/// AVX2 kernels can dispatch on), while 3-word spills take the default
/// allocator's small-size fast path. Inline buffers are only 8-byte-aligned,
/// which is safe: at <= 2 words they are below the dispatch threshold and
/// only ever run the scalar kernels.
///
/// Mirrors the std::vector subset VertexSet needs (data/size/operator[]/
/// assign/resize/lexicographic compare). Like vector::assign, shrinking
/// reuses the existing buffer: a set that spilled once keeps its heap
/// buffer until destroyed or moved from, so Reset-style scratch reuse stays
/// allocation-free in steady state.
class WordStorage {
 public:
  /// 2 words = 128 vertices inline. One word would already cover most
  /// bench graphs, but the second costs only 8 bytes of object and keeps
  /// the whole <= 128-vertex regime (and the 65..128 half of it that the
  /// fuzz corpus exercises) off the allocator.
  static constexpr size_t kInlineWords = 2;

  WordStorage() = default;
  WordStorage(size_t n, uint64_t value) { assign(n, value); }

  WordStorage(const WordStorage& other) { CopyFrom(other); }
  WordStorage& operator=(const WordStorage& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  WordStorage(WordStorage&& other) noexcept { StealFrom(other); }
  WordStorage& operator=(WordStorage&& other) noexcept {
    if (this != &other) {
      ReleaseHeap();
      StealFrom(other);
    }
    return *this;
  }

  ~WordStorage() { ReleaseHeap(); }

  uint64_t* data() { return data_; }
  const uint64_t* data() const { return data_; }
  size_t size() const { return size_; }
  uint64_t& operator[](size_t i) { return data_[i]; }
  const uint64_t& operator[](size_t i) const { return data_[i]; }

  /// True while the words live inside the object (no heap buffer was ever
  /// needed). Exposed so the spill-boundary tests can pin the storage
  /// class, not just the values.
  bool is_inline() const { return data_ == inline_; }

  /// Moves the words onto a heap buffer even when they fit inline, keeping
  /// the values. Idempotent; one allocation for the lifetime of the
  /// storage (assign/resize reuse the heap buffer afterwards). See
  /// VertexSet::PinWordsToHeap for when this is a win.
  void force_heap() {
    if (data_ != inline_) return;
    uint64_t* fresh = Alloc().allocate(kInlineWords);
    for (size_t w = 0; w < size_; ++w) fresh[w] = inline_[w];
    data_ = fresh;
    cap_ = kInlineWords;
  }

  /// Sets every one of n words to `value`, reusing the current buffer when
  /// it is large enough (vector::assign semantics).
  void assign(size_t n, uint64_t value) {
    if (n > cap_) Reallocate(n, /*preserve_words=*/0);
    for (size_t w = 0; w < n; ++w) data_[w] = value;
    size_ = static_cast<uint32_t>(n);
  }

  /// Grows or shrinks to n words; new words are zero, kept words preserve
  /// their values (vector::resize semantics — spilling across the inline
  /// boundary copies the inline words into the fresh heap buffer).
  void resize(size_t n) {
    if (n > cap_) Reallocate(n, /*preserve_words=*/size_);
    for (size_t w = size_; w < n; ++w) data_[w] = 0;
    size_ = static_cast<uint32_t>(n);
  }

  /// Lexicographic word order (the vector operator< VertexSet's total
  /// order was built on; capacities are compared by the caller first).
  friend bool operator<(const WordStorage& a, const WordStorage& b) {
    const size_t common = a.size_ < b.size_ ? a.size_ : b.size_;
    for (size_t w = 0; w < common; ++w) {
      if (a.data_[w] != b.data_[w]) return a.data_[w] < b.data_[w];
    }
    return a.size_ < b.size_;
  }

 private:
  using Alloc = AlignedAllocator<uint64_t, 64>;

  void CopyFrom(const WordStorage& other) {
    if (other.size_ > cap_) Reallocate(other.size_, /*preserve_words=*/0);
    for (size_t w = 0; w < other.size_; ++w) data_[w] = other.data_[w];
    size_ = other.size_;
  }

  // Leaves `other` empty-inline (a valid, reusable state).
  void StealFrom(WordStorage& other) {
    if (other.is_inline()) {
      data_ = inline_;
      cap_ = kInlineWords;
      for (size_t w = 0; w < other.size_; ++w) inline_[w] = other.inline_[w];
    } else {
      data_ = other.data_;
      cap_ = other.cap_;
      other.data_ = other.inline_;
      other.cap_ = kInlineWords;
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  // Moves to a heap buffer of exactly n words (n > kInlineWords), keeping
  // the first preserve_words words. Exact sizing, not geometric growth: a
  // set's word count is pinned by its universe, which almost never changes
  // after construction.
  void Reallocate(size_t n, size_t preserve_words) {
    uint64_t* fresh = Alloc().allocate(n);
    for (size_t w = 0; w < preserve_words; ++w) fresh[w] = data_[w];
    ReleaseHeap();
    data_ = fresh;
    cap_ = static_cast<uint32_t>(n);
  }

  void ReleaseHeap() {
    if (!is_inline()) Alloc().deallocate(data_, cap_);
  }

  uint64_t* data_ = inline_;
  uint32_t size_ = 0;
  uint32_t cap_ = kInlineWords;
  uint64_t inline_[kInlineWords] = {0, 0};
};

/// Mask keeping the valid bits of the last word of a `capacity`-bit set:
/// all-ones when capacity is a multiple of 64 (or zero), otherwise the low
/// (capacity % 64) bits.
inline uint64_t TailMask(int capacity) {
  const int rem = capacity & 63;
  return rem == 0 ? ~uint64_t{0} : (~uint64_t{0} >> (64 - rem));
}

/// Rounds a word count up to a whole cache line (8 words), so packed
/// multi-row bitmaps keep every row 64-byte-aligned.
inline size_t AlignWords(size_t words) { return (words + 7) & ~size_t{7}; }

// ---------------------------------------------------------------------------
// Scalar reference implementations. The only path in sanitizer builds;
// the ground truth for the differential tests.
// ---------------------------------------------------------------------------

namespace scalar {

inline void UnionInto(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t w = 0; w < n; ++w) dst[w] |= src[w];
}

inline void AssignUnion(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                        size_t n) {
  for (size_t w = 0; w < n; ++w) dst[w] = a[w] | b[w];
}

inline void IntersectInto(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t w = 0; w < n; ++w) dst[w] &= src[w];
}

inline void MinusInto(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t w = 0; w < n; ++w) dst[w] &= ~src[w];
}

/// dst = ~src, with `tail_mask` applied to the last word so bits above the
/// capacity stay zero.
inline void ComplementInto(uint64_t* dst, const uint64_t* src, size_t n,
                           uint64_t tail_mask) {
  for (size_t w = 0; w < n; ++w) dst[w] = ~src[w];
  if (n > 0) dst[n - 1] &= tail_mask;
}

/// dst = the full universe, with `tail_mask` applied to the last word.
inline void FillOnes(uint64_t* dst, size_t n, uint64_t tail_mask) {
  for (size_t w = 0; w < n; ++w) dst[w] = ~uint64_t{0};
  if (n > 0) dst[n - 1] &= tail_mask;
}

inline bool IsZero(const uint64_t* a, size_t n) {
  for (size_t w = 0; w < n; ++w) {
    if (a[w] != 0) return false;
  }
  return true;
}

inline bool Equal(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t w = 0; w < n; ++w) {
    if (a[w] != b[w]) return false;
  }
  return true;
}

inline bool IsSubset(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t w = 0; w < n; ++w) {
    if ((a[w] & ~b[w]) != 0) return false;
  }
  return true;
}

inline bool Intersects(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t w = 0; w < n; ++w) {
    if ((a[w] & b[w]) != 0) return true;
  }
  return false;
}

inline int Popcount(const uint64_t* a, size_t n) {
  int c = 0;
  for (size_t w = 0; w < n; ++w) c += __builtin_popcountll(a[w]);
  return c;
}

/// Bit index of the first set bit, or -1 when all n words are zero.
inline int FirstSet(const uint64_t* a, size_t n) {
  for (size_t w = 0; w < n; ++w) {
    if (a[w] != 0) {
      return static_cast<int>(w * 64) + __builtin_ctzll(a[w]);
    }
  }
  return -1;
}

/// One fused BFS level of the component scanner, in a single pass over the
/// words: folds `reach` into the `neighborhood` accumulator, computes the
/// next frontier (reached, not removed, not yet in the component), grows
/// the component, and clears `reach`. Returns the OR of the fresh frontier
/// words (zero iff the BFS is done).
inline uint64_t BfsFusedStep(uint64_t* component, uint64_t* frontier,
                             uint64_t* neighborhood, uint64_t* reach,
                             const uint64_t* removed, size_t n) {
  uint64_t any = 0;
  for (size_t w = 0; w < n; ++w) {
    const uint64_t r = reach[w];
    neighborhood[w] |= r;
    const uint64_t fresh = r & ~removed[w] & ~component[w];
    component[w] |= fresh;
    frontier[w] = fresh;
    reach[w] = 0;
    any |= fresh;
  }
  return any;
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// AVX2 implementations: 4 words (one cache half-line) per vector op, with
// a scalar tail. Compiled with the target("avx2") attribute so the file
// builds without -mavx2; only ever called after the runtime CPU check.
// ---------------------------------------------------------------------------

#if MINTRI_HAVE_AVX2_KERNELS

#define MINTRI_AVX2_FN __attribute__((target("avx2"))) inline

namespace avx2 {

MINTRI_AVX2_FN void UnionInto(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_or_si256(a, b));
  }
  for (; w < n; ++w) dst[w] |= src[w];
}

MINTRI_AVX2_FN void AssignUnion(uint64_t* dst, const uint64_t* a,
                                const uint64_t* b, size_t n) {
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_or_si256(va, vb));
  }
  for (; w < n; ++w) dst[w] = a[w] | b[w];
}

MINTRI_AVX2_FN void IntersectInto(uint64_t* dst, const uint64_t* src,
                                  size_t n) {
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_and_si256(a, b));
  }
  for (; w < n; ++w) dst[w] &= src[w];
}

MINTRI_AVX2_FN void MinusInto(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    // andnot(b, a) = ~b & a.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_andnot_si256(b, a));
  }
  for (; w < n; ++w) dst[w] &= ~src[w];
}

MINTRI_AVX2_FN void ComplementInto(uint64_t* dst, const uint64_t* src,
                                   size_t n, uint64_t tail_mask) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_xor_si256(v, ones));
  }
  for (; w < n; ++w) dst[w] = ~src[w];
  if (n > 0) dst[n - 1] &= tail_mask;
}

MINTRI_AVX2_FN void FillOnes(uint64_t* dst, size_t n, uint64_t tail_mask) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), ones);
  }
  for (; w < n; ++w) dst[w] = ~uint64_t{0};
  if (n > 0) dst[n - 1] &= tail_mask;
}

MINTRI_AVX2_FN bool IsZero(const uint64_t* a, size_t n) {
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    if (!_mm256_testz_si256(v, v)) return false;
  }
  for (; w < n; ++w) {
    if (a[w] != 0) return false;
  }
  return true;
}

MINTRI_AVX2_FN bool Equal(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    const __m256i x = _mm256_xor_si256(va, vb);
    if (!_mm256_testz_si256(x, x)) return false;
  }
  for (; w < n; ++w) {
    if (a[w] != b[w]) return false;
  }
  return true;
}

MINTRI_AVX2_FN bool IsSubset(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    // a \ b = andnot(b, a); subset iff it is zero.
    const __m256i extra = _mm256_andnot_si256(vb, va);
    if (!_mm256_testz_si256(extra, extra)) return false;
  }
  for (; w < n; ++w) {
    if ((a[w] & ~b[w]) != 0) return false;
  }
  return true;
}

MINTRI_AVX2_FN bool Intersects(const uint64_t* a, const uint64_t* b,
                               size_t n) {
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    if (!_mm256_testz_si256(va, vb)) return true;
  }
  for (; w < n; ++w) {
    if ((a[w] & b[w]) != 0) return true;
  }
  return false;
}

// Positional-popcount (Muła): per-byte nibble lookup, horizontally summed
// with SAD against zero. No per-byte overflow because each iteration is
// folded into the 64-bit accumulator immediately.
MINTRI_AVX2_FN int Popcount(const uint64_t* a, size_t n) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                        _mm256_shuffle_epi8(lookup, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
  }
  int total = static_cast<int>(
      _mm256_extract_epi64(acc, 0) + _mm256_extract_epi64(acc, 1) +
      _mm256_extract_epi64(acc, 2) + _mm256_extract_epi64(acc, 3));
  for (; w < n; ++w) total += __builtin_popcountll(a[w]);
  return total;
}

MINTRI_AVX2_FN int FirstSet(const uint64_t* a, size_t n) {
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    if (!_mm256_testz_si256(v, v)) break;  // hit inside these 4 words
  }
  for (; w < n; ++w) {
    if (a[w] != 0) {
      return static_cast<int>(w * 64) + __builtin_ctzll(a[w]);
    }
  }
  return -1;
}

MINTRI_AVX2_FN uint64_t BfsFusedStep(uint64_t* component, uint64_t* frontier,
                                     uint64_t* neighborhood, uint64_t* reach,
                                     const uint64_t* removed, size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i any_acc = zero;
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(reach + w));
    const __m256i nb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(neighborhood + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(neighborhood + w),
                        _mm256_or_si256(nb, r));
    const __m256i comp =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(component + w));
    const __m256i rem =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(removed + w));
    // fresh = r & ~(removed | component).
    const __m256i fresh =
        _mm256_andnot_si256(_mm256_or_si256(rem, comp), r);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(component + w),
                        _mm256_or_si256(comp, fresh));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(frontier + w), fresh);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(reach + w), zero);
    any_acc = _mm256_or_si256(any_acc, fresh);
  }
  uint64_t any = _mm256_testz_si256(any_acc, any_acc) ? 0 : 1;
  for (; w < n; ++w) {
    const uint64_t r = reach[w];
    neighborhood[w] |= r;
    const uint64_t fresh = r & ~removed[w] & ~component[w];
    component[w] |= fresh;
    frontier[w] = fresh;
    reach[w] = 0;
    any |= fresh;
  }
  return any;
}

}  // namespace avx2

#undef MINTRI_AVX2_FN

#endif  // MINTRI_HAVE_AVX2_KERNELS

// ---------------------------------------------------------------------------
// Runtime dispatch.
// ---------------------------------------------------------------------------

/// Buffers shorter than this dispatch straight to the inlined scalar loop:
/// below one full vector iteration the AVX2 call cannot win, and graphs
/// under 193 vertices never leave the scalar path.
inline constexpr size_t kSimdMinWords = 4;

/// True iff this binary carries the AVX2 kernel path at all.
inline constexpr bool CompiledWithAvx2Kernels() {
  return MINTRI_HAVE_AVX2_KERNELS != 0;
}

/// Raw CPU capability, independent of the MINTRI_FORCE_SCALAR override
/// (the differential tests use this to decide whether avx2:: is runnable).
inline bool CpuHasAvx2() {
#if MINTRI_HAVE_AVX2_KERNELS
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

namespace detail {

inline bool DetectAvx2() {
  if (!CpuHasAvx2()) return false;
  const char* force = std::getenv("MINTRI_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' && force[0] != '0') return false;
  return true;
}

// Dynamic-initialized at load time; a kernel called before this TU's
// static init reads the zero-initialized `false` and safely takes the
// scalar path.
inline const bool kUseAvx2 = DetectAvx2();

}  // namespace detail

/// True iff dispatched calls on >= kSimdMinWords words take the AVX2 path.
inline bool UsingAvx2() { return detail::kUseAvx2; }

/// Human-readable dispatch state, for diagnostics and docs.
inline const char* ActiveKernelPath() {
  return detail::kUseAvx2 ? "avx2" : "scalar";
}

#if MINTRI_HAVE_AVX2_KERNELS
#define MINTRI_BITSET_DISPATCH(fn, n, ...)                    \
  do {                                                        \
    if ((n) >= kSimdMinWords && detail::kUseAvx2) {           \
      return avx2::fn(__VA_ARGS__);                           \
    }                                                         \
    return scalar::fn(__VA_ARGS__);                           \
  } while (0)
#else
#define MINTRI_BITSET_DISPATCH(fn, n, ...) return scalar::fn(__VA_ARGS__)
#endif

inline void UnionInto(uint64_t* dst, const uint64_t* src, size_t n) {
  MINTRI_BITSET_DISPATCH(UnionInto, n, dst, src, n);
}
inline void AssignUnion(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                        size_t n) {
  MINTRI_BITSET_DISPATCH(AssignUnion, n, dst, a, b, n);
}
inline void IntersectInto(uint64_t* dst, const uint64_t* src, size_t n) {
  MINTRI_BITSET_DISPATCH(IntersectInto, n, dst, src, n);
}
inline void MinusInto(uint64_t* dst, const uint64_t* src, size_t n) {
  MINTRI_BITSET_DISPATCH(MinusInto, n, dst, src, n);
}
inline void ComplementInto(uint64_t* dst, const uint64_t* src, size_t n,
                           uint64_t tail_mask) {
  MINTRI_BITSET_DISPATCH(ComplementInto, n, dst, src, n, tail_mask);
}
inline void FillOnes(uint64_t* dst, size_t n, uint64_t tail_mask) {
  MINTRI_BITSET_DISPATCH(FillOnes, n, dst, n, tail_mask);
}
inline bool IsZero(const uint64_t* a, size_t n) {
  MINTRI_BITSET_DISPATCH(IsZero, n, a, n);
}
inline bool Equal(const uint64_t* a, const uint64_t* b, size_t n) {
  MINTRI_BITSET_DISPATCH(Equal, n, a, b, n);
}
inline bool IsSubset(const uint64_t* a, const uint64_t* b, size_t n) {
  MINTRI_BITSET_DISPATCH(IsSubset, n, a, b, n);
}
inline bool Intersects(const uint64_t* a, const uint64_t* b, size_t n) {
  MINTRI_BITSET_DISPATCH(Intersects, n, a, b, n);
}
inline int Popcount(const uint64_t* a, size_t n) {
  MINTRI_BITSET_DISPATCH(Popcount, n, a, n);
}
inline int FirstSet(const uint64_t* a, size_t n) {
  MINTRI_BITSET_DISPATCH(FirstSet, n, a, n);
}
inline uint64_t BfsFusedStep(uint64_t* component, uint64_t* frontier,
                             uint64_t* neighborhood, uint64_t* reach,
                             const uint64_t* removed, size_t n) {
  MINTRI_BITSET_DISPATCH(BfsFusedStep, n, component, frontier, neighborhood,
                         reach, removed, n);
}

#undef MINTRI_BITSET_DISPATCH

}  // namespace bitset
}  // namespace mintri

#endif  // MINTRI_GRAPH_BITSET_KERNELS_H_
