#include "graph/vertex_set.h"

#include <cassert>

namespace mintri {

VertexSet VertexSet::All(int capacity) {
  VertexSet s(capacity);
  s.ResetAll(capacity);
  return s;
}

VertexSet VertexSet::Single(int capacity, int v) {
  VertexSet s(capacity);
  s.Insert(v);
  return s;
}

VertexSet VertexSet::Of(int capacity, std::initializer_list<int> vs) {
  VertexSet s(capacity);
  for (int v : vs) s.Insert(v);
  return s;
}

VertexSet VertexSet::FromVector(int capacity, const std::vector<int>& vs) {
  VertexSet s(capacity);
  for (int v : vs) s.Insert(v);
  return s;
}

void VertexSet::Reset(int capacity) {
  capacity_ = capacity;
  words_.assign((capacity + 63) / 64, 0);
  hash_ = kEmptyHash;
  hash_valid_ = true;
}

void VertexSet::ResetAll(int capacity) {
  capacity_ = capacity;
  words_.assign((capacity + 63) / 64, ~uint64_t{0});
  int extra = static_cast<int>(words_.size()) * 64 - capacity;
  if (extra > 0 && !words_.empty()) {
    words_.back() >>= extra;
  }
  hash_valid_ = false;
}

void VertexSet::AssignUnionOf(const VertexSet& a, const VertexSet& b) {
  assert(a.capacity_ == b.capacity_);
  capacity_ = a.capacity_;
  words_.resize(a.words_.size());
  for (size_t w = 0; w < words_.size(); ++w) {
    words_[w] = a.words_[w] | b.words_[w];
  }
  hash_valid_ = false;
}

void VertexSet::AssignComplementOf(const VertexSet& s) {
  capacity_ = s.capacity_;
  words_.resize(s.words_.size());
  for (size_t w = 0; w < words_.size(); ++w) words_[w] = ~s.words_[w];
  int extra = static_cast<int>(words_.size()) * 64 - capacity_;
  if (extra > 0 && !words_.empty()) {
    words_.back() &= ~uint64_t{0} >> extra;
  }
  hash_valid_ = false;
}

bool VertexSet::Empty() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

int VertexSet::Count() const {
  int c = 0;
  for (uint64_t w : words_) c += __builtin_popcountll(w);
  return c;
}

int VertexSet::First() const {
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return static_cast<int>(w * 64) + __builtin_ctzll(words_[w]);
    }
  }
  return -1;
}

bool VertexSet::IsSubsetOf(const VertexSet& other) const {
  assert(capacity_ == other.capacity_);
  for (size_t w = 0; w < words_.size(); ++w) {
    if ((words_[w] & ~other.words_[w]) != 0) return false;
  }
  return true;
}

bool VertexSet::Intersects(const VertexSet& other) const {
  assert(capacity_ == other.capacity_);
  for (size_t w = 0; w < words_.size(); ++w) {
    if ((words_[w] & other.words_[w]) != 0) return true;
  }
  return false;
}

void VertexSet::UnionWith(const VertexSet& other) {
  assert(capacity_ == other.capacity_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  hash_valid_ = false;
}

void VertexSet::IntersectWith(const VertexSet& other) {
  assert(capacity_ == other.capacity_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  hash_valid_ = false;
}

void VertexSet::MinusWith(const VertexSet& other) {
  assert(capacity_ == other.capacity_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] &= ~other.words_[w];
  hash_valid_ = false;
}

VertexSet VertexSet::Union(const VertexSet& other) const {
  VertexSet s = *this;
  s.UnionWith(other);
  return s;
}

VertexSet VertexSet::Intersect(const VertexSet& other) const {
  VertexSet s = *this;
  s.IntersectWith(other);
  return s;
}

VertexSet VertexSet::Minus(const VertexSet& other) const {
  VertexSet s = *this;
  s.MinusWith(other);
  return s;
}

VertexSet VertexSet::Complement() const {
  VertexSet s = All(capacity_);
  s.MinusWith(*this);
  return s;
}

std::vector<int> VertexSet::ToVector() const {
  std::vector<int> out;
  out.reserve(Count());
  ForEach([&](int v) { out.push_back(v); });
  return out;
}

std::string VertexSet::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEach([&](int v) {
    if (!first) out += ",";
    out += std::to_string(v);
    first = false;
  });
  out += "}";
  return out;
}

void VertexSet::RecomputeHash() const {
  uint64_t h = kEmptyHash;
  ForEach([&](int v) { h ^= MixVertex(v); });
  hash_ = h;
  hash_valid_ = true;
}

}  // namespace mintri
