#include "graph/vertex_set.h"

#include <cstdio>
#include <cstdlib>

namespace mintri {

VertexSet VertexSet::All(int capacity) {
  VertexSet s(capacity);
  s.ResetAll(capacity);
  return s;
}

VertexSet VertexSet::Single(int capacity, int v) {
  VertexSet s(capacity);
  s.Insert(v);
  return s;
}

VertexSet VertexSet::Of(int capacity, std::initializer_list<int> vs) {
  VertexSet s(capacity);
  for (int v : vs) s.Insert(v);
  return s;
}

VertexSet VertexSet::FromVector(int capacity, const std::vector<int>& vs) {
  VertexSet s(capacity);
  for (int v : vs) s.Insert(v);
  return s;
}

void VertexSet::Reset(int capacity) {
  capacity_ = capacity;
  words_.assign((capacity + 63) / 64, 0);
  hash_ = kEmptyHash;
  hash_valid_ = true;
}

void VertexSet::ResetAll(int capacity) {
  capacity_ = capacity;
  words_.resize((capacity + 63) / 64);
  bitset::FillOnes(words_.data(), words_.size(), bitset::TailMask(capacity));
  hash_valid_ = false;
}

void VertexSet::AssignUnionOf(const VertexSet& a, const VertexSet& b) {
  a.CheckSameCapacity(b, "AssignUnionOf");
  capacity_ = a.capacity_;
  words_.resize(a.words_.size());
  bitset::AssignUnion(words_.data(), a.words_.data(), b.words_.data(),
                      words_.size());
  hash_valid_ = false;
}

void VertexSet::AssignComplementOf(const VertexSet& s) {
  capacity_ = s.capacity_;
  words_.resize(s.words_.size());
  bitset::ComplementInto(words_.data(), s.words_.data(), words_.size(),
                         bitset::TailMask(capacity_));
  hash_valid_ = false;
}

bool VertexSet::Empty() const {
  return bitset::IsZero(words_.data(), words_.size());
}

int VertexSet::Count() const {
  return bitset::Popcount(words_.data(), words_.size());
}

int VertexSet::First() const {
  return bitset::FirstSet(words_.data(), words_.size());
}

bool VertexSet::IsSubsetOf(const VertexSet& other) const {
  CheckSameCapacity(other, "IsSubsetOf");
  return bitset::IsSubset(words_.data(), other.words_.data(), words_.size());
}

bool VertexSet::Intersects(const VertexSet& other) const {
  CheckSameCapacity(other, "Intersects");
  return bitset::Intersects(words_.data(), other.words_.data(),
                            words_.size());
}

void VertexSet::UnionWith(const VertexSet& other) {
  CheckSameCapacity(other, "UnionWith");
  bitset::UnionInto(words_.data(), other.words_.data(), words_.size());
  hash_valid_ = false;
}

void VertexSet::IntersectWith(const VertexSet& other) {
  CheckSameCapacity(other, "IntersectWith");
  bitset::IntersectInto(words_.data(), other.words_.data(), words_.size());
  hash_valid_ = false;
}

void VertexSet::MinusWith(const VertexSet& other) {
  CheckSameCapacity(other, "MinusWith");
  bitset::MinusInto(words_.data(), other.words_.data(), words_.size());
  hash_valid_ = false;
}

VertexSet VertexSet::Union(const VertexSet& other) const {
  VertexSet s = *this;
  s.UnionWith(other);
  return s;
}

VertexSet VertexSet::Intersect(const VertexSet& other) const {
  VertexSet s = *this;
  s.IntersectWith(other);
  return s;
}

VertexSet VertexSet::Minus(const VertexSet& other) const {
  VertexSet s = *this;
  s.MinusWith(other);
  return s;
}

VertexSet VertexSet::Complement() const {
  VertexSet s;
  s.AssignComplementOf(*this);
  return s;
}

std::vector<int> VertexSet::ToVector() const {
  std::vector<int> out;
  out.reserve(Count());
  ForEach([&](int v) { out.push_back(v); });
  return out;
}

std::string VertexSet::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEach([&](int v) {
    if (!first) out += ",";
    out += std::to_string(v);
    first = false;
  });
  out += "}";
  return out;
}

void VertexSet::RecomputeHash() const {
  uint64_t h = kEmptyHash;
  ForEach([&](int v) { h ^= MixVertex(v); });
  hash_ = h;
  hash_valid_ = true;
}

void VertexSet::CapacityMismatch(const VertexSet& other,
                                 const char* op) const {
  std::fprintf(stderr,
               "VertexSet capacity mismatch in %s: %d vs %d "
               "(binary operations require one shared universe)\n",
               op, capacity_, other.capacity_);
  std::abort();
}

}  // namespace mintri
