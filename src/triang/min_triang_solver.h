#ifndef MINTRI_TRIANG_MIN_TRIANG_SOLVER_H_
#define MINTRI_TRIANG_MIN_TRIANG_SOLVER_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cost/bag_cost.h"
#include "triang/context.h"
#include "triang/triangulation.h"
#include "util/range_min_tree.h"
#include "util/timer.h"

namespace mintri {

struct SolverOptions {
  /// Keep each block's candidate values in a range-min segment tree
  /// (util/range_min_tree.h) so constraint deltas and child-change cascades
  /// are O(log n) point updates + range-min queries instead of candidate-
  /// list scans. The tree's first-minimum tie-break matches the scan's
  /// "first strict improvement wins" rule, so both paths produce
  /// byte-identical tables, choices, and enumeration order — the list-scan
  /// path stays available (false) as the differential-testing baseline.
  bool use_candidate_index = true;
};

/// The stateful MinTriang⟨κ[I,X]⟩ engine behind MinTriang and RankedTriang:
/// the block DP of Figure 3 with its per-block candidate/value/choice tables
/// kept alive between calls, so that consecutive solves under *nearby*
/// constraint sets are incremental repairs instead of full passes.
///
/// Solve(I, X) computes a minimum-κ[I,X] minimal triangulation, where I/X
/// are inclusion/exclusion constraints given as sorted separator-id lists of
/// the context (Section 6.1). Between calls the solver diffs the constraint
/// sets and re-evaluates only the candidates a moved separator S can affect:
///
///  - an exclusion delta touches candidates with S ⊆ Ω (only there does the
///    κ[I,X] exclusion test read S);
///  - an inclusion delta touches candidates where S fits the block
///    (S ⊆ S∪C) but neither inside Ω nor inside a child block — the only
///    geometry where the inclusion test can flip;
///  - direction matters: an *added* constraint can only push values to ∞,
///    so affected finite candidates are set to ∞ without evaluation and ∞
///    candidates are left untouched; a *removed* constraint can only revive
///    currently-∞ candidates, so finite ones keep their cached value;
///  - a block whose DP value changed re-dirties exactly the (host, Ω)
///    candidates it appears under, cascading up the ascending block order.
///
/// With SolverOptions::use_candidate_index (the default) each block's
/// candidate values additionally live in the leaves of a range-min segment
/// tree: a constraint delta or child-change touches a candidate via an
/// O(log n) point update, and re-finding the block optimum is a range-min
/// query at the tree root instead of a scan over the whole candidate list —
/// the per-repair work drops from O(candidates of every touched block) to
/// O(touched candidates · log n). Child-change cascades walk exact
/// (host, candidate) reverse edges, so a changed block dirties only the
/// candidates it actually appears under. The tree's first-minimum
/// tie-break keeps the choice tables — and with them the ranked
/// enumeration order — byte-identical to the list-scan path.
///
/// The repaired tables are *identical* to a from-scratch DP (same values,
/// same first-minimum choice per block), so results are byte-for-byte equal
/// to MinTriang over ConstrainedCost — the differential test suite pins
/// this on randomized constraint walks, for both solver paths. This is what
/// makes the k constrained MinTriang calls per RankedTriang output cheap:
/// sibling Lawler–Murty partitions differ by O(1) separators, so each call
/// repairs a handful of blocks instead of re-filling every table (the same
/// amortization argument the paper uses against CKK for initialization,
/// applied to the per-result optimizer calls).
///
/// `ctx` and `cost` must outlive the solver. `cost` is the *base* cost κ;
/// the [I,X] wrapping is applied inside the solver via the same
/// CombineViolatesConstraints test as ConstrainedCost. (Passing a
/// ConstrainedCost as `cost` with empty I/X is also valid — that is exactly
/// what the MinTriang wrapper does.)
class MinTriangSolver {
 public:
  MinTriangSolver(const TriangulationContext& ctx, const BagCost& cost,
                  const SolverOptions& options = {});

  /// Minimum-κ[I,X] minimal triangulation of the context's graph, or
  /// std::nullopt when no finite-cost triangulation satisfies [I,X] (or the
  /// width bound of a bounded context). `include_ids` / `exclude_ids` are
  /// sorted, duplicate-free indices into ctx.minimal_separators(). The
  /// first call is a full DP pass; later calls repair incrementally.
  std::optional<Triangulation> Solve(const std::vector<int>& include_ids,
                                     const std::vector<int>& exclude_ids);

  /// Per-Solve wall-clock budget, polled inside the repair/full-pass
  /// candidate loops (a pathological cascade must not blow a per-query
  /// budget the surrounding enumerators honor). Nullptr (the default)
  /// disables polling; the pointee must outlive the solver or the next
  /// set_deadline call. When the deadline expires mid-solve the call
  /// returns std::nullopt, truncated() turns true for that call, and the
  /// half-repaired tables are discarded: the next Solve runs a full pass
  /// (constraint bookkeeping stays exact, so correctness is unaffected).
  void set_deadline(const Deadline* deadline) { deadline_ = deadline; }

  /// True when the *last* Solve call gave up on an expired deadline (its
  /// std::nullopt then means "out of time", not "infeasible").
  bool truncated() const { return truncated_; }

  /// Candidate evaluations so far (constraint short-circuits included) —
  /// the repair's breadth measure (a full pass evaluates every candidate).
  long long num_candidate_evals() const { return num_candidate_evals_; }

  /// Evaluations that reached the base cost's Combine — the expensive part
  /// of a candidate evaluation (constraint-violated and infeasible-child
  /// candidates short-circuit to ∞ before it).
  long long num_combine_calls() const { return num_combine_calls_; }

  /// Segment-tree point updates (indexed path only; 0 under the list scan).
  long long num_index_updates() const { return num_index_updates_; }

  /// Range-min queries that re-picked a block optimum (indexed path only).
  long long num_range_queries() const { return num_range_queries_; }

  /// Number of (block, Ω) candidates in the DP (root included).
  size_t num_candidates_total() const { return num_candidates_total_; }

  const SolverOptions& options() const { return options_; }

 private:
  // Node ids: 0..B-1 are the context's blocks (ascending order), B is the
  // root pseudo-block (S = ∅, S∪C = V, candidates = all usable PMCs).
  int Root() const { return static_cast<int>(ctx_.blocks().size()); }
  const std::vector<int>& Candidates(int node) const {
    return node == Root() ? ctx_.root_candidates()
                          : ctx_.blocks()[node].candidate_pmcs;
  }
  const std::vector<std::vector<int>>& Children(int node) const {
    return node == Root() ? ctx_.root_children()
                          : ctx_.blocks()[node].children;
  }
  const VertexSet& NodeSeparator(int node) const {
    return node == Root() ? empty_separator_
                          : ctx_.blocks()[node].separator;
  }
  const VertexSet& NodeVertices(int node) const {
    return node == Root() ? all_vertices_ : ctx_.blocks()[node].vertices;
  }

  // The candidates a constraint over separator sep_id can affect, split by
  // role: `exclusion` lists (node, k) with S ⊆ Ω; `inclusion` lists
  // (node, k) where S fits the block but is neither inside Ω nor inside a
  // child block. Static per context, computed on first use and cached, so
  // constraint deltas walk exact lists instead of scanning the tables.
  struct SepGeometry {
    std::vector<std::pair<int, int>> exclusion;
    std::vector<std::pair<int, int>> inclusion;
  };
  const SepGeometry& GeometryFor(int sep_id);

  // Updates blocked counts for the epoch's constraint delta, forcing
  // newly-blocked finite candidates to ∞ and marking candidates whose last
  // blocker went away dirty for re-evaluation.
  void ApplyConstraintDelta(const std::vector<int>& added_exc,
                            const std::vector<int>& added_inc,
                            const std::vector<int>& removed_exc,
                            const std::vector<int>& removed_inc, bool full);

  // Stamps (node, k) dirty for this epoch (idempotent) and, on the indexed
  // path, appends it to the node's pending re-evaluation list.
  void MarkDirty(int node, int k);

  // Deadline poll (rate-limited to one clock read per 64 ticks). Returns
  // true — and latches truncated_ — once the budget is gone.
  bool PollDeadline();

  // The table-repair forward passes (root last): the historical list-scan
  // pass and the segment-tree-indexed pass. Both leave identical
  // value_/choice_ tables; they differ only in how dirty candidates are
  // found and how each block's optimum is re-picked.
  void RepairScan(bool full);
  void RepairIndexed(bool full);

  // Evaluates candidate k of `node` under the current constraints (∞ when a
  // child is infeasible or [I,X] is violated at this bag).
  CostValue EvalCandidate(int node, size_t k);

  // Builds the Triangulation from the solved tables (Appendix A: one bag
  // per block, rooted at Ω(G)).
  Triangulation Reconstruct();

  const TriangulationContext& ctx_;
  const BagCost& cost_;
  SolverOptions options_;
  VertexSet empty_separator_;
  VertexSet all_vertices_;

  // Builds hosts_ / host_cands_, deferred to the first incremental solve (a
  // one-shot full pass never needs the reverse edges).
  void BuildHosts();

  // DP tables, persisted across Solve calls.
  std::vector<std::vector<CostValue>> cand_values_;  // per node, per cand
  std::vector<CostValue> value_;
  std::vector<int> choice_;
  // Per-node range-min tree over cand_values_ (indexed path; built by the
  // first full pass, point-updated by repairs).
  std::vector<RangeMinTree> cand_trees_;
  // hosts_[b]: nodes with a candidate having block b among its children —
  // the reverse DP edges the scan-path repair cascades along.
  std::vector<std::vector<int>> hosts_;
  // host_cands_[b]: the exact (host node, candidate k) pairs with block b
  // among candidate k's children — the candidate-granular reverse edges the
  // indexed repair dirties directly (no per-candidate child scan).
  std::vector<std::vector<std::pair<int, int>>> host_cands_;
  bool hosts_built_ = false;

  // Current constraint state (sorted ids + materialized vertex sets).
  std::vector<int> include_ids_;
  std::vector<int> exclude_ids_;
  std::vector<VertexSet> include_sets_;
  std::vector<VertexSet> exclude_sets_;
  bool solved_once_ = false;

  // blocked[k]: how many current constraints candidate k violates —
  // exact under add/remove deltas because the per-(S, candidate) geometry
  // is static; > 0 is equivalent to CombineViolatesConstraints.
  std::vector<std::vector<uint32_t>> cand_blocked_;
  // Lazily-built geometry cache, one entry per separator ever constrained
  // (memory is bounded by the separators the enumeration actually touches).
  std::unordered_map<int, SepGeometry> sep_geometry_;

  // Epoch-stamped dirtiness (a stamp equal to epoch_ means "this solve").
  uint32_t epoch_ = 0;
  std::vector<std::vector<uint32_t>> cand_dirty_;  // per node, per cand
  std::vector<std::vector<int>> dirty_list_;  // indexed path: pending evals
  std::vector<uint32_t> node_seeded_;    // some candidate became dirty
  std::vector<uint32_t> node_forced_;    // some candidate was forced to ∞
  std::vector<uint32_t> node_touched_;   // some child's value changed
  std::vector<uint32_t> value_changed_;  // this node's value changed

  const Deadline* deadline_ = nullptr;
  bool truncated_ = false;
  uint32_t poll_tick_ = 0;

  // Reused scratch.
  std::vector<const VertexSet*> child_blocks_buf_;
  std::vector<CostValue> child_costs_buf_;
  // Reconstruct() scratch: the DFS stack and the adhesion list are members
  // so the per-result reconstructions of a ranked enumeration (hundreds of
  // Solve calls on one solver) stop re-growing them from scratch — part of
  // the same no-hot-loop-allocations policy as the buffers above. The sets
  // *returned* to the caller still get fresh storage (the Triangulation
  // owns its data); only the scratch is recycled.
  struct ReconstructFrame {
    int block_id;
    int parent_bag;
  };
  std::vector<ReconstructFrame> reconstruct_stack_;
  std::vector<VertexSet> reconstruct_seps_;

  long long num_candidate_evals_ = 0;
  long long num_combine_calls_ = 0;
  long long num_index_updates_ = 0;
  long long num_range_queries_ = 0;
  size_t num_candidates_total_ = 0;
};

}  // namespace mintri

#endif  // MINTRI_TRIANG_MIN_TRIANG_SOLVER_H_
