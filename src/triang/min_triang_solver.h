#ifndef MINTRI_TRIANG_MIN_TRIANG_SOLVER_H_
#define MINTRI_TRIANG_MIN_TRIANG_SOLVER_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cost/bag_cost.h"
#include "triang/context.h"
#include "triang/triangulation.h"

namespace mintri {

/// The stateful MinTriang⟨κ[I,X]⟩ engine behind MinTriang and RankedTriang:
/// the block DP of Figure 3 with its per-block candidate/value/choice tables
/// kept alive between calls, so that consecutive solves under *nearby*
/// constraint sets are incremental repairs instead of full passes.
///
/// Solve(I, X) computes a minimum-κ[I,X] minimal triangulation, where I/X
/// are inclusion/exclusion constraints given as sorted separator-id lists of
/// the context (Section 6.1). Between calls the solver diffs the constraint
/// sets and re-evaluates only the candidates a moved separator S can affect:
///
///  - an exclusion delta touches candidates with S ⊆ Ω (only there does the
///    κ[I,X] exclusion test read S);
///  - an inclusion delta touches candidates where S fits the block
///    (S ⊆ S∪C) but neither inside Ω nor inside a child block — the only
///    geometry where the inclusion test can flip;
///  - direction matters: an *added* constraint can only push values to ∞,
///    so affected finite candidates are set to ∞ without evaluation and ∞
///    candidates are left untouched; a *removed* constraint can only revive
///    currently-∞ candidates, so finite ones keep their cached value;
///  - a block whose DP value changed re-dirties exactly the (host, Ω)
///    candidates it appears under, cascading up the ascending block order.
///
/// The repaired tables are *identical* to a from-scratch DP (same values,
/// same first-minimum choice per block), so results are byte-for-byte equal
/// to MinTriang over ConstrainedCost — the differential test suite pins
/// this on randomized constraint walks. This is what makes the k
/// constrained MinTriang calls per RankedTriang output cheap: sibling
/// Lawler–Murty partitions differ by O(1) separators, so each call repairs
/// a handful of blocks instead of re-filling every table (the same
/// amortization argument the paper uses against CKK for initialization,
/// applied to the per-result optimizer calls).
///
/// `ctx` and `cost` must outlive the solver. `cost` is the *base* cost κ;
/// the [I,X] wrapping is applied inside the solver via the same
/// CombineViolatesConstraints test as ConstrainedCost. (Passing a
/// ConstrainedCost as `cost` with empty I/X is also valid — that is exactly
/// what the MinTriang wrapper does.)
class MinTriangSolver {
 public:
  MinTriangSolver(const TriangulationContext& ctx, const BagCost& cost);

  /// Minimum-κ[I,X] minimal triangulation of the context's graph, or
  /// std::nullopt when no finite-cost triangulation satisfies [I,X] (or the
  /// width bound of a bounded context). `include_ids` / `exclude_ids` are
  /// sorted, duplicate-free indices into ctx.minimal_separators(). The
  /// first call is a full DP pass; later calls repair incrementally.
  std::optional<Triangulation> Solve(const std::vector<int>& include_ids,
                                     const std::vector<int>& exclude_ids);

  /// Candidate evaluations so far (constraint short-circuits included) —
  /// the repair's breadth measure (a full pass evaluates every candidate).
  long long num_candidate_evals() const { return num_candidate_evals_; }

  /// Evaluations that reached the base cost's Combine — the expensive part
  /// of a candidate evaluation (constraint-violated and infeasible-child
  /// candidates short-circuit to ∞ before it).
  long long num_combine_calls() const { return num_combine_calls_; }

  /// Number of (block, Ω) candidates in the DP (root included).
  size_t num_candidates_total() const { return num_candidates_total_; }

 private:
  // Node ids: 0..B-1 are the context's blocks (ascending order), B is the
  // root pseudo-block (S = ∅, S∪C = V, candidates = all usable PMCs).
  int Root() const { return static_cast<int>(ctx_.blocks().size()); }
  const std::vector<int>& Candidates(int node) const {
    return node == Root() ? ctx_.root_candidates()
                          : ctx_.blocks()[node].candidate_pmcs;
  }
  const std::vector<std::vector<int>>& Children(int node) const {
    return node == Root() ? ctx_.root_children()
                          : ctx_.blocks()[node].children;
  }
  const VertexSet& NodeSeparator(int node) const {
    return node == Root() ? empty_separator_
                          : ctx_.blocks()[node].separator;
  }
  const VertexSet& NodeVertices(int node) const {
    return node == Root() ? all_vertices_ : ctx_.blocks()[node].vertices;
  }

  // The candidates a constraint over separator sep_id can affect, split by
  // role: `exclusion` lists (node, k) with S ⊆ Ω; `inclusion` lists
  // (node, k) where S fits the block but is neither inside Ω nor inside a
  // child block. Static per context, computed on first use and cached, so
  // constraint deltas walk exact lists instead of scanning the tables.
  struct SepGeometry {
    std::vector<std::pair<int, int>> exclusion;
    std::vector<std::pair<int, int>> inclusion;
  };
  const SepGeometry& GeometryFor(int sep_id);

  // Updates blocked counts for the epoch's constraint delta, forcing
  // newly-blocked finite candidates to ∞ and marking candidates whose last
  // blocker went away dirty for re-evaluation.
  void ApplyConstraintDelta(const std::vector<int>& added_exc,
                            const std::vector<int>& added_inc,
                            const std::vector<int>& removed_exc,
                            const std::vector<int>& removed_inc, bool full);

  // Evaluates candidate k of `node` under the current constraints (∞ when a
  // child is infeasible or [I,X] is violated at this bag).
  CostValue EvalCandidate(int node, size_t k);

  // Builds the Triangulation from the solved tables (Appendix A: one bag
  // per block, rooted at Ω(G)).
  Triangulation Reconstruct();

  const TriangulationContext& ctx_;
  const BagCost& cost_;
  VertexSet empty_separator_;
  VertexSet all_vertices_;

  // Builds hosts_, deferred to the first incremental solve (a one-shot
  // full pass never needs the reverse edges).
  void BuildHosts();

  // DP tables, persisted across Solve calls.
  std::vector<std::vector<CostValue>> cand_values_;  // per node, per cand
  std::vector<CostValue> value_;
  std::vector<int> choice_;
  // hosts_[b]: nodes with a candidate having block b among its children —
  // the reverse DP edges the repair cascades along.
  std::vector<std::vector<int>> hosts_;
  bool hosts_built_ = false;

  // Current constraint state (sorted ids + materialized vertex sets).
  std::vector<int> include_ids_;
  std::vector<int> exclude_ids_;
  std::vector<VertexSet> include_sets_;
  std::vector<VertexSet> exclude_sets_;
  bool solved_once_ = false;

  // blocked[k]: how many current constraints candidate k violates —
  // exact under add/remove deltas because the per-(S, candidate) geometry
  // is static; > 0 is equivalent to CombineViolatesConstraints.
  std::vector<std::vector<uint32_t>> cand_blocked_;
  // Lazily-built geometry cache, one entry per separator ever constrained
  // (memory is bounded by the separators the enumeration actually touches).
  std::unordered_map<int, SepGeometry> sep_geometry_;

  // Epoch-stamped dirtiness (a stamp equal to epoch_ means "this solve").
  uint32_t epoch_ = 0;
  std::vector<std::vector<uint32_t>> cand_dirty_;  // per node, per cand
  std::vector<uint32_t> node_seeded_;    // some candidate became dirty
  std::vector<uint32_t> node_forced_;    // some candidate was forced to ∞
  std::vector<uint32_t> node_touched_;   // some child's value changed
  std::vector<uint32_t> value_changed_;  // this node's value changed

  // Reused scratch.
  std::vector<const VertexSet*> child_blocks_buf_;
  std::vector<CostValue> child_costs_buf_;

  long long num_candidate_evals_ = 0;
  long long num_combine_calls_ = 0;
  size_t num_candidates_total_ = 0;
};

}  // namespace mintri

#endif  // MINTRI_TRIANG_MIN_TRIANG_SOLVER_H_
