#include "triang/triangulation.h"

#include <algorithm>
#include <set>

#include "chordal/clique_tree.h"

namespace mintri {

int Triangulation::Width() const {
  int w = -1;
  for (const VertexSet& b : bags) w = std::max(w, b.Count() - 1);
  return w;
}

long long Triangulation::FillIn(const Graph& original) const {
  return filled.NumEdges() - original.NumEdges();
}

std::vector<std::pair<int, int>> Triangulation::FillEdgesSorted(
    const Graph& original) const {
  std::vector<std::pair<int, int>> fill;
  for (const auto& [u, v] : filled.Edges()) {
    if (!original.HasEdge(u, v)) fill.emplace_back(u, v);
  }
  std::sort(fill.begin(), fill.end());
  return fill;
}

Triangulation TriangulationFromChordal(const Graph& original, Graph h,
                                       CostValue cost) {
  (void)original;  // kept in the signature to document the contract
  Triangulation t;
  CliqueTree tree = BuildCliqueTree(h);
  t.filled = std::move(h);
  t.bags = std::move(tree.cliques);
  t.cost = cost;

  // Orient the clique tree as parent pointers rooted at bag 0.
  const int k = static_cast<int>(t.bags.size());
  std::vector<std::vector<int>> adj(k);
  for (const auto& [i, j] : tree.edges) {
    adj[i].push_back(j);
    adj[j].push_back(i);
  }
  t.parent.assign(k, -2);
  std::vector<int> stack;
  for (int root = 0; root < k; ++root) {
    if (t.parent[root] != -2) continue;
    t.parent[root] = -1;
    stack.push_back(root);
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      for (int v : adj[u]) {
        if (t.parent[v] == -2) {
          t.parent[v] = u;
          stack.push_back(v);
        }
      }
    }
  }

  std::set<VertexSet> seps;
  for (int i = 0; i < k; ++i) {
    if (t.parent[i] < 0) continue;
    VertexSet adhesion = t.bags[i].Intersect(t.bags[t.parent[i]]);
    if (!adhesion.Empty()) seps.insert(std::move(adhesion));
  }
  t.separators.assign(seps.begin(), seps.end());
  return t;
}

}  // namespace mintri
