#ifndef MINTRI_TRIANG_MIN_TRIANG_H_
#define MINTRI_TRIANG_MIN_TRIANG_H_

#include <optional>

#include "cost/bag_cost.h"
#include "triang/context.h"
#include "triang/triangulation.h"

namespace mintri {

/// MinTriang⟨κ⟩(G) — Figure 3 of the paper. Computes a minimum-κ minimal
/// triangulation of the context's graph by dynamic programming over the full
/// blocks in ascending cardinality (Theorem 5.5), choosing for each block
/// (S, C) the PMC Ω with S ⊂ Ω ⊆ S∪C that minimizes the split-monotone bag
/// cost of H(S,C) = ∪_i H(S_i,C_i) ∪ K_Ω.
///
/// Returns std::nullopt when no triangulation of finite cost exists — this
/// happens only under constraints (ConstrainedCost, Section 6.1) or a width
/// bound (bounded context, Section 5.3); for an unbounded context and a
/// finite cost function a result always exists.
///
/// When the context was built with a width bound b this *is* MinTriangB
/// ⟨b, κ⟩ (Theorem 5.6): the context only materializes separators of size
/// ≤ b and PMCs of size ≤ b+1.
///
/// This is a thin full-solve wrapper over MinTriangSolver
/// (triang/min_triang_solver.h); callers that issue many solves under
/// shifting [I,X] constraints (RankedTriang) should hold a solver instead
/// and let it repair the tables incrementally.
std::optional<Triangulation> MinTriang(const TriangulationContext& ctx,
                                       const BagCost& cost);

}  // namespace mintri

#endif  // MINTRI_TRIANG_MIN_TRIANG_H_
