#include "triang/min_triang_solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "cost/constrained_cost.h"

namespace mintri {

namespace {

// a \ b for sorted id vectors.
void SetDiffInto(const std::vector<int>& a, const std::vector<int>& b,
                 std::vector<int>* out) {
  out->clear();
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(*out));
}

}  // namespace

MinTriangSolver::MinTriangSolver(const TriangulationContext& ctx,
                                 const BagCost& cost,
                                 const SolverOptions& options)
    : ctx_(ctx),
      cost_(cost),
      options_(options),
      empty_separator_(ctx.graph().NumVertices()),
      all_vertices_(ctx.graph().Vertices()) {
  const int num_nodes = Root() + 1;
  cand_values_.resize(num_nodes);
  cand_dirty_.resize(num_nodes);
  cand_blocked_.resize(num_nodes);
  if (options_.use_candidate_index) {
    cand_trees_.resize(num_nodes);
    dirty_list_.resize(num_nodes);
  }
  for (int node = 0; node < num_nodes; ++node) {
    const size_t k = Candidates(node).size();
    cand_values_[node].assign(k, kInfiniteCost);
    cand_dirty_[node].assign(k, 0);
    cand_blocked_[node].assign(k, 0);
    num_candidates_total_ += k;
  }
  value_.assign(num_nodes, kInfiniteCost);
  choice_.assign(num_nodes, -1);
  node_seeded_.assign(num_nodes, 0);
  node_forced_.assign(num_nodes, 0);
  node_touched_.assign(num_nodes, 0);
  value_changed_.assign(num_nodes, 0);
}

void MinTriangSolver::BuildHosts() {
  hosts_built_ = true;
  const int num_nodes = Root() + 1;
  if (options_.use_candidate_index) {
    // Candidate-granular reverse edges: when block b's value changes, the
    // repair dirties exactly the (host, k) candidates that combine over b —
    // a point update each — instead of rescanning every candidate of every
    // host (hosts_ stays unbuilt; the indexed pass never walks it).
    host_cands_.resize(ctx_.blocks().size());
    for (int node = 0; node < num_nodes; ++node) {
      const std::vector<std::vector<int>>& children = Children(node);
      for (size_t k = 0; k < children.size(); ++k) {
        for (int cid : children[k]) {
          host_cands_[cid].push_back({node, static_cast<int>(k)});
        }
      }
    }
    return;
  }
  hosts_.resize(ctx_.blocks().size());
  for (int node = 0; node < num_nodes; ++node) {
    for (const std::vector<int>& kids : Children(node)) {
      for (int cid : kids) hosts_[cid].push_back(node);
    }
  }
  for (std::vector<int>& h : hosts_) {
    std::sort(h.begin(), h.end());
    h.erase(std::unique(h.begin(), h.end()), h.end());
  }
}

const MinTriangSolver::SepGeometry& MinTriangSolver::GeometryFor(int sep_id) {
  auto it = sep_geometry_.find(sep_id);
  if (it != sep_geometry_.end()) return it->second;
  // One scan over every candidate, done once per separator ever used in a
  // constraint; afterwards every delta for this separator walks the exact
  // affected lists with no subset tests at all.
  SepGeometry geo;
  const VertexSet& s = ctx_.minimal_separators()[sep_id];
  const int root = Root();
  for (int node = 0; node <= root; ++node) {
    if (!s.IsSubsetOf(NodeVertices(node))) continue;
    const std::vector<int>& cands = Candidates(node);
    const std::vector<std::vector<int>>& children = Children(node);
    for (size_t k = 0; k < cands.size(); ++k) {
      if (s.IsSubsetOf(ctx_.pmcs()[cands[k]])) {
        // Exclusion geometry: the κ[I,X] exclusion test reads S here.
        geo.exclusion.push_back({node, static_cast<int>(k)});
      } else {
        // Inclusion geometry: S fits the block but is neither inside Ω nor
        // inside a child block — the only place the inclusion test flips.
        bool inside_child = false;
        for (int cid : children[k]) {
          if (s.IsSubsetOf(ctx_.blocks()[cid].vertices)) {
            inside_child = true;
            break;
          }
        }
        if (!inside_child) {
          geo.inclusion.push_back({node, static_cast<int>(k)});
        }
      }
    }
  }
  geo.exclusion.shrink_to_fit();
  geo.inclusion.shrink_to_fit();
  return sep_geometry_.emplace(sep_id, std::move(geo)).first->second;
}

CostValue MinTriangSolver::EvalCandidate(int node, size_t k) {
  ++num_candidate_evals_;
  child_blocks_buf_.clear();
  child_costs_buf_.clear();
  for (int cid : Children(node)[k]) {
    CostValue v = value_[cid];
    if (std::isinf(v)) return kInfiniteCost;
    child_blocks_buf_.push_back(&ctx_.blocks()[cid].vertices);
    child_costs_buf_.push_back(v);
  }
  CombineContext cc{ctx_.graph(),
                    ctx_.pmcs()[Candidates(node)[k]],
                    NodeSeparator(node),
                    NodeVertices(node),
                    child_blocks_buf_,
                    child_costs_buf_};
  if (CombineViolatesConstraints(cc, include_sets_, exclude_sets_)) {
    return kInfiniteCost;
  }
  ++num_combine_calls_;
  return cost_.Combine(cc);
}

void MinTriangSolver::MarkDirty(int node, int k) {
  if (cand_dirty_[node][k] == epoch_) return;
  cand_dirty_[node][k] = epoch_;
  node_seeded_[node] = epoch_;
  if (options_.use_candidate_index) dirty_list_[node].push_back(k);
}

bool MinTriangSolver::PollDeadline() {
  if (truncated_) return true;
  if (deadline_ == nullptr) return false;
  if ((++poll_tick_ & 63u) == 0 && deadline_->Expired()) truncated_ = true;
  return truncated_;
}

void MinTriangSolver::ApplyConstraintDelta(
    const std::vector<int>& added_exc, const std::vector<int>& added_inc,
    const std::vector<int>& removed_exc, const std::vector<int>& removed_inc,
    bool full) {
  // Additions can only push candidate values to ∞: a newly-blocked finite
  // candidate drops to ∞ with no evaluation, an already-∞ one stays put.
  // blocked[k] — how many current constraints candidate k violates — stays
  // exact under adds/removes because each (separator, candidate) geometry
  // is static, and blocked[k] > 0 ⟺ CombineViolatesConstraints there.
  const bool indexed = options_.use_candidate_index;
  const auto add = [&](const std::vector<std::pair<int, int>>& affected) {
    for (const auto& [node, k] : affected) {
      if (++cand_blocked_[node][k] == 1 && !full &&
          !std::isinf(cand_values_[node][k])) {
        cand_values_[node][k] = kInfiniteCost;
        if (indexed) {
          cand_trees_[node].Update(k, kInfiniteCost);
          ++num_index_updates_;
        }
        node_forced_[node] = epoch_;
      }
    }
  };
  // Removals can only revive a candidate, and only once its *last* blocking
  // constraint goes away; until then no evaluation is needed. (On a full
  // pass only the counters need maintaining — everything is re-evaluated
  // anyway, so nothing is marked.)
  const auto remove = [&](const std::vector<std::pair<int, int>>& affected) {
    for (const auto& [node, k] : affected) {
      if (--cand_blocked_[node][k] == 0 && !full) MarkDirty(node, k);
    }
  };
  for (int id : added_exc) add(GeometryFor(id).exclusion);
  for (int id : added_inc) add(GeometryFor(id).inclusion);
  for (int id : removed_exc) remove(GeometryFor(id).exclusion);
  for (int id : removed_inc) remove(GeometryFor(id).inclusion);
}

void MinTriangSolver::RepairScan(bool full) {
  const int root = Root();
  // Blocks are sorted ascending by |S ∪ C| and every child is strictly
  // smaller than its host, so one forward pass (root last) sees every
  // child's repaired value before any host that depends on it.
  for (int node = 0; node <= root; ++node) {
    if (PollDeadline()) return;
    const bool seeded = node_seeded_[node] == epoch_;
    const bool forced = node_forced_[node] == epoch_;
    const bool child_changed = !full && node_touched_[node] == epoch_;
    if (!full && !seeded && !forced && !child_changed) continue;

    const std::vector<int>& cands = Candidates(node);
    if (cands.empty()) continue;
    const std::vector<std::vector<int>>& children = Children(node);
    std::vector<CostValue>& values = cand_values_[node];
    std::vector<uint32_t>& dirty = cand_dirty_[node];
    std::vector<uint32_t>& blocked = cand_blocked_[node];

    bool recomputed = forced;
    for (size_t k = 0; k < cands.size(); ++k) {
      bool d = full || (seeded && dirty[k] == epoch_);
      if (!d && child_changed) {
        for (int cid : children[k]) {
          if (value_changed_[cid] == epoch_) {
            d = true;
            break;
          }
        }
      }
      if (!d) continue;
      // A blocked candidate is ∞ by constraint violation alone — no need
      // to evaluate (EvalCandidate would reach the same conclusion).
      values[k] = blocked[k] > 0 ? kInfiniteCost : EvalCandidate(node, k);
      recomputed = true;
      if (PollDeadline()) return;
    }
    if (!recomputed) continue;

    // Re-pick the node optimum exactly as the full DP does: the first
    // strict improvement wins, so ties resolve to the smallest k.
    CostValue best = kInfiniteCost;
    int best_k = -1;
    for (size_t k = 0; k < cands.size(); ++k) {
      if (values[k] < best) {
        best = values[k];
        best_k = static_cast<int>(k);
      }
    }
    choice_[node] = best_k;
    if (best != value_[node]) {
      value_[node] = best;
      value_changed_[node] = epoch_;
      // On a full pass everything is evaluated anyway (and hosts_ may not
      // be built yet), so the cascade marking is only for repairs.
      if (!full && node != root) {
        for (int host : hosts_[node]) node_touched_[host] = epoch_;
      }
    }
  }
}

void MinTriangSolver::RepairIndexed(bool full) {
  const int root = Root();
  // Same forward order as RepairScan; a child is always processed before
  // any (host, k) candidate it appears under, so MarkDirty from the cascade
  // only ever targets nodes still ahead of the sweep.
  for (int node = 0; node <= root; ++node) {
    if (PollDeadline()) return;
    const bool seeded = node_seeded_[node] == epoch_;
    const bool forced = node_forced_[node] == epoch_;
    if (!full && !seeded && !forced) continue;
    if (full) dirty_list_[node].clear();  // drop marks a truncated solve left

    const std::vector<int>& cands = Candidates(node);
    if (cands.empty()) continue;
    std::vector<CostValue>& values = cand_values_[node];
    std::vector<uint32_t>& blocked = cand_blocked_[node];

    if (full) {
      for (size_t k = 0; k < cands.size(); ++k) {
        values[k] = blocked[k] > 0 ? kInfiniteCost : EvalCandidate(node, k);
        if (PollDeadline()) return;
      }
      cand_trees_[node].Assign(values);
    } else {
      // Only the candidates a constraint delta revived or a changed child
      // dirtied — each one an O(log n) point update; no list scan.
      for (int k : dirty_list_[node]) {
        values[k] = blocked[k] > 0 ? kInfiniteCost : EvalCandidate(node, k);
        cand_trees_[node].Update(k, values[k]);
        ++num_index_updates_;
        if (PollDeadline()) return;
      }
      dirty_list_[node].clear();
    }

    // Re-pick the node optimum with one range-min query. The tree's
    // first-minimum tie-break is the scan's "first strict improvement
    // wins", so choice_ stays byte-identical across solver paths.
    ++num_range_queries_;
    const int min_k = cand_trees_[node].MinIndex();
    const bool feasible = min_k >= 0 && !std::isinf(values[min_k]);
    const CostValue best = feasible ? values[min_k] : kInfiniteCost;
    choice_[node] = feasible ? min_k : -1;
    if (best != value_[node]) {
      value_[node] = best;
      if (!full && node != root) {
        for (const auto& [host, hk] : host_cands_[node]) MarkDirty(host, hk);
      }
    }
  }
}

std::optional<Triangulation> MinTriangSolver::Solve(
    const std::vector<int>& include_ids, const std::vector<int>& exclude_ids) {
  assert(std::is_sorted(include_ids.begin(), include_ids.end()));
  assert(std::is_sorted(exclude_ids.begin(), exclude_ids.end()));
  truncated_ = false;
  const std::vector<VertexSet>& separators = ctx_.minimal_separators();

  // Separators that moved in or out of I / X since the last solve.
  std::vector<int> inc_added, inc_removed, exc_added, exc_removed;
  SetDiffInto(include_ids, include_ids_, &inc_added);
  SetDiffInto(include_ids_, include_ids, &inc_removed);
  SetDiffInto(exclude_ids, exclude_ids_, &exc_added);
  SetDiffInto(exclude_ids_, exclude_ids, &exc_removed);
  const bool any_delta = !inc_added.empty() || !inc_removed.empty() ||
                         !exc_added.empty() || !exc_removed.empty();

  const bool full = !solved_once_;
  // A deadline that is already gone: refuse before committing the new
  // constraint state or touching any table, so the cached ids, blocked
  // counters, and values all stay mutually consistent for the next attempt.
  if ((full || any_delta) && deadline_ != nullptr && deadline_->Expired()) {
    truncated_ = true;
    return std::nullopt;
  }
  include_ids_ = include_ids;
  exclude_ids_ = exclude_ids;
  // Element-wise copy-assign instead of clear+push_back: assignment reuses
  // each slot's word buffer, so re-materializing the constraint sets on
  // every Solve of a ranked enumeration allocates nothing in steady state.
  include_sets_.resize(include_ids_.size());
  exclude_sets_.resize(exclude_ids_.size());
  for (size_t i = 0; i < include_ids_.size(); ++i) {
    include_sets_[i] = separators[include_ids_[i]];
  }
  for (size_t i = 0; i < exclude_ids_.size(); ++i) {
    exclude_sets_[i] = separators[exclude_ids_[i]];
  }

  if (full || any_delta) {
    // The reverse DP edges are only needed once repairs start cascading, so
    // the one-shot MinTriang wrapper (a single full pass) never builds them.
    if (!full && !hosts_built_) BuildHosts();
    ++epoch_;
    ApplyConstraintDelta(exc_added, inc_added, exc_removed, inc_removed, full);
    if (options_.use_candidate_index) {
      RepairIndexed(full);
    } else {
      RepairScan(full);
    }
    if (truncated_) {
      // The sweep stopped midway: value_/choice_ may mix old and new
      // epochs. The blocked counters and cached candidate values are still
      // exact for the *committed* constraint state, so forcing the next
      // Solve through a full pass restores every table.
      solved_once_ = false;
      return std::nullopt;
    }
    solved_once_ = true;
  }

  if (choice_[Root()] < 0 || std::isinf(value_[Root()])) return std::nullopt;
  return Reconstruct();
}

Triangulation MinTriangSolver::Reconstruct() {
  const Graph& g = ctx_.graph();
  const std::vector<TriangulationContext::BlockEntry>& blocks = ctx_.blocks();
  Triangulation t;
  t.cost = value_[Root()];

  std::vector<ReconstructFrame>& stack = reconstruct_stack_;
  stack.clear();
  const int root_k = choice_[Root()];
  t.bags.push_back(ctx_.pmcs()[ctx_.root_candidates()[root_k]]);
  t.parent.push_back(-1);
  for (int cid : ctx_.root_children()[root_k]) stack.push_back({cid, 0});
  std::vector<VertexSet>& seps = reconstruct_seps_;
  seps.clear();
  while (!stack.empty()) {
    ReconstructFrame f = stack.back();
    stack.pop_back();
    const TriangulationContext::BlockEntry& block = blocks[f.block_id];
    int k = choice_[f.block_id];
    assert(k >= 0);
    int bag_index = static_cast<int>(t.bags.size());
    t.bags.push_back(ctx_.pmcs()[block.candidate_pmcs[k]]);
    t.parent.push_back(f.parent_bag);
    seps.push_back(block.separator);
    for (int cid : block.children[k]) stack.push_back({cid, bag_index});
  }
  // Distinct adhesions, in the canonical (VertexSet <) order the previous
  // std::set-based reconstruction produced — without the per-node churn.
  // Copied (not moved) out of the scratch so its element buffers survive
  // for the next Solve; the unique-copy loop replaces sort+unique+erase so
  // no scratch element is destroyed either.
  std::sort(seps.begin(), seps.end());
  t.separators.reserve(seps.size());
  for (size_t i = 0; i < seps.size(); ++i) {
    if (i == 0 || seps[i] != seps[i - 1]) t.separators.push_back(seps[i]);
  }

  t.filled = g;
  for (const VertexSet& bag : t.bags) t.filled.SaturateSet(bag);
  return t;
}

}  // namespace mintri
