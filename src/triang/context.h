#ifndef MINTRI_TRIANG_CONTEXT_H_
#define MINTRI_TRIANG_CONTEXT_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "pmc/potential_maximal_cliques.h"
#include "separators/minimal_separators.h"

namespace mintri {

struct ContextOptions {
  /// Limits for the minimal-separator enumeration ("one minute" in Fig. 5).
  EnumerationLimits separator_limits;
  /// Limits for the PMC enumeration ("30 minutes" in Fig. 5).
  EnumerationLimits pmc_limits;
  /// If >= 0, build the bounded-width context of MinTriangB (Section 5.3):
  /// only minimal separators of size <= width_bound and PMCs of size
  /// <= width_bound + 1 are computed and used.
  int width_bound = -1;
};

/// The "initialization step" of the paper (Section 7.1): the minimal
/// separators, potential maximal cliques, full blocks and — precomputed once
/// so that every later MinTriang call is a pure table-filling pass — the
/// candidate PMCs of each full block and the child blocks of every
/// (block, Ω) pair. RankedTriang shares one context across all of its
/// MinTriang invocations, exactly as described in Section 7.1.
class TriangulationContext {
 public:
  /// A full block (S, C) plus its DP wiring.
  struct BlockEntry {
    VertexSet separator;  // S
    VertexSet component;  // C
    VertexSet vertices;   // S ∪ C
    /// PMCs Ω with S ⊂ Ω ⊆ S ∪ C, as indices into pmcs.
    std::vector<int> candidate_pmcs;
    /// children[k] lists the block ids of the blocks of candidate_pmcs[k]
    /// inside the realization R(S, C); each is a full block of G (Thm 5.4).
    std::vector<std::vector<int>> children;
  };

  /// Builds the context. Returns std::nullopt when a limit was hit (the
  /// graph is "MS terminated" or "not terminated" in the Fig. 5 sense).
  /// The graph must be connected and non-empty.
  static std::optional<TriangulationContext> Build(
      const Graph& g, const ContextOptions& options = {});

  const Graph& graph() const { return graph_; }
  const std::vector<VertexSet>& minimal_separators() const { return minseps_; }
  const std::vector<VertexSet>& pmcs() const { return pmcs_; }
  const std::vector<BlockEntry>& blocks() const { return blocks_; }
  /// Root candidates: all PMCs; root_children()[k] are the block ids of the
  /// blocks associated to pmcs()[root_candidates()[k]] in G.
  const std::vector<int>& root_candidates() const { return root_candidates_; }
  const std::vector<std::vector<int>>& root_children() const {
    return root_children_;
  }
  int width_bound() const { return width_bound_; }
  double init_seconds() const { return init_seconds_; }

  /// Index of a minimal separator in minimal_separators(), or -1.
  int SeparatorId(const VertexSet& s) const;
  /// Index of the full block with component c, or -1.
  int BlockIdByComponent(const VertexSet& c) const;

 private:
  Graph graph_;
  std::vector<VertexSet> minseps_;
  std::vector<VertexSet> pmcs_;
  std::vector<BlockEntry> blocks_;  // sorted by |S ∪ C| ascending
  std::vector<int> root_candidates_;
  std::vector<std::vector<int>> root_children_;
  std::unordered_map<VertexSet, int, VertexSetHash> separator_ids_;
  std::unordered_map<VertexSet, int, VertexSetHash> block_by_component_;
  int width_bound_ = -1;
  double init_seconds_ = 0;
};

}  // namespace mintri

#endif  // MINTRI_TRIANG_CONTEXT_H_
