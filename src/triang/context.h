#ifndef MINTRI_TRIANG_CONTEXT_H_
#define MINTRI_TRIANG_CONTEXT_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "graph/vertex_set_table.h"
#include "pmc/potential_maximal_cliques.h"
#include "separators/minimal_separators.h"

namespace mintri {

struct ContextOptions {
  /// Limits for the minimal-separator enumeration ("one minute" in Fig. 5).
  EnumerationLimits separator_limits;
  /// Limits for the PMC enumeration ("30 minutes" in Fig. 5).
  EnumerationLimits pmc_limits;
  /// If >= 0, build the bounded-width context of MinTriangB (Section 5.3):
  /// only minimal separators of size <= width_bound and PMCs of size
  /// <= width_bound + 1 are computed and used.
  int width_bound = -1;
  /// Worker threads for every stage of Build: the MinSep and PMC
  /// enumerations run through the src/parallel/ engines, and the Step-4 DP
  /// wiring sweep over PMCs is forked over the same thread count. 1 (the
  /// default) is the serial path; a per-stage
  /// separator_limits.num_threads / pmc_limits.num_threads still wins when
  /// it asks for more. The built context is identical at every thread
  /// count.
  int num_threads = 1;
};

/// How (and how fast) a context build ended — the Fig. 5 taxonomy: a graph
/// is "MS terminated" when the minimal-separator stage hit its limits and
/// "PMC terminated" when the PMC stage did. Filled by
/// TriangulationContext::Build even on failure, so callers can report which
/// stage gave up and where the initialization time went.
struct ContextBuildInfo {
  enum class Termination {
    kCompleted,      // the context was fully built
    kMsTerminated,   // the minimal-separator enumeration hit its limits
    kPmcTerminated,  // the PMC enumeration hit its limits
  };
  Termination termination = Termination::kCompleted;

  // Per-stage wall-clock breakdown (seconds); stages that never ran are 0.
  double minsep_seconds = 0;
  double pmc_seconds = 0;
  double blocks_seconds = 0;  // Step 3: full blocks
  double wiring_seconds = 0;  // Step 4: DP wiring
  double total_seconds = 0;

  size_t num_minseps = 0;
  size_t num_pmcs = 0;
  size_t num_blocks = 0;

  // Per-build termination tally. One Build/BuildFromFamily call counts as
  // one build; Accumulate sums these, so an aggregate over many atoms keeps
  // truthful per-atom termination counts instead of conflating "budget hit
  // during MinSep" across atoms into the single `termination` enum (which
  // stays as the first non-completed stage for backward compatibility).
  size_t num_builds = 0;
  size_t num_ms_terminated = 0;
  size_t num_pmc_terminated = 0;

  // Tier-0 preprocessing fold-in (set by the tiered enumerator from its
  // PreprocessInfo; plain Build leaves them 0). Accumulate sums these too.
  size_t reduced_vertices = 0;
  size_t num_atoms = 0;
  double preprocess_seconds = 0;

  /// The failure names ("ms-terminated" / "pmc-terminated") are the
  /// BENCH_core.json status labels for failed builds; a successful build
  /// reports "completed" here, which the bench pipeline never emits (it
  /// uses its own "complete"/"truncated" for successful runs).
  const char* TerminationName() const {
    switch (termination) {
      case Termination::kMsTerminated:
        return "ms-terminated";
      case Termination::kPmcTerminated:
        return "pmc-terminated";
      default:
        return "completed";
    }
  }

  /// Accumulates another build's stage times/counts (used by the ranked
  /// forest layer, which builds one context per connected component). The
  /// termination becomes the first non-completed stage seen.
  void Accumulate(const ContextBuildInfo& other) {
    minsep_seconds += other.minsep_seconds;
    pmc_seconds += other.pmc_seconds;
    blocks_seconds += other.blocks_seconds;
    wiring_seconds += other.wiring_seconds;
    total_seconds += other.total_seconds;
    num_minseps += other.num_minseps;
    num_pmcs += other.num_pmcs;
    num_blocks += other.num_blocks;
    num_builds += other.num_builds;
    num_ms_terminated += other.num_ms_terminated;
    num_pmc_terminated += other.num_pmc_terminated;
    reduced_vertices += other.reduced_vertices;
    num_atoms += other.num_atoms;
    preprocess_seconds += other.preprocess_seconds;
    if (termination == Termination::kCompleted) {
      termination = other.termination;
    }
  }
};

/// The "initialization step" of the paper (Section 7.1): the minimal
/// separators, potential maximal cliques, full blocks and — precomputed once
/// so that every later MinTriang call is a pure table-filling pass — the
/// candidate PMCs of each full block and the child blocks of every
/// (block, Ω) pair. RankedTriang shares one context across all of its
/// MinTriang invocations, exactly as described in Section 7.1.
class TriangulationContext {
 public:
  /// A full block (S, C) plus its DP wiring.
  struct BlockEntry {
    VertexSet separator;  // S
    VertexSet component;  // C
    VertexSet vertices;   // S ∪ C
    /// PMCs Ω with S ⊂ Ω ⊆ S ∪ C, as indices into pmcs.
    std::vector<int> candidate_pmcs;
    /// children[k] lists the block ids of the blocks of candidate_pmcs[k]
    /// inside the realization R(S, C); each is a full block of G (Thm 5.4).
    std::vector<std::vector<int>> children;
  };

  /// Builds the context. Returns std::nullopt when a limit was hit (the
  /// graph is "MS terminated" or "PMC terminated" in the Fig. 5 sense);
  /// when `info` is non-null it receives the stage breakdown either way.
  /// The graph must be connected and non-empty.
  static std::optional<TriangulationContext> Build(
      const Graph& g, const ContextOptions& options = {},
      ContextBuildInfo* info = nullptr);

  /// Builds a context over a caller-supplied *restricted family* of minimal
  /// separators and PMCs of g (both deduplicated here) instead of the full
  /// enumeration — the Tier-2 heuristic path: the DP over any family of
  /// genuine minimal separators / PMCs yields genuine minimal
  /// triangulations, just not necessarily all of them. PMCs whose
  /// associated blocks are not realizable within the family are dropped
  /// (never an assertion failure, unlike the bounded-width exact build).
  /// The graph must be connected and non-empty.
  static TriangulationContext BuildFromFamily(const Graph& g,
                                              std::vector<VertexSet> minseps,
                                              std::vector<VertexSet> pmcs,
                                              ContextBuildInfo* info = nullptr);

  const Graph& graph() const { return graph_; }
  const std::vector<VertexSet>& minimal_separators() const { return minseps_; }
  const std::vector<VertexSet>& pmcs() const { return pmcs_; }
  const std::vector<BlockEntry>& blocks() const { return blocks_; }
  /// Root candidates: all PMCs; root_children()[k] are the block ids of the
  /// blocks associated to pmcs()[root_candidates()[k]] in G.
  const std::vector<int>& root_candidates() const { return root_candidates_; }
  const std::vector<std::vector<int>>& root_children() const {
    return root_children_;
  }
  int width_bound() const { return width_bound_; }
  double init_seconds() const { return build_info_.total_seconds; }
  /// Stage-by-stage initialization breakdown of this (successful) build.
  const ContextBuildInfo& build_info() const { return build_info_; }

  /// Index of a minimal separator in minimal_separators(), or -1.
  int SeparatorId(const VertexSet& s) const {
    return separator_index_.Find(s);
  }
  /// Index of the full block with component c, or -1.
  int BlockIdByComponent(const VertexSet& c) const {
    return block_index_.Find(c);
  }

 private:
  // Steps 3–4 of both builds: full blocks over ctx->minseps_ plus the DP
  // wiring of ctx->pmcs_. With allow_partial, PMCs whose associated blocks
  // are missing from the (restricted or width-bounded) block table are
  // skipped instead of asserting.
  static void BuildBlocksAndWiring(TriangulationContext* ctx,
                                   bool allow_partial, int num_threads,
                                   ContextBuildInfo* bi);

  Graph graph_;
  std::vector<VertexSet> minseps_;
  std::vector<VertexSet> pmcs_;
  std::vector<BlockEntry> blocks_;  // sorted by |S ∪ C| ascending
  std::vector<int> root_candidates_;
  std::vector<std::vector<int>> root_children_;
  // Arena-index tables: entry i of each table is minseps_[i] /
  // blocks_[i].component, so Find doubles as the id lookup.
  VertexSetTable separator_index_;
  VertexSetTable block_index_;
  int width_bound_ = -1;
  ContextBuildInfo build_info_;
};

}  // namespace mintri

#endif  // MINTRI_TRIANG_CONTEXT_H_
