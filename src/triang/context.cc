#include "triang/context.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "parallel/thread_pool.h"
#include "separators/blocks.h"
#include "util/timer.h"

namespace mintri {

namespace {

// Below this many PMCs the Step-4 sweep is too cheap to amortize a fork-join,
// so it stays serial even when more threads were requested.
constexpr size_t kMinParallelWiring = 64;

// Everything Step 4 derives from one PMC Ω: its associated blocks in G
// (its children at the root) and, for each distinct associated separator S,
// the host block (S, C*) plus Ω's children inside the realization R(S, C*).
// Computed independently per PMC (serially or on worker threads) and merged
// in ascending-PMC order, so the wiring is identical at every thread count.
struct PmcWiring {
  bool usable = false;
  std::vector<int> assoc_ids;
  // (host block id, child block ids), ascending by associated separator id;
  // minseps_ is sorted, so separator-id order equals VertexSet order.
  std::vector<std::pair<int, std::vector<int>>> hosts;
};

}  // namespace

void TriangulationContext::BuildBlocksAndWiring(TriangulationContext* ctx,
                                                bool allow_partial,
                                                int num_threads,
                                                ContextBuildInfo* bi) {
  const Graph& g = ctx->graph_;
  WallTimer stage_timer;

  // Step 3: full blocks, ascending by |S ∪ C| so that the DP sees children
  // before parents (children blocks are strictly smaller).
  ctx->blocks_.clear();
  for (Block& b : AllFullBlocks(g, ctx->minseps_)) {
    BlockEntry e;
    e.separator = std::move(b.separator);
    e.component = std::move(b.component);
    e.vertices = std::move(b.vertices);
    ctx->blocks_.push_back(std::move(e));
  }
  std::sort(ctx->blocks_.begin(), ctx->blocks_.end(),
            [](const BlockEntry& a, const BlockEntry& b) {
              int ca = a.vertices.Count(), cb = b.vertices.Count();
              if (ca != cb) return ca < cb;
              return a.component < b.component;
            });
  for (const BlockEntry& b : ctx->blocks_) {
    ctx->block_index_.Insert(b.component);
  }
  // Separator id per block, so the wiring sweep dedups on ints.
  std::vector<int> sep_id_of_block(ctx->blocks_.size());
  for (size_t i = 0; i < ctx->blocks_.size(); ++i) {
    sep_id_of_block[i] =
        ctx->separator_index_.Find(ctx->blocks_[i].separator);
    assert(sep_id_of_block[i] >= 0);
  }
  bi->blocks_seconds = stage_timer.Seconds();
  bi->num_blocks = ctx->blocks_.size();

  // Step 4: DP wiring. For each PMC Ω:
  //  - its associated blocks in G (components of G \ Ω with their
  //    neighborhoods) are the children of Ω at the root;
  //  - for each associated minimal separator S of Ω, the block (S, C*) where
  //    C* ⊇ Ω \ S is a full block with S ⊂ Ω ⊆ S ∪ C*, and Ω's children
  //    inside R(S, C*) are the associated blocks whose component lies in C*.
  // Each PMC's wiring only reads the frozen Step-1..3 tables, so the sweep
  // forks over the PMCs; the serial path runs the same per-PMC routine.
  stage_timer.Reset();
  std::vector<PmcWiring> wiring(ctx->pmcs_.size());

  const auto wire_one = [&](size_t pi, ComponentScanner& scanner,
                            std::vector<int>& sep_scratch) {
    const VertexSet& omega = ctx->pmcs_[pi];
    PmcWiring& w = wiring[pi];

    // Associated blocks of Ω in G. Every (N(C), C) with C a component of
    // G \ Ω is a full block (Section 5.1), so the lookup can only fail when
    // a block's separator was never materialized: in the bounded-width
    // context (over-bound separator) or in a restricted-family context
    // (separator outside the family) — then Ω is unusable and skipped.
    bool missing = false;
    scanner.ForEachComponentWhile(
        g, omega, [&](const VertexSet& c, const VertexSet&) {
          int bid = ctx->block_index_.Find(c);
          if (bid < 0) {
            missing = true;
            return false;
          }
          w.assoc_ids.push_back(bid);
          return true;
        });
    if (missing) {
      assert(allow_partial);
      (void)allow_partial;
      w.assoc_ids.clear();
      return;
    }
    w.usable = true;

    // Per-block candidacy: one host block per distinct associated separator.
    sep_scratch.clear();
    for (int bid : w.assoc_ids) sep_scratch.push_back(sep_id_of_block[bid]);
    std::sort(sep_scratch.begin(), sep_scratch.end());
    sep_scratch.erase(std::unique(sep_scratch.begin(), sep_scratch.end()),
                      sep_scratch.end());
    for (int sid : sep_scratch) {
      const VertexSet& s = ctx->minseps_[sid];
      VertexSet rest = omega.Minus(s);
      assert(!rest.Empty());  // S = Ω is impossible for a PMC
      const VertexSet& cstar = scanner.ComponentOf(g, s, rest.First());
      int host = ctx->block_index_.Find(cstar);
      if (host < 0) continue;  // partial context: block not materialized
      assert(s.IsSubsetOf(omega) &&
             omega.IsSubsetOf(ctx->blocks_[host].vertices));
      std::vector<int> kids;
      for (int bid : w.assoc_ids) {
        if (cstar.Contains(ctx->blocks_[bid].component.First())) {
          kids.push_back(bid);
        }
      }
      w.hosts.emplace_back(host, std::move(kids));
    }
  };

  const int wiring_threads =
      (num_threads > 1 && ctx->pmcs_.size() >= kMinParallelWiring)
          ? num_threads
          : 1;
  if (wiring_threads > 1) {
    std::atomic<size_t> cursor{0};
    parallel::RunOnThreads(wiring_threads, [&](int) {
      ComponentScanner scanner;
      std::vector<int> sep_scratch;
      constexpr size_t kChunk = 8;
      while (true) {
        size_t begin = cursor.fetch_add(kChunk, std::memory_order_relaxed);
        if (begin >= wiring.size()) break;
        size_t end = std::min(begin + kChunk, wiring.size());
        for (size_t pi = begin; pi < end; ++pi) {
          wire_one(pi, scanner, sep_scratch);
        }
      }
    });
  } else {
    ComponentScanner scanner;
    std::vector<int> sep_scratch;
    for (size_t pi = 0; pi < wiring.size(); ++pi) {
      wire_one(pi, scanner, sep_scratch);
    }
  }

  // Deterministic merge, ascending by PMC then by associated separator.
  ctx->root_candidates_.clear();
  ctx->root_children_.clear();
  for (size_t pi = 0; pi < wiring.size(); ++pi) {
    PmcWiring& w = wiring[pi];
    if (!w.usable) continue;
    ctx->root_candidates_.push_back(static_cast<int>(pi));
    ctx->root_children_.push_back(std::move(w.assoc_ids));
    for (auto& [host, kids] : w.hosts) {
      BlockEntry& block = ctx->blocks_[host];
      block.candidate_pmcs.push_back(static_cast<int>(pi));
      block.children.push_back(std::move(kids));
    }
  }
  bi->wiring_seconds = stage_timer.Seconds();
}

std::optional<TriangulationContext> TriangulationContext::Build(
    const Graph& g, const ContextOptions& options, ContextBuildInfo* info) {
  assert(g.NumVertices() > 0 && g.IsConnected());
  WallTimer total_timer;
  WallTimer stage_timer;
  ContextBuildInfo bi;
  TriangulationContext ctx;
  ctx.graph_ = g;
  ctx.width_bound_ = options.width_bound;

  const auto finish = [&](ContextBuildInfo::Termination termination) {
    bi.termination = termination;
    bi.num_builds = 1;
    bi.num_ms_terminated =
        termination == ContextBuildInfo::Termination::kMsTerminated ? 1 : 0;
    bi.num_pmc_terminated =
        termination == ContextBuildInfo::Termination::kPmcTerminated ? 1 : 0;
    bi.total_seconds = total_timer.Seconds();
    ctx.build_info_ = bi;
    if (info != nullptr) *info = bi;
  };

  // Step 1: minimal separators (Berry et al.), possibly size-bounded. The
  // context-level num_threads knob routes the stage through the parallel
  // engine unless a per-stage limit already asked for more.
  EnumerationLimits sep_limits = options.separator_limits;
  sep_limits.num_threads = std::max(sep_limits.num_threads,
                                    options.num_threads);
  MinimalSeparatorsResult seps =
      options.width_bound >= 0
          ? ListMinimalSeparatorsBounded(g, options.width_bound, sep_limits)
          : ListMinimalSeparators(g, sep_limits);
  bi.minsep_seconds = stage_timer.Seconds();
  bi.num_minseps = seps.separators.size();
  if (seps.status != EnumerationStatus::kComplete) {
    finish(ContextBuildInfo::Termination::kMsTerminated);
    return std::nullopt;
  }
  ctx.minseps_ = std::move(seps.separators);
  std::sort(ctx.minseps_.begin(), ctx.minseps_.end());
  for (const VertexSet& s : ctx.minseps_) ctx.separator_index_.Insert(s);

  // Step 2: potential maximal cliques (Bouchitté–Todinca).
  stage_timer.Reset();
  PmcOptions pmc_options;
  pmc_options.limits = options.pmc_limits;
  pmc_options.limits.num_threads =
      std::max(pmc_options.limits.num_threads, options.num_threads);
  if (options.width_bound >= 0) pmc_options.max_size = options.width_bound + 1;
  PmcResult pmcs = ListPotentialMaximalCliques(g, ctx.minseps_, pmc_options);
  bi.pmc_seconds = stage_timer.Seconds();
  bi.num_pmcs = pmcs.pmcs.size();
  if (pmcs.status != EnumerationStatus::kComplete) {
    finish(ContextBuildInfo::Termination::kPmcTerminated);
    return std::nullopt;
  }
  ctx.pmcs_ = std::move(pmcs.pmcs);

  // Steps 3–4: full blocks + DP wiring. In the bounded-width context a PMC
  // may reference a never-materialized over-bound block; those PMCs are
  // skipped (allow_partial) exactly as before the wiring was factored out.
  BuildBlocksAndWiring(&ctx, /*allow_partial=*/options.width_bound >= 0,
                       options.num_threads, &bi);

  finish(ContextBuildInfo::Termination::kCompleted);
  return ctx;
}

TriangulationContext TriangulationContext::BuildFromFamily(
    const Graph& g, std::vector<VertexSet> minseps,
    std::vector<VertexSet> pmcs, ContextBuildInfo* info) {
  assert(g.NumVertices() > 0 && g.IsConnected());
  WallTimer total_timer;
  WallTimer stage_timer;
  ContextBuildInfo bi;
  TriangulationContext ctx;
  ctx.graph_ = g;
  ctx.width_bound_ = -1;

  std::sort(minseps.begin(), minseps.end());
  minseps.erase(std::unique(minseps.begin(), minseps.end()), minseps.end());
  ctx.minseps_ = std::move(minseps);
  for (const VertexSet& s : ctx.minseps_) ctx.separator_index_.Insert(s);
  bi.minsep_seconds = stage_timer.Seconds();
  bi.num_minseps = ctx.minseps_.size();

  stage_timer.Reset();
  std::sort(pmcs.begin(), pmcs.end());
  pmcs.erase(std::unique(pmcs.begin(), pmcs.end()), pmcs.end());
  ctx.pmcs_ = std::move(pmcs);
  bi.pmc_seconds = stage_timer.Seconds();
  bi.num_pmcs = ctx.pmcs_.size();

  BuildBlocksAndWiring(&ctx, /*allow_partial=*/true, /*num_threads=*/1, &bi);

  bi.termination = ContextBuildInfo::Termination::kCompleted;
  bi.num_builds = 1;
  bi.total_seconds = total_timer.Seconds();
  ctx.build_info_ = bi;
  if (info != nullptr) *info = bi;
  return ctx;
}

}  // namespace mintri
