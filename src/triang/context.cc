#include "triang/context.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "separators/blocks.h"
#include "util/timer.h"

namespace mintri {

std::optional<TriangulationContext> TriangulationContext::Build(
    const Graph& g, const ContextOptions& options) {
  assert(g.NumVertices() > 0 && g.IsConnected());
  WallTimer timer;
  TriangulationContext ctx;
  ctx.graph_ = g;
  ctx.width_bound_ = options.width_bound;

  // Step 1: minimal separators (Berry et al.), possibly size-bounded.
  MinimalSeparatorsResult seps =
      options.width_bound >= 0
          ? ListMinimalSeparatorsBounded(g, options.width_bound,
                                         options.separator_limits)
          : ListMinimalSeparators(g, options.separator_limits);
  if (seps.status != EnumerationStatus::kComplete) return std::nullopt;
  ctx.minseps_ = std::move(seps.separators);
  std::sort(ctx.minseps_.begin(), ctx.minseps_.end());
  for (size_t i = 0; i < ctx.minseps_.size(); ++i) {
    ctx.separator_ids_[ctx.minseps_[i]] = static_cast<int>(i);
  }

  // Step 2: potential maximal cliques (Bouchitté–Todinca).
  PmcOptions pmc_options;
  pmc_options.limits = options.pmc_limits;
  if (options.width_bound >= 0) pmc_options.max_size = options.width_bound + 1;
  PmcResult pmcs = ListPotentialMaximalCliques(g, ctx.minseps_, pmc_options);
  if (pmcs.status != EnumerationStatus::kComplete) return std::nullopt;
  ctx.pmcs_ = std::move(pmcs.pmcs);

  // Step 3: full blocks, ascending by |S ∪ C| so that the DP sees children
  // before parents (children blocks are strictly smaller).
  ctx.blocks_.clear();
  for (Block& b : AllFullBlocks(g, ctx.minseps_)) {
    BlockEntry e;
    e.separator = std::move(b.separator);
    e.component = std::move(b.component);
    e.vertices = std::move(b.vertices);
    ctx.blocks_.push_back(std::move(e));
  }
  std::sort(ctx.blocks_.begin(), ctx.blocks_.end(),
            [](const BlockEntry& a, const BlockEntry& b) {
              int ca = a.vertices.Count(), cb = b.vertices.Count();
              if (ca != cb) return ca < cb;
              return a.component < b.component;
            });
  for (size_t i = 0; i < ctx.blocks_.size(); ++i) {
    ctx.block_by_component_[ctx.blocks_[i].component] = static_cast<int>(i);
  }

  // Step 4: DP wiring. For each PMC Ω:
  //  - its associated blocks in G (components of G \ Ω with their
  //    neighborhoods) are the children of Ω at the root;
  //  - for each associated minimal separator S of Ω, the block (S, C*) where
  //    C* ⊇ Ω \ S is a full block with S ⊂ Ω ⊆ S ∪ C*, and Ω's children
  //    inside R(S, C*) are the associated blocks whose component lies in C*.
  ctx.root_candidates_.clear();
  ctx.root_children_.clear();
  for (size_t pi = 0; pi < ctx.pmcs_.size(); ++pi) {
    const VertexSet& omega = ctx.pmcs_[pi];

    // Associated blocks of Ω in G. Every (N(C), C) with C a component of
    // G \ Ω is a full block (Section 5.1), so the lookup can only fail in
    // the bounded-width context, where an over-bound separator was never
    // materialized — then Ω is unusable and skipped.
    std::vector<int> assoc_ids;
    bool missing = false;
    for (const VertexSet& c : g.ComponentsAfterRemoving(omega)) {
      int bid = ctx.BlockIdByComponent(c);
      if (bid < 0) {
        missing = true;
        break;
      }
      assoc_ids.push_back(bid);
    }
    if (missing) {
      assert(options.width_bound >= 0);
      continue;
    }

    // Root candidate.
    ctx.root_candidates_.push_back(static_cast<int>(pi));
    ctx.root_children_.push_back(assoc_ids);

    // Per-block candidacy: one host block per distinct associated separator.
    std::set<VertexSet> assoc_seps;
    for (int bid : assoc_ids) assoc_seps.insert(ctx.blocks_[bid].separator);
    for (const VertexSet& s : assoc_seps) {
      VertexSet rest = omega.Minus(s);
      assert(!rest.Empty());  // S = Ω is impossible for a PMC
      VertexSet cstar = g.ComponentOf(rest.First(), s);
      int host = ctx.BlockIdByComponent(cstar);
      if (host < 0) continue;  // bounded context: block not materialized
      BlockEntry& block = ctx.blocks_[host];
      assert(s.IsSubsetOf(omega) && omega.IsSubsetOf(block.vertices));
      std::vector<int> kids;
      for (int bid : assoc_ids) {
        if (cstar.Contains(ctx.blocks_[bid].component.First())) {
          kids.push_back(bid);
        }
      }
      block.candidate_pmcs.push_back(static_cast<int>(pi));
      block.children.push_back(std::move(kids));
    }
  }

  ctx.init_seconds_ = timer.Seconds();
  return ctx;
}

int TriangulationContext::SeparatorId(const VertexSet& s) const {
  auto it = separator_ids_.find(s);
  return it == separator_ids_.end() ? -1 : it->second;
}

int TriangulationContext::BlockIdByComponent(const VertexSet& c) const {
  auto it = block_by_component_.find(c);
  return it == block_by_component_.end() ? -1 : it->second;
}

}  // namespace mintri
