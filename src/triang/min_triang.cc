#include "triang/min_triang.h"

#include <cassert>
#include <cmath>
#include <set>

namespace mintri {

namespace {

// Evaluates one candidate Ω for a block (or the root). Returns ∞ when a
// child block is infeasible.
CostValue CandidateCost(const TriangulationContext& ctx, const BagCost& cost,
                        const std::vector<CostValue>& block_values,
                        const VertexSet& omega, const VertexSet& separator,
                        const VertexSet& block_vertices,
                        const std::vector<int>& child_ids,
                        std::vector<const VertexSet*>* child_blocks_buf,
                        std::vector<CostValue>* child_costs_buf) {
  child_blocks_buf->clear();
  child_costs_buf->clear();
  for (int cid : child_ids) {
    CostValue v = block_values[cid];
    if (std::isinf(v)) return kInfiniteCost;
    child_blocks_buf->push_back(&ctx.blocks()[cid].vertices);
    child_costs_buf->push_back(v);
  }
  CombineContext cc{ctx.graph(),      omega,
                    separator,        block_vertices,
                    *child_blocks_buf, *child_costs_buf};
  return cost.Combine(cc);
}

}  // namespace

std::optional<Triangulation> MinTriang(const TriangulationContext& ctx,
                                       const BagCost& cost) {
  const Graph& g = ctx.graph();
  const auto& blocks = ctx.blocks();
  const int n = g.NumVertices();

  std::vector<CostValue> value(blocks.size(), kInfiniteCost);
  std::vector<int> choice(blocks.size(), -1);
  std::vector<const VertexSet*> child_blocks_buf;
  std::vector<CostValue> child_costs_buf;

  // Blocks are sorted ascending by |S ∪ C|, and every child block is
  // strictly smaller than its host, so a single forward pass suffices.
  for (size_t i = 0; i < blocks.size(); ++i) {
    const auto& block = blocks[i];
    for (size_t k = 0; k < block.candidate_pmcs.size(); ++k) {
      CostValue v = CandidateCost(
          ctx, cost, value, ctx.pmcs()[block.candidate_pmcs[k]],
          block.separator, block.vertices, block.children[k],
          &child_blocks_buf, &child_costs_buf);
      if (v < value[i]) {
        value[i] = v;
        choice[i] = static_cast<int>(k);
      }
    }
  }

  // Root: Ω(G) := argmin over all PMCs (line 6 of Figure 3).
  const VertexSet empty_sep(n);
  const VertexSet all_vertices = g.Vertices();
  CostValue best = kInfiniteCost;
  int best_k = -1;
  for (size_t k = 0; k < ctx.root_candidates().size(); ++k) {
    CostValue v = CandidateCost(ctx, cost, value,
                                ctx.pmcs()[ctx.root_candidates()[k]],
                                empty_sep, all_vertices,
                                ctx.root_children()[k], &child_blocks_buf,
                                &child_costs_buf);
    if (v < best) {
      best = v;
      best_k = static_cast<int>(k);
    }
  }
  if (best_k < 0 || std::isinf(best)) return std::nullopt;

  // Reconstruct the clique tree from the per-block choices (the Appendix A
  // construction: one bag per block, rooted at Ω(G)).
  Triangulation t;
  t.cost = best;
  std::set<VertexSet> seps;

  struct Frame {
    int block_id;   // -1 for root
    int parent_bag;
  };
  std::vector<Frame> stack;
  t.bags.push_back(ctx.pmcs()[ctx.root_candidates()[best_k]]);
  t.parent.push_back(-1);
  for (int cid : ctx.root_children()[best_k]) stack.push_back({cid, 0});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const auto& block = blocks[f.block_id];
    int k = choice[f.block_id];
    assert(k >= 0);
    int bag_index = static_cast<int>(t.bags.size());
    t.bags.push_back(ctx.pmcs()[block.candidate_pmcs[k]]);
    t.parent.push_back(f.parent_bag);
    seps.insert(block.separator);
    for (int cid : block.children[k]) stack.push_back({cid, bag_index});
  }
  t.separators.assign(seps.begin(), seps.end());

  t.filled = g;
  for (const VertexSet& bag : t.bags) t.filled.SaturateSet(bag);
  return t;
}

}  // namespace mintri
