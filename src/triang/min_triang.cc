#include "triang/min_triang.h"

#include "triang/min_triang_solver.h"

namespace mintri {

std::optional<Triangulation> MinTriang(const TriangulationContext& ctx,
                                       const BagCost& cost) {
  // One full DP pass of the stateful solver (constraints, if any, live
  // inside `cost` — e.g. a ConstrainedCost — exactly as before).
  MinTriangSolver solver(ctx, cost);
  return solver.Solve({}, {});
}

}  // namespace mintri
