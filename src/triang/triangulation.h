#ifndef MINTRI_TRIANG_TRIANGULATION_H_
#define MINTRI_TRIANG_TRIANGULATION_H_

#include <vector>

#include "cost/bag_cost.h"
#include "graph/graph.h"

namespace mintri {

/// A minimal triangulation H of a graph G together with a clique tree of H.
/// This is the answer type of MinTriang, RankedTriang and the CKK baseline.
///
/// Invariants (checked by the test suite):
///  - `filled` is a minimal triangulation of the original graph;
///  - `bags` are exactly the maximal cliques of `filled` and
///    (bags, parent) is a clique tree (a proper tree decomposition, Thm 2.2);
///  - `separators` are the distinct non-empty clique-tree adhesions, which by
///    Parra–Scheffler (Thm 2.5) equal MinSep(H) — the maximal set of
///    pairwise-parallel minimal separators of G identifying H.
struct Triangulation {
  Graph filled;
  std::vector<VertexSet> bags;
  /// Clique-tree structure: parent[i] is the index of the parent bag, -1 for
  /// the root. parent.size() == bags.size().
  std::vector<int> parent;
  std::vector<VertexSet> separators;
  CostValue cost = 0;

  int Width() const;
  long long FillIn(const Graph& original) const;

  /// A canonical identity for deduplication: the sorted fill-edge set is a
  /// bijective key for minimal triangulations of a fixed graph.
  std::vector<std::pair<int, int>> FillEdgesSorted(const Graph& original)
      const;
};

/// Packages a chordal supergraph `h` of `original` as a Triangulation:
/// computes maximal cliques, a clique tree, and the adhesion separators.
/// `h` must be chordal. Used by the CKK baseline and by tests.
Triangulation TriangulationFromChordal(const Graph& original, Graph h,
                                       CostValue cost = 0);

}  // namespace mintri

#endif  // MINTRI_TRIANG_TRIANGULATION_H_
