#include "cost/cost_model_registry.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "cost/standard_costs.h"
#include "graph/graph_io.h"
#include "hypergraph/edge_cover.h"
#include "hypergraph/hypergraph_io.h"
#include "workloads/inference_models.h"
#include "workloads/tpch_queries.h"

namespace mintri {

namespace {

bool ParseQueryNumber(const std::string& value, int* q) {
  std::istringstream is(value);
  return (is >> *q) && is.eof() && *q >= 1 && *q <= 22;
}

std::optional<CostModelInstance> Fail(std::string* error,
                                      const std::string& message) {
  if (error != nullptr) *error = message;
  return std::nullopt;
}

CostModelInstance FromHypergraph(std::string name, Hypergraph h) {
  CostModelInstance instance;
  instance.name = std::move(name);
  instance.graph = h.PrimalGraph();
  instance.hypergraph = std::move(h);
  return instance;
}

CostModelInstance FromModel(std::string name, GraphicalModel m) {
  CostModelInstance instance;
  instance.name = std::move(name);
  instance.graph = m.MarkovGraph();
  instance.model = std::move(m);
  return instance;
}

}  // namespace

std::optional<CostModelInstance> ReadInstance(std::istream& in,
                                              InstanceKind kind,
                                              const std::string& name,
                                              std::string* error) {
  switch (kind) {
    case InstanceKind::kGraph: {
      std::optional<Graph> g = ParseDimacs(in);
      if (!g.has_value()) {
        return Fail(error, name + ": malformed DIMACS/PACE .gr input");
      }
      CostModelInstance instance;
      instance.name = name;
      instance.graph = std::move(*g);
      return instance;
    }
    case InstanceKind::kHypergraph: {
      std::optional<Hypergraph> h = ParseHypergraph(in);
      if (!h.has_value()) {
        return Fail(error, name + ": malformed .hg hypergraph input");
      }
      return FromHypergraph(name, std::move(*h));
    }
    case InstanceKind::kModel: {
      std::optional<GraphicalModel> m = ParseUaiModel(in);
      if (!m.has_value()) {
        return Fail(error, name + ": malformed UAI factor-list input");
      }
      return FromModel(name, std::move(*m));
    }
  }
  return Fail(error, name + ": unknown instance kind");
}

std::optional<CostModelInstance> LoadInstance(const std::string& spec,
                                              std::string* error) {
  if (spec.rfind("tpch:", 0) == 0) {
    int q = 0;
    if (!ParseQueryNumber(spec.substr(5), &q)) {
      return Fail(error, spec + ": expected tpch:<q> with q in 1..22");
    }
    workloads::TpchQuery query = workloads::TpchQueryGraph(q);
    return FromHypergraph(spec, workloads::TpchQueryHypergraph(query));
  }
  if (spec.rfind("tpch-graph:", 0) == 0) {
    int q = 0;
    if (!ParseQueryNumber(spec.substr(11), &q)) {
      return Fail(error, spec + ": expected tpch-graph:<q> with q in 1..22");
    }
    CostModelInstance instance;
    instance.name = spec;
    instance.graph = workloads::TpchQueryGraph(q).graph;
    return instance;
  }
  if (spec.rfind("gm:", 0) == 0) {
    std::optional<GraphicalModel> m =
        workloads::InferenceModelByName(spec.substr(3));
    if (!m.has_value()) {
      return Fail(error, spec + ": unknown builtin graphical model");
    }
    return FromModel(spec, std::move(*m));
  }

  const size_t dot = spec.find_last_of('.');
  const std::string ext = dot == std::string::npos ? "" : spec.substr(dot + 1);
  InstanceKind kind = InstanceKind::kGraph;  // any other path: DIMACS .gr
  if (ext == "hg") {
    kind = InstanceKind::kHypergraph;
  } else if (ext == "uai") {
    kind = InstanceKind::kModel;
  }
  std::ifstream file(spec);
  if (!file) return Fail(error, spec + ": cannot open");
  return ReadInstance(file, kind, spec, error);
}

const std::vector<std::string>& KnownCostNames() {
  static const std::vector<std::string> kNames = {
      "width", "fill", "width-then-fill", "state-space", "hypertree", "fhw"};
  return kNames;
}

std::optional<CostModel> MakeCostModel(const std::string& cost_name,
                                       const CostModelInstance& instance,
                                       bool enable_cache,
                                       std::string* error) {
  auto fail = [error](const std::string& message) -> std::optional<CostModel> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  CostModel out;
  if (cost_name == "width") {
    out.cost = std::make_unique<WidthCost>();
    out.composition = CostComposition::kMax;
    return out;
  }
  if (cost_name == "fill") {
    out.cost = std::make_unique<FillInCost>();
    out.composition = CostComposition::kSum;
    return out;
  }
  if (cost_name == "width-then-fill") {
    out.cost = std::make_unique<WidthThenFillCost>();
    out.composition = CostComposition::kMax;
    return out;
  }
  if (cost_name == "state-space") {
    out.cost = instance.model.has_value()
                   ? std::make_unique<TotalStateSpaceCost>(
                         instance.model->DomainsAsWeights())
                   : TotalStateSpaceCost::Uniform(instance.graph.NumVertices(),
                                                  2.0);
    out.composition = CostComposition::kSum;
    return out;
  }
  if (cost_name == "hypertree" || cost_name == "fhw") {
    if (!instance.hypergraph.has_value()) {
      return fail("cost " + cost_name +
                  " requires a hypergraph instance (.hg or tpch:<q>)");
    }
    const Hypergraph& h = *instance.hypergraph;
    const bool fractional = cost_name == "fhw";
    BagScoreCache::Score score = [&h, fractional](const VertexSet& bag) {
      return fractional ? FractionalEdgeCoverBagScore(h, bag)
                        : HypertreeBagScore(h, bag);
    };
    const std::string display_name = fractional
                                         ? "fractional-hypertree-width"
                                         : "hypertree-width";
    if (enable_cache) {
      out.cache = std::make_shared<BagScoreCache>(std::move(score));
      std::shared_ptr<BagScoreCache> cache = out.cache;
      out.cost = std::make_unique<WeightedWidthCost>(
          [cache](const VertexSet& bag) { return (*cache)(bag); },
          display_name);
    } else {
      out.cost = std::make_unique<WeightedWidthCost>(std::move(score),
                                                     display_name);
    }
    out.composition = CostComposition::kMax;
    return out;
  }
  std::string known;
  for (const std::string& name : KnownCostNames()) {
    known += (known.empty() ? "" : "|") + name;
  }
  return fail("unknown cost: " + cost_name + " (expected " + known + ")");
}

}  // namespace mintri
