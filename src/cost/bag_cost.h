#ifndef MINTRI_COST_BAG_COST_H_
#define MINTRI_COST_BAG_COST_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace mintri {

/// Numeric cost of a tree decomposition / triangulation. +infinity encodes
/// "forbidden" (used for constraint violations and width bounds).
using CostValue = double;

inline constexpr CostValue kInfiniteCost =
    std::numeric_limits<CostValue>::infinity();

/// Inputs to BagCost::Combine — the cost of the sub-decomposition obtained
/// by placing bag `omega` above the already-solved children blocks of the
/// dynamic program (Section 5 of the paper, Equation (1)):
///
///     H(S, C) = ∪_i H(S_i, C_i)  ∪  K_Ω .
///
/// `parent_separator` is the block's separator S (empty at the root call);
/// `block_vertices` is S ∪ C (all of V(G) at the root); child_blocks[i] is
/// S_i ∪ C_i for the i-th child block; child_costs[i] is the DP value of the
/// optimal triangulation of the i-th child's realization. The DP never calls
/// Combine with an infinite child cost.
struct CombineContext {
  const Graph& graph;  // the whole input graph G
  const VertexSet& omega;
  const VertexSet& parent_separator;
  const VertexSet& block_vertices;
  const std::vector<const VertexSet*>& child_blocks;
  const std::vector<CostValue>& child_costs;
};

/// A cost function over tree decompositions that is invariant under bag
/// equivalence (a "bag cost", Definition 3.2(1)) and split monotone
/// (Definition 3.2(2)). Implementations must satisfy, for every clique tree
/// assembled by the DP:
///
///     fold of Combine over the tree  ==  Evaluate(g, all bags) ,
///
/// which the test suite checks for every standard cost. Max-composed costs
/// (width) take the max of children and the new bag; sum-composed costs
/// (fill-in, state space) add a per-bag term that counts only what is new
/// relative to the parent separator, so that nothing is double counted
/// across adjacent bags.
class BagCost {
 public:
  virtual ~BagCost() = default;

  virtual std::string Name() const = 0;

  /// Cost of the sub-decomposition rooted at ctx.omega (see CombineContext).
  virtual CostValue Combine(const CombineContext& ctx) const = 0;

  /// Cost of a whole tree decomposition of g given as its bag set.
  virtual CostValue Evaluate(const Graph& g,
                             const std::vector<VertexSet>& bags) const = 0;

  /// Vertex-identity adapter for relabeled subgraphs. The ranked-forest
  /// layer triangulates each connected component as an induced subgraph
  /// with vertices renumbered 0..k-1, so costs whose bag scores depend on
  /// vertex *identity* (hypergraph edge covers, per-vertex domain sizes,
  /// weighted fill) would otherwise score the wrong vertices. Returns a
  /// cost equivalent to *this for the subgraph whose vertex i is original
  /// vertex old_of_new[i] (bags are translated back to original labels of
  /// capacity old_capacity before scoring), or nullptr when *this is
  /// invariant under relabeling (pure structure costs: width, fill).
  virtual std::unique_ptr<BagCost> RestrictTo(
      const std::vector<int>& old_of_new, int old_capacity) const {
    (void)old_of_new;
    (void)old_capacity;
    return nullptr;
  }
};

/// Number of unordered pairs {x, y} ⊆ omega that are non-adjacent in g and
/// not both inside `parent_separator` — the fill pairs "new" at this bag.
/// Shared by the fill-flavored costs.
long long NewFillPairs(const Graph& g, const VertexSet& omega,
                       const VertexSet& parent_separator);

}  // namespace mintri

#endif  // MINTRI_COST_BAG_COST_H_
