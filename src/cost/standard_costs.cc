#include "cost/standard_costs.h"

#include <algorithm>
#include <cmath>

namespace mintri {

namespace {

CostValue MaxChild(const std::vector<CostValue>& child_costs) {
  CostValue m = -kInfiniteCost;
  for (CostValue c : child_costs) m = std::max(m, c);
  return m;
}

CostValue SumChildren(const std::vector<CostValue>& child_costs) {
  CostValue s = 0;
  for (CostValue c : child_costs) s += c;
  return s;
}

}  // namespace

CostValue WidthCost::Combine(const CombineContext& ctx) const {
  return std::max<CostValue>(MaxChild(ctx.child_costs), ctx.omega.Count() - 1);
}

CostValue WidthCost::Evaluate(const Graph& g,
                              const std::vector<VertexSet>& bags) const {
  (void)g;
  CostValue w = 0;
  for (const VertexSet& b : bags) w = std::max<CostValue>(w, b.Count() - 1);
  return w;
}

CostValue FillInCost::Combine(const CombineContext& ctx) const {
  return SumChildren(ctx.child_costs) +
         static_cast<CostValue>(
             NewFillPairs(ctx.graph, ctx.omega, ctx.parent_separator));
}

CostValue FillInCost::Evaluate(const Graph& g,
                               const std::vector<VertexSet>& bags) const {
  Graph h = g;
  for (const VertexSet& b : bags) h.SaturateSet(b);
  return static_cast<CostValue>(h.NumEdges() - g.NumEdges());
}

double WidthThenFillCost::Multiplier(const Graph& g) {
  double n = g.NumVertices();
  return n * n;  // strictly larger than any possible fill-in
}

std::pair<int, long long> WidthThenFillCost::Decode(const Graph& g,
                                                    CostValue v) {
  double m = Multiplier(g);
  long long width = static_cast<long long>(v / m);
  long long fill = static_cast<long long>(v - width * m + 0.5);
  return {static_cast<int>(width), fill};
}

CostValue WidthThenFillCost::Combine(const CombineContext& ctx) const {
  const double m = Multiplier(ctx.graph);
  double width = ctx.omega.Count() - 1;
  double fill = static_cast<double>(
      NewFillPairs(ctx.graph, ctx.omega, ctx.parent_separator));
  for (CostValue c : ctx.child_costs) {
    double child_width = std::floor(c / m);
    width = std::max(width, child_width);
    fill += c - child_width * m;
  }
  return width * m + fill;
}

CostValue WidthThenFillCost::Evaluate(const Graph& g,
                                      const std::vector<VertexSet>& bags)
    const {
  return WidthCost().Evaluate(g, bags) * Multiplier(g) +
         FillInCost().Evaluate(g, bags);
}

std::unique_ptr<WeightedWidthCost> WeightedWidthCost::FromVertexWeights(
    std::vector<double> weights) {
  auto w = std::make_shared<std::vector<double>>(std::move(weights));
  return std::make_unique<WeightedWidthCost>(
      [w](const VertexSet& bag) {
        double s = 0;
        bag.ForEach([&](int v) { s += (*w)[v]; });
        return s;
      },
      "weighted-width");
}

CostValue WeightedWidthCost::Combine(const CombineContext& ctx) const {
  return std::max<CostValue>(MaxChild(ctx.child_costs), score_(ctx.omega));
}

std::unique_ptr<BagCost> WeightedWidthCost::RestrictTo(
    const std::vector<int>& old_of_new, int old_capacity) const {
  return std::make_unique<WeightedWidthCost>(
      [score = score_, old_of_new, old_capacity](const VertexSet& bag) {
        VertexSet original(old_capacity);
        bag.ForEach([&](int v) { original.Insert(old_of_new[v]); });
        return score(original);
      },
      name_);
}

CostValue WeightedWidthCost::Evaluate(const Graph& g,
                                      const std::vector<VertexSet>& bags)
    const {
  (void)g;
  CostValue m = -kInfiniteCost;
  for (const VertexSet& b : bags) m = std::max<CostValue>(m, score_(b));
  return m;
}

double WeightedFillCost::SumNewPairs(const Graph& g, const VertexSet& omega,
                                     const VertexSet& parent_separator) const {
  std::vector<int> members = omega.ToVector();
  double s = 0;
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = i + 1; j < members.size(); ++j) {
      int x = members[i], y = members[j];
      if (g.HasEdge(x, y)) continue;
      if (parent_separator.Contains(x) && parent_separator.Contains(y)) {
        continue;
      }
      s += weight_(x, y);
    }
  }
  return s;
}

CostValue WeightedFillCost::Combine(const CombineContext& ctx) const {
  CostValue s = 0;
  for (CostValue c : ctx.child_costs) s += c;
  return s + SumNewPairs(ctx.graph, ctx.omega, ctx.parent_separator);
}

CostValue WeightedFillCost::Evaluate(const Graph& g,
                                     const std::vector<VertexSet>& bags)
    const {
  Graph h = g;
  for (const VertexSet& b : bags) h.SaturateSet(b);
  double s = 0;
  for (const auto& [u, v] : h.Edges()) {
    if (!g.HasEdge(u, v)) s += weight_(u, v);
  }
  return s;
}

std::unique_ptr<BagCost> WeightedFillCost::RestrictTo(
    const std::vector<int>& old_of_new, int old_capacity) const {
  (void)old_capacity;
  return std::make_unique<WeightedFillCost>(
      [weight = weight_, old_of_new](int u, int v) {
        return weight(old_of_new[u], old_of_new[v]);
      },
      name_);
}

std::unique_ptr<TotalStateSpaceCost> TotalStateSpaceCost::Uniform(int n,
                                                                  double d) {
  return std::make_unique<TotalStateSpaceCost>(std::vector<double>(n, d));
}

double TotalStateSpaceCost::BagWeight(const VertexSet& bag) const {
  double p = 1;
  bag.ForEach([&](int v) { p *= domains_[v]; });
  return p;
}

CostValue TotalStateSpaceCost::Combine(const CombineContext& ctx) const {
  CostValue s = BagWeight(ctx.omega);
  for (CostValue c : ctx.child_costs) s += c;
  return s;
}

CostValue TotalStateSpaceCost::Evaluate(const Graph& g,
                                        const std::vector<VertexSet>& bags)
    const {
  (void)g;
  CostValue s = 0;
  for (const VertexSet& b : bags) s += BagWeight(b);
  return s;
}

std::unique_ptr<BagCost> TotalStateSpaceCost::RestrictTo(
    const std::vector<int>& old_of_new, int old_capacity) const {
  (void)old_capacity;
  std::vector<double> restricted(old_of_new.size());
  for (size_t i = 0; i < old_of_new.size(); ++i) {
    restricted[i] = domains_[old_of_new[i]];
  }
  return std::make_unique<TotalStateSpaceCost>(std::move(restricted));
}

}  // namespace mintri
