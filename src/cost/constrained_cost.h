#ifndef MINTRI_COST_CONSTRAINED_COST_H_
#define MINTRI_COST_CONSTRAINED_COST_H_

#include <vector>

#include "cost/bag_cost.h"

namespace mintri {

/// The block-local satisfaction test of Section 6.1, shared by
/// ConstrainedCost::Combine and the incremental MinTriangSolver so the two
/// paths can never diverge: true iff choosing bag ctx.omega for this block
/// violates an exclusion (U ⊆ Ω for some U ∈ X) or an inclusion (U ⊆ S∪C
/// that is neither inside Ω nor inside a child block, whose own finite cost
/// certifies the constraint there).
bool CombineViolatesConstraints(const CombineContext& ctx,
                                const std::vector<VertexSet>& include,
                                const std::vector<VertexSet>& exclude);

/// κ[I,X] of Section 6.1: wraps a split-monotone bag cost κ so that any
/// triangulation violating the inclusion constraints I or the exclusion
/// constraints X (both sets of minimal separators of G) gets cost ∞.
/// By Lemma 6.2 the wrapped cost is again a split-monotone bag cost, so
/// MinTriang⟨κ[I,X]⟩ stays correct — this is what turns the optimizer into
/// the oracle that Lawler–Murty needs.
///
/// The paper's satisfaction test — "for all U ∈ I ∪ X with U ⊆ V(H):
/// U is a clique of H iff U ∈ I" — is applied block-locally during the DP:
/// a set is a clique of a chordal graph iff it is contained in a maximal
/// clique, so an exclusion U is violated exactly when U ⊆ Ω for a chosen
/// bag, and an inclusion U ⊆ S∪C must lie inside the chosen Ω or inside a
/// child block (whose own finite cost certifies the constraint there).
class ConstrainedCost : public BagCost {
 public:
  ConstrainedCost(const BagCost& base, std::vector<VertexSet> include,
                  std::vector<VertexSet> exclude)
      : base_(base),
        include_(std::move(include)),
        exclude_(std::move(exclude)) {}

  std::string Name() const override { return base_.Name() + "[I,X]"; }

  CostValue Combine(const CombineContext& ctx) const override;

  /// Evaluates base cost, or ∞ if the bag set violates [I,X]: an inclusion
  /// separator must be inside some bag; an exclusion separator inside none.
  CostValue Evaluate(const Graph& g,
                     const std::vector<VertexSet>& bags) const override;

 private:
  const BagCost& base_;
  std::vector<VertexSet> include_;
  std::vector<VertexSet> exclude_;
};

}  // namespace mintri

#endif  // MINTRI_COST_CONSTRAINED_COST_H_
