#ifndef MINTRI_COST_COST_MODEL_REGISTRY_H_
#define MINTRI_COST_COST_MODEL_REGISTRY_H_

#include <istream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cost/bag_score_cache.h"
#include "enumeration/ranked_forest.h"
#include "hypergraph/hypergraph.h"
#include "inference/model_io.h"

namespace mintri {

/// A loaded problem instance: the graph the ranked stack triangulates plus
/// the application payload (hypergraph for edge-cover costs, graphical
/// model for the state-space cost) when the input format carries one.
struct CostModelInstance {
  std::string name;
  Graph graph;
  std::optional<Hypergraph> hypergraph;  // .hg inputs, tpch:<q> builtins
  std::optional<GraphicalModel> model;   // .uai inputs, gm:<name> builtins
};

/// How ReadInstance should interpret a stream.
enum class InstanceKind { kGraph, kHypergraph, kModel };

/// Loads an instance from a spec — either a file path whose extension
/// selects the format (.hg → hypergraph whose primal graph is
/// triangulated, .uai → factor list whose moral graph is triangulated, any
/// other path → DIMACS/PACE .gr graph) or a builtin:
///   tpch:<q>        the hypergraph (CQ) view of TPC-H query q (1..22)
///   tpch-graph:<q>  the plain TPC-H join graph
///   gm:<name>       a workloads::InferenceModelByName graphical model
/// Returns std::nullopt with a human-readable *error on failure.
std::optional<CostModelInstance> LoadInstance(const std::string& spec,
                                              std::string* error);

/// Stream variant (stdin support): parses `in` as `kind`.
std::optional<CostModelInstance> ReadInstance(std::istream& in,
                                              InstanceKind kind,
                                              const std::string& name,
                                              std::string* error);

/// A constructed application cost: the BagCost to rank by, how it composes
/// across connected components, and — for the edge-cover costs — the
/// memoized bag-score cache sitting in front of the WeightedWidthCost
/// (null when the cost has no memoizable bag score or caching was
/// disabled). The instance must outlive the CostModel: the cost closures
/// reference its hypergraph/model in place.
struct CostModel {
  std::unique_ptr<BagCost> cost;
  CostComposition composition = CostComposition::kMax;
  std::shared_ptr<BagScoreCache> cache;
};

/// The registry's cost names: width, fill, width-then-fill, state-space,
/// hypertree, fhw. hypertree/fhw require an instance with a hypergraph;
/// state-space uses the model's domain sizes when present and uniform
/// domains of 2 otherwise.
const std::vector<std::string>& KnownCostNames();

/// Constructs the named cost over `instance`. `enable_cache` wires the
/// bag-score cache in front of the edge-cover scores (hypertree/fhw).
/// Returns std::nullopt with a human-readable *error for unknown names or
/// instances missing the required payload.
std::optional<CostModel> MakeCostModel(const std::string& cost_name,
                                       const CostModelInstance& instance,
                                       bool enable_cache, std::string* error);

}  // namespace mintri

#endif  // MINTRI_COST_COST_MODEL_REGISTRY_H_
