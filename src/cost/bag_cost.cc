#include "cost/bag_cost.h"

namespace mintri {

long long NewFillPairs(const Graph& g, const VertexSet& omega,
                       const VertexSet& parent_separator) {
  std::vector<int> members = omega.ToVector();
  long long count = 0;
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = i + 1; j < members.size(); ++j) {
      int x = members[i], y = members[j];
      if (g.HasEdge(x, y)) continue;
      if (parent_separator.Contains(x) && parent_separator.Contains(y)) {
        continue;  // counted at an ancestor bag that contains the separator
      }
      ++count;
    }
  }
  return count;
}

}  // namespace mintri
