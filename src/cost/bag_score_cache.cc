#include "cost/bag_score_cache.h"

namespace mintri {

CostValue BagScoreCache::operator()(const VertexSet& bag) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++lookups_;
    const int idx = table_.Find(bag);
    if (idx >= 0) {
      ++hits_;
      return values_[idx];
    }
    // Counted here, not after the insert: a racing miss that loses the
    // insert is still a miss, keeping lookups == hits + misses exact.
    ++misses_;
  }
  const CostValue value = score_(bag);
  std::lock_guard<std::mutex> lock(mutex_);
  uint32_t idx = 0;
  if (table_.Insert(bag, &idx)) values_.push_back(value);
  return values_[idx];
}

BagScoreCache::Stats BagScoreCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Stats{lookups_, hits_, misses_};
}

}  // namespace mintri
