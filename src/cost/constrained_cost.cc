#include "cost/constrained_cost.h"

namespace mintri {

bool CombineViolatesConstraints(const CombineContext& ctx,
                                const std::vector<VertexSet>& include,
                                const std::vector<VertexSet>& exclude) {
  for (const VertexSet& u : exclude) {
    if (u.IsSubsetOf(ctx.omega)) return true;
  }
  for (const VertexSet& u : include) {
    if (!u.IsSubsetOf(ctx.block_vertices)) continue;
    if (u.IsSubsetOf(ctx.omega)) continue;
    bool inside_child = false;
    for (const VertexSet* child : ctx.child_blocks) {
      if (u.IsSubsetOf(*child)) {
        inside_child = true;  // the child's finite cost certifies U there
        break;
      }
    }
    if (!inside_child) return true;
  }
  return false;
}

CostValue ConstrainedCost::Combine(const CombineContext& ctx) const {
  if (CombineViolatesConstraints(ctx, include_, exclude_)) {
    return kInfiniteCost;
  }
  return base_.Combine(ctx);
}

CostValue ConstrainedCost::Evaluate(const Graph& g,
                                    const std::vector<VertexSet>& bags) const {
  for (const VertexSet& u : exclude_) {
    for (const VertexSet& bag : bags) {
      if (u.IsSubsetOf(bag)) return kInfiniteCost;
    }
  }
  for (const VertexSet& u : include_) {
    bool inside = false;
    for (const VertexSet& bag : bags) {
      if (u.IsSubsetOf(bag)) {
        inside = true;
        break;
      }
    }
    if (!inside) return kInfiniteCost;
  }
  return base_.Evaluate(g, bags);
}

}  // namespace mintri
