#include "cost/constrained_cost.h"

namespace mintri {

CostValue ConstrainedCost::Combine(const CombineContext& ctx) const {
  for (const VertexSet& u : exclude_) {
    if (u.IsSubsetOf(ctx.omega)) return kInfiniteCost;
  }
  for (const VertexSet& u : include_) {
    if (!u.IsSubsetOf(ctx.block_vertices)) continue;
    if (u.IsSubsetOf(ctx.omega)) continue;
    bool inside_child = false;
    for (const VertexSet* child : ctx.child_blocks) {
      if (u.IsSubsetOf(*child)) {
        inside_child = true;  // the child's finite cost certifies U there
        break;
      }
    }
    if (!inside_child) return kInfiniteCost;
  }
  return base_.Combine(ctx);
}

CostValue ConstrainedCost::Evaluate(const Graph& g,
                                    const std::vector<VertexSet>& bags) const {
  for (const VertexSet& u : exclude_) {
    for (const VertexSet& bag : bags) {
      if (u.IsSubsetOf(bag)) return kInfiniteCost;
    }
  }
  for (const VertexSet& u : include_) {
    bool inside = false;
    for (const VertexSet& bag : bags) {
      if (u.IsSubsetOf(bag)) {
        inside = true;
        break;
      }
    }
    if (!inside) return kInfiniteCost;
  }
  return base_.Evaluate(g, bags);
}

}  // namespace mintri
