#ifndef MINTRI_COST_STANDARD_COSTS_H_
#define MINTRI_COST_STANDARD_COSTS_H_

#include <functional>
#include <memory>
#include <vector>

#include "cost/bag_cost.h"

namespace mintri {

/// width(G, T): maximal bag cardinality minus one (Section 3).
class WidthCost : public BagCost {
 public:
  std::string Name() const override { return "width"; }
  CostValue Combine(const CombineContext& ctx) const override;
  CostValue Evaluate(const Graph& g,
                     const std::vector<VertexSet>& bags) const override;
};

/// fill-in(G, T): the number of edges added when saturating all bags.
class FillInCost : public BagCost {
 public:
  std::string Name() const override { return "fill-in"; }
  CostValue Combine(const CombineContext& ctx) const override;
  CostValue Evaluate(const Graph& g,
                     const std::vector<VertexSet>& bags) const override;
};

/// Lexicographic width-then-fill: the paper's example
/// κ(G,T) = |E(KV)| · width(G,T) + fill-in(G,T), a single split-monotone
/// value because fill-in < n(n-1)/2 ≤ multiplier.
class WidthThenFillCost : public BagCost {
 public:
  std::string Name() const override { return "width-then-fill"; }
  CostValue Combine(const CombineContext& ctx) const override;
  CostValue Evaluate(const Graph& g,
                     const std::vector<VertexSet>& bags) const override;

  static double Multiplier(const Graph& g);
  /// Decodes a combined value back into (width, fill).
  static std::pair<int, long long> Decode(const Graph& g, CostValue v);
};

/// widthc(G, T) of Furuse–Yamazaki: each bag is scored by a user-provided
/// function and the cost is the maximal bag score. Vertex-additive weights
/// (Σ_{v∈b} w(v)) are the common instantiation; a hypergraph edge-cover
/// score yields (fractional) hypertree width.
class WeightedWidthCost : public BagCost {
 public:
  using BagScore = std::function<double(const VertexSet&)>;
  explicit WeightedWidthCost(BagScore score, std::string name = "weighted-width")
      : score_(std::move(score)), name_(std::move(name)) {}

  /// Convenience: additive vertex weights.
  static std::unique_ptr<WeightedWidthCost> FromVertexWeights(
      std::vector<double> weights);

  std::string Name() const override { return name_; }
  CostValue Combine(const CombineContext& ctx) const override;
  CostValue Evaluate(const Graph& g,
                     const std::vector<VertexSet>& bags) const override;
  std::unique_ptr<BagCost> RestrictTo(const std::vector<int>& old_of_new,
                                      int old_capacity) const override;

 private:
  BagScore score_;
  std::string name_;
};

/// fill-inc(G, T) of Furuse–Yamazaki: the sum of c(e) over the edges e added
/// when saturating all bags.
class WeightedFillCost : public BagCost {
 public:
  using EdgeWeight = std::function<double(int, int)>;
  explicit WeightedFillCost(EdgeWeight weight,
                            std::string name = "weighted-fill")
      : weight_(std::move(weight)), name_(std::move(name)) {}

  std::string Name() const override { return name_; }
  CostValue Combine(const CombineContext& ctx) const override;
  CostValue Evaluate(const Graph& g,
                     const std::vector<VertexSet>& bags) const override;
  std::unique_ptr<BagCost> RestrictTo(const std::vector<int>& old_of_new,
                                      int old_capacity) const override;

 private:
  double SumNewPairs(const Graph& g, const VertexSet& omega,
                     const VertexSet& parent_separator) const;
  EdgeWeight weight_;
  std::string name_;
};

/// Σ over bags of ∏_{v∈bag} domain(v): the total junction-tree state space,
/// the natural cost for probabilistic inference (Lauritzen–Spiegelhalter) —
/// one of the paper's motivating "costs over the set of bags" beyond the
/// classics (sum of exponents of bag cardinalities).
class TotalStateSpaceCost : public BagCost {
 public:
  explicit TotalStateSpaceCost(std::vector<double> domain_sizes)
      : domains_(std::move(domain_sizes)) {}

  /// Uniform domain size d for every vertex: Σ over bags of d^|bag|.
  static std::unique_ptr<TotalStateSpaceCost> Uniform(int n, double d);

  std::string Name() const override { return "total-state-space"; }
  CostValue Combine(const CombineContext& ctx) const override;
  CostValue Evaluate(const Graph& g,
                     const std::vector<VertexSet>& bags) const override;
  std::unique_ptr<BagCost> RestrictTo(const std::vector<int>& old_of_new,
                                      int old_capacity) const override;

 private:
  double BagWeight(const VertexSet& bag) const;
  std::vector<double> domains_;
};

}  // namespace mintri

#endif  // MINTRI_COST_STANDARD_COSTS_H_
