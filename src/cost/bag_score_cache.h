#ifndef MINTRI_COST_BAG_SCORE_CACHE_H_
#define MINTRI_COST_BAG_SCORE_CACHE_H_

#include <functional>
#include <mutex>
#include <vector>

#include "cost/bag_cost.h"
#include "graph/vertex_set_table.h"

namespace mintri {

/// Thread-safe memoization of an expensive per-bag score (an edge-cover
/// branch-and-bound, a fractional-cover LP, a state-space product). Ranked
/// enumeration re-evaluates the same bags constantly — every MinTriang
/// repair re-scores the PMCs it touches, and distinct triangulations share
/// most of their bags — so a WeightedWidthCost whose BagScore routes through
/// this cache stops re-solving identical subproblems. Keyed on the bags'
/// cached 64-bit VertexSet hashes, backed by the same VertexSetTable layout
/// as the enumeration engines (full equality check after the hash, so
/// collisions cannot corrupt scores).
///
/// The underlying score runs OUTSIDE the lock (an LP solve must not
/// serialize other lookups); when two threads race on the same new bag, one
/// insert wins and both return the winner's value — scores are
/// deterministic functions of the bag, so either result is identical.
class BagScoreCache {
 public:
  using Score = std::function<CostValue(const VertexSet&)>;

  explicit BagScoreCache(Score score) : score_(std::move(score)) {}

  /// The memoized score of `bag`.
  CostValue operator()(const VertexSet& bag);

  /// Every lookup is either a hit or a miss at the instant it probes the
  /// table — `lookups == hits + misses` holds under any interleaving. A
  /// racing miss that loses the insert still counts as a miss (it did pay
  /// for a score computation).
  struct Stats {
    long long lookups = 0;
    long long hits = 0;
    long long misses = 0;
    double HitRate() const {
      return lookups > 0 ? static_cast<double>(hits) / lookups : 0.0;
    }
  };
  Stats stats() const;

 private:
  Score score_;
  mutable std::mutex mutex_;
  VertexSetTable table_;
  std::vector<CostValue> values_;  // values_[i] = score of table_.At(i)
  long long lookups_ = 0;
  long long hits_ = 0;
  long long misses_ = 0;
};

}  // namespace mintri

#endif  // MINTRI_COST_BAG_SCORE_CACHE_H_
