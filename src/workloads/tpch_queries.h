#ifndef MINTRI_WORKLOADS_TPCH_QUERIES_H_
#define MINTRI_WORKLOADS_TPCH_QUERIES_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "hypergraph/hypergraph.h"

namespace mintri {
namespace workloads {

/// A TPC-H join query as a Gaifman (join) graph: one vertex per relation
/// occurrence, one edge per join predicate. These are the "database queries
/// (TPC-H)" graphs of Section 7.1, hand-coded from the benchmark's 22
/// queries (self-joins and correlated subqueries contribute separate
/// occurrences). As in the paper, these graphs are tiny and all their
/// minimal triangulations enumerate within seconds.
struct TpchQuery {
  int number;                        // 1..22
  std::vector<std::string> relations;  // vertex labels
  Graph graph;
};

/// The join graph of TPC-H query q (1..22).
TpchQuery TpchQueryGraph(int q);

/// All 22 queries.
std::vector<TpchQuery> AllTpchQueries();

/// The conjunctive-query (hypergraph) view of a TPC-H join query, the input
/// the paper's hypertree-width application costs score: one vertex per join
/// predicate (the equated attributes) plus one "private attributes" vertex
/// per relation occurrence, and one hyperedge per relation occurrence —
/// {its private vertex} ∪ {its incident join predicates}. Every vertex is
/// covered (each relation has non-join attributes in TPC-H), so edge-cover
/// bag scores over this hypergraph's primal graph are finite and ranked
/// enumeration under --cost=hypertree|fhw measures the query's
/// (fractional) hypertree width. Vertex layout: private vertex i for
/// relation i in [0, R), then join vertex R + j for the j-th edge of
/// q.graph.Edges().
Hypergraph TpchQueryHypergraph(const TpchQuery& q);

}  // namespace workloads
}  // namespace mintri

#endif  // MINTRI_WORKLOADS_TPCH_QUERIES_H_
