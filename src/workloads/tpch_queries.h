#ifndef MINTRI_WORKLOADS_TPCH_QUERIES_H_
#define MINTRI_WORKLOADS_TPCH_QUERIES_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace mintri {
namespace workloads {

/// A TPC-H join query as a Gaifman (join) graph: one vertex per relation
/// occurrence, one edge per join predicate. These are the "database queries
/// (TPC-H)" graphs of Section 7.1, hand-coded from the benchmark's 22
/// queries (self-joins and correlated subqueries contribute separate
/// occurrences). As in the paper, these graphs are tiny and all their
/// minimal triangulations enumerate within seconds.
struct TpchQuery {
  int number;                        // 1..22
  std::vector<std::string> relations;  // vertex labels
  Graph graph;
};

/// The join graph of TPC-H query q (1..22).
TpchQuery TpchQueryGraph(int q);

/// All 22 queries.
std::vector<TpchQuery> AllTpchQueries();

}  // namespace workloads
}  // namespace mintri

#endif  // MINTRI_WORKLOADS_TPCH_QUERIES_H_
