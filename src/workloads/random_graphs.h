#ifndef MINTRI_WORKLOADS_RANDOM_GRAPHS_H_
#define MINTRI_WORKLOADS_RANDOM_GRAPHS_H_

#include <cstdint>

#include "graph/graph.h"

namespace mintri {
namespace workloads {

/// The Erdős–Rényi model G(n, p) used throughout Section 7: every pair is an
/// edge independently with probability p. Deterministic given the seed.
Graph ErdosRenyi(int n, double p, uint64_t seed);

/// G(n, p) conditioned on connectivity: a uniformly random spanning tree is
/// layered underneath the ER edges. Used where the algorithms require a
/// connected input.
Graph ConnectedErdosRenyi(int n, double p, uint64_t seed);

/// A uniformly random labeled tree on n vertices (random Prüfer sequence).
Graph RandomTree(int n, uint64_t seed);

}  // namespace workloads
}  // namespace mintri

#endif  // MINTRI_WORKLOADS_RANDOM_GRAPHS_H_
