#ifndef MINTRI_WORKLOADS_INFERENCE_MODELS_H_
#define MINTRI_WORKLOADS_INFERENCE_MODELS_H_

#include <optional>
#include <string>
#include <vector>

#include "inference/model_io.h"

namespace mintri {
namespace workloads {

/// A named graphical-model instance (the inference analogue of
/// DatasetGraph): input to the state-space application cost and the
/// appcost benchmark suite.
struct NamedModel {
  std::string name;
  GraphicalModel model;
};

/// Deterministic small graphical models spanning the inference regimes the
/// paper motivates (grid MRFs, moralized Bayesian networks, chains with
/// mixed domain sizes). All are sized so ranked enumeration of their moral
/// graphs completes in well under a second; tables are strictly positive so
/// inference is non-degenerate.
std::vector<NamedModel> InferenceModels();

/// A single model by name ("grid3x3", "grid4x3", "chain10", "bn12",
/// "bn16"); std::nullopt for unknown names. The `gm:<name>` builtin specs
/// of `mintri batch` resolve through this.
std::optional<GraphicalModel> InferenceModelByName(const std::string& name);

/// A random Bayesian network as a Markov model: each vertex v > 0 gets up
/// to `max_parents` random earlier parents and one factor over
/// {v} ∪ parents; domains cycle through 2..max_domain. Deterministic given
/// the seed.
GraphicalModel RandomBayesNet(int n, int max_parents, int max_domain,
                              uint64_t seed);

/// A grid MRF: pairwise factors on a rows × cols lattice plus unary
/// factors; domains alternate 2 and 3. Deterministic given the seed.
GraphicalModel GridMrf(int rows, int cols, uint64_t seed);

}  // namespace workloads
}  // namespace mintri

#endif  // MINTRI_WORKLOADS_INFERENCE_MODELS_H_
