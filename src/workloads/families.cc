#include "workloads/families.h"

#include <cassert>

#include "workloads/graphical_models.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"
#include "workloads/tpch_queries.h"

namespace mintri {
namespace workloads {

namespace {

DatasetFamily Csp() {
  DatasetFamily f{"CSP", {}};
  f.graphs.push_back({"myciel3g", Mycielski(3)});
  f.graphs.push_back({"myciel4g", Mycielski(4)});
  f.graphs.push_back({"myciel5g", Mycielski(5)});
  for (int i = 0; i < 6; ++i) {
    f.graphs.push_back({"csp_rand_" + std::to_string(i),
                        CspGraph(14 + 2 * i, 10 + 2 * i, 3, 100 + i)});
  }
  return f;
}

DatasetFamily ObjectDetection() {
  DatasetFamily f{"ObjectDetection", {}};
  for (int i = 0; i < 8; ++i) {
    f.graphs.push_back({"objdet_" + std::to_string(i),
                        ObjectDetectionGraph(15 + i % 4, 0.4, 7, 200 + i)});
  }
  return f;
}

DatasetFamily Promedas() {
  DatasetFamily f{"Promedas", {}};
  for (int i = 0; i < 4; ++i) {
    f.graphs.push_back({"promedas_" + std::to_string(i),
                        PromedasGraph(16 + 4 * i, 28 + 6 * i, 3, 300 + i)});
  }
  return f;
}

DatasetFamily ImageAlignment() {
  DatasetFamily f{"ImageAlignment", {}};
  for (int i = 0; i < 4; ++i) {
    f.graphs.push_back({"imgalign_" + std::to_string(i),
                        ImageAlignmentGraph(4, 5 + i, 6 + i, 400 + i)});
  }
  return f;
}

DatasetFamily Pace100() {
  DatasetFamily f{"Pace2016-100s", {}};
  f.graphs.push_back({"petersen", Petersen()});
  f.graphs.push_back({"myciel4", Mycielski(4)});
  f.graphs.push_back({"queen4", Queen(4)});
  f.graphs.push_back({"queen5", Queen(5)});
  f.graphs.push_back({"hypercube3", Hypercube(3)});
  f.graphs.push_back({"hypercube4", Hypercube(4)});
  f.graphs.push_back({"grid4x4", Grid(4, 4)});
  for (int i = 0; i < 3; ++i) {
    f.graphs.push_back({"cfg_" + std::to_string(i),
                        MoralizedRandomDag(24 + 4 * i, 2, 500 + i)});
  }
  return f;
}

DatasetFamily Pace1000() {
  DatasetFamily f{"Pace2016-1000s", {}};
  f.graphs.push_back({"myciel5", Mycielski(5)});
  f.graphs.push_back({"queen6", Queen(6)});
  f.graphs.push_back({"grid5x5", Grid(5, 5)});
  return f;
}

DatasetFamily Grids() {
  DatasetFamily f{"Grids", {}};
  f.graphs.push_back({"grid4x5", Grid(4, 5)});
  f.graphs.push_back({"grid5x5", Grid(5, 5)});
  f.graphs.push_back({"grid5x6", Grid(5, 6)});
  f.graphs.push_back({"grid6x6", Grid(6, 6)});
  f.graphs.push_back({"grid6x6d", Grid(6, 6, /*diagonals=*/true)});
  return f;
}

DatasetFamily Dbn() {
  DatasetFamily f{"DBN", {}};
  for (int i = 0; i < 4; ++i) {
    f.graphs.push_back({"dbn_" + std::to_string(i),
                        DbnChain(4 + i, 6, 0.3, 0.25, 600 + i)});
  }
  return f;
}

DatasetFamily Segmentation() {
  DatasetFamily f{"Segmentation", {}};
  for (int i = 0; i < 4; ++i) {
    f.graphs.push_back({"segment_" + std::to_string(i),
                        SegmentationGraph(5, 6 + i, 8, 700 + i)});
  }
  return f;
}

// The "hopeless" PIC2011 families of Fig. 5: graphs sized past the
// minimal-separator blow-up so that MinSep does not terminate in budget.
DatasetFamily DenseFamily(const std::string& name, int n0, double p,
                          uint64_t seed0) {
  DatasetFamily f{name, {}};
  for (int i = 0; i < 3; ++i) {
    f.graphs.push_back({name + "_" + std::to_string(i),
                        ConnectedErdosRenyi(n0 + 10 * i, p, seed0 + i)});
  }
  return f;
}

DatasetFamily Tpch() {
  DatasetFamily f{"TPC-H", {}};
  for (TpchQuery& q : AllTpchQueries()) {
    f.graphs.push_back({"tpch_q" + std::to_string(q.number),
                        std::move(q.graph)});
  }
  return f;
}

}  // namespace

std::vector<DatasetFamily> AllFamilies() {
  return {
      DenseFamily("Alchemy", 55, 0.25, 800),
      DenseFamily("Pedigree", 60, 0.2, 810),
      DenseFamily("ProteinProtein", 65, 0.25, 820),
      ImageAlignment(),
      Pace1000(),
      DenseFamily("ProteinFolding", 60, 0.3, 830),
      Tpch(),
      Grids(),
      Csp(),
      Segmentation(),
      Dbn(),
      ObjectDetection(),
      Promedas(),
      Pace100(),
  };
}

DatasetFamily FamilyByName(const std::string& name) {
  for (DatasetFamily& f : AllFamilies()) {
    if (f.name == name) return f;
  }
  assert(false && "unknown dataset family");
  return {};
}

}  // namespace workloads
}  // namespace mintri
