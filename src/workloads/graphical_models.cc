#include "workloads/graphical_models.h"

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace mintri {
namespace workloads {

namespace {

// Marries all parents of every child and drops edge directions.
Graph Moralize(int n, const std::vector<std::vector<int>>& parents) {
  Graph g(n);
  for (int child = 0; child < n; ++child) {
    for (size_t i = 0; i < parents[child].size(); ++i) {
      g.AddEdge(parents[child][i], child);
      for (size_t j = i + 1; j < parents[child].size(); ++j) {
        g.AddEdge(parents[child][i], parents[child][j]);
      }
    }
  }
  return g;
}

}  // namespace

Graph MoralizedRandomDag(int n, int max_parents, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int>> parents(n);
  for (int v = 1; v < n; ++v) {
    int k = rng.NextInt(1, std::min(max_parents, v));
    for (int i = 0; i < k; ++i) {
      int p = rng.NextInt(0, v - 1);
      if (std::find(parents[v].begin(), parents[v].end(), p) ==
          parents[v].end()) {
        parents[v].push_back(p);
      }
    }
  }
  return Moralize(n, parents);
}

Graph DbnChain(int slices, int per_slice, double p_intra, double p_inter,
               uint64_t seed) {
  Rng rng(seed);
  const int n = slices * per_slice;
  Graph g(n);
  auto id = [per_slice](int s, int i) { return s * per_slice + i; };
  for (int s = 0; s < slices; ++s) {
    // Intra-slice structure (identical random pattern per slice would be
    // truer to a DBN template, so draw it once).
    for (int i = 0; i < per_slice; ++i) {
      if (i + 1 < per_slice) g.AddEdge(id(s, i), id(s, i + 1));
    }
  }
  // One template of intra / inter connections, repeated across slices.
  std::vector<std::pair<int, int>> intra, inter;
  for (int i = 0; i < per_slice; ++i) {
    for (int j = i + 1; j < per_slice; ++j) {
      if (rng.NextBool(p_intra)) intra.emplace_back(i, j);
    }
    for (int j = 0; j < per_slice; ++j) {
      if (rng.NextBool(p_inter)) inter.emplace_back(i, j);
    }
  }
  for (int s = 0; s < slices; ++s) {
    for (const auto& [i, j] : intra) g.AddEdge(id(s, i), id(s, j));
    if (s + 1 < slices) {
      for (const auto& [i, j] : inter) g.AddEdge(id(s, i), id(s + 1, j));
    }
  }
  return g;
}

Graph SegmentationGraph(int rows, int cols, int extra_links, uint64_t seed) {
  Rng rng(seed);
  Graph g(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  for (int k = 0; k < extra_links; ++k) {
    int r = rng.NextInt(0, rows - 2);
    int c = rng.NextInt(0, cols - 2);
    g.AddEdge(id(r, c), id(r + 1, c + 1));
  }
  return g;
}

Graph PromedasGraph(int diseases, int findings, int max_parents,
                    uint64_t seed) {
  Rng rng(seed);
  const int n = diseases + findings;
  std::vector<std::vector<int>> parents(n);
  for (int f = 0; f < findings; ++f) {
    int child = diseases + f;
    int k = rng.NextInt(1, max_parents);
    for (int i = 0; i < k; ++i) {
      int d = rng.NextInt(0, diseases - 1);
      if (std::find(parents[child].begin(), parents[child].end(), d) ==
          parents[child].end()) {
        parents[child].push_back(d);
      }
    }
  }
  return Moralize(n, parents);
}

Graph ObjectDetectionGraph(int parts, double core_p, int periphery,
                           uint64_t seed) {
  Rng rng(seed);
  const int n = parts + periphery;
  Graph g(n);
  for (int i = 0; i < parts; ++i) {
    g.AddEdge(i, (i + 1) % parts);  // ring backbone keeps the core connected
    for (int j = i + 2; j < parts; ++j) {
      if (rng.NextBool(core_p)) g.AddEdge(i, j);
    }
  }
  for (int p = 0; p < periphery; ++p) {
    int v = parts + p;
    int attach = rng.NextInt(1, 2);
    for (int i = 0; i < attach; ++i) g.AddEdge(v, rng.NextInt(0, parts - 1));
  }
  return g;
}

Graph CspGraph(int n, int constraints, int arity, uint64_t seed) {
  Rng rng(seed);
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);  // keep connected
  for (int c = 0; c < constraints; ++c) {
    int k = rng.NextInt(2, arity);
    std::vector<int> scope;
    for (int i = 0; i < k; ++i) scope.push_back(rng.NextInt(0, n - 1));
    for (size_t i = 0; i < scope.size(); ++i) {
      for (size_t j = i + 1; j < scope.size(); ++j) {
        g.AddEdge(scope[i], scope[j]);
      }
    }
  }
  return g;
}

Graph ImageAlignmentGraph(int rows, int cols, int matches, uint64_t seed) {
  Rng rng(seed);
  Graph g(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  for (int k = 0; k < matches; ++k) {
    int r1 = rng.NextInt(0, rows - 1), c1 = rng.NextInt(0, cols - 1);
    int r2 = std::min(rows - 1, r1 + rng.NextInt(0, 2));
    int c2 = std::min(cols - 1, c1 + rng.NextInt(0, 2));
    if (id(r1, c1) != id(r2, c2)) g.AddEdge(id(r1, c1), id(r2, c2));
  }
  return g;
}

}  // namespace workloads
}  // namespace mintri
