#include "workloads/named_graphs.h"

#include <cassert>

namespace mintri {
namespace workloads {

Graph Path(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

Graph Cycle(int n) {
  Graph g = Path(n);
  if (n >= 3) g.AddEdge(n - 1, 0);
  return g;
}

Graph Complete(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

Graph CompleteBipartite(int a, int b) {
  Graph g(a + b);
  for (int i = 0; i < a; ++i) {
    for (int j = 0; j < b; ++j) g.AddEdge(i, a + j);
  }
  return g;
}

Graph Star(int leaves) { return CompleteBipartite(1, leaves); }

Graph Grid(int rows, int cols, bool diagonals) {
  Graph g(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.AddEdge(id(r, c), id(r + 1, c));
      if (diagonals && r + 1 < rows && c + 1 < cols) {
        g.AddEdge(id(r, c), id(r + 1, c + 1));
      }
    }
  }
  return g;
}

Graph Petersen() {
  Graph g(10);
  for (int i = 0; i < 5; ++i) {
    g.AddEdge(i, (i + 1) % 5);        // outer pentagon
    g.AddEdge(5 + i, 5 + (i + 2) % 5);  // inner pentagram
    g.AddEdge(i, 5 + i);              // spokes
  }
  return g;
}

Graph Mycielski(int k) {
  assert(k >= 2);
  Graph g = Complete(2);  // K2
  for (int step = 2; step < k; ++step) {
    const int n = g.NumVertices();
    Graph next(2 * n + 1);
    for (const auto& [u, v] : g.Edges()) {
      next.AddEdge(u, v);          // original
      next.AddEdge(n + u, v);      // shadow u_i ~ N(v_i)
      next.AddEdge(n + v, u);
    }
    const int w = 2 * n;
    for (int i = 0; i < n; ++i) next.AddEdge(n + i, w);
    g = std::move(next);
  }
  return g;
}

Graph Queen(int n) {
  Graph g(n * n);
  auto id = [n](int r, int c) { return r * n + c; };
  for (int r1 = 0; r1 < n; ++r1) {
    for (int c1 = 0; c1 < n; ++c1) {
      for (int r2 = 0; r2 < n; ++r2) {
        for (int c2 = 0; c2 < n; ++c2) {
          if (r1 == r2 && c1 == c2) continue;
          if (r1 == r2 || c1 == c2 || r1 - c1 == r2 - c2 ||
              r1 + c1 == r2 + c2) {
            g.AddEdge(id(r1, c1), id(r2, c2));
          }
        }
      }
    }
  }
  return g;
}

Graph Hypercube(int d) {
  const int n = 1 << d;
  Graph g(n);
  for (int v = 0; v < n; ++v) {
    for (int bit = 0; bit < d; ++bit) {
      int u = v ^ (1 << bit);
      if (u > v) g.AddEdge(v, u);
    }
  }
  return g;
}

}  // namespace workloads
}  // namespace mintri
