#include "workloads/tpch_queries.h"

#include <cassert>
#include <map>

namespace mintri {
namespace workloads {

namespace {

// Builds a TpchQuery from relation labels and label pairs.
TpchQuery Make(int number, std::vector<std::string> relations,
               std::vector<std::pair<std::string, std::string>> joins) {
  TpchQuery q;
  q.number = number;
  q.relations = std::move(relations);
  std::map<std::string, int> index;
  for (size_t i = 0; i < q.relations.size(); ++i) {
    index[q.relations[i]] = static_cast<int>(i);
  }
  q.graph = Graph(static_cast<int>(q.relations.size()));
  for (const auto& [a, b] : joins) {
    assert(index.count(a) && index.count(b));
    q.graph.AddEdge(index[a], index[b]);
  }
  return q;
}

}  // namespace

TpchQuery TpchQueryGraph(int query) {
  // Relation occurrences and join predicates of the 22 TPC-H queries.
  // Correlated subqueries contribute their own occurrences (suffix "2").
  switch (query) {
    case 1:
      return Make(1, {"lineitem"}, {});
    case 2:
      return Make(2,
                  {"part", "supplier", "partsupp", "nation", "region",
                   "partsupp2", "supplier2", "nation2", "region2"},
                  {{"part", "partsupp"},
                   {"supplier", "partsupp"},
                   {"supplier", "nation"},
                   {"nation", "region"},
                   {"part", "partsupp2"},
                   {"supplier2", "partsupp2"},
                   {"supplier2", "nation2"},
                   {"nation2", "region2"}});
    case 3:
      return Make(3, {"customer", "orders", "lineitem"},
                  {{"customer", "orders"}, {"orders", "lineitem"}});
    case 4:
      return Make(4, {"orders", "lineitem"}, {{"orders", "lineitem"}});
    case 5:
      return Make(5,
                  {"customer", "orders", "lineitem", "supplier", "nation",
                   "region"},
                  {{"customer", "orders"},
                   {"orders", "lineitem"},
                   {"lineitem", "supplier"},
                   {"customer", "nation"},
                   {"supplier", "nation"},
                   {"nation", "region"}});
    case 6:
      return Make(6, {"lineitem"}, {});
    case 7:
      return Make(7,
                  {"supplier", "lineitem", "orders", "customer", "nation1",
                   "nation2"},
                  {{"supplier", "lineitem"},
                   {"orders", "lineitem"},
                   {"customer", "orders"},
                   {"supplier", "nation1"},
                   {"customer", "nation2"}});
    case 8:
      return Make(8,
                  {"part", "supplier", "lineitem", "orders", "customer",
                   "nation1", "nation2", "region"},
                  {{"part", "lineitem"},
                   {"supplier", "lineitem"},
                   {"lineitem", "orders"},
                   {"orders", "customer"},
                   {"customer", "nation1"},
                   {"nation1", "region"},
                   {"supplier", "nation2"}});
    case 9:
      return Make(9,
                  {"part", "supplier", "lineitem", "partsupp", "orders",
                   "nation"},
                  {{"part", "lineitem"},
                   {"supplier", "lineitem"},
                   {"partsupp", "lineitem"},
                   {"partsupp", "part"},
                   {"partsupp", "supplier"},
                   {"orders", "lineitem"},
                   {"supplier", "nation"}});
    case 10:
      return Make(10, {"customer", "orders", "lineitem", "nation"},
                  {{"customer", "orders"},
                   {"orders", "lineitem"},
                   {"customer", "nation"}});
    case 11:
      return Make(11,
                  {"partsupp", "supplier", "nation", "partsupp2", "supplier2",
                   "nation2"},
                  {{"partsupp", "supplier"},
                   {"supplier", "nation"},
                   {"partsupp2", "supplier2"},
                   {"supplier2", "nation2"}});
    case 12:
      return Make(12, {"orders", "lineitem"}, {{"orders", "lineitem"}});
    case 13:
      return Make(13, {"customer", "orders"}, {{"customer", "orders"}});
    case 14:
      return Make(14, {"lineitem", "part"}, {{"lineitem", "part"}});
    case 15:
      return Make(15, {"supplier", "lineitem", "lineitem2"},
                  {{"supplier", "lineitem"}});
    case 16:
      return Make(16, {"partsupp", "part", "supplier"},
                  {{"partsupp", "part"}, {"partsupp", "supplier"}});
    case 17:
      return Make(17, {"lineitem", "part", "lineitem2"},
                  {{"lineitem", "part"}, {"part", "lineitem2"}});
    case 18:
      return Make(18, {"customer", "orders", "lineitem", "lineitem2"},
                  {{"customer", "orders"},
                   {"orders", "lineitem"},
                   {"orders", "lineitem2"}});
    case 19:
      return Make(19, {"lineitem", "part"}, {{"lineitem", "part"}});
    case 20:
      return Make(20,
                  {"supplier", "nation", "partsupp", "part", "lineitem"},
                  {{"supplier", "nation"},
                   {"supplier", "partsupp"},
                   {"partsupp", "part"},
                   {"partsupp", "lineitem"}});
    case 21:
      return Make(21,
                  {"supplier", "lineitem1", "orders", "nation", "lineitem2",
                   "lineitem3"},
                  {{"supplier", "lineitem1"},
                   {"orders", "lineitem1"},
                   {"supplier", "nation"},
                   {"lineitem1", "lineitem2"},
                   {"lineitem1", "lineitem3"}});
    case 22:
      return Make(22, {"customer", "customer2", "orders"}, {});
    default:
      assert(false && "TPC-H query number must be in 1..22");
      return Make(0, {}, {});
  }
}

std::vector<TpchQuery> AllTpchQueries() {
  std::vector<TpchQuery> out;
  out.reserve(22);
  for (int q = 1; q <= 22; ++q) out.push_back(TpchQueryGraph(q));
  return out;
}

Hypergraph TpchQueryHypergraph(const TpchQuery& q) {
  const int relations = q.graph.NumVertices();
  const auto& joins = q.graph.Edges();
  const int n = relations + static_cast<int>(joins.size());
  Hypergraph h(n);
  for (int r = 0; r < relations; ++r) {
    VertexSet edge(n);
    edge.Insert(r);  // the relation's private attributes
    for (size_t j = 0; j < joins.size(); ++j) {
      if (joins[j].first == r || joins[j].second == r) {
        edge.Insert(relations + static_cast<int>(j));
      }
    }
    h.AddEdge(std::move(edge));
  }
  return h;
}

}  // namespace workloads
}  // namespace mintri
