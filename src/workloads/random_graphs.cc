#include "workloads/random_graphs.h"

#include <vector>

#include "util/rng.h"

namespace mintri {
namespace workloads {

Graph ErdosRenyi(int n, double p, uint64_t seed) {
  Rng rng(seed);
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.NextBool(p)) g.AddEdge(u, v);
    }
  }
  return g;
}

Graph RandomTree(int n, uint64_t seed) {
  Graph g(n);
  if (n <= 1) return g;
  if (n == 2) {
    g.AddEdge(0, 1);
    return g;
  }
  Rng rng(seed);
  // Prüfer decoding.
  std::vector<int> prufer(n - 2);
  for (int& x : prufer) x = rng.NextInt(0, n - 1);
  std::vector<int> degree(n, 1);
  for (int x : prufer) ++degree[x];
  for (int x : prufer) {
    for (int leaf = 0; leaf < n; ++leaf) {
      if (degree[leaf] == 1) {
        g.AddEdge(leaf, x);
        --degree[leaf];
        --degree[x];
        break;
      }
    }
  }
  int a = -1, b = -1;
  for (int v = 0; v < n; ++v) {
    if (degree[v] == 1) (a < 0 ? a : b) = v;
  }
  g.AddEdge(a, b);
  return g;
}

Graph ConnectedErdosRenyi(int n, double p, uint64_t seed) {
  Graph g = ErdosRenyi(n, p, seed);
  Graph tree = RandomTree(n, seed ^ 0x5bd1e995ULL);
  return Graph::UnionOf(g, tree);
}

}  // namespace workloads
}  // namespace mintri
