#include "workloads/inference_models.h"

#include <algorithm>

#include "util/rng.h"

namespace mintri {
namespace workloads {

namespace {

Factor RandomFactor(std::vector<int> scope, const std::vector<int>& domains,
                    Rng* rng) {
  std::sort(scope.begin(), scope.end());
  Factor f = Factor::Ones(std::move(scope), domains);
  for (double& v : f.table) v = 0.1 + rng->NextDouble();
  return f;
}

}  // namespace

GraphicalModel GridMrf(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  GraphicalModel m;
  const int n = rows * cols;
  m.domains.resize(n);
  for (int v = 0; v < n; ++v) m.domains[v] = 2 + (v % 2);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m.factors.push_back(RandomFactor({id(r, c)}, m.domains, &rng));
      if (c + 1 < cols) {
        m.factors.push_back(
            RandomFactor({id(r, c), id(r, c + 1)}, m.domains, &rng));
      }
      if (r + 1 < rows) {
        m.factors.push_back(
            RandomFactor({id(r, c), id(r + 1, c)}, m.domains, &rng));
      }
    }
  }
  return m;
}

GraphicalModel RandomBayesNet(int n, int max_parents, int max_domain,
                              uint64_t seed) {
  Rng rng(seed);
  GraphicalModel m;
  m.domains.resize(n);
  for (int v = 0; v < n; ++v) m.domains[v] = 2 + (v % (max_domain - 1));
  for (int v = 0; v < n; ++v) {
    std::vector<int> scope = {v};
    if (v > 0) {
      const int parents = rng.NextInt(0, std::min(max_parents, v));
      for (int p = 0; p < parents; ++p) {
        const int candidate = rng.NextInt(0, v - 1);
        if (std::find(scope.begin(), scope.end(), candidate) == scope.end()) {
          scope.push_back(candidate);
        }
      }
    }
    m.factors.push_back(RandomFactor(std::move(scope), m.domains, &rng));
  }
  return m;
}

std::vector<NamedModel> InferenceModels() {
  std::vector<NamedModel> out;
  out.push_back({"grid3x3", GridMrf(3, 3, 901)});
  out.push_back({"grid4x3", GridMrf(4, 3, 902)});
  out.push_back({"chain10", RandomBayesNet(10, 1, 4, 903)});
  out.push_back({"bn12", RandomBayesNet(12, 2, 3, 904)});
  out.push_back({"bn16", RandomBayesNet(16, 3, 3, 905)});
  return out;
}

std::optional<GraphicalModel> InferenceModelByName(const std::string& name) {
  for (NamedModel& nm : InferenceModels()) {
    if (nm.name == name) return std::move(nm.model);
  }
  return std::nullopt;
}

}  // namespace workloads
}  // namespace mintri
