#ifndef MINTRI_WORKLOADS_GRAPHICAL_MODELS_H_
#define MINTRI_WORKLOADS_GRAPHICAL_MODELS_H_

#include <cstdint>

#include "graph/graph.h"

namespace mintri {
namespace workloads {

/// Synthetic stand-ins for the PIC2011 probabilistic-graphical-model
/// datasets of Section 7.1. Each generator targets the structural regime of
/// its family (see DESIGN.md §3 for the substitution rationale); all are
/// deterministic given the seed.

/// Moral graph of a random DAG: each vertex v > 0 receives up to
/// `max_parents` random earlier parents, then parents of a common child are
/// married. The generic Bayesian-network shape.
Graph MoralizedRandomDag(int n, int max_parents, uint64_t seed);

/// Dynamic Bayesian network: `slices` copies of a `per_slice`-node slice,
/// intra-slice edges with probability p_intra, inter-slice (interface)
/// edges with probability p_inter, then moralized chain structure. Interface
/// separators between slices dominate, as in the PIC2011 DBN family.
Graph DbnChain(int slices, int per_slice, double p_intra, double p_inter,
               uint64_t seed);

/// Segmentation-like MRF: an r × c 4-connected lattice where random pairs of
/// adjacent vertices are additionally linked to diagonal neighbors,
/// mimicking superpixel region adjacency irregularity.
Graph SegmentationGraph(int rows, int cols, int extra_links, uint64_t seed);

/// Promedas-like layered noisy-OR network: a bipartite DAG of `diseases` →
/// `findings` (each finding has 1–max_parents random disease parents),
/// moralized. Large, sparse, with many potential maximal cliques — the
/// regime where the paper reports RankedTriang struggling.
Graph PromedasGraph(int diseases, int findings, int max_parents,
                    uint64_t seed);

/// Object-detection-like model: a dense core of `parts` mutually related
/// part nodes (density `core_p`) plus `periphery` nodes each attached to a
/// few core nodes. Small and dense — many small separators, fast PMC step.
Graph ObjectDetectionGraph(int parts, double core_p, int periphery,
                           uint64_t seed);

/// Random CSP constraint graph: `constraints` constraints of scope size
/// ≤ `arity` over n variables; each scope is saturated (the constraint
/// graph of a CSP instance).
Graph CspGraph(int n, int constraints, int arity, uint64_t seed);

/// Image-alignment-like model: a grid of landmarks with additional random
/// "match" edges between nearby cells.
Graph ImageAlignmentGraph(int rows, int cols, int matches, uint64_t seed);

}  // namespace workloads
}  // namespace mintri

#endif  // MINTRI_WORKLOADS_GRAPHICAL_MODELS_H_
