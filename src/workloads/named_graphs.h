#ifndef MINTRI_WORKLOADS_NAMED_GRAPHS_H_
#define MINTRI_WORKLOADS_NAMED_GRAPHS_H_

#include "graph/graph.h"

namespace mintri {
namespace workloads {

Graph Path(int n);
Graph Cycle(int n);
Graph Complete(int n);
Graph CompleteBipartite(int a, int b);
Graph Star(int leaves);

/// r × c grid; with `diagonals`, each cell also connects to its
/// down-right neighbor (king-move grids appear in MRF benchmarks).
Graph Grid(int rows, int cols, bool diagonals = false);

Graph Petersen();

/// Iterated Mycielskian starting from K2: Mycielski(2) = K2,
/// Mycielski(3) = C5, Mycielski(4) = Grötzsch graph (11 vertices),
/// Mycielski(5) = 23 vertices — the family behind the DIMACS "myciel"
/// coloring instances; the paper's CSP case study uses myciel5g.
Graph Mycielski(int k);

/// n × n queen graph (DIMACS coloring benchmark family queenN_N).
Graph Queen(int n);

/// d-dimensional hypercube Q_d (2^d vertices).
Graph Hypercube(int d);

}  // namespace workloads
}  // namespace mintri

#endif  // MINTRI_WORKLOADS_NAMED_GRAPHS_H_
