#ifndef MINTRI_WORKLOADS_FAMILIES_H_
#define MINTRI_WORKLOADS_FAMILIES_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace mintri {
namespace workloads {

/// One experiment graph: a dataset-family stand-in instance (DESIGN.md §3).
struct DatasetGraph {
  std::string name;
  Graph graph;
};

/// A dataset family in the Fig. 5 / Table 2 sense.
struct DatasetFamily {
  std::string name;
  std::vector<DatasetGraph> graphs;
};

/// The PIC2011 / PACE2016 / TPC-H stand-in families, in the order of
/// Figure 5. Deterministic (fixed seeds); sizes are scaled so that the whole
/// benchmark suite runs in minutes rather than the paper's server-days.
std::vector<DatasetFamily> AllFamilies();

/// A single family by name ("CSP", "ObjectDetection", "Promedas",
/// "ImageAlignment", "Pace2016-100s", "Pace2016-1000s", "Grids", "DBN",
/// "Segmentation", "Alchemy", "Pedigree", "ProteinFolding",
/// "ProteinProtein", "TPC-H").
DatasetFamily FamilyByName(const std::string& name);

}  // namespace workloads
}  // namespace mintri

#endif  // MINTRI_WORKLOADS_FAMILIES_H_
