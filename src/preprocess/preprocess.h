#ifndef MINTRI_PREPROCESS_PREPROCESS_H_
#define MINTRI_PREPROCESS_PREPROCESS_H_

#include <vector>

#include "graph/graph.h"

namespace mintri {

/// Tier-0 options (the reduce stage of the tiered pipeline). The defaults
/// are exactly the transformations that are *stream-safe*: they preserve the
/// set of minimal triangulations up to the recorded lift, so the tiered
/// enumerator can replay the full ranked stream of the original graph from
/// the reduced one.
struct PreprocessOptions {
  /// Repeatedly eliminate simplicial vertices (N(v) a clique). Stream-safe:
  /// v lies in the unique maximal clique N[v] of every minimal triangulation
  /// and contributes no fill, so MT(G) is in bijection with MT(G - v).
  bool reduce_simplicial = true;

  /// Almost-simplicial elimination (N(v) \ {u} a clique, deg(v) bounded by a
  /// treewidth lower bound). This is the classic *treewidth-safe* rule: it
  /// preserves the optimal width, but NOT the set of minimal triangulations
  /// (on C4 it commits to one of the two diagonals), so it is not
  /// stream-safe and the solve pipeline never enables it. Exposed for
  /// width-only workflows and exercised by the unit tests.
  bool reduce_almost_simplicial = false;

  /// Split the reduced graph into its clique-minimal-separator atoms
  /// (Tarjan / Leimer). Stream-safe: MT(G) is the independent product of
  /// MT(G[atom]) over the atoms, glued on the clique separators.
  bool decompose_atoms = true;
};

/// One vertex removed by Tier 0, with the clique bag that lifts results
/// back: `bag` is N[v] at elimination time (original labels), which is a
/// maximal clique of every minimal triangulation of the pre-elimination
/// graph.
struct EliminatedVertex {
  int vertex = -1;
  VertexSet bag;
};

/// Summary counters for reporting (folded into ContextBuildInfo by the
/// tiered enumerator, surfaced by --stats, batch records, and bench JSON).
struct PreprocessInfo {
  int vertices_removed = 0;
  int num_atoms = 0;
  int largest_atom = 0;
  int smallest_atom = 0;
  double seconds = 0;
};

struct PreprocessResult {
  /// Vertices still in play after the reductions.
  VertexSet kept;
  /// Working supergraph of g on the same vertex universe: within `kept` it
  /// is exactly the reduced graph (g[kept] plus the saturation fill of any
  /// almost-simplicial eliminations). Edges incident to eliminated vertices
  /// are stale leftovers — only ever read it through subsets of `kept`.
  Graph reduced;
  /// Eliminated vertices in elimination order, with their lift bags.
  std::vector<EliminatedVertex> eliminated;
  /// Clique-minimal-separator atoms of reduced[kept] (original labels,
  /// sorted). Adjacent atoms overlap in their clique separator; their union
  /// is `kept`. Empty iff `kept` is empty (the graph fully reduced).
  std::vector<VertexSet> atoms;
  PreprocessInfo info;
};

/// Runs the Tier-0 reductions on g (any graph; components are decomposed
/// independently). Deterministic: single-threaded, fixed scan orders.
PreprocessResult Preprocess(const Graph& g,
                            const PreprocessOptions& options = {});

/// The degeneracy of g — a lower bound on its treewidth, used as the safety
/// condition of the almost-simplicial rule.
int DegeneracyLowerBound(const Graph& g);

/// The clique-minimal-separator atoms of g (Leimer's unique decomposition),
/// computed from the clique-tree adhesions of a minimal triangulation that
/// are cliques in g (Berry–Pogorelcnik–Simonet: those are exactly the clique
/// minimal separators of g). Exposed for tests; Preprocess calls this on the
/// reduced graph.
std::vector<VertexSet> CliqueMinimalSeparatorAtoms(const Graph& g);

}  // namespace mintri

#endif  // MINTRI_PREPROCESS_PREPROCESS_H_
