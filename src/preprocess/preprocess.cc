#include "preprocess/preprocess.h"

#include <algorithm>
#include <utility>

#include "chordal/clique_tree.h"
#include "chordal/lb_triang.h"
#include "util/timer.h"

namespace mintri {

namespace {

/// True iff nb \ {u} is a clique for some u ∈ nb (so eliminating the vertex
/// whose neighborhood nb is and saturating nb adds fill only at u).
bool IsAlmostSimplicialNeighborhood(const Graph& g, const VertexSet& nb) {
  bool found = false;
  nb.ForEachWhile([&](int u) {
    VertexSet rest = nb;
    rest.Erase(u);
    if (g.IsClique(rest)) {
      found = true;
      return false;
    }
    return true;
  });
  return found;
}

/// Clique-minimal-separator candidates for the connected part: the
/// clique-tree adhesions of one minimal triangulation of g[part] that are
/// cliques in g. By Berry–Pogorelcnik–Simonet these are exactly the clique
/// minimal separators of g[part], so the recursive split below only ever
/// tests genuine candidates. Returned sorted (original labels).
std::vector<VertexSet> CliqueSeparatorCandidates(const Graph& g,
                                                 const VertexSet& part) {
  std::vector<VertexSet> candidates;
  std::vector<int> old_to_new;
  Graph sub = g.InducedSubgraph(part, &old_to_new);
  if (sub.NumVertices() <= 1) return candidates;
  std::vector<int> new_to_old(sub.NumVertices());
  part.ForEach([&](int v) { new_to_old[old_to_new[v]] = v; });

  Graph h0 = LbTriangMinDegree(sub);
  CliqueTree tree = BuildCliqueTree(h0);
  for (const auto& [a, b] : tree.edges) {
    VertexSet adhesion = tree.cliques[a].Intersect(tree.cliques[b]);
    if (adhesion.Empty()) continue;
    VertexSet s(g.NumVertices());
    adhesion.ForEach([&](int v) { s.Insert(new_to_old[v]); });
    if (!g.IsClique(s)) continue;
    candidates.push_back(std::move(s));
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

/// Recursively splits the connected `part` along clique minimal separators
/// (a separator splits when g[part] \ S has >= 2 full components), appending
/// the resulting atoms. Deterministic: candidates are scanned in sorted
/// order and the split peels the lowest-numbered full component.
void DecomposeConnectedPart(const Graph& g, VertexSet part,
                            std::vector<VertexSet>* atoms) {
  std::vector<VertexSet> candidates = CliqueSeparatorCandidates(g, part);
  std::vector<VertexSet> pending;
  pending.push_back(std::move(part));
  ComponentScanner scanner;
  while (!pending.empty()) {
    VertexSet p = std::move(pending.back());
    pending.pop_back();
    bool split = false;
    if (!candidates.empty()) {
      VertexSet removed(g.NumVertices());
      for (const VertexSet& s : candidates) {
        if (p.Count() - s.Count() < 2) continue;  // can't leave 2 components
        if (!s.IsSubsetOf(p)) continue;
        removed.AssignComplementOf(p);
        removed.UnionWith(s);
        int full = 0;
        VertexSet first_full;
        scanner.ForEachComponentWhile(
            g, removed, [&](const VertexSet& c, const VertexSet& nb) {
              // nb ⊆ removed, so nb ∩ p ⊆ s: the component is full iff its
              // neighborhood inside the part is all of s.
              if (nb.Intersect(p) == s) {
                if (++full == 1) first_full = c;  // copy out of scratch
              }
              return full < 2;
            });
        if (full >= 2) {
          VertexSet atom_side = first_full.Union(s);
          VertexSet rest = p.Minus(first_full);
          pending.push_back(std::move(rest));
          pending.push_back(std::move(atom_side));
          split = true;
          break;
        }
      }
    }
    if (!split) atoms->push_back(std::move(p));
  }
}

}  // namespace

int DegeneracyLowerBound(const Graph& g) {
  const int n = g.NumVertices();
  VertexSet remaining = g.Vertices();
  int degeneracy = 0;
  for (int step = 0; step < n; ++step) {
    int best = -1;
    int best_deg = n + 1;
    remaining.ForEach([&](int v) {
      int d = g.Neighbors(v).Intersect(remaining).Count();
      if (d < best_deg) {
        best_deg = d;
        best = v;
      }
    });
    degeneracy = std::max(degeneracy, best_deg);
    remaining.Erase(best);
  }
  return degeneracy;
}

std::vector<VertexSet> CliqueMinimalSeparatorAtoms(const Graph& g) {
  std::vector<VertexSet> atoms;
  for (const VertexSet& comp : g.ConnectedComponents()) {
    DecomposeConnectedPart(g, comp, &atoms);
  }
  std::sort(atoms.begin(), atoms.end());
  return atoms;
}

PreprocessResult Preprocess(const Graph& g, const PreprocessOptions& options) {
  WallTimer timer;
  PreprocessResult r;
  const int n = g.NumVertices();
  r.kept = g.Vertices();
  r.reduced = g;

  if (options.reduce_simplicial || options.reduce_almost_simplicial) {
    const int low =
        options.reduce_almost_simplicial ? DegeneracyLowerBound(g) : 0;
    bool progress = true;
    while (progress) {
      progress = false;
      for (int v = 0; v < n; ++v) {
        if (!r.kept.Contains(v)) continue;
        VertexSet nb = r.reduced.Neighbors(v).Intersect(r.kept);
        bool eliminate = false;
        if (options.reduce_simplicial && r.reduced.IsClique(nb)) {
          eliminate = true;
        } else if (options.reduce_almost_simplicial &&
                   nb.Count() <= low &&
                   IsAlmostSimplicialNeighborhood(r.reduced, nb)) {
          // Width-safe only because deg(v) is at most the treewidth lower
          // bound; the saturation commits to fill, so this branch is never
          // taken by the stream-preserving pipeline defaults.
          r.reduced.SaturateSet(nb);
          eliminate = true;
        }
        if (eliminate) {
          EliminatedVertex ev;
          ev.vertex = v;
          ev.bag = nb;
          ev.bag.Insert(v);
          r.eliminated.push_back(std::move(ev));
          r.kept.Erase(v);
          progress = true;
        }
      }
    }
  }

  if (!r.kept.Empty()) {
    ComponentScanner scanner;
    std::vector<VertexSet> comps;
    scanner.Components(r.reduced, r.kept.Complement(), &comps);
    for (const VertexSet& comp : comps) {
      if (options.decompose_atoms) {
        DecomposeConnectedPart(r.reduced, comp, &r.atoms);
      } else {
        r.atoms.push_back(comp);
      }
    }
    std::sort(r.atoms.begin(), r.atoms.end());
  }

  r.info.vertices_removed = static_cast<int>(r.eliminated.size());
  r.info.num_atoms = static_cast<int>(r.atoms.size());
  for (const VertexSet& atom : r.atoms) {
    int size = atom.Count();
    r.info.largest_atom = std::max(r.info.largest_atom, size);
    r.info.smallest_atom = r.info.smallest_atom == 0
                               ? size
                               : std::min(r.info.smallest_atom, size);
  }
  r.info.seconds = timer.Seconds();
  return r;
}

}  // namespace mintri
