#!/usr/bin/env python3
"""Diff two BENCH_core.json reports and flag performance regressions.

Usage: bench_diff.py [--threshold=PCT] [--json=FILE] BASELINE.json CURRENT.json

Matches entries across the two reports on (suite, graph, threads, solver,
cost, tier), groups the matches by (suite, family), and prints a markdown delta
table of per-family median ratios:

  * results_per_sec — higher is better; the regression gate.
  * init_seconds    — lower is better; gated too, but entries whose baseline
                      init is under a small floor (0.01 s) are skipped as
                      timer noise.
  * cache_hit_rate  — informational only (absolute delta).

With --json=FILE the same per-family rows (plus the git shas, threshold,
and match counts) are additionally written to FILE as one machine-readable
JSON document, so CI can upload the delta as an artifact and the cross-PR
perf trajectory can be assembled by concatenating those files instead of
re-parsing markdown tables.

Exit status: 0 when no family regresses past the threshold (default 25%),
1 when at least one does, 2 on usage/IO errors or when the two reports
share no entries at all (e.g. diffing unrelated artifacts). --json output
is written for statuses 0 and 1 (a regression is still a valid delta).

Both schema_version 1 and 2 reports load; v1 entries simply key with empty
solver/cost fields, so a v1-vs-v2 diff degrades to the overlapping subset
instead of erroring out. validate_bench_json.py imports entry_key /
index_entries from here for its --compare smoke hook, so the two tools can
never disagree about what "the same benchmark point" means.
"""

import argparse
import json
import statistics
import sys

# Baseline init times under this are dominated by timer resolution; a 25%
# "regression" on 2 ms of setup is noise, not signal.
INIT_FLOOR_SECONDS = 0.01


class BenchDiffError(Exception):
    """IO/usage-level failure: maps to exit status 2."""


def load_report(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise BenchDiffError(f"cannot parse {path}: {e}")
    if not isinstance(report, dict) or not isinstance(
            report.get("entries"), list):
        raise BenchDiffError(f"{path}: not a bench report (no entries list)")
    version = report.get("schema_version")
    if version not in (1, 2):
        raise BenchDiffError(f"{path}: unsupported schema_version {version!r}")
    return report


def entry_key(entry):
    """Identity of one benchmark point, stable across schema versions."""
    return (entry.get("suite", ""), entry.get("graph", ""),
            entry.get("threads", 0), entry.get("solver", ""),
            entry.get("cost", ""), entry.get("tier", ""))


def index_entries(entries):
    return {entry_key(e): e for e in entries}


def _family_of(entry):
    return (entry.get("suite", ""), entry.get("family", ""))


def compare(base_report, new_report, threshold_pct,
            init_floor=INIT_FLOOR_SECONDS):
    """Returns {rows, matched, base_only, new_only, regressions}."""
    base_index = index_entries(base_report["entries"])
    new_index = index_entries(new_report["entries"])
    matched_keys = sorted(set(base_index) & set(new_index))

    families = {}
    for key in matched_keys:
        b, n = base_index[key], new_index[key]
        fam = families.setdefault(_family_of(b),
                                  {"count": 0, "throughput": [], "init": [],
                                   "cache": []})
        fam["count"] += 1
        if b.get("results_per_sec", 0) > 0 and n.get("results_per_sec",
                                                     0) > 0:
            fam["throughput"].append(
                n["results_per_sec"] / b["results_per_sec"])
        if b.get("init_seconds", 0) >= init_floor:
            fam["init"].append(n.get("init_seconds", 0) / b["init_seconds"])
        if "cache_hit_rate" in b and "cache_hit_rate" in n:
            fam["cache"].append(n["cache_hit_rate"] - b["cache_hit_rate"])

    throughput_gate = 1.0 - threshold_pct / 100.0
    init_gate = 1.0 + threshold_pct / 100.0
    rows = []
    regressions = []
    for (suite, family), samples in sorted(families.items()):
        label = f"{suite}/{family}" if family else suite
        row = {
            "family": label,
            "count": samples["count"],
            "throughput_ratio": statistics.median(samples["throughput"])
                                if samples["throughput"] else None,
            "init_ratio": statistics.median(samples["init"])
                          if samples["init"] else None,
            "cache_delta": statistics.median(samples["cache"])
                           if samples["cache"] else None,
            "reasons": [],
        }
        if (row["throughput_ratio"] is not None
                and row["throughput_ratio"] < throughput_gate):
            row["reasons"].append(
                f"throughput {row['throughput_ratio']:.2f}x < "
                f"{throughput_gate:.2f}x")
        if row["init_ratio"] is not None and row["init_ratio"] > init_gate:
            row["reasons"].append(
                f"init {row['init_ratio']:.2f}x > {init_gate:.2f}x")
        if row["reasons"]:
            regressions.append(row)
        rows.append(row)

    return {
        "rows": rows,
        "matched": len(matched_keys),
        "base_only": len(base_index) - len(matched_keys),
        "new_only": len(new_index) - len(matched_keys),
        "regressions": regressions,
    }


def _fmt_ratio(value):
    return f"{value:.2f}x" if value is not None else "n/a"


def render_markdown(result, base_report, new_report, threshold_pct):
    lines = [
        f"### Bench diff: `{base_report.get('git_sha', '?')}` → "
        f"`{new_report.get('git_sha', '?')}` "
        f"(median per family, gate ±{threshold_pct:g}%)",
        "",
        "| family | entries | throughput (new/base) | init (new/base) "
        "| cache Δ | verdict |",
        "|---|---|---|---|---|---|",
    ]
    for row in result["rows"]:
        cache = (f"{row['cache_delta']:+.3f}"
                 if row["cache_delta"] is not None else "n/a")
        verdict = ("REGRESSION: " + "; ".join(row["reasons"])
                   if row["reasons"] else "ok")
        lines.append(f"| {row['family']} | {row['count']} "
                     f"| {_fmt_ratio(row['throughput_ratio'])} "
                     f"| {_fmt_ratio(row['init_ratio'])} "
                     f"| {cache} | {verdict} |")
    lines.append("")
    lines.append(f"Matched {result['matched']} entries; "
                 f"{result['base_only']} only in baseline; "
                 f"{result['new_only']} only in current.")
    return "\n".join(lines) + "\n"


def render_json(result, base_report, new_report, threshold_pct):
    """The machine-readable twin of render_markdown: same rows, plus the
    identifying metadata a trajectory collector needs. `reasons` is kept
    verbatim so a regression's verdict survives the round-trip."""
    return {
        "schema_version": 1,
        "kind": "bench_diff",
        "base_git_sha": base_report.get("git_sha", ""),
        "new_git_sha": new_report.get("git_sha", ""),
        "threshold_pct": threshold_pct,
        "matched": result["matched"],
        "base_only": result["base_only"],
        "new_only": result["new_only"],
        "regressed": bool(result["regressions"]),
        "families": result["rows"],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_core.json reports.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=25.0,
                        metavar="PCT",
                        help="regression gate in percent (default 25)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write the per-family delta as JSON to "
                             "FILE (written on exit status 0 and 1)")
    try:
        args = parser.parse_args(argv)
    except SystemExit:
        return 2
    if not 0 < args.threshold < 100:
        print("bench_diff: --threshold must be in (0, 100)", file=sys.stderr)
        return 2

    try:
        base_report = load_report(args.baseline)
        new_report = load_report(args.current)
    except BenchDiffError as e:
        print(f"bench_diff: FAIL: {e}", file=sys.stderr)
        return 2

    result = compare(base_report, new_report, args.threshold)
    if result["matched"] == 0:
        print("bench_diff: FAIL: the two reports share no entries "
              "(wrong artifact pair?)", file=sys.stderr)
        return 2

    sys.stdout.write(
        render_markdown(result, base_report, new_report, args.threshold))
    if args.json is not None:
        doc = render_json(result, base_report, new_report, args.threshold)
        try:
            with open(args.json, "w") as f:
                json.dump(doc, f, indent=2)
                f.write("\n")
        except OSError as e:
            print(f"bench_diff: FAIL: cannot write {args.json}: {e}",
                  file=sys.stderr)
            return 2
    if result["regressions"]:
        names = ", ".join(r["family"] for r in result["regressions"])
        print(f"bench_diff: REGRESSION in {names}", file=sys.stderr)
        return 1
    print(f"bench_diff: OK: {result['matched']} entries, "
          f"{len(result['rows'])} families within ±{args.threshold:g}%",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
