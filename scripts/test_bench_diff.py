#!/usr/bin/env python3
"""Unit tests for bench_diff.py (registered as the bench_diff_unit CTest).

The fixtures under testdata/ pin the regression matrix the CI bench-diff
job relies on: identical reports pass, a regressed report fails, a looser
threshold forgives it, a v1-vs-v2 diff degrades to the overlapping subset,
and unrelated artifacts are a usage error rather than a silent pass.
"""

import contextlib
import io
import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_diff  # noqa: E402

TESTDATA = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "testdata")
BASE_V2 = os.path.join(TESTDATA, "bench_base_v2.json")
REGRESSED_V2 = os.path.join(TESTDATA, "bench_regressed_v2.json")
BASE_V1 = os.path.join(TESTDATA, "bench_base_v1.json")
DISJOINT_V2 = os.path.join(TESTDATA, "bench_disjoint_v2.json")


def run_main(argv):
    """Runs bench_diff.main, capturing (exit_code, stdout, stderr)."""
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = bench_diff.main(argv)
    return code, out.getvalue(), err.getvalue()


class EntryKeyTest(unittest.TestCase):
    def test_missing_fields_default_cleanly(self):
        self.assertEqual(bench_diff.entry_key({}), ("", "", 0, "", "", ""))

    def test_v1_and_v2_minseps_entries_collide(self):
        v1 = {"suite": "minseps", "graph": "g", "threads": 2}
        v2 = dict(v1, solver="", cost="")
        self.assertEqual(bench_diff.entry_key(v1), bench_diff.entry_key(v2))

    def test_tier_distinguishes_huge_entries(self):
        a = {"suite": "huge", "graph": "grid-32x32", "threads": 1,
             "tier": "heuristic"}
        b = dict(a, tier="atom-exact")
        self.assertNotEqual(bench_diff.entry_key(a), bench_diff.entry_key(b))

    def test_solver_distinguishes_ranked_entries(self):
        a = {"suite": "ranked", "graph": "g", "threads": 1,
             "solver": "indexed"}
        b = dict(a, solver="scan")
        self.assertNotEqual(bench_diff.entry_key(a), bench_diff.entry_key(b))

    def test_index_entries_keys_every_entry(self):
        report = bench_diff.load_report(BASE_V2)
        index = bench_diff.index_entries(report["entries"])
        self.assertEqual(len(index), len(report["entries"]))


class CompareTest(unittest.TestCase):
    def test_identical_reports_have_no_regressions(self):
        report = bench_diff.load_report(BASE_V2)
        result = bench_diff.compare(report, report, 25.0)
        self.assertEqual(result["matched"], len(report["entries"]))
        self.assertEqual(result["base_only"], 0)
        self.assertEqual(result["new_only"], 0)
        self.assertEqual(result["regressions"], [])
        self.assertTrue(all(r["throughput_ratio"] == 1.0
                            for r in result["rows"]))

    def test_missing_entries_are_counted_not_fatal(self):
        base = bench_diff.load_report(BASE_V2)
        v1 = bench_diff.load_report(BASE_V1)
        result = bench_diff.compare(v1, base, 25.0)
        # Only the 3 solver-less minseps points collide; v1's 2 ranked
        # entries and v2's 4 solver-tagged ranked entries do not.
        self.assertEqual(result["matched"], 3)
        self.assertEqual(result["base_only"], 2)
        self.assertEqual(result["new_only"], 4)
        self.assertEqual(result["regressions"], [])

    def test_init_floor_skips_timer_noise(self):
        entry = {"suite": "minseps", "family": "rand", "graph": "g",
                 "threads": 1, "results_per_sec": 100.0,
                 "init_seconds": 0.001}
        base = {"schema_version": 2, "entries": [entry]}
        # 9x init blowup, but under the 0.01 s floor: not a regression.
        new = {"schema_version": 2,
               "entries": [dict(entry, init_seconds=0.009)]}
        result = bench_diff.compare(base, new, 25.0)
        self.assertEqual(result["regressions"], [])
        self.assertIsNone(result["rows"][0]["init_ratio"])


class MainTest(unittest.TestCase):
    def test_identical_reports_exit_zero_with_table(self):
        code, out, err = run_main([BASE_V2, BASE_V2])
        self.assertEqual(code, 0)
        self.assertIn("| family |", out)
        self.assertIn("| minseps/rand |", out)
        self.assertIn("| ranked/grid |", out)
        self.assertIn("ok |", out)
        self.assertNotIn("REGRESSION", out)
        self.assertIn("bench_diff: OK", err)

    def test_regression_exits_one_and_names_family(self):
        code, out, err = run_main([BASE_V2, REGRESSED_V2])
        self.assertEqual(code, 1)
        # ranked/grid throughput halved (0.50x) and minseps/rand init grew
        # 1.5x on its one above-floor entry: both trip the 25% gate.
        self.assertIn("REGRESSION", out)
        self.assertIn("ranked/grid", err)
        self.assertIn("minseps/rand", err)

    def test_looser_threshold_forgives_the_same_diff(self):
        code, out, _ = run_main([BASE_V2, REGRESSED_V2, "--threshold=60"])
        self.assertEqual(code, 0)
        self.assertNotIn("REGRESSION", out)

    def test_v1_vs_v2_degrades_to_overlap(self):
        code, out, _ = run_main([BASE_V1, BASE_V2])
        self.assertEqual(code, 0)
        self.assertIn("Matched 3 entries; 2 only in baseline; "
                      "4 only in current.", out)

    def test_zero_overlap_is_a_usage_error(self):
        code, _, err = run_main([BASE_V2, DISJOINT_V2])
        self.assertEqual(code, 2)
        self.assertIn("share no entries", err)

    def test_unreadable_file_is_a_usage_error(self):
        code, _, err = run_main(["/no/such/report.json", BASE_V2])
        self.assertEqual(code, 2)
        self.assertIn("cannot parse", err)

    def test_bad_threshold_is_a_usage_error(self):
        self.assertEqual(run_main([BASE_V2, BASE_V2, "--threshold=0"])[0], 2)
        self.assertEqual(
            run_main([BASE_V2, BASE_V2, "--threshold=100"])[0], 2)


class JsonOutputTest(unittest.TestCase):
    def run_with_json(self, argv):
        import json
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "bench_diff.json")
            code, out, err = run_main(argv + [f"--json={path}"])
            doc = None
            if os.path.exists(path):
                with open(path) as f:
                    doc = json.load(f)
            return code, out, err, doc

    def test_json_mirrors_the_markdown_rows(self):
        code, out, _, doc = self.run_with_json([BASE_V2, BASE_V2])
        self.assertEqual(code, 0)
        self.assertIn("| family |", out)  # markdown still printed
        self.assertIsNotNone(doc)
        self.assertEqual(doc["kind"], "bench_diff")
        self.assertEqual(doc["schema_version"], 1)
        self.assertFalse(doc["regressed"])
        self.assertEqual(doc["matched"], 7)
        families = {row["family"] for row in doc["families"]}
        self.assertIn("minseps/rand", families)
        self.assertIn("ranked/grid", families)
        for row in doc["families"]:
            # Identical reports: every measured ratio is exactly 1.0.
            if row["throughput_ratio"] is not None:
                self.assertAlmostEqual(row["throughput_ratio"], 1.0)
            self.assertEqual(row["reasons"], [])

    def test_json_written_on_regression_with_reasons(self):
        code, _, _, doc = self.run_with_json([BASE_V2, REGRESSED_V2])
        self.assertEqual(code, 1)
        self.assertIsNotNone(doc)
        self.assertTrue(doc["regressed"])
        reasons = [r for row in doc["families"] for r in row["reasons"]]
        self.assertTrue(any("throughput" in r for r in reasons))

    def test_json_records_both_shas_and_threshold(self):
        _, _, _, doc = self.run_with_json(
            [BASE_V2, REGRESSED_V2, "--threshold=60"])
        self.assertEqual(doc["threshold_pct"], 60.0)
        self.assertEqual(doc["base_git_sha"],
                         bench_diff.load_report(BASE_V2).get("git_sha", ""))

    def test_unwritable_json_path_is_a_usage_error(self):
        code, _, err = run_main(
            [BASE_V2, BASE_V2, "--json=/no/such/dir/out.json"])
        self.assertEqual(code, 2)
        self.assertIn("cannot write", err)


if __name__ == "__main__":
    unittest.main()
