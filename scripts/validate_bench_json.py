#!/usr/bin/env python3
"""Schema validation for BENCH_core.json (the bench_runner report).

Usage: validate_bench_json.py [--smoke] BENCH_core.json

Checks the shape produced by src/bench/bench_suites.cc:WriteBenchJson so the
CI bench-smoke job fails loudly when the schema drifts instead of uploading
a silently broken artifact. Exits 0 on success, 1 with a message otherwise.
"""

import json
import sys

TOP_LEVEL = {
    "schema_version": int,
    "git_sha": str,
    "time_scale": float,
    "smoke": bool,
    "suites": list,
    "entries": list,
}

ENTRY = {
    "suite": str,
    "family": str,
    "graph": str,
    "n": int,
    "m": int,
    "threads": int,
    "count": int,
    "wall_ms": float,
    "results_per_sec": float,
    "init_seconds": float,
    "cost": str,
    "solver": str,
    "candidate_evals": int,
    "combine_calls": int,
    "index_updates": int,
    "range_queries": int,
    "cache_hit_rate": float,
    "status": str,
}

KNOWN_SUITES = {"minseps", "pmc", "enum", "ranked", "appcost"}
# ms-terminated / pmc-terminated are the Fig. 5 taxonomy of which context
# initialization stage hit its limits; cost-error marks an appcost case
# whose cost model could not be constructed.
KNOWN_STATUSES = {"complete", "truncated", "ms-terminated", "pmc-terminated",
                  "cost-error"}
# The application costs the appcost suite ranks by.
APPCOST_COSTS = {"hypertree", "fhw", "state-space"}
# The ranked suite's repair engines (bench --solver values). The default
# sweep emits one entry per engine at every (threads, graph) point.
RANKED_SOLVERS = {"indexed", "scan"}


def fail(message):
    print(f"validate_bench_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_fields(obj, spec, where):
    for key, expected in spec.items():
        if key not in obj:
            fail(f"{where}: missing key {key!r}")
        value = obj[key]
        # ints are acceptable where floats are expected (JSON "1" vs "1.0").
        if expected is float and isinstance(value, int):
            continue
        if not isinstance(value, expected):
            fail(f"{where}: {key!r} has type {type(value).__name__}, "
                 f"expected {expected.__name__}")


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    smoke = "--smoke" in sys.argv[1:]
    if len(args) != 1:
        fail("usage: validate_bench_json.py [--smoke] BENCH_core.json")

    try:
        with open(args[0]) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args[0]}: {e}")

    check_fields(report, TOP_LEVEL, "top level")
    if report["schema_version"] != 2:
        fail(f"unsupported schema_version {report['schema_version']}")
    if not report["git_sha"]:
        fail("git_sha is empty")
    if report["time_scale"] <= 0:
        fail(f"time_scale must be positive, got {report['time_scale']}")
    if smoke and not report["smoke"]:
        fail("expected a --smoke report")

    suites = report["suites"]
    if not suites or not set(suites) <= KNOWN_SUITES:
        fail(f"suites must be a non-empty subset of {sorted(KNOWN_SUITES)}, "
             f"got {suites}")

    entries = report["entries"]
    if not entries:
        fail("entries is empty")
    for i, entry in enumerate(entries):
        where = f"entries[{i}]"
        check_fields(entry, ENTRY, where)
        if entry["suite"] not in suites:
            fail(f"{where}: suite {entry['suite']!r} not in {suites}")
        if entry["status"] not in KNOWN_STATUSES:
            fail(f"{where}: unknown status {entry['status']!r}")
        if entry["n"] < 0 or entry["m"] < 0 or entry["count"] < 0:
            fail(f"{where}: negative n/m/count")
        if entry["threads"] < 1:
            fail(f"{where}: threads must be >= 1, got {entry['threads']}")
        if entry["wall_ms"] < 0 or entry["results_per_sec"] < 0:
            fail(f"{where}: negative timing")
        if entry["init_seconds"] < 0:
            fail(f"{where}: negative init_seconds")
        if not 0 <= entry["cache_hit_rate"] <= 1:
            fail(f"{where}: cache_hit_rate {entry['cache_hit_rate']} "
                 f"outside [0, 1]")
        if any(entry[k] < 0 for k in ("candidate_evals", "combine_calls",
                                      "index_updates", "range_queries")):
            fail(f"{where}: negative solver counter")
        if entry["suite"] == "ranked":
            if entry["solver"] not in RANKED_SOLVERS:
                fail(f"{where}: ranked entry has solver "
                     f"{entry['solver']!r}, expected one of "
                     f"{sorted(RANKED_SOLVERS)}")
            # The list-scan baseline has no segment tree to touch.
            if entry["solver"] == "scan" and (entry["index_updates"] != 0 or
                                              entry["range_queries"] != 0):
                fail(f"{where}: scan entry reports index activity")
        elif entry["solver"]:
            fail(f"{where}: non-ranked entry has solver "
                 f"{entry['solver']!r}")
        if entry["suite"] == "appcost":
            if entry["cost"] not in APPCOST_COSTS:
                fail(f"{where}: appcost entry has cost {entry['cost']!r}, "
                     f"expected one of {sorted(APPCOST_COSTS)}")

    # The CI smoke gate must exercise both repair engines — a report with
    # only one means the interleaved comparison (and the byte-identity
    # cross-check it implies) silently stopped running.
    if smoke and "ranked" in suites:
        seen_solvers = {e["solver"] for e in entries
                        if e["suite"] == "ranked"}
        if seen_solvers != RANKED_SOLVERS:
            fail(f"smoke ranked entries cover solvers "
                 f"{sorted(seen_solvers)}, expected both of "
                 f"{sorted(RANKED_SOLVERS)}")

    per_suite = {s: sum(1 for e in entries if e["suite"] == s)
                 for s in suites}
    print(f"validate_bench_json: OK: {len(entries)} entries "
          f"({', '.join(f'{s}: {c}' for s, c in sorted(per_suite.items()))}), "
          f"git {report['git_sha']}")


if __name__ == "__main__":
    main()
