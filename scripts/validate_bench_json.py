#!/usr/bin/env python3
"""Schema validation for BENCH_core.json (the bench_runner report).

Usage:
  validate_bench_json.py [--smoke] [--compare=BASELINE.json] BENCH_core.json
  validate_bench_json.py --batch-stats STATS.json

Checks the shape produced by src/bench/bench_suites.cc:WriteBenchJson so the
CI bench-smoke job fails loudly when the schema drifts instead of uploading
a silently broken artifact. Exits 0 on success, 1 with a message otherwise.

--compare=BASELINE.json is a smoke hook for the bench-diff CI gate: it
matches the report against a baseline using the exact entry identity that
scripts/bench_diff.py diffs with (imported from there, so the two tools
cannot drift apart) and fails when the overlap is empty.

--batch-stats switches to validating the aggregate-stats JSON written by
`mintri batch --stats-json=...` (src/cli/batch_shard.cc:WriteBatchStatsJson).
"""

import json
import os
import sys

TOP_LEVEL = {
    "schema_version": int,
    "git_sha": str,
    "time_scale": float,
    "smoke": bool,
    "suites": list,
    "entries": list,
}

ENTRY = {
    "suite": str,
    "family": str,
    "graph": str,
    "n": int,
    "m": int,
    "threads": int,
    "count": int,
    "wall_ms": float,
    "results_per_sec": float,
    "init_seconds": float,
    "cost": str,
    "solver": str,
    "candidate_evals": int,
    "combine_calls": int,
    "index_updates": int,
    "range_queries": int,
    "cache_hit_rate": float,
    "tier": str,
    "status": str,
}

KNOWN_SUITES = {"minseps", "pmc", "enum", "ranked", "appcost", "huge"}
# ms-terminated / pmc-terminated are the Fig. 5 taxonomy of which context
# initialization stage hit its limits; cost-error marks an appcost case
# whose cost model could not be constructed.
KNOWN_STATUSES = {"complete", "truncated", "ms-terminated", "pmc-terminated",
                  "cost-error"}
# The application costs the appcost suite ranks by.
APPCOST_COSTS = {"hypertree", "fhw", "state-space"}
# The ranked suite's repair engines (bench --solver values). The default
# sweep emits one entry per engine at every (threads, graph) point.
RANKED_SOLVERS = {"indexed", "scan"}
# The tiered pipeline's truthful stream labels (huge-suite entries only;
# every other suite runs the direct exact stack and emits "").
KNOWN_TIERS = {"exact", "atom-exact", "heuristic"}


def fail(message):
    print(f"validate_bench_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_fields(obj, spec, where):
    for key, expected in spec.items():
        if key not in obj:
            fail(f"{where}: missing key {key!r}")
        value = obj[key]
        # ints are acceptable where floats are expected (JSON "1" vs "1.0").
        if expected is float and isinstance(value, int):
            continue
        if not isinstance(value, expected):
            fail(f"{where}: {key!r} has type {type(value).__name__}, "
                 f"expected {expected.__name__}")


# The aggregate shape written by `mintri batch --stats-json=...`; one
# worker_stats element per shard ("in-process" pseudo-worker at --workers=1).
BATCH_STATS = {
    "batch_stats_version": int,
    "workers": int,
    "threads": int,
    "inner_threads": int,
    "cost": str,
    "instances": int,
    "ok": int,
    "failed": int,
    "wall_seconds": float,
    "init_seconds_total": float,
    "cache_lookups": int,
    "cache_hits": int,
    "cache_misses": int,
    "cache_hit_rate": float,
    "tier_exact": int,
    "tier_atom_exact": int,
    "tier_heuristic": int,
    "atoms": int,
    "reduced_vertices": int,
    "preprocess_seconds_total": float,
    "tier1_seconds_total": float,
    "tier2_seconds_total": float,
    "worker_stats": list,
}

WORKER_STATS = {
    "worker": int,
    "first": int,
    "count": int,
    "ok": int,
    "failed": int,
    "wall_seconds": float,
    "termination": str,
}


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")


def validate_batch_stats(path):
    stats = load_json(path)
    check_fields(stats, BATCH_STATS, "batch stats")
    if stats["batch_stats_version"] != 1:
        fail(f"unsupported batch_stats_version "
             f"{stats['batch_stats_version']}")
    for key in ("workers", "threads", "inner_threads"):
        if stats[key] < 1:
            fail(f"{key} must be >= 1, got {stats[key]}")
    if stats["instances"] != stats["ok"] + stats["failed"]:
        fail(f"instances {stats['instances']} != ok {stats['ok']} + "
             f"failed {stats['failed']}")
    if stats["wall_seconds"] < 0 or stats["init_seconds_total"] < 0:
        fail("negative timing")
    if stats["cache_lookups"] != stats["cache_hits"] + stats["cache_misses"]:
        fail(f"cache_lookups {stats['cache_lookups']} != hits + misses")
    if not 0 <= stats["cache_hit_rate"] <= 1:
        fail(f"cache_hit_rate {stats['cache_hit_rate']} outside [0, 1]")
    tier_total = (stats["tier_exact"] + stats["tier_atom_exact"]
                  + stats["tier_heuristic"])
    if tier_total > stats["ok"]:
        fail(f"tier counters sum to {tier_total}, more than ok={stats['ok']}")
    if any(stats[k] < 0 for k in ("tier_exact", "tier_atom_exact",
                                  "tier_heuristic", "atoms",
                                  "reduced_vertices")):
        fail("negative tier/preprocess counter")
    if any(stats[k] < 0 for k in ("preprocess_seconds_total",
                                  "tier1_seconds_total",
                                  "tier2_seconds_total")):
        fail("negative per-tier timing")

    workers = stats["worker_stats"]
    if len(workers) != stats["workers"]:
        fail(f"worker_stats has {len(workers)} elements, "
             f"expected {stats['workers']}")
    next_first = 0
    for i, w in enumerate(workers):
        where = f"worker_stats[{i}]"
        check_fields(w, WORKER_STATS, where)
        if w["first"] != next_first:
            fail(f"{where}: shard starts at {w['first']}, "
                 f"expected {next_first} (non-contiguous partition)")
        if w["count"] < 0 or w["ok"] + w["failed"] != w["count"]:
            fail(f"{where}: ok {w['ok']} + failed {w['failed']} != "
                 f"count {w['count']}")
        if w["wall_seconds"] < 0:
            fail(f"{where}: negative wall_seconds")
        if not w["termination"]:
            fail(f"{where}: empty termination")
        next_first += w["count"]
    if next_first != stats["instances"]:
        fail(f"shards cover [0, {next_first}), "
         f"expected [0, {stats['instances']})")
    print(f"validate_bench_json: OK: batch stats for {stats['instances']} "
          f"instances across {stats['workers']} worker(s), "
          f"{stats['ok']} ok / {stats['failed']} failed")


def compare_smoke(report, baseline_path):
    """Overlap sanity against a baseline, via bench_diff's entry identity."""
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    import bench_diff
    try:
        baseline = bench_diff.load_report(baseline_path)
    except bench_diff.BenchDiffError as e:
        fail(str(e))
    base_index = bench_diff.index_entries(baseline["entries"])
    new_index = bench_diff.index_entries(report["entries"])
    matched = len(set(base_index) & set(new_index))
    if matched == 0:
        fail(f"no overlap with baseline {baseline_path} "
             f"(wrong artifact pair?)")
    print(f"validate_bench_json: compare: {matched} entries match baseline, "
          f"{len(base_index) - matched} only in baseline, "
          f"{len(new_index) - matched} only in this report")


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    smoke = "--smoke" in sys.argv[1:]
    batch_stats = "--batch-stats" in sys.argv[1:]
    compare_baseline = None
    for a in sys.argv[1:]:
        if a.startswith("--compare="):
            compare_baseline = a[len("--compare="):]
    if len(args) != 1:
        fail("usage: validate_bench_json.py [--smoke] [--compare=BASELINE] "
             "BENCH_core.json | --batch-stats STATS.json")
    if batch_stats:
        validate_batch_stats(args[0])
        return

    report = load_json(args[0])

    check_fields(report, TOP_LEVEL, "top level")
    if report["schema_version"] != 2:
        fail(f"unsupported schema_version {report['schema_version']}")
    if not report["git_sha"]:
        fail("git_sha is empty")
    if report["time_scale"] <= 0:
        fail(f"time_scale must be positive, got {report['time_scale']}")
    if smoke and not report["smoke"]:
        fail("expected a --smoke report")

    suites = report["suites"]
    if not suites or not set(suites) <= KNOWN_SUITES:
        fail(f"suites must be a non-empty subset of {sorted(KNOWN_SUITES)}, "
             f"got {suites}")

    entries = report["entries"]
    if not entries:
        fail("entries is empty")
    for i, entry in enumerate(entries):
        where = f"entries[{i}]"
        check_fields(entry, ENTRY, where)
        if entry["suite"] not in suites:
            fail(f"{where}: suite {entry['suite']!r} not in {suites}")
        if entry["status"] not in KNOWN_STATUSES:
            fail(f"{where}: unknown status {entry['status']!r}")
        if entry["n"] < 0 or entry["m"] < 0 or entry["count"] < 0:
            fail(f"{where}: negative n/m/count")
        if entry["threads"] < 1:
            fail(f"{where}: threads must be >= 1, got {entry['threads']}")
        if entry["wall_ms"] < 0 or entry["results_per_sec"] < 0:
            fail(f"{where}: negative timing")
        if entry["init_seconds"] < 0:
            fail(f"{where}: negative init_seconds")
        if not 0 <= entry["cache_hit_rate"] <= 1:
            fail(f"{where}: cache_hit_rate {entry['cache_hit_rate']} "
                 f"outside [0, 1]")
        if any(entry[k] < 0 for k in ("candidate_evals", "combine_calls",
                                      "index_updates", "range_queries")):
            fail(f"{where}: negative solver counter")
        if entry["suite"] == "ranked":
            if entry["solver"] not in RANKED_SOLVERS:
                fail(f"{where}: ranked entry has solver "
                     f"{entry['solver']!r}, expected one of "
                     f"{sorted(RANKED_SOLVERS)}")
            # The list-scan baseline has no segment tree to touch.
            if entry["solver"] == "scan" and (entry["index_updates"] != 0 or
                                              entry["range_queries"] != 0):
                fail(f"{where}: scan entry reports index activity")
        elif entry["solver"]:
            fail(f"{where}: non-ranked entry has solver "
                 f"{entry['solver']!r}")
        if entry["suite"] == "appcost":
            if entry["cost"] not in APPCOST_COSTS:
                fail(f"{where}: appcost entry has cost {entry['cost']!r}, "
                     f"expected one of {sorted(APPCOST_COSTS)}")
        if entry["suite"] == "huge":
            if entry["tier"] not in KNOWN_TIERS:
                fail(f"{where}: huge entry has tier {entry['tier']!r}, "
                     f"expected one of {sorted(KNOWN_TIERS)}")
            if entry["n"] < 1000:
                fail(f"{where}: huge entry has n={entry['n']}, "
                     f"expected a PACE-scale graph (n >= 1000)")
        elif entry["tier"]:
            fail(f"{where}: non-huge entry has tier {entry['tier']!r}")

    # The CI smoke gate must exercise both repair engines — a report with
    # only one means the interleaved comparison (and the byte-identity
    # cross-check it implies) silently stopped running.
    if smoke and "ranked" in suites:
        seen_solvers = {e["solver"] for e in entries
                        if e["suite"] == "ranked"}
        if seen_solvers != RANKED_SOLVERS:
            fail(f"smoke ranked entries cover solvers "
                 f"{sorted(seen_solvers)}, expected both of "
                 f"{sorted(RANKED_SOLVERS)}")

    per_suite = {s: sum(1 for e in entries if e["suite"] == s)
                 for s in suites}
    print(f"validate_bench_json: OK: {len(entries)} entries "
          f"({', '.join(f'{s}: {c}' for s, c in sorted(per_suite.items()))}), "
          f"git {report['git_sha']}")

    if compare_baseline is not None:
        compare_smoke(report, compare_baseline)


if __name__ == "__main__":
    main()
