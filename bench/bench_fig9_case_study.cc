// Figure 9 (Appendix B): case study on two specific graphs — one CSP graph
// (the paper uses myciel5g_3; we use the Mycielski-5 graph it derives from)
// and one object-detection graph. For each algorithm, reports per time
// interval: the cumulative number of results and the minimum / median width
// of the results produced in that interval.
//
// Paper reference: Appendix B, Figure 9 — CKK returns more results on the
// CSP graph but of higher width; RankedTriang returns only optimal-width
// results and its delay is far more stable.

#include <iostream>

#include "bench_util.h"
#include "cost/standard_costs.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "workloads/graphical_models.h"
#include "workloads/named_graphs.h"

namespace {

using namespace mintri;
using namespace mintri::bench;

void Report(const std::string& label, const EnumRun& run, double budget,
            int intervals) {
  std::cout << label;
  if (!run.init_ok) {
    std::cout << ": initialization did not terminate within " << budget
              << "s\n\n";
    return;
  }
  std::cout << " (init " << TablePrinter::Num(run.init_seconds, 3)
            << "s, " << run.count() << " results"
            << (run.finished ? ", complete" : "") << ")\n";
  TablePrinter table({"t<=", "#results", "min-w(interval)",
                      "median-w(interval)"});
  size_t idx = 0;
  long long cumulative = 0;
  for (int i = 1; i <= intervals; ++i) {
    double t = budget * i / intervals;
    std::vector<double> widths;
    while (idx < run.result_seconds.size() && run.result_seconds[idx] <= t) {
      widths.push_back(run.widths[idx]);
      ++idx;
      ++cumulative;
    }
    table.AddRow({TablePrinter::Num(t, 2), TablePrinter::Int(cumulative),
                  widths.empty() ? "-" : TablePrinter::Num(Min(widths), 0),
                  widths.empty() ? "-"
                                 : TablePrinter::Num(Median(widths), 0)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void CaseStudy(const std::string& name, const Graph& g, double budget) {
  std::cout << "### " << name << ": " << g.NumVertices() << " vertices, "
            << g.NumEdges() << " edges ###\n\n";
  WidthCost width;
  Report("RankedTriang (width)", RunRankedTriang(g, width, budget), budget,
         8);
  Report("CKK", RunCkk(g, budget), budget, 8);
}

}  // namespace

int main() {
  const double budget = 2.0 * TimeScale();
  std::cout << "=== Figure 9: case studies (" << budget
            << "s per run) ===\n\n";
  CaseStudy("CSP graph (myciel5g-like)", workloads::Mycielski(5), budget);
  CaseStudy("Object-detection graph",
            workloads::ObjectDetectionGraph(15, 0.4, 7, 424242), budget);
  std::cout << "Shape check vs the paper: CKK may produce more results but "
               "with higher/median widths drifting upward; RankedTriang's "
               "interval min-width stays at the optimum.\n";
  return 0;
}
