// Theorem 4.5 in practice (ours, beyond the paper's evaluation): bounded-
// width ranked enumeration via MinTriangB contexts. For each width bound b,
// reports the bounded context size (separators of size <= b, PMCs of size
// <= b+1), the initialization time, the number of width-<= b minimal
// triangulations, and the average delay — versus the unbounded context.
// The point: the bounded context stays small on graphs whose full
// separator set would be large, realizing polynomial delay without poly-MS.

#include <iostream>

#include "bench_util.h"
#include "cost/standard_costs.h"
#include "util/table_printer.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace {

using namespace mintri;
using namespace mintri::bench;

void Sweep(const std::string& name, const Graph& g, int b_lo, int b_hi,
           double budget) {
  std::cout << "### " << name << " (n=" << g.NumVertices()
            << ", m=" << g.NumEdges() << ") ###\n";
  TablePrinter table({"bound", "#seps", "#pmcs", "init(s)", "#results",
                      "avg delay(s)", "complete"});
  WidthCost width;
  for (int b = b_lo; b <= b_hi + 1; ++b) {
    ContextOptions options;
    bool unbounded = b > b_hi;
    if (!unbounded) options.width_bound = b;
    options.separator_limits.time_limit_seconds = budget;
    options.separator_limits.max_results = kMaxSeparators;
    options.pmc_limits.time_limit_seconds = budget;
    WallTimer timer;
    auto ctx = TriangulationContext::Build(g, options);
    double init = timer.Seconds();
    std::string label = unbounded ? "none" : std::to_string(b);
    if (!ctx.has_value()) {
      table.AddRow({label, "-", "-", TablePrinter::Num(init, 3),
                    "(init timeout)", "-", "-"});
      continue;
    }
    RankedTriangulationEnumerator e(*ctx, width);
    long long count = 0;
    bool complete = false;
    while (timer.Seconds() < budget) {
      auto t = e.Next();
      if (!t.has_value()) {
        complete = true;
        break;
      }
      ++count;
    }
    double elapsed = timer.Seconds();
    table.AddRow({label, TablePrinter::Int(ctx->minimal_separators().size()),
                  TablePrinter::Int(ctx->pmcs().size()),
                  TablePrinter::Num(init, 3), TablePrinter::Int(count),
                  count > 0 ? TablePrinter::Num(elapsed / count, 5) : "-",
                  complete ? "yes" : "no"});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  const double budget = 1.5 * TimeScale();
  std::cout << "=== Bounded-width ranked enumeration (Theorem 4.5 / "
               "MinTriangB), budget " << budget << "s ===\n\n";
  Sweep("grid 5x5", workloads::Grid(5, 5), 4, 7, budget);
  Sweep("myciel5", workloads::Mycielski(5), 9, 12, budget);
  Sweep("G(24, 0.25)", workloads::ConnectedErdosRenyi(24, 0.25, 5150),
        7, 10, budget);
  std::cout << "Expected: bounded contexts are strictly smaller; counts "
               "grow with b and match the unbounded row once b reaches the "
               "largest minimal-triangulation width.\n";
  return 0;
}
