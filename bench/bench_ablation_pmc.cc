// Ablation (ours): the two candidate-generation modes of the Bouchitté–
// Todinca PMC enumeration (DESIGN.md §2.2). The default restricts the
// S ∪ (T ∩ C) case to separators T containing the newly inserted vertex;
// `exhaustive_pairs` iterates all pairs. Both are validated equal in the
// test suite; this bench quantifies the speed difference, which grows with
// the separator count.

#include <iostream>

#include "bench_util.h"
#include "util/table_printer.h"
#include "workloads/graphical_models.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

int main() {
  using namespace mintri;
  using namespace mintri::bench;

  std::cout << "=== PMC enumeration: restricted vs exhaustive candidate "
               "pairs ===\n\n";
  TablePrinter table({"graph", "#seps", "#pmcs", "restricted(ms)",
                      "exhaustive(ms)", "speedup"});
  std::vector<std::pair<std::string, Graph>> graphs = {
      {"grid4x4", workloads::Grid(4, 4)},
      {"grid4x5", workloads::Grid(4, 5)},
      {"myciel4", workloads::Mycielski(4)},
      {"queen4", workloads::Queen(4)},
      {"er20_p2", workloads::ConnectedErdosRenyi(20, 0.2, 31)},
      {"dbn", workloads::DbnChain(4, 6, 0.3, 0.25, 603)},
  };
  for (auto& [name, g] : graphs) {
    auto seps = ListMinimalSeparators(g).separators;
    WallTimer t1;
    PmcOptions restricted;
    auto r1 = ListPotentialMaximalCliques(g, seps, restricted);
    double ms1 = 1e3 * t1.Seconds();
    WallTimer t2;
    PmcOptions exhaustive;
    exhaustive.exhaustive_pairs = true;
    auto r2 = ListPotentialMaximalCliques(g, seps, exhaustive);
    double ms2 = 1e3 * t2.Seconds();
    if (r1.pmcs != r2.pmcs) {
      std::cout << "MODE MISMATCH on " << name << " — bug!\n";
      return 1;
    }
    table.AddRow({name, TablePrinter::Int(seps.size()),
                  TablePrinter::Int(r1.pmcs.size()),
                  TablePrinter::Num(ms1, 1), TablePrinter::Num(ms2, 1),
                  TablePrinter::Num(ms2 / (ms1 > 0 ? ms1 : 1), 1) + "x"});
  }
  table.Print(std::cout);
  std::cout << "\nBoth modes produced identical PMC sets on every graph "
               "(also enforced by the test suite).\n";
  return 0;
}
