// Figure 6: the distribution of the number of minimal separators versus the
// number of edges, over the graphs whose separator enumeration terminates
// (log-log scatter in the paper; printed here as rows, one per graph).
//
// Paper reference: Section 7.2, Figure 6 — "these numbers are quite often
// comparable to the number of edges, and sometimes even smaller."

#include <iostream>

#include "bench_util.h"
#include "util/table_printer.h"
#include "workloads/families.h"

int main() {
  using namespace mintri;
  using namespace mintri::bench;

  std::cout << "=== Figure 6: #minimal-separators vs #edges (MS-tractable "
               "graphs) ===\n\n";

  TablePrinter table({"family", "graph", "n", "#edges", "#minseps",
                      "minseps/edges"});
  int fewer = 0, total = 0;
  for (const auto& family : workloads::AllFamilies()) {
    for (const auto& dg : family.graphs) {
      TractabilityProbe probe = ProbeGraph(dg.graph);
      if (probe.status == Tractability::kNotTerminated) continue;
      double ratio = dg.graph.NumEdges() > 0
                         ? static_cast<double>(probe.num_separators) /
                               dg.graph.NumEdges()
                         : 0.0;
      ++total;
      if (ratio <= 1.0) ++fewer;
      table.AddRow({family.name, dg.name,
                    TablePrinter::Int(dg.graph.NumVertices()),
                    TablePrinter::Int(dg.graph.NumEdges()),
                    TablePrinter::Int(probe.num_separators),
                    TablePrinter::Num(ratio, 2)});
    }
  }
  table.Print(std::cout);
  std::cout << "\n" << fewer << "/" << total
            << " MS-tractable graphs have no more minimal separators than "
               "edges (the paper observes the counts are often comparable "
               "or smaller).\n";
  return 0;
}
