// Ablation (ours, beyond the paper's tables): how the pieces of the system
// contribute to the delay of ranked enumeration.
//
//  A. Cost-function ablation: a single MinTriang pass under each standard
//     split-monotone cost — the DP cost is dominated by per-(block, Ω)
//     Combine calls, so heavier bag scores cost proportionally more.
//  B. Initialization split: minimal separators vs PMCs vs DP wiring,
//     justifying the shared-context design (RankedTriang re-uses one
//     context across all Lawler-Murty optimizer calls; Section 7.1).
//  C. Constraint overhead: MinTriang under κ[I,X] with growing |I| + |X|.

#include <iostream>

#include "bench_util.h"
#include "cost/constrained_cost.h"
#include "cost/standard_costs.h"
#include "triang/min_triang.h"
#include "util/table_printer.h"
#include "workloads/graphical_models.h"
#include "workloads/named_graphs.h"

namespace {

using namespace mintri;
using namespace mintri::bench;

double TimeIt(const std::function<void()>& fn, int repeats = 5) {
  WallTimer timer;
  for (int i = 0; i < repeats; ++i) fn();
  return timer.Seconds() / repeats;
}

}  // namespace

int main() {
  std::vector<std::pair<std::string, Graph>> graphs = {
      {"grid5x5", workloads::Grid(5, 5)},
      {"myciel4", workloads::Mycielski(4)},
      {"objdet", workloads::ObjectDetectionGraph(11, 0.45, 4, 7)},
      {"dbn", workloads::DbnChain(4, 6, 0.3, 0.25, 603)},
  };

  std::cout << "=== Ablation A: MinTriang per cost function ===\n\n";
  TablePrinter a({"graph", "#seps", "#pmcs", "width(ms)", "fill(ms)",
                  "lex(ms)", "state-space(ms)"});
  for (auto& [name, g] : graphs) {
    auto ctx = TriangulationContext::Build(g);
    if (!ctx.has_value()) continue;
    WidthCost width;
    FillInCost fill;
    WidthThenFillCost lex;
    auto space = TotalStateSpaceCost::Uniform(g.NumVertices(), 2.0);
    a.AddRow({name, TablePrinter::Int(ctx->minimal_separators().size()),
              TablePrinter::Int(ctx->pmcs().size()),
              TablePrinter::Num(1e3 * TimeIt([&] { MinTriang(*ctx, width); }), 2),
              TablePrinter::Num(1e3 * TimeIt([&] { MinTriang(*ctx, fill); }), 2),
              TablePrinter::Num(1e3 * TimeIt([&] { MinTriang(*ctx, lex); }), 2),
              TablePrinter::Num(1e3 * TimeIt([&] { MinTriang(*ctx, *space); }),
                                2)});
  }
  a.Print(std::cout);

  std::cout << "\n=== Ablation B: initialization split ===\n\n";
  TablePrinter b({"graph", "minseps(ms)", "pmcs(ms)", "wiring(ms)",
                  "one MinTriang(ms)"});
  for (auto& [name, g] : graphs) {
    double t_seps = TimeIt([&] { ListMinimalSeparators(g); });
    auto seps = ListMinimalSeparators(g).separators;
    double t_pmcs =
        TimeIt([&] { ListPotentialMaximalCliques(g, seps); }, 3);
    double t_total = TimeIt([&] { TriangulationContext::Build(g); }, 3);
    auto ctx = TriangulationContext::Build(g);
    WidthCost width;
    double t_dp = TimeIt([&] { MinTriang(*ctx, width); });
    b.AddRow({name, TablePrinter::Num(1e3 * t_seps, 2),
              TablePrinter::Num(1e3 * t_pmcs, 2),
              TablePrinter::Num(
                  1e3 * std::max(0.0, t_total - t_seps - t_pmcs), 2),
              TablePrinter::Num(1e3 * t_dp, 2)});
  }
  b.Print(std::cout);
  std::cout << "\n(The DP pass is much cheaper than initialization — "
               "sharing the context across the Lawler-Murty calls is what "
               "makes the per-result delay small.)\n";

  std::cout << "\n=== Ablation C: constraint-compilation overhead ===\n\n";
  TablePrinter c({"graph", "|I|+|X|=0", "2", "4", "8"});
  for (auto& [name, g] : graphs) {
    auto ctx = TriangulationContext::Build(g);
    if (!ctx.has_value()) continue;
    WidthCost width;
    std::vector<std::string> row = {name};
    for (int k : {0, 2, 4, 8}) {
      std::vector<VertexSet> include, exclude;
      const auto& seps = ctx->minimal_separators();
      for (int i = 0; i < k && i < static_cast<int>(seps.size()); ++i) {
        (i % 2 == 0 ? include : exclude).push_back(seps[i]);
      }
      ConstrainedCost constrained(width, include, exclude);
      row.push_back(TablePrinter::Num(
          1e3 * TimeIt([&] { MinTriang(*ctx, constrained); }), 2));
    }
    c.AddRow(std::move(row));
  }
  c.Print(std::cout);
  std::cout << "\n(Per-block subset checks grow linearly in |I|+|X|, "
               "matching Lemma 6.2's polynomial compilation.)\n";
  return 0;
}
