// Figure 8: enumeration on random graphs G(n, p) for n in {20, 50}:
//  (a)/(b) average delay of RankedTriang (with and without initialization)
//          and of CKK, per edge probability p;
//  (c)/(d) the fraction of optimal-cost results CKK returns relative to
//          RankedTriang (width and fill, exact and within 10%).
//
// Paper reference: Section 7.3, Figure 8 — for n = 20 RankedTriang's delay
// is smaller throughout; for n = 50 initialization does not terminate for
// p in ~[0.1, 0.5] (marked "-"), consistent with the Figure 7 blow-up.

#include <iostream>

#include "bench_util.h"
#include "cost/standard_costs.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "workloads/random_graphs.h"

int main() {
  using namespace mintri;
  using namespace mintri::bench;

  const double budget = 1.0 * TimeScale();
  const int samples = 2;  // paper: 3
  std::cout << "=== Figure 8: delay and optimal-result ratio on G(n,p) ===\n"
            << "budget " << budget << "s per run, " << samples
            << " samples per p\n\n";

  WidthCost width;
  FillInCost fill;
  for (int n : {20, 50}) {
    std::cout << "--- n = " << n << " ---\n";
    TablePrinter table({"p", "RT delay", "RT delay-noinit", "CKK delay",
                        "%width", "%(1.1w)", "%fill", "%(1.1f)"});
    for (int pc = 5; pc <= 80; pc += 5) {
      double p = pc / 100.0;
      std::vector<double> rt_delay, rt_delay_noinit, ckk_delay;
      std::vector<double> pct_w, pct_w11, pct_f, pct_f11;
      int feasible = 0;
      for (int s = 0; s < samples; ++s) {
        Graph g = workloads::ConnectedErdosRenyi(
            n, p, 880000 + 100ULL * n + 10ULL * pc + s);
        EnumRun rt_w = RunRankedTriang(g, width, budget);
        if (!rt_w.init_ok || rt_w.count() == 0) continue;
        EnumRun rt_f = RunRankedTriang(g, fill, budget);
        EnumRun ckk = RunCkk(g, budget);
        if (rt_f.count() == 0 || ckk.count() == 0) continue;
        ++feasible;
        rt_delay.push_back(0.5 * (rt_w.AvgDelay() + rt_f.AvgDelay()));
        rt_delay_noinit.push_back(
            0.5 * (rt_w.AvgDelayNoInit() + rt_f.AvgDelayNoInit()));
        ckk_delay.push_back(ckk.AvgDelay());
        int wmin = rt_w.widths.front();
        long long fmin = rt_f.fills.front();
        auto pct = [](double a, double b) {
          return b > 0 ? 100.0 * a / b : 0.0;
        };
        pct_w.push_back(pct(ckk.CountWidthAtMost(wmin),
                            rt_w.CountWidthAtMost(wmin)));
        pct_w11.push_back(pct(ckk.CountWidthAtMost(1.1 * wmin),
                              rt_w.CountWidthAtMost(1.1 * wmin)));
        pct_f.push_back(pct(ckk.CountFillAtMost(fmin),
                            rt_f.CountFillAtMost(fmin)));
        pct_f11.push_back(pct(ckk.CountFillAtMost(1.1 * fmin),
                              rt_f.CountFillAtMost(1.1 * fmin)));
      }
      if (feasible == 0) {
        // RankedTriang's initialization did not terminate: the paper's "no
        // data" region of Figure 8(b)/(d).
        table.AddRow({TablePrinter::Num(p, 2), "-", "-", "-", "-", "-", "-",
                      "-"});
        continue;
      }
      table.AddRow({TablePrinter::Num(p, 2),
                    TablePrinter::Num(Mean(rt_delay), 5),
                    TablePrinter::Num(Mean(rt_delay_noinit), 5),
                    TablePrinter::Num(Mean(ckk_delay), 5),
                    TablePrinter::Num(Mean(pct_w), 1),
                    TablePrinter::Num(Mean(pct_w11), 1),
                    TablePrinter::Num(Mean(pct_f), 1),
                    TablePrinter::Num(Mean(pct_f11), 1)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Shape check vs the paper: n=20 rows are all feasible with "
               "RankedTriang delay at or below CKK's; n=50 rows around "
               "p=0.1..0.5 show '-' (initialization infeasible).\n";
  return 0;
}
