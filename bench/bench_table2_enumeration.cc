// Table 2: RankedTriang vs CKK on time-budgeted executions, optimizing
// width and fill-in. For each dataset family, two rows: RankedTriang on
// top, CKK below, with the paper's columns:
//
//   #trng       — results returned within the budget (mean per graph)
//   init        — RankedTriang's initialization time (mean; "-" for CKK)
//   delay       — average delay between results (including init)
//   delay-noinit— average delay after initialization
//   min-w       — best width found (mean per graph)
//   #min-w      — results of optimal width (mean; for CKK also % of
//                 RankedTriang's count)
//   #<=1.1min-w — results within 10% of the optimal width
//   min-f / #min-f / #<=1.1min-f — same for fill-in
//
// As in the paper (Section 7.3): graphs whose initialization does not
// terminate are excluded, as are graphs where CKK finishes the complete
// enumeration within the budget ("RankedTriang has no apparent advantage if
// CKK actually terminates"); TPC-H is excluded because everything finishes
// in milliseconds.
//
// Expected shape (paper): RankedTriang's delay is comparable or lower, its
// results are consistently of optimal cost, while CKK returns only a
// fraction of the optimal triangulations; on Promedas-like graphs the PMC
// count makes RankedTriang too slow.

#include <iostream>

#include "bench_util.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "workloads/families.h"

namespace {

using namespace mintri;
using namespace mintri::bench;

struct FamilyAccumulator {
  std::vector<double> rt_counts, ckk_counts;
  std::vector<double> rt_init, rt_delay, rt_delay_noinit, ckk_delay;
  std::vector<double> rt_minw, ckk_minw, rt_minf, ckk_minf;
  std::vector<double> rt_nminw, ckk_nminw, rt_n11w, ckk_n11w;
  std::vector<double> rt_nminf, ckk_nminf, rt_n11f, ckk_n11f;
  std::vector<double> ckk_pct_minw, ckk_pct_minf;
  int used = 0, skipped_init = 0, skipped_ckk_done = 0;
};

void Accumulate(const Graph& g, double budget, FamilyAccumulator* acc) {
  WidthCost width;
  FillInCost fill;
  EnumRun rt_w = RunRankedTriang(g, width, budget);
  if (!rt_w.init_ok) {
    ++acc->skipped_init;
    return;
  }
  EnumRun ckk = RunCkk(g, budget);
  if (ckk.finished) {
    ++acc->skipped_ckk_done;
    return;
  }
  EnumRun rt_f = RunRankedTriang(g, fill, budget);
  if (rt_w.count() == 0 || rt_f.count() == 0 || ckk.count() == 0) return;
  ++acc->used;

  // The optimal width / fill are the first results of the ranked runs.
  int wmin = rt_w.widths.front();
  long long fmin = rt_f.fills.front();

  acc->rt_counts.push_back(0.5 * (rt_w.count() + rt_f.count()));
  acc->ckk_counts.push_back(static_cast<double>(ckk.count()));
  acc->rt_init.push_back(0.5 * (rt_w.init_seconds + rt_f.init_seconds));
  acc->rt_delay.push_back(0.5 * (rt_w.AvgDelay() + rt_f.AvgDelay()));
  acc->rt_delay_noinit.push_back(
      0.5 * (rt_w.AvgDelayNoInit() + rt_f.AvgDelayNoInit()));
  acc->ckk_delay.push_back(ckk.AvgDelay());

  acc->rt_minw.push_back(rt_w.MinWidth());
  acc->ckk_minw.push_back(ckk.MinWidth());
  acc->rt_minf.push_back(static_cast<double>(rt_f.MinFill()));
  acc->ckk_minf.push_back(static_cast<double>(ckk.MinFill()));

  double rt_nw = static_cast<double>(rt_w.CountWidthAtMost(wmin));
  double ckk_nw = static_cast<double>(ckk.CountWidthAtMost(wmin));
  acc->rt_nminw.push_back(rt_nw);
  acc->ckk_nminw.push_back(ckk_nw);
  acc->rt_n11w.push_back(
      static_cast<double>(rt_w.CountWidthAtMost(1.1 * wmin)));
  acc->ckk_n11w.push_back(
      static_cast<double>(ckk.CountWidthAtMost(1.1 * wmin)));
  if (rt_nw > 0) acc->ckk_pct_minw.push_back(100.0 * ckk_nw / rt_nw);

  double rt_nf = static_cast<double>(rt_f.CountFillAtMost(fmin));
  double ckk_nf = static_cast<double>(ckk.CountFillAtMost(fmin));
  acc->rt_nminf.push_back(rt_nf);
  acc->ckk_nminf.push_back(ckk_nf);
  acc->rt_n11f.push_back(
      static_cast<double>(rt_f.CountFillAtMost(1.1 * fmin)));
  acc->ckk_n11f.push_back(
      static_cast<double>(ckk.CountFillAtMost(1.1 * fmin)));
  if (rt_nf > 0) acc->ckk_pct_minf.push_back(100.0 * ckk_nf / rt_nf);
}

}  // namespace

int main() {
  const double budget = EnumBudget();
  std::cout << "=== Table 2: RankedTriang (top row) vs CKK (bottom row), "
            << budget << "s executions, optimizing width and fill ===\n"
            << "(scale with MINTRI_TIME_SCALE; paper budget was 30 min)\n\n";

  TablePrinter table({"dataset(#used)", "algo", "#trng", "init", "delay",
                      "delay-noinit", "min-w", "#min-w", "#<=1.1minw",
                      "min-f", "#min-f", "#<=1.1minf"});

  for (const char* name :
       {"CSP", "ImageAlignment", "ObjectDetection", "Pace2016-100s",
        "Pace2016-1000s", "Promedas"}) {
    workloads::DatasetFamily family = workloads::FamilyByName(name);
    FamilyAccumulator acc;
    for (const auto& dg : family.graphs) {
      Accumulate(dg.graph, budget, &acc);
    }
    std::string label =
        family.name + " (" + std::to_string(acc.used) + ")";
    if (acc.used == 0) {
      std::string reason =
          acc.skipped_init > 0 ? "init did not terminate" : "CKK finished";
      table.AddRow({label, "-", "-", "-", "-", "-", "-", "-", "-", "-", "-",
                    "-"});
      table.AddRow({"  (" + reason + ")", "", "", "", "", "", "", "", "", "",
                    "", ""});
      continue;
    }
    table.AddRow(
        {label, "RankedTriang", TablePrinter::Num(Mean(acc.rt_counts), 0),
         TablePrinter::Num(Mean(acc.rt_init), 3),
         TablePrinter::Num(Mean(acc.rt_delay), 4),
         TablePrinter::Num(Mean(acc.rt_delay_noinit), 4),
         TablePrinter::Num(Mean(acc.rt_minw), 1),
         TablePrinter::Num(Mean(acc.rt_nminw), 0),
         TablePrinter::Num(Mean(acc.rt_n11w), 0),
         TablePrinter::Num(Mean(acc.rt_minf), 1),
         TablePrinter::Num(Mean(acc.rt_nminf), 0),
         TablePrinter::Num(Mean(acc.rt_n11f), 0)});
    table.AddRow(
        {"", "CKK", TablePrinter::Num(Mean(acc.ckk_counts), 0), "-",
         TablePrinter::Num(Mean(acc.ckk_delay), 4), "-",
         TablePrinter::Num(Mean(acc.ckk_minw), 1),
         TablePrinter::Num(Mean(acc.ckk_nminw), 0) + " (" +
             TablePrinter::Num(Mean(acc.ckk_pct_minw), 1) + "%)",
         TablePrinter::Num(Mean(acc.ckk_n11w), 0),
         TablePrinter::Num(Mean(acc.ckk_minf), 1),
         TablePrinter::Num(Mean(acc.ckk_nminf), 0) + " (" +
             TablePrinter::Num(Mean(acc.ckk_pct_minf), 1) + "%)",
         TablePrinter::Num(Mean(acc.ckk_n11f), 0)});
  }
  table.Print(std::cout);
  std::cout << "\nShape check vs the paper: RankedTriang's results should "
               "be all-optimal (#min-w == #trng when optimizing width), "
               "while CKK returns only a fraction of the optimal "
               "triangulations; Promedas-like graphs may fail "
               "initialization entirely.\n";
  return 0;
}
