// The benchmark-to-JSON runner: executes the named suites (minseps, pmc,
// enum) over the src/workloads families and emits BENCH_core.json, the
// repo's tracked perf artifact (uploaded by the CI bench-smoke job).
//
// This is a thin alias for `mintri bench`: both front ends share
// src/bench/bench_suites, so numbers and schema cannot drift apart.
//
//   bench_runner [suite...] [--smoke] [--out=FILE] [--quiet]

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args = {"bench"};
  args.insert(args.end(), argv + 1, argv + argc);
  return mintri::RunCli(args, std::cin, std::cout, std::cerr);
}
