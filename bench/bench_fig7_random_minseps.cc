// Figure 7: the number of minimal separators of random graphs G(n, p), for
// n in {20, 30, 50, 70} and p swept from 1/n to 1. Runs that exceed the
// (scaled) ten-minute budget are marked TIMEOUT — the paper's red marks.
//
// Paper reference: Section 7.2, Figure 7 — "the number of minimal
// separators is small for either sparse or dense graphs. In between
// (around p = 0.25) this number blows up."

#include <iostream>

#include "bench_util.h"
#include "util/table_printer.h"
#include "workloads/random_graphs.h"

int main() {
  using namespace mintri;
  using namespace mintri::bench;

  const double budget = 0.4 * TimeScale();  // paper: 10 minutes
  const int samples = 2;                    // paper: 3 per p
  std::cout << "=== Figure 7: #minimal-separators on G(n,p) ===\n"
            << "budget " << budget << "s per graph, " << samples
            << " samples per p\n\n";

  for (int n : {20, 30, 50, 70}) {
    std::cout << "--- n = " << n << " ---\n";
    TablePrinter table({"p", "#edges(avg)", "minseps(s0)", "minseps(s1)"});
    int step = n <= 30 ? 1 : 2;
    for (int k = 1; k <= n; k += step) {
      double p = static_cast<double>(k) / n;
      double edges = 0;
      std::vector<std::string> cells = {TablePrinter::Num(p, 2)};
      std::vector<std::string> counts;
      for (int s = 0; s < samples; ++s) {
        Graph g = workloads::ErdosRenyi(
            n, p, 900000 + 1000ULL * n + 10ULL * k + s);
        edges += g.NumEdges();
        EnumerationLimits limits;
        limits.time_limit_seconds = budget;
        limits.max_results = kMaxSeparators;
        auto result = ListMinimalSeparators(g, limits);
        counts.push_back(result.status == EnumerationStatus::kComplete
                             ? TablePrinter::Int(result.separators.size())
                             : ">" + std::to_string(
                                         result.separators.size()) +
                                   " TIMEOUT");
      }
      cells.push_back(TablePrinter::Num(edges / samples, 1));
      for (auto& c : counts) cells.push_back(std::move(c));
      table.AddRow(std::move(cells));
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape (paper): counts are low at both ends of the "
               "density range and blow up around p = 0.25 for n >= 50.\n";
  return 0;
}
