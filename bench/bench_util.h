#ifndef MINTRI_BENCH_BENCH_UTIL_H_
#define MINTRI_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_suites.h"
#include "cost/standard_costs.h"
#include "enumeration/ckk.h"
#include "enumeration/ranked_enum.h"
#include "triang/context.h"
#include "util/timer.h"

namespace mintri {
namespace bench {

// TimeScale()/MinSepBudget()/PmcBudget()/EnumBudget() and the
// kMaxSeparators/kMaxResults caps now live in src/bench/bench_suites.h
// (shared with the bench_runner/`mintri bench` JSON pipeline) and are
// re-exported here via the include above.

/// One time-budgeted enumeration run (either algorithm), in the shape the
/// paper's Table 2 needs: per-result timestamps, widths and fill-ins.
struct EnumRun {
  bool init_ok = false;     // context build finished within budget (always
                            // true for CKK, which has no init)
  double init_seconds = 0;  // RankedTriang initialization time
  bool finished = false;    // the full enumeration completed within budget
  std::vector<double> result_seconds;  // time since run start, per result
  std::vector<int> widths;
  std::vector<long long> fills;

  long long count() const {
    return static_cast<long long>(result_seconds.size());
  }
  /// Average delay between results, counting initialization.
  double AvgDelay() const {
    return result_seconds.empty()
               ? 0.0
               : result_seconds.back() / static_cast<double>(
                                             result_seconds.size());
  }
  /// Average delay after initialization.
  double AvgDelayNoInit() const {
    if (result_seconds.empty()) return 0.0;
    return (result_seconds.back() - init_seconds) /
           static_cast<double>(result_seconds.size());
  }
  int MinWidth() const {
    int m = -1;
    for (int w : widths) m = (m < 0 || w < m) ? w : m;
    return m;
  }
  long long MinFill() const {
    long long m = -1;
    for (long long f : fills) m = (m < 0 || f < m) ? f : m;
    return m;
  }
  long long CountWidthAtMost(double bound) const {
    long long c = 0;
    for (int w : widths) c += (w <= bound) ? 1 : 0;
    return c;
  }
  long long CountFillAtMost(double bound) const {
    long long c = 0;
    for (long long f : fills) c += (f <= bound) ? 1 : 0;
    return c;
  }
};

/// Runs RankedTriang⟨cost⟩ for `budget` seconds (including initialization).
inline EnumRun RunRankedTriang(const Graph& g, const BagCost& cost,
                               double budget) {
  EnumRun run;
  WallTimer timer;
  ContextOptions options;
  options.separator_limits.time_limit_seconds = budget;
  options.separator_limits.max_results = kMaxSeparators;
  options.pmc_limits.time_limit_seconds = budget;
  auto ctx = TriangulationContext::Build(g, options);
  run.init_seconds = timer.Seconds();
  if (!ctx.has_value() || run.init_seconds >= budget) return run;
  run.init_ok = true;

  RankedTriangulationEnumerator e(*ctx, cost);
  while (timer.Seconds() < budget &&
         run.result_seconds.size() < kMaxResults) {
    auto t = e.Next();
    if (!t.has_value()) {
      run.finished = true;
      break;
    }
    run.result_seconds.push_back(timer.Seconds());
    run.widths.push_back(t->Width());
    run.fills.push_back(t->FillIn(g));
  }
  return run;
}

/// Runs the CKK baseline for `budget` seconds.
inline EnumRun RunCkk(const Graph& g, double budget) {
  EnumRun run;
  run.init_ok = true;  // CKK has no initialization step
  WallTimer timer;
  CkkEnumerator e(g);
  while (timer.Seconds() < budget &&
         run.result_seconds.size() < kMaxResults) {
    auto t = e.Next();
    if (!t.has_value()) {
      run.finished = true;
      break;
    }
    run.result_seconds.push_back(timer.Seconds());
    run.widths.push_back(t->Width());
    run.fills.push_back(t->FillIn(g));
  }
  return run;
}

/// MinSep-then-PMC tractability probe for Fig. 5.
enum class Tractability { kTerminated, kMsTerminated, kNotTerminated };

struct TractabilityProbe {
  Tractability status = Tractability::kNotTerminated;
  size_t num_separators = 0;
  size_t num_pmcs = 0;
  double minsep_seconds = 0;
  double pmc_seconds = 0;
};

inline TractabilityProbe ProbeGraph(const Graph& g) {
  TractabilityProbe probe;
  WallTimer timer;
  EnumerationLimits sep_limits;
  sep_limits.time_limit_seconds = MinSepBudget();
  sep_limits.max_results = kMaxSeparators;
  auto seps = ListMinimalSeparators(g, sep_limits);
  probe.minsep_seconds = timer.Seconds();
  if (seps.status != EnumerationStatus::kComplete) return probe;
  probe.num_separators = seps.separators.size();
  probe.status = Tractability::kMsTerminated;

  timer.Reset();
  PmcOptions pmc_options;
  pmc_options.limits.time_limit_seconds = PmcBudget();
  auto pmcs = ListPotentialMaximalCliques(g, seps.separators, pmc_options);
  probe.pmc_seconds = timer.Seconds();
  if (pmcs.status != EnumerationStatus::kComplete) return probe;
  probe.num_pmcs = pmcs.pmcs.size();
  probe.status = Tractability::kTerminated;
  return probe;
}

}  // namespace bench
}  // namespace mintri

#endif  // MINTRI_BENCH_BENCH_UTIL_H_
