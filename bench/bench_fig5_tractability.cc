// Figure 5: tractability of computing the minimal separators and the PMCs
// over the dataset families. For each family, counts the graphs whose
// MinSep computation finished within the (scaled) one-minute budget and
// whose PMC computation finished within the (scaled) 30-minute budget:
//
//   Terminated     — both finished (usable by RankedTriang)
//   MS Terminated  — separators finished, PMCs did not
//   Not Terminated — separator enumeration already blew the budget
//
// Paper reference: Section 7.2, Figure 5 — "around 50%" of graphs are
// tractable, and whenever MinSep terminates PMC usually does too.

#include <iostream>

#include "bench_util.h"
#include "util/table_printer.h"
#include "workloads/families.h"

int main() {
  using namespace mintri;
  using namespace mintri::bench;

  std::cout << "=== Figure 5: tractability of MinSep / PMC per dataset "
               "family ===\n"
            << "budgets: MinSep " << MinSepBudget() << "s, PMC "
            << PmcBudget() << "s (paper: 60s / 30min; scale with "
            << "MINTRI_TIME_SCALE)\n\n";

  TablePrinter table({"family", "#graphs", "Terminated", "MS Terminated",
                      "Not Terminated"});
  int total = 0, total_terminated = 0;
  for (const auto& family : workloads::AllFamilies()) {
    int terminated = 0, ms_terminated = 0, not_terminated = 0;
    for (const auto& dg : family.graphs) {
      switch (ProbeGraph(dg.graph).status) {
        case Tractability::kTerminated:
          ++terminated;
          break;
        case Tractability::kMsTerminated:
          ++ms_terminated;
          break;
        case Tractability::kNotTerminated:
          ++not_terminated;
          break;
      }
    }
    total += static_cast<int>(family.graphs.size());
    total_terminated += terminated;
    table.AddRow({family.name, TablePrinter::Int(family.graphs.size()),
                  TablePrinter::Int(terminated),
                  TablePrinter::Int(ms_terminated),
                  TablePrinter::Int(not_terminated)});
  }
  table.Print(std::cout);
  std::cout << "\nOverall: " << total_terminated << "/" << total
            << " graphs fully tractable ("
            << (100 * total_terminated / (total > 0 ? total : 1))
            << "%; the paper reports ~50% on its corpus)\n";
  return 0;
}
