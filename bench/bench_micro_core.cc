// Google-benchmark microbenchmarks for the core operations: component
// expansion, crossing checks, separator enumeration, PMC enumeration,
// LB-Triang, context construction, a single MinTriang pass, the per-result
// cost of ranked enumeration, and — measurable in isolation since the PR-9
// memory work — VertexSet alloc/free, dedup-table probes, and queue
// push/pop traffic (the three layers that bound the small-universe
// enumeration suites).

#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "chordal/lb_triang.h"
#include "cost/standard_costs.h"
#include "enumeration/ranked_enum.h"
#include "graph/vertex_set_pool.h"
#include "graph/vertex_set_table.h"
#include "parallel/thread_pool.h"
#include "pmc/potential_maximal_cliques.h"
#include "separators/crossing.h"
#include "separators/minimal_separators.h"
#include "triang/min_triang.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace {

using namespace mintri;

Graph BenchGraph(int which) {
  switch (which) {
    case 0:
      return workloads::Grid(4, 5);
    case 1:
      return workloads::ConnectedErdosRenyi(24, 0.2, 99);
    default:
      return workloads::Mycielski(4);
  }
}

void BM_ComponentsAfterRemoving(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int>(state.range(0)));
  VertexSet removed(g.NumVertices());
  for (int v = 0; v < g.NumVertices(); v += 3) removed.Insert(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.ComponentsAfterRemoving(removed));
  }
}
BENCHMARK(BM_ComponentsAfterRemoving)->Arg(0)->Arg(1)->Arg(2);

void BM_CrossingCheck(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int>(state.range(0)));
  auto seps = ListMinimalSeparators(g).separators;
  if (seps.size() < 2) {
    state.SkipWithError("not enough separators");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    const VertexSet& a = seps[i % seps.size()];
    const VertexSet& b = seps[(i * 7 + 1) % seps.size()];
    benchmark::DoNotOptimize(AreParallel(g, a, b));
    ++i;
  }
}
BENCHMARK(BM_CrossingCheck)->Arg(0)->Arg(1)->Arg(2);

void BM_ListMinimalSeparators(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListMinimalSeparators(g));
  }
}
BENCHMARK(BM_ListMinimalSeparators)->Arg(0)->Arg(1)->Arg(2);

void BM_ListPmcs(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int>(state.range(0)));
  auto seps = ListMinimalSeparators(g).separators;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListPotentialMaximalCliques(g, seps));
  }
}
BENCHMARK(BM_ListPmcs)->Arg(0)->Arg(1)->Arg(2);

void BM_LbTriang(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LbTriangMinDegree(g));
  }
}
BENCHMARK(BM_LbTriang)->Arg(0)->Arg(1)->Arg(2);

void BM_ContextBuild(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TriangulationContext::Build(g));
  }
}
BENCHMARK(BM_ContextBuild)->Arg(0)->Arg(1)->Arg(2);

void BM_MinTriangWidth(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int>(state.range(0)));
  auto ctx = TriangulationContext::Build(g);
  WidthCost width;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinTriang(*ctx, width));
  }
}
BENCHMARK(BM_MinTriangWidth)->Arg(0)->Arg(1)->Arg(2);

void BM_RankedNext(benchmark::State& state) {
  // Amortized per-result cost of ranked enumeration (restarting the
  // enumerator whenever it is exhausted).
  Graph g = BenchGraph(static_cast<int>(state.range(0)));
  auto ctx = TriangulationContext::Build(g);
  WidthCost width;
  auto e = std::make_unique<RankedTriangulationEnumerator>(*ctx, width);
  for (auto _ : state) {
    auto t = e->Next();
    if (!t.has_value()) {
      e = std::make_unique<RankedTriangulationEnumerator>(*ctx, width);
    }
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_RankedNext)->Arg(0)->Arg(2);

// --- Allocation-layer microbenchmarks (PR 9) -------------------------------

void BM_VertexSetAllocFree(benchmark::State& state) {
  // Construct + destroy one set per iteration. capacity <= 128 runs the
  // small-buffer inline path (no allocator at all); larger capacities pay
  // one heap round-trip — the before/after of the SSO tentpole.
  const int capacity = static_cast<int>(state.range(0));
  for (auto _ : state) {
    VertexSet s(capacity);
    s.Insert(capacity - 1);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_VertexSetAllocFree)->Arg(64)->Arg(128)->Arg(192)->Arg(640);

void BM_VertexSetPoolAcquireRelease(benchmark::State& state) {
  // The pooled variant of the same traffic: steady-state Acquire/Release
  // recycles one buffer regardless of capacity.
  const int capacity = static_cast<int>(state.range(0));
  VertexSetPool pool;
  for (auto _ : state) {
    VertexSet s = pool.Acquire(capacity);
    s.Insert(capacity - 1);
    pool.Release(std::move(s));
  }
}
BENCHMARK(BM_VertexSetPoolAcquireRelease)->Arg(128)->Arg(640);

std::vector<VertexSet> ProbeCorpus(int capacity, int count) {
  std::vector<VertexSet> sets;
  sets.reserve(count);
  for (int i = 0; i < count; ++i) {
    VertexSet s(capacity);
    s.Insert(i % capacity);
    s.Insert((i * 31 + 7) % capacity);
    s.Insert((i * 131 + 13) % capacity);
    sets.push_back(std::move(s));
  }
  for (VertexSet& s : sets) (void)s.Hash();  // probe on warm hash caches
  return sets;
}

void BM_TableProbeHit(benchmark::State& state) {
  // One Find() per iteration against a populated table: the interleaved
  // slot layout makes this one cache line per probe step.
  auto sets = ProbeCorpus(85, 4096);
  VertexSetTable table;
  for (const VertexSet& s : sets) table.Insert(s);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Find(sets[i & 4095]));
    ++i;
  }
}
BENCHMARK(BM_TableProbeHit);

void BM_TableInsertDedup(benchmark::State& state) {
  // The enumeration engines' actual access pattern: mostly-duplicate
  // Insert() calls (each separator is rediscovered from many expansions).
  auto sets = ProbeCorpus(85, 1024);
  VertexSetTable table;
  table.Reserve(sets.size());
  for (const VertexSet& s : sets) table.Insert(s);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Insert(sets[(i * 17 + 5) & 1023]));
    ++i;
  }
}
BENCHMARK(BM_TableInsertDedup);

void BM_QueuePushPop(benchmark::State& state) {
  // Single-item Push/Next/Finish round-trip on a 1-worker queue: the
  // per-item mutex cost the batch API amortizes.
  parallel::WorkStealingQueue queue(1);
  uint64_t item = 0;
  for (auto _ : state) {
    queue.Push(0, 42);
    benchmark::DoNotOptimize(queue.Next(0, &item));
    queue.Finish();
  }
}
BENCHMARK(BM_QueuePushPop);

void BM_QueuePushPopBatched(benchmark::State& state) {
  // The same traffic through PushBatch/NextBatch/FinishBatch, batch size
  // matching the engines' kPopBatch. Per-item cost should be a fraction
  // of BM_QueuePushPop.
  constexpr size_t kBatch = 16;
  parallel::WorkStealingQueue queue(1);
  uint64_t items[kBatch];
  for (size_t k = 0; k < kBatch; ++k) items[k] = k;
  for (auto _ : state) {
    queue.PushBatch(0, items, kBatch);
    size_t got = queue.NextBatch(0, items, kBatch);
    benchmark::DoNotOptimize(got);
    queue.FinishBatch(got);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_QueuePushPopBatched);

}  // namespace

BENCHMARK_MAIN();
