// Google-benchmark microbenchmarks for the core operations: component
// expansion, crossing checks, separator enumeration, PMC enumeration,
// LB-Triang, context construction, a single MinTriang pass, and the
// per-result cost of ranked enumeration.

#include <benchmark/benchmark.h>

#include "chordal/lb_triang.h"
#include "cost/standard_costs.h"
#include "enumeration/ranked_enum.h"
#include "pmc/potential_maximal_cliques.h"
#include "separators/crossing.h"
#include "separators/minimal_separators.h"
#include "triang/min_triang.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace {

using namespace mintri;

Graph BenchGraph(int which) {
  switch (which) {
    case 0:
      return workloads::Grid(4, 5);
    case 1:
      return workloads::ConnectedErdosRenyi(24, 0.2, 99);
    default:
      return workloads::Mycielski(4);
  }
}

void BM_ComponentsAfterRemoving(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int>(state.range(0)));
  VertexSet removed(g.NumVertices());
  for (int v = 0; v < g.NumVertices(); v += 3) removed.Insert(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.ComponentsAfterRemoving(removed));
  }
}
BENCHMARK(BM_ComponentsAfterRemoving)->Arg(0)->Arg(1)->Arg(2);

void BM_CrossingCheck(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int>(state.range(0)));
  auto seps = ListMinimalSeparators(g).separators;
  if (seps.size() < 2) {
    state.SkipWithError("not enough separators");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    const VertexSet& a = seps[i % seps.size()];
    const VertexSet& b = seps[(i * 7 + 1) % seps.size()];
    benchmark::DoNotOptimize(AreParallel(g, a, b));
    ++i;
  }
}
BENCHMARK(BM_CrossingCheck)->Arg(0)->Arg(1)->Arg(2);

void BM_ListMinimalSeparators(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListMinimalSeparators(g));
  }
}
BENCHMARK(BM_ListMinimalSeparators)->Arg(0)->Arg(1)->Arg(2);

void BM_ListPmcs(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int>(state.range(0)));
  auto seps = ListMinimalSeparators(g).separators;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ListPotentialMaximalCliques(g, seps));
  }
}
BENCHMARK(BM_ListPmcs)->Arg(0)->Arg(1)->Arg(2);

void BM_LbTriang(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LbTriangMinDegree(g));
  }
}
BENCHMARK(BM_LbTriang)->Arg(0)->Arg(1)->Arg(2);

void BM_ContextBuild(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TriangulationContext::Build(g));
  }
}
BENCHMARK(BM_ContextBuild)->Arg(0)->Arg(1)->Arg(2);

void BM_MinTriangWidth(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<int>(state.range(0)));
  auto ctx = TriangulationContext::Build(g);
  WidthCost width;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinTriang(*ctx, width));
  }
}
BENCHMARK(BM_MinTriangWidth)->Arg(0)->Arg(1)->Arg(2);

void BM_RankedNext(benchmark::State& state) {
  // Amortized per-result cost of ranked enumeration (restarting the
  // enumerator whenever it is exhausted).
  Graph g = BenchGraph(static_cast<int>(state.range(0)));
  auto ctx = TriangulationContext::Build(g);
  WidthCost width;
  auto e = std::make_unique<RankedTriangulationEnumerator>(*ctx, width);
  for (auto _ : state) {
    auto t = e->Next();
    if (!t.has_value()) {
      e = std::make_unique<RankedTriangulationEnumerator>(*ctx, width);
    }
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_RankedNext)->Arg(0)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
