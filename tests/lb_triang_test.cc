#include "chordal/lb_triang.h"

#include <gtest/gtest.h>

#include <numeric>

#include "chordal/chordality.h"
#include "chordal/minimality.h"
#include "test_util.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace mintri {
namespace {

TEST(LbTriangTest, ChordalInputIsUnchanged) {
  Graph g = workloads::Complete(4);
  EXPECT_EQ(LbTriangMinDegree(g), g);
  Graph p = workloads::Path(6);
  EXPECT_EQ(LbTriangMinDegree(p), p);
}

TEST(LbTriangTest, CycleGetsMinimallyTriangulated) {
  Graph g = workloads::Cycle(6);
  Graph h = LbTriangMinDegree(g);
  EXPECT_TRUE(IsMinimalTriangulation(g, h));
  // A minimal triangulation of C_n adds exactly n-3 chords.
  EXPECT_EQ(h.NumEdges() - g.NumEdges(), 3);
}

TEST(LbTriangTest, PaperExample) {
  Graph g = testutil::PaperExampleGraph();
  Graph h = LbTriangMinDegree(g);
  EXPECT_TRUE(IsMinimalTriangulation(g, h));
}

class LbTriangPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LbTriangPropertyTest, AlwaysProducesMinimalTriangulation) {
  auto [n, seed] = GetParam();
  double p = 0.15 + 0.06 * (seed % 10);
  Graph g = workloads::ConnectedErdosRenyi(n, p, seed);
  // Identity order.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  Graph h1 = LbTriang(g, order);
  EXPECT_TRUE(IsMinimalTriangulation(g, h1)) << "identity order, seed "
                                             << seed;
  // Reversed order: LB-Triang guarantees minimality for ANY order.
  std::reverse(order.begin(), order.end());
  Graph h2 = LbTriang(g, order);
  EXPECT_TRUE(IsMinimalTriangulation(g, h2)) << "reverse order, seed "
                                             << seed;
  Graph h3 = LbTriangMinDegree(g);
  EXPECT_TRUE(IsMinimalTriangulation(g, h3)) << "min-degree, seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, LbTriangPropertyTest,
    ::testing::Combine(::testing::Values(6, 8, 10, 12),
                       ::testing::Range(0, 8)));

TEST(LbTriangTest, GridTriangulationsAreMinimal) {
  for (int r = 2; r <= 4; ++r) {
    for (int c = 2; c <= 4; ++c) {
      Graph g = workloads::Grid(r, c);
      EXPECT_TRUE(IsMinimalTriangulation(g, LbTriangMinDegree(g)))
          << r << "x" << c;
    }
  }
}

TEST(MinimalityTest, DetectsNonMinimalTriangulation) {
  // C4 saturated entirely (K4) is a triangulation but not minimal.
  Graph g = workloads::Cycle(4);
  Graph h = workloads::Complete(4);
  EXPECT_TRUE(IsTriangulationOf(g, h));
  EXPECT_FALSE(IsMinimalTriangulation(g, h));
  // One chord is minimal.
  Graph h2 = g;
  h2.AddEdge(0, 2);
  EXPECT_TRUE(IsMinimalTriangulation(g, h2));
}

TEST(MinimalityTest, RejectsNonSupergraphAndNonChordal) {
  Graph g = workloads::Cycle(4);
  EXPECT_FALSE(IsTriangulationOf(g, workloads::Path(4)));  // missing edge
  EXPECT_FALSE(IsTriangulationOf(g, g));                    // not chordal
  EXPECT_EQ(FillEdges(g, workloads::Complete(4)).size(), 2u);
}

}  // namespace
}  // namespace mintri
