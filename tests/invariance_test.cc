// Optimization-invariance cross-checks for the hot-path overhaul of the
// separator/PMC machinery (cached VertexSet hashes, the arena-backed
// MinimalSeparatorEnumerator, the scratch-reusing ComponentScanner): the
// optimized enumerators must produce exactly the sets the exponential
// reference implementations produce, and the paper's Figure-1 counts must
// stay pinned.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "cost/standard_costs.h"
#include "enumeration/ranked_forest.h"
#include "pmc/potential_maximal_cliques.h"
#include "separators/minimal_separators.h"
#include "test_util.h"
#include "util/timer.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace mintri {
namespace {

std::vector<VertexSet> Sorted(std::vector<VertexSet> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// Fixed-seed randomized cross-check up to n = 12: the optimized
// ListMinimalSeparators must return exactly the brute-force separator set.
class OptimizedSeparatorsVsBruteForce
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OptimizedSeparatorsVsBruteForce, ExactSetEquality) {
  auto [n, seed] = GetParam();
  double p = 0.15 + 0.05 * (seed % 6);
  Graph g = workloads::ConnectedErdosRenyi(n, p, 7000 + 31 * seed);
  auto fast = Sorted(ListMinimalSeparators(g).separators);
  auto brute = Sorted(MinimalSeparatorsBruteForce(g));
  EXPECT_EQ(fast, brute) << "n=" << n << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, OptimizedSeparatorsVsBruteForce,
    ::testing::Combine(::testing::Values(10, 11, 12),
                       ::testing::Range(0, 6)));

// Disconnected inputs exercise the lazy seeding across components.
TEST(OptimizationInvarianceTest, DisconnectedGraphMatchesBruteForce) {
  for (int seed = 0; seed < 4; ++seed) {
    Graph a = workloads::ConnectedErdosRenyi(5, 0.4, 7100 + seed);
    Graph b = workloads::ConnectedErdosRenyi(4, 0.5, 7200 + seed);
    Graph g(9);
    for (const auto& [u, v] : a.Edges()) g.AddEdge(u, v);
    for (const auto& [u, v] : b.Edges()) g.AddEdge(5 + u, 5 + v);
    auto fast = Sorted(ListMinimalSeparators(g).separators);
    auto brute = Sorted(MinimalSeparatorsBruteForce(g));
    EXPECT_EQ(fast, brute) << "seed=" << seed;
  }
}

// The optimized IsPmc (scratch tester) against its exponential reference.
TEST(OptimizationInvarianceTest, PmcEnumerationMatchesBruteForce) {
  for (int seed = 0; seed < 4; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(8, 0.3, 7300 + seed);
    auto seps = ListMinimalSeparators(g);
    ASSERT_EQ(seps.status, EnumerationStatus::kComplete);
    PmcResult pmcs = ListPotentialMaximalCliques(g, seps.separators);
    ASSERT_EQ(pmcs.status, EnumerationStatus::kComplete);
    EXPECT_EQ(pmcs.pmcs, PmcsBruteForce(g)) << "seed=" << seed;
  }
}

// The paper's running example (Figure 1) stays pinned: 3 minimal
// separators, 6 potential maximal cliques, 2 minimal triangulations.
TEST(OptimizationInvarianceTest, PaperExampleCountsUnchanged) {
  Graph g = testutil::PaperExampleGraph();

  auto seps = ListMinimalSeparators(g);
  ASSERT_EQ(seps.status, EnumerationStatus::kComplete);
  EXPECT_EQ(seps.separators.size(), 3u);

  PmcResult pmcs = ListPotentialMaximalCliques(g, seps.separators);
  ASSERT_EQ(pmcs.status, EnumerationStatus::kComplete);
  EXPECT_EQ(pmcs.pmcs.size(), 6u);

  WidthCost cost;
  RankedForestEnumerator enumerator(g, cost, CostComposition::kMax);
  ASSERT_TRUE(enumerator.init_ok());
  int count = 0;
  while (enumerator.Next().has_value()) ++count;
  EXPECT_EQ(count, 2);
}

// An already-expired deadline must stop the stream before it produces or
// expands anything, and must be reported as truncation — deterministic
// coverage for the per-vertex deadline poll inside Next().
TEST(OptimizationInvarianceTest, ExpiredDeadlineTruncatesImmediately) {
  Graph g = workloads::ConnectedErdosRenyi(12, 0.3, 7400);
  Deadline expired(0.0);
  ASSERT_TRUE(expired.Expired());
  MinimalSeparatorEnumerator enumerator(g, g.NumVertices(), &expired);
  EXPECT_EQ(enumerator.Next(), std::nullopt);
  EXPECT_TRUE(enumerator.Truncated());
  EXPECT_EQ(enumerator.NumDiscovered(), 0u);

  EnumerationLimits limits;
  limits.time_limit_seconds = 0.0;
  auto result = ListMinimalSeparators(g, limits);
  EXPECT_EQ(result.status, EnumerationStatus::kTruncated);
  EXPECT_TRUE(result.separators.empty());
}

// A deadline that expires mid-enumeration still yields a valid prefix:
// everything produced must be a genuine minimal separator.
TEST(OptimizationInvarianceTest, MidStreamDeadlineYieldsValidPrefix) {
  Graph g = workloads::ConnectedErdosRenyi(16, 0.3, 7500);
  Deadline deadline(1e9);  // effectively never, but non-infinite: polled
  MinimalSeparatorEnumerator enumerator(g, g.NumVertices(), &deadline);
  int produced = 0;
  while (produced < 50) {
    auto s = enumerator.Next();
    if (!s.has_value()) break;
    EXPECT_TRUE(IsMinimalSeparator(g, *s)) << s->ToString();
    ++produced;
  }
  EXPECT_FALSE(enumerator.Truncated());
  EXPECT_GT(produced, 0);
}

// A max_results cap equal to the exact answer-set size must still report
// completeness (lazy seeding must not misreport it as truncation), while
// any smaller cap reports a truncated prefix.
TEST(OptimizationInvarianceTest, ExactCapIsStillComplete) {
  Graph g = workloads::Cycle(8);  // exactly 8*(8-3)/2 = 20 minimal separators
  EnumerationLimits limits;
  limits.max_results = 20;
  auto exact = ListMinimalSeparators(g, limits);
  EXPECT_EQ(exact.status, EnumerationStatus::kComplete);
  EXPECT_EQ(exact.separators.size(), 20u);

  limits.max_results = 19;
  auto capped = ListMinimalSeparators(g, limits);
  EXPECT_EQ(capped.status, EnumerationStatus::kTruncated);
  EXPECT_EQ(capped.separators.size(), 19u);
}

// The bounded variant stays exact under the overhaul.
TEST(OptimizationInvarianceTest, BoundedEnumerationStillExact) {
  for (int seed = 0; seed < 4; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(10, 0.3, 7600 + seed);
    for (int bound = 2; bound <= 4; ++bound) {
      auto bounded = Sorted(ListMinimalSeparatorsBounded(g, bound).separators);
      std::vector<VertexSet> expected;
      for (const VertexSet& s : MinimalSeparatorsBruteForce(g)) {
        if (s.Count() <= bound) expected.push_back(s);
      }
      EXPECT_EQ(bounded, Sorted(std::move(expected)))
          << "seed=" << seed << " bound=" << bound;
    }
  }
}

}  // namespace
}  // namespace mintri
