#include "chordal/clique_tree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "chordal/chordality.h"
#include "chordal/lb_triang.h"
#include "test_util.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace mintri {
namespace {

using testutil::MakeGraph;

TEST(CliqueTreeTest, PathCliquesAreEdges) {
  Graph g = workloads::Path(4);
  auto cliques = MaximalCliquesOfChordal(g);
  EXPECT_EQ(cliques.size(), 3u);
  for (const VertexSet& c : cliques) EXPECT_EQ(c.Count(), 2);
}

TEST(CliqueTreeTest, CompleteGraphHasOneClique) {
  Graph g = workloads::Complete(5);
  auto cliques = MaximalCliquesOfChordal(g);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0].Count(), 5);
  CliqueTree tree = BuildCliqueTree(g);
  EXPECT_TRUE(tree.edges.empty());
}

TEST(CliqueTreeTest, ChordalBoundOnCliqueCount) {
  // Theorem 2.2(2): a chordal graph has < n maximal cliques... (<= n; < n
  // for n >= 2 connected). Validate on random chordal graphs produced by
  // LB-Triang.
  for (int seed = 0; seed < 10; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(10, 0.3, seed);
    Graph h = LbTriangMinDegree(g);
    ASSERT_TRUE(IsChordal(h));
    auto cliques = MaximalCliquesOfChordal(h);
    EXPECT_LT(cliques.size(), 10u);
    // Each clique is indeed a clique, and maximal.
    for (size_t i = 0; i < cliques.size(); ++i) {
      EXPECT_TRUE(h.IsClique(cliques[i]));
      for (size_t j = 0; j < cliques.size(); ++j) {
        if (i != j) {
          EXPECT_FALSE(cliques[i].IsSubsetOf(cliques[j]));
        }
      }
    }
  }
}

TEST(CliqueTreeTest, TreeHasJunctionProperty) {
  for (int seed = 0; seed < 10; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(12, 0.25, 100 + seed);
    Graph h = LbTriangMinDegree(g);
    CliqueTree tree = BuildCliqueTree(h);
    const int k = static_cast<int>(tree.cliques.size());
    ASSERT_EQ(tree.edges.size(), static_cast<size_t>(k - 1));
    // Junction property per vertex, via the "running intersection" check on
    // a rooted orientation.
    std::vector<std::vector<int>> adj(k);
    for (auto& [a, b] : tree.edges) {
      adj[a].push_back(b);
      adj[b].push_back(a);
    }
    for (int v = 0; v < h.NumVertices(); ++v) {
      // Collect holder nodes and check connectivity by BFS.
      std::vector<int> holders;
      for (int i = 0; i < k; ++i) {
        if (tree.cliques[i].Contains(v)) holders.push_back(i);
      }
      ASSERT_FALSE(holders.empty());
      std::vector<bool> inset(k, false), seen(k, false);
      for (int i : holders) inset[i] = true;
      std::vector<int> stack = {holders[0]};
      seen[holders[0]] = true;
      int reached = 0;
      while (!stack.empty()) {
        int x = stack.back();
        stack.pop_back();
        ++reached;
        for (int y : adj[x]) {
          if (inset[y] && !seen[y]) {
            seen[y] = true;
            stack.push_back(y);
          }
        }
      }
      EXPECT_EQ(reached, static_cast<int>(holders.size())) << "vertex " << v;
    }
  }
}

TEST(CliqueTreeTest, MinimalSeparatorsOfChordalPath) {
  Graph g = workloads::Path(4);  // separators {1}, {2}
  auto seps = MinimalSeparatorsOfChordal(g);
  ASSERT_EQ(seps.size(), 2u);
  EXPECT_EQ(seps[0], VertexSet::Of(4, {1}));
  EXPECT_EQ(seps[1], VertexSet::Of(4, {2}));
}

TEST(CliqueTreeTest, MinimalSeparatorsOfChordalMatchBruteForce) {
  for (int seed = 0; seed < 15; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(9, 0.3, 200 + seed);
    Graph h = LbTriangMinDegree(g);
    auto via_tree = MinimalSeparatorsOfChordal(h);
    auto brute = MinimalSeparatorsBruteForce(h);
    std::sort(via_tree.begin(), via_tree.end());
    std::sort(brute.begin(), brute.end());
    EXPECT_EQ(via_tree, brute) << "seed " << seed;
  }
}

TEST(CliqueTreeTest, DisconnectedChordalStillYieldsSingleTree) {
  Graph g = MakeGraph(5, {{0, 1}, {2, 3}, {3, 4}});
  CliqueTree tree = BuildCliqueTree(g);
  EXPECT_EQ(tree.cliques.size(), 3u);
  EXPECT_EQ(tree.edges.size(), 2u);  // spanning tree with empty adhesions
}

}  // namespace
}  // namespace mintri
