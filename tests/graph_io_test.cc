#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mintri {
namespace {

TEST(GraphIoTest, ParsesDimacs) {
  auto g = ParseDimacsString(
      "c a comment\n"
      "p tw 4 3\n"
      "1 2\n"
      "2 3\n"
      "3 4\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumVertices(), 4);
  EXPECT_EQ(g->NumEdges(), 3);
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_TRUE(g->HasEdge(2, 3));
}

TEST(GraphIoTest, RejectsMalformed) {
  EXPECT_FALSE(ParseDimacsString("1 2\n").has_value());       // no header
  EXPECT_FALSE(ParseDimacsString("p tw 2 1\n1 5\n").has_value());  // range
  EXPECT_FALSE(ParseDimacsString("p tw x y\n").has_value());
}

TEST(GraphIoTest, RoundTrips) {
  Graph g(5);
  g.AddEdge(0, 4);
  g.AddEdge(1, 2);
  std::ostringstream out;
  WriteDimacs(g, out);
  auto parsed = ParseDimacsString(out.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, g);
}

TEST(GraphIoTest, ParsesEdgeList) {
  std::istringstream in("3\n0 1\n1 2\n");
  auto g = ParseEdgeList(in);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumVertices(), 3);
  EXPECT_EQ(g->NumEdges(), 2);
}

TEST(GraphIoTest, EdgeListRejectsOutOfRange) {
  std::istringstream in("2\n0 3\n");
  EXPECT_FALSE(ParseEdgeList(in).has_value());
}

}  // namespace
}  // namespace mintri
