// Differential test layer for the parallel enumeration engine: for
// fixed-seed graphs drawn from every workload family (n <= 60), the
// multi-threaded MinSep/PMC enumerators must produce exactly the serial
// engines' result sets — compared as sorted canonical vertex sets — for the
// unbounded and the max_size-bounded variants alike. Truncated runs are
// checked for prefix validity: every returned set must still pass the exact
// IsMinimalSeparator predicate.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "pmc/potential_maximal_cliques.h"
#include "separators/minimal_separators.h"
#include "workloads/families.h"

namespace mintri {
namespace {

std::vector<VertexSet> Sorted(std::vector<VertexSet> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// The separator-count cap for the differential runs. Count caps (unlike
// wall-clock deadlines) truncate deterministically, so serial and parallel
// runs must agree on *whether* they truncated, even though the truncated
// prefixes themselves may differ.
constexpr size_t kSepCap = 20000;

struct NamedGraph {
  std::string name;
  Graph graph;
};

// Up to two graphs per workload family with n <= 60. All families are
// deterministic (fixed seeds), so this corpus is identical on every run.
std::vector<NamedGraph> FamilyCorpus() {
  std::vector<NamedGraph> corpus;
  for (const workloads::DatasetFamily& family : workloads::AllFamilies()) {
    int used = 0;
    for (const workloads::DatasetGraph& dg : family.graphs) {
      if (dg.graph.NumVertices() > 60) continue;
      corpus.push_back({family.name + "/" + dg.name, dg.graph});
      if (++used == 2) break;
    }
  }
  return corpus;
}

class ParallelEquivalence : public ::testing::TestWithParam<int> {
 protected:
  int threads() const { return GetParam(); }
};

TEST_P(ParallelEquivalence, MinimalSeparatorsMatchSerial) {
  for (const NamedGraph& ng : FamilyCorpus()) {
    EnumerationLimits serial_limits;
    serial_limits.max_results = kSepCap;
    MinimalSeparatorsResult serial =
        ListMinimalSeparators(ng.graph, serial_limits);

    EnumerationLimits par_limits = serial_limits;
    par_limits.num_threads = threads();
    MinimalSeparatorsResult par = ListMinimalSeparators(ng.graph, par_limits);

    EXPECT_EQ(par.status, serial.status) << ng.name;
    if (serial.status == EnumerationStatus::kComplete) {
      EXPECT_EQ(Sorted(par.separators), Sorted(serial.separators)) << ng.name;
    } else {
      // The truncated prefix is thread-interleaving dependent; what must
      // hold is its size and that every element is a genuine separator.
      EXPECT_EQ(par.separators.size(), kSepCap) << ng.name;
      for (const VertexSet& s : par.separators) {
        ASSERT_TRUE(IsMinimalSeparator(ng.graph, s)) << ng.name;
      }
    }
  }
}

TEST_P(ParallelEquivalence, BoundedSeparatorsMatchSerial) {
  for (const NamedGraph& ng : FamilyCorpus()) {
    for (int max_size : {3, 5}) {
      EnumerationLimits serial_limits;
      serial_limits.max_results = kSepCap;
      MinimalSeparatorsResult serial =
          ListMinimalSeparatorsBounded(ng.graph, max_size, serial_limits);

      EnumerationLimits par_limits = serial_limits;
      par_limits.num_threads = threads();
      MinimalSeparatorsResult par =
          ListMinimalSeparatorsBounded(ng.graph, max_size, par_limits);

      EXPECT_EQ(par.status, serial.status)
          << ng.name << " max_size=" << max_size;
      if (serial.status == EnumerationStatus::kComplete) {
        EXPECT_EQ(Sorted(par.separators), Sorted(serial.separators))
            << ng.name << " max_size=" << max_size;
      }
    }
  }
}

TEST_P(ParallelEquivalence, PotentialMaximalCliquesMatchSerial) {
  for (const NamedGraph& ng : FamilyCorpus()) {
    // PMC enumeration is only tractable where MinSep(G) is small; the dense
    // "hopeless" families (by design past the separator blow-up) are
    // detected by a deterministic count cap and skipped, exactly as the
    // paper's pipeline refuses them at the initialization step.
    EnumerationLimits probe;
    probe.max_results = 3000;
    MinimalSeparatorsResult seps = ListMinimalSeparators(ng.graph, probe);
    if (seps.status != EnumerationStatus::kComplete) continue;

    PmcResult serial = ListPotentialMaximalCliques(ng.graph, seps.separators);
    ASSERT_EQ(serial.status, EnumerationStatus::kComplete) << ng.name;

    PmcOptions par_options;
    par_options.limits.num_threads = threads();
    PmcResult par =
        ListPotentialMaximalCliques(ng.graph, seps.separators, par_options);
    EXPECT_EQ(par.status, EnumerationStatus::kComplete) << ng.name;
    // Both sides are already canonically sorted by the API contract.
    EXPECT_EQ(par.pmcs, serial.pmcs) << ng.name;
  }
}

TEST_P(ParallelEquivalence, SizeBoundedPmcsMatchSerial) {
  for (const NamedGraph& ng : FamilyCorpus()) {
    EnumerationLimits probe;
    probe.max_results = 3000;
    MinimalSeparatorsResult seps = ListMinimalSeparators(ng.graph, probe);
    if (seps.status != EnumerationStatus::kComplete) continue;

    PmcOptions serial_options;
    serial_options.max_size = 5;
    PmcResult serial = ListPotentialMaximalCliques(ng.graph, seps.separators,
                                                   serial_options);
    if (serial.status != EnumerationStatus::kComplete) continue;

    PmcOptions par_options = serial_options;
    par_options.limits.num_threads = threads();
    PmcResult par =
        ListPotentialMaximalCliques(ng.graph, seps.separators, par_options);
    EXPECT_EQ(par.status, EnumerationStatus::kComplete) << ng.name;
    EXPECT_EQ(par.pmcs, serial.pmcs) << ng.name;
  }
}

// Complete parallel results are canonically sorted, so two runs of the same
// input must be bit-identical however the threads interleaved.
TEST_P(ParallelEquivalence, CompleteRunsAreDeterministic) {
  const Graph g = workloads::FamilyByName("Grids").graphs[1].graph;
  EnumerationLimits limits;
  limits.num_threads = threads();
  MinimalSeparatorsResult a = ListMinimalSeparators(g, limits);
  MinimalSeparatorsResult b = ListMinimalSeparators(g, limits);
  ASSERT_EQ(a.status, EnumerationStatus::kComplete);
  EXPECT_EQ(a.separators, b.separators);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelEquivalence,
                         ::testing::Values(2, 4));

}  // namespace
}  // namespace mintri
