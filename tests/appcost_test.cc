// The application-cost pipeline end to end: hypergraph (hypertree/fhw) and
// inference (state-space) costs through the ranked stack, the memoized
// bag-score cache, and the uncoverable-bag sentinel regression. The
// differential layer cross-checks ranked enumeration under the application
// costs against the independent CKK baseline and against BagCost::Evaluate
// on every produced triangulation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "cost/cost_model_registry.h"
#include "enumeration/ckk.h"
#include "enumeration/ranked_forest.h"
#include "enumeration/tree_decomposition.h"
#include "hypergraph/edge_cover.h"
#include "hypergraph/hypergraph_io.h"
#include "inference/junction_tree.h"
#include "inference/model_io.h"
#include "workloads/inference_models.h"
#include "workloads/random_graphs.h"
#include "workloads/tpch_queries.h"

namespace mintri {
namespace {

using FillSet = std::vector<std::pair<int, int>>;

struct RankedResult {
  FillSet fill;
  CostValue cost;
};

bool ByFillSet(const RankedResult& a, const RankedResult& b) {
  return a.fill < b.fill;
}

// Every minimal triangulation of `instance.graph` under `cost_name`, via
// the ranked stack; checks the ranked order is nondecreasing and every
// reported cost matches Evaluate on the bags.
std::vector<RankedResult> ExhaustRanked(const CostModelInstance& instance,
                                        const std::string& cost_name,
                                        bool enable_cache) {
  std::string error;
  std::optional<CostModel> model =
      MakeCostModel(cost_name, instance, enable_cache, &error);
  EXPECT_TRUE(model.has_value()) << error;
  RankedForestEnumerator e(instance.graph, *model->cost, model->composition);
  EXPECT_TRUE(e.init_ok());
  std::vector<RankedResult> out;
  CostValue last = -kInfiniteCost;
  while (auto t = e.Next()) {
    EXPECT_GE(t->cost, last - 1e-9) << "ranked order must be nondecreasing";
    EXPECT_NEAR(t->cost, model->cost->Evaluate(instance.graph, t->bags),
                1e-9);
    last = t->cost;
    out.push_back({t->FillEdgesSorted(instance.graph), t->cost});
  }
  return out;
}

// The same set via the CKK baseline (connected graphs only).
std::vector<RankedResult> ExhaustCkk(const CostModelInstance& instance,
                                     const std::string& cost_name) {
  std::string error;
  std::optional<CostModel> model =
      MakeCostModel(cost_name, instance, /*enable_cache=*/false, &error);
  EXPECT_TRUE(model.has_value()) << error;
  CkkEnumerator e(instance.graph, model->cost.get());
  std::vector<RankedResult> out;
  while (auto t = e.Next()) {
    out.push_back({t->FillEdgesSorted(instance.graph), t->cost});
  }
  return out;
}

void ExpectSameTriangulations(std::vector<RankedResult> a,
                              std::vector<RankedResult> b) {
  std::sort(a.begin(), a.end(), ByFillSet);
  std::sort(b.begin(), b.end(), ByFillSet);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fill, b[i].fill);
    EXPECT_NEAR(a[i].cost, b[i].cost, 1e-9);
  }
}

// A hypergraph instance whose primal graph is g: one binary hyperedge per
// graph edge plus a few random larger hyperedges (so integral and
// fractional covers genuinely differ).
CostModelInstance HypergraphInstanceOf(const Graph& g, uint64_t seed) {
  Hypergraph h(g.NumVertices());
  for (const auto& [u, v] : g.Edges()) {
    h.AddEdge(VertexSet::Of(g.NumVertices(), {u, v}));
  }
  // Deterministic extra edges over existing triangles keep the primal graph
  // unchanged.
  uint64_t state = seed;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int t = 0; t < 2 * g.NumVertices(); ++t) {
    int a = static_cast<int>(next() % g.NumVertices());
    for (int b = 0; b < g.NumVertices(); ++b) {
      for (int c = b + 1; c < g.NumVertices(); ++c) {
        if (b != a && c != a && g.HasEdge(a, b) && g.HasEdge(a, c) &&
            g.HasEdge(b, c)) {
          h.AddEdge(VertexSet::Of(g.NumVertices(), {a, b, c}));
          t = 2 * g.NumVertices();  // one triangle per attempt round
        }
      }
    }
  }
  CostModelInstance instance;
  instance.name = "test";
  instance.graph = h.PrimalGraph();
  instance.hypergraph = std::move(h);
  return instance;
}

class AppCostDifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

// fhw/hypertree ranked enumeration vs. the independent CKK baseline on the
// small-graph corpus: exact same triangulation sets, same costs.
TEST_P(AppCostDifferentialTest, RankedMatchesCkkUnderEdgeCoverCosts) {
  auto [n, seed] = GetParam();
  Graph g = workloads::ConnectedErdosRenyi(n, 0.3, 5200 + 17 * seed);
  CostModelInstance instance = HypergraphInstanceOf(g, 99 + seed);
  for (const char* cost : {"hypertree", "fhw"}) {
    ExpectSameTriangulations(ExhaustRanked(instance, cost, true),
                             ExhaustCkk(instance, cost));
  }
}

INSTANTIATE_TEST_SUITE_P(SmallGraphs, AppCostDifferentialTest,
                         ::testing::Combine(::testing::Values(8, 10, 12),
                                            ::testing::Range(0, 3)));

// Cache-on and cache-off runs must produce byte-identical ranked streams
// (same triangulations in the same order with the same costs), and the
// cache must actually hit.
TEST(BagScoreCacheTest, CacheOnEqualsCacheOffAndHits) {
  for (int q : {2, 5, 9}) {
    workloads::TpchQuery query = workloads::TpchQueryGraph(q);
    CostModelInstance instance;
    instance.name = "q" + std::to_string(q);
    Hypergraph h = workloads::TpchQueryHypergraph(query);
    instance.graph = h.PrimalGraph();
    instance.hypergraph = std::move(h);

    std::string error;
    std::optional<CostModel> cached =
        MakeCostModel("fhw", instance, true, &error);
    ASSERT_TRUE(cached.has_value()) << error;
    std::optional<CostModel> uncached =
        MakeCostModel("fhw", instance, false, &error);
    ASSERT_TRUE(uncached.has_value()) << error;
    ASSERT_NE(cached->cache, nullptr);
    EXPECT_EQ(uncached->cache, nullptr);

    RankedForestEnumerator e1(instance.graph, *cached->cost,
                              cached->composition);
    RankedForestEnumerator e2(instance.graph, *uncached->cost,
                              uncached->composition);
    while (true) {
      auto t1 = e1.Next();
      auto t2 = e2.Next();
      ASSERT_EQ(t1.has_value(), t2.has_value());
      if (!t1.has_value()) break;
      EXPECT_EQ(t1->FillEdgesSorted(instance.graph),
                t2->FillEdgesSorted(instance.graph));
      EXPECT_NEAR(t1->cost, t2->cost, 1e-12);
    }
    const BagScoreCache::Stats stats = cached->cache->stats();
    EXPECT_GT(stats.lookups, 0);
    EXPECT_GT(stats.hits, 0) << "ranked enumeration re-scores bags; the "
                                "cache must see repeats";
    EXPECT_GT(stats.HitRate(), 0.0);
  }
}

// Regression (sentinel → infinity): a bag containing a vertex in no
// hyperedge must score kInfiniteCost. The old code fed the raw -1 sentinel
// into WeightedWidthCost, making the invalid bag the *cheapest* one and the
// whole instance score -1 instead of infinity.
TEST(EdgeCoverSentinelTest, UncoverableBagScoresInfinity) {
  Hypergraph h(3);
  h.AddEdge(VertexSet::Of(3, {0, 1}));  // vertex 2 is uncovered
  EXPECT_EQ(HypertreeBagScore(h, VertexSet::Of(3, {2})), kInfiniteCost);
  EXPECT_EQ(FractionalEdgeCoverBagScore(h, VertexSet::Of(3, {2})),
            kInfiniteCost);
  EXPECT_EQ(HypertreeBagScore(h, VertexSet::Of(3, {0, 2})), kInfiniteCost);
  // Coverable bags stay finite.
  EXPECT_EQ(HypertreeBagScore(h, VertexSet::Of(3, {0, 1})), 1.0);

  auto cost = HypertreeWidthCost(h);
  Graph primal = h.PrimalGraph();
  EXPECT_EQ(cost->Evaluate(primal, {VertexSet::Of(3, {0, 1}),
                                    VertexSet::Of(3, {2})}),
            kInfiniteCost);
}

TEST(EdgeCoverSentinelTest, RankedStackReportsInfinityNotMinusOne) {
  Hypergraph h(3);
  h.AddEdge(VertexSet::Of(3, {0, 1}));
  CostModelInstance instance;
  instance.name = "uncoverable";
  instance.graph = h.PrimalGraph();  // edge 0-1 plus isolated vertex 2
  instance.hypergraph = std::move(h);
  std::string error;
  std::optional<CostModel> model =
      MakeCostModel("hypertree", instance, true, &error);
  ASSERT_TRUE(model.has_value()) << error;
  RankedForestEnumerator e(instance.graph, *model->cost,
                           model->composition);
  ASSERT_TRUE(e.init_ok());
  // Every triangulation of the uncoverable component costs infinity, so the
  // DP finds no feasible solution and the ranked stream is empty. The old
  // code instead scored the invalid bag -1 — the *cheapest* — and happily
  // produced a finite-cost "best" triangulation (cost 1 here).
  EXPECT_FALSE(e.Next().has_value());
}

// state-space through the registry uses the model's real domain sizes, and
// the ranked cost is exactly the junction-tree table total that inference
// pays.
TEST(StateSpaceCostTest, RegistryUsesModelDomains) {
  GraphicalModel model = workloads::GridMrf(3, 3, 901);
  CostModelInstance instance;
  instance.name = "grid3x3";
  instance.graph = model.MarkovGraph();
  instance.model = model;
  std::string error;
  std::optional<CostModel> cm =
      MakeCostModel("state-space", instance, true, &error);
  ASSERT_TRUE(cm.has_value()) << error;
  RankedForestEnumerator e(instance.graph, *cm->cost, cm->composition);
  ASSERT_TRUE(e.init_ok());
  auto t = e.Next();
  ASSERT_TRUE(t.has_value());
  TotalStateSpaceCost reference(model.DomainsAsWeights());
  EXPECT_NEAR(t->cost, reference.Evaluate(instance.graph, t->bags), 1e-9);

  JunctionTreeInference inference(model.domains, model.factors);
  auto run = inference.Run(CliqueTreeOf(*t));
  ASSERT_TRUE(run.has_value());
  EXPECT_FALSE(run->degenerate);
  EXPECT_NEAR(run->total_table_entries, t->cost, 1e-9);
}

TEST(CostModelRegistryTest, ErrorsAreExplicit) {
  CostModelInstance instance;
  instance.name = "plain";
  instance.graph = Graph(3);
  instance.graph.AddEdge(0, 1);
  std::string error;
  EXPECT_FALSE(MakeCostModel("no-such-cost", instance, true, &error));
  EXPECT_NE(error.find("unknown cost"), std::string::npos);
  EXPECT_FALSE(MakeCostModel("fhw", instance, true, &error));
  EXPECT_NE(error.find("hypergraph"), std::string::npos);
  for (const std::string& name : KnownCostNames()) {
    if (name == "hypertree" || name == "fhw") continue;
    EXPECT_TRUE(MakeCostModel(name, instance, true, &error)) << name;
  }
}

TEST(HypergraphIoTest, RoundTrip) {
  Hypergraph h(5);
  h.AddEdge(VertexSet::Of(5, {0, 1, 2}));
  h.AddEdge(VertexSet::Of(5, {2, 3}));
  h.AddEdge(VertexSet::Of(5, {3, 4}));
  std::ostringstream os;
  WriteHypergraph(h, os);
  std::optional<Hypergraph> parsed = ParseHypergraphString(os.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->NumVertices(), 5);
  ASSERT_EQ(parsed->NumEdges(), 3);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(parsed->Edge(i), h.Edge(i));
}

TEST(HypergraphIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseHypergraphString(""));
  EXPECT_FALSE(ParseHypergraphString("p tw 3 1\n1 2\n"));   // wrong format
  EXPECT_FALSE(ParseHypergraphString("p hg 3 2\n1 2\n"));   // missing edge
  EXPECT_FALSE(ParseHypergraphString("p hg 3 1\n1 4\n"));   // out of range
  EXPECT_FALSE(ParseHypergraphString("p hg 3 1\n1 1\n"));   // duplicate
  EXPECT_FALSE(ParseHypergraphString("p hg 3 1\n1 x\n"));   // non-numeric
  EXPECT_FALSE(ParseHypergraphString("1 2\np hg 3 1\n"));   // edge first
  EXPECT_TRUE(ParseHypergraphString("c ok\np hg 3 1\n1 2 3\n"));
}

TEST(ModelIoTest, ParsesPermutedScopesIntoAscendingLayout) {
  // One factor listed with scope (1, 0): the UAI layout has variable 0
  // fastest; the parsed Factor must carry scope {0, 1} row-major.
  const char* text =
      "MARKOV\n"
      "2\n"
      "2 3\n"
      "1\n"
      "2 1 0\n"
      "6 10 20 30 40 50 60\n";
  std::optional<GraphicalModel> m = ParseUaiModelString(text);
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(m->factors.size(), 1u);
  const Factor& f = m->factors[0];
  EXPECT_EQ(f.scope, (std::vector<int>{0, 1}));
  // Raw layout (v1 msd, v0 lsd): entry (v1=j, v0=i) = 10*(2j+i+1).
  // Ascending layout (v0 msd): table[i*3+j] = value at (v0=i, v1=j).
  EXPECT_EQ(f.table, (std::vector<double>{10, 30, 50, 20, 40, 60}));
}

TEST(ModelIoTest, RoundTripPreservesInference) {
  GraphicalModel m = workloads::RandomBayesNet(7, 2, 3, 4242);
  std::ostringstream os;
  WriteUaiModel(m, os);
  std::optional<GraphicalModel> parsed = ParseUaiModelString(os.str());
  ASSERT_TRUE(parsed.has_value());
  JunctionTreeInference a(m.domains, m.factors);
  JunctionTreeInference b(parsed->domains, parsed->factors);
  auto ra = a.BruteForce();
  auto rb = b.BruteForce();
  EXPECT_FALSE(ra.degenerate);
  EXPECT_NEAR(ra.partition_function / rb.partition_function, 1.0, 1e-9);
}

TEST(ModelIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseUaiModelString(""));
  EXPECT_FALSE(ParseUaiModelString("GIBBS\n1\n2\n0\n"));
  EXPECT_FALSE(ParseUaiModelString("MARKOV\n1\n0\n0\n"));   // domain < 1
  EXPECT_FALSE(ParseUaiModelString("MARKOV\n1\n2\n1\n1 5\n2 1 1\n"));
  EXPECT_FALSE(ParseUaiModelString("MARKOV\n2\n2 2\n1\n2 0 0\n4 1 1 1 1\n"));
  EXPECT_FALSE(ParseUaiModelString("MARKOV\n1\n2\n1\n1 0\n3 1 1 1\n"));
  EXPECT_FALSE(
      ParseUaiModelString("MARKOV\n1\n2\n1\n1 0\n2 1 -1\n"));  // negative
  EXPECT_TRUE(ParseUaiModelString("MARKOV\n1\n2\n1\n1 0\n2 1 1\n"));
}

TEST(TpchHypergraphTest, CoversAllVerticesOnEveryQuery) {
  for (const workloads::TpchQuery& q : workloads::AllTpchQueries()) {
    Hypergraph h = workloads::TpchQueryHypergraph(q);
    EXPECT_EQ(h.NumVertices(),
              q.graph.NumVertices() + q.graph.NumEdges());
    EXPECT_EQ(h.NumEdges(), q.graph.NumVertices());
    EXPECT_TRUE(h.CoversAllVertices()) << "query " << q.number;
    // Each relation's hyperedge contains its private vertex and exactly its
    // incident join predicates.
    for (int r = 0; r < q.graph.NumVertices(); ++r) {
      EXPECT_TRUE(h.Edge(r).Contains(r));
      EXPECT_EQ(h.Edge(r).Count() - 1, q.graph.Neighbors(r).Count());
    }
  }
}

}  // namespace
}  // namespace mintri
