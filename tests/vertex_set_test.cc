#include "graph/vertex_set.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "graph/bitset_kernels.h"

namespace mintri {
namespace {

TEST(VertexSetTest, EmptyByDefault) {
  VertexSet s(10);
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0);
  EXPECT_EQ(s.First(), -1);
  EXPECT_EQ(s.capacity(), 10);
}

TEST(VertexSetTest, InsertEraseContains) {
  VertexSet s(100);
  s.Insert(3);
  s.Insert(64);
  s.Insert(99);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(64));
  EXPECT_TRUE(s.Contains(99));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Count(), 3);
  s.Erase(64);
  EXPECT_FALSE(s.Contains(64));
  EXPECT_EQ(s.Count(), 2);
}

TEST(VertexSetTest, AllCoversExactlyTheUniverse) {
  for (int cap : {1, 63, 64, 65, 128, 200}) {
    VertexSet s = VertexSet::All(cap);
    EXPECT_EQ(s.Count(), cap) << "capacity " << cap;
    EXPECT_TRUE(s.Contains(cap - 1));
  }
}

TEST(VertexSetTest, FirstReturnsSmallest) {
  VertexSet s(130);
  s.Insert(127);
  s.Insert(65);
  s.Insert(90);
  EXPECT_EQ(s.First(), 65);
}

TEST(VertexSetTest, SetAlgebra) {
  VertexSet a = VertexSet::Of(10, {1, 2, 3});
  VertexSet b = VertexSet::Of(10, {3, 4});
  EXPECT_EQ(a.Union(b), VertexSet::Of(10, {1, 2, 3, 4}));
  EXPECT_EQ(a.Intersect(b), VertexSet::Of(10, {3}));
  EXPECT_EQ(a.Minus(b), VertexSet::Of(10, {1, 2}));
  EXPECT_EQ(VertexSet::Of(3, {0, 1}).Complement(), VertexSet::Of(3, {2}));
}

TEST(VertexSetTest, SubsetAndIntersects) {
  VertexSet a = VertexSet::Of(70, {1, 65});
  VertexSet b = VertexSet::Of(70, {1, 2, 65});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(VertexSet::Of(70, {3, 66})));
  EXPECT_TRUE(VertexSet(70).IsSubsetOf(a));
}

TEST(VertexSetTest, ForEachVisitsInIncreasingOrder) {
  VertexSet s = VertexSet::Of(200, {0, 7, 64, 128, 199});
  std::vector<int> seen;
  s.ForEach([&](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{0, 7, 64, 128, 199}));
  EXPECT_EQ(s.ToVector(), seen);
}

TEST(VertexSetTest, ToString) {
  EXPECT_EQ(VertexSet::Of(10, {1, 5}).ToString(), "{1,5}");
  EXPECT_EQ(VertexSet(10).ToString(), "{}");
}

TEST(VertexSetTest, OrderingAndHashing) {
  VertexSet a = VertexSet::Of(10, {1});
  VertexSet b = VertexSet::Of(10, {2});
  EXPECT_TRUE(a < b || b < a);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, VertexSet::Of(10, {1}));
  EXPECT_EQ(a.Hash(), VertexSet::Of(10, {1}).Hash());
  std::set<VertexSet> ordered = {a, b, a};
  EXPECT_EQ(ordered.size(), 2u);
}

TEST(VertexSetTest, SingleAndFromVector) {
  EXPECT_EQ(VertexSet::Single(5, 3), VertexSet::Of(5, {3}));
  EXPECT_EQ(VertexSet::FromVector(5, {0, 2}), VertexSet::Of(5, {0, 2}));
}

TEST(VertexSetTest, HashIsContentDefinedAcrossConstructionPaths) {
  // The same element set must hash identically no matter how it was built:
  // incremental Insert/Erase (cache maintained in place), bulk word ops
  // (cache invalidated, recomputed on demand), or fused assignments.
  VertexSet by_insert(70);
  by_insert.Insert(1);
  by_insert.Insert(65);
  by_insert.Insert(9);
  by_insert.Erase(9);

  VertexSet by_ops = VertexSet::Of(70, {1, 2, 65});
  by_ops.MinusWith(VertexSet::Of(70, {2}));

  VertexSet by_union(70);
  by_union.AssignUnionOf(VertexSet::Of(70, {1}), VertexSet::Of(70, {65}));

  EXPECT_EQ(by_insert, by_ops);
  EXPECT_EQ(by_insert.Hash(), by_ops.Hash());
  EXPECT_EQ(by_insert.Hash(), by_union.Hash());

  // Erase back to empty matches a fresh empty set.
  by_insert.Erase(1);
  by_insert.Erase(65);
  EXPECT_EQ(by_insert.Hash(), VertexSet(70).Hash());

  // Duplicate Insert/Erase must not perturb the maintained hash.
  VertexSet dup = VertexSet::Of(70, {4});
  uint64_t h = dup.Hash();
  dup.Insert(4);
  dup.Erase(5);
  EXPECT_EQ(dup.Hash(), h);
}

TEST(VertexSetTest, ResetAndAssignHelpers) {
  VertexSet s = VertexSet::Of(130, {0, 64, 129});
  s.Reset(130);
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.capacity(), 130);

  s.ResetAll(65);
  EXPECT_EQ(s.Count(), 65);
  EXPECT_EQ(s, VertexSet::All(65));

  VertexSet c;
  c.AssignComplementOf(VertexSet::Of(65, {0, 64}));
  EXPECT_EQ(c, VertexSet::Of(65, {0, 64}).Complement());
  EXPECT_EQ(c.Hash(), VertexSet::Of(65, {0, 64}).Complement().Hash());

  VertexSet u;
  u.AssignUnionOf(VertexSet::Of(70, {3, 69}), VertexSet::Of(70, {4}));
  EXPECT_EQ(u, VertexSet::Of(70, {3, 4, 69}));
}

TEST(VertexSetTest, EqualityIsCapacityAware) {
  // Regression: equal-word sets over different universes used to compare
  // equal (operator== never looked at the capacity). {0} over 64 vertices
  // and {0} over 70 vertices have identical words but are different sets.
  EXPECT_NE(VertexSet::Of(64, {0}), VertexSet::Of(70, {0}));
  EXPECT_NE(VertexSet(3), VertexSet(4));
  EXPECT_EQ(VertexSet::Of(70, {0}), VertexSet::Of(70, {0}));
  // Same capacity, different word paths, still equal.
  VertexSet s(70);
  s.Insert(0);
  EXPECT_EQ(s, VertexSet::Of(70, {0}));
}

TEST(VertexSetTest, OrderingIsATotalOrderAcrossMixedWordCounts) {
  // Regression: operator< documented "size of words then lexicographic"
  // but compared purely lexicographically, so {0}/64 and {0}/70 (identical
  // words, different universes) were mutually un-ordered yet un-equal
  // under the capacity-aware operator==. Capacity now orders first.
  const VertexSet sets[] = {
      VertexSet(3),           VertexSet::Of(10, {1}),
      VertexSet::Of(64, {0}), VertexSet::Of(70, {0}),
      VertexSet::Of(70, {1}), VertexSet::Of(128, {0}),
      VertexSet::Of(128, {0, 64}),
  };
  for (const VertexSet& a : sets) {
    for (const VertexSet& b : sets) {
      // Trichotomy: exactly one of a<b, b<a, a==b.
      const int ways = (a < b ? 1 : 0) + (b < a ? 1 : 0) + (a == b ? 1 : 0);
      EXPECT_EQ(ways, 1) << a.ToString() << " vs " << b.ToString();
    }
  }
  // The documented order: capacity first, then lexicographic on words.
  EXPECT_LT(VertexSet::Of(64, {0}), VertexSet::Of(70, {0}));
  EXPECT_LT(VertexSet::Of(70, {0}), VertexSet::Of(70, {1}));
  std::set<VertexSet> mixed(std::begin(sets), std::end(sets));
  EXPECT_EQ(mixed.size(), std::size(sets));
}

TEST(VertexSetDeathTest, MixedCapacityOperationsAbortInEveryBuild) {
  // The capacity precondition is a checked policy, not a debug-only
  // assert: Release builds abort too.
  VertexSet a = VertexSet::Of(64, {0});
  const VertexSet b = VertexSet::Of(70, {0});
  EXPECT_DEATH(a.UnionWith(b), "capacity mismatch in UnionWith");
  EXPECT_DEATH(a.IntersectWith(b), "capacity mismatch in IntersectWith");
  EXPECT_DEATH(a.MinusWith(b), "capacity mismatch in MinusWith");
  EXPECT_DEATH((void)a.IsSubsetOf(b), "capacity mismatch in IsSubsetOf");
  EXPECT_DEATH((void)a.Intersects(b), "capacity mismatch in Intersects");
  EXPECT_DEATH(a.AssignUnionOf(a, b), "capacity mismatch in AssignUnionOf");
}

// ---------------------------------------------------------------------------
// Small-buffer (inline <-> heap) spill boundary.
//
// VertexSet's words live inline in the object up to 128 vertices (2 words)
// and spill to a heap buffer above. The tests below pin (1) where the
// boundary sits, (2) that values, hashes, and semantics are identical on
// both sides of it — including for objects moved/copied across it — and
// (3) that spilled buffers keep the alignment contract the SIMD kernels
// dispatch on.
// ---------------------------------------------------------------------------

// The capacities the differential tests sweep: both sides of each word
// boundary (63/64/65, 127/128/129) plus one deep-heap capacity whose word
// count is past the SIMD dispatch threshold.
const int kSpillCapacities[] = {63, 64, 65, 127, 128, 129, 640};

TEST(VertexSetSpillTest, InlineExactlyUpTo128Vertices) {
  for (int cap : kSpillCapacities) {
    SCOPED_TRACE(cap);
    VertexSet s(cap);
    EXPECT_EQ(s.StoredInline(), cap <= 128);
    VertexSet all = VertexSet::All(cap);
    EXPECT_EQ(all.StoredInline(), cap <= 128);
  }
  // The storage class itself pins the same constant.
  EXPECT_EQ(bitset::WordStorage::kInlineWords * 64, 128u);
}

TEST(VertexSetSpillTest, RandomizedDifferentialAgainstStdSet) {
  // Drive a VertexSet and a std::set<int> reference through the same
  // random mutation sequence at every boundary capacity; the bitset must
  // agree on membership, count, iteration order, and hash (against a
  // freshly built, never-mutated twin — catching stale hash caches).
  std::mt19937 rng(20260808);
  for (int cap : kSpillCapacities) {
    SCOPED_TRACE(cap);
    VertexSet s(cap);
    std::set<int> ref;
    std::uniform_int_distribution<int> pick_v(0, cap - 1);
    std::uniform_int_distribution<int> pick_op(0, 5);
    for (int step = 0; step < 400; ++step) {
      const int v = pick_v(rng);
      switch (pick_op(rng)) {
        case 0:
        case 1:
          s.Insert(v);
          ref.insert(v);
          break;
        case 2:
          s.Erase(v);
          ref.erase(v);
          break;
        case 3: {  // copy round-trip (possibly across the boundary)
          VertexSet copy = s;
          s = copy;
          break;
        }
        case 4: {  // move round-trip
          VertexSet moved = std::move(s);
          s = std::move(moved);
          break;
        }
        case 5: {  // union with a singleton, exercising the kernel path
          s.UnionWith(VertexSet::Single(cap, v));
          ref.insert(v);
          break;
        }
      }
      ASSERT_EQ(s.Count(), static_cast<int>(ref.size()));
    }
    EXPECT_EQ(s.ToVector(), std::vector<int>(ref.begin(), ref.end()));
    EXPECT_EQ(s, VertexSet::FromVector(cap, s.ToVector()));
    EXPECT_EQ(s.Hash(), VertexSet::FromVector(cap, s.ToVector()).Hash());
  }
}

TEST(VertexSetSpillTest, CopyAndMoveAcrossTheBoundary) {
  // A heap set assigned into an inline-storage object and vice versa.
  VertexSet small = VertexSet::Of(100, {0, 64, 99});
  VertexSet big = VertexSet::Of(300, {0, 64, 150, 299});
  ASSERT_TRUE(small.StoredInline());
  ASSERT_FALSE(big.StoredInline());

  VertexSet t = small;  // starts inline
  t = big;              // copy-assign forces a spill
  EXPECT_FALSE(t.StoredInline());
  EXPECT_EQ(t, big);
  t = small;  // shrinking keeps the (now heap) buffer, vector-style
  EXPECT_EQ(t, small);
  EXPECT_EQ(t.Hash(), small.Hash());

  VertexSet m = std::move(t);  // steals the heap buffer
  EXPECT_EQ(m, small);

  VertexSet m2 = std::move(big);  // move across: m2 owns the heap buffer
  EXPECT_FALSE(m2.StoredInline());
  EXPECT_EQ(m2, VertexSet::Of(300, {0, 64, 150, 299}));

  VertexSet inline_moved = std::move(small);  // inline move copies words
  EXPECT_TRUE(inline_moved.StoredInline());
  EXPECT_EQ(inline_moved, VertexSet::Of(100, {0, 64, 99}));
}

TEST(VertexSetSpillTest, SelfAssignmentIsSafeOnBothSides) {
  for (int cap : {100, 300}) {
    SCOPED_TRACE(cap);
    VertexSet s = VertexSet::Of(cap, {1, 2, 3, 64});
    const VertexSet expect = s;
    VertexSet& alias = s;
    s = alias;
    EXPECT_EQ(s, expect);
    s = std::move(alias);
    EXPECT_EQ(s, expect);
  }
}

TEST(VertexSetSpillTest, HashCacheSurvivesTheSpill) {
  // Reset() onto a wider universe reallocates the words (inline -> heap);
  // the incremental hash must stay in sync with a from-scratch build
  // through every mix of cached and recomputed states.
  VertexSet s(64);
  s.Insert(5);
  (void)s.Hash();  // warm the cache while inline
  s.Reset(640);    // spill; Reset must leave the empty-set hash
  EXPECT_EQ(s.Hash(), VertexSet(640).Hash());
  s.Insert(5);
  s.Insert(639);
  EXPECT_EQ(s.Hash(), VertexSet::Of(640, {5, 639}).Hash());
  s.Erase(639);
  EXPECT_EQ(s.Hash(), VertexSet::Of(640, {5}).Hash());
  // Word-parallel mutation after the spill invalidates and recomputes.
  s.UnionWith(VertexSet::Of(640, {200, 400}));
  EXPECT_EQ(s.Hash(), VertexSet::Of(640, {5, 200, 400}).Hash());
}

TEST(VertexSetSpillTest, SpilledBuffersKeepTheSimdAlignmentContract) {
  // The alignment-from-threshold policy must hold for heap spills: every
  // buffer of at least kSimdMinWords words starts on a 64-byte boundary
  // (the AVX2 kernels dispatch on exactly these), including buffers that
  // traveled through copies and moves.
  for (int cap : {256, 320, 640, 1024}) {
    SCOPED_TRACE(cap);
    VertexSet s = VertexSet::All(cap);
    ASSERT_GE(s.word_count(), bitset::kSimdMinWords);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(s.word_data()) % 64, 0u);
    VertexSet copy = s;
    EXPECT_EQ(reinterpret_cast<uintptr_t>(copy.word_data()) % 64, 0u);
    VertexSet moved = std::move(copy);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(moved.word_data()) % 64, 0u);
  }
}

TEST(VertexSetSpillDeathTest, MixedCapacityAcrossTheBoundaryStillAborts) {
  // The capacity guard must not care which storage class each side uses.
  VertexSet inline_side = VertexSet::Of(64, {0});
  const VertexSet heap_side = VertexSet::Of(640, {0});
  EXPECT_DEATH(inline_side.UnionWith(heap_side),
               "capacity mismatch in UnionWith");
  EXPECT_DEATH((void)heap_side.IsSubsetOf(inline_side),
               "capacity mismatch in IsSubsetOf");
}

TEST(VertexSetTest, ForEachWhileStopsEarly) {
  VertexSet s = VertexSet::Of(200, {0, 7, 64, 128, 199});
  std::vector<int> seen;
  EXPECT_FALSE(s.ForEachWhile([&](int v) {
    seen.push_back(v);
    return v < 64;
  }));
  EXPECT_EQ(seen, (std::vector<int>{0, 7, 64}));
  EXPECT_TRUE(s.ForEachWhile([](int) { return true; }));
}

}  // namespace
}  // namespace mintri
