#include "chordal/mcs_m.h"

#include <gtest/gtest.h>

#include "chordal/minimality.h"
#include "enumeration/ckk.h"
#include "test_util.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace mintri {
namespace {

TEST(McsMTest, ChordalInputUnchanged) {
  Graph g = workloads::Path(6);
  EXPECT_EQ(McsM(g), g);
  Graph k = workloads::Complete(5);
  EXPECT_EQ(McsM(k), k);
}

TEST(McsMTest, CycleMinimallyTriangulated) {
  Graph g = workloads::Cycle(7);
  Graph h = McsM(g);
  EXPECT_TRUE(IsMinimalTriangulation(g, h));
  EXPECT_EQ(h.NumEdges() - g.NumEdges(), 4);  // n - 3 chords
}

class McsMPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(McsMPropertyTest, ProducesMinimalTriangulations) {
  auto [n, seed] = GetParam();
  double p = 0.15 + 0.07 * (seed % 8);
  Graph g = workloads::ConnectedErdosRenyi(n, p, 70000 + seed);
  EXPECT_TRUE(IsMinimalTriangulation(g, McsM(g)))
      << "n=" << n << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, McsMPropertyTest,
    ::testing::Combine(::testing::Values(6, 8, 10, 12),
                       ::testing::Range(0, 8)));

TEST(McsMTest, GridAndNamedGraphs) {
  for (const Graph& g : {workloads::Grid(3, 4), workloads::Petersen(),
                         workloads::Mycielski(4),
                         testutil::PaperExampleGraph()}) {
    EXPECT_TRUE(IsMinimalTriangulation(g, McsM(g)));
  }
}

TEST(McsMTest, CkkWithMcsMBlackBoxIsStillComplete) {
  // The CKK baseline parameterized by MCS-M instead of LB-Triang must
  // enumerate the same complete set.
  for (int seed = 0; seed < 6; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(7, 0.3, 71000 + seed);
    CkkEnumerator e(g, nullptr, [](const Graph& input) { return McsM(input); });
    std::set<testutil::FillSet> produced;
    while (auto t = e.Next()) {
      EXPECT_TRUE(IsMinimalTriangulation(g, t->filled));
      EXPECT_TRUE(produced.insert(t->FillEdgesSorted(g)).second);
    }
    EXPECT_EQ(produced, testutil::BruteForceMinimalTriangulationFills(g))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace mintri
