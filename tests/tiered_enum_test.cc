#include "enumeration/tiered_enum.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "chordal/chordality.h"
#include "chordal/lb_triang.h"
#include "chordal/minimality.h"
#include "cost/standard_costs.h"
#include "test_util.h"
#include "triang/triangulation.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace mintri {
namespace {

using testutil::FillSet;
using testutil::MakeGraph;

constexpr int kExhaustCap = 20000;

// Full stream of one enumerator as (cost sequence, cost -> fill-set class).
struct Stream {
  std::vector<CostValue> costs;
  std::map<CostValue, std::set<FillSet>> classes;
};

Stream Drain(const Graph& g, TieredEnumerator* e) {
  Stream s;
  for (int i = 0; i < kExhaustCap; ++i) {
    auto t = e->Next();
    if (!t.has_value()) return s;
    s.costs.push_back(t->triangulation.cost);
    s.classes[t->triangulation.cost].insert(
        testutil::FillKey(g, t->triangulation.filled));
  }
  ADD_FAILURE() << "stream did not terminate within " << kExhaustCap;
  return s;
}

Stream DrainDirect(const Graph& g, RankedForestEnumerator* e) {
  Stream s;
  for (int i = 0; i < kExhaustCap; ++i) {
    auto t = e->Next();
    if (!t.has_value()) return s;
    s.costs.push_back(t->cost);
    s.classes[t->cost].insert(testutil::FillKey(g, t->filled));
  }
  ADD_FAILURE() << "stream did not terminate within " << kExhaustCap;
  return s;
}

TierOptions AutoOptions(bool decomposable) {
  TierOptions t;
  t.mode = TierOptions::Mode::kAuto;
  t.decomposable_cost = decomposable;
  return t;
}

std::vector<Graph> DifferentialCorpus() {
  std::vector<Graph> corpus;
  corpus.push_back(testutil::PaperExampleGraph());
  corpus.push_back(workloads::Cycle(4));
  corpus.push_back(workloads::Cycle(6));
  corpus.push_back(MakeGraph(4, {{1, 2}}));  // isolated vertices
  // Bowtie: a cut vertex, so Tier 0 genuinely splits.
  corpus.push_back(
      MakeGraph(5, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}}));
  // C4s glued on a saturated edge: a size-2 clique separator.
  corpus.push_back(MakeGraph(
      6, {{0, 1}, {0, 2}, {2, 3}, {3, 1}, {0, 4}, {4, 5}, {5, 1}}));
  for (uint64_t seed = 0; seed < 6; ++seed) {
    corpus.push_back(workloads::ConnectedErdosRenyi(9, 0.3, seed));
  }
  for (uint64_t seed = 0; seed < 3; ++seed) {
    corpus.push_back(workloads::ErdosRenyi(10, 0.25, seed));  // may split
  }
  return corpus;
}

// The tentpole differential: whenever Tier 1 suffices, the tiered stream
// must equal the direct exact stream — same κ sequence and, within every
// κ class, the same set of triangulations (tie order inside a class may
// legally differ once Tier 0 rewrites the units).
TEST(TieredEnumTest, DifferentialWidthEqualsDirect) {
  for (const Graph& g : DifferentialCorpus()) {
    WidthCost width;
    RankedForestEnumerator direct(g, width, CostComposition::kMax);
    ASSERT_TRUE(direct.init_ok());
    Stream expected = DrainDirect(g, &direct);

    TieredEnumerator tiered(g, width, CostComposition::kMax, {}, {},
                            AutoOptions(true));
    EXPECT_NE(tiered.tier(), SolveTier::kHeuristic);
    Stream got = Drain(g, &tiered);
    EXPECT_EQ(got.costs, expected.costs) << "n=" << g.NumVertices();
    EXPECT_EQ(got.classes, expected.classes) << "n=" << g.NumVertices();
  }
}

TEST(TieredEnumTest, DifferentialFillSumEqualsDirect) {
  for (const Graph& g : DifferentialCorpus()) {
    FillInCost fill;
    RankedForestEnumerator direct(g, fill, CostComposition::kSum);
    ASSERT_TRUE(direct.init_ok());
    Stream expected = DrainDirect(g, &direct);

    TieredEnumerator tiered(g, fill, CostComposition::kSum, {}, {},
                            AutoOptions(true));
    Stream got = Drain(g, &tiered);
    EXPECT_EQ(got.costs, expected.costs) << "n=" << g.NumVertices();
    EXPECT_EQ(got.classes, expected.classes) << "n=" << g.NumVertices();
  }
}

// A non-decomposable cost keeps the units at whole connected components, so
// the stream must be byte-for-byte the forest stream (tie order included).
TEST(TieredEnumTest, NonDecomposableCostReplaysForestExactly) {
  Graph g = testutil::PaperExampleGraph();
  WidthCost width;
  RankedForestEnumerator direct(g, width, CostComposition::kMax);
  TieredEnumerator tiered(g, width, CostComposition::kMax, {}, {},
                          AutoOptions(false));
  EXPECT_EQ(tiered.tier(), SolveTier::kExact);
  while (true) {
    auto a = direct.Next();
    auto b = tiered.Next();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    EXPECT_EQ(a->cost, b->triangulation.cost);
    EXPECT_EQ(testutil::FillKey(g, a->filled),
              testutil::FillKey(g, b->triangulation.filled));
  }
}

TEST(TieredEnumTest, FamilyCorpusPrefixDifferential) {
  // Medium graphs (n <= 40): compare the first 50 κ values of the tiered
  // stream against the direct stream at several thread counts.
  std::vector<Graph> graphs = {workloads::Grid(4, 5), workloads::Queen(4),
                               workloads::ConnectedErdosRenyi(24, 0.12, 5)};
  for (const Graph& g : graphs) {
    WidthCost width;
    RankedForestEnumerator direct(g, width, CostComposition::kMax);
    ASSERT_TRUE(direct.init_ok());
    std::vector<CostValue> expected;
    for (int i = 0; i < 50; ++i) {
      auto t = direct.Next();
      if (!t.has_value()) break;
      expected.push_back(t->cost);
    }
    for (int threads : {1, 2, 4}) {
      ContextOptions options;
      options.num_threads = threads;
      TieredEnumerator tiered(g, width, CostComposition::kMax, options, {},
                              AutoOptions(true));
      EXPECT_NE(tiered.tier(), SolveTier::kHeuristic);
      std::vector<CostValue> got;
      for (size_t i = 0; i < expected.size(); ++i) {
        auto t = tiered.Next();
        ASSERT_TRUE(t.has_value()) << "threads=" << threads;
        got.push_back(t->triangulation.cost);
      }
      EXPECT_EQ(got, expected) << "n=" << g.NumVertices()
                               << " threads=" << threads;
    }
  }
}

TEST(TieredEnumTest, StreamIdenticalAtEveryThreadCount) {
  Graph g = workloads::ConnectedErdosRenyi(18, 0.2, 9);
  WidthCost width;
  std::vector<Stream> streams;
  for (int threads : {1, 2, 4}) {
    ContextOptions options;
    options.num_threads = threads;
    TieredEnumerator e(g, width, CostComposition::kMax, options, {},
                       AutoOptions(true));
    streams.push_back(Drain(g, &e));
  }
  EXPECT_EQ(streams[0].costs, streams[1].costs);
  EXPECT_EQ(streams[0].costs, streams[2].costs);
  EXPECT_EQ(streams[0].classes, streams[1].classes);
  EXPECT_EQ(streams[0].classes, streams[2].classes);
}

TEST(TieredEnumTest, TierLabels) {
  WidthCost width;
  {
    // A simplicial vertex exists: Tier 0 rewrites, label atom-exact.
    Graph g = testutil::PaperExampleGraph();
    TieredEnumerator e(g, width, CostComposition::kMax, {}, {},
                       AutoOptions(true));
    EXPECT_EQ(e.tier(), SolveTier::kAtomExact);
    EXPECT_GE(e.preprocess_info().vertices_removed, 1);
  }
  {
    // C4 neither reduces nor splits: the stream is literally exact.
    Graph g = workloads::Cycle(4);
    TieredEnumerator e(g, width, CostComposition::kMax, {}, {},
                       AutoOptions(true));
    EXPECT_EQ(e.tier(), SolveTier::kExact);
  }
  {
    TierOptions t = AutoOptions(true);
    t.mode = TierOptions::Mode::kHeuristic;
    Graph g = workloads::Cycle(6);
    TieredEnumerator e(g, width, CostComposition::kMax, {}, {}, t);
    EXPECT_EQ(e.tier(), SolveTier::kHeuristic);
  }
}

TEST(TieredEnumTest, HeuristicStreamIsValidAndSeeded) {
  // Tier-2 results are genuine minimal triangulations with truthful costs,
  // emitted in non-decreasing κ, and the first is at least as cheap as the
  // LB-Triang seed that anchors the restricted family.
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(14, 0.25, seed);
    WidthCost width;
    TierOptions t = AutoOptions(true);
    t.mode = TierOptions::Mode::kHeuristic;
    TieredEnumerator e(g, width, CostComposition::kMax, {}, {}, t);
    EXPECT_EQ(e.tier(), SolveTier::kHeuristic);
    Graph seed_triang = LbTriangMinDegree(g);
    CostValue last = -1;
    int count = 0;
    bool first = true;
    while (auto r = e.Next()) {
      const Triangulation& tr = r->triangulation;
      EXPECT_TRUE(IsChordal(tr.filled)) << "seed=" << seed;
      EXPECT_TRUE(IsMinimalTriangulation(g, tr.filled)) << "seed=" << seed;
      EXPECT_EQ(tr.cost, static_cast<CostValue>(tr.Width()))
          << "seed=" << seed;
      EXPECT_GE(tr.cost, last) << "seed=" << seed;
      if (first) {
        // First result is at most the seed triangulation's width.
        int lb_width = 0;
        for (const VertexSet& bag :
             TriangulationFromChordal(g, Graph(seed_triang)).bags) {
          lb_width = std::max(lb_width, bag.Count() - 1);
        }
        EXPECT_LE(tr.cost, static_cast<CostValue>(lb_width))
            << "seed=" << seed;
        first = false;
      }
      last = tr.cost;
      if (++count >= 200) break;
    }
    EXPECT_GE(count, 1) << "seed=" << seed;
  }
}

TEST(TieredEnumTest, ExhaustedBudgetFallsBackWithTruthfulTally) {
  Graph g = workloads::ConnectedErdosRenyi(16, 0.3, 2);
  WidthCost width;
  TierOptions t = AutoOptions(true);
  t.exact_budget_seconds = 0;  // the shared exact budget is already spent
  TieredEnumerator e(g, width, CostComposition::kMax, {}, {}, t);
  EXPECT_EQ(e.tier(), SolveTier::kHeuristic);
  // Per-atom tally: every skipped exact attempt counts as an ms-terminated
  // build, and each fallback adds one completed family build on top.
  EXPECT_GE(e.init_info().num_ms_terminated, 1u);
  EXPECT_GT(e.init_info().num_builds, e.init_info().num_ms_terminated +
                                          e.init_info().num_pmc_terminated);
  auto r = e.Next();
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(IsMinimalTriangulation(g, r->triangulation.filled));
  EXPECT_GT(e.tier2_seconds(), 0.0);
}

TEST(TieredEnumTest, ExactModeDelegatesByteForByte) {
  Graph g = testutil::PaperExampleGraph();
  WidthCost width;
  TierOptions t;
  t.mode = TierOptions::Mode::kExact;
  RankedForestEnumerator direct(g, width, CostComposition::kMax);
  TieredEnumerator tiered(g, width, CostComposition::kMax, {}, {}, t);
  EXPECT_EQ(tiered.tier(), SolveTier::kExact);
  while (true) {
    auto a = direct.Next();
    auto b = tiered.Next();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    EXPECT_EQ(a->cost, b->triangulation.cost);
    EXPECT_EQ(a->bags, b->triangulation.bags);
    EXPECT_EQ(a->parent, b->triangulation.parent);
    EXPECT_EQ(a->separators, b->triangulation.separators);
  }
}

TEST(TieredEnumTest, ChordalInputEmitsExactlyOneResult) {
  // Fully reduced by Tier 0: the unique minimal triangulation of a chordal
  // graph is the graph itself.
  Graph g = workloads::RandomTree(20, 4);
  FillInCost fill;
  TieredEnumerator e(g, fill, CostComposition::kSum, {}, {},
                     AutoOptions(true));
  EXPECT_EQ(e.tier(), SolveTier::kAtomExact);
  EXPECT_EQ(e.preprocess_info().vertices_removed, 20);
  auto r = e.Next();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->triangulation.cost, 0);  // no fill
  EXPECT_EQ(r->triangulation.filled.NumEdges(), g.NumEdges());
  EXPECT_FALSE(e.Next().has_value());
}

}  // namespace
}  // namespace mintri
