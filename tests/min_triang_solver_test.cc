// Differential layer for the incremental MinTriangSolver: every repaired
// solve must be byte-identical (cost, bags, clique-tree structure,
// separators, filled graph) to a from-scratch MinTriang over ConstrainedCost
// with the same [I, X] — across randomized constraint walks on the family
// corpus, bounded-width contexts, and the repeat/no-op delta edge cases.

#include "triang/min_triang_solver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "cost/constrained_cost.h"
#include "cost/standard_costs.h"
#include "test_util.h"
#include "triang/min_triang.h"
#include "util/rng.h"
#include "workloads/families.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace mintri {
namespace {

struct CorpusGraph {
  std::string name;
  TriangulationContext ctx;
};

// Family-corpus contexts with n <= 40 that initialize quickly (at most two
// graphs per family, so the walk stays CI-sized).
const std::vector<CorpusGraph>& Corpus() {
  static const std::vector<CorpusGraph>* corpus = [] {
    auto* out = new std::vector<CorpusGraph>;
    ContextOptions options;
    options.separator_limits.max_results = 20000;
    options.separator_limits.time_limit_seconds = 3.0;
    options.pmc_limits.time_limit_seconds = 3.0;
    for (const workloads::DatasetFamily& family : workloads::AllFamilies()) {
      int used = 0;
      for (const workloads::DatasetGraph& dg : family.graphs) {
        if (used >= 2) break;
        if (dg.graph.NumVertices() < 4 || dg.graph.NumVertices() > 40 ||
            !dg.graph.IsConnected()) {
          continue;
        }
        auto ctx = TriangulationContext::Build(dg.graph, options);
        if (!ctx.has_value()) continue;
        ++used;
        out->push_back({family.name + "/" + dg.name, std::move(*ctx)});
      }
    }
    return out;
  }();
  return *corpus;
}

void ExpectIdentical(const std::optional<Triangulation>& incremental,
                     const std::optional<Triangulation>& full,
                     const std::string& where) {
  ASSERT_EQ(incremental.has_value(), full.has_value()) << where;
  if (!incremental.has_value()) return;
  EXPECT_EQ(incremental->cost, full->cost) << where;
  EXPECT_EQ(incremental->bags, full->bags) << where;
  EXPECT_EQ(incremental->parent, full->parent) << where;
  EXPECT_EQ(incremental->separators, full->separators) << where;
  EXPECT_TRUE(incremental->filled == full->filled) << where;
}

// One walk step: nudges [I, X] by a few separators (the Lawler–Murty access
// pattern, plus removals and larger jumps the enumerator never makes).
void MutateConstraints(Rng& rng, int num_seps, std::vector<int>* include,
                       std::vector<int>* exclude) {
  auto contains = [](const std::vector<int>& v, int id) {
    return std::binary_search(v.begin(), v.end(), id);
  };
  auto insert = [](std::vector<int>* v, int id) {
    v->insert(std::upper_bound(v->begin(), v->end(), id), id);
  };
  const int ops = rng.NextInt(1, 3);
  for (int op = 0; op < ops && num_seps > 0; ++op) {
    const int id = rng.NextInt(0, num_seps - 1);
    switch (rng.NextInt(0, 2)) {
      case 0:
        if (!contains(*include, id) && !contains(*exclude, id)) {
          insert(include, id);
        }
        break;
      case 1:
        if (!contains(*include, id) && !contains(*exclude, id)) {
          insert(exclude, id);
        }
        break;
      default: {
        std::vector<int>& v = rng.NextBool(0.5) ? *include : *exclude;
        if (!v.empty()) {
          v.erase(v.begin() + rng.NextInt(0, static_cast<int>(v.size()) - 1));
        }
        break;
      }
    }
  }
}

// Random walk over constraint sets: solves incrementally and cross-checks
// against the full DP at every step.
void DifferentialWalk(const TriangulationContext& ctx, const BagCost& cost,
                      const std::string& name, uint64_t seed, int steps) {
  MinTriangSolver solver(ctx, cost);
  Rng rng(seed);
  const int num_seps = static_cast<int>(ctx.minimal_separators().size());
  std::vector<int> include, exclude;
  for (int step = 0; step < steps; ++step) {
    MutateConstraints(rng, num_seps, &include, &exclude);
    std::vector<VertexSet> include_sets, exclude_sets;
    for (int id : include) {
      include_sets.push_back(ctx.minimal_separators()[id]);
    }
    for (int id : exclude) {
      exclude_sets.push_back(ctx.minimal_separators()[id]);
    }
    ConstrainedCost constrained(cost, std::move(include_sets),
                                std::move(exclude_sets));
    ExpectIdentical(solver.Solve(include, exclude), MinTriang(ctx, constrained),
                    name + " step " + std::to_string(step));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(MinTriangSolverTest, DifferentialOnFamilyCorpus) {
  ASSERT_FALSE(Corpus().empty());
  WidthCost width;
  FillInCost fill;
  for (const CorpusGraph& cg : Corpus()) {
    DifferentialWalk(cg.ctx, width, cg.name + "/width", 0x5eed0 + 1, 10);
    DifferentialWalk(cg.ctx, fill, cg.name + "/fill", 0x5eed0 + 2, 10);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(MinTriangSolverTest, DifferentialOnBoundedWidthContexts) {
  // Bounded contexts have unusable PMCs and infeasible blocks — the repair
  // must keep ∞ values and missing candidates exactly in sync with the
  // full pass.
  WidthCost width;
  for (int seed = 0; seed < 6; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(12, 0.25, 42000 + seed);
    for (int bound = 2; bound <= 4; ++bound) {
      ContextOptions options;
      options.width_bound = bound;
      auto ctx = TriangulationContext::Build(g, options);
      ASSERT_TRUE(ctx.has_value());
      if (ctx->minimal_separators().empty()) continue;
      DifferentialWalk(*ctx, width,
                       "bounded seed " + std::to_string(seed) + " b=" +
                           std::to_string(bound),
                       0xb0b0 + seed, 8);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(MinTriangSolverTest, LawlerMurtySiblingDeltas) {
  // The exact access pattern RankedTriang issues: partitions
  // [I ∪ {S_1..S_{i-1}}, X ∪ {S_i}] over the separators of the optimum.
  Graph g = workloads::Grid(3, 3);
  auto ctx = TriangulationContext::Build(g);
  ASSERT_TRUE(ctx.has_value());
  FillInCost fill;
  MinTriangSolver solver(*ctx, fill);
  auto first = solver.Solve({}, {});
  ASSERT_TRUE(first.has_value());
  std::vector<int> h_seps;
  for (const VertexSet& s : first->separators) {
    h_seps.push_back(ctx->SeparatorId(s));
  }
  std::sort(h_seps.begin(), h_seps.end());
  std::vector<int> include, exclude;
  for (size_t i = 0; i < h_seps.size(); ++i) {
    exclude.assign({h_seps[i]});
    std::vector<VertexSet> include_sets, exclude_sets;
    for (int id : include) {
      include_sets.push_back(ctx->minimal_separators()[id]);
    }
    exclude_sets.push_back(ctx->minimal_separators()[h_seps[i]]);
    ConstrainedCost constrained(fill, std::move(include_sets),
                                std::move(exclude_sets));
    ExpectIdentical(solver.Solve(include, exclude),
                    MinTriang(*ctx, constrained),
                    "partition " + std::to_string(i));
    include.insert(std::upper_bound(include.begin(), include.end(), h_seps[i]),
                   h_seps[i]);
  }
}

TEST(MinTriangSolverTest, NoOpDeltaEvaluatesNothing) {
  Graph g = workloads::Grid(4, 4);
  auto ctx = TriangulationContext::Build(g);
  ASSERT_TRUE(ctx.has_value());
  WidthCost width;
  MinTriangSolver solver(*ctx, width);
  auto a = solver.Solve({}, {});
  ASSERT_TRUE(a.has_value());
  const long long after_full = solver.num_candidate_evals();
  EXPECT_EQ(after_full, static_cast<long long>(solver.num_candidates_total()));
  // Same constraints again: zero candidate work, same answer.
  auto b = solver.Solve({}, {});
  EXPECT_EQ(solver.num_candidate_evals(), after_full);
  ExpectIdentical(a, b, "repeat solve");
}

TEST(MinTriangSolverTest, SiblingExpansionIsCheaperThanOneFullPass) {
  // The workload the solver exists for: after the full pass, the entire
  // k-partition Lawler–Murty expansion over the optimum's separators must
  // cost less base-Combine work than a single additional full pass (the
  // pre-refactor enumerator paid k full passes here).
  Graph g = workloads::Grid(4, 4);
  auto ctx = TriangulationContext::Build(g);
  ASSERT_TRUE(ctx.has_value());
  WidthCost width;
  MinTriangSolver solver(*ctx, width);
  auto first = solver.Solve({}, {});
  ASSERT_TRUE(first.has_value());
  const long long full_pass = solver.num_combine_calls();
  EXPECT_EQ(full_pass, static_cast<long long>(solver.num_candidates_total()));

  std::vector<int> h_seps;
  for (const VertexSet& s : first->separators) {
    h_seps.push_back(ctx->SeparatorId(s));
  }
  std::sort(h_seps.begin(), h_seps.end());
  ASSERT_GT(h_seps.size(), 3u);
  std::vector<int> include, exclude;
  for (size_t i = 0; i < h_seps.size(); ++i) {
    exclude.assign({h_seps[i]});
    solver.Solve(include, exclude);
    include.insert(std::upper_bound(include.begin(), include.end(), h_seps[i]),
                   h_seps[i]);
  }
  const long long expansion = solver.num_combine_calls() - full_pass;
  EXPECT_LT(expansion, full_pass)
      << h_seps.size() << " sibling repairs cost " << expansion
      << " Combine calls vs " << full_pass << " for one full pass";
}

// Lockstep walk of the two repair engines: at every delta step the
// segment-tree-indexed solver and the list-scan baseline must return
// byte-identical triangulations, and the index must never evaluate more
// candidates than the scan (it may only skip work, never add it).
void LockstepWalk(const TriangulationContext& ctx, const BagCost& cost,
                  const std::string& name, uint64_t seed, int steps) {
  SolverOptions scan_options;
  scan_options.use_candidate_index = false;
  MinTriangSolver indexed(ctx, cost);
  MinTriangSolver scan(ctx, cost, scan_options);
  Rng rng(seed);
  const int num_seps = static_cast<int>(ctx.minimal_separators().size());
  std::vector<int> include, exclude;
  for (int step = 0; step < steps; ++step) {
    MutateConstraints(rng, num_seps, &include, &exclude);
    const std::string where = name + " step " + std::to_string(step);
    ExpectIdentical(indexed.Solve(include, exclude),
                    scan.Solve(include, exclude), where);
    if (::testing::Test::HasFatalFailure()) return;
    EXPECT_LE(indexed.num_candidate_evals(), scan.num_candidate_evals())
        << where;
    EXPECT_EQ(scan.num_index_updates(), 0) << where;
    EXPECT_EQ(scan.num_range_queries(), 0) << where;
  }
  EXPECT_GT(indexed.num_range_queries(), 0) << name;
}

TEST(MinTriangSolverTest, IndexedAndScanPathsAreLockstepIdentical) {
  ASSERT_FALSE(Corpus().empty());
  WidthCost width;
  FillInCost fill;
  for (const CorpusGraph& cg : Corpus()) {
    LockstepWalk(cg.ctx, width, cg.name + "/width", 0xcafe + 1, 12);
    LockstepWalk(cg.ctx, fill, cg.name + "/fill", 0xcafe + 2, 12);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(MinTriangSolverTest, IndexedAndScanLockstepOnBoundedWidthContexts) {
  WidthCost width;
  for (int seed = 0; seed < 4; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(12, 0.25, 43000 + seed);
    for (int bound = 2; bound <= 4; ++bound) {
      ContextOptions options;
      options.width_bound = bound;
      auto ctx = TriangulationContext::Build(g, options);
      ASSERT_TRUE(ctx.has_value());
      if (ctx->minimal_separators().empty()) continue;
      LockstepWalk(*ctx, width,
                   "bounded seed " + std::to_string(seed) + " b=" +
                       std::to_string(bound),
                   0xbead + seed, 8);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(MinTriangSolverTest, ExpiredDeadlineTruncatesAndRecovers) {
  Graph g = workloads::Grid(4, 4);
  auto ctx = TriangulationContext::Build(g);
  ASSERT_TRUE(ctx.has_value());
  WidthCost width;
  MinTriangSolver solver(*ctx, width);
  const Deadline expired(0.0);
  solver.set_deadline(&expired);
  EXPECT_FALSE(solver.Solve({}, {}).has_value());
  EXPECT_TRUE(solver.truncated());
  // Lifting the deadline must fully recover: the truncated call committed
  // no state, so the next solve is a clean full pass.
  solver.set_deadline(nullptr);
  auto recovered = solver.Solve({}, {});
  EXPECT_FALSE(solver.truncated());
  MinTriangSolver fresh(*ctx, width);
  ExpectIdentical(recovered, fresh.Solve({}, {}), "recovered vs fresh");
}

TEST(MinTriangSolverTest, TruncatedRepairDoesNotCorruptLaterSolves) {
  // Expire the deadline between incremental repairs: the interrupted delta
  // must leave the blocked counters and tables consistent, so every answer
  // after the deadline lifts still matches the from-scratch DP.
  Graph g = workloads::Grid(3, 4);
  auto ctx = TriangulationContext::Build(g);
  ASSERT_TRUE(ctx.has_value());
  ASSERT_GE(ctx->minimal_separators().size(), 2u);
  FillInCost fill;
  MinTriangSolver solver(*ctx, fill);
  ASSERT_TRUE(solver.Solve({}, {}).has_value());

  const Deadline expired(0.0);
  solver.set_deadline(&expired);
  EXPECT_FALSE(solver.Solve({0}, {}).has_value());
  EXPECT_TRUE(solver.truncated());
  solver.set_deadline(nullptr);

  auto check = [&](const std::vector<int>& include,
                   const std::vector<int>& exclude, const std::string& where) {
    std::vector<VertexSet> include_sets, exclude_sets;
    for (int id : include) {
      include_sets.push_back(ctx->minimal_separators()[id]);
    }
    for (int id : exclude) {
      exclude_sets.push_back(ctx->minimal_separators()[id]);
    }
    ConstrainedCost constrained(fill, std::move(include_sets),
                                std::move(exclude_sets));
    ExpectIdentical(solver.Solve(include, exclude),
                    MinTriang(*ctx, constrained), where);
  };
  check({0}, {}, "the interrupted delta, retried");
  EXPECT_FALSE(solver.truncated());
  check({0}, {1}, "a further incremental step");
  check({}, {}, "back to unconstrained");
}

}  // namespace
}  // namespace mintri
