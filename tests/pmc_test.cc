#include "pmc/potential_maximal_cliques.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace mintri {
namespace {

using testutil::MakeGraph;

std::vector<VertexSet> EnumeratePmcs(const Graph& g,
                                     bool exhaustive_pairs = false) {
  auto seps = ListMinimalSeparators(g).separators;
  PmcOptions options;
  options.exhaustive_pairs = exhaustive_pairs;
  PmcResult r = ListPotentialMaximalCliques(g, seps, options);
  EXPECT_EQ(r.status, EnumerationStatus::kComplete);
  return r.pmcs;
}

TEST(IsPmcTest, PaperExamplePmcs) {
  Graph g = testutil::PaperExampleGraph();
  // 0=u, 1=v, 2=v', 3=w1, 4=w2, 5=w3. Example 5.2 names {u,w1,w2,w3} and
  // {w1,u,v}; the full PMC set is the bags of T1 and T2 of Figure 1(c).
  EXPECT_TRUE(IsPmc(g, VertexSet::Of(6, {0, 3, 4, 5})));
  EXPECT_TRUE(IsPmc(g, VertexSet::Of(6, {1, 3, 4, 5})));
  EXPECT_TRUE(IsPmc(g, VertexSet::Of(6, {0, 1, 3})));
  EXPECT_TRUE(IsPmc(g, VertexSet::Of(6, {0, 1, 4})));
  EXPECT_TRUE(IsPmc(g, VertexSet::Of(6, {0, 1, 5})));
  EXPECT_TRUE(IsPmc(g, VertexSet::Of(6, {1, 2})));
  // Non-PMCs.
  EXPECT_FALSE(IsPmc(g, VertexSet::Of(6, {0, 1})));     // minimal separator
  EXPECT_FALSE(IsPmc(g, VertexSet::Of(6, {3, 4, 5})));  // minimal separator
  EXPECT_FALSE(IsPmc(g, VertexSet::Of(6, {2})));        // inside a bag
  EXPECT_FALSE(IsPmc(g, VertexSet(6)));                 // empty
}

TEST(IsPmcTest, CliqueOfCompleteGraph) {
  Graph g = workloads::Complete(4);
  EXPECT_TRUE(IsPmc(g, g.Vertices()));
  EXPECT_FALSE(IsPmc(g, VertexSet::Of(4, {0, 1})));
}

TEST(PmcEnumerationTest, PaperExampleHasSixPmcs) {
  Graph g = testutil::PaperExampleGraph();
  auto pmcs = EnumeratePmcs(g);
  EXPECT_EQ(pmcs.size(), 6u);
}

TEST(PmcEnumerationTest, ChordalGraphPmcsAreItsMaximalCliques) {
  // A chordal graph is its own unique minimal triangulation, so its PMCs
  // are exactly its maximal cliques.
  Graph g = workloads::Path(5);
  auto pmcs = EnumeratePmcs(g);
  EXPECT_EQ(pmcs.size(), 4u);
  for (const VertexSet& p : pmcs) EXPECT_EQ(p.Count(), 2);
}

TEST(PmcEnumerationTest, CycleN) {
  // C_n has n(n-3)/2 + n ... the PMCs are the triangle-candidates {i, j, k}
  // that appear in some minimal triangulation; for C4: {0,1,2},{0,2,3},
  // {0,1,3},{1,2,3} — 4 PMCs.
  auto pmcs = EnumeratePmcs(workloads::Cycle(4));
  EXPECT_EQ(pmcs.size(), 4u);
  for (const VertexSet& p : pmcs) EXPECT_EQ(p.Count(), 3);
}

// The crucial completeness check: incremental BT02 enumeration vs the
// brute-force reference on many random graphs, across the density spectrum.
class PmcVsBruteForce
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PmcVsBruteForce, IncrementalMatchesBruteForce) {
  auto [n, seed] = GetParam();
  double p = 0.15 + 0.07 * (seed % 10);
  Graph g = workloads::ConnectedErdosRenyi(n, p, 4000 + seed);
  auto fast = EnumeratePmcs(g);
  auto brute = PmcsBruteForce(g);
  EXPECT_EQ(fast, brute) << "n=" << n << " seed=" << seed << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, PmcVsBruteForce,
    ::testing::Combine(::testing::Values(5, 6, 7, 8, 9, 10),
                       ::testing::Range(0, 10)));

TEST(PmcEnumerationTest, NamedGraphsMatchBruteForce) {
  std::vector<Graph> graphs = {
      workloads::Petersen(),      workloads::Grid(3, 3),
      workloads::Cycle(7),        workloads::CompleteBipartite(3, 4),
      workloads::Hypercube(3),    workloads::Mycielski(4),
      testutil::PaperExampleGraph()};
  for (size_t i = 0; i < graphs.size(); ++i) {
    EXPECT_EQ(EnumeratePmcs(graphs[i]), PmcsBruteForce(graphs[i]))
        << "graph #" << i;
  }
}

TEST(PmcEnumerationTest, ExhaustivePairsModeAgrees) {
  for (int seed = 0; seed < 6; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(8, 0.3, 5000 + seed);
    EXPECT_EQ(EnumeratePmcs(g, /*exhaustive_pairs=*/false),
              EnumeratePmcs(g, /*exhaustive_pairs=*/true))
        << "seed " << seed;
  }
}

TEST(PmcEnumerationTest, BoundedSizeMatchesFilteredBruteForce) {
  for (int seed = 0; seed < 8; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(8, 0.35, 6000 + seed);
    auto seps = ListMinimalSeparators(g).separators;
    for (int bound = 2; bound <= 4; ++bound) {
      PmcOptions options;
      options.max_size = bound;
      PmcResult r = ListPotentialMaximalCliques(g, seps, options);
      ASSERT_EQ(r.status, EnumerationStatus::kComplete);
      std::vector<VertexSet> expected;
      for (const VertexSet& p : PmcsBruteForce(g)) {
        if (p.Count() <= bound) expected.push_back(p);
      }
      // Bounded enumeration must be sound (every result is a PMC of size
      // <= bound) ...
      for (const VertexSet& p : r.pmcs) {
        EXPECT_TRUE(IsPmc(g, p));
        EXPECT_LE(p.Count(), bound);
      }
      // ... and complete for the bounded regime.
      EXPECT_EQ(r.pmcs, expected) << "seed=" << seed << " bound=" << bound;
    }
  }
}

TEST(PmcEnumerationTest, EveryMinimalSeparatorIsCoveredBySomePmc) {
  // Structural invariant: each minimal separator S is a proper subset of at
  // least one PMC (it is saturated in some minimal triangulation, and lies
  // inside a maximal clique there).
  for (int seed = 0; seed < 8; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(9, 0.3, 7000 + seed);
    auto seps = ListMinimalSeparators(g).separators;
    auto pmcs = EnumeratePmcs(g);
    for (const VertexSet& s : seps) {
      bool covered = false;
      for (const VertexSet& p : pmcs) {
        if (s.IsSubsetOf(p) && !(s == p)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "separator " << s.ToString();
    }
  }
}

TEST(PmcEnumerationTest, SingleVertexAndSingleEdge) {
  Graph g1(1);
  auto pmcs1 = EnumeratePmcs(g1);
  ASSERT_EQ(pmcs1.size(), 1u);
  EXPECT_EQ(pmcs1[0], VertexSet::Single(1, 0));

  Graph g2 = MakeGraph(2, {{0, 1}});
  auto pmcs2 = EnumeratePmcs(g2);
  ASSERT_EQ(pmcs2.size(), 1u);
  EXPECT_EQ(pmcs2[0], VertexSet::All(2));
}

}  // namespace
}  // namespace mintri
