#include "chordal/chordality.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace mintri {
namespace {

using testutil::MakeGraph;

Graph Cycle3WithPendant() {
  return MakeGraph(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
}

TEST(ChordalityTest, SmallChordalGraphs) {
  EXPECT_TRUE(IsChordal(Graph(0)));
  EXPECT_TRUE(IsChordal(Graph(1)));
  EXPECT_TRUE(IsChordal(workloads::Path(6)));
  EXPECT_TRUE(IsChordal(workloads::Complete(5)));
  EXPECT_TRUE(IsChordal(workloads::Star(5)));
  EXPECT_TRUE(IsChordal(Cycle3WithPendant()));
}

TEST(ChordalityTest, CyclesAreNotChordal) {
  for (int n = 4; n <= 9; ++n) {
    EXPECT_FALSE(IsChordal(workloads::Cycle(n))) << "C" << n;
  }
  EXPECT_TRUE(IsChordal(workloads::Cycle(3)));
}

TEST(ChordalityTest, PaperExampleIsNotChordal) {
  // The paper notes G has the chordless cycle u-w1-v-w2-u.
  EXPECT_FALSE(IsChordal(testutil::PaperExampleGraph()));
}

TEST(ChordalityTest, PaperTriangulationsAreChordal) {
  Graph g = testutil::PaperExampleGraph();
  Graph h1 = g;  // saturate {w1,w2,w3} = {3,4,5}
  h1.SaturateSet(VertexSet::Of(6, {3, 4, 5}));
  EXPECT_TRUE(IsChordal(h1));
  Graph h2 = g;  // saturate {u,v} = {0,1}
  h2.SaturateSet(VertexSet::Of(6, {0, 1}));
  EXPECT_TRUE(IsChordal(h2));
}

TEST(ChordalityTest, GridsAreNotChordal) {
  EXPECT_FALSE(IsChordal(workloads::Grid(3, 3)));
  EXPECT_FALSE(IsChordal(workloads::Grid(2, 2)));  // C4
}

TEST(ChordalityTest, PeoIsValidatedAndRejected) {
  // K4 minus an edge (a "diamond"): 0-1-2-3 with chord 1-3... build directly.
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}});
  EXPECT_TRUE(IsChordal(g));
  // 1 and 3 are the "ears": eliminating 0 or 2 first is perfect.
  EXPECT_TRUE(IsPerfectEliminationOrdering(g, {0, 2, 1, 3}));
  // Eliminating 1 first leaves the chordless demand {0,2,3}... 0's later
  // neighbors {2?no}. Construct an invalid order: eliminate 0 last fails?
  // For C4 (no chord), no PEO exists at all:
  Graph c4 = workloads::Cycle(4);
  EXPECT_FALSE(IsPerfectEliminationOrdering(c4, {0, 1, 2, 3}));
  EXPECT_FALSE(IsPerfectEliminationOrdering(c4, {0, 2, 1, 3}));
}

TEST(ChordalityTest, McsVisitsAllVertices) {
  Graph g = workloads::Grid(3, 4);
  std::vector<int> order = MaximumCardinalitySearch(g);
  EXPECT_EQ(order.size(), 12u);
  std::vector<bool> seen(12, false);
  for (int v : order) {
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

// Chordality is monotone under saturating a minimal triangulation: random
// graphs become chordal after saturating all bags of one of their
// triangulations (cross-checked further in lb_triang_test).
class ChordalityRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(ChordalityRandomTest, PeoExistsIffChordal) {
  // For random graphs: if IsChordal says true, the MCS order must validate;
  // if false, spot-check a handful of orders also fail (necessary condition).
  Graph g = workloads::ErdosRenyi(8, 0.4, GetParam());
  std::vector<int> order = MaximumCardinalitySearch(g);
  std::reverse(order.begin(), order.end());
  EXPECT_EQ(IsChordal(g), IsPerfectEliminationOrdering(g, order));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChordalityRandomTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace mintri
