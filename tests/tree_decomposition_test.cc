#include "enumeration/tree_decomposition.h"

#include <gtest/gtest.h>

#include "cost/standard_costs.h"
#include "test_util.h"
#include "triang/min_triang.h"
#include "workloads/named_graphs.h"

namespace mintri {
namespace {

using testutil::MakeGraph;

TreeDecomposition PaperT1() {
  // T1 of Figure 1(c): {u,w1,w2,w3} - {v,w1,w2,w3} - {v,v'}.
  TreeDecomposition td;
  td.bags = {VertexSet::Of(6, {0, 3, 4, 5}), VertexSet::Of(6, {1, 3, 4, 5}),
             VertexSet::Of(6, {1, 2})};
  td.edges = {{0, 1}, {1, 2}};
  return td;
}

TEST(TreeDecompositionTest, PaperT1IsValidAndProper) {
  Graph g = testutil::PaperExampleGraph();
  TreeDecomposition t1 = PaperT1();
  EXPECT_TRUE(t1.IsValidFor(g));
  EXPECT_TRUE(t1.IsProperFor(g));
  EXPECT_EQ(t1.Width(), 3);
}

TEST(TreeDecompositionTest, NonProperVariants) {
  Graph g = testutil::PaperExampleGraph();
  // T1' of the paper: add w1 to the bottom bag — still valid, not proper.
  TreeDecomposition t1p = PaperT1();
  t1p.bags[2].Insert(3);
  EXPECT_TRUE(t1p.IsValidFor(g));
  EXPECT_FALSE(t1p.IsProperFor(g));
  // One giant bag: valid, not proper.
  TreeDecomposition fat;
  fat.bags = {g.Vertices()};
  EXPECT_TRUE(fat.IsValidFor(g));
  EXPECT_FALSE(fat.IsProperFor(g));
}

TEST(TreeDecompositionTest, InvalidWhenEdgeUncovered) {
  Graph g = testutil::PaperExampleGraph();
  TreeDecomposition td = PaperT1();
  td.bags[2] = VertexSet::Of(6, {2});  // drop v from the bottom bag: edge
                                       // v-v' uncovered and v' disconnected
  EXPECT_FALSE(td.IsValidFor(g));
}

TEST(TreeDecompositionTest, InvalidWhenJunctionViolated) {
  // Two bags containing vertex 0 separated by a bag without it.
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}, {0, 2}});
  TreeDecomposition td;
  td.bags = {VertexSet::Of(3, {0, 1}), VertexSet::Of(3, {1, 2}),
             VertexSet::Of(3, {0, 2})};
  td.edges = {{0, 1}, {1, 2}};
  EXPECT_FALSE(td.IsValidFor(g));
}

TEST(TreeDecompositionTest, InvalidWhenCyclic) {
  Graph g = workloads::Path(3);
  TreeDecomposition td;
  td.bags = {VertexSet::Of(3, {0, 1}), VertexSet::Of(3, {1, 2}),
             VertexSet::Of(3, {1})};
  td.edges = {{0, 1}, {1, 2}, {2, 0}};
  EXPECT_FALSE(td.IsValidFor(g));
}

TEST(TreeDecompositionTest, CliqueTreeOfMinTriangIsProper) {
  Graph g = workloads::Grid(3, 3);
  auto ctx = TriangulationContext::Build(g);
  ASSERT_TRUE(ctx.has_value());
  WidthCost width;
  auto t = MinTriang(*ctx, width);
  ASSERT_TRUE(t.has_value());
  TreeDecomposition td = CliqueTreeOf(*t);
  EXPECT_TRUE(td.IsValidFor(g));
  EXPECT_TRUE(td.IsProperFor(g));
  EXPECT_EQ(td.Width(), t->Width());
}

}  // namespace
}  // namespace mintri
