#include "triang/min_triang.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "chordal/clique_tree.h"
#include "chordal/minimality.h"
#include "cost/constrained_cost.h"
#include "cost/standard_costs.h"
#include "enumeration/tree_decomposition.h"
#include "test_util.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace mintri {
namespace {

TriangulationContext BuildCtx(const Graph& g) {
  auto ctx = TriangulationContext::Build(g);
  EXPECT_TRUE(ctx.has_value());
  return std::move(*ctx);
}

// Reference: minimum width / fill over ALL minimal triangulations
// (Parra–Scheffler brute force).
std::pair<int, long long> BruteForceOptima(const Graph& g) {
  int best_width = g.NumVertices();
  long long best_fill = g.NumVertices() * g.NumVertices();
  for (const auto& fill_set : testutil::BruteForceMinimalTriangulationFills(g)) {
    Graph h = g;
    for (const auto& [u, v] : fill_set) h.AddEdge(u, v);
    int width = 0;
    for (const VertexSet& c : MaximalCliquesOfChordal(h)) {
      width = std::max(width, c.Count() - 1);
    }
    best_width = std::min(best_width, width);
    best_fill = std::min(best_fill,
                         static_cast<long long>(fill_set.size()));
  }
  return {best_width, best_fill};
}

TEST(MinTriangTest, PaperExampleWidthAndFill) {
  Graph g = testutil::PaperExampleGraph();
  TriangulationContext ctx = BuildCtx(g);

  WidthCost width;
  auto by_width = MinTriang(ctx, width);
  ASSERT_TRUE(by_width.has_value());
  // H2 (saturate {u,v}) has width 2; H1 (saturate {w1,w2,w3}) has width 3.
  EXPECT_EQ(by_width->cost, 2);
  EXPECT_EQ(by_width->Width(), 2);
  EXPECT_TRUE(IsMinimalTriangulation(g, by_width->filled));

  FillInCost fill;
  auto by_fill = MinTriang(ctx, fill);
  ASSERT_TRUE(by_fill.has_value());
  // H2 adds 1 edge (uv); H1 adds 3.
  EXPECT_EQ(by_fill->cost, 1);
  EXPECT_EQ(by_fill->FillIn(g), 1);
}

TEST(MinTriangTest, ChordalInputReturnsItself) {
  Graph g = workloads::Path(6);
  TriangulationContext ctx = BuildCtx(g);
  WidthCost width;
  auto t = MinTriang(ctx, width);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->filled, g);
  EXPECT_EQ(t->cost, 1);
  EXPECT_EQ(t->bags.size(), 5u);
}

TEST(MinTriangTest, SingleVertex) {
  Graph g(1);
  TriangulationContext ctx = BuildCtx(g);
  WidthCost width;
  auto t = MinTriang(ctx, width);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->cost, 0);
  EXPECT_EQ(t->bags.size(), 1u);
  EXPECT_TRUE(t->separators.empty());
}

class MinTriangPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MinTriangPropertyTest, OptimalAndValidOnRandomGraphs) {
  auto [n, seed] = GetParam();
  double p = 0.2 + 0.06 * (seed % 7);
  Graph g = workloads::ConnectedErdosRenyi(n, p, 10000 + seed);
  TriangulationContext ctx = BuildCtx(g);
  auto [opt_width, opt_fill] = BruteForceOptima(g);

  WidthCost width;
  auto by_width = MinTriang(ctx, width);
  ASSERT_TRUE(by_width.has_value());
  EXPECT_TRUE(IsMinimalTriangulation(g, by_width->filled));
  EXPECT_EQ(by_width->cost, opt_width);
  // The DP value equals the direct evaluation of the produced bag set.
  EXPECT_EQ(by_width->cost, width.Evaluate(g, by_width->bags));

  FillInCost fill;
  auto by_fill = MinTriang(ctx, fill);
  ASSERT_TRUE(by_fill.has_value());
  EXPECT_TRUE(IsMinimalTriangulation(g, by_fill->filled));
  EXPECT_EQ(by_fill->cost, opt_fill);
  EXPECT_EQ(by_fill->cost, fill.Evaluate(g, by_fill->bags));
  EXPECT_EQ(by_fill->cost, static_cast<CostValue>(by_fill->FillIn(g)));

  // The clique tree is a proper tree decomposition.
  EXPECT_TRUE(CliqueTreeOf(*by_width).IsProperFor(g));
  EXPECT_TRUE(CliqueTreeOf(*by_fill).IsProperFor(g));
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, MinTriangPropertyTest,
    ::testing::Combine(::testing::Values(6, 7, 8, 9),
                       ::testing::Range(0, 8)));

TEST(MinTriangTest, WidthThenFillAgreesWithSeparateOptima) {
  for (int seed = 0; seed < 6; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(8, 0.3, 11000 + seed);
    TriangulationContext ctx = BuildCtx(g);
    WidthCost width;
    WidthThenFillCost lex;
    auto by_width = MinTriang(ctx, width);
    auto by_lex = MinTriang(ctx, lex);
    ASSERT_TRUE(by_width.has_value() && by_lex.has_value());
    auto [w, f] = WidthThenFillCost::Decode(g, by_lex->cost);
    EXPECT_EQ(w, static_cast<int>(by_width->cost));
    EXPECT_EQ(by_lex->Width(), static_cast<int>(by_width->cost));
    EXPECT_EQ(f, by_lex->FillIn(g));
    EXPECT_TRUE(IsMinimalTriangulation(g, by_lex->filled));
  }
}

TEST(MinTriangTest, TotalStateSpaceIsMinimized) {
  // Exhaustive cross-check of a non-classic split-monotone cost.
  for (int seed = 0; seed < 5; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(7, 0.3, 12000 + seed);
    TriangulationContext ctx = BuildCtx(g);
    auto cost = TotalStateSpaceCost::Uniform(7, 2.0);
    auto t = MinTriang(ctx, *cost);
    ASSERT_TRUE(t.has_value());
    EXPECT_DOUBLE_EQ(t->cost, cost->Evaluate(g, t->bags));

    double best = kInfiniteCost;
    for (const auto& fill_set :
         testutil::BruteForceMinimalTriangulationFills(g)) {
      Graph h = g;
      for (const auto& [u, v] : fill_set) h.AddEdge(u, v);
      best = std::min(best,
                      cost->Evaluate(g, MaximalCliquesOfChordal(h)));
    }
    EXPECT_DOUBLE_EQ(t->cost, best) << "seed " << seed;
  }
}

TEST(MinTriangTest, ConstraintsForceTheOtherTriangulation) {
  Graph g = testutil::PaperExampleGraph();
  TriangulationContext ctx = BuildCtx(g);
  WidthCost width;
  VertexSet s1 = VertexSet::Of(6, {3, 4, 5});
  VertexSet s2 = VertexSet::Of(6, {0, 1});

  // Excluding {u,v} forces H1 (width 3).
  ConstrainedCost no_s2(width, {}, {s2});
  auto h1 = MinTriang(ctx, no_s2);
  ASSERT_TRUE(h1.has_value());
  EXPECT_EQ(h1->Width(), 3);
  EXPECT_TRUE(h1->filled.IsClique(s1));

  // Requiring S1 also forces H1.
  ConstrainedCost with_s1(width, {s1}, {});
  auto h1b = MinTriang(ctx, with_s1);
  ASSERT_TRUE(h1b.has_value());
  EXPECT_EQ(h1b->FillEdgesSorted(g), h1->FillEdgesSorted(g));

  // Excluding both separators of the two triangulations is infeasible...
  // (every minimal triangulation saturates S3={v}; excluding S3 kills all).
  ConstrainedCost impossible(width, {},
                             {VertexSet::Of(6, {1})});
  EXPECT_FALSE(MinTriang(ctx, impossible).has_value());
}

TEST(MinTriangTest, BoundedWidthContext) {
  Graph g = testutil::PaperExampleGraph();
  ContextOptions options;
  options.width_bound = 2;
  auto ctx = TriangulationContext::Build(g, options);
  ASSERT_TRUE(ctx.has_value());
  WidthCost width;
  auto t = MinTriang(*ctx, width);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->Width(), 2);  // only H2 fits the bound

  // Bound 1 is infeasible (the graph is not a tree/forest).
  ContextOptions tight;
  tight.width_bound = 1;
  auto ctx1 = TriangulationContext::Build(g, tight);
  ASSERT_TRUE(ctx1.has_value());
  EXPECT_FALSE(MinTriang(*ctx1, width).has_value());
}

TEST(MinTriangTest, BoundedWidthMatchesUnboundedWhenFeasible) {
  for (int seed = 0; seed < 6; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(8, 0.25, 13000 + seed);
    TriangulationContext full = BuildCtx(g);
    WidthCost width;
    auto best = MinTriang(full, width);
    ASSERT_TRUE(best.has_value());
    int tw = static_cast<int>(best->cost);

    ContextOptions options;
    options.width_bound = tw;
    auto bounded = TriangulationContext::Build(g, options);
    ASSERT_TRUE(bounded.has_value());
    auto t = MinTriang(*bounded, width);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->cost, best->cost);

    if (tw > 1) {
      ContextOptions below;
      below.width_bound = tw - 1;
      auto infeasible = TriangulationContext::Build(g, below);
      ASSERT_TRUE(infeasible.has_value());
      EXPECT_FALSE(MinTriang(*infeasible, width).has_value())
          << "width bound below treewidth must be infeasible, seed " << seed;
    }
  }
}

}  // namespace
}  // namespace mintri
