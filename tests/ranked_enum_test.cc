#include "enumeration/ranked_enum.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "chordal/minimality.h"
#include "cost/standard_costs.h"
#include "enumeration/ckk.h"
#include "test_util.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace mintri {
namespace {

TriangulationContext BuildCtx(const Graph& g) {
  auto ctx = TriangulationContext::Build(g);
  EXPECT_TRUE(ctx.has_value());
  return std::move(*ctx);
}

std::vector<Triangulation> Drain(RankedTriangulationEnumerator& e,
                                 size_t cap = 100000) {
  std::vector<Triangulation> out;
  while (out.size() < cap) {
    auto t = e.Next();
    if (!t.has_value()) break;
    out.push_back(std::move(*t));
  }
  return out;
}

TEST(RankedEnumTest, PaperExampleEnumeratesBothTriangulations) {
  Graph g = testutil::PaperExampleGraph();
  TriangulationContext ctx = BuildCtx(g);
  WidthCost width;
  RankedTriangulationEnumerator e(ctx, width);
  auto all = Drain(e);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].Width(), 2);  // H2 first (width 2)
  EXPECT_EQ(all[1].Width(), 3);  // then H1 (width 3)
  for (const auto& t : all) {
    EXPECT_TRUE(IsMinimalTriangulation(g, t.filled));
  }
}

TEST(RankedEnumTest, FourCycleHasTwoTriangulations) {
  // Regression for the Figure 4 off-by-one: with the loop running to k-1
  // only, C4's second triangulation would never be generated (k = 1 at the
  // first pop).
  Graph g = workloads::Cycle(4);
  TriangulationContext ctx = BuildCtx(g);
  FillInCost fill;
  RankedTriangulationEnumerator e(ctx, fill);
  auto all = Drain(e);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].FillIn(g), 1);
  EXPECT_EQ(all[1].FillIn(g), 1);
  EXPECT_NE(all[0].FillEdgesSorted(g), all[1].FillEdgesSorted(g));
}

class RankedEnumPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RankedEnumPropertyTest, CompleteDuplicateFreeAndSorted) {
  auto [n, seed] = GetParam();
  double p = 0.2 + 0.07 * (seed % 6);
  Graph g = workloads::ConnectedErdosRenyi(n, p, 20000 + seed);
  TriangulationContext ctx = BuildCtx(g);

  for (int which_cost = 0; which_cost < 2; ++which_cost) {
    WidthCost width;
    FillInCost fill;
    const BagCost& cost =
        which_cost == 0 ? static_cast<const BagCost&>(width)
                        : static_cast<const BagCost&>(fill);
    RankedTriangulationEnumerator e(ctx, cost);
    auto all = Drain(e);

    // Sorted by cost.
    for (size_t i = 1; i < all.size(); ++i) {
      EXPECT_LE(all[i - 1].cost, all[i].cost) << cost.Name();
    }
    // Each result is a minimal triangulation with a consistent cost.
    std::set<testutil::FillSet> produced;
    for (const auto& t : all) {
      EXPECT_TRUE(IsMinimalTriangulation(g, t.filled)) << cost.Name();
      EXPECT_EQ(t.cost, cost.Evaluate(g, t.bags)) << cost.Name();
      EXPECT_TRUE(produced.insert(t.FillEdgesSorted(g)).second)
          << "duplicate result under " << cost.Name();
    }
    // The result set is exactly the Parra–Scheffler brute-force set.
    EXPECT_EQ(produced, testutil::BruteForceMinimalTriangulationFills(g))
        << "n=" << n << " seed=" << seed << " cost=" << cost.Name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, RankedEnumPropertyTest,
    ::testing::Combine(::testing::Values(5, 6, 7, 8),
                       ::testing::Range(0, 8)));

TEST(RankedEnumTest, SeparatorSetsAreMaximalParallel) {
  // Theorem 2.5: MinSep(H) of every output is a maximal pairwise-parallel
  // set, and saturating it reproduces H.
  Graph g = workloads::Grid(3, 3);
  TriangulationContext ctx = BuildCtx(g);
  WidthCost width;
  RankedTriangulationEnumerator e(ctx, width);
  int checked = 0;
  while (checked < 25) {
    auto t = e.Next();
    if (!t.has_value()) break;
    EXPECT_TRUE(IsMaximalPairwiseParallel(g, t->separators,
                                          ctx.minimal_separators()));
    Graph h = g;
    for (const VertexSet& s : t->separators) h.SaturateSet(s);
    EXPECT_EQ(h, t->filled);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(RankedEnumTest, ChordalGraphYieldsExactlyItself) {
  Graph g = workloads::Path(5);
  TriangulationContext ctx = BuildCtx(g);
  FillInCost fill;
  RankedTriangulationEnumerator e(ctx, fill);
  auto all = Drain(e);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].filled, g);
}

TEST(RankedEnumTest, TreeDecompositionsAreProper) {
  Graph g = testutil::PaperExampleGraph();
  TriangulationContext ctx = BuildCtx(g);
  WidthCost width;
  RankedTreeDecompositionEnumerator e(ctx, width);
  int count = 0;
  CostValue last = -kInfiniteCost;
  while (auto r = e.Next()) {
    EXPECT_TRUE(r->decomposition.IsProperFor(g));
    EXPECT_LE(last, r->cost);
    last = r->cost;
    ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(RankedEnumTest, OrderedAndSetEqualWithCkk) {
  // Ranked enumeration must produce nondecreasing κ and, drained to
  // exhaustion, exactly the set the order-free CKK baseline produces — the
  // two pipelines share no code above the triangulation type.
  std::vector<Graph> graphs = {workloads::Grid(3, 3), workloads::Cycle(7)};
  for (int seed = 0; seed < 4; ++seed) {
    graphs.push_back(workloads::ConnectedErdosRenyi(9, 0.3, 71000 + seed));
  }
  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    const Graph& g = graphs[gi];
    TriangulationContext ctx = BuildCtx(g);
    FillInCost fill;
    RankedTriangulationEnumerator ranked(ctx, fill);
    std::set<testutil::FillSet> ranked_set;
    CostValue last = -kInfiniteCost;
    while (auto t = ranked.Next()) {
      EXPECT_LE(last, t->cost) << "graph " << gi;
      last = t->cost;
      EXPECT_TRUE(ranked_set.insert(t->FillEdgesSorted(g)).second)
          << "duplicate ranked result, graph " << gi;
    }
    CkkEnumerator ckk(g);
    std::set<testutil::FillSet> ckk_set;
    while (auto t = ckk.Next()) {
      EXPECT_TRUE(ckk_set.insert(t->FillEdgesSorted(g)).second)
          << "duplicate CKK result, graph " << gi;
    }
    EXPECT_EQ(ranked_set, ckk_set) << "graph " << gi;
  }
}

TEST(RankedEnumTest, SolverRepairsAreCheaperThanFullPasses) {
  // The incremental solver is the point of the refactor: across a full
  // enumeration the per-call candidate work must stay well below one full
  // DP pass per optimizer call.
  Graph g = workloads::Grid(3, 3);
  TriangulationContext ctx = BuildCtx(g);
  WidthCost width;
  RankedTriangulationEnumerator e(ctx, width);
  int drained = 0;
  while (drained < 200 && e.Next().has_value()) ++drained;
  ASSERT_GT(drained, 10);
  ASSERT_GT(e.num_optimizer_calls(), 1);
  size_t full_pass = 0;
  for (const auto& block : ctx.blocks()) {
    full_pass += block.candidate_pmcs.size();
  }
  full_pass += ctx.root_candidates().size();
  // The breadth measure (touched candidates, mostly cheap constraint
  // short-circuits) must amortize below a full pass; the expensive base
  // Combine calls — where the DP time actually goes — must amortize far
  // below one (measured ~7% on this graph, ~2% on larger grids).
  const double calls = static_cast<double>(e.num_optimizer_calls());
  const double avg_evals = e.num_candidate_evals() / calls;
  const double avg_combines = e.num_combine_calls() / calls;
  EXPECT_LT(avg_evals, static_cast<double>(full_pass))
      << "repair breadth not amortizing";
  EXPECT_LT(avg_combines, static_cast<double>(full_pass) / 4)
      << "incremental repair is not amortizing: " << avg_combines
      << " Combine calls/solve vs " << full_pass << " per full pass";
}

TEST(RankedEnumTest, OptimizerCallCountGrowsLinearly) {
  // Lawler–Murty invariant: at most |MinSep(H)|+1 optimizer calls per
  // result (polynomial delay bookkeeping for the harness).
  Graph g = workloads::Cycle(6);
  TriangulationContext ctx = BuildCtx(g);
  WidthCost width;
  RankedTriangulationEnumerator e(ctx, width);
  auto all = Drain(e);
  EXPECT_GT(all.size(), 1u);
  long long bound = 1;
  for (const auto& t : all) {
    bound += static_cast<long long>(t.separators.size());
  }
  EXPECT_LE(e.num_optimizer_calls(), bound);
}

void ExpectSameStream(const std::vector<Triangulation>& a,
                      const std::vector<Triangulation>& b,
                      const std::string& where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (size_t i = 0; i < a.size(); ++i) {
    const std::string at = where + " result " + std::to_string(i);
    EXPECT_EQ(a[i].cost, b[i].cost) << at;
    EXPECT_EQ(a[i].bags, b[i].bags) << at;
    EXPECT_EQ(a[i].parent, b[i].parent) << at;
    EXPECT_EQ(a[i].separators, b[i].separators) << at;
    EXPECT_TRUE(a[i].filled == b[i].filled) << at;
  }
}

TEST(RankedEnumTest, IndexedAndScanStreamsAreByteIdentical) {
  // The tentpole invariant: the segment-tree candidate index changes how
  // block optima are re-found, never which ones — the full ranked stream
  // must match the list-scan baseline result for result, and neither engine
  // may depend on how many threads built the context.
  SolverOptions scan_options;
  scan_options.use_candidate_index = false;
  std::vector<Graph> graphs = {workloads::Grid(3, 3), workloads::Cycle(6)};
  for (int seed = 0; seed < 3; ++seed) {
    graphs.push_back(workloads::ConnectedErdosRenyi(10, 0.3, 31000 + seed));
  }
  WidthCost width;
  FillInCost fill;
  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    for (int which_cost = 0; which_cost < 2; ++which_cost) {
      const BagCost& cost =
          which_cost == 0 ? static_cast<const BagCost&>(width)
                          : static_cast<const BagCost&>(fill);
      std::vector<Triangulation> reference;
      for (int threads : {1, 2}) {
        const std::string where = "graph " + std::to_string(gi) + " cost " +
                                  std::to_string(which_cost) + " t=" +
                                  std::to_string(threads);
        ContextOptions options;
        options.num_threads = threads;
        auto ctx = TriangulationContext::Build(graphs[gi], options);
        ASSERT_TRUE(ctx.has_value()) << where;
        RankedTriangulationEnumerator indexed(*ctx, cost);
        RankedTriangulationEnumerator scan(*ctx, cost, scan_options);
        auto a = Drain(indexed, 200);
        auto b = Drain(scan, 200);
        ExpectSameStream(a, b, where + " indexed vs scan");
        if (::testing::Test::HasFatalFailure()) return;
        // The index may only skip candidate work, never add it.
        EXPECT_LE(indexed.num_candidate_evals(), scan.num_candidate_evals())
            << where;
        EXPECT_EQ(scan.num_index_updates(), 0) << where;
        if (reference.empty()) {
          reference = std::move(a);
        } else {
          ExpectSameStream(a, reference, where + " vs serial-context stream");
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
    }
  }
}

TEST(RankedEnumTest, ExpiredDeadlineEndsTheStreamTruthfully) {
  Graph g = workloads::Grid(3, 3);
  TriangulationContext ctx = BuildCtx(g);
  WidthCost width;
  RankedTriangulationEnumerator full(ctx, width);
  const size_t total = Drain(full).size();
  ASSERT_GT(total, 1u);

  RankedTriangulationEnumerator e(ctx, width);
  const Deadline expired(0.0);
  e.SetDeadline(&expired);
  // The already-queued first result is still handed out, but the expansion
  // it would have spawned is cut short — the stream ends, flagged as
  // truncated rather than pretending exhaustion.
  auto first = e.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(e.truncated());
  EXPECT_FALSE(e.Next().has_value());
  EXPECT_TRUE(e.truncated());
}

}  // namespace
}  // namespace mintri
