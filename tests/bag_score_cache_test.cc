// Stats audit for the shared BagScoreCache: the counters must stay exact —
// lookups == hits + misses — under any interleaving, including the racy
// window where two threads miss on the same new bag and one loses the
// insert. The hammer test mirrors the `mintri batch` topology (one cache,
// many worker threads) and runs under ThreadSanitizer in CI.

#include "cost/bag_score_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "parallel/thread_pool.h"

namespace mintri {
namespace {

VertexSet MakeBag(int n, std::initializer_list<int> vertices) {
  VertexSet s(n);
  for (int v : vertices) s.Insert(v);
  return s;
}

TEST(BagScoreCacheTest, CountsHitsAndMissesExactly) {
  int evaluations = 0;
  BagScoreCache cache([&](const VertexSet& bag) {
    ++evaluations;
    return static_cast<CostValue>(bag.Count());
  });
  const VertexSet a = MakeBag(8, {0, 1, 2});
  const VertexSet b = MakeBag(8, {3, 4});
  EXPECT_EQ(cache(a), 3);
  EXPECT_EQ(cache(a), 3);
  EXPECT_EQ(cache(b), 2);
  EXPECT_EQ(cache(a), 3);
  EXPECT_EQ(evaluations, 2);
  const BagScoreCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 4);
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(BagScoreCacheTest, StatsStayConsistentUnderConcurrentHammer) {
  // 8 threads share one cache over a small key universe, maximizing both
  // insert races (several threads missing the same fresh bag) and hit
  // contention. The score function itself is checked for correctness on
  // every return, and the final ledger must balance exactly.
  constexpr int kThreads = 8;
  constexpr int kIterations = 4000;
  constexpr int kUniverse = 32;
  std::atomic<long long> scores{0};
  BagScoreCache cache([&](const VertexSet& bag) {
    scores.fetch_add(1, std::memory_order_relaxed);
    return static_cast<CostValue>(bag.Count());
  });
  std::vector<VertexSet> bags;
  for (int i = 0; i < kUniverse; ++i) {
    VertexSet s(kUniverse + 1);
    for (int v = 0; v <= i; ++v) s.Insert(v);
    bags.push_back(std::move(s));
  }
  parallel::RunOnThreads(kThreads, [&](int thread) {
    for (int i = 0; i < kIterations; ++i) {
      const VertexSet& bag = bags[(thread * 7 + i) % kUniverse];
      ASSERT_EQ(cache(bag), static_cast<CostValue>(bag.Count()));
    }
  });
  const BagScoreCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.lookups, static_cast<long long>(kThreads) * kIterations);
  EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
  // Every distinct bag misses at least once; racing losers add more misses
  // but every one of them ran the score function, so the two ledgers agree.
  EXPECT_GE(stats.misses, kUniverse);
  EXPECT_EQ(stats.misses, scores.load());
  EXPECT_GT(stats.hits, 0);
}

}  // namespace
}  // namespace mintri
