// Hygiene check: every public header in src/ is included here — twice, so a
// missing or broken include guard, a non-self-contained header, or an ODR
// violation in an inline definition fails this target at compile/link time.

#include "chordal/chordality.h"
#include "chordal/clique_tree.h"
#include "chordal/lb_triang.h"
#include "chordal/mcs_m.h"
#include "chordal/minimality.h"
#include "cli/cli.h"
#include "cost/bag_cost.h"
#include "cost/constrained_cost.h"
#include "cost/standard_costs.h"
#include "enumeration/ckk.h"
#include "enumeration/clique_tree_enum.h"
#include "enumeration/ranked_enum.h"
#include "enumeration/ranked_forest.h"
#include "enumeration/tree_decomposition.h"
#include "graph/graph.h"
#include "graph/graph_io.h"
#include "graph/vertex_set.h"
#include "graph/vertex_set_table.h"
#include "hypergraph/edge_cover.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/linear_program.h"
#include "inference/factor.h"
#include "inference/junction_tree.h"
#include "parallel/parallel_separators.h"
#include "parallel/sharded_set.h"
#include "parallel/thread_pool.h"
#include "pmc/potential_maximal_cliques.h"
#include "separators/blocks.h"
#include "separators/crossing.h"
#include "separators/minimal_separators.h"
#include "triang/context.h"
#include "triang/min_triang.h"
#include "triang/min_triang_solver.h"
#include "triang/triangulation.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "workloads/families.h"
#include "workloads/graphical_models.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"
#include "workloads/tpch_queries.h"
// Second round: include guards must make these no-ops.
#include "chordal/chordality.h"
#include "chordal/clique_tree.h"
#include "chordal/lb_triang.h"
#include "chordal/mcs_m.h"
#include "chordal/minimality.h"
#include "cli/cli.h"
#include "cost/bag_cost.h"
#include "cost/constrained_cost.h"
#include "cost/standard_costs.h"
#include "enumeration/ckk.h"
#include "enumeration/clique_tree_enum.h"
#include "enumeration/ranked_enum.h"
#include "enumeration/ranked_forest.h"
#include "enumeration/tree_decomposition.h"
#include "graph/graph.h"
#include "graph/graph_io.h"
#include "graph/vertex_set.h"
#include "graph/vertex_set_table.h"
#include "hypergraph/edge_cover.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/linear_program.h"
#include "inference/factor.h"
#include "inference/junction_tree.h"
#include "parallel/parallel_separators.h"
#include "parallel/sharded_set.h"
#include "parallel/thread_pool.h"
#include "pmc/potential_maximal_cliques.h"
#include "separators/blocks.h"
#include "separators/crossing.h"
#include "separators/minimal_separators.h"
#include "triang/context.h"
#include "triang/min_triang.h"
#include "triang/min_triang_solver.h"
#include "triang/triangulation.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "workloads/families.h"
#include "workloads/graphical_models.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"
#include "workloads/tpch_queries.h"

#include <gtest/gtest.h>

namespace mintri {
namespace {

TEST(HeadersTest, AllPublicHeadersAreSelfContained) {
  // The assertions are the successful compile and link of this TU; keep one
  // trivial runtime check so the test registers as executed.
  Graph g(2);
  g.AddEdge(0, 1);
  EXPECT_EQ(g.NumEdges(), 1);
}

}  // namespace
}  // namespace mintri
