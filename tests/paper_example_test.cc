// End-to-end integration test on the paper's Figure-1 running example:
// drives the full pipeline (minimal separators -> potential maximal cliques
// -> triangulation context -> ranked enumeration) and asserts the exact
// counts stated in the paper: 3 minimal separators, 6 PMCs, and 2 minimal
// triangulations.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "chordal/chordality.h"
#include "cost/standard_costs.h"
#include "enumeration/ranked_forest.h"
#include "pmc/potential_maximal_cliques.h"
#include "separators/minimal_separators.h"
#include "test_util.h"
#include "triang/context.h"

namespace mintri {
namespace {

VertexSet Make(int n, std::initializer_list<int> vs) {
  VertexSet s(n);
  for (int v : vs) s.Insert(v);
  return s;
}

TEST(PaperExample, FullPipelineMatchesFigure1) {
  const Graph g = testutil::PaperExampleGraph();
  const int n = g.NumVertices();

  // Stage 1: minimal separators. Figure 1 lists exactly three:
  // {w1,w2,w3} = {3,4,5}, {u,v} = {0,1}, and {v} = {1}.
  MinimalSeparatorsResult seps = ListMinimalSeparators(g);
  ASSERT_EQ(seps.status, EnumerationStatus::kComplete);
  std::set<VertexSet> sep_set(seps.separators.begin(), seps.separators.end());
  EXPECT_EQ(sep_set.size(), 3u);
  EXPECT_TRUE(sep_set.count(Make(n, {3, 4, 5})));
  EXPECT_TRUE(sep_set.count(Make(n, {0, 1})));
  EXPECT_TRUE(sep_set.count(Make(n, {1})));

  // Stage 2: potential maximal cliques — six of them.
  PmcResult pmcs = ListPotentialMaximalCliques(g, seps.separators);
  ASSERT_EQ(pmcs.status, EnumerationStatus::kComplete);
  std::set<VertexSet> pmc_set(pmcs.pmcs.begin(), pmcs.pmcs.end());
  EXPECT_EQ(pmc_set.size(), 6u);
  for (const VertexSet& omega : pmc_set) {
    EXPECT_TRUE(IsPmc(g, omega));
  }

  // Stage 3: the shared context used by every MinTriang/RankedTriang call
  // sees the same separator and PMC sets.
  std::optional<TriangulationContext> context = TriangulationContext::Build(g);
  ASSERT_TRUE(context.has_value());
  EXPECT_EQ(context->minimal_separators().size(), 3u);
  EXPECT_EQ(context->pmcs().size(), 6u);

  // Stage 4: ranked enumeration produces exactly the two minimal
  // triangulations, in nondecreasing cost order, and their fill sets match
  // the Parra-Scheffler brute force.
  WidthCost cost;
  RankedForestEnumerator enumerator(g, cost, CostComposition::kMax);
  ASSERT_TRUE(enumerator.init_ok());

  std::set<testutil::FillSet> enumerated;
  CostValue last_cost = 0;
  int rank = 0;
  while (auto t = enumerator.Next()) {
    ++rank;
    if (rank > 1) {
      EXPECT_GE(t->cost, last_cost);
    }
    last_cost = t->cost;
    EXPECT_TRUE(IsChordal(t->filled));
    enumerated.insert(testutil::FillKey(g, t->filled));
    ASSERT_LE(rank, 2) << "more than 2 minimal triangulations enumerated";
  }
  EXPECT_EQ(rank, 2);
  EXPECT_EQ(enumerated, testutil::BruteForceMinimalTriangulationFills(g));
}

}  // namespace
}  // namespace mintri
