#include "graph/graph.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace mintri {
namespace {

using testutil::MakeGraph;

TEST(GraphTest, AddEdgeIgnoresLoopsAndDuplicates) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(2, 2);
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(2, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphTest, NeighborhoodOfSet) {
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  VertexSet s = VertexSet::Of(5, {1, 2});
  EXPECT_EQ(g.NeighborhoodOfSet(s), VertexSet::Of(5, {0, 3}));
  EXPECT_EQ(g.ClosedNeighborhood(2), VertexSet::Of(5, {1, 2, 3}));
}

TEST(GraphTest, SaturateSetMakesClique) {
  Graph g(4);
  VertexSet s = VertexSet::Of(4, {0, 1, 3});
  EXPECT_FALSE(g.IsClique(s));
  g.SaturateSet(s);
  EXPECT_TRUE(g.IsClique(s));
  EXPECT_EQ(g.NumEdges(), 3);
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphTest, IsCliqueOnEmptyAndSingleton) {
  Graph g(3);
  EXPECT_TRUE(g.IsClique(VertexSet(3)));
  EXPECT_TRUE(g.IsClique(VertexSet::Single(3, 1)));
}

TEST(GraphTest, EdgesSorted) {
  Graph g = MakeGraph(4, {{2, 3}, {0, 1}, {1, 3}});
  auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], std::make_pair(0, 1));
  EXPECT_EQ(edges[1], std::make_pair(1, 3));
  EXPECT_EQ(edges[2], std::make_pair(2, 3));
}

TEST(GraphTest, InducedSubgraphRelabels) {
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {1, 3}});
  std::vector<int> map;
  Graph sub = g.InducedSubgraph(VertexSet::Of(5, {1, 3, 4}), &map);
  EXPECT_EQ(sub.NumVertices(), 3);
  EXPECT_EQ(map[1], 0);
  EXPECT_EQ(map[3], 1);
  EXPECT_EQ(map[4], 2);
  EXPECT_EQ(map[0], -1);
  EXPECT_TRUE(sub.HasEdge(0, 1));   // 1-3
  EXPECT_TRUE(sub.HasEdge(1, 2));   // 3-4
  EXPECT_FALSE(sub.HasEdge(0, 2));  // 1-4 not an edge
  EXPECT_EQ(sub.NumEdges(), 2);
}

TEST(GraphTest, ConnectedComponents) {
  Graph g = MakeGraph(6, {{0, 1}, {1, 2}, {3, 4}});
  auto comps = g.ConnectedComponents();
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0], VertexSet::Of(6, {0, 1, 2}));
  EXPECT_EQ(comps[1], VertexSet::Of(6, {3, 4}));
  EXPECT_EQ(comps[2], VertexSet::Of(6, {5}));
  EXPECT_FALSE(g.IsConnected());
  EXPECT_TRUE(MakeGraph(3, {{0, 1}, {1, 2}}).IsConnected());
}

TEST(GraphTest, ComponentsAfterRemoving) {
  // Path 0-1-2-3-4; removing {2} leaves {0,1} and {3,4}.
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto comps = g.ComponentsAfterRemoving(VertexSet::Of(5, {2}));
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], VertexSet::Of(5, {0, 1}));
  EXPECT_EQ(comps[1], VertexSet::Of(5, {3, 4}));
  EXPECT_EQ(g.ComponentOf(4, VertexSet::Of(5, {2})),
            VertexSet::Of(5, {3, 4}));
}

TEST(GraphTest, UnionOf) {
  Graph a = MakeGraph(4, {{0, 1}});
  Graph b = MakeGraph(4, {{0, 1}, {2, 3}});
  Graph u = Graph::UnionOf(a, b);
  EXPECT_EQ(u.NumEdges(), 2);
  EXPECT_TRUE(u.HasEdge(0, 1));
  EXPECT_TRUE(u.HasEdge(2, 3));
}

TEST(GraphTest, EmptyGraph) {
  Graph g(0);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_TRUE(g.ConnectedComponents().empty());
}

}  // namespace
}  // namespace mintri
