#include "cost/standard_costs.h"

#include <gtest/gtest.h>

#include "cost/constrained_cost.h"
#include "test_util.h"
#include "workloads/named_graphs.h"

namespace mintri {
namespace {

using testutil::MakeGraph;

TEST(WidthCostTest, EvaluateIsMaxBagMinusOne) {
  Graph g = workloads::Path(4);
  WidthCost width;
  std::vector<VertexSet> bags = {VertexSet::Of(4, {0, 1}),
                                 VertexSet::Of(4, {1, 2, 3})};
  EXPECT_EQ(width.Evaluate(g, bags), 2);
}

TEST(FillInCostTest, EvaluateCountsSaturationEdges) {
  Graph g = workloads::Cycle(4);
  FillInCost fill;
  // Bags of the chord-0-2 triangulation.
  std::vector<VertexSet> bags = {VertexSet::Of(4, {0, 1, 2}),
                                 VertexSet::Of(4, {0, 2, 3})};
  EXPECT_EQ(fill.Evaluate(g, bags), 1);
  // Saturating everything adds both chords.
  EXPECT_EQ(fill.Evaluate(g, {g.Vertices()}), 2);
}

TEST(FillInCostTest, CombineMatchesEvaluateOnTwoBagTree) {
  // Clique tree: root {0,1,2} -- child {0,2,3} over separator {0,2} (the
  // chord). The child's new pairs must not re-count the chord.
  Graph g = workloads::Cycle(4);
  FillInCost fill;
  VertexSet root = VertexSet::Of(4, {0, 1, 2});
  VertexSet child = VertexSet::Of(4, {0, 2, 3});
  VertexSet sep = VertexSet::Of(4, {0, 2});
  VertexSet child_block = VertexSet::Of(4, {0, 2, 3});
  VertexSet all = g.Vertices();

  std::vector<const VertexSet*> no_blocks;
  std::vector<CostValue> no_costs;
  CombineContext leaf{g, child, sep, child_block, no_blocks, no_costs};
  CostValue leaf_cost = fill.Combine(leaf);
  EXPECT_EQ(leaf_cost, 0);  // 0-3 and 2-3 are edges; 0-2 is in the separator

  std::vector<const VertexSet*> blocks = {&child_block};
  std::vector<CostValue> costs = {leaf_cost};
  VertexSet empty(4);
  CombineContext top{g, root, empty, all, blocks, costs};
  EXPECT_EQ(fill.Combine(top), 1);  // the chord 0-2 counted exactly once
  EXPECT_EQ(fill.Combine(top), fill.Evaluate(g, {root, child}));
}

TEST(NewFillPairsTest, CountsOnlyNewNonEdges) {
  Graph g = workloads::Cycle(5);
  // Omega {0,1,2}: non-edge 0-2 only.
  EXPECT_EQ(NewFillPairs(g, VertexSet::Of(5, {0, 1, 2}), VertexSet(5)), 1);
  // Same omega, but {0,2} inside the parent separator: nothing new.
  EXPECT_EQ(NewFillPairs(g, VertexSet::Of(5, {0, 1, 2}),
                         VertexSet::Of(5, {0, 2})),
            0);
}

TEST(WidthThenFillTest, EncodesLexicographicOrder) {
  Graph g = workloads::Cycle(6);
  WidthThenFillCost cost;
  // width 2 / fill 3 must beat width 3 / fill 0.
  double a = 2 * WidthThenFillCost::Multiplier(g) + 3;
  double b = 3 * WidthThenFillCost::Multiplier(g) + 0;
  EXPECT_LT(a, b);
  auto [w, f] = WidthThenFillCost::Decode(g, a);
  EXPECT_EQ(w, 2);
  EXPECT_EQ(f, 3);
}

TEST(WidthThenFillTest, EvaluateDecomposes) {
  Graph g = workloads::Cycle(4);
  WidthThenFillCost cost;
  std::vector<VertexSet> bags = {VertexSet::Of(4, {0, 1, 2}),
                                 VertexSet::Of(4, {0, 2, 3})};
  auto [w, f] = WidthThenFillCost::Decode(g, cost.Evaluate(g, bags));
  EXPECT_EQ(w, 2);
  EXPECT_EQ(f, 1);
}

TEST(WeightedWidthTest, VertexWeights) {
  Graph g = workloads::Path(3);
  auto cost = WeightedWidthCost::FromVertexWeights({1.0, 10.0, 2.0});
  std::vector<VertexSet> bags = {VertexSet::Of(3, {0, 1}),
                                 VertexSet::Of(3, {1, 2})};
  EXPECT_DOUBLE_EQ(cost->Evaluate(g, bags), 12.0);
}

TEST(WeightedFillTest, EdgeWeights) {
  Graph g = workloads::Cycle(4);
  WeightedFillCost cost([](int u, int v) { return u + v + 1.0; });
  // chord 0-2 -> weight 3; chord 1-3 -> weight 5.
  std::vector<VertexSet> bags02 = {VertexSet::Of(4, {0, 1, 2}),
                                   VertexSet::Of(4, {0, 2, 3})};
  std::vector<VertexSet> bags13 = {VertexSet::Of(4, {0, 1, 3}),
                                   VertexSet::Of(4, {1, 2, 3})};
  EXPECT_DOUBLE_EQ(cost.Evaluate(g, bags02), 3.0);
  EXPECT_DOUBLE_EQ(cost.Evaluate(g, bags13), 5.0);
}

TEST(TotalStateSpaceTest, UniformDomains) {
  Graph g = workloads::Path(3);
  auto cost = TotalStateSpaceCost::Uniform(3, 2.0);
  std::vector<VertexSet> bags = {VertexSet::Of(3, {0, 1}),
                                 VertexSet::Of(3, {1, 2})};
  EXPECT_DOUBLE_EQ(cost->Evaluate(g, bags), 8.0);  // 4 + 4
}

TEST(ConstrainedCostTest, ExcludeViolatedWhenSubsetOfBag) {
  Graph g = testutil::PaperExampleGraph();
  WidthCost base;
  VertexSet s2 = VertexSet::Of(6, {0, 1});
  ConstrainedCost cost(base, {}, {s2});
  // T2's bags contain {u,v}: violated.
  std::vector<VertexSet> t2_bags = {
      VertexSet::Of(6, {0, 1, 3}), VertexSet::Of(6, {0, 1, 4}),
      VertexSet::Of(6, {0, 1, 5}), VertexSet::Of(6, {1, 2})};
  EXPECT_EQ(cost.Evaluate(g, t2_bags), kInfiniteCost);
  // T1's bags don't: fine.
  std::vector<VertexSet> t1_bags = {VertexSet::Of(6, {0, 3, 4, 5}),
                                    VertexSet::Of(6, {1, 3, 4, 5}),
                                    VertexSet::Of(6, {1, 2})};
  EXPECT_EQ(cost.Evaluate(g, t1_bags), 3);
}

TEST(ConstrainedCostTest, IncludeRequiresContainingBag) {
  Graph g = testutil::PaperExampleGraph();
  WidthCost base;
  VertexSet s1 = VertexSet::Of(6, {3, 4, 5});
  ConstrainedCost cost(base, {s1}, {});
  std::vector<VertexSet> t1_bags = {VertexSet::Of(6, {0, 3, 4, 5}),
                                    VertexSet::Of(6, {1, 3, 4, 5}),
                                    VertexSet::Of(6, {1, 2})};
  std::vector<VertexSet> t2_bags = {
      VertexSet::Of(6, {0, 1, 3}), VertexSet::Of(6, {0, 1, 4}),
      VertexSet::Of(6, {0, 1, 5}), VertexSet::Of(6, {1, 2})};
  EXPECT_EQ(cost.Evaluate(g, t1_bags), 3);
  EXPECT_EQ(cost.Evaluate(g, t2_bags), kInfiniteCost);
}

TEST(ConstrainedCostTest, NameReflectsWrapping) {
  WidthCost base;
  ConstrainedCost cost(base, {}, {});
  EXPECT_EQ(cost.Name(), "width[I,X]");
}

}  // namespace
}  // namespace mintri
