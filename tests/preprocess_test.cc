#include "preprocess/preprocess.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "chordal/chordality.h"
#include "chordal/minimality.h"
#include "test_util.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace mintri {
namespace {

using testutil::MakeGraph;

// Decomposition only, no vertex elimination — for tests that want to see
// the clique-minimal-separator atoms of the input itself.
PreprocessOptions DecomposeOnly() {
  PreprocessOptions options;
  options.reduce_simplicial = false;
  return options;
}

TEST(PreprocessTest, ChordalGraphFullyReduces) {
  // A tree is chordal: simplicial elimination consumes every vertex and no
  // atom remains.
  Graph g = workloads::RandomTree(12, 3);
  PreprocessResult r = Preprocess(g);
  EXPECT_EQ(r.info.vertices_removed, 12);
  EXPECT_TRUE(r.kept.Empty());
  EXPECT_TRUE(r.atoms.empty());
  EXPECT_EQ(r.eliminated.size(), 12u);
  // Re-saturating the recorded bags rebuilds a triangulation of g — for a
  // chordal graph, g itself (no fill).
  Graph filled = g;
  for (const EliminatedVertex& ev : r.eliminated) filled.SaturateSet(ev.bag);
  EXPECT_EQ(filled.NumEdges(), g.NumEdges());
}

TEST(PreprocessTest, EliminationBagsAreCliquesAtEliminationTime) {
  Graph g = testutil::PaperExampleGraph();
  PreprocessResult r = Preprocess(g);
  EXPECT_GE(r.info.vertices_removed, 1);
  // Replaying the eliminations in order: each bag must be a clique once all
  // earlier fills (none for plain simplicial reduction) are applied.
  Graph replay = g;
  for (const EliminatedVertex& ev : r.eliminated) {
    EXPECT_TRUE(replay.IsClique(ev.bag)) << "vertex " << ev.vertex;
    replay.SaturateSet(ev.bag);
  }
}

TEST(PreprocessTest, CycleDoesNotReduceOrSplit) {
  // C4: no simplicial vertex, no clique separator — one atom, the graph.
  Graph g = workloads::Cycle(4);
  PreprocessResult r = Preprocess(g);
  EXPECT_EQ(r.info.vertices_removed, 0);
  ASSERT_EQ(r.atoms.size(), 1u);
  EXPECT_EQ(r.atoms[0].Count(), 4);
}

TEST(PreprocessTest, AlmostSimplicialOffByDefault) {
  // The C4 stream-safety counterexample: an almost-simplicial elimination
  // commits to one of C4's two minimal triangulations, so the default
  // pipeline must not take it.
  PreprocessOptions defaults;
  EXPECT_FALSE(defaults.reduce_almost_simplicial);
  Graph g = workloads::Cycle(4);
  PreprocessResult r = Preprocess(g);
  EXPECT_EQ(r.info.vertices_removed, 0);
}

TEST(PreprocessTest, AlmostSimplicialReductionIsWidthSafe) {
  // With the flag on, C5 reduces through degree-2 almost-simplicial
  // vertices; the recorded bags glue to a *valid* minimal triangulation of
  // width 2 = treewidth (the width-safety condition), even though the
  // stream is no longer the full MT(G).
  PreprocessOptions options;
  options.reduce_almost_simplicial = true;
  Graph g = workloads::Cycle(5);
  PreprocessResult r = Preprocess(g, options);
  EXPECT_EQ(r.info.vertices_removed, 5);
  Graph filled = g;
  int width = 0;
  for (const EliminatedVertex& ev : r.eliminated) {
    filled.SaturateSet(ev.bag);
    width = std::max(width, ev.bag.Count() - 1);
  }
  EXPECT_TRUE(IsChordal(filled));
  EXPECT_TRUE(IsMinimalTriangulation(g, filled));
  EXPECT_EQ(width, 2);
}

TEST(PreprocessTest, CutVertexSplitsIntoAtoms) {
  // Bowtie: triangles {0,1,2} and {2,3,4} share the cut vertex 2 — a
  // clique minimal separator of size 1.
  Graph g = MakeGraph(5, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}});
  PreprocessResult r = Preprocess(g, DecomposeOnly());
  ASSERT_EQ(r.atoms.size(), 2u);
  EXPECT_EQ(r.atoms[0].Count(), 3);
  EXPECT_EQ(r.atoms[1].Count(), 3);
  EXPECT_TRUE(r.atoms[0].Intersect(r.atoms[1]).Count() == 1);
}

TEST(PreprocessTest, CliqueEdgeSeparatorSplits) {
  // Two C4s sharing the saturated pair {0, 1}: {0,1} is a clique minimal
  // separator, so the decomposition yields two 4-vertex atoms overlapping
  // exactly in the shared edge.
  Graph g = MakeGraph(6, {{0, 1}, {0, 2}, {2, 3}, {3, 1},   // left cycle
                          {0, 4}, {4, 5}, {5, 1}});          // right cycle
  std::vector<VertexSet> atoms = CliqueMinimalSeparatorAtoms(g);
  ASSERT_EQ(atoms.size(), 2u);
  for (const VertexSet& a : atoms) EXPECT_EQ(a.Count(), 4);
  VertexSet overlap = atoms[0].Intersect(atoms[1]);
  EXPECT_EQ(overlap.Count(), 2);
  EXPECT_TRUE(g.IsClique(overlap));
}

TEST(PreprocessTest, AtomsAreAtomsOnRandomGraphs) {
  // On a small random corpus: the atoms cover every edge, pairwise overlap
  // in cliques of g, and — the fixed point — have no clique minimal
  // separators of their own.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(11, 0.3, seed);
    std::vector<VertexSet> atoms = CliqueMinimalSeparatorAtoms(g);
    ASSERT_FALSE(atoms.empty()) << "seed=" << seed;
    for (const auto& [u, v] : g.Edges()) {
      bool covered = false;
      for (const VertexSet& a : atoms) {
        if (a.Contains(u) && a.Contains(v)) covered = true;
      }
      EXPECT_TRUE(covered) << "edge " << u << "-" << v << " seed=" << seed;
    }
    for (size_t i = 0; i < atoms.size(); ++i) {
      for (size_t j = i + 1; j < atoms.size(); ++j) {
        EXPECT_TRUE(g.IsClique(atoms[i].Intersect(atoms[j])))
            << "seed=" << seed;
      }
      Graph sub = g.InducedSubgraph(atoms[i]);
      EXPECT_EQ(CliqueMinimalSeparatorAtoms(sub).size(), 1u)
          << "atom " << i << " of seed " << seed << " is not atomic";
    }
  }
}

TEST(PreprocessTest, DegeneracyLowerBound) {
  EXPECT_EQ(DegeneracyLowerBound(workloads::Path(6)), 1);
  EXPECT_EQ(DegeneracyLowerBound(workloads::Cycle(7)), 2);
  EXPECT_EQ(DegeneracyLowerBound(workloads::Complete(5)), 4);
  EXPECT_EQ(DegeneracyLowerBound(workloads::Grid(4, 4)), 2);
}

TEST(PreprocessTest, InfoCountsAtoms) {
  Graph g = MakeGraph(5, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}});
  PreprocessResult r = Preprocess(g, DecomposeOnly());
  EXPECT_EQ(r.info.num_atoms, 2);
  EXPECT_EQ(r.info.largest_atom, 3);
  EXPECT_EQ(r.info.smallest_atom, 3);
  EXPECT_GE(r.info.seconds, 0.0);
}

}  // namespace
}  // namespace mintri
