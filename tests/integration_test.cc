// End-to-end tests across modules: RankedTriang vs CKK result-set equality,
// TPC-H query decomposition, and the paper's Example 2.1/2.3 walked through
// the whole public API.

#include <gtest/gtest.h>

#include <set>

#include "chordal/minimality.h"
#include "cost/standard_costs.h"
#include "enumeration/ckk.h"
#include "enumeration/ranked_enum.h"
#include "test_util.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"
#include "workloads/tpch_queries.h"

namespace mintri {
namespace {

std::set<testutil::FillSet> RankedFills(const Graph& g, const BagCost& cost,
                                        size_t cap = 100000) {
  auto ctx = TriangulationContext::Build(g);
  EXPECT_TRUE(ctx.has_value());
  RankedTriangulationEnumerator e(*ctx, cost);
  std::set<testutil::FillSet> fills;
  while (fills.size() < cap) {
    auto t = e.Next();
    if (!t.has_value()) break;
    fills.insert(t->FillEdgesSorted(g));
  }
  return fills;
}

std::set<testutil::FillSet> CkkFills(const Graph& g, size_t cap = 100000) {
  CkkEnumerator e(g);
  std::set<testutil::FillSet> fills;
  while (fills.size() < cap) {
    auto t = e.Next();
    if (!t.has_value()) break;
    fills.insert(t->FillEdgesSorted(g));
  }
  return fills;
}

class CrossValidationTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CrossValidationTest, RankedTriangAndCkkAgreeOnTheFullSet) {
  auto [n, seed] = GetParam();
  double p = 0.25 + 0.05 * (seed % 5);
  Graph g = workloads::ConnectedErdosRenyi(n, p, 50000 + seed);
  WidthCost width;
  auto ranked = RankedFills(g, width);
  auto ckk = CkkFills(g);
  EXPECT_EQ(ranked, ckk) << "n=" << n << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, CrossValidationTest,
    ::testing::Combine(::testing::Values(6, 7, 8, 9),
                       ::testing::Range(0, 6)));

TEST(IntegrationTest, NamedGraphsCrossValidate) {
  WidthCost width;
  for (const Graph& g :
       {workloads::Cycle(7), workloads::Grid(3, 3),
        workloads::CompleteBipartite(2, 4), testutil::PaperExampleGraph()}) {
    EXPECT_EQ(RankedFills(g, width), CkkFills(g));
  }
}

TEST(IntegrationTest, TpchQueriesEnumerateFullyAndFast) {
  // The paper: "In the case of TPC-H graphs, computing all minimal
  // triangulations is a matter of a few seconds" — here, milliseconds.
  WidthCost width;
  for (const auto& q : workloads::AllTpchQueries()) {
    if (!q.graph.IsConnected()) continue;  // cross joins: handled per
                                           // component by the applications
    auto ctx = TriangulationContext::Build(q.graph);
    ASSERT_TRUE(ctx.has_value()) << "Q" << q.number;
    RankedTriangulationEnumerator e(*ctx, width);
    int count = 0;
    CostValue last = -kInfiniteCost;
    while (auto t = e.Next()) {
      EXPECT_TRUE(IsMinimalTriangulation(q.graph, t->filled));
      EXPECT_LE(last, t->cost);
      last = t->cost;
      ++count;
      ASSERT_LT(count, 10000);
    }
    EXPECT_GE(count, 1) << "Q" << q.number;
  }
}

TEST(IntegrationTest, PaperWalkthrough) {
  // Example 2.1/2.3/2.4/5.2 as one scenario.
  Graph g = testutil::PaperExampleGraph();
  auto ctx = TriangulationContext::Build(g);
  ASSERT_TRUE(ctx.has_value());

  // Three minimal separators (Example 2.4), six PMCs (Example 5.2 lists two
  // of them), two minimal triangulations (Figure 1(b)).
  EXPECT_EQ(ctx->minimal_separators().size(), 3u);
  EXPECT_EQ(ctx->pmcs().size(), 6u);

  WidthThenFillCost lex;
  RankedTriangulationEnumerator e(*ctx, lex);
  auto h2 = e.Next();  // width 2, fill 1 — the H2 of Figure 1(b)
  ASSERT_TRUE(h2.has_value());
  EXPECT_EQ(h2->Width(), 2);
  EXPECT_EQ(h2->FillIn(g), 1);
  EXPECT_TRUE(h2->filled.HasEdge(0, 1));  // the uv fill edge

  auto h1 = e.Next();  // width 3, fill 3 — H1
  ASSERT_TRUE(h1.has_value());
  EXPECT_EQ(h1->Width(), 3);
  EXPECT_EQ(h1->FillIn(g), 3);

  EXPECT_FALSE(e.Next().has_value());
}

TEST(IntegrationTest, RankedPrefixIsAlwaysAMinCostPrefix) {
  // Stopping RankedTriang after k results must give the k cheapest
  // triangulations (the whole point of ranked enumeration): cross-check
  // against the sorted brute-force cost list.
  Graph g = workloads::ConnectedErdosRenyi(8, 0.3, 60606);
  FillInCost fill;
  auto ctx = TriangulationContext::Build(g);
  ASSERT_TRUE(ctx.has_value());

  std::vector<double> brute_costs;
  for (const auto& fs : testutil::BruteForceMinimalTriangulationFills(g)) {
    brute_costs.push_back(static_cast<double>(fs.size()));
  }
  std::sort(brute_costs.begin(), brute_costs.end());

  RankedTriangulationEnumerator e(*ctx, fill);
  for (size_t k = 0; k < brute_costs.size(); ++k) {
    auto t = e.Next();
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->cost, brute_costs[k]) << "position " << k;
  }
  EXPECT_FALSE(e.Next().has_value());
}

}  // namespace
}  // namespace mintri
