#include "enumeration/ranked_forest.h"

#include <gtest/gtest.h>

#include <set>

#include "chordal/minimality.h"
#include "cost/standard_costs.h"
#include "test_util.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace mintri {
namespace {

using testutil::MakeGraph;

Graph TwoCycles() {
  // C4 on {0..3} plus C5 on {4..8}: 2 x 5 = 10 minimal triangulations.
  Graph g(9);
  for (int i = 0; i < 4; ++i) g.AddEdge(i, (i + 1) % 4);
  for (int i = 0; i < 5; ++i) g.AddEdge(4 + i, 4 + (i + 1) % 5);
  return g;
}

TEST(RankedForestTest, ConnectedGraphMatchesPlainEnumerator) {
  Graph g = testutil::PaperExampleGraph();
  WidthCost width;
  RankedForestEnumerator e(g, width, CostComposition::kMax);
  ASSERT_TRUE(e.init_ok());
  auto first = e.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->Width(), 2);
  auto second = e.Next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->Width(), 3);
  EXPECT_FALSE(e.Next().has_value());
}

TEST(RankedForestTest, DisconnectedProductCount) {
  Graph g = TwoCycles();
  FillInCost fill;
  RankedForestEnumerator e(g, fill, CostComposition::kSum);
  ASSERT_TRUE(e.init_ok());
  std::set<testutil::FillSet> produced;
  double last = 0;
  while (auto t = e.Next()) {
    EXPECT_GE(t->cost, last - 1e-9);  // ranked by total fill
    last = t->cost;
    EXPECT_TRUE(IsMinimalTriangulation(g, t->filled));
    EXPECT_EQ(t->cost, static_cast<double>(t->FillIn(g)));
    EXPECT_TRUE(produced.insert(t->FillEdgesSorted(g)).second);
  }
  EXPECT_EQ(produced.size(), 10u);  // 2 (C4) x 5 (C5)
}

TEST(RankedForestTest, MaxCompositionRanksWidth) {
  // K4-minus-edge (width 2) + C6 component: global width = max of parts.
  Graph g(10);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 0);
  g.AddEdge(0, 2);
  for (int i = 0; i < 6; ++i) g.AddEdge(4 + i, 4 + (i + 1) % 6);
  WidthCost width;
  RankedForestEnumerator e(g, width, CostComposition::kMax);
  ASSERT_TRUE(e.init_ok());
  double last = -1;
  int count = 0;
  while (auto t = e.Next()) {
    EXPECT_GE(t->cost, last);
    EXPECT_EQ(t->cost, static_cast<double>(t->Width()));
    last = t->cost;
    ++count;
  }
  // C6 has 6·3/... minimal triangulations of C6: Catalan-ish count = 12?
  // C_n has n(n-4) + ... — simply: every output distinct, count equals
  // (#triang of first comp = 1) x (#triang of C6).
  EXPECT_GT(count, 5);
}

TEST(RankedForestTest, IsolatedVerticesAndEdges) {
  Graph g = MakeGraph(4, {{1, 2}});  // vertices 0 and 3 isolated
  WidthCost width;
  RankedForestEnumerator e(g, width, CostComposition::kMax);
  ASSERT_TRUE(e.init_ok());
  auto t = e.Next();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->bags.size(), 3u);  // {0}, {1,2}, {3}
  EXPECT_EQ(t->Width(), 1);
  EXPECT_FALSE(e.Next().has_value());
}

TEST(RankedForestTest, RankedPrefixIsGloballyOptimal) {
  // Cross-check the product order against the brute-force cost multiset.
  Graph g = TwoCycles();
  FillInCost fill;
  std::vector<double> brute;
  for (const auto& fs : testutil::BruteForceMinimalTriangulationFills(g)) {
    brute.push_back(static_cast<double>(fs.size()));
  }
  std::sort(brute.begin(), brute.end());
  RankedForestEnumerator e(g, fill, CostComposition::kSum);
  for (double expected : brute) {
    auto t = e.Next();
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->cost, expected);
  }
  EXPECT_FALSE(e.Next().has_value());
}

}  // namespace
}  // namespace mintri
