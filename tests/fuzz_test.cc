// Randomized differential tests ("fuzz" style): VertexSet against
// std::set<int>, Graph connectivity against a reference union-find, and a
// whole-pipeline cross-validation — Ω is a potential maximal clique iff it
// occurs as a maximal clique of some minimal triangulation (the *defining*
// property of PMCs, checked against the Parra–Scheffler brute force). A
// parallel mode reruns the separator/PMC pipeline through the
// work-stealing engine (num_threads > 1) on the same deterministic seeds,
// so the fuzzing also exercises the thread pool and sharded dedup table.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "chordal/clique_tree.h"
#include "pmc/potential_maximal_cliques.h"
#include "test_util.h"
#include "util/rng.h"
#include "workloads/random_graphs.h"

namespace mintri {
namespace {

class VertexSetFuzz : public ::testing::TestWithParam<int> {};

TEST_P(VertexSetFuzz, MatchesStdSetReference) {
  Rng rng(GetParam());
  const int cap = 1 + static_cast<int>(rng.NextBounded(150));
  VertexSet a(cap), b(cap);
  std::set<int> ra, rb;
  for (int op = 0; op < 300; ++op) {
    int v = rng.NextInt(0, cap - 1);
    switch (rng.NextBounded(6)) {
      case 0:
        a.Insert(v);
        ra.insert(v);
        break;
      case 1:
        a.Erase(v);
        ra.erase(v);
        break;
      case 2:
        b.Insert(v);
        rb.insert(v);
        break;
      case 3: {
        VertexSet u = a.Union(b), i = a.Intersect(b), m = a.Minus(b);
        std::set<int> ru, ri, rm;
        std::set_union(ra.begin(), ra.end(), rb.begin(), rb.end(),
                       std::inserter(ru, ru.end()));
        std::set_intersection(ra.begin(), ra.end(), rb.begin(), rb.end(),
                              std::inserter(ri, ri.end()));
        std::set_difference(ra.begin(), ra.end(), rb.begin(), rb.end(),
                            std::inserter(rm, rm.end()));
        EXPECT_EQ(u.ToVector(), std::vector<int>(ru.begin(), ru.end()));
        EXPECT_EQ(i.ToVector(), std::vector<int>(ri.begin(), ri.end()));
        EXPECT_EQ(m.ToVector(), std::vector<int>(rm.begin(), rm.end()));
        break;
      }
      case 4: {
        EXPECT_EQ(a.Count(), static_cast<int>(ra.size()));
        EXPECT_EQ(a.Empty(), ra.empty());
        EXPECT_EQ(a.First(), ra.empty() ? -1 : *ra.begin());
        EXPECT_EQ(a.Contains(v), ra.count(v) > 0);
        break;
      }
      case 5: {
        bool subset = std::includes(rb.begin(), rb.end(), ra.begin(),
                                    ra.end());
        EXPECT_EQ(a.IsSubsetOf(b), subset);
        bool intersects = false;
        for (int x : ra) intersects |= rb.count(x) > 0;
        EXPECT_EQ(a.Intersects(b), intersects);
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VertexSetFuzz, ::testing::Range(0, 12));

class GraphFuzz : public ::testing::TestWithParam<int> {};

TEST_P(GraphFuzz, ComponentsMatchUnionFind) {
  Rng rng(1000 + GetParam());
  const int n = 2 + static_cast<int>(rng.NextBounded(40));
  Graph g(n);
  std::vector<int> uf(n);
  std::iota(uf.begin(), uf.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (uf[x] != x) x = uf[x] = uf[uf[x]];
    return x;
  };
  int edges = static_cast<int>(rng.NextBounded(2 * n));
  for (int e = 0; e < edges; ++e) {
    int u = rng.NextInt(0, n - 1), v = rng.NextInt(0, n - 1);
    if (u == v) continue;
    g.AddEdge(u, v);
    uf[find(u)] = find(v);
  }
  std::set<int> roots;
  for (int v = 0; v < n; ++v) roots.insert(find(v));
  auto comps = g.ConnectedComponents();
  EXPECT_EQ(comps.size(), roots.size());
  // Every component is closed under the union-find relation.
  for (const VertexSet& c : comps) {
    int root = find(c.First());
    c.ForEach([&](int v) { EXPECT_EQ(find(v), root); });
  }
  EXPECT_EQ(g.IsConnected(), roots.size() == 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphFuzz, ::testing::Range(0, 12));

class PipelineCross : public ::testing::TestWithParam<int> {};

TEST_P(PipelineCross, PmcsAreExactlyTheBagsOfMinimalTriangulations) {
  // The definition of PMC (Section 5.1): Ω ∈ PMC(G) iff Ω ∈ MaxClq(H) for
  // some minimal triangulation H. Left side: our BT02 enumerator. Right
  // side: maximal cliques over the Parra–Scheffler brute-force enumeration.
  Graph g = workloads::ConnectedErdosRenyi(8, 0.2 + 0.05 * (GetParam() % 5),
                                           90000 + GetParam());
  auto seps = ListMinimalSeparators(g).separators;
  auto pmcs = ListPotentialMaximalCliques(g, seps).pmcs;
  std::set<VertexSet> expected;
  for (const auto& fills : testutil::BruteForceMinimalTriangulationFills(g)) {
    Graph h = g;
    for (const auto& [u, v] : fills) h.AddEdge(u, v);
    for (VertexSet& c : MaximalCliquesOfChordal(h)) {
      expected.insert(std::move(c));
    }
  }
  EXPECT_EQ(std::set<VertexSet>(pmcs.begin(), pmcs.end()), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineCross, ::testing::Range(0, 10));

// Parallel mode: the multi-threaded batch enumerators must agree with the
// serial ones on the same fixed-seed random graphs, at 2..4 threads.
class ParallelPipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParallelPipelineFuzz, ParallelEnginesMatchSerialOnRandomGraphs) {
  const int seed = GetParam();
  const int n = 10 + seed % 5;
  Graph g = workloads::ConnectedErdosRenyi(n, 0.2 + 0.05 * (seed % 4),
                                           96000 + seed);
  EnumerationLimits par_limits;
  par_limits.num_threads = 2 + seed % 3;

  auto serial_seps = ListMinimalSeparators(g).separators;
  std::sort(serial_seps.begin(), serial_seps.end());
  MinimalSeparatorsResult par_seps = ListMinimalSeparators(g, par_limits);
  ASSERT_EQ(par_seps.status, EnumerationStatus::kComplete);
  EXPECT_EQ(par_seps.separators, serial_seps) << "seed=" << seed;

  auto serial_pmcs = ListPotentialMaximalCliques(g, serial_seps).pmcs;
  PmcOptions par_options;
  par_options.limits.num_threads = par_limits.num_threads;
  PmcResult par_pmcs =
      ListPotentialMaximalCliques(g, serial_seps, par_options);
  ASSERT_EQ(par_pmcs.status, EnumerationStatus::kComplete);
  EXPECT_EQ(par_pmcs.pmcs, serial_pmcs) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelPipelineFuzz, ::testing::Range(0, 12));

}  // namespace
}  // namespace mintri
