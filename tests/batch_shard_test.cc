// The multi-process batch coordinator: contiguous sharding across child
// `mintri batch` processes with a deterministic in-order merge. A healthy
// sharded run must be byte-identical to the in-process run at every
// (workers, threads, inner-threads) split; a crashed, partial, or
// deadline-killed worker must yield truthful per-instance error records
// instead of a hung coordinator.
//
// The child processes are real spawns of the mintri CLI binary
// (MINTRI_CLI_BINARY, baked in by tests/CMakeLists.txt), and the failure
// paths are driven by the MINTRI_BATCH_FAULT fault-injection hook in
// src/cli/batch.cc.

#include "cli/batch_shard.h"

#include <gtest/gtest.h>
#include <stdlib.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/batch.h"
#include "util/timer.h"

namespace mintri {
namespace {

std::vector<std::string> TpchSpecs() {
  return {"tpch:2", "tpch:5", "tpch:7", "tpch:8", "tpch:9", "tpch:20"};
}

// Scoped MINTRI_BATCH_FAULT so a failing assertion cannot leak the fault
// into later tests.
class ScopedFault {
 public:
  explicit ScopedFault(const std::string& value) {
    setenv("MINTRI_BATCH_FAULT", value.c_str(), 1);
  }
  ~ScopedFault() { unsetenv("MINTRI_BATCH_FAULT"); }
};

// A temp file holding one spec per line, unlinked on scope exit.
class SpecListFile {
 public:
  explicit SpecListFile(const std::vector<std::string>& specs) {
    char templ[] = "/tmp/mintri_shard_test_XXXXXX";
    const int fd = mkstemp(templ);
    EXPECT_GE(fd, 0);
    path_ = templ;
    std::ofstream out(path_);
    for (const std::string& s : specs) out << s << "\n";
    close(fd);
  }
  ~SpecListFile() { unlink(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct CommandResult {
  int code = 0;
  std::string out;
  std::string err;
};

// Runs RunBatchCommand over a spec list. With workers > 1 this spawns real
// child mintri processes; --mask-timings makes the output byte-comparable.
CommandResult RunBatchCli(const std::vector<std::string>& specs,
                          const std::vector<std::string>& extra_args) {
  SpecListFile list(specs);
  std::vector<std::string> args = {list.path(), "--cost=fhw", "--top=2",
                                   "--mask-timings",
                                   std::string("--worker-binary=") +
                                       MINTRI_CLI_BINARY};
  args.insert(args.end(), extra_args.begin(), extra_args.end());
  std::ostringstream out, err;
  const int code = RunBatchCommand(args, out, err);
  return {code, out.str(), err.str()};
}

BatchOptions ShardOptions(int workers) {
  BatchOptions options;
  options.cost = "fhw";
  options.top = 2;
  options.workers = workers;
  options.mask_timings = true;
  options.worker_binary = MINTRI_CLI_BINARY;
  return options;
}

TEST(BatchShardTest, ByteIdenticalAcrossWorkersAndThreads) {
  const CommandResult baseline = RunBatchCli(TpchSpecs(), {"--workers=1"});
  ASSERT_EQ(baseline.code, 0) << baseline.err;
  for (int workers : {2, 3, 4, 6}) {
    for (int threads : {1, 2}) {
      const CommandResult sharded = RunBatchCli(
          TpchSpecs(), {"--workers=" + std::to_string(workers),
                        "--threads=" + std::to_string(threads)});
      EXPECT_EQ(sharded.code, 0) << sharded.err;
      EXPECT_EQ(sharded.out, baseline.out)
          << "workers=" << workers << " threads=" << threads;
    }
  }
}

TEST(BatchShardTest, ByteIdenticalWithInnerThreads) {
  const CommandResult baseline = RunBatchCli(TpchSpecs(), {"--workers=1"});
  ASSERT_EQ(baseline.code, 0) << baseline.err;
  const CommandResult sharded = RunBatchCli(
      TpchSpecs(), {"--workers=3", "--threads=2", "--inner-threads=2"});
  EXPECT_EQ(sharded.code, 0) << sharded.err;
  EXPECT_EQ(sharded.out, baseline.out);
}

TEST(BatchShardTest, EmptyListIsRejectedBeforeSharding) {
  // An empty instance list errors out identically at every --workers value:
  // the coordinator never spawns a worker for nothing.
  const CommandResult r = RunBatchCli({}, {"--workers=3"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("no instances listed"), std::string::npos) << r.err;
  EXPECT_TRUE(r.out.empty());
}

TEST(BatchShardTest, MoreWorkersThanInstancesClampsCleanly) {
  const std::vector<std::string> specs = {"tpch:5", "tpch:7"};
  const CommandResult baseline = RunBatchCli(specs, {"--workers=1"});
  ASSERT_EQ(baseline.code, 0) << baseline.err;
  const CommandResult sharded = RunBatchCli(specs, {"--workers=8"});
  EXPECT_EQ(sharded.code, 0) << sharded.err;
  EXPECT_EQ(sharded.out, baseline.out);

  // The coordinator must clamp to one worker per instance, not spawn
  // empty-shard children.
  std::vector<std::pair<std::string, std::string>> statuses;
  BatchAggregateStats stats;
  std::string error;
  std::ostringstream sink;
  const int failures =
      RunShardedBatch(specs, ShardOptions(8), sink, &statuses, &stats, &error);
  EXPECT_EQ(failures, 0) << error;
  EXPECT_EQ(stats.workers, 2);
  ASSERT_EQ(stats.worker_stats.size(), 2u);
  EXPECT_EQ(stats.worker_stats[0].count, 1);
  EXPECT_EQ(stats.worker_stats[1].count, 1);
  EXPECT_EQ(stats.ok, 2);
}

TEST(BatchShardTest, SingleInstanceShardWorks) {
  const std::vector<std::string> specs = {"tpch:5"};
  const CommandResult baseline = RunBatchCli(specs, {"--workers=1"});
  const CommandResult sharded = RunBatchCli(specs, {"--workers=4"});
  EXPECT_EQ(sharded.code, 0) << sharded.err;
  EXPECT_EQ(sharded.out, baseline.out);
}

TEST(BatchShardTest, LoadErrorsSurviveTheMergeVerbatim) {
  // Worker-side per-instance failures (bad specs) are ordinary records and
  // must merge exactly like ok records — same bytes as the in-process run.
  const std::vector<std::string> specs = {"tpch:5", "no-such-file.gr",
                                          "tpch:7", "gm:nope"};
  const CommandResult baseline = RunBatchCli(specs, {"--workers=1"});
  EXPECT_EQ(baseline.code, 2);
  const CommandResult sharded = RunBatchCli(specs, {"--workers=3"});
  EXPECT_EQ(sharded.code, 2);
  EXPECT_EQ(sharded.out, baseline.out);
}

TEST(BatchShardTest, CrashedWorkerYieldsPartialAndCrashedRecords) {
  // Shards over 6 instances at 2 workers: [tpch:2 tpch:5 tpch:7] and
  // [tpch:8 tpch:9 tpch:20]. The injected fault kills worker 0 halfway
  // through tpch:5's record, so tpch:5 is a truthfully-reported partial
  // line and tpch:7 never ran; worker 1 is unaffected.
  ScopedFault fault("crash:tpch:5");
  std::vector<std::pair<std::string, std::string>> statuses;
  BatchAggregateStats stats;
  std::string error;
  std::ostringstream sink;
  const int failures = RunShardedBatch(TpchSpecs(), ShardOptions(2), sink,
                                       &statuses, &stats, &error);
  EXPECT_EQ(failures, 2) << error;
  ASSERT_EQ(statuses.size(), 6u);
  EXPECT_EQ(statuses[0].first, "ok");
  EXPECT_EQ(statuses[1].first, "worker-partial");
  EXPECT_NE(statuses[1].second.find("unterminated record"),
            std::string::npos);
  EXPECT_EQ(statuses[2].first, "worker-crashed");
  EXPECT_EQ(statuses[3].first, "ok");
  EXPECT_EQ(statuses[4].first, "ok");
  EXPECT_EQ(statuses[5].first, "ok");
  // The synthesized records are real JSON-Lines records, one per instance.
  const std::string out = sink.str();
  EXPECT_NE(out.find("\"status\": \"worker-partial\""), std::string::npos);
  EXPECT_NE(out.find("\"status\": \"worker-crashed\""), std::string::npos);
  EXPECT_EQ(stats.ok, 4);
  EXPECT_EQ(stats.failed, 2);
}

TEST(BatchShardTest, DeadlineKillsHungWorkerWithTimeoutRecords) {
  // Worker 0 emits tpch:2's record and then hangs; the per-shard deadline
  // must kill it and synthesize worker-timeout records for the rest of its
  // shard while worker 1 completes normally — and the coordinator itself
  // must return promptly instead of hanging.
  ScopedFault fault("hang:tpch:2");
  BatchOptions options = ShardOptions(2);
  options.deadline = 2.0;
  WallTimer timer;
  std::vector<std::pair<std::string, std::string>> statuses;
  BatchAggregateStats stats;
  std::string error;
  std::ostringstream sink;
  const int failures = RunShardedBatch(TpchSpecs(), options, sink, &statuses,
                                       &stats, &error);
  EXPECT_LT(timer.Seconds(), 60.0);
  EXPECT_EQ(failures, 2) << error;
  ASSERT_EQ(statuses.size(), 6u);
  EXPECT_EQ(statuses[0].first, "ok");
  EXPECT_EQ(statuses[1].first, "worker-timeout");
  EXPECT_NE(statuses[1].second.find("--deadline"), std::string::npos);
  EXPECT_EQ(statuses[2].first, "worker-timeout");
  EXPECT_EQ(statuses[3].first, "ok");
  EXPECT_EQ(statuses[4].first, "ok");
  EXPECT_EQ(statuses[5].first, "ok");
  ASSERT_EQ(stats.worker_stats.size(), 2u);
  EXPECT_NE(stats.worker_stats[0].termination.find("deadline"),
            std::string::npos);
}

TEST(BatchShardTest, StatsAggregateAcrossWorkers) {
  std::vector<std::pair<std::string, std::string>> statuses;
  BatchAggregateStats stats;
  std::string error;
  std::ostringstream sink;
  const int failures = RunShardedBatch(TpchSpecs(), ShardOptions(3), sink,
                                       &statuses, &stats, &error);
  EXPECT_EQ(failures, 0) << error;
  EXPECT_EQ(stats.instances, 6);
  EXPECT_EQ(stats.ok, 6);
  EXPECT_EQ(stats.failed, 0);
  ASSERT_EQ(stats.worker_stats.size(), 3u);
  int covered = 0;
  for (const WorkerShardStats& w : stats.worker_stats) {
    EXPECT_EQ(w.first, covered);
    covered += w.count;
    EXPECT_EQ(w.termination, "exit 0");
    EXPECT_GT(w.wall_seconds, 0.0);
  }
  EXPECT_EQ(covered, 6);
  // The fhw runs hit the bag-score cache; the aggregate must carry the
  // summed per-instance counters (deterministic across worker splits).
  EXPECT_GT(stats.cache_lookups, 0);
  EXPECT_GT(stats.cache_hits, 0);
  EXPECT_EQ(stats.cache_lookups, stats.cache_hits + stats.cache_misses);
  EXPECT_GT(stats.CacheHitRate(), 0.0);
  EXPECT_LE(stats.CacheHitRate(), 1.0);
}

TEST(BatchShardTest, StatsJsonIsWrittenAndShaped) {
  SpecListFile list(TpchSpecs());
  char templ[] = "/tmp/mintri_stats_json_XXXXXX";
  const int fd = mkstemp(templ);
  ASSERT_GE(fd, 0);
  close(fd);
  const std::string stats_path = templ;

  std::ostringstream out, err;
  const int code = RunBatchCommand(
      {list.path(), "--cost=fhw", "--top=1", "--workers=2", "--stats",
       "--stats-json=" + stats_path,
       std::string("--worker-binary=") + MINTRI_CLI_BINARY},
      out, err);
  EXPECT_EQ(code, 0) << err.str();
  // --stats: per-worker lines + aggregate summary on stderr.
  EXPECT_NE(err.str().find("worker 0: instances [0, 3)"), std::string::npos)
      << err.str();
  EXPECT_NE(err.str().find("worker 1: instances [3, 6)"), std::string::npos);
  EXPECT_NE(err.str().find("batch: 6 instances, 6 ok"), std::string::npos);
  EXPECT_NE(err.str().find("bag-score cache (aggregate)"),
            std::string::npos);

  std::ifstream stats_file(stats_path);
  std::stringstream stats_json;
  stats_json << stats_file.rdbuf();
  unlink(stats_path.c_str());
  for (const char* key :
       {"\"batch_stats_version\": 1", "\"workers\": 2", "\"instances\": 6",
        "\"ok\": 6", "\"failed\": 0", "\"cache_hit_rate\": ",
        "\"worker_stats\": [{\"worker\": 0, \"first\": 0, \"count\": 3"}) {
    EXPECT_NE(stats_json.str().find(key), std::string::npos)
        << key << "\n" << stats_json.str();
  }
}

TEST(BatchShardTest, InProcessStatsUseTheSameShape) {
  SpecListFile list({"tpch:5", "tpch:7"});
  std::ostringstream out, err;
  const int code = RunBatchCommand(
      {list.path(), "--cost=fhw", "--top=1", "--stats"}, out, err);
  EXPECT_EQ(code, 0) << err.str();
  EXPECT_NE(err.str().find("(in-process)"), std::string::npos) << err.str();
  EXPECT_NE(err.str().find("batch: 2 instances, 2 ok"), std::string::npos);
}

TEST(BatchShardTest, BadWorkerBinaryReportsSpawnErrors) {
  std::vector<std::pair<std::string, std::string>> statuses;
  BatchAggregateStats stats;
  std::string error;
  std::ostringstream sink;
  BatchOptions options = ShardOptions(2);
  options.worker_binary = "/no/such/mintri/binary";
  const int failures = RunShardedBatch({"tpch:5", "tpch:7"}, options, sink,
                                       &statuses, &stats, &error);
  EXPECT_EQ(failures, 2) << error;
  for (const auto& [status, detail] : statuses) {
    // glibc reports the exec failure at spawn time; a libc that defers it
    // surfaces the conventional exit 127 as a crash. Either is truthful.
    EXPECT_TRUE(status == "worker-spawn-error" || status == "worker-crashed")
        << status << ": " << detail;
  }
}

}  // namespace
}  // namespace mintri
