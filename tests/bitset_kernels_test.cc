// Differential tests for the bitset kernel layer: the scalar reference
// implementation is the ground truth, and every other way of running a
// kernel — the AVX2 path (when this binary carries it and the CPU can run
// it) and the runtime-dispatched entry points — must be byte-identical to
// it over a randomized matrix of capacities, including non-multiple-of-64
// ones, plus adversarial patterns (all-zero, all-ones, equal, subset).
// VertexSet-level regressions ride along: tail-word hygiene after
// ResetAll/AssignComplementOf, hash-cache invalidation after each
// word-parallel kernel, and the cache-line alignment guarantee.

#include "graph/bitset_kernels.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/vertex_set.h"
#include "util/rng.h"

namespace mintri {
namespace {

using Words = std::vector<uint64_t>;

constexpr int kCapacities[] = {1, 63, 64, 65, 640, 1000};
constexpr int kRandomReps = 64;

size_t WordsFor(int capacity) { return (capacity + 63) / 64; }

Words RandomWords(Rng* rng, int capacity, double density) {
  Words w(WordsFor(capacity), 0);
  for (auto& word : w) {
    // Byte-granular density mask over random bits, so low/high densities
    // produce runs and gaps rather than uniform noise.
    uint64_t byte_mask = 0;
    for (int b = 0; b < 8; ++b) {
      if (rng->NextBool(density)) byte_mask |= uint64_t{0xff} << (b * 8);
    }
    word = byte_mask & rng->Next();
  }
  w.back() &= bitset::TailMask(capacity);
  return w;
}

// Runs `check(a, b)` over the randomized pattern matrix for one capacity:
// independent random pairs at several densities, equal pairs, subset
// pairs, and the all-zero / all-ones extremes.
template <typename Check>
void ForEachPair(int capacity, const Check& check) {
  Rng rng(0x5eedu + capacity);
  for (int rep = 0; rep < kRandomReps; ++rep) {
    const double density = rep % 3 == 0 ? 0.05 : (rep % 3 == 1 ? 0.5 : 0.95);
    Words a = RandomWords(&rng, capacity, density);
    Words b = RandomWords(&rng, capacity, density);
    check(a, b);
    check(a, a);  // equal operands
    Words sub = a;
    bitset::scalar::IntersectInto(sub.data(), b.data(), sub.size());
    check(sub, a);  // sub ⊆ a
  }
  const Words zero(WordsFor(capacity), 0);
  Words ones(WordsFor(capacity), 0);
  bitset::scalar::FillOnes(ones.data(), ones.size(),
                           bitset::TailMask(capacity));
  check(zero, ones);
  check(ones, zero);
  check(zero, zero);
  check(ones, ones);
}

// The differential harness: every mutating kernel is run on copies through
// each path, every predicate/reduction is compared by value.
struct KernelPaths {
  const char* name;
  void (*union_into)(uint64_t*, const uint64_t*, size_t);
  void (*assign_union)(uint64_t*, const uint64_t*, const uint64_t*, size_t);
  void (*intersect_into)(uint64_t*, const uint64_t*, size_t);
  void (*minus_into)(uint64_t*, const uint64_t*, size_t);
  void (*complement_into)(uint64_t*, const uint64_t*, size_t, uint64_t);
  void (*fill_ones)(uint64_t*, size_t, uint64_t);
  bool (*is_zero)(const uint64_t*, size_t);
  bool (*equal)(const uint64_t*, const uint64_t*, size_t);
  bool (*is_subset)(const uint64_t*, const uint64_t*, size_t);
  bool (*intersects)(const uint64_t*, const uint64_t*, size_t);
  int (*popcount)(const uint64_t*, size_t);
  int (*first_set)(const uint64_t*, size_t);
  uint64_t (*bfs_fused_step)(uint64_t*, uint64_t*, uint64_t*, uint64_t*,
                             const uint64_t*, size_t);
};

const KernelPaths kScalarPaths = {
    "scalar",
    bitset::scalar::UnionInto,
    bitset::scalar::AssignUnion,
    bitset::scalar::IntersectInto,
    bitset::scalar::MinusInto,
    bitset::scalar::ComplementInto,
    bitset::scalar::FillOnes,
    bitset::scalar::IsZero,
    bitset::scalar::Equal,
    bitset::scalar::IsSubset,
    bitset::scalar::Intersects,
    bitset::scalar::Popcount,
    bitset::scalar::FirstSet,
    bitset::scalar::BfsFusedStep,
};

const KernelPaths kDispatchedPaths = {
    "dispatched",
    bitset::UnionInto,
    bitset::AssignUnion,
    bitset::IntersectInto,
    bitset::MinusInto,
    bitset::ComplementInto,
    bitset::FillOnes,
    bitset::IsZero,
    bitset::Equal,
    bitset::IsSubset,
    bitset::Intersects,
    bitset::Popcount,
    bitset::FirstSet,
    bitset::BfsFusedStep,
};

#if MINTRI_HAVE_AVX2_KERNELS
const KernelPaths kAvx2Paths = {
    "avx2",
    bitset::avx2::UnionInto,
    bitset::avx2::AssignUnion,
    bitset::avx2::IntersectInto,
    bitset::avx2::MinusInto,
    bitset::avx2::ComplementInto,
    bitset::avx2::FillOnes,
    bitset::avx2::IsZero,
    bitset::avx2::Equal,
    bitset::avx2::IsSubset,
    bitset::avx2::Intersects,
    bitset::avx2::Popcount,
    bitset::avx2::FirstSet,
    bitset::avx2::BfsFusedStep,
};
#endif  // MINTRI_HAVE_AVX2_KERNELS

// Compares `paths` against the scalar reference over the full matrix.
void RunDifferential(const KernelPaths& paths) {
  for (int capacity : kCapacities) {
    SCOPED_TRACE(testing::Message()
                 << paths.name << " vs scalar, capacity " << capacity);
    const size_t n = WordsFor(capacity);
    const uint64_t tail = bitset::TailMask(capacity);
    ForEachPair(capacity, [&](const Words& a, const Words& b) {
      {
        Words got = a, want = a;
        paths.union_into(got.data(), b.data(), n);
        kScalarPaths.union_into(want.data(), b.data(), n);
        EXPECT_EQ(got, want);
      }
      {
        Words got(n, 0xdeadbeefu), want(n, 0xdeadbeefu);
        paths.assign_union(got.data(), a.data(), b.data(), n);
        kScalarPaths.assign_union(want.data(), a.data(), b.data(), n);
        EXPECT_EQ(got, want);
      }
      {
        Words got = a, want = a;
        paths.intersect_into(got.data(), b.data(), n);
        kScalarPaths.intersect_into(want.data(), b.data(), n);
        EXPECT_EQ(got, want);
      }
      {
        Words got = a, want = a;
        paths.minus_into(got.data(), b.data(), n);
        kScalarPaths.minus_into(want.data(), b.data(), n);
        EXPECT_EQ(got, want);
      }
      {
        Words got(n, 0), want(n, 0);
        paths.complement_into(got.data(), a.data(), n, tail);
        kScalarPaths.complement_into(want.data(), a.data(), n, tail);
        EXPECT_EQ(got, want);
        // Tail hygiene: bits above the capacity must come out zero.
        EXPECT_EQ(got.back() & ~tail, 0u);
      }
      {
        Words got(n, 0), want(n, 0);
        paths.fill_ones(got.data(), n, tail);
        kScalarPaths.fill_ones(want.data(), n, tail);
        EXPECT_EQ(got, want);
        EXPECT_EQ(got.back() & ~tail, 0u);
      }
      EXPECT_EQ(paths.is_zero(a.data(), n), kScalarPaths.is_zero(a.data(), n));
      EXPECT_EQ(paths.equal(a.data(), b.data(), n),
                kScalarPaths.equal(a.data(), b.data(), n));
      EXPECT_EQ(paths.is_subset(a.data(), b.data(), n),
                kScalarPaths.is_subset(a.data(), b.data(), n));
      EXPECT_EQ(paths.intersects(a.data(), b.data(), n),
                kScalarPaths.intersects(a.data(), b.data(), n));
      EXPECT_EQ(paths.popcount(a.data(), n),
                kScalarPaths.popcount(a.data(), n));
      EXPECT_EQ(paths.first_set(a.data(), n),
                kScalarPaths.first_set(a.data(), n));
      {
        // BFS step: a=reach, b=removed, component seeded with a ∩ b so the
        // step sees a mix of already-visited, removed, and fresh bits.
        Words comp = a;
        kScalarPaths.intersect_into(comp.data(), b.data(), n);
        Words comp_g = comp, comp_w = comp;
        Words front_g(n, 0), front_w(n, 0);
        Words nb_g = b, nb_w = b;
        Words reach_g = a, reach_w = a;
        const uint64_t any_g =
            paths.bfs_fused_step(comp_g.data(), front_g.data(), nb_g.data(),
                                 reach_g.data(), b.data(), n);
        const uint64_t any_w = kScalarPaths.bfs_fused_step(
            comp_w.data(), front_w.data(), nb_w.data(), reach_w.data(),
            b.data(), n);
        EXPECT_EQ(any_g != 0, any_w != 0);
        EXPECT_EQ(comp_g, comp_w);
        EXPECT_EQ(front_g, front_w);
        EXPECT_EQ(nb_g, nb_w);
        EXPECT_EQ(reach_g, reach_w);
      }
    });
  }
}

TEST(BitsetKernelsTest, DispatchedMatchesScalarEverywhere) {
  RunDifferential(kDispatchedPaths);
}

#if MINTRI_HAVE_AVX2_KERNELS
TEST(BitsetKernelsTest, Avx2MatchesScalarEverywhere) {
  if (!bitset::CpuHasAvx2()) {
    GTEST_SKIP() << "CPU lacks AVX2; the avx2:: path cannot execute here";
  }
  RunDifferential(kAvx2Paths);
}
#endif  // MINTRI_HAVE_AVX2_KERNELS

TEST(BitsetKernelsTest, DispatchReportsAConsistentPath) {
  if (bitset::UsingAvx2()) {
    EXPECT_TRUE(bitset::CompiledWithAvx2Kernels());
    EXPECT_TRUE(bitset::CpuHasAvx2());
    EXPECT_STREQ(bitset::ActiveKernelPath(), "avx2");
  } else {
    EXPECT_STREQ(bitset::ActiveKernelPath(), "scalar");
  }
}

TEST(BitsetKernelsTest, TailMask) {
  EXPECT_EQ(bitset::TailMask(64), ~uint64_t{0});
  EXPECT_EQ(bitset::TailMask(128), ~uint64_t{0});
  EXPECT_EQ(bitset::TailMask(1), uint64_t{1});
  EXPECT_EQ(bitset::TailMask(63), ~uint64_t{0} >> 1);
  EXPECT_EQ(bitset::TailMask(65), uint64_t{1});
}

TEST(BitsetKernelsTest, AlignWordsRoundsToCacheLines) {
  EXPECT_EQ(bitset::AlignWords(0), 0u);
  EXPECT_EQ(bitset::AlignWords(1), 8u);
  EXPECT_EQ(bitset::AlignWords(8), 8u);
  EXPECT_EQ(bitset::AlignWords(9), 16u);
}

// --- VertexSet-level regressions over the kernel layer -------------------

TEST(BitsetKernelsTest, WordStorageIsCacheLineAlignedFromSimdThresholdUp) {
  // The allocator only promises 64-byte alignment for buffers wide enough
  // to reach the SIMD path (>= kSimdMinWords words); narrower buffers
  // take the default allocator's fast path on purpose.
  for (int capacity : kCapacities) {
    VertexSet s(capacity);
    if (s.word_count() < bitset::kSimdMinWords) continue;
    EXPECT_EQ(reinterpret_cast<uintptr_t>(s.word_data()) % 64, 0u)
        << "capacity " << capacity;
  }
  bitset::WordVector packed(123, 0);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(packed.data()) % 64, 0u);
  using Alloc = bitset::AlignedAllocator<uint64_t, 64>;
  EXPECT_FALSE(Alloc::WantsAlignment(3));
  EXPECT_TRUE(Alloc::WantsAlignment(4));
}

TEST(BitsetKernelsTest, ResetAllAndComplementKeepTailBitsZero) {
  for (int capacity : kCapacities) {
    SCOPED_TRACE(testing::Message() << "capacity " << capacity);
    VertexSet s;
    s.ResetAll(capacity);
    EXPECT_EQ(s.Count(), capacity);
    EXPECT_EQ(s.word_data()[s.word_count() - 1] &
                  ~bitset::TailMask(capacity),
              0u);

    VertexSet c;
    c.AssignComplementOf(VertexSet(capacity));  // complement of empty = all
    EXPECT_EQ(c, s);
    EXPECT_EQ(c.word_data()[c.word_count() - 1] &
                  ~bitset::TailMask(capacity),
              0u);

    // Complement of the full set is empty — any stray tail bit would make
    // this nonzero.
    VertexSet e;
    e.AssignComplementOf(s);
    EXPECT_TRUE(e.Empty());
    EXPECT_EQ(e.Count(), 0);
  }
}

// Every word-parallel mutator must leave the cached hash either valid and
// correct or invalidated; equal element sets built through different
// operation sequences must agree on Hash().
TEST(BitsetKernelsTest, HashCacheSurvivesEveryWordParallelKernel) {
  for (int capacity : kCapacities) {
    SCOPED_TRACE(testing::Message() << "capacity " << capacity);
    Rng rng(0xabcdu + capacity);
    for (int rep = 0; rep < 8; ++rep) {
      VertexSet a(capacity), b(capacity);
      for (int v = 0; v < capacity; ++v) {
        if (rng.NextBool(0.3)) a.Insert(v);
        if (rng.NextBool(0.3)) b.Insert(v);
      }
      const auto check = [&](VertexSet s) {
        (void)s.Hash();  // warm the cache so staleness would be visible
        return s;
      };

      VertexSet u = check(a);
      u.UnionWith(b);
      EXPECT_EQ(u.Hash(), VertexSet::FromVector(capacity, u.ToVector()).Hash());

      VertexSet i = check(a);
      i.IntersectWith(b);
      EXPECT_EQ(i.Hash(), VertexSet::FromVector(capacity, i.ToVector()).Hash());

      VertexSet m = check(a);
      m.MinusWith(b);
      EXPECT_EQ(m.Hash(), VertexSet::FromVector(capacity, m.ToVector()).Hash());

      VertexSet au = check(a);
      au.AssignUnionOf(a, b);
      EXPECT_EQ(au.Hash(),
                VertexSet::FromVector(capacity, au.ToVector()).Hash());

      VertexSet ac = check(a);
      ac.AssignComplementOf(a);
      EXPECT_EQ(ac.Hash(),
                VertexSet::FromVector(capacity, ac.ToVector()).Hash());

      VertexSet ra = check(a);
      ra.ResetAll(capacity);
      EXPECT_EQ(ra.Hash(), VertexSet::All(capacity).Hash());
    }
  }
}

// VertexSet algebra must agree with the scalar kernels bit for bit, no
// matter which path dispatch takes underneath.
TEST(BitsetKernelsTest, VertexSetAlgebraMatchesScalarKernels) {
  for (int capacity : kCapacities) {
    SCOPED_TRACE(testing::Message() << "capacity " << capacity);
    Rng rng(0xf00du + capacity);
    for (int rep = 0; rep < 8; ++rep) {
      VertexSet a(capacity), b(capacity);
      for (int v = 0; v < capacity; ++v) {
        if (rng.NextBool(0.4)) a.Insert(v);
        if (rng.NextBool(0.4)) b.Insert(v);
      }
      const size_t n = a.word_count();

      Words want(a.word_data(), a.word_data() + n);
      bitset::scalar::UnionInto(want.data(), b.word_data(), n);
      VertexSet u = a.Union(b);
      EXPECT_TRUE(bitset::scalar::Equal(u.word_data(), want.data(), n));

      want.assign(a.word_data(), a.word_data() + n);
      bitset::scalar::IntersectInto(want.data(), b.word_data(), n);
      VertexSet i = a.Intersect(b);
      EXPECT_TRUE(bitset::scalar::Equal(i.word_data(), want.data(), n));

      want.assign(a.word_data(), a.word_data() + n);
      bitset::scalar::MinusInto(want.data(), b.word_data(), n);
      VertexSet m = a.Minus(b);
      EXPECT_TRUE(bitset::scalar::Equal(m.word_data(), want.data(), n));

      EXPECT_EQ(a.IsSubsetOf(b), bitset::scalar::IsSubset(
                                     a.word_data(), b.word_data(), n));
      EXPECT_EQ(a.Intersects(b), bitset::scalar::Intersects(
                                     a.word_data(), b.word_data(), n));
      EXPECT_EQ(a.Count(), bitset::scalar::Popcount(a.word_data(), n));
      EXPECT_EQ(a.First(), bitset::scalar::FirstSet(a.word_data(), n));
    }
  }
}

}  // namespace
}  // namespace mintri
