#include "triang/context.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace mintri {
namespace {

TEST(ContextTest, PaperExampleCounts) {
  Graph g = testutil::PaperExampleGraph();
  auto ctx = TriangulationContext::Build(g);
  ASSERT_TRUE(ctx.has_value());
  EXPECT_EQ(ctx->minimal_separators().size(), 3u);
  EXPECT_EQ(ctx->pmcs().size(), 6u);
  // Full blocks: S1 has 2, S2 has 3, S3 has 2 -> 7.
  EXPECT_EQ(ctx->blocks().size(), 7u);
  EXPECT_EQ(ctx->root_candidates().size(), 6u);
  EXPECT_GT(ctx->init_seconds(), 0.0);
}

TEST(ContextTest, BlocksSortedAscending) {
  Graph g = workloads::Grid(3, 3);
  auto ctx = TriangulationContext::Build(g);
  ASSERT_TRUE(ctx.has_value());
  for (size_t i = 1; i < ctx->blocks().size(); ++i) {
    EXPECT_LE(ctx->blocks()[i - 1].vertices.Count(),
              ctx->blocks()[i].vertices.Count());
  }
}

TEST(ContextTest, ChildrenAreStrictlySmallerBlocks) {
  for (int seed = 0; seed < 8; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(9, 0.3, 8000 + seed);
    auto ctx = TriangulationContext::Build(g);
    ASSERT_TRUE(ctx.has_value());
    for (size_t i = 0; i < ctx->blocks().size(); ++i) {
      const auto& block = ctx->blocks()[i];
      ASSERT_EQ(block.candidate_pmcs.size(), block.children.size());
      for (size_t k = 0; k < block.candidate_pmcs.size(); ++k) {
        const VertexSet& omega = ctx->pmcs()[block.candidate_pmcs[k]];
        // S ⊂ Ω ⊆ S ∪ C.
        EXPECT_TRUE(block.separator.IsSubsetOf(omega));
        EXPECT_NE(block.separator, omega);
        EXPECT_TRUE(omega.IsSubsetOf(block.vertices));
        for (int cid : block.children[k]) {
          const auto& child = ctx->blocks()[cid];
          EXPECT_LT(child.vertices.Count(), block.vertices.Count());
          EXPECT_TRUE(child.vertices.IsSubsetOf(block.vertices));
          // The child's separator is contained in Ω.
          EXPECT_TRUE(child.separator.IsSubsetOf(omega));
        }
      }
    }
  }
}

TEST(ContextTest, EveryBlockHasACandidate) {
  // Theorem 5.4 guarantees every full-block realization has a minimal
  // triangulation topped by a PMC of G.
  for (int seed = 0; seed < 8; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(10, 0.25, 9000 + seed);
    auto ctx = TriangulationContext::Build(g);
    ASSERT_TRUE(ctx.has_value());
    for (const auto& block : ctx->blocks()) {
      EXPECT_FALSE(block.candidate_pmcs.empty())
          << "block " << block.vertices.ToString() << " separator "
          << block.separator.ToString();
    }
  }
}

TEST(ContextTest, SeparatorLimitsReported) {
  Graph g = workloads::Grid(4, 4);
  ContextOptions options;
  options.separator_limits.max_results = 3;
  EXPECT_FALSE(TriangulationContext::Build(g, options).has_value());
}

TEST(ContextTest, BuildInfoOnSuccess) {
  Graph g = testutil::PaperExampleGraph();
  ContextBuildInfo info;
  auto ctx = TriangulationContext::Build(g, {}, &info);
  ASSERT_TRUE(ctx.has_value());
  EXPECT_EQ(info.termination, ContextBuildInfo::Termination::kCompleted);
  EXPECT_STREQ(info.TerminationName(), "completed");
  EXPECT_EQ(info.num_minseps, 3u);
  EXPECT_EQ(info.num_pmcs, 6u);
  EXPECT_EQ(info.num_blocks, 7u);
  EXPECT_GT(info.total_seconds, 0.0);
  EXPECT_GE(info.total_seconds, info.minsep_seconds);
  EXPECT_GE(info.total_seconds, info.pmc_seconds);
  // The context carries the same breakdown.
  EXPECT_EQ(ctx->build_info().num_pmcs, 6u);
  EXPECT_EQ(ctx->init_seconds(), ctx->build_info().total_seconds);
}

TEST(ContextTest, BuildInfoReportsMsTermination) {
  Graph g = workloads::Grid(4, 4);
  ContextOptions options;
  options.separator_limits.max_results = 3;
  ContextBuildInfo info;
  EXPECT_FALSE(TriangulationContext::Build(g, options, &info).has_value());
  EXPECT_EQ(info.termination, ContextBuildInfo::Termination::kMsTerminated);
  EXPECT_STREQ(info.TerminationName(), "ms-terminated");
  EXPECT_GT(info.total_seconds, 0.0);
  EXPECT_EQ(info.num_pmcs, 0u);  // the PMC stage never ran
}

TEST(ContextTest, BuildInfoReportsPmcTermination) {
  Graph g = workloads::Grid(4, 4);
  ContextOptions options;
  options.pmc_limits.max_results = 2;
  ContextBuildInfo info;
  EXPECT_FALSE(TriangulationContext::Build(g, options, &info).has_value());
  EXPECT_EQ(info.termination, ContextBuildInfo::Termination::kPmcTerminated);
  EXPECT_STREQ(info.TerminationName(), "pmc-terminated");
  EXPECT_GT(info.num_minseps, 0u);  // the separator stage completed
}

TEST(ContextTest, ParallelBuildIsIdentical) {
  // The num_threads knob must not change a single byte of the context:
  // separator/PMC stages are deterministic-complete and the Step-4 wiring
  // merges in serial order regardless of which worker computed it.
  std::vector<Graph> graphs = {workloads::Grid(4, 4), workloads::Grid(3, 5)};
  for (int seed = 0; seed < 3; ++seed) {
    graphs.push_back(workloads::ConnectedErdosRenyi(14, 0.3, 61000 + seed));
  }
  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    const Graph& g = graphs[gi];
    auto serial = TriangulationContext::Build(g);
    ContextOptions parallel_options;
    parallel_options.num_threads = 4;
    auto parallel = TriangulationContext::Build(g, parallel_options);
    ASSERT_TRUE(serial.has_value() && parallel.has_value());
    EXPECT_EQ(serial->minimal_separators(), parallel->minimal_separators());
    EXPECT_EQ(serial->pmcs(), parallel->pmcs());
    EXPECT_EQ(serial->root_candidates(), parallel->root_candidates());
    EXPECT_EQ(serial->root_children(), parallel->root_children());
    ASSERT_EQ(serial->blocks().size(), parallel->blocks().size());
    for (size_t i = 0; i < serial->blocks().size(); ++i) {
      const auto& a = serial->blocks()[i];
      const auto& b = parallel->blocks()[i];
      EXPECT_EQ(a.separator, b.separator) << "graph " << gi << " block " << i;
      EXPECT_EQ(a.component, b.component);
      EXPECT_EQ(a.vertices, b.vertices);
      EXPECT_EQ(a.candidate_pmcs, b.candidate_pmcs);
      EXPECT_EQ(a.children, b.children);
    }
    for (size_t i = 0; i < serial->minimal_separators().size(); ++i) {
      EXPECT_EQ(parallel->SeparatorId(serial->minimal_separators()[i]),
                static_cast<int>(i));
    }
  }
}

TEST(ContextTest, ParallelBoundedBuildIsIdentical) {
  Graph g = workloads::Grid(4, 4);
  ContextOptions serial_options;
  serial_options.width_bound = 4;
  auto serial = TriangulationContext::Build(g, serial_options);
  ContextOptions parallel_options = serial_options;
  parallel_options.num_threads = 4;
  auto parallel = TriangulationContext::Build(g, parallel_options);
  ASSERT_TRUE(serial.has_value() && parallel.has_value());
  EXPECT_EQ(serial->minimal_separators(), parallel->minimal_separators());
  EXPECT_EQ(serial->pmcs(), parallel->pmcs());
  EXPECT_EQ(serial->root_candidates(), parallel->root_candidates());
  ASSERT_EQ(serial->blocks().size(), parallel->blocks().size());
  for (size_t i = 0; i < serial->blocks().size(); ++i) {
    EXPECT_EQ(serial->blocks()[i].candidate_pmcs,
              parallel->blocks()[i].candidate_pmcs);
    EXPECT_EQ(serial->blocks()[i].children, parallel->blocks()[i].children);
  }
}

TEST(ContextTest, SeparatorIdRoundTrip) {
  Graph g = testutil::PaperExampleGraph();
  auto ctx = TriangulationContext::Build(g);
  ASSERT_TRUE(ctx.has_value());
  for (size_t i = 0; i < ctx->minimal_separators().size(); ++i) {
    EXPECT_EQ(ctx->SeparatorId(ctx->minimal_separators()[i]),
              static_cast<int>(i));
  }
  EXPECT_EQ(ctx->SeparatorId(VertexSet::Of(6, {0, 2})), -1);
}

TEST(ContextTest, BoundedContextFiltersSizes) {
  Graph g = workloads::Grid(3, 3);
  ContextOptions options;
  options.width_bound = 3;
  auto ctx = TriangulationContext::Build(g, options);
  ASSERT_TRUE(ctx.has_value());
  for (const VertexSet& s : ctx->minimal_separators()) {
    EXPECT_LE(s.Count(), 3);
  }
  for (const VertexSet& p : ctx->pmcs()) EXPECT_LE(p.Count(), 4);
}

}  // namespace
}  // namespace mintri
