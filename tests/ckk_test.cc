#include "enumeration/ckk.h"

#include <gtest/gtest.h>

#include <set>

#include "chordal/minimality.h"
#include "cost/standard_costs.h"
#include "test_util.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace mintri {
namespace {

std::vector<Triangulation> Drain(CkkEnumerator& e, size_t cap = 100000) {
  std::vector<Triangulation> out;
  while (out.size() < cap) {
    auto t = e.Next();
    if (!t.has_value()) break;
    out.push_back(std::move(*t));
  }
  return out;
}

TEST(CkkTest, PaperExampleFindsBothTriangulations) {
  Graph g = testutil::PaperExampleGraph();
  CkkEnumerator e(g);
  auto all = Drain(e);
  ASSERT_EQ(all.size(), 2u);
  std::set<int> widths;
  for (const auto& t : all) {
    EXPECT_TRUE(IsMinimalTriangulation(g, t.filled));
    widths.insert(t.Width());
  }
  EXPECT_EQ(widths, (std::set<int>{2, 3}));
}

TEST(CkkTest, ChordalGraphYieldsItself) {
  Graph g = workloads::Path(6);
  CkkEnumerator e(g);
  auto all = Drain(e);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].filled, g);
}

TEST(CkkTest, CompleteGraphYieldsItself) {
  Graph g = workloads::Complete(5);
  CkkEnumerator e(g);
  auto all = Drain(e);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].FillIn(g), 0);
}

class CkkPropertyTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(CkkPropertyTest, CompleteAndDuplicateFree) {
  auto [n, seed] = GetParam();
  double p = 0.2 + 0.07 * (seed % 6);
  Graph g = workloads::ConnectedErdosRenyi(n, p, 30000 + seed);
  CkkEnumerator e(g);
  auto all = Drain(e);
  std::set<testutil::FillSet> produced;
  for (const auto& t : all) {
    EXPECT_TRUE(IsMinimalTriangulation(g, t.filled));
    EXPECT_TRUE(produced.insert(t.FillEdgesSorted(g)).second)
        << "duplicate CKK result";
  }
  EXPECT_EQ(produced, testutil::BruteForceMinimalTriangulationFills(g))
      << "n=" << n << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, CkkPropertyTest,
    ::testing::Combine(::testing::Values(5, 6, 7, 8),
                       ::testing::Range(0, 8)));

TEST(CkkTest, CostAnnotationWhenRequested) {
  Graph g = workloads::Cycle(5);
  WidthCost width;
  CkkEnumerator e(g, &width);
  auto all = Drain(e);
  EXPECT_GT(all.size(), 1u);
  for (const auto& t : all) {
    EXPECT_EQ(t.cost, width.Evaluate(g, t.bags));
  }
}

TEST(CkkTest, FillSetDedupSurvivesHashCollisions) {
  // Regression: the enumerator used to dedup printed triangulations on the
  // bare 64-bit fill-set hash, so a collision silently dropped a distinct
  // minimal triangulation. Force every hash to collide and check that the
  // fill sets themselves are still told apart.
  FillSetDedup dedup([](const FillSetDedup::FillSet&) { return size_t{42}; });
  FillSetDedup::FillSet a = {{0, 1}};
  FillSetDedup::FillSet b = {{0, 2}};
  FillSetDedup::FillSet c = {{0, 1}, {1, 2}};
  EXPECT_TRUE(dedup.Insert(a));
  EXPECT_TRUE(dedup.Insert(b));  // same hash, different fill set
  EXPECT_TRUE(dedup.Insert(c));
  EXPECT_FALSE(dedup.Insert(a));
  EXPECT_FALSE(dedup.Insert(b));
  EXPECT_FALSE(dedup.Insert(c));
  EXPECT_EQ(dedup.Size(), 3u);

  // The production hash separates these (sanity, not a guarantee).
  EXPECT_NE(FillSetDedup::DefaultHash(a), FillSetDedup::DefaultHash(b));
}

TEST(CkkTest, NoOrderGuaranteeButCountsTriangulatorCalls) {
  Graph g = workloads::Grid(3, 3);
  CkkEnumerator e(g);
  int produced = 0;
  while (produced < 20) {
    if (!e.Next().has_value()) break;
    ++produced;
  }
  EXPECT_GT(produced, 5);
  EXPECT_GE(e.num_triangulator_calls(), produced);
}

}  // namespace
}  // namespace mintri
