// The batched multi-query driver: instances fan across the thread pool
// (parallel across queries), yet the records — and the serialized JSON —
// must be identical at every --threads / inner-threads split.

#include "cli/batch.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mintri {
namespace {

// Serialization with wall-clock timings masked: every ranked result, count,
// and cache statistic must be thread-count-invariant; elapsed seconds are
// not.
std::string Serialize(std::vector<BatchRecord> records) {
  for (BatchRecord& r : records) {
    r.init_seconds = 0;
    r.preprocess_seconds = 0;
    r.tier1_seconds = 0;
    r.tier2_seconds = 0;
  }
  std::ostringstream os;
  WriteBatchJson(records, os);
  return os.str();
}

std::vector<std::string> TpchSpecs() {
  return {"tpch:2", "tpch:5", "tpch:7", "tpch:8", "tpch:9", "tpch:20"};
}

TEST(BatchTest, DeterministicAcrossThreadCounts) {
  for (const char* cost : {"fhw", "hypertree"}) {
    BatchOptions options;
    options.cost = cost;
    options.top = 3;
    options.threads = 1;
    std::string serial = Serialize(RunBatch(TpchSpecs(), options));
    for (int threads : {2, 4, 8}) {
      options.threads = threads;
      EXPECT_EQ(Serialize(RunBatch(TpchSpecs(), options)), serial)
          << cost << " at " << threads << " threads";
    }
  }
}

TEST(BatchTest, DeterministicAcrossInnerThreads) {
  BatchOptions options;
  options.cost = "fhw";
  options.top = 2;
  options.threads = 2;
  options.inner_threads = 1;
  std::string serial = Serialize(RunBatch(TpchSpecs(), options));
  options.inner_threads = 4;
  EXPECT_EQ(Serialize(RunBatch(TpchSpecs(), options)), serial);
}

TEST(BatchTest, StateSpaceOverGraphicalModels) {
  std::vector<std::string> specs = {"gm:grid3x3", "gm:chain10", "gm:bn12",
                                    "gm:bn16", "gm:grid4x3"};
  BatchOptions options;
  options.cost = "state-space";
  options.top = 2;
  options.threads = 1;
  std::vector<BatchRecord> serial = RunBatch(specs, options);
  ASSERT_EQ(serial.size(), specs.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].instance, specs[i]);
    EXPECT_EQ(serial[i].status, "ok") << serial[i].error;
    EXPECT_FALSE(serial[i].results.empty());
    // state-space ranks by the junction-tree table total: positive and
    // nondecreasing within an instance.
    double last = 0;
    for (const BatchRecord::Row& row : serial[i].results) {
      EXPECT_GT(row.cost, 0.0);
      EXPECT_GE(row.cost, last);
      last = row.cost;
    }
  }
  options.threads = 4;
  EXPECT_EQ(Serialize(RunBatch(specs, options)), Serialize(serial));
}

TEST(BatchTest, CacheHitsReportedForEdgeCoverCosts) {
  BatchOptions options;
  options.cost = "fhw";
  options.top = 5;
  std::vector<BatchRecord> records = RunBatch({"tpch:5"}, options);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].status, "ok");
  EXPECT_GT(records[0].cache_lookups, 0);
  EXPECT_GT(records[0].cache_hits, 0);

  options.cache = false;
  records = RunBatch({"tpch:5"}, options);
  EXPECT_EQ(records[0].cache_lookups, 0);
  EXPECT_EQ(records[0].cache_hits, 0);
}

TEST(BatchTest, BadSpecsAreRecordedNotFatal) {
  BatchOptions options;
  options.threads = 3;
  std::vector<BatchRecord> records = RunBatch(
      {"tpch:5", "no-such-file.gr", "tpch:99", "gm:nope"}, options);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].status, "ok");
  EXPECT_EQ(records[1].status, "load-error");
  EXPECT_EQ(records[2].status, "load-error");
  EXPECT_EQ(records[3].status, "load-error");
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_FALSE(records[i].error.empty());
    EXPECT_TRUE(records[i].results.empty());
  }
}

TEST(BatchTest, JsonShape) {
  BatchOptions options;
  options.cost = "fhw";
  options.top = 1;
  std::string json = Serialize(RunBatch({"tpch:5"}, options));
  for (const char* key :
       {"\"instance\": \"tpch:5\"", "\"cost\": \"fhw\"",
        "\"status\": \"ok\"", "\"cache_lookups\": ", "\"cache_hits\": ",
        "\"results\": [{\"rank\": 1, "}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
}

}  // namespace
}  // namespace mintri
