#include "inference/junction_tree.h"

#include <gtest/gtest.h>

#include "cost/standard_costs.h"
#include "enumeration/ranked_enum.h"
#include "util/rng.h"
#include "workloads/named_graphs.h"

namespace mintri {
namespace {

Factor RandomFactor(std::vector<int> scope, const std::vector<int>& domains,
                    Rng* rng) {
  Factor f = Factor::Ones(std::move(scope), domains);
  for (double& v : f.table) v = 0.1 + rng->NextDouble();
  return f;
}

TEST(FactorTest, MultiplyDisjointScopesIsOuterProduct) {
  std::vector<int> domains = {2, 3};
  Factor a{{0}, {2.0, 5.0}};
  Factor b{{1}, {1.0, 10.0, 100.0}};
  Factor p = Multiply(a, b, domains);
  EXPECT_EQ(p.scope, (std::vector<int>{0, 1}));
  ASSERT_EQ(p.table.size(), 6u);
  EXPECT_DOUBLE_EQ(p.table[0], 2.0);    // (0,0)
  EXPECT_DOUBLE_EQ(p.table[2], 200.0);  // (0,2)
  EXPECT_DOUBLE_EQ(p.table[5], 500.0);  // (1,2)
}

TEST(FactorTest, MultiplySharedScope) {
  std::vector<int> domains = {2};
  Factor a{{0}, {2.0, 3.0}};
  Factor b{{0}, {10.0, 100.0}};
  Factor p = Multiply(a, b, domains);
  EXPECT_EQ(p.table, (std::vector<double>{20.0, 300.0}));
}

TEST(FactorTest, MarginalizeSumsOut) {
  std::vector<int> domains = {2, 2};
  Factor f{{0, 1}, {1.0, 2.0, 3.0, 4.0}};
  Factor m0 = MarginalizeTo(f, {0}, domains);
  EXPECT_EQ(m0.table, (std::vector<double>{3.0, 7.0}));
  Factor m1 = MarginalizeTo(f, {1}, domains);
  EXPECT_EQ(m1.table, (std::vector<double>{4.0, 6.0}));
  Factor z = MarginalizeTo(f, {}, domains);
  EXPECT_EQ(z.table, (std::vector<double>{10.0}));
  EXPECT_DOUBLE_EQ(TotalMass(f), 10.0);
}

TEST(JunctionTreeTest, IndependentVariables) {
  std::vector<int> domains = {2, 2};
  std::vector<Factor> factors = {{{0}, {1.0, 3.0}}, {{1}, {2.0, 2.0}}};
  JunctionTreeInference model(domains, factors);
  TreeDecomposition td;
  td.bags = {VertexSet::Of(2, {0}), VertexSet::Of(2, {1})};
  td.edges = {{0, 1}};
  auto r = model.Run(td);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->partition_function, 16.0, 1e-9);  // (1+3)*(2+2)
  EXPECT_NEAR(r->marginals[0][1], 0.75, 1e-9);
  EXPECT_NEAR(r->marginals[1][0], 0.5, 1e-9);
}

TEST(JunctionTreeTest, RejectsNonCoveringDecomposition) {
  std::vector<int> domains = {2, 2};
  std::vector<Factor> factors = {{{0, 1}, {1.0, 2.0, 3.0, 4.0}}};
  JunctionTreeInference model(domains, factors);
  TreeDecomposition td;
  td.bags = {VertexSet::Of(2, {0}), VertexSet::Of(2, {1})};
  td.edges = {{0, 1}};
  EXPECT_FALSE(model.Run(td).has_value());
}

class JunctionTreeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(JunctionTreeRandomTest, MatchesBruteForceOnRandomGridModels) {
  Rng rng(GetParam());
  const int rows = 2 + GetParam() % 2, cols = 3;
  Graph g = workloads::Grid(rows, cols);
  std::vector<int> domains(g.NumVertices(), 2 + GetParam() % 2);
  std::vector<Factor> factors;
  for (const auto& [u, v] : g.Edges()) {
    factors.push_back(RandomFactor({u, v}, domains, &rng));
  }
  for (int v = 0; v < g.NumVertices(); ++v) {
    factors.push_back(RandomFactor({v}, domains, &rng));
  }
  JunctionTreeInference model(domains, factors);
  EXPECT_EQ(model.MarkovGraph(), g);

  // Run inference on EVERY proper tree decomposition (ranked by state
  // space): all must agree with brute force.
  auto ctx = TriangulationContext::Build(g);
  ASSERT_TRUE(ctx.has_value());
  std::vector<double> dd(domains.begin(), domains.end());
  TotalStateSpaceCost cost(dd);
  RankedTriangulationEnumerator e(*ctx, cost);
  auto brute = model.BruteForce();
  int checked = 0;
  double last_tables = 0;
  while (checked < 5) {
    auto t = e.Next();
    if (!t.has_value()) break;
    auto r = model.Run(CliqueTreeOf(*t));
    ASSERT_TRUE(r.has_value());
    EXPECT_NEAR(r->partition_function / brute.partition_function, 1.0, 1e-9);
    for (int v = 0; v < g.NumVertices(); ++v) {
      for (int x = 0; x < domains[v]; ++x) {
        EXPECT_NEAR(r->marginals[v][x], brute.marginals[v][x], 1e-9);
      }
    }
    // The decomposition's DP cost is exactly the inference table total.
    EXPECT_NEAR(r->total_table_entries, t->cost, 1e-9);
    EXPECT_GE(r->total_table_entries, last_tables - 1e-9);  // ranked
    last_tables = r->total_table_entries;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JunctionTreeRandomTest,
                         ::testing::Range(0, 6));

// Regression: a zero partition function used to yield silently all-zero
// "marginals" with no indication anything was wrong. The degenerate case
// must be signalled explicitly, by both inference paths.
TEST(JunctionTreeTest, ZeroPartitionFunctionIsSignalled) {
  std::vector<int> domains = {2, 2};
  std::vector<Factor> factors = {{{0, 1}, {0.0, 0.0, 0.0, 0.0}}};
  JunctionTreeInference model(domains, factors);
  TreeDecomposition td;
  td.bags = {VertexSet::Of(2, {0, 1})};
  auto r = model.Run(td);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->degenerate);
  EXPECT_EQ(r->partition_function, 0.0);
  auto brute = model.BruteForce();
  EXPECT_TRUE(brute.degenerate);
  EXPECT_EQ(brute.partition_function, 0.0);
  // A well-posed model reports non-degenerate through both paths.
  std::vector<Factor> ok = {{{0, 1}, {1.0, 2.0, 3.0, 4.0}}};
  JunctionTreeInference good(domains, ok);
  EXPECT_FALSE(good.BruteForce().degenerate);
  EXPECT_FALSE(good.Run(td)->degenerate);
}

// Regression: the flat indices both inference paths compute are bounded by
// the product of each scope's domains, so a factor whose table size
// disagrees with its scope used to read out of bounds (caught by ASan on
// the old code). BruteForce reports the mismatch as degenerate (its
// signature has no failure channel); Run rejects the model outright.
TEST(JunctionTreeTest, MismatchedFactorTablesAreRejected) {
  std::vector<int> domains = {2, 2};
  std::vector<Factor> factors = {{{0, 1}, {1.0, 2.0}}};  // should be 4 wide
  JunctionTreeInference model(domains, factors);
  auto r = model.BruteForce();
  EXPECT_TRUE(r.degenerate);
  EXPECT_EQ(r.partition_function, 0.0);
  TreeDecomposition td;
  td.bags = {VertexSet::Of(2, {0, 1})};
  EXPECT_FALSE(model.Run(td).has_value());
}

TEST(JunctionTreeTest, ForestModel) {
  // Disconnected model: two independent pairs.
  std::vector<int> domains = {2, 2, 2, 2};
  std::vector<Factor> factors = {{{0, 1}, {1, 0, 0, 1}},
                                 {{2, 3}, {2, 1, 1, 2}}};
  JunctionTreeInference model(domains, factors);
  TreeDecomposition td;
  td.bags = {VertexSet::Of(4, {0, 1}), VertexSet::Of(4, {2, 3})};
  td.edges = {{0, 1}};  // empty adhesion joins the components
  auto r = model.Run(td);
  ASSERT_TRUE(r.has_value());
  auto brute = model.BruteForce();
  EXPECT_NEAR(r->partition_function, brute.partition_function, 1e-9);
}

}  // namespace
}  // namespace mintri
