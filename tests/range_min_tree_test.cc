// RangeMinTree is the data structure under the solver's candidate index; its
// contract is not just "a minimum" but the *first* minimum — the same leaf a
// left-to-right "first strict improvement wins" scan picks. These tests pin
// that tie-break against a naive scan under randomized builds, point
// updates (including ∞ kills and revivals), and sub-range queries.

#include "util/range_min_tree.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace mintri {
namespace {

// The reference semantics: leftmost index of the minimum value.
int NaiveMinIndex(const std::vector<CostValue>& values, int begin, int end) {
  int best = -1;
  for (int i = begin; i < end; ++i) {
    if (best < 0 || values[i] < values[best]) best = i;
  }
  return best;
}

TEST(RangeMinTreeTest, EmptyTreeReportsNoMin) {
  RangeMinTree tree;
  EXPECT_EQ(tree.size(), 0);
  EXPECT_EQ(tree.MinIndex(), -1);
}

TEST(RangeMinTreeTest, TiesResolveToLowestIndex) {
  RangeMinTree tree(std::vector<CostValue>{3, 1, 2, 1, 1});
  EXPECT_EQ(tree.MinIndex(), 1);
  EXPECT_EQ(tree.MinIndex(2, 5), 3);
  // Updating a later leaf to the same minimum must not steal the win.
  tree.Update(4, 1);
  EXPECT_EQ(tree.MinIndex(), 1);
  // Killing the leader hands the min to the next-lowest tied index.
  tree.Update(1, kInfiniteCost);
  EXPECT_EQ(tree.MinIndex(), 3);
}

TEST(RangeMinTreeTest, AllInfiniteStillReportsLeafZero) {
  // The solver treats an infinite minimum as "no feasible candidate"; the
  // padding leaves (also ∞) must never win over a real leaf.
  RangeMinTree tree(std::vector<CostValue>(5, kInfiniteCost));
  EXPECT_EQ(tree.MinIndex(), 0);
  EXPECT_EQ(tree.MinIndex(3, 5), 3);
}

TEST(RangeMinTreeTest, RandomizedAgainstNaiveScan) {
  Rng rng(0x7ee5);
  for (int round = 0; round < 60; ++round) {
    const int n = rng.NextInt(1, 33);  // crosses power-of-two boundaries
    std::vector<CostValue> values(n);
    for (CostValue& v : values) {
      // Small integer range forces plenty of ties; occasional ∞ models
      // blocked candidates.
      v = rng.NextBool(0.15) ? kInfiniteCost
                             : static_cast<CostValue>(rng.NextInt(0, 6));
    }
    RangeMinTree tree(values);
    ASSERT_EQ(tree.size(), n);
    for (int step = 0; step < 40; ++step) {
      const int k = rng.NextInt(0, n - 1);
      const CostValue v = rng.NextBool(0.25)
                              ? kInfiniteCost
                              : static_cast<CostValue>(rng.NextInt(0, 6));
      tree.Update(k, v);
      values[k] = v;
      ASSERT_EQ(tree.ValueAt(k), v);
      ASSERT_EQ(tree.MinIndex(), NaiveMinIndex(values, 0, n))
          << "round " << round << " step " << step;
      const int begin = rng.NextInt(0, n - 1);
      const int end = rng.NextInt(begin + 1, n);
      ASSERT_EQ(tree.MinIndex(begin, end), NaiveMinIndex(values, begin, end))
          << "round " << round << " step " << step << " range [" << begin
          << ", " << end << ")";
    }
  }
}

}  // namespace
}  // namespace mintri
