#include "separators/minimal_separators.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "separators/crossing.h"
#include "test_util.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace mintri {
namespace {

using testutil::MakeGraph;

std::vector<VertexSet> Sorted(std::vector<VertexSet> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(MinimalSeparatorsTest, PaperExampleHasExactlyThree) {
  Graph g = testutil::PaperExampleGraph();
  auto result = ListMinimalSeparators(g);
  EXPECT_EQ(result.status, EnumerationStatus::kComplete);
  auto seps = Sorted(result.separators);
  // S1 = {w1,w2,w3} = {3,4,5}, S2 = {u,v} = {0,1}, S3 = {v} = {1}.
  ASSERT_EQ(seps.size(), 3u);
  std::vector<VertexSet> expected = Sorted({VertexSet::Of(6, {3, 4, 5}),
                                            VertexSet::Of(6, {0, 1}),
                                            VertexSet::Of(6, {1})});
  EXPECT_EQ(seps, expected);
}

TEST(MinimalSeparatorsTest, IsMinimalSeparatorBasics) {
  Graph g = workloads::Path(5);
  EXPECT_TRUE(IsMinimalSeparator(g, VertexSet::Of(5, {2})));
  EXPECT_FALSE(IsMinimalSeparator(g, VertexSet::Of(5, {0})));
  EXPECT_FALSE(IsMinimalSeparator(g, VertexSet::Of(5, {1, 2})));  // not min
  EXPECT_FALSE(IsMinimalSeparator(g, VertexSet(5)));              // empty
  EXPECT_FALSE(IsMinimalSeparator(workloads::Complete(4),
                                  VertexSet::Of(4, {0, 1})));
}

TEST(MinimalSeparatorsTest, SeparatorCanContainAnother) {
  // The paper's Example 2.4: S3 = {v} ⊊ S2 = {u,v} are both minimal.
  Graph g = testutil::PaperExampleGraph();
  EXPECT_TRUE(IsMinimalSeparator(g, VertexSet::Of(6, {1})));
  EXPECT_TRUE(IsMinimalSeparator(g, VertexSet::Of(6, {0, 1})));
}

TEST(MinimalSeparatorsTest, CompleteGraphHasNone) {
  auto result = ListMinimalSeparators(workloads::Complete(5));
  EXPECT_TRUE(result.separators.empty());
  EXPECT_EQ(result.status, EnumerationStatus::kComplete);
}

TEST(MinimalSeparatorsTest, CycleHasAllNonAdjacentPairs) {
  // C_n: minimal separators are exactly the n(n-3)/2 pairs of non-adjacent
  // vertices.
  for (int n = 4; n <= 8; ++n) {
    auto result = ListMinimalSeparators(workloads::Cycle(n));
    EXPECT_EQ(result.separators.size(),
              static_cast<size_t>(n * (n - 3) / 2))
        << "C" << n;
  }
}

class SeparatorsVsBruteForce
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SeparatorsVsBruteForce, BerryBordatCogisIsComplete) {
  auto [n, seed] = GetParam();
  double p = 0.2 + 0.05 * (seed % 8);
  Graph g = workloads::ConnectedErdosRenyi(n, p, 1000 + seed);
  auto fast = Sorted(ListMinimalSeparators(g).separators);
  auto brute = Sorted(MinimalSeparatorsBruteForce(g));
  EXPECT_EQ(fast, brute) << "n=" << n << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, SeparatorsVsBruteForce,
    ::testing::Combine(::testing::Values(5, 6, 7, 8, 9),
                       ::testing::Range(0, 8)));

TEST(MinimalSeparatorsTest, BoundedEnumerationMatchesFilteredBruteForce) {
  for (int seed = 0; seed < 12; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(9, 0.3, 2000 + seed);
    for (int bound = 1; bound <= 4; ++bound) {
      auto bounded = Sorted(ListMinimalSeparatorsBounded(g, bound).separators);
      std::vector<VertexSet> expected;
      for (const VertexSet& s : MinimalSeparatorsBruteForce(g)) {
        if (s.Count() <= bound) expected.push_back(s);
      }
      expected = Sorted(std::move(expected));
      EXPECT_EQ(bounded, expected) << "seed=" << seed << " bound=" << bound;
    }
  }
}

TEST(MinimalSeparatorsTest, MaxResultsLimitTruncates) {
  EnumerationLimits limits;
  limits.max_results = 3;
  auto result = ListMinimalSeparators(workloads::Cycle(8), limits);
  EXPECT_EQ(result.status, EnumerationStatus::kTruncated);
  EXPECT_LE(result.separators.size(), 3u);
}

TEST(CrossingTest, PaperExampleCrossings) {
  Graph g = testutil::PaperExampleGraph();
  VertexSet s1 = VertexSet::Of(6, {3, 4, 5});  // {w1,w2,w3}
  VertexSet s2 = VertexSet::Of(6, {0, 1});     // {u,v}
  VertexSet s3 = VertexSet::Of(6, {1});        // {v}
  EXPECT_TRUE(AreCrossing(g, s1, s2));
  EXPECT_TRUE(AreCrossing(g, s2, s1));  // symmetry
  EXPECT_TRUE(AreParallel(g, s1, s3));
  EXPECT_TRUE(AreParallel(g, s2, s3));
  EXPECT_TRUE(AreParallel(g, s3, s3));
}

TEST(CrossingTest, CrossingIsSymmetricOnRandomGraphs) {
  for (int seed = 0; seed < 10; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(8, 0.3, 3000 + seed);
    auto seps = ListMinimalSeparators(g).separators;
    for (size_t i = 0; i < seps.size(); ++i) {
      for (size_t j = i + 1; j < seps.size(); ++j) {
        EXPECT_EQ(AreParallel(g, seps[i], seps[j]),
                  AreParallel(g, seps[j], seps[i]))
            << seps[i].ToString() << " vs " << seps[j].ToString();
      }
    }
  }
}

TEST(CrossingTest, MaximalParallelSetsIdentifyTriangulations) {
  // Parra–Scheffler round trip on the paper example: both maximal parallel
  // sets saturate to minimal triangulations.
  Graph g = testutil::PaperExampleGraph();
  auto sets = testutil::AllMaximalParallelSets(g);
  ASSERT_EQ(sets.size(), 2u);
  for (const auto& m : sets) {
    Graph h = g;
    for (const VertexSet& s : m) h.SaturateSet(s);
    EXPECT_TRUE(IsMinimalTriangulation(g, h));
  }
}

TEST(CrossingTest, IsMaximalPairwiseParallel) {
  Graph g = testutil::PaperExampleGraph();
  auto universe = ListMinimalSeparators(g).separators;
  VertexSet s1 = VertexSet::Of(6, {3, 4, 5});
  VertexSet s2 = VertexSet::Of(6, {0, 1});
  VertexSet s3 = VertexSet::Of(6, {1});
  EXPECT_TRUE(IsMaximalPairwiseParallel(g, {s1, s3}, universe));
  EXPECT_TRUE(IsMaximalPairwiseParallel(g, {s2, s3}, universe));
  EXPECT_FALSE(IsMaximalPairwiseParallel(g, {s3}, universe));       // not max
  EXPECT_FALSE(IsMaximalPairwiseParallel(g, {s1, s2}, universe));  // crossing
}

}  // namespace
}  // namespace mintri
