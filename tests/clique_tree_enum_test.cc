#include "enumeration/clique_tree_enum.h"

#include <gtest/gtest.h>

#include "chordal/lb_triang.h"
#include "enumeration/tree_decomposition.h"
#include "test_util.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace mintri {
namespace {

TEST(CliqueTreeEnumTest, PathHasCaterpillarCount) {
  // P4's clique tree over cliques {01},{12},{23}: adhesions {1},{2};
  // the only maximum spanning tree is the path itself -> 1 clique tree...
  // Actually {01}-{23} have empty intersection (weight 0), so the unique
  // maximum spanning tree is the chain.
  auto trees = EnumerateCliqueTrees(workloads::Path(4));
  EXPECT_EQ(trees.size(), 1u);
}

TEST(CliqueTreeEnumTest, StarOfTrianglesHasMultipleCliqueTrees) {
  // Two triangles sharing vertex 0 plus an edge... use the paper's T2/T2'':
  // the example graph's triangulation H2 has clique trees T2 and T2''.
  Graph g = testutil::PaperExampleGraph();
  Graph h2 = g;
  h2.SaturateSet(VertexSet::Of(6, {0, 1}));  // saturate {u,v}
  auto trees = EnumerateCliqueTrees(h2);
  // Cliques: {u,v,w1}, {u,v,w2}, {u,v,w3}, {v,v'}. The three uvwi cliques
  // pairwise intersect in {u,v} (weight 2): any spanning tree among them
  // works (3 labeled trees on 3 nodes), and {v,v'} can hang off any of the
  // three (x3) -> 9 clique trees.
  EXPECT_EQ(trees.size(), 9u);
  for (const CliqueTree& t : trees) {
    TreeDecomposition td;
    td.bags = t.cliques;
    td.edges = t.edges;
    EXPECT_TRUE(td.IsProperFor(g));
  }
}

TEST(CliqueTreeEnumTest, CompleteGraphHasOne) {
  auto trees = EnumerateCliqueTrees(workloads::Complete(4));
  EXPECT_EQ(trees.size(), 1u);
  EXPECT_TRUE(trees[0].edges.empty());
}

TEST(CliqueTreeEnumTest, AllResultsAreValidCliqueTrees) {
  for (int seed = 0; seed < 8; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(9, 0.3, 40000 + seed);
    Graph h = LbTriangMinDegree(g);
    auto trees = EnumerateCliqueTrees(h, /*limit=*/200);
    EXPECT_FALSE(trees.empty());
    for (const CliqueTree& t : trees) {
      TreeDecomposition td;
      td.bags = t.cliques;
      td.edges = t.edges;
      EXPECT_TRUE(td.IsValidFor(h));
      EXPECT_TRUE(td.IsProperFor(g));
    }
  }
}

TEST(CliqueTreeEnumTest, LimitIsRespected) {
  Graph g = testutil::PaperExampleGraph();
  Graph h2 = g;
  h2.SaturateSet(VertexSet::Of(6, {0, 1}));
  auto trees = EnumerateCliqueTrees(h2, /*limit=*/4);
  EXPECT_EQ(trees.size(), 4u);
}

}  // namespace
}  // namespace mintri
