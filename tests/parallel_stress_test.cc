// Stress/soak tests for the parallel enumeration engine's truncation paths:
// repeated runs at 2/4/8 threads with tiny max_results caps and near-zero
// deadlines hammer the cancel/stop machinery. Whatever prefix comes back
// must be valid — every separator passes IsMinimalSeparator, every PMC
// passes IsPmc — and the complete-vs-truncated label must be truthful.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "pmc/potential_maximal_cliques.h"
#include "separators/minimal_separators.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace mintri {
namespace {

std::vector<VertexSet> Sorted(std::vector<VertexSet> v) {
  std::sort(v.begin(), v.end());
  return v;
}

struct StressGraph {
  std::string name;
  Graph graph;
  std::vector<VertexSet> all_seps;  // the complete serial answer set
};

const std::vector<StressGraph>& StressCorpus() {
  static const std::vector<StressGraph>* corpus = [] {
    auto* c = new std::vector<StressGraph>;
    for (auto& [name, g] : {
             std::pair<std::string, Graph>{"grid5x5", workloads::Grid(5, 5)},
             {"queen5", workloads::Queen(5)},
             {"er36", workloads::ConnectedErdosRenyi(36, 0.18, 424242)},
         }) {
      std::vector<VertexSet> seps =
          Sorted(ListMinimalSeparators(g).separators);
      c->push_back({name, g, std::move(seps)});
    }
    return c;
  }();
  return *corpus;
}

class ParallelStress : public ::testing::TestWithParam<int> {
 protected:
  int threads() const { return GetParam(); }
};

TEST_P(ParallelStress, TinyResultCapsYieldValidLabelledPrefixes) {
  for (const StressGraph& sg : StressCorpus()) {
    for (size_t cap : {size_t{1}, size_t{3}, size_t{7}, size_t{64}}) {
      for (int rep = 0; rep < 3; ++rep) {
        EnumerationLimits limits;
        limits.max_results = cap;
        limits.num_threads = threads();
        MinimalSeparatorsResult r = ListMinimalSeparators(sg.graph, limits);
        ASSERT_LE(r.separators.size(), cap) << sg.name;
        for (const VertexSet& s : r.separators) {
          ASSERT_TRUE(IsMinimalSeparator(sg.graph, s)) << sg.name;
        }
        // A count cap truncates deterministically: truncated iff the full
        // answer set is strictly larger than the cap.
        EXPECT_EQ(r.status == EnumerationStatus::kTruncated,
                  sg.all_seps.size() > cap)
            << sg.name << " cap=" << cap;
        if (r.status == EnumerationStatus::kTruncated) {
          EXPECT_EQ(r.separators.size(), cap) << sg.name;
        }
      }
    }
  }
}

TEST_P(ParallelStress, NearZeroDeadlinesYieldValidLabelledPrefixes) {
  for (const StressGraph& sg : StressCorpus()) {
    for (double deadline : {0.0, 1e-6, 1e-4, 2e-3}) {
      for (int rep = 0; rep < 3; ++rep) {
        EnumerationLimits limits;
        limits.time_limit_seconds = deadline;
        limits.num_threads = threads();
        MinimalSeparatorsResult r = ListMinimalSeparators(sg.graph, limits);
        for (const VertexSet& s : r.separators) {
          ASSERT_TRUE(IsMinimalSeparator(sg.graph, s)) << sg.name;
        }
        // "Complete" must mean complete — whether a racing deadline cut the
        // run short is timing-dependent, but the label may never lie.
        if (r.status == EnumerationStatus::kComplete) {
          EXPECT_EQ(Sorted(r.separators), sg.all_seps) << sg.name;
        } else {
          EXPECT_LE(r.separators.size(), sg.all_seps.size()) << sg.name;
        }
      }
    }
  }
}

TEST_P(ParallelStress, BoundedVariantUnderCapsAndDeadlines) {
  for (const StressGraph& sg : StressCorpus()) {
    std::vector<VertexSet> bounded_all;
    for (const VertexSet& s : sg.all_seps) {
      if (s.Count() <= 4) bounded_all.push_back(s);
    }
    for (size_t cap : {size_t{1}, size_t{5}}) {
      EnumerationLimits limits;
      limits.max_results = cap;
      limits.num_threads = threads();
      MinimalSeparatorsResult r =
          ListMinimalSeparatorsBounded(sg.graph, 4, limits);
      ASSERT_LE(r.separators.size(), cap) << sg.name;
      for (const VertexSet& s : r.separators) {
        ASSERT_TRUE(IsMinimalSeparator(sg.graph, s)) << sg.name;
        ASSERT_LE(s.Count(), 4) << sg.name;
      }
      EXPECT_EQ(r.status == EnumerationStatus::kTruncated,
                bounded_all.size() > cap)
          << sg.name << " cap=" << cap;
    }
    EnumerationLimits expired;
    expired.time_limit_seconds = 0.0;
    expired.num_threads = threads();
    MinimalSeparatorsResult r =
        ListMinimalSeparatorsBounded(sg.graph, 4, expired);
    EXPECT_EQ(r.status, EnumerationStatus::kTruncated) << sg.name;
  }
}

TEST_P(ParallelStress, PmcTruncationPathsStayValid) {
  for (const StressGraph& sg : StressCorpus()) {
    if (sg.all_seps.size() > 1000) continue;  // keep PMC runs cheap
    PmcResult serial = ListPotentialMaximalCliques(sg.graph, sg.all_seps);
    ASSERT_EQ(serial.status, EnumerationStatus::kComplete) << sg.name;

    for (size_t cap : {size_t{1}, size_t{5}}) {
      PmcOptions options;
      options.limits.max_results = cap;
      options.limits.num_threads = threads();
      PmcResult r =
          ListPotentialMaximalCliques(sg.graph, sg.all_seps, options);
      for (const VertexSet& omega : r.pmcs) {
        ASSERT_TRUE(IsPmc(sg.graph, omega)) << sg.name;
      }
      // Like the serial engine, a capped run reports truncation (with an
      // empty result list) iff the full answer exceeds the cap.
      EXPECT_EQ(r.status == EnumerationStatus::kTruncated,
                serial.pmcs.size() > cap)
          << sg.name << " cap=" << cap;
    }
    for (double deadline : {0.0, 2e-3}) {
      PmcOptions options;
      options.limits.time_limit_seconds = deadline;
      options.limits.num_threads = threads();
      PmcResult r =
          ListPotentialMaximalCliques(sg.graph, sg.all_seps, options);
      for (const VertexSet& omega : r.pmcs) {
        ASSERT_TRUE(IsPmc(sg.graph, omega)) << sg.name;
      }
      if (r.status == EnumerationStatus::kComplete) {
        EXPECT_EQ(r.pmcs, serial.pmcs) << sg.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelStress, ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace mintri
