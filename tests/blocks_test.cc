#include "separators/blocks.h"

#include <gtest/gtest.h>

#include "chordal/chordality.h"
#include "separators/minimal_separators.h"
#include "test_util.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"

namespace mintri {
namespace {

TEST(BlocksTest, PaperExampleBlocks) {
  // Figure 2 shows 8 block realizations; block (S2, C42) is the only
  // non-full one (C42 = {v'} has no neighbor u).
  Graph g = testutil::PaperExampleGraph();
  VertexSet s1 = VertexSet::Of(6, {3, 4, 5});
  VertexSet s2 = VertexSet::Of(6, {0, 1});
  VertexSet s3 = VertexSet::Of(6, {1});

  auto b1 = BlocksOfSeparator(g, s1);
  ASSERT_EQ(b1.size(), 2u);
  EXPECT_TRUE(b1[0].full);
  EXPECT_TRUE(b1[1].full);

  auto b2 = BlocksOfSeparator(g, s2);
  ASSERT_EQ(b2.size(), 4u);
  int full_count = 0;
  for (const Block& b : b2) full_count += b.full ? 1 : 0;
  EXPECT_EQ(full_count, 3);  // (S2, {v'}) is not full

  auto b3 = BlocksOfSeparator(g, s3);
  ASSERT_EQ(b3.size(), 2u);
  EXPECT_TRUE(b3[0].full);
  EXPECT_TRUE(b3[1].full);
}

TEST(BlocksTest, FullBlockNeighborhoodIsSeparator) {
  for (int seed = 0; seed < 10; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(10, 0.3, seed);
    auto seps = ListMinimalSeparators(g).separators;
    for (const Block& b : AllFullBlocks(g, seps)) {
      EXPECT_EQ(g.NeighborhoodOfSet(b.component), b.separator);
      EXPECT_EQ(b.vertices, b.separator.Union(b.component));
    }
  }
}

TEST(BlocksTest, EverySeparatorHasAtLeastTwoFullBlocks) {
  for (int seed = 0; seed < 10; ++seed) {
    Graph g = workloads::ConnectedErdosRenyi(9, 0.35, 100 + seed);
    for (const VertexSet& s : ListMinimalSeparators(g).separators) {
      int full = 0;
      for (const Block& b : BlocksOfSeparator(g, s)) full += b.full ? 1 : 0;
      EXPECT_GE(full, 2) << s.ToString();
    }
  }
}

TEST(BlocksTest, RealizationSaturatesSeparator) {
  Graph g = testutil::PaperExampleGraph();
  VertexSet s1 = VertexSet::Of(6, {3, 4, 5});
  auto blocks = BlocksOfSeparator(g, s1);
  // Block with component {v, v'} = {1, 2}.
  const Block* b = nullptr;
  for (const Block& blk : blocks) {
    if (blk.component.Contains(1)) b = &blk;
  }
  ASSERT_NE(b, nullptr);
  std::vector<int> map;
  Graph r = Realization(g, *b, &map);
  EXPECT_EQ(r.NumVertices(), 5);  // {v, v', w1, w2, w3}
  // The separator {w1,w2,w3} must now be a clique.
  VertexSet s_new(5);
  s1.ForEach([&](int v) { s_new.Insert(map[v]); });
  EXPECT_TRUE(r.IsClique(s_new));
  // R(S1, C1^1) of Figure 2 is chordal already.
  EXPECT_TRUE(IsChordal(r));
}

TEST(BlocksTest, BlocksAreDisjointComponents) {
  Graph g = workloads::Grid(3, 3);
  for (const VertexSet& s : ListMinimalSeparators(g).separators) {
    auto blocks = BlocksOfSeparator(g, s);
    VertexSet seen(g.NumVertices());
    for (const Block& b : blocks) {
      EXPECT_FALSE(seen.Intersects(b.component));
      seen.UnionWith(b.component);
    }
    // Components plus separator cover the graph.
    seen.UnionWith(s);
    EXPECT_EQ(seen.Count(), g.NumVertices());
  }
}

}  // namespace
}  // namespace mintri
