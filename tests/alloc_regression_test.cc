// Heap-allocation regression tests: under -DMINTRI_COUNT_ALLOCS=ON the
// global operator new/delete are instrumented with thread-local counters,
// and these tests pin the allocation behavior the PR-9 memory work bought —
// most importantly that the serial minimal-separator inner loop performs
// ZERO heap allocations in steady state on small universes. In builds
// without the instrumentation every test skips (the invariant cannot be
// observed there); CI runs a dedicated MINTRI_COUNT_ALLOCS leg.

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "graph/vertex_set.h"
#include "graph/vertex_set_pool.h"
#include "graph/vertex_set_table.h"
#include "pmc/potential_maximal_cliques.h"
#include "separators/minimal_separators.h"
#include "util/alloc_counter.h"
#include "workloads/named_graphs.h"

namespace mintri {
namespace {

#define SKIP_WITHOUT_COUNTERS()                                          \
  if (!AllocCountingEnabled()) {                                         \
    GTEST_SKIP() << "build without MINTRI_COUNT_ALLOCS; the allocation " \
                    "invariants are only observable in instrumented "    \
                    "builds";                                            \
  }

TEST(AllocRegressionTest, SmallVertexSetsNeverTouchTheAllocator) {
  SKIP_WITHOUT_COUNTERS();
  // The whole <= 128-vertex regime — every bundled bench family — must
  // construct, copy, move, mutate, and destroy without a single heap call.
  const AllocCounters before = ReadAllocCounters();
  for (int cap : {1, 63, 64, 65, 127, 128}) {
    VertexSet s(cap);
    s.Insert(0);
    s.Insert(cap - 1);
    VertexSet copy = s;
    copy.UnionWith(s);
    VertexSet moved = std::move(copy);
    (void)moved.Hash();
    (void)(moved == s);
  }
  const AllocCounters delta = ReadAllocCounters() - before;
  EXPECT_EQ(delta.allocations, 0u);
  EXPECT_EQ(delta.bytes, 0u);
}

TEST(AllocRegressionTest, WideVertexSetsSpillOncePerBuffer) {
  SKIP_WITHOUT_COUNTERS();
  const AllocCounters before = ReadAllocCounters();
  VertexSet s(640);  // 10 words: one heap buffer
  s.Insert(639);
  const AllocCounters after_build = ReadAllocCounters() - before;
  EXPECT_EQ(after_build.allocations, 1u);
  // Mutation and shrink-reuse stay free once the buffer exists.
  s.Reset(640);
  s.Insert(5);
  (void)s.Hash();
  const AllocCounters after_reuse = ReadAllocCounters() - before;
  EXPECT_EQ(after_reuse.allocations, 1u);
}

TEST(AllocRegressionTest, ReservedTableInsertsAreAllocationFree) {
  SKIP_WITHOUT_COUNTERS();
  // A Reserve()d dedup table absorbs its advertised number of distinct
  // small sets without growing anything.
  constexpr int kSets = 500;
  VertexSetTable table;
  table.Reserve(kSets);
  std::vector<VertexSet> sets;
  sets.reserve(kSets);
  for (int i = 0; i < kSets; ++i) {
    VertexSet s(128);
    s.Insert(i % 128);
    s.Insert((i * 7 + 3) % 128);
    s.Insert((i / 128) % 128);
    sets.push_back(std::move(s));
  }
  const AllocCounters before = ReadAllocCounters();
  for (const VertexSet& s : sets) table.Insert(s);
  for (const VertexSet& s : sets) EXPECT_GE(table.Find(s), 0);
  const AllocCounters delta = ReadAllocCounters() - before;
  EXPECT_EQ(delta.allocations, 0u);
}

TEST(AllocRegressionTest, PooledAcquireReleaseIsAllocationFreeWhenWarm) {
  SKIP_WITHOUT_COUNTERS();
  VertexSetPool pool;
  pool.Release(VertexSet(640));  // warm: one pooled heap buffer
  const AllocCounters before = ReadAllocCounters();
  for (int round = 0; round < 100; ++round) {
    VertexSet s = pool.Acquire(640);
    s.Insert(round % 640);
    pool.Release(std::move(s));
  }
  const AllocCounters delta = ReadAllocCounters() - before;
  EXPECT_EQ(delta.allocations, 0u);
}

TEST(AllocRegressionTest, SerialMinsepLoopIsAllocationFreeAfterWarmup) {
  SKIP_WITHOUT_COUNTERS();
  // The headline invariant: on a small-universe family graph, the serial
  // Berry–Bordat–Cogis inner loop — expansion, component scan, dedup
  // probe, arena append, result emission — runs with ZERO heap
  // allocations once (a) the enumerator knows the answer-set size
  // (Reserve) and (b) its scratch warmed up on the first few results.
  const Graph g = workloads::Queen(5);  // 25 vertices, rich separator set
  ASSERT_LE(g.NumVertices(), 128);

  // Discovery pass: learn the answer-set size the Reserve needs.
  const size_t total = ListMinimalSeparators(g).separators.size();
  ASSERT_GT(total, 100u) << "corpus graph too trivial to measure";

  MinimalSeparatorEnumerator enumerator(g, g.NumVertices());
  enumerator.Reserve(total);
  // Warm-up: first results size the component scanner and the expansion
  // scratch to this graph.
  size_t produced = 0;
  for (; produced < 5; ++produced) {
    ASSERT_TRUE(enumerator.Next().has_value());
  }

  const AllocCounters before = ReadAllocCounters();
  while (true) {
    std::optional<VertexSet> s = enumerator.Next();
    if (!s.has_value()) break;
    ++produced;
  }
  const AllocCounters delta = ReadAllocCounters() - before;
  EXPECT_EQ(produced, total);
  EXPECT_EQ(delta.allocations, 0u)
      << "the steady-state minsep loop allocated " << delta.allocations
      << " times over " << (produced - 5) << " results";
  EXPECT_EQ(delta.bytes, 0u);
}

TEST(AllocRegressionTest, PmcTesterScratchIsReusedAcrossTests) {
  SKIP_WITHOUT_COUNTERS();
  // IsPmc goes through a fresh tester; per-candidate testing inside the
  // enumerator reuses one tester's scratch. Pin the reuse at the API we
  // have: repeated Test calls through one tester allocate nothing after
  // the first.
  const Graph g = workloads::Grid(4, 5);
  const PmcResult all = ListPotentialMaximalCliques(g, {}, {});
  ASSERT_EQ(all.status, EnumerationStatus::kComplete);
  ASSERT_GT(all.pmcs.size(), 10u);

  // Warm-up call, then measure a sweep over every known PMC.
  ASSERT_TRUE(IsPmc(g, all.pmcs.front()));
  const AllocCounters before = ReadAllocCounters();
  for (const VertexSet& omega : all.pmcs) {
    // A fresh tester per call would allocate its scanner/cover each time;
    // the IsPmc wrapper does exactly that, so this loop instead pins an
    // upper bound: per-call traffic must stay O(1) buffers, not O(n).
    EXPECT_TRUE(IsPmc(g, omega));
  }
  const AllocCounters delta = ReadAllocCounters() - before;
  // Generous ceiling: a handful of scratch buffers per IsPmc call. The
  // real win (tester reuse inside the enumerator) is covered by the
  // enumeration finishing with bounded per-PMC traffic below.
  EXPECT_LT(delta.allocations, all.pmcs.size() * 30);
}

TEST(AllocRegressionTest, PmcEnumerationAllocationsAreBoundedPerResult) {
  SKIP_WITHOUT_COUNTERS();
  // The incremental PMC enumeration cannot be strictly allocation-free
  // (each prefix step builds a new graph and separator set), but after the
  // pooling/table work its per-emitted-PMC allocation count must stay a
  // small constant. Before PR 9 the dedup alone spent one unordered_set
  // node per distinct candidate — an order of magnitude above this bound.
  const Graph g = workloads::Queen(5);
  const AllocCounters before = ReadAllocCounters();
  const PmcResult result = ListPotentialMaximalCliques(g, {}, {});
  const AllocCounters delta = ReadAllocCounters() - before;
  ASSERT_EQ(result.status, EnumerationStatus::kComplete);
  ASSERT_GT(result.pmcs.size(), 50u);
  const double per_pmc =
      static_cast<double>(delta.allocations) /
      static_cast<double>(result.pmcs.size());
  EXPECT_LT(per_pmc, 40.0) << "allocations per emitted PMC regressed: "
                           << per_pmc;
}

}  // namespace
}  // namespace mintri
