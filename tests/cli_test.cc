#include "cli/cli.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mintri {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult Invoke(const std::vector<std::string>& args, const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out, err;
  int code = RunCli(args, in, out, err);
  return {code, out.str(), err.str()};
}

constexpr char kC4[] =
    "p tw 4 4\n"
    "1 2\n2 3\n3 4\n4 1\n";

TEST(CliTest, RankedSummaryOnC4) {
  CliResult r = Invoke({"--cost=fill", "--top=10"}, kC4);
  EXPECT_EQ(r.code, 0) << r.err;
  // C4 has exactly two minimal triangulations, both fill 1.
  EXPECT_NE(r.out.find("#1 cost=1 width=2 fill=1"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("#2 cost=1 width=2 fill=1"), std::string::npos);
  EXPECT_EQ(r.out.find("#3"), std::string::npos);
}

TEST(CliTest, TdFormatIsWellFormed) {
  CliResult r = Invoke({"--format=td", "--top=1"}, kC4);
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("s td 2 3 4\n"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("b 1 "), std::string::npos);
  EXPECT_NE(r.out.find("b 2 "), std::string::npos);
}

TEST(CliTest, CkkBaseline) {
  CliResult r = Invoke({"--algo=ckk", "--top=10"}, kC4);
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("#2"), std::string::npos);
  EXPECT_EQ(r.out.find("#3"), std::string::npos);
}

TEST(CliTest, BoundedWidth) {
  // Width bound 1 on C4: infeasible, no output rows but exit 0.
  CliResult r = Invoke({"--bound=1"}, kC4);
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.find("#1"), std::string::npos);
}

TEST(CliTest, DisconnectedGraphWorksWithRanked) {
  CliResult r = Invoke({"--cost=fill", "--top=5"},
                    "p tw 8 8\n1 2\n2 3\n3 4\n4 1\n5 6\n6 7\n7 8\n8 5\n");
  EXPECT_EQ(r.code, 0) << r.err;
  // Two C4s: 2x2 = 4 minimal triangulations, total fill 2 each.
  EXPECT_NE(r.out.find("#4 cost=2"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("#5"), std::string::npos);
}

TEST(CliTest, HelpPrintsUsageAndExitsZero) {
  CliResult r = Invoke({"--help"}, "");
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("usage: mintri"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("--cost="), std::string::npos);
  EXPECT_EQ(Invoke({"-h"}, "").code, 0);
}

TEST(CliTest, ErrorsAreReported) {
  EXPECT_EQ(Invoke({"--cost=bogus"}, kC4).code, 1);
  EXPECT_EQ(Invoke({"--algo=bogus"}, kC4).code, 1);
  EXPECT_EQ(Invoke({"--fancy"}, kC4).code, 1);
  EXPECT_EQ(Invoke({"--top=1O"}, kC4).code, 1);
  EXPECT_EQ(Invoke({"--bound="}, kC4).code, 1);
  EXPECT_EQ(Invoke({"--time-limit=3O"}, kC4).code, 1);
  EXPECT_EQ(Invoke({"--solver=bogus"}, kC4).code, 1);
  EXPECT_EQ(Invoke({}, "not a graph").code, 1);
  EXPECT_EQ(Invoke({"nonexistent_file.gr"}, "").code, 1);
}

TEST(CliTest, NumericFlagOverflowIsRejected) {
  // strtoll saturates to LLONG_MAX on overflow without an errno check —
  // these used to parse "successfully". Worse, --bound=2^32+1 silently
  // truncated to bound=1 through the long long → int narrowing.
  EXPECT_EQ(Invoke({"--top=99999999999999999999"}, kC4).code, 1);
  EXPECT_EQ(Invoke({"--bound=4294967297"}, kC4).code, 1);
  EXPECT_EQ(Invoke({"--bound=99999999999999999999"}, kC4).code, 1);
  EXPECT_EQ(Invoke({"--time-limit=1e999"}, kC4).code, 1);
  CliResult bad = Invoke({"--top=99999999999999999999"}, kC4);
  EXPECT_NE(bad.err.find("invalid value for --top"), std::string::npos)
      << bad.err;
}

TEST(CliTest, SolverFlagSelectsRepairEngineWithIdenticalOutput) {
  CliResult indexed = Invoke({"--cost=fill", "--top=10", "--solver=indexed"},
                             kC4);
  CliResult scan = Invoke({"--cost=fill", "--top=10", "--solver=scan"}, kC4);
  CliResult implicit = Invoke({"--cost=fill", "--top=10"}, kC4);
  EXPECT_EQ(indexed.code, 0) << indexed.err;
  EXPECT_EQ(scan.code, 0) << scan.err;
  // Both engines print byte-identical streams; the default is the index.
  EXPECT_EQ(indexed.out, scan.out);
  EXPECT_EQ(indexed.out, implicit.out);

  // --stats names the engine and its counters; the scan path reports zero
  // index activity.
  CliResult istats =
      Invoke({"--cost=fill", "--top=10", "--solver=indexed", "--stats"}, kC4);
  EXPECT_EQ(istats.code, 0) << istats.err;
  EXPECT_NE(istats.err.find("solver[indexed]: optimizer_calls="),
            std::string::npos)
      << istats.err;
  EXPECT_EQ(istats.err.find("index_updates=0 range_queries=0"),
            std::string::npos)
      << istats.err;
  CliResult sstats =
      Invoke({"--cost=fill", "--top=10", "--solver=scan", "--stats"}, kC4);
  EXPECT_EQ(sstats.code, 0) << sstats.err;
  EXPECT_NE(sstats.err.find("solver[scan]:"), std::string::npos)
      << sstats.err;
  EXPECT_NE(sstats.err.find("index_updates=0 range_queries=0"),
            std::string::npos)
      << sstats.err;
}

TEST(CliTest, ThreadsFlagValidation) {
  // 0, negative, garbage, empty, and absurd counts are all rejected up
  // front — including values whose low 32 bits would truncate to a small
  // "valid" int.
  EXPECT_EQ(Invoke({"--threads=0"}, kC4).code, 1);
  EXPECT_EQ(Invoke({"--threads=-2"}, kC4).code, 1);
  EXPECT_EQ(Invoke({"--threads=two"}, kC4).code, 1);
  EXPECT_EQ(Invoke({"--threads=2x"}, kC4).code, 1);
  EXPECT_EQ(Invoke({"--threads="}, kC4).code, 1);
  EXPECT_EQ(Invoke({"--threads=500000"}, kC4).code, 1);
  EXPECT_EQ(Invoke({"--threads=4294967297"}, kC4).code, 1);
  CliResult bad = Invoke({"--threads=0"}, kC4);
  EXPECT_NE(bad.err.find("invalid value for --threads"), std::string::npos)
      << bad.err;

  // A valid thread count runs the normal pipeline to the same answer.
  CliResult r = Invoke({"--threads=2", "--cost=fill", "--top=10"}, kC4);
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("#1 cost=1 width=2 fill=1"), std::string::npos)
      << r.out;
  EXPECT_EQ(r.out.find("#3"), std::string::npos);
}

TEST(CliTest, BenchThreadsFlag) {
  EXPECT_EQ(Invoke({"bench", "--threads=0"}, "").code, 1);
  EXPECT_EQ(Invoke({"bench", "--threads=-1"}, "").code, 1);
  EXPECT_EQ(Invoke({"bench", "--threads=garbage"}, "").code, 1);
  EXPECT_EQ(Invoke({"bench", "--threads=1000000"}, "").code, 1);

  // --threads=2 pins every entry of the report to two threads.
  CliResult r = Invoke(
      {"bench", "minseps", "--smoke", "--quiet", "--threads=2", "--out=-"},
      "");
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"threads\": 2"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("\"threads\": 1"), std::string::npos) << r.out;
}

TEST(CliTest, StateSpaceCost) {
  CliResult r = Invoke({"--cost=state-space", "--top=1"}, kC4);
  EXPECT_EQ(r.code, 0) << r.err;
  // Two bags of 3 binary variables: 8 + 8 = 16.
  EXPECT_NE(r.out.find("cost=16"), std::string::npos) << r.out;
}

TEST(CliTest, BenchHelpAndArgumentValidation) {
  CliResult help = Invoke({"bench", "--help"}, "");
  EXPECT_EQ(help.code, 0) << help.err;
  EXPECT_NE(help.out.find("usage: mintri bench"), std::string::npos)
      << help.out;
  EXPECT_NE(help.out.find("BENCH_core.json"), std::string::npos);

  EXPECT_EQ(Invoke({"bench", "bogus-suite"}, "").code, 1);
  EXPECT_EQ(Invoke({"bench", "--bogus-flag"}, "").code, 1);
}

TEST(CliTest, RankSubcommandIsTheBareAliasSpelled) {
  CliResult bare = Invoke({"--cost=fill", "--top=10"}, kC4);
  CliResult rank = Invoke({"rank", "--cost=fill", "--top=10"}, kC4);
  EXPECT_EQ(rank.code, 0) << rank.err;
  EXPECT_EQ(rank.out, bare.out);
}

TEST(CliTest, FhwOnTpchHypergraphBuiltin) {
  // TPC-H Q5's join cycle: the cheapest decomposition has fhw 2.
  CliResult r = Invoke({"rank", "--cost=fhw", "--top=1", "tpch:5"}, "");
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("#1 cost=2"), std::string::npos) << r.out;
  // The acyclic Q3 chain has fhw 1.
  CliResult acyclic =
      Invoke({"rank", "--cost=fhw", "--top=1", "tpch:3"}, "");
  EXPECT_EQ(acyclic.code, 0) << acyclic.err;
  EXPECT_NE(acyclic.out.find("#1 cost=1"), std::string::npos) << acyclic.out;
}

TEST(CliTest, HypertreeCostRequiresHypergraphInstance) {
  CliResult r = Invoke({"--cost=hypertree"}, kC4);
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("hypergraph"), std::string::npos) << r.err;
  EXPECT_EQ(Invoke({"--cost=fhw"}, kC4).code, 1);
}

TEST(CliTest, HypergraphOnStdin) {
  // The triangle query as a .hg stream: ghw 2, fhw 1.5.
  const char* kTriangle = "p hg 3 3\n1 2\n2 3\n3 1\n";
  CliResult ghw =
      Invoke({"--input=hg", "--cost=hypertree", "--top=1"}, kTriangle);
  EXPECT_EQ(ghw.code, 0) << ghw.err;
  EXPECT_NE(ghw.out.find("#1 cost=2"), std::string::npos) << ghw.out;
  CliResult fhw = Invoke({"--input=hg", "--cost=fhw", "--top=1"}, kTriangle);
  EXPECT_EQ(fhw.code, 0) << fhw.err;
  EXPECT_NE(fhw.out.find("#1 cost=1.5"), std::string::npos) << fhw.out;
  EXPECT_EQ(Invoke({"--input=hg"}, "not a hypergraph").code, 1);
  EXPECT_EQ(Invoke({"--input=bogus"}, kTriangle).code, 1);
}

TEST(CliTest, UaiModelOnStdin) {
  // Two binary variables, one pairwise factor: a single 2-variable bag,
  // state space 4.
  const char* kModel =
      "MARKOV\n2\n2 2\n1\n2 0 1\n4 1 2 3 4\n";
  CliResult r =
      Invoke({"--input=uai", "--cost=state-space", "--top=1"}, kModel);
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("#1 cost=4"), std::string::npos) << r.out;
}

TEST(CliTest, StatsReportCacheHitRate) {
  CliResult r =
      Invoke({"rank", "--cost=fhw", "--top=5", "--stats", "tpch:5"}, "");
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.err.find("bag-score cache: lookups="), std::string::npos)
      << r.err;
  // --no-cache suppresses the cache (and so its stats line).
  CliResult off = Invoke(
      {"rank", "--cost=fhw", "--top=5", "--stats", "--no-cache", "tpch:5"},
      "");
  EXPECT_EQ(off.code, 0) << off.err;
  EXPECT_EQ(off.err.find("bag-score cache"), std::string::npos) << off.err;
  EXPECT_EQ(off.out, r.out);
}

TEST(CliTest, BatchCommand) {
  CliResult help = Invoke({"batch", "--help"}, "");
  EXPECT_EQ(help.code, 0) << help.err;
  EXPECT_NE(help.out.find("usage: mintri batch"), std::string::npos);

  EXPECT_EQ(Invoke({"batch"}, "").code, 1);
  EXPECT_EQ(Invoke({"batch", "no-such-list.txt"}, "").code, 1);
  EXPECT_EQ(Invoke({"batch", "x.txt", "--threads=0"}, "").code, 1);
  EXPECT_EQ(Invoke({"batch", "x.txt", "--inner-threads=-1"}, "").code, 1);
  EXPECT_EQ(Invoke({"batch", "x.txt", "--top=0"}, "").code, 1);
  EXPECT_EQ(Invoke({"batch", "x.txt", "--top=-3"}, "").code, 1);
  EXPECT_EQ(Invoke({"batch", "x.txt", "--time-limit=-1"}, "").code, 1);
  EXPECT_EQ(Invoke({"batch", "x.txt", "--time-limit=0"}, "").code, 1);
  EXPECT_EQ(Invoke({"batch", "x.txt", "--bogus"}, "").code, 1);
  // The batch parser is the same strict one as rank/bench: overflow and
  // trailing garbage are rejected, not silently accepted (the old
  // istringstream parser and cli.cc's unchecked strtoll disagreed on both).
  EXPECT_EQ(Invoke({"batch", "x.txt", "--top=99999999999999999999"}, "").code,
            1);
  EXPECT_EQ(Invoke({"batch", "x.txt", "--threads=8abc"}, "").code, 1);
  EXPECT_EQ(
      Invoke({"batch", "x.txt", "--inner-threads=99999999999999999999"}, "")
          .code,
      1);
  EXPECT_EQ(Invoke({"batch", "x.txt", "--time-limit=1e999"}, "").code, 1);
}

TEST(CliTest, BatchShardingFlags) {
  CliResult help = Invoke({"batch", "--help"}, "");
  EXPECT_NE(help.out.find("--workers="), std::string::npos) << help.out;
  EXPECT_NE(help.out.find("--deadline="), std::string::npos) << help.out;
  EXPECT_NE(help.out.find("--stats"), std::string::npos) << help.out;

  // --workers rides the same strict parser as --threads: zero, negatives,
  // overflow, and trailing garbage are all rejected up front.
  EXPECT_EQ(Invoke({"batch", "x.txt", "--workers=0"}, "").code, 1);
  EXPECT_EQ(Invoke({"batch", "x.txt", "--workers=-2"}, "").code, 1);
  EXPECT_EQ(Invoke({"batch", "x.txt", "--workers=8abc"}, "").code, 1);
  EXPECT_EQ(
      Invoke({"batch", "x.txt", "--workers=99999999999999999999"}, "").code,
      1);
  // A deadline of zero (or less) would kill every worker instantly; the
  // flag requires a positive budget.
  EXPECT_EQ(Invoke({"batch", "x.txt", "--deadline=0"}, "").code, 1);
  EXPECT_EQ(Invoke({"batch", "x.txt", "--deadline=-1"}, "").code, 1);
  EXPECT_EQ(Invoke({"batch", "x.txt", "--deadline=2s"}, "").code, 1);
  EXPECT_EQ(Invoke({"batch", "x.txt", "--worker-binary="}, "").code, 1);
}

TEST(CliTest, BenchSmokeEmitsSchemaShapedJson) {
  // The smallest real run: one suite, smoke-trimmed families, JSON on
  // stdout. Spot-checks the schema keys the validator enforces.
  CliResult r = Invoke({"bench", "minseps", "--smoke", "--quiet", "--out=-"},
                       "");
  EXPECT_EQ(r.code, 0) << r.err;
  for (const char* key :
       {"\"schema_version\": 2", "\"git_sha\"", "\"time_scale\"",
        "\"smoke\": true", "\"suites\": [\"minseps\"]", "\"entries\"",
        "\"results_per_sec\"", "\"wall_ms\"", "\"status\"",
        "\"threads\": 1", "\"solver\"", "\"candidate_evals\"",
        "\"index_updates\"", "\"range_queries\""}) {
    EXPECT_NE(r.out.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(CliTest, BenchRankedSweepsBothSolverPaths) {
  EXPECT_EQ(Invoke({"bench", "--solver=bogus"}, "").code, 1);

  // The default ranked sweep emits one entry per repair engine at each
  // point — the report carries its own interleaved before/after comparison.
  CliResult r = Invoke(
      {"bench", "ranked", "--smoke", "--quiet", "--threads=1", "--out=-"},
      "");
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"solver\": \"indexed\""), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"solver\": \"scan\""), std::string::npos) << r.out;

  // Pinning one engine drops the other from the report.
  CliResult pinned = Invoke({"bench", "ranked", "--smoke", "--quiet",
                             "--threads=1", "--solver=scan", "--out=-"},
                            "");
  EXPECT_EQ(pinned.code, 0) << pinned.err;
  EXPECT_NE(pinned.out.find("\"solver\": \"scan\""), std::string::npos);
  EXPECT_EQ(pinned.out.find("\"solver\": \"indexed\""), std::string::npos);
}

}  // namespace
}  // namespace mintri
