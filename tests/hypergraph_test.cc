#include "hypergraph/hypergraph.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cost/standard_costs.h"
#include "enumeration/ranked_enum.h"
#include "hypergraph/edge_cover.h"
#include "hypergraph/linear_program.h"
#include "workloads/named_graphs.h"

namespace mintri {
namespace {

TEST(LinearProgramTest, SolvesTextbookLp) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  ->  36 at (2, 6).
  LinearProgram lp({{1, 0}, {0, 2}, {3, 2}}, {4, 12, 18}, {3, 5});
  auto sol = lp.Maximize();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->objective, 36.0, 1e-9);
  EXPECT_NEAR(sol->x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol->x[1], 6.0, 1e-9);
}

TEST(LinearProgramTest, DetectsUnbounded) {
  // max x with no binding constraint on x.
  LinearProgram lp({{0.0}}, {1.0}, {1.0});
  EXPECT_FALSE(lp.Maximize().has_value());
}

TEST(LinearProgramTest, DegenerateLpTerminates) {
  // Degenerate constraints that can cycle without Bland's rule.
  LinearProgram lp({{0.5, -5.5, -2.5, 9}, {0.5, -1.5, -0.5, 1}, {1, 0, 0, 0}},
                   {0, 0, 1}, {10, -57, -9, -24});
  auto sol = lp.Maximize();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->objective, 1.0, 1e-6);
}

TEST(LinearProgramTest, ZeroObjective) {
  LinearProgram lp({{1.0, 1.0}}, {5.0}, {0.0, 0.0});
  auto sol = lp.Maximize();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->objective, 0.0, 1e-9);
}

// Regression: input validation used to be assert-only, which compiles out
// in Release — a negative b then silently produced garbage (the all-slack
// basis is infeasible, violating the solver's invariant). Malformed input
// must yield std::nullopt in every build type.
TEST(LinearProgramTest, RejectsNegativeRhs) {
  LinearProgram lp({{1.0}}, {-1.0}, {1.0});
  EXPECT_FALSE(lp.Maximize().has_value());
}

TEST(LinearProgramTest, RejectsDimensionMismatches) {
  // More rows in A than entries in b.
  LinearProgram rows({{1.0}, {2.0}}, {1.0}, {1.0});
  EXPECT_FALSE(rows.Maximize().has_value());
  // Ragged row: two coefficients for one variable.
  LinearProgram ragged({{1.0, 2.0}}, {1.0}, {1.0});
  EXPECT_FALSE(ragged.Maximize().has_value());
  // NaN bound.
  LinearProgram nan_b({{1.0}}, {std::nan("")}, {1.0});
  EXPECT_FALSE(nan_b.Maximize().has_value());
}

// Regression for the leaving-row rule: heavily degenerate LPs (many rows
// tied at ratio zero) must still pivot to the true optimum. The old
// single-pass min-ratio test compared each candidate against a drifting
// best_ratio with an ε window mixed into the Bland tie-break.
TEST(LinearProgramTest, DegenerateTiesPivotCorrectly) {
  // Two constraints pass through the origin (x <= y, x <= 2y), so the first
  // pivots are degenerate; optimum 10 at (5, 5).
  LinearProgram lp({{1, -1}, {1, -2}, {1, 1}}, {0, 0, 10}, {3, -1});
  auto sol = lp.Maximize();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->objective, 10.0, 1e-6);
  EXPECT_NEAR(sol->x[0], 5.0, 1e-6);
  EXPECT_NEAR(sol->x[1], 5.0, 1e-6);
}

TEST(LinearProgramTest, ManyTiedRowsStayFeasible) {
  // Ten identical degenerate rows plus one binding row; the solution must
  // keep every slack nonnegative (a wrong leaving row would go infeasible).
  std::vector<std::vector<double>> a(10, {1.0, -1.0});
  a.push_back({1.0, 0.0});
  std::vector<double> b(10, 0.0);
  b.push_back(7.0);
  LinearProgram lp(std::move(a), std::move(b), {2.0, -1.0});
  auto sol = lp.Maximize();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->objective, 7.0, 1e-6);  // x = (7, 7)
  EXPECT_NEAR(sol->x[0], 7.0, 1e-6);
  EXPECT_NEAR(sol->x[1], 7.0, 1e-6);
}

TEST(HypergraphTest, PrimalGraphSaturatesEdges) {
  Hypergraph h(5);
  h.AddEdge(VertexSet::Of(5, {0, 1, 2}));
  h.AddEdge(VertexSet::Of(5, {2, 3}));
  h.AddEdge(VertexSet::Of(5, {3, 4}));
  Graph primal = h.PrimalGraph();
  EXPECT_EQ(primal.NumEdges(), 5);  // 01 02 12 23 34
  EXPECT_TRUE(primal.HasEdge(0, 2));
  EXPECT_FALSE(primal.HasEdge(0, 3));
  EXPECT_TRUE(h.CoversAllVertices());
  EXPECT_EQ(h.EdgesContaining(2), (std::vector<int>{0, 1}));
}

TEST(EdgeCoverTest, TriangleHypergraph) {
  // The classic: edges {ab, bc, ca}; covering {a,b,c} integrally needs 2
  // edges, fractionally 3/2 (x_e = 1/2 each).
  Hypergraph h(3);
  h.AddEdge(VertexSet::Of(3, {0, 1}));
  h.AddEdge(VertexSet::Of(3, {1, 2}));
  h.AddEdge(VertexSet::Of(3, {2, 0}));
  VertexSet bag = VertexSet::All(3);
  EXPECT_EQ(MinIntegralEdgeCover(h, bag), 2);
  EXPECT_NEAR(MinFractionalEdgeCover(h, bag), 1.5, 1e-9);
}

TEST(EdgeCoverTest, SingleEdgeCoversItsBag) {
  Hypergraph h(4);
  h.AddEdge(VertexSet::Of(4, {0, 1, 2, 3}));
  EXPECT_EQ(MinIntegralEdgeCover(h, VertexSet::Of(4, {1, 3})), 1);
  EXPECT_NEAR(MinFractionalEdgeCover(h, VertexSet::Of(4, {1, 3})), 1.0,
              1e-9);
  EXPECT_EQ(MinIntegralEdgeCover(h, VertexSet(4)), 0);
}

TEST(EdgeCoverTest, UncoverableBag) {
  Hypergraph h(3);
  h.AddEdge(VertexSet::Of(3, {0, 1}));
  EXPECT_EQ(MinIntegralEdgeCover(h, VertexSet::Of(3, {2})), -1);
  EXPECT_EQ(MinFractionalEdgeCover(h, VertexSet::Of(3, {2})), -1.0);
  EXPECT_FALSE(h.CoversAllVertices());
}

TEST(EdgeCoverTest, FractionalNeverExceedsIntegral) {
  // Random hypergraphs: |bag| / max-edge <= fractional <= integral.
  for (int seed = 0; seed < 10; ++seed) {
    Hypergraph h(8);
    uint64_t state = 12345 + seed;
    auto next = [&state]() {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      return (state >> 33);
    };
    for (int e = 0; e < 6; ++e) {
      VertexSet edge(8);
      for (int v = 0; v < 8; ++v) {
        if (next() % 3 == 0) edge.Insert(v);
      }
      if (!edge.Empty()) h.AddEdge(std::move(edge));
    }
    for (int trial = 0; trial < 5; ++trial) {
      VertexSet bag(8);
      for (int v = 0; v < 8; ++v) {
        if (next() % 2 == 0) bag.Insert(v);
      }
      int integral = MinIntegralEdgeCover(h, bag);
      double fractional = MinFractionalEdgeCover(h, bag);
      if (integral < 0) {
        EXPECT_EQ(fractional, -1.0);
        continue;
      }
      EXPECT_LE(fractional, integral + 1e-9);
      EXPECT_GE(fractional, bag.Count() > 0 ? 1.0 - 1e-9 : 0.0);
    }
  }
}

TEST(HypertreeCostTest, CyclicQueryRankedByHypertreeWidth) {
  // The triangle query R(a,b) ⋈ S(b,c) ⋈ T(c,a): its primal graph is K3
  // (chordal), single decomposition with one bag {a,b,c}: ghw 2, fhw 1.5.
  Hypergraph h(3);
  h.AddEdge(VertexSet::Of(3, {0, 1}));
  h.AddEdge(VertexSet::Of(3, {1, 2}));
  h.AddEdge(VertexSet::Of(3, {2, 0}));
  Graph primal = h.PrimalGraph();
  auto ctx = TriangulationContext::Build(primal);
  ASSERT_TRUE(ctx.has_value());

  auto ghw = HypertreeWidthCost(h);
  auto fhw = FractionalHypertreeWidthCost(h);
  RankedTriangulationEnumerator e1(*ctx, *ghw);
  auto t1 = e1.Next();
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(t1->cost, 2.0);
  RankedTriangulationEnumerator e2(*ctx, *fhw);
  auto t2 = e2.Next();
  ASSERT_TRUE(t2.has_value());
  EXPECT_NEAR(t2->cost, 1.5, 1e-9);
}

TEST(HypertreeCostTest, AcyclicQueryHasWidthOne) {
  // Path query R(a,b) ⋈ S(b,c) ⋈ T(c,d): alpha-acyclic, ghw = fhw = 1.
  Hypergraph h(4);
  h.AddEdge(VertexSet::Of(4, {0, 1}));
  h.AddEdge(VertexSet::Of(4, {1, 2}));
  h.AddEdge(VertexSet::Of(4, {2, 3}));
  Graph primal = h.PrimalGraph();
  auto ctx = TriangulationContext::Build(primal);
  ASSERT_TRUE(ctx.has_value());
  auto ghw = HypertreeWidthCost(h);
  RankedTriangulationEnumerator e(*ctx, *ghw);
  auto t = e.Next();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->cost, 1.0);
}

TEST(HypertreeCostTest, RankedOrderIsNonDecreasing) {
  // A 5-cycle of binary relations; enumerate all decompositions by fhw.
  Hypergraph h(5);
  for (int i = 0; i < 5; ++i) {
    h.AddEdge(VertexSet::Of(5, {i, (i + 1) % 5}));
  }
  Graph primal = h.PrimalGraph();
  auto ctx = TriangulationContext::Build(primal);
  ASSERT_TRUE(ctx.has_value());
  auto fhw = FractionalHypertreeWidthCost(h);
  RankedTriangulationEnumerator e(*ctx, *fhw);
  double last = 0;
  int count = 0;
  while (auto t = e.Next()) {
    EXPECT_GE(t->cost, last - 1e-9);
    EXPECT_NEAR(t->cost, fhw->Evaluate(primal, t->bags), 1e-9);
    last = t->cost;
    ++count;
  }
  EXPECT_GT(count, 1);
}

}  // namespace
}  // namespace mintri
