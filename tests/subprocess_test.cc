// The process-management utility under the batch coordinator: spawn,
// poll-multiplexed pipe capture, deadline kill, exit-status decode.

#include "util/subprocess.h"

#include <gtest/gtest.h>

#include <string>

#include "util/timer.h"

namespace mintri {
namespace subprocess {
namespace {

Command Sh(const std::string& script) {
  return Command{{"/bin/sh", "-c", script}};
}

// Inside a TEST body the unqualified name Run finds testing::Test::Run;
// this namespace-scope alias keeps the call sites on the utility.
Result RunOne(const Command& command, double deadline_seconds) {
  return Run(command, deadline_seconds);
}

TEST(SubprocessTest, CapturesStdoutAndStderr) {
  const Result r = RunOne(Sh("printf out-data; printf err-data >&2"), 10);
  EXPECT_TRUE(r.spawned);
  EXPECT_FALSE(r.timed_out);
  EXPECT_FALSE(r.signaled);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.stdout_data, "out-data");
  EXPECT_EQ(r.stderr_data, "err-data");
  EXPECT_EQ(DescribeTermination(r), "exit 0");
}

TEST(SubprocessTest, DecodesNonzeroExit) {
  const Result r = RunOne(Sh("exit 3"), 10);
  EXPECT_TRUE(r.spawned);
  EXPECT_FALSE(r.signaled);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_EQ(DescribeTermination(r), "exit 3");
}

TEST(SubprocessTest, DecodesSignalTermination) {
  const Result r = RunOne(Sh("kill -9 $$"), 10);
  EXPECT_TRUE(r.spawned);
  EXPECT_FALSE(r.timed_out);
  EXPECT_TRUE(r.signaled);
  EXPECT_EQ(r.term_signal, 9);
  EXPECT_NE(DescribeTermination(r).find("signal 9"), std::string::npos);
}

TEST(SubprocessTest, DeadlineKillsAStraggler) {
  WallTimer timer;
  const Result r = RunOne(Sh("sleep 600"), 0.3);
  EXPECT_TRUE(r.spawned);
  EXPECT_TRUE(r.timed_out);
  EXPECT_TRUE(r.signaled);
  // The coordinator must come back promptly, not after the child's 600s.
  EXPECT_LT(timer.Seconds(), 30.0);
  EXPECT_NE(DescribeTermination(r).find("deadline"), std::string::npos);
}

TEST(SubprocessTest, SpawnFailureIsReportedNotFatal) {
  const Result r = RunOne(Command{{"/no/such/binary/anywhere"}}, 10);
  // glibc posix_spawn reports exec failure directly; other libcs surface it
  // as the conventional exit code 127. Accept either truthful report.
  if (!r.spawned) {
    EXPECT_FALSE(r.spawn_error.empty());
    EXPECT_NE(DescribeTermination(r).find("spawn failed"), std::string::npos);
  } else {
    EXPECT_EQ(r.exit_code, 127);
  }
}

TEST(SubprocessTest, ManyChildrenWithBulkOutputDoNotDeadlock) {
  // Each child writes ~1 MiB — far past the 64 KiB pipe buffer — so this
  // hangs forever unless the capture loop multiplexes across every child's
  // pipe instead of draining them one at a time.
  std::vector<Command> commands;
  const int kChildren = 4;
  for (int i = 0; i < kChildren; ++i) {
    commands.push_back(
        Sh("i=0; while [ $i -lt 1024 ]; do printf '%01024d' " +
           std::to_string(i) + "; i=$((i+1)); done"));
  }
  const std::vector<Result> results = RunAll(commands, 60);
  ASSERT_EQ(results.size(), static_cast<size_t>(kChildren));
  for (const Result& r : results) {
    EXPECT_TRUE(r.spawned);
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_EQ(r.stdout_data.size(), 1024u * 1024u);
  }
}

TEST(SubprocessTest, MixedOutcomesStayIndependent) {
  // One healthy child, one crasher, one straggler: the deadline kill and
  // the crash must not disturb the healthy child's capture.
  const std::vector<Result> results =
      RunAll({Sh("printf healthy"), Sh("printf partial; kill -9 $$"),
              Sh("sleep 600")},
             1.0);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].exit_code, 0);
  EXPECT_EQ(results[0].stdout_data, "healthy");
  EXPECT_FALSE(results[0].timed_out);
  EXPECT_TRUE(results[1].signaled);
  EXPECT_EQ(results[1].stdout_data, "partial");
  EXPECT_FALSE(results[1].timed_out);
  EXPECT_TRUE(results[2].timed_out);
}

TEST(SubprocessTest, SelfExecutablePathResolves) {
  const std::string self = SelfExecutablePath();
  ASSERT_FALSE(self.empty());
  EXPECT_NE(self.find("subprocess_test"), std::string::npos);
}

TEST(SubprocessTest, WallSecondsIsPopulated) {
  const Result r = RunOne(Sh("sleep 0.2"), 30);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_GE(r.wall_seconds, 0.15);
}

}  // namespace
}  // namespace subprocess
}  // namespace mintri
