#ifndef MINTRI_TESTS_TEST_UTIL_H_
#define MINTRI_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "chordal/minimality.h"
#include "graph/graph.h"
#include "separators/crossing.h"
#include "separators/minimal_separators.h"

namespace mintri {
namespace testutil {

inline Graph MakeGraph(int n,
                       std::initializer_list<std::pair<int, int>> edges) {
  Graph g(n);
  for (const auto& [u, v] : edges) g.AddEdge(u, v);
  return g;
}

/// The running-example graph of Figure 1: vertices
/// 0=u, 1=v, 2=v', 3=w1, 4=w2, 5=w3. It has exactly 3 minimal separators
/// ({w1,w2,w3}, {u,v}, {v}), 6 potential maximal cliques, and 2 minimal
/// triangulations.
inline Graph PaperExampleGraph() {
  return MakeGraph(6, {{0, 3}, {0, 4}, {0, 5}, {1, 3}, {1, 4}, {1, 5},
                       {1, 2}});
}

using FillSet = std::vector<std::pair<int, int>>;

inline FillSet FillKey(const Graph& g, const Graph& h) {
  FillSet fill;
  for (const auto& [u, v] : h.Edges()) {
    if (!g.HasEdge(u, v)) fill.emplace_back(u, v);
  }
  std::sort(fill.begin(), fill.end());
  return fill;
}

/// All maximal sets of pairwise-parallel minimal separators, via
/// Bron–Kerbosch over the "parallel" relation. Exponential; for tests only.
inline std::vector<std::vector<VertexSet>> AllMaximalParallelSets(
    const Graph& g) {
  std::vector<VertexSet> seps =
      ListMinimalSeparators(g).separators;
  const int k = static_cast<int>(seps.size());
  // parallel[i][j] over the separator indices.
  std::vector<std::vector<bool>> parallel(k, std::vector<bool>(k, false));
  for (int i = 0; i < k; ++i) {
    ComponentLabeling labeling(g, seps[i]);
    for (int j = 0; j < k; ++j) {
      if (i != j) parallel[i][j] = labeling.IsParallelTo(seps[j]);
    }
  }
  // Crossing is symmetric, hence so is parallelism; assert for sanity.
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      if (parallel[i][j] != parallel[j][i]) std::abort();
    }
  }

  std::vector<std::vector<VertexSet>> result;
  // Bron–Kerbosch (no pivot; test scale) for maximal cliques of the
  // parallel graph.
  std::vector<int> r, p, x;
  for (int i = 0; i < k; ++i) p.push_back(i);
  struct BK {
    const std::vector<std::vector<bool>>& adj;
    const std::vector<VertexSet>& seps;
    std::vector<std::vector<VertexSet>>& out;
    void Run(std::vector<int>& r, std::vector<int> p, std::vector<int> x) {
      if (p.empty() && x.empty()) {
        std::vector<VertexSet> clique;
        for (int i : r) clique.push_back(seps[i]);
        out.push_back(std::move(clique));
        return;
      }
      while (!p.empty()) {
        int v = p.back();
        p.pop_back();
        std::vector<int> p2, x2;
        for (int u : p) {
          if (adj[v][u]) p2.push_back(u);
        }
        for (int u : x) {
          if (adj[v][u]) x2.push_back(u);
        }
        r.push_back(v);
        Run(r, std::move(p2), std::move(x2));
        r.pop_back();
        x.push_back(v);
      }
    }
  };
  BK bk{parallel, seps, result};
  bk.Run(r, std::move(p), std::move(x));
  return result;
}

/// Reference enumeration of ALL minimal triangulations via Parra–Scheffler
/// (Theorem 2.5): saturate every maximal set of pairwise-parallel minimal
/// separators. Returns the canonical fill sets, sorted and deduplicated.
inline std::set<FillSet> BruteForceMinimalTriangulationFills(const Graph& g) {
  std::set<FillSet> fills;
  for (const std::vector<VertexSet>& m : AllMaximalParallelSets(g)) {
    Graph h = g;
    for (const VertexSet& s : m) h.SaturateSet(s);
    fills.insert(FillKey(g, h));
  }
  return fills;
}

}  // namespace testutil
}  // namespace mintri

#endif  // MINTRI_TESTS_TEST_UTIL_H_
