#include "workloads/families.h"

#include <gtest/gtest.h>

#include "workloads/graphical_models.h"
#include "workloads/named_graphs.h"
#include "workloads/random_graphs.h"
#include "workloads/tpch_queries.h"

namespace mintri {
namespace {

using namespace mintri::workloads;  // NOLINT: test-local convenience

TEST(RandomGraphsTest, ErdosRenyiIsDeterministic) {
  Graph a = ErdosRenyi(20, 0.3, 42);
  Graph b = ErdosRenyi(20, 0.3, 42);
  Graph c = ErdosRenyi(20, 0.3, 43);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(RandomGraphsTest, ErdosRenyiDensityMatchesP) {
  Graph g = ErdosRenyi(100, 0.25, 7);
  double max_edges = 100.0 * 99.0 / 2.0;
  double density = g.NumEdges() / max_edges;
  EXPECT_NEAR(density, 0.25, 0.05);
}

TEST(RandomGraphsTest, ConnectedErdosRenyiIsConnected) {
  for (int seed = 0; seed < 20; ++seed) {
    EXPECT_TRUE(ConnectedErdosRenyi(15, 0.05, seed).IsConnected());
  }
}

TEST(RandomGraphsTest, RandomTreeIsATree) {
  for (int seed = 0; seed < 10; ++seed) {
    for (int n : {1, 2, 3, 7, 20}) {
      Graph t = RandomTree(n, seed);
      EXPECT_EQ(t.NumEdges(), std::max(0, n - 1));
      EXPECT_TRUE(t.IsConnected());
    }
  }
}

TEST(NamedGraphsTest, BasicInvariants) {
  EXPECT_EQ(Path(5).NumEdges(), 4);
  EXPECT_EQ(Cycle(5).NumEdges(), 5);
  EXPECT_EQ(Complete(6).NumEdges(), 15);
  EXPECT_EQ(CompleteBipartite(2, 3).NumEdges(), 6);
  EXPECT_EQ(Grid(3, 4).NumVertices(), 12);
  EXPECT_EQ(Grid(3, 4).NumEdges(), 17);
  EXPECT_EQ(Grid(2, 2, true).NumEdges(), 5);
  EXPECT_EQ(Petersen().NumVertices(), 10);
  EXPECT_EQ(Petersen().NumEdges(), 15);
  EXPECT_EQ(Hypercube(4).NumVertices(), 16);
  EXPECT_EQ(Hypercube(4).NumEdges(), 32);
}

TEST(NamedGraphsTest, MycielskiSizes) {
  // |V(M(G))| = 2|V|+1 starting from K2: 2, 5, 11, 23, 47.
  EXPECT_EQ(Mycielski(2).NumVertices(), 2);
  EXPECT_EQ(Mycielski(3).NumVertices(), 5);
  EXPECT_EQ(Mycielski(4).NumVertices(), 11);  // Grötzsch graph
  EXPECT_EQ(Mycielski(5).NumVertices(), 23);
  EXPECT_EQ(Mycielski(4).NumEdges(), 20);
  // Mycielski graphs are triangle-free and connected.
  EXPECT_TRUE(Mycielski(5).IsConnected());
}

TEST(NamedGraphsTest, MycielskiThreeIsC5) {
  Graph m3 = Mycielski(3);
  EXPECT_EQ(m3.NumVertices(), 5);
  EXPECT_EQ(m3.NumEdges(), 5);
  for (int v = 0; v < 5; ++v) EXPECT_EQ(m3.Neighbors(v).Count(), 2);
}

TEST(NamedGraphsTest, QueenGraph) {
  Graph q4 = Queen(4);
  EXPECT_EQ(q4.NumVertices(), 16);
  // Every queen attacks at least 2*(n-1) squares... degree check: corner of
  // queen4 sees 3 + 3 + 3 = 9 squares.
  EXPECT_EQ(q4.Neighbors(0).Count(), 9);
  EXPECT_TRUE(q4.IsConnected());
}

TEST(GraphicalModelsTest, GeneratorsAreDeterministicAndConnectedish) {
  EXPECT_EQ(MoralizedRandomDag(20, 3, 1), MoralizedRandomDag(20, 3, 1));
  EXPECT_TRUE(MoralizedRandomDag(20, 3, 1).IsConnected());
  EXPECT_TRUE(DbnChain(4, 5, 0.3, 0.3, 2).IsConnected());
  EXPECT_TRUE(SegmentationGraph(4, 5, 6, 3).IsConnected());
  EXPECT_TRUE(ObjectDetectionGraph(8, 0.4, 4, 4).IsConnected());
  EXPECT_TRUE(CspGraph(12, 8, 3, 5).IsConnected());
  EXPECT_TRUE(ImageAlignmentGraph(4, 5, 5, 6).IsConnected());
}

TEST(GraphicalModelsTest, PromedasIsBipartiteBeforeMoralization) {
  // After moralization the disease layer gains marriages; findings stay an
  // independent set (findings have no children).
  Graph g = PromedasGraph(10, 20, 3, 7);
  EXPECT_EQ(g.NumVertices(), 30);
  for (int f1 = 10; f1 < 30; ++f1) {
    for (int f2 = f1 + 1; f2 < 30; ++f2) {
      EXPECT_FALSE(g.HasEdge(f1, f2));
    }
  }
}

TEST(GraphicalModelsTest, DbnHasInterSliceEdgesOnlyBetweenAdjacent) {
  Graph g = DbnChain(5, 4, 0.5, 0.5, 11);
  // No edge may skip a slice.
  for (const auto& [u, v] : g.Edges()) {
    EXPECT_LE(std::abs(u / 4 - v / 4), 1);
  }
}

TEST(TpchQueriesTest, AllQueriesWellFormed) {
  auto queries = AllTpchQueries();
  ASSERT_EQ(queries.size(), 22u);
  for (const TpchQuery& q : queries) {
    EXPECT_EQ(q.graph.NumVertices(),
              static_cast<int>(q.relations.size()))
        << "Q" << q.number;
    EXPECT_GE(q.graph.NumVertices(), 1) << "Q" << q.number;
  }
}

TEST(TpchQueriesTest, Q5HasTheFamousCycle) {
  // Q5 joins customer-orders-lineitem-supplier-nation-customer: cyclic.
  TpchQuery q5 = TpchQueryGraph(5);
  EXPECT_EQ(q5.graph.NumEdges(), 6);
  EXPECT_EQ(q5.graph.NumVertices(), 6);
  // A 6-vertex graph with 6 edges and all vertices connected has a cycle.
  EXPECT_TRUE(q5.graph.IsConnected());
}

TEST(TpchQueriesTest, Q3IsAPath) {
  TpchQuery q3 = TpchQueryGraph(3);
  EXPECT_EQ(q3.graph.NumVertices(), 3);
  EXPECT_EQ(q3.graph.NumEdges(), 2);
}

TEST(FamiliesTest, AllFamiliesNonEmptyAndDeterministic) {
  auto families = AllFamilies();
  EXPECT_EQ(families.size(), 14u);
  for (const auto& f : families) {
    EXPECT_FALSE(f.graphs.empty()) << f.name;
    for (const auto& dg : f.graphs) {
      EXPECT_GT(dg.graph.NumVertices(), 0) << dg.name;
    }
  }
  // Determinism.
  auto again = AllFamilies();
  for (size_t i = 0; i < families.size(); ++i) {
    ASSERT_EQ(families[i].graphs.size(), again[i].graphs.size());
    for (size_t j = 0; j < families[i].graphs.size(); ++j) {
      EXPECT_EQ(families[i].graphs[j].graph, again[i].graphs[j].graph);
    }
  }
}

TEST(FamiliesTest, FamilyByNameFindsCsp) {
  auto f = FamilyByName("CSP");
  EXPECT_EQ(f.name, "CSP");
  EXPECT_GE(f.graphs.size(), 3u);
  EXPECT_EQ(f.graphs[2].name, "myciel5g");
  EXPECT_EQ(f.graphs[2].graph.NumVertices(), 23);
}

}  // namespace
}  // namespace mintri
