// Quickstart: ranked enumeration of minimal triangulations and proper tree
// decompositions of the running-example graph of the paper (Figure 1).
//
//   build/examples/quickstart
//
// Walks the whole public API: build a graph, build a TriangulationContext
// (minimal separators + potential maximal cliques), enumerate minimal
// triangulations by increasing width-then-fill, and print the clique tree
// (a proper tree decomposition) of each result.

#include <cstdio>

#include "cost/standard_costs.h"
#include "enumeration/ranked_enum.h"
#include "graph/graph.h"

int main() {
  using namespace mintri;

  // The graph of Figure 1: 0=u, 1=v, 2=v', 3=w1, 4=w2, 5=w3.
  Graph g(6);
  const char* names[] = {"u", "v", "v'", "w1", "w2", "w3"};
  for (int w : {3, 4, 5}) {
    g.AddEdge(0, w);  // u - wi
    g.AddEdge(1, w);  // v - wi
  }
  g.AddEdge(1, 2);  // v - v'

  std::printf("Graph: %d vertices, %d edges\n", g.NumVertices(),
              g.NumEdges());

  // Initialization step: minimal separators + potential maximal cliques.
  auto ctx = TriangulationContext::Build(g);
  if (!ctx.has_value()) {
    std::printf("initialization exceeded its limits (graph not poly-MS "
                "feasible)\n");
    return 1;
  }
  std::printf("Minimal separators: %zu\n", ctx->minimal_separators().size());
  for (const auto& s : ctx->minimal_separators()) {
    std::printf("  %s\n", s.ToString().c_str());
  }
  std::printf("Potential maximal cliques: %zu\n", ctx->pmcs().size());

  // Ranked enumeration by (width, then fill-in).
  WidthThenFillCost cost;
  RankedTriangulationEnumerator enumerator(*ctx, cost);
  int rank = 0;
  while (auto t = enumerator.Next()) {
    auto [width, fill] = WidthThenFillCost::Decode(g, t->cost);
    std::printf("\n#%d: width=%d fill-in=%lld, fill edges:", ++rank, width,
                static_cast<long long>(fill));
    for (const auto& [a, b] : t->FillEdgesSorted(g)) {
      std::printf(" {%s,%s}", names[a], names[b]);
    }
    std::printf("\n  clique tree (proper tree decomposition):\n");
    for (size_t i = 0; i < t->bags.size(); ++i) {
      std::printf("    bag %zu %s", i, t->bags[i].ToString().c_str());
      if (t->parent[i] >= 0) std::printf("  -- parent bag %d", t->parent[i]);
      std::printf("\n");
    }
  }
  std::printf("\nEnumerated %d minimal triangulations (all of them).\n",
              rank);
  return 0;
}
