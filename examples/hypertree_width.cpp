// Generalized hypertree decompositions (Section 1/3 of the paper): rank the
// proper tree decompositions of a cyclic join query by (generalized)
// hypertree width and by fractional hypertree width — the two cover-based
// bag costs of Gottlob et al. and Grohe–Marx that the paper lists among the
// split-monotone costs its framework supports.
//
//   build/examples/hypertree_width
//
// The query is the 6-cycle join with "shortcut" relations
//   R1(x1,x2) ⋈ R2(x2,x3) ⋈ ... ⋈ R6(x6,x1) ⋈ S1(x1,x3,x5) ⋈ S2(x2,x4,x6),
// whose primal graph is denser than the hyperedge structure — exactly the
// situation where hypertree width beats treewidth-based planning.

#include <cstdio>

#include "cost/standard_costs.h"
#include "enumeration/ranked_enum.h"
#include "hypergraph/edge_cover.h"
#include "hypergraph/hypergraph.h"

int main() {
  using namespace mintri;

  Hypergraph query(6);
  for (int i = 0; i < 6; ++i) {
    query.AddEdge(VertexSet::Of(6, {i, (i + 1) % 6}));  // R_{i+1}
  }
  query.AddEdge(VertexSet::Of(6, {0, 2, 4}));  // S1
  query.AddEdge(VertexSet::Of(6, {1, 3, 5}));  // S2

  Graph primal = query.PrimalGraph();
  std::printf("Join query: 6 variables, %d atoms; primal graph has %d "
              "edges\n",
              query.NumEdges(), primal.NumEdges());

  auto ctx = TriangulationContext::Build(primal);
  if (!ctx.has_value()) return 1;

  WidthCost width;
  auto ghw = HypertreeWidthCost(query);
  auto fhw = FractionalHypertreeWidthCost(query);

  struct Entry {
    const BagCost* cost;
    const char* what;
  };
  Entry entries[] = {{&width, "treewidth (bag size - 1)"},
                     {ghw.get(), "generalized hypertree width"},
                     {fhw.get(), "fractional hypertree width"}};
  for (const Entry& entry : entries) {
    RankedTriangulationEnumerator e(*ctx, *entry.cost);
    std::printf("\nTop 3 decompositions by %s:\n", entry.what);
    for (int k = 1; k <= 3; ++k) {
      auto t = e.Next();
      if (!t.has_value()) break;
      std::printf("  #%d cost=%.3f  bags:", k, t->cost);
      for (const auto& bag : t->bags) {
        std::printf(" %s(ghw %d, fhw %.2f)", bag.ToString().c_str(),
                    MinIntegralEdgeCover(query, bag),
                    MinFractionalEdgeCover(query, bag));
      }
      std::printf("\n");
    }
  }
  std::printf("\nThe width-optimal and hypertree-width-optimal "
              "decompositions can differ: a big bag covered by one S atom "
              "is cheap for ghw but expensive for treewidth.\n");
  return 0;
}
