// Join-query optimization: pick a tree decomposition of a TPC-H join graph
// under an application-specific cost, in the style of Kalinsky et al. (Trie
// joins, EDBT 2017), which the paper cites as a motivation: isomorphic
// minimum-width decompositions can differ by orders of magnitude at
// execution time, so the application wants MANY low-cost candidates to
// re-score with its own model — exactly what ranked enumeration provides.
//
//   build/examples/join_query_optimization [query_number]
//
// The custom cost here models caching-aware join evaluation: each bag costs
// the product of its relations' estimated sizes (the intermediate result it
// materializes), and the decomposition pays the sum over bags. The example
// enumerates decompositions by increasing width and re-scores the top
// candidates with the cache model; then it enumerates directly by the cache
// cost (possible because it is a split-monotone bag cost) and shows both
// agree on the winner.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "cost/standard_costs.h"
#include "enumeration/ranked_enum.h"
#include "workloads/tpch_queries.h"

int main(int argc, char** argv) {
  using namespace mintri;
  int query = argc > 1 ? std::atoi(argv[1]) : 8;  // Q8: 8 relations, cyclic

  workloads::TpchQuery q = workloads::TpchQueryGraph(query);
  if (!q.graph.IsConnected()) {
    std::printf("Q%d is a cross product; decompose each side separately.\n",
                q.number);
    return 0;
  }
  std::printf("TPC-H Q%d join graph: %d relations, %d join predicates\n",
              q.number, q.graph.NumVertices(), q.graph.NumEdges());

  // Cardinalities (scale factor 1, rounded, in thousands).
  std::map<std::string, double> base_sizes = {
      {"lineitem", 6000}, {"orders", 1500},  {"partsupp", 800},
      {"part", 200},      {"customer", 150}, {"supplier", 10},
      {"nation", 0.025},  {"region", 0.005}};
  std::vector<double> sizes(q.relations.size(), 1.0);
  for (size_t i = 0; i < q.relations.size(); ++i) {
    for (const auto& [prefix, s] : base_sizes) {
      if (q.relations[i].rfind(prefix, 0) == 0) sizes[i] = s;
    }
  }

  auto ctx = TriangulationContext::Build(q.graph);
  if (!ctx.has_value()) {
    std::printf("initialization failed (unexpected for TPC-H-size graphs)\n");
    return 1;
  }

  // Phase 1: enumerate by width, re-score with the cache model.
  WidthCost width;
  TotalStateSpaceCost cache_model(sizes);
  RankedTriangulationEnumerator by_width(*ctx, width);
  std::printf("\nBy increasing width, re-scored with the caching model:\n");
  double best_rescore = -1;
  int rank = 0;
  while (auto t = by_width.Next()) {
    double score = cache_model.Evaluate(q.graph, t->bags);
    if (best_rescore < 0 || score < best_rescore) best_rescore = score;
    std::printf("  #%d width=%d  cache-cost=%.3f  (%zu bags)\n", ++rank,
                t->Width(), score, t->bags.size());
    if (rank >= 10) break;
  }

  // Phase 2: enumerate directly by the cache model (split-monotone).
  RankedTriangulationEnumerator by_cache(*ctx, cache_model);
  auto best = by_cache.Next();
  if (!best.has_value()) return 1;
  std::printf("\nDirect ranked enumeration by the caching cost:\n");
  std::printf("  best cache-cost=%.3f width=%d\n", best->cost,
              best->Width());
  std::printf("  bags (joined relation groups):\n");
  for (const auto& bag : best->bags) {
    std::printf("    {");
    bool first = true;
    bag.ForEach([&](int v) {
      std::printf("%s%s", first ? "" : ", ", q.relations[v].c_str());
      first = false;
    });
    std::printf("}\n");
  }
  if (best_rescore >= 0 && best->cost <= best_rescore + 1e-9) {
    std::printf("\nDirect ranking found a plan at least as good as the "
                "width-then-rescore pipeline (%.3f <= %.3f).\n",
                best->cost, best_rescore);
  }
  return 0;
}
