// User-defined split-monotone costs: the paper's Section 3 examples beyond
// width and fill — weighted width (Furuse–Yamazaki), weighted fill, and the
// lexicographic |E|·width + fill combination — plus a fully custom bag
// score, all driving the same ranked enumerator.
//
//   build/examples/custom_cost_ranking
//
// The graph is a CSP constraint network; the custom cost is a
// "machine-learned-style" bag score (in the spirit of Abseher et al., cited
// by the paper): a weighted blend of bag size and the number of constrained
// pairs inside the bag. Any max-composed bag score is split monotone, so
// ranked enumeration with polynomial delay applies as-is.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "cost/standard_costs.h"
#include "enumeration/ranked_enum.h"
#include "workloads/graphical_models.h"

int main() {
  using namespace mintri;
  Graph g = workloads::CspGraph(14, 10, 3, /*seed=*/7);
  std::printf("CSP constraint graph: %d variables, %d binary constraints\n",
              g.NumVertices(), g.NumEdges());

  auto ctx = TriangulationContext::Build(g);
  if (!ctx.has_value()) return 1;

  // 1. Weighted width: variables 0..6 are "expensive" (large domains).
  std::vector<double> weights(g.NumVertices(), 1.0);
  for (int v = 0; v < 7; ++v) weights[v] = 3.0;
  auto wwidth = WeightedWidthCost::FromVertexWeights(weights);

  // 2. Weighted fill: adding a constraint between far-apart variable ids is
  //    expensive (they live on different machines, say).
  WeightedFillCost wfill(
      [](int u, int v) { return 1.0 + 0.25 * std::abs(u - v); });

  // 3. Custom max-composed bag score: 1.3^|bag| plus a penalty per
  //    non-constrained pair inside the bag (pairs the solver must check).
  WeightedWidthCost learned(
      [&g](const VertexSet& bag) {
        double score = std::pow(1.3, bag.Count());
        auto members = bag.ToVector();
        for (size_t i = 0; i < members.size(); ++i) {
          for (size_t j = i + 1; j < members.size(); ++j) {
            if (!g.HasEdge(members[i], members[j])) score += 0.5;
          }
        }
        return score;
      },
      "learned-bag-score");

  // 4. The paper's lexicographic combination.
  WidthThenFillCost lex;

  const BagCost* costs[] = {wwidth.get(), &wfill, &learned, &lex};
  for (const BagCost* cost : costs) {
    RankedTriangulationEnumerator e(*ctx, *cost);
    std::printf("\nTop 3 by %s:\n", cost->Name().c_str());
    for (int k = 1; k <= 3; ++k) {
      auto t = e.Next();
      if (!t.has_value()) break;
      std::printf("  #%d cost=%.3f width=%d fill=%lld\n", k, t->cost,
                  t->Width(), t->FillIn(g));
    }
  }
  return 0;
}
