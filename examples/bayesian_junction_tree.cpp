// Junction-tree construction for probabilistic inference: enumerate proper
// tree decompositions of a grid MRF ranked by the total clique-table size
// Σ_bags ∏ domain(v) — the actual memory/time cost of Lauritzen–Spiegelhalter
// message passing, one of the "specialized costs not covered by the
// classics" that motivates the paper.
//
//   build/examples/bayesian_junction_tree [rows cols]
//
// Shows that minimizing width alone is NOT the same as minimizing inference
// cost when variables have different domain sizes: the example gives the
// boundary rows large domains, so the best junction tree avoids fat bags on
// the boundary even at equal width.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cost/standard_costs.h"
#include "enumeration/ranked_enum.h"
#include "workloads/named_graphs.h"

int main(int argc, char** argv) {
  using namespace mintri;
  int rows = argc > 2 ? std::atoi(argv[1]) : 4;
  int cols = argc > 2 ? std::atoi(argv[2]) : 4;

  Graph g = workloads::Grid(rows, cols);
  std::printf("Grid MRF %dx%d: %d variables, %d potentials\n", rows, cols,
              g.NumVertices(), g.NumEdges());

  // Domain sizes: boundary-row variables are high-cardinality (say, image
  // intensities), inner ones binary.
  std::vector<double> domains(g.NumVertices(), 2.0);
  for (int c = 0; c < cols; ++c) {
    domains[c] = 8.0;                      // first row
    domains[(rows - 1) * cols + c] = 8.0;  // last row
  }

  auto ctx = TriangulationContext::Build(g);
  if (!ctx.has_value()) {
    std::printf("initialization exceeded limits; use a smaller grid\n");
    return 1;
  }
  std::printf("Initialization: %zu minimal separators, %zu PMCs, %.3fs\n",
              ctx->minimal_separators().size(), ctx->pmcs().size(),
              ctx->init_seconds());

  WidthCost width;
  TotalStateSpaceCost table_size(domains);

  // The width-optimal junction tree.
  RankedTriangulationEnumerator by_width(*ctx, width);
  auto w_opt = by_width.Next();
  if (!w_opt.has_value()) return 1;
  double w_opt_tables = table_size.Evaluate(g, w_opt->bags);
  std::printf("\nWidth-optimal junction tree: width=%d, total table size "
              "%.0f entries\n",
              w_opt->Width(), w_opt_tables);

  // The inference-optimal junction tree, by ranked enumeration.
  RankedTriangulationEnumerator by_tables(*ctx, table_size);
  auto t_opt = by_tables.Next();
  if (!t_opt.has_value()) return 1;
  std::printf("Table-size-optimal junction tree: width=%d, total table size "
              "%.0f entries\n",
              t_opt->Width(), t_opt->cost);
  if (t_opt->cost < w_opt_tables) {
    std::printf("  -> %.1f%% smaller clique tables than the width-optimal "
                "tree at width %d vs %d\n",
                100.0 * (1.0 - t_opt->cost / w_opt_tables), t_opt->Width(),
                w_opt->Width());
  }

  // Top-5 by inference cost, so the application can re-score further
  // (e.g., with machine-learned costs per Abseher et al.).
  std::printf("\nTop junction trees by inference cost:\n");
  RankedTriangulationEnumerator top(*ctx, table_size);
  for (int k = 1; k <= 5; ++k) {
    auto t = top.Next();
    if (!t.has_value()) break;
    std::printf("  #%d: tables=%.0f width=%d fill=%lld bags=%zu\n", k,
                t->cost, t->Width(), t->FillIn(g), t->bags.size());
  }
  return 0;
}
