// Bounded-width enumeration (Theorem 4.5 / MinTriangB): enumerate all
// minimal triangulations of width <= b WITHOUT assuming poly-MS — the
// context only materializes separators of size <= b and PMCs of size
// <= b+1.
//
//   build/examples/bounded_width_exploration
//
// Sweeps the bound b on the Grötzsch graph (Mycielski(4)) and reports how
// many width-<=b minimal triangulations exist, demonstrating that the
// bounded context is much smaller than the unbounded one.

#include <cstdio>

#include "cost/standard_costs.h"
#include "enumeration/ranked_enum.h"
#include "workloads/named_graphs.h"

int main() {
  using namespace mintri;
  Graph g = workloads::Mycielski(4);  // Grötzsch graph, treewidth 5
  std::printf("Grotzsch graph: %d vertices, %d edges\n", g.NumVertices(),
              g.NumEdges());

  auto full = TriangulationContext::Build(g);
  if (!full.has_value()) return 1;
  std::printf("Unbounded context: %zu separators, %zu PMCs\n\n",
              full->minimal_separators().size(), full->pmcs().size());

  WidthCost width;
  for (int b = 4; b <= 7; ++b) {
    ContextOptions options;
    options.width_bound = b;
    auto ctx = TriangulationContext::Build(g, options);
    if (!ctx.has_value()) continue;

    RankedTriangulationEnumerator e(*ctx, width);
    long long count = 0;
    int min_w = -1, max_w = -1;
    while (auto t = e.Next()) {
      if (count == 0) min_w = t->Width();
      max_w = t->Width();
      ++count;
      if (count >= 100000) break;
    }
    std::printf("b=%d: %4zu separators, %4zu PMCs -> %6lld minimal "
                "triangulations of width <= %d",
                b, ctx->minimal_separators().size(), ctx->pmcs().size(),
                count, b);
    if (count > 0) {
      std::printf("  (widths %d..%d, ranked)", min_w, max_w);
    }
    std::printf("\n");
  }

  std::printf("\nNote: b below the treewidth yields zero results; the "
              "bounded context stays small even when the unbounded one "
              "would blow up.\n");
  return 0;
}
